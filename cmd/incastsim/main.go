// Command incastsim runs one simulated inter-datacenter incast experiment
// and prints its completion time and telemetry.
//
// Usage:
//
//	incastsim -scheme streamlined -degree 8 -size 100MB -runs 5
//	incastsim -scheme baseline -degree 4 -size 40MB -inter-latency 10ms
//	incastsim -scheme adaptive -policy onset-depth=4MB,max-switches=1
//	incastsim -runs 8 -parallel 0     # fan runs across every CPU; same output
//	incastsim -estimate               # print the analytical model's prediction beside each run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	incastproxy "incastproxy"
	"incastproxy/internal/cliutil"
	"incastproxy/internal/control"
	"incastproxy/internal/model"
	"incastproxy/internal/runner"
	"incastproxy/internal/sim"
	"incastproxy/internal/topo"
	"incastproxy/internal/trace"
	"incastproxy/internal/units"
)

func main() {
	var (
		schemeFlag  = flag.String("scheme", "all", "baseline | naive | streamlined | adaptive | all")
		degree      = flag.Int("degree", 4, "number of incast senders")
		sizeFlag    = flag.String("size", "100MB", "total incast size (e.g. 40MB, 1GB)")
		runs        = flag.Int("runs", 5, "independent runs (avg/min/max reported)")
		parallel    = flag.Int("parallel", 1, "worker goroutines for the independent runs (0 = one per CPU); output is byte-identical at any setting")
		seed        = flag.Int64("seed", 1, "base random seed")
		interLatRaw = flag.String("inter-latency", "1ms", "long-haul link propagation delay")
		noEarly     = flag.Bool("no-early-feedback", false, "streamlined ablation: relay trimmed headers instead of NACKing")
		iwScale     = flag.Float64("iw-scale", 1.0, "initial window as a multiple of 1 BDP")
		traceJSON   = flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto / chrome://tracing)")
		queueCSV    = flag.String("queue-csv", "", "write receiver/proxy down-ToR queue time series to this CSV file")
		manifest    = flag.Bool("manifest", false, "print each run's manifest (seed, config hash)")
		policyFlag  = flag.String("policy", "", "adaptive controller thresholds, key=value,... applied over defaults (scheme adaptive; see internal/control)")
		shards      = flag.Int("shards", 0, "event shards for the parallel engine (0 = classic single engine; 2 = one per DC, up to 2+backbones); results are byte-identical at any setting; not supported with scheme adaptive")
		shardWork   = flag.Int("shard-workers", 0, "goroutines driving the event shards (0 = one per shard); requires -shards")
		leaves      = flag.Int("leaves", 0, "override leaf switches per DC (0 = default topology)")
		servers     = flag.Int("servers-per-leaf", 0, "override servers per leaf (0 = default topology); raise with -leaves for 10k-sender epochs")
		estimate    = flag.Bool("estimate", false, "print the analytical model's prediction (internal/model) beside each scheme's simulated result, with per-metric relative error")
	)
	flag.Parse()

	var policy control.Config
	if *policyFlag != "" {
		var err error
		if policy, err = control.ParseConfig(*policyFlag); err != nil {
			fatal(err)
		}
	}

	size, err := cliutil.ParseSize(*sizeFlag)
	if err != nil {
		fatal(err)
	}
	interLat, err := cliutil.ParseDuration(*interLatRaw)
	if err != nil {
		fatal(err)
	}
	topoCfg := incastproxy.DefaultTopo()
	topoCfg.InterDelay = interLat
	if *leaves > 0 {
		topoCfg.Leaves = *leaves
	}
	if *servers > 0 {
		topoCfg.ServersPerLeaf = *servers
	}

	schemes, err := parseSchemes(*schemeFlag)
	if err != nil {
		fatal(err)
	}

	var recorders []*trace.Recorder
	var traces []*incastproxy.Tracer
	var baseline incastproxy.Duration
	for _, s := range schemes {
		spec := incastproxy.IncastSpec{
			Scheme:          s,
			Degree:          *degree,
			TotalBytes:      size,
			Runs:            *runs,
			Parallel:        runner.Parallelism(*parallel),
			Seed:            *seed,
			Topo:            topoCfg,
			NoEarlyFeedback: *noEarly,
			IWScale:         *iwScale,
			Shards:          *shards,
			ShardWorkers:    *shardWork,
		}
		if s == incastproxy.SchemeAdaptive {
			spec.Control = policy
		}
		if *traceJSON != "" {
			spec.Runs = 1 // one trace per scheme
			spec.Obs = &incastproxy.ObsConfig{Trace: true}
		}
		if *queueCSV != "" {
			scheme := s
			spec.Runs = 1
			spec.OnBuild = func(net *topo.Network, e *sim.Engine) {
				r := trace.New(units.Duration(100*units.Microsecond), units.MaxTime)
				r.Watch(fmt.Sprintf("%v/receiver-tor", scheme), net.DownToRPort(net.Hosts[1][0]))
				r.Watch(fmt.Sprintf("%v/proxy-tor", scheme), net.DownToRPort(net.Hosts[0][len(net.Hosts[0])-1]))
				r.Start(e)
				recorders = append(recorders, r)
			}
		}
		res, err := incastproxy.RunIncast(spec)
		if err != nil {
			fatal(err)
		}
		rr := res.Runs[0]
		if rr.Trace != nil {
			traces = append(traces, rr.Trace)
		}
		fmt.Printf("%-18s ICT avg=%v min=%v max=%v", s, res.ICT.Avg(), res.ICT.Min(), res.ICT.Max())
		if s == incastproxy.Baseline {
			baseline = res.ICT.Avg()
		} else if baseline > 0 {
			fmt.Printf("  reduction=%.2f%%", (1-float64(res.ICT.Avg())/float64(baseline))*100)
		}
		fmt.Printf("\n  timeouts=%d retx=%d nacks=%d  rxToR(max=%v drops=%d)  pxToR(max=%v trims=%d)\n",
			rr.Timeouts, rr.Retransmits, rr.Nacks,
			rr.ReceiverToRMaxQueue, rr.ReceiverToRDrops, rr.ProxyToRMaxQueue, rr.ProxyToRTrims)
		fmt.Printf("  fct p50=%v p99=%v max=%v  events=%d\n",
			rr.FlowFCT.P50, rr.FlowFCT.P99, rr.FlowFCT.Max, rr.Events)
		if s == incastproxy.SchemeAdaptive {
			fmt.Printf("  route=%s onsets=%d rehomed(flows=%d bytes=%v) kept-direct=%d steers=%v\n",
				rr.FinalRoute, rr.Onsets, rr.RehomedFlows, rr.RehomedBytes, rr.KeptDirect, rr.Steers)
		}
		if *estimate {
			printEstimate(s, spec, res)
		}
		if *manifest && rr.Manifest != nil {
			fmt.Printf("  %s\n", rr.Manifest)
		}
	}

	if *traceJSON != "" && len(traces) > 0 {
		// Multiple schemes merge onto one timeline (their events carry
		// distinct flow labels); Perfetto renders them side by side.
		f, err := os.Create(*traceJSON)
		if err != nil {
			fatal(err)
		}
		merged := traces[0]
		for _, t := range traces[1:] {
			merged.Append(t)
		}
		if err := merged.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("chrome trace written to %s (open in https://ui.perfetto.dev)\n", *traceJSON)
	}

	if *queueCSV != "" && len(recorders) > 0 {
		f, err := os.Create(*queueCSV)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		for i, r := range recorders {
			if i > 0 {
				fmt.Fprintln(f)
			}
			if err := r.WriteCSV(f); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("queue time series written to %s\n", *queueCSV)
	}
}

// printEstimate prints the analytical model's prediction for the spec the
// simulator just ran, with each metric's signed relative error against the
// measurement. Adaptive runs re-steer mid-epoch, which the model does not
// cover; for them it prints the two candidate-path predictions the
// controller chooses between instead.
func printEstimate(s incastproxy.Scheme, spec incastproxy.IncastSpec, res *incastproxy.IncastResult) {
	if s == incastproxy.SchemeAdaptive {
		base := spec
		base.Scheme = incastproxy.Baseline
		prm, err := model.FromSpec(base)
		if err != nil {
			fmt.Printf("  model: %v\n", err)
			return
		}
		d, p := model.Compare(prm)
		fmt.Printf("  model: adaptive is not modeled; candidate paths direct=%v proxied=%v (sim picked %v)\n",
			d.ICT, p.ICT, res.ICT.Avg())
		return
	}
	prm, err := model.FromSpec(spec)
	if err != nil {
		fmt.Printf("  model: %v\n", err)
		return
	}
	pred := model.Predict(prm)
	rr := res.Runs[0]
	fmt.Printf("  model[%s] ict=%v (%+.1f%%)  p50=%v (%+.1f%%)  p99=%v (%+.1f%%)  goodput=%v\n",
		pred.Regime, pred.ICT, relPct(res.ICT.Avg(), pred.ICT),
		pred.P50, relPct(rr.FlowFCT.P50, pred.P50),
		pred.P99, relPct(rr.FlowFCT.P99, pred.P99), pred.Goodput)
}

// relPct is the signed relative error of a prediction in percent; negative
// means the model under-predicts the simulator.
func relPct(sim, mod incastproxy.Duration) float64 {
	if sim == 0 {
		return 0
	}
	return 100 * (float64(mod) - float64(sim)) / float64(sim)
}

func parseSchemes(s string) ([]incastproxy.Scheme, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return []incastproxy.Scheme{incastproxy.Baseline}, nil
	case "naive":
		return []incastproxy.Scheme{incastproxy.ProxyNaive}, nil
	case "streamlined":
		return []incastproxy.Scheme{incastproxy.ProxyStreamlined}, nil
	case "adaptive":
		return []incastproxy.Scheme{incastproxy.SchemeAdaptive}, nil
	case "all":
		return append(incastproxy.Schemes(), incastproxy.SchemeAdaptive), nil
	default:
		return nil, fmt.Errorf("unknown scheme %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "incastsim:", err)
	os.Exit(1)
}
