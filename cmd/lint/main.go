// Command lint runs the repository's static-analysis suite (internal/lint)
// over every package in the module and exits non-zero on findings. It is the
// mechanical check behind the determinism, clock, and concurrency invariants
// the figures rest on; `make lint` and CI gate on it.
//
// Usage:
//
//	lint [-root dir] [-analyzer name[,name...]] [-json] [-list]
//
// Exit codes: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"incastproxy/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", ".", "module root (directory containing go.mod)")
	sel := fs.String("analyzer", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	list := fs.Bool("list", false, "list available analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := lint.Analyzers
	if *sel != "" {
		analyzers = nil
		for _, name := range strings.Split(*sel, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "lint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	pkgs, err := lint.LoadModule(*root)
	if err != nil {
		fmt.Fprintf(stderr, "lint: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
