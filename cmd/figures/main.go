// Command figures regenerates every figure of the paper's evaluation as
// printed series (see DESIGN.md's experiment index and EXPERIMENTS.md for
// paper-vs-measured records).
//
// Usage:
//
//	figures                 # quick (reduced-size) sweep of every figure
//	figures -fig 2l         # only Figure 2 (Left)
//	figures -full           # paper-scale parameters (slow: many minutes)
//	figures -summary        # only the §4.2 mean-reduction summary lines
//	figures -parallel 4     # fan sweep cells over 4 workers; same bytes out
//	figures -fast           # sweep tables from the analytical model (microseconds)
//	figures -fig modelerr   # sim-vs-model prediction-error table (runs the DES)
package main

import (
	"flag"
	"fmt"
	"os"

	incastproxy "incastproxy"
	"incastproxy/internal/control"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "1 | 2l | 2r | 3 | 4 | 5a | 5b | adaptive | detect | modelerr | all")
		full     = flag.Bool("full", false, "paper-scale parameters (5 runs, 100MB, 6 latencies)")
		fast     = flag.Bool("fast", false, "evaluate sweep cells with the analytical model instead of the simulator (figs 2l/2r/3 only; see -fig modelerr for its error bounds)")
		summary  = flag.Bool("summary", false, "print only §4.2-style mean reductions")
		packets  = flag.Int("packets", 200_000, "samples for the CDF figures")
		parallel = flag.Int("parallel", 0, "sweep worker goroutines (0 = one per CPU, 1 = serial); output is byte-identical at any setting")
		shards   = flag.Int("shards", 0, "event shards per simulation cell (0 = classic single engine); output is byte-identical at any setting")
		policy   = flag.String("policy", "", "adaptive controller thresholds, key=value,... applied over defaults (-fig adaptive)")
	)
	flag.Parse()

	sweep := incastproxy.QuickSweep()
	if *full {
		sweep = incastproxy.PaperSweep()
	}
	sweep.Parallel = *parallel
	sweep.Shards = *shards
	if *policy != "" {
		cc, err := control.ParseConfig(*policy)
		if err != nil {
			fatal(err)
		}
		sweep.Policy = cc
	}

	sweep.Fast = *fast
	if *fast {
		switch *fig {
		case "all", "2l", "2r", "3":
		default:
			fatal(fmt.Errorf("-fast only covers the sweep figures (-fig 2l|2r|3); figure %q needs the packet-level simulator", *fig))
		}
	}

	runFig := func(name string) bool {
		if *fig == "all" {
			if *fast {
				// A fast "all" is the model's domain: the three sweep figures.
				return name == "2l" || name == "2r" || name == "3"
			}
			// modelerr re-runs the whole DES grid; only print it when
			// asked for by name.
			return name != "modelerr"
		}
		return *fig == name
	}
	out := os.Stdout

	if runFig("1") {
		if err := figure1(out); err != nil {
			fatal(err)
		}
	}
	if runFig("2l") {
		pts, err := incastproxy.Figure2Left(sweep)
		if err != nil {
			fatal(err)
		}
		if !*summary {
			incastproxy.WriteFigureTable(out, "Figure 2 (Left): ICT vs incast degree", pts)
		}
		printReductions(out, "Figure 2 (Left)", pts)
	}
	if runFig("2r") {
		pts, err := incastproxy.Figure2Right(sweep)
		if err != nil {
			fatal(err)
		}
		if !*summary {
			incastproxy.WriteFigureTable(out, "Figure 2 (Right): ICT vs incast size", pts)
		}
		printReductions(out, "Figure 2 (Right)", pts)
	}
	if runFig("3") {
		pts, err := incastproxy.Figure3(sweep)
		if err != nil {
			fatal(err)
		}
		if !*summary {
			incastproxy.WriteFigureTable(out, "Figure 3: ICT vs long-haul link latency (log-log in paper)", pts)
		}
		printReductions(out, "Figure 3", pts)
	}
	if runFig("adaptive") {
		pts, err := incastproxy.FigureAdaptive(sweep)
		if err != nil {
			fatal(err)
		}
		if !*summary {
			incastproxy.WriteFigureTable(out,
				"Adaptive control plane: ICT vs incast size, plus cross-traffic and proxy-crash stress rows", pts)
		}
		fmt.Fprintf(out, "Adaptive mean reductions: static=%.2f%% adaptive=%.2f%%\n\n",
			incastproxy.MeanReduction(pts, incastproxy.ProxyStreamlined)*100,
			incastproxy.MeanReduction(pts, incastproxy.SchemeAdaptive)*100)
	}
	if runFig("modelerr") {
		pts, err := incastproxy.FigureModelError(sweep)
		if err != nil {
			fatal(err)
		}
		if !*summary {
			incastproxy.WriteModelErrorTable(out,
				"Sim vs analytical model: per-cell prediction error over the sweep grid", pts)
		}
		fmt.Fprintf(out, "Model error: worst |ICT| deviation %.1f%% across %d cells\n\n",
			incastproxy.MaxAbsModelError(pts)*100, len(pts))
	}
	if runFig("detect") && !*summary {
		pts, err := incastproxy.FigureDetectLatency(sweep)
		if err != nil {
			fatal(err)
		}
		incastproxy.WriteDetectLatencyTable(out,
			"Detection-to-resteer latency: adaptive control plane, size axis (windowed quantiles)", pts)
		fmt.Fprintln(out)
	}
	if runFig("4") && !*summary {
		incastproxy.WriteCDFTable(out, "Figure 4: user-space naive proxy per-packet latency (paper p99=359.17us)",
			incastproxy.Figure4(*packets, 1))
	}
	if runFig("5a") && !*summary {
		incastproxy.WriteCDFTable(out, "Figure 5a: eBPF lower-bound overhead, modeled (paper median=0.42us)",
			incastproxy.Figure5a(*packets, 0.05, 2))
		incastproxy.WriteCDFTable(out, "Figure 5a: real Go packet-program runtime, measured",
			incastproxy.Figure5aMeasured(*packets, 0.05))
	}
	if runFig("5b") && !*summary {
		incastproxy.WriteCDFTable(out, "Figure 5b: stack-inclusive upper bound (paper median=325.92us)",
			incastproxy.Figure5b(*packets, 3))
	}
}

// figure1 prints the bottleneck-shift telemetry illustrated by Figure 1:
// the hot down-ToR queue moves from the receiver to the proxy.
func figure1(out *os.File) error {
	fmt.Fprintln(out, "# Figure 1: congestion point (max down-ToR queue occupancy, 8x senders, 40MB)")
	fmt.Fprintln(out, "scheme              receiverToR          proxyToR")
	for _, s := range []incastproxy.Scheme{incastproxy.Baseline, incastproxy.ProxyNaive, incastproxy.ProxyStreamlined} {
		res, err := incastproxy.RunIncast(incastproxy.IncastSpec{
			Scheme: s, Degree: 8, TotalBytes: 40 * incastproxy.MB, Runs: 1, Seed: 7,
		})
		if err != nil {
			return err
		}
		rr := res.Runs[0]
		fmt.Fprintf(out, "%-18s  max=%-10v d=%-6d max=%-10v t=%d\n",
			s, rr.ReceiverToRMaxQueue, rr.ReceiverToRDrops, rr.ProxyToRMaxQueue, rr.ProxyToRTrims)
	}
	return nil
}

func printReductions(out *os.File, name string, pts []incastproxy.FigurePoint) {
	fmt.Fprintf(out, "%s mean reductions: naive=%.2f%% streamlined=%.2f%%\n\n",
		name,
		incastproxy.MeanReduction(pts, incastproxy.ProxyNaive)*100,
		incastproxy.MeanReduction(pts, incastproxy.ProxyStreamlined)*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
