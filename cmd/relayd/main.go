// Command relayd runs the real TCP connection-splitting relay (the naive
// proxy design over kernel sockets) and companion load-generation modes.
//
// Deploy the relay in the sending datacenter; point senders at it with the
// wire dial preamble (see internal/relay's DialViaRelay, or -mode source
// here).
//
// Usage:
//
//	relayd -mode proxy  -listen :7000                      # the relay
//	relayd -mode proxy  -listen :7000 -max-conns 512 -accept-rate 2000 \
//	       -idle-timeout 2m -drain-timeout 30s             # hardened relay
//	relayd -mode proxy  -listen :7000 -log-json \
//	       -trace trace.json -metrics-dump metrics.json    # observable relay
//	relayd -mode sink   -listen :7001                      # byte sink
//	relayd -mode source -relay host:7000 -target host:7001 -size 100MB -conns 4
//	relayd -mode source -target host:7001 -size 100MB      # direct (no relay)
//
// In proxy mode SIGTERM (or Ctrl-C) starts a graceful drain: established
// splices finish, new dials are shed with GOING_AWAY, and the process exits
// 0 on a clean drain or 4 if the -drain-timeout deadline hard-closed
// stragglers. A second signal hard-stops immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"incastproxy/internal/cliutil"
	"incastproxy/internal/obs"
	"incastproxy/internal/relay"
)

func main() {
	var (
		mode    = flag.String("mode", "proxy", "proxy | sink | source")
		listen  = flag.String("listen", ":7000", "listen address (proxy, sink)")
		relayAt = flag.String("relay", "", "relay address (source; empty = direct)")
		target  = flag.String("target", "", "target address (source)")
		sizeRaw = flag.String("size", "100MB", "bytes per connection (source)")
		conns   = flag.Int("conns", 4, "concurrent connections (source) — the incast degree")
		allowed = flag.String("allow-prefix", "", "restrict relay targets to this address prefix")
		debugAt = flag.String("debug-addr", "", "serve /metrics + /debug/pprof on this address (proxy mode)")

		maxConns      = flag.Int("max-conns", 0, "max concurrent relayed connections; extra dials shed with BUSY (proxy; 0 = unlimited)")
		acceptRate    = flag.Float64("accept-rate", 0, "admissions per second; excess shed with BUSY (proxy; 0 = unlimited)")
		acceptBurst   = flag.Int("accept-burst", 0, "token-bucket depth for -accept-rate (proxy; default 8)")
		idleTimeout   = flag.Duration("idle-timeout", 0, "tear down a splice idle in both directions this long (proxy; 0 = never)")
		spliceTimeout = flag.Duration("splice-timeout", 0, "cap a splice's total lifetime (proxy; 0 = unlimited)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on SIGTERM/SIGINT (proxy)")

		logJSON     = flag.Bool("log-json", false, "log as JSON lines instead of text")
		metricsDump = flag.String("metrics-dump", "", "write the final metrics snapshot to this file as JSON on exit (proxy)")
		tracePath   = flag.String("trace", "", "record a Chrome trace of every relayed flow and write it to this file on exit (proxy)")
	)
	flag.Parse()

	switch *mode {
	case "proxy":
		runProxy(proxyOpts{
			listen:      *listen,
			allowPrefix: *allowed,
			debugAddr:   *debugAt,
			cfg: relay.Config{
				MaxConns:      *maxConns,
				AcceptRate:    *acceptRate,
				AcceptBurst:   *acceptBurst,
				IdleTimeout:   *idleTimeout,
				SpliceTimeout: *spliceTimeout,
				Logger:        cliutil.NewLogger(*logJSON),
			},
			drainTimeout: *drainTimeout,
			metricsDump:  *metricsDump,
			tracePath:    *tracePath,
		})
	case "sink":
		runSink(*listen)
	case "source":
		runSource(*relayAt, *target, *sizeRaw, *conns)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

// Exit codes (proxy mode): 0 = clean graceful drain, 1 = fatal error,
// 4 = drain hit its deadline and in-flight splices were hard-closed.
const exitDrainTimeout = 4

type proxyOpts struct {
	listen       string
	allowPrefix  string
	debugAddr    string
	cfg          relay.Config
	drainTimeout time.Duration
	metricsDump  string
	tracePath    string
}

func runProxy(o proxyOpts) {
	l, err := net.Listen("tcp", o.listen)
	if err != nil {
		fatal(err)
	}
	cfg := o.cfg
	log := cfg.Logger
	cfg.Registry = obs.NewRegistry()
	if o.tracePath != "" {
		cfg.Tracer = obs.NewTracerWithClock(cliutil.WallClock(time.Now))
	}
	if o.allowPrefix != "" {
		cfg.AllowTarget = func(addr string) bool { return strings.HasPrefix(addr, o.allowPrefix) }
	}
	srv := relay.New(cfg)
	log.Info("relayd: proxy listening", "addr", l.Addr().String(),
		"max_conns", cfg.MaxConns, "accept_rate", cfg.AcceptRate)
	if o.debugAddr != "" {
		_, dl, err := obs.ServeDebug(o.debugAddr, cfg.Registry)
		if err != nil {
			fatal(err)
		}
		log.Info("relayd: debug endpoint up",
			"metrics", fmt.Sprintf("http://%v/metrics", dl.Addr()),
			"pprof", fmt.Sprintf("http://%v/debug/pprof/", dl.Addr()))
	}

	// dump flushes the -metrics-dump and -trace files; every exit path
	// (clean drain, drain timeout, hard stop) runs it so the observability
	// artifacts survive however the process goes down.
	dump := func() {
		if err := cliutil.DumpMetrics(o.metricsDump, "relayd -mode proxy", 0, cfg.Registry); err != nil {
			log.Error("relayd: metrics dump failed", "err", err)
		}
		if err := cliutil.DumpTrace(o.tracePath, cfg.Tracer); err != nil {
			log.Error("relayd: trace dump failed", "err", err)
		}
	}

	go reportMetrics(srv, log)
	sigSeen := make(chan struct{})
	drained := make(chan error, 1)
	go func() {
		ch := make(chan os.Signal, 2)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		sig := <-ch
		log.Info("relayd: draining", "signal", sig.String(), "deadline", o.drainTimeout.String())
		close(sigSeen)
		go func() {
			<-ch
			log.Warn("relayd: second signal: hard stop")
			srv.Close()
			dump()
			os.Exit(130)
		}()
		drained <- srv.Drain(o.drainTimeout)
	}()
	if err := srv.Serve(l); err != nil && err != net.ErrClosed {
		fatal(err)
	}
	// Serve only returns ErrClosed after a signal-initiated drain (or hard
	// stop) began; wait for the drain's verdict rather than racing it.
	select {
	case <-sigSeen:
		err := <-drained
		dump()
		if err != nil {
			log.Error("relayd: drain deadline exceeded", "err", err)
			os.Exit(exitDrainTimeout)
		}
		log.Info("relayd: drained cleanly")
	default:
		dump()
	}
}

func reportMetrics(srv *relay.Server, log *slog.Logger) {
	for range time.Tick(5 * time.Second) {
		log.Info("relayd: stats",
			"conns", srv.Metrics.AcceptedConns.Load(), "active", srv.Metrics.ActiveConns.Load(),
			"up_bytes", srv.Metrics.BytesUpstream.Load(), "down_bytes", srv.Metrics.BytesDownstr.Load(),
			"dial_errs", srv.Metrics.DialErrors.Load(), "shed_busy", srv.Metrics.ShedBusy.Load(),
			"shed_goaway", srv.Metrics.ShedGoingAway.Load(), "idle_closed", srv.Metrics.IdleClosed.Load())
	}
}

func runSink(listen string) {
	l, err := net.Listen("tcp", listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("relayd: sink listening on %v\n", l.Addr())
	for {
		c, err := l.Accept()
		if err != nil {
			fatal(err)
		}
		go func() {
			defer c.Close()
			start := time.Now()
			n, _ := io.Copy(io.Discard, c)
			el := time.Since(start)
			rate := float64(n) * 8 / el.Seconds() / 1e9
			fmt.Printf("relayd: sink drained %d bytes in %v (%.2f Gbps) from %v\n",
				n, el.Round(time.Millisecond), rate, c.RemoteAddr())
		}()
	}
}

func runSource(relayAddr, target, sizeRaw string, conns int) {
	if target == "" {
		fatal(fmt.Errorf("source mode needs -target"))
	}
	size, err := cliutil.ParseSize(sizeRaw)
	if err != nil {
		fatal(err)
	}
	per := int64(size) / int64(conns)

	var wg sync.WaitGroup
	var failed atomic.Int64
	var pushed atomic.Int64
	start := time.Now()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var c net.Conn
			var err error
			if relayAddr != "" {
				c, err = relay.DialViaRelay(context.Background(), nil, relayAddr, target)
			} else {
				c, err = net.Dial("tcp", target)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "relayd: conn %d: %v\n", i, err)
				failed.Add(1)
				return
			}
			defer c.Close()
			buf := make([]byte, 256<<10)
			var sent int64
			for sent < per {
				n := int64(len(buf))
				if per-sent < n {
					n = per - sent
				}
				wn, err := c.Write(buf[:n])
				sent += int64(wn)
				if err != nil {
					fmt.Fprintf(os.Stderr, "relayd: conn %d write: %v\n", i, err)
					failed.Add(1)
					break
				}
			}
			pushed.Add(sent)
			if cw, ok := c.(interface{ CloseWrite() error }); ok {
				cw.CloseWrite()
			}
		}(i)
	}
	wg.Wait()
	el := time.Since(start)
	rate := float64(pushed.Load()) * 8 / el.Seconds() / 1e9
	route := "direct"
	if relayAddr != "" {
		route = "via relay " + relayAddr
	}
	if n := failed.Load(); n > 0 {
		fatal(fmt.Errorf("%d/%d conns failed; pushed %d of %v bytes %s",
			n, conns, pushed.Load(), size, route))
	}
	fmt.Printf("relayd: pushed %v over %d conns %s in %v (%.2f Gbps aggregate)\n",
		size, conns, route, el.Round(time.Millisecond), rate)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "relayd:", err)
	os.Exit(1)
}
