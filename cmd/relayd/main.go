// Command relayd runs the real TCP connection-splitting relay (the naive
// proxy design over kernel sockets) and companion load-generation modes.
//
// Deploy the relay in the sending datacenter; point senders at it with the
// wire dial preamble (see internal/relay's DialViaRelay, or -mode source
// here).
//
// Usage:
//
//	relayd -mode proxy  -listen :7000                      # the relay
//	relayd -mode sink   -listen :7001                      # byte sink
//	relayd -mode source -relay host:7000 -target host:7001 -size 100MB -conns 4
//	relayd -mode source -target host:7001 -size 100MB      # direct (no relay)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incastproxy/internal/cliutil"
	"incastproxy/internal/obs"
	"incastproxy/internal/relay"
)

func main() {
	var (
		mode    = flag.String("mode", "proxy", "proxy | sink | source")
		listen  = flag.String("listen", ":7000", "listen address (proxy, sink)")
		relayAt = flag.String("relay", "", "relay address (source; empty = direct)")
		target  = flag.String("target", "", "target address (source)")
		sizeRaw = flag.String("size", "100MB", "bytes per connection (source)")
		conns   = flag.Int("conns", 4, "concurrent connections (source) — the incast degree")
		allowed = flag.String("allow-prefix", "", "restrict relay targets to this address prefix")
		debugAt = flag.String("debug-addr", "", "serve /metrics + /debug/pprof on this address (proxy mode)")
	)
	flag.Parse()

	switch *mode {
	case "proxy":
		runProxy(*listen, *allowed, *debugAt)
	case "sink":
		runSink(*listen)
	case "source":
		runSource(*relayAt, *target, *sizeRaw, *conns)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func runProxy(listen, allowPrefix, debugAddr string) {
	l, err := net.Listen("tcp", listen)
	if err != nil {
		fatal(err)
	}
	cfg := relay.Config{Registry: obs.NewRegistry()}
	if allowPrefix != "" {
		cfg.AllowTarget = func(addr string) bool { return strings.HasPrefix(addr, allowPrefix) }
	}
	srv := relay.New(cfg)
	fmt.Printf("relayd: proxy listening on %v\n", l.Addr())
	if debugAddr != "" {
		_, dl, err := obs.ServeDebug(debugAddr, cfg.Registry)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("relayd: debug endpoint on http://%v/metrics (pprof under /debug/pprof/)\n", dl.Addr())
	}

	go reportMetrics(srv)
	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		srv.Close()
	}()
	if err := srv.Serve(l); err != nil && err != net.ErrClosed {
		fatal(err)
	}
}

func reportMetrics(srv *relay.Server) {
	for range time.Tick(5 * time.Second) {
		fmt.Printf("relayd: conns=%d active=%d up=%dB down=%dB dialErrs=%d\n",
			srv.Metrics.AcceptedConns.Load(), srv.Metrics.ActiveConns.Load(),
			srv.Metrics.BytesUpstream.Load(), srv.Metrics.BytesDownstr.Load(),
			srv.Metrics.DialErrors.Load())
	}
}

func runSink(listen string) {
	l, err := net.Listen("tcp", listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("relayd: sink listening on %v\n", l.Addr())
	for {
		c, err := l.Accept()
		if err != nil {
			fatal(err)
		}
		go func() {
			defer c.Close()
			start := time.Now()
			n, _ := io.Copy(io.Discard, c)
			el := time.Since(start)
			rate := float64(n) * 8 / el.Seconds() / 1e9
			fmt.Printf("relayd: sink drained %d bytes in %v (%.2f Gbps) from %v\n",
				n, el.Round(time.Millisecond), rate, c.RemoteAddr())
		}()
	}
}

func runSource(relayAddr, target, sizeRaw string, conns int) {
	if target == "" {
		fatal(fmt.Errorf("source mode needs -target"))
	}
	size, err := cliutil.ParseSize(sizeRaw)
	if err != nil {
		fatal(err)
	}
	per := int64(size) / int64(conns)

	var wg sync.WaitGroup
	var failed atomic.Int64
	var pushed atomic.Int64
	start := time.Now()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var c net.Conn
			var err error
			if relayAddr != "" {
				c, err = relay.DialViaRelay(context.Background(), nil, relayAddr, target)
			} else {
				c, err = net.Dial("tcp", target)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "relayd: conn %d: %v\n", i, err)
				failed.Add(1)
				return
			}
			defer c.Close()
			buf := make([]byte, 256<<10)
			var sent int64
			for sent < per {
				n := int64(len(buf))
				if per-sent < n {
					n = per - sent
				}
				wn, err := c.Write(buf[:n])
				sent += int64(wn)
				if err != nil {
					fmt.Fprintf(os.Stderr, "relayd: conn %d write: %v\n", i, err)
					failed.Add(1)
					break
				}
			}
			pushed.Add(sent)
			if cw, ok := c.(interface{ CloseWrite() error }); ok {
				cw.CloseWrite()
			}
		}(i)
	}
	wg.Wait()
	el := time.Since(start)
	rate := float64(pushed.Load()) * 8 / el.Seconds() / 1e9
	route := "direct"
	if relayAddr != "" {
		route = "via relay " + relayAddr
	}
	if n := failed.Load(); n > 0 {
		fatal(fmt.Errorf("%d/%d conns failed; pushed %d of %v bytes %s",
			n, conns, pushed.Load(), size, route))
	}
	fmt.Printf("relayd: pushed %v over %d conns %s in %v (%.2f Gbps aggregate)\n",
		size, conns, route, el.Round(time.Millisecond), rate)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "relayd:", err)
	os.Exit(1)
}
