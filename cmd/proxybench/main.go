// Command proxybench reproduces the §5 host-stack measurements: per-packet
// latency CDFs for the user-space naive proxy (Figure 4) and the eBPF
// streamlined proxy's lower/upper bounds (Figure 5), plus the measured
// runtime of the real Go implementation of the proxy's packet program.
//
// Usage:
//
//	proxybench             # all three figures at 200k packets
//	proxybench -fig 4      # only Figure 4
//	proxybench -points 21  # also print CDF plot points
//	proxybench -soak       # chaos-soak the live relay path instead
//	proxybench -soak -soak-conns 64 -soak-capacity 16 -seed 7
//	proxybench -soak -trace out.json -metrics-dump m.json -log-json
//
// -soak drives the real relay data plane (loopback TCP, the production
// Server/DialViaRelay code) through a seeded fault-injecting proxy at 2x
// admission capacity and verifies the overload contract: explicit sheds,
// bounded completion times, a clean drain. Exit 1 on contract violation.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"time"

	incastproxy "incastproxy"
	"incastproxy/internal/chaosnet"
	"incastproxy/internal/cliutil"
	"incastproxy/internal/obs"
	"incastproxy/internal/stats"
	"incastproxy/internal/units"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "4 | 5a | 5b | all")
		packets = flag.Int("packets", 200_000, "packets per distribution")
		nackPct = flag.Float64("nack-fraction", 0.05, "fraction of trimmed-header packets (Fig 5a mix)")
		points  = flag.Int("points", 0, "also print N evenly spaced CDF points per figure")
		seed    = flag.Int64("seed", 1, "model random seed")
		debugAt = flag.String("debug-addr", "", "serve /metrics + /debug/pprof on this address; keeps the process alive after the run until interrupted")

		soak     = flag.Bool("soak", false, "run the live-relay chaos soak instead of the figure benchmarks")
		soakCap  = flag.Int("soak-capacity", 8, "relay admission cap (MaxConns) for -soak")
		soakCons = flag.Int("soak-conns", 0, "concurrent dials for -soak (default 2x capacity)")
		soakSize = flag.Int("soak-bytes", 64<<10, "echo payload per admitted connection for -soak")

		logJSON     = flag.Bool("log-json", false, "log as JSON lines instead of text")
		metricsDump = flag.String("metrics-dump", "", "write the final metrics snapshot to this file as JSON on exit")
		tracePath   = flag.String("trace", "", "with -soak: write a Chrome trace of every relayed flow (one causal span tree per dial) to this file")
	)
	flag.Parse()

	log := cliutil.NewLogger(*logJSON)
	reg := obs.NewRegistry()
	if *soak {
		runSoak(soakOpts{
			reg: reg, log: log, seed: *seed, capacity: *soakCap,
			conns: *soakCons, payload: *soakSize, debugAt: *debugAt,
			metricsDump: *metricsDump, tracePath: *tracePath,
		})
		return
	}
	if *debugAt != "" {
		_, dl, err := obs.ServeDebug(*debugAt, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "proxybench:", err)
			os.Exit(1)
		}
		fmt.Printf("proxybench: debug endpoint on http://%v/metrics (pprof under /debug/pprof/)\n", dl.Addr())
	}
	pktCount := reg.Counter("proxybench_packets_total")
	figCount := reg.Counter("proxybench_figures_total")
	latP99 := reg.Gauge("proxybench_last_p99_us")

	show := func(name string) bool { return *fig == "all" || *fig == name }
	emit := func(title string, c *stats.CDF) {
		incastproxy.WriteCDFTable(os.Stdout, title, c)
		if *points > 1 {
			for _, p := range c.Points(*points) {
				fmt.Printf("cdf %g %v\n", p.Prob, p.Latency)
			}
		}
		pktCount.Add(uint64(*packets))
		figCount.Add(1)
		latP99.Set(int64(c.Quantile(0.99) / units.Duration(units.Microsecond)))
		fmt.Println()
	}

	if show("4") {
		emit("Figure 4: user-space naive proxy per-packet latency (paper p99=359.17us)",
			incastproxy.Figure4(*packets, *seed))
	}
	if show("5a") {
		emit(fmt.Sprintf("Figure 5a: eBPF lower bound, modeled (%.0f%% NACK path; paper median=0.42us)", *nackPct*100),
			incastproxy.Figure5a(*packets, *nackPct, *seed+1))
		emit("Figure 5a: real Go packet-program runtime, measured on this machine",
			incastproxy.Figure5aMeasured(*packets, *nackPct))
	}
	if show("5b") {
		emit("Figure 5b: stack-inclusive upper bound (paper median=325.92us)",
			incastproxy.Figure5b(*packets, *seed+2))
	}

	if err := cliutil.DumpMetrics(*metricsDump, "proxybench", *seed, reg); err != nil {
		log.Error("proxybench: metrics dump failed", "err", err)
		os.Exit(1)
	}
	if *debugAt != "" {
		fmt.Println("proxybench: run complete; debug endpoint still serving (interrupt to exit)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

// soakOpts parameterizes one CLI soak run.
type soakOpts struct {
	reg         *obs.Registry
	log         *slog.Logger
	seed        int64
	capacity    int
	conns       int
	payload     int
	debugAt     string
	metricsDump string
	tracePath   string
}

// runSoak is the CLI face of internal/chaosnet's soak harness: the same
// invariants `make soak` enforces in CI, runnable by hand with a chosen
// seed and scale. With -trace it records the full causal story — one span
// tree per relayed flow (client dial, relay admission, target dial,
// splice) interleaved with breaker/shed instants — as Chrome trace JSON.
func runSoak(o soakOpts) {
	if o.debugAt != "" {
		_, dl, err := obs.ServeDebug(o.debugAt, o.reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "proxybench:", err)
			os.Exit(1)
		}
		fmt.Printf("proxybench: debug endpoint on http://%v/metrics\n", dl.Addr())
	}
	var tracer *obs.Tracer
	if o.tracePath != "" {
		tracer = obs.NewTracerWithClock(cliutil.WallClock(time.Now))
	}
	cfg := chaosnet.SoakConfig{
		Seed:         o.seed,
		Capacity:     o.capacity,
		Conns:        o.conns,
		PayloadBytes: o.payload,
		Faults: chaosnet.Faults{
			DelayProb:   0.05,
			DelayMin:    time.Millisecond,
			DelayMax:    5 * time.Millisecond,
			ResetProb:   0.2,
			ResetWindow: 256 << 10,
			StallProb:   0.1,
			StallFor:    50 * time.Millisecond,
			StallWindow: 64 << 10,
			MaxChunk:    4 << 10,
			Sleep:       time.Sleep,
		},
		IdleTimeout: 2 * time.Second,
		Now:         time.Now,
		Registry:    o.reg,
		Tracer:      tracer,
		Logger:      o.log,
	}
	res, err := chaosnet.RunSoak(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proxybench: soak:", err)
		os.Exit(1)
	}
	fmt.Printf("soak: conns=%d admitted=%d shed=%d faulted=%d hung=%d p99=%v\n",
		res.Conns, res.Admitted, res.Shed, res.Faulted, res.Hung, res.P99)
	fmt.Printf("soak: server accepted=%d sheds=%d idleClosed=%d\n",
		res.ServerAccepted, res.ServerSheds, res.IdleClosed)
	if err := cliutil.DumpMetrics(o.metricsDump, "proxybench -soak", o.seed, o.reg); err != nil {
		fmt.Fprintln(os.Stderr, "proxybench:", err)
		os.Exit(1)
	}
	if err := cliutil.DumpTrace(o.tracePath, tracer); err != nil {
		fmt.Fprintln(os.Stderr, "proxybench:", err)
		os.Exit(1)
	}
	if err := res.Check(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "proxybench:", err)
		os.Exit(1)
	}
	fmt.Println("soak: overload contract held")
}
