// Command proxybench reproduces the §5 host-stack measurements: per-packet
// latency CDFs for the user-space naive proxy (Figure 4) and the eBPF
// streamlined proxy's lower/upper bounds (Figure 5), plus the measured
// runtime of the real Go implementation of the proxy's packet program.
//
// Usage:
//
//	proxybench             # all three figures at 200k packets
//	proxybench -fig 4      # only Figure 4
//	proxybench -points 21  # also print CDF plot points
package main

import (
	"flag"
	"fmt"
	"os"

	incastproxy "incastproxy"
	"incastproxy/internal/stats"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "4 | 5a | 5b | all")
		packets = flag.Int("packets", 200_000, "packets per distribution")
		nackPct = flag.Float64("nack-fraction", 0.05, "fraction of trimmed-header packets (Fig 5a mix)")
		points  = flag.Int("points", 0, "also print N evenly spaced CDF points per figure")
		seed    = flag.Int64("seed", 1, "model random seed")
	)
	flag.Parse()

	show := func(name string) bool { return *fig == "all" || *fig == name }
	emit := func(title string, c *stats.CDF) {
		incastproxy.WriteCDFTable(os.Stdout, title, c)
		if *points > 1 {
			for _, p := range c.Points(*points) {
				fmt.Printf("cdf %g %v\n", p.Prob, p.Latency)
			}
		}
		fmt.Println()
	}

	if show("4") {
		emit("Figure 4: user-space naive proxy per-packet latency (paper p99=359.17us)",
			incastproxy.Figure4(*packets, *seed))
	}
	if show("5a") {
		emit(fmt.Sprintf("Figure 5a: eBPF lower bound, modeled (%.0f%% NACK path; paper median=0.42us)", *nackPct*100),
			incastproxy.Figure5a(*packets, *nackPct, *seed+1))
		emit("Figure 5a: real Go packet-program runtime, measured on this machine",
			incastproxy.Figure5aMeasured(*packets, *nackPct))
	}
	if show("5b") {
		emit("Figure 5b: stack-inclusive upper bound (paper median=325.92us)",
			incastproxy.Figure5b(*packets, *seed+2))
	}
}
