package incastproxy

import (
	"fmt"
	"io"
	"text/tabwriter"

	"incastproxy/internal/control"
	"incastproxy/internal/hoststack"
	"incastproxy/internal/model"
	"incastproxy/internal/obs"
	"incastproxy/internal/rng"
	"incastproxy/internal/runner"
	"incastproxy/internal/stats"
	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

// FigurePoint is one (x, scheme) cell of a paper figure: the avg/min/max
// incast completion time over the sweep's repeated runs.
type FigurePoint struct {
	// Label describes the x-coordinate ("degree=8", "size=100MB",
	// "latency=1ms").
	Label string
	// X is the numeric x-coordinate (degree, bytes, or latency in us).
	X      float64
	Scheme Scheme

	Avg, Min, Max Duration
	// BaselineAvg carries the matching baseline average so reductions
	// can be computed per point.
	BaselineAvg Duration
	// ConfigHash fingerprints the exact spec that produced this point
	// (from the run manifest), so figure rows are traceable to a
	// reproducible configuration.
	ConfigHash uint64
	// Seed is the cell's base seed, derived from the sweep seed and the
	// cell's (point, scheme) coordinates so no two cells share a random
	// stream; the cell's repeated runs derive further from it.
	Seed int64
}

// Reduction returns this point's relative ICT reduction versus baseline.
func (p FigurePoint) Reduction() float64 { return stats.Reduction(p.BaselineAvg, p.Avg) }

// SweepConfig parameterizes the figure sweeps. PaperSweep reproduces §4's
// exact settings; QuickSweep is a reduced-size variant for benchmarks and
// CI (same shapes, minutes less wall time).
type SweepConfig struct {
	// Degrees is Figure 2 (Left)'s x-axis (fixed total size).
	Degrees []int
	// Fig2LeftTotal is the fixed total for the degree sweep.
	Fig2LeftTotal ByteSize

	// Sizes is Figure 2 (Right)'s x-axis (fixed degree).
	Sizes []ByteSize
	// Fig2RightDegree is the fixed degree for the size sweep.
	Fig2RightDegree int

	// Latencies is Figure 3's x-axis: the long-haul link propagation
	// delay (fixed degree and total size).
	Latencies  []Duration
	Fig3Degree int
	Fig3Total  ByteSize

	Runs int
	Seed int64

	// Policy supplies the adaptive cells' controller thresholds for
	// FigureAdaptive (zero value: control.DefaultConfig, retuned to the
	// cell's topology by the workload). Static cells ignore it.
	Policy control.Config

	// Parallel fans the sweep's (point, scheme) cells across worker
	// goroutines: 0 uses one worker per CPU (sweeps have no user hooks,
	// so this is always safe), 1 forces serial execution, N > 1 uses N
	// workers. Cell seeds are position-derived and results merge in cell
	// order, so figure tables are byte-identical at any setting.
	Parallel int

	// Shards runs each cell on the sharded parallel engine
	// (IncastSpec.Shards): 0 keeps the classic single engine, 2 gives
	// each datacenter its own event shard. Results are byte-identical at
	// any setting. Adaptive cells ignore it — their controller assumes
	// one engine — so mixed sweeps stay valid.
	Shards int

	// Fast evaluates every cell with the analytical model (internal/model)
	// instead of the packet-level simulator: microseconds per cell instead
	// of seconds, at the model's validated error bounds (see `figures -fig
	// modelerr` for the sim-vs-model table). Fast cells have no run-to-run
	// spread (Min == Avg == Max), no config hash, and cannot evaluate
	// SchemeAdaptive — a fast sweep that includes it fails loudly.
	Fast bool
}

// PaperSweep returns §4's settings: 100 MB totals, degree 4 for the size
// and latency sweeps, 5 runs per point.
func PaperSweep() SweepConfig {
	return SweepConfig{
		Degrees:         []int{2, 4, 8, 16, 32, 63},
		Fig2LeftTotal:   100 * MB,
		Sizes:           []ByteSize{20 * MB, 50 * MB, 100 * MB, 200 * MB},
		Fig2RightDegree: 4,
		Latencies: []Duration{
			units.Microsecond, 10 * units.Microsecond, 100 * units.Microsecond,
			units.Millisecond, 10 * units.Millisecond, 100 * units.Millisecond,
		},
		Fig3Degree: 4,
		Fig3Total:  100 * MB,
		Runs:       5,
		Seed:       1,
	}
}

// QuickSweep returns a reduced-size sweep preserving the figures' shapes:
// 40 MB totals keep the first-RTT burst above the 17 MB ToR buffer, and
// the 20 MB point keeps Figure 2 (Right)'s crossover.
func QuickSweep() SweepConfig {
	return SweepConfig{
		Degrees:         []int{2, 4, 8, 16},
		Fig2LeftTotal:   40 * MB,
		Sizes:           []ByteSize{10 * MB, 20 * MB, 40 * MB, 80 * MB},
		Fig2RightDegree: 4,
		Latencies: []Duration{
			10 * units.Microsecond, 100 * units.Microsecond,
			units.Millisecond, 10 * units.Millisecond,
		},
		Fig3Degree: 4,
		Fig3Total:  40 * MB,
		Runs:       2,
		Seed:       1,
	}
}

// fig2LeftPoints builds the degree axis's sweep points; shared by the
// figure sweep and the sim-vs-model error table (modelerr.go).
func fig2LeftPoints(cfg SweepConfig) []sweepPoint {
	points := make([]sweepPoint, 0, len(cfg.Degrees))
	for _, deg := range cfg.Degrees {
		deg := deg
		points = append(points, sweepPoint{
			label: fmt.Sprintf("degree=%d", deg),
			x:     float64(deg),
			customize: func(sp *IncastSpec) {
				sp.Degree = deg
				sp.TotalBytes = cfg.Fig2LeftTotal
			},
		})
	}
	return points
}

// Figure2Left regenerates the degree sweep: fixed total size, varying the
// number of senders, all three schemes.
func Figure2Left(cfg SweepConfig) ([]FigurePoint, error) {
	return runSweep(cfg, fig2LeftPoints(cfg))
}

// fig2RightPoints builds the size axis's sweep points.
func fig2RightPoints(cfg SweepConfig) []sweepPoint {
	points := make([]sweepPoint, 0, len(cfg.Sizes))
	for _, size := range cfg.Sizes {
		size := size
		points = append(points, sweepPoint{
			label: fmt.Sprintf("size=%v", size),
			x:     float64(size),
			customize: func(sp *IncastSpec) {
				sp.Degree = cfg.Fig2RightDegree
				sp.TotalBytes = size
			},
		})
	}
	return points
}

// Figure2Right regenerates the size sweep: fixed degree, varying total
// incast size.
func Figure2Right(cfg SweepConfig) ([]FigurePoint, error) {
	return runSweep(cfg, fig2RightPoints(cfg))
}

// fig3Points builds the latency axis's sweep points.
func fig3Points(cfg SweepConfig) []sweepPoint {
	points := make([]sweepPoint, 0, len(cfg.Latencies))
	for _, lat := range cfg.Latencies {
		lat := lat
		points = append(points, sweepPoint{
			label: fmt.Sprintf("latency=%v", lat),
			x:     lat.Microseconds(),
			customize: func(sp *IncastSpec) {
				sp.Degree = cfg.Fig3Degree
				sp.TotalBytes = cfg.Fig3Total
				t := DefaultTopo()
				t.InterDelay = lat
				sp.Topo = t
			},
		})
	}
	return points
}

// Figure3 regenerates the latency-gap sweep: fixed degree and size,
// varying the long-haul link latency (log-log in the paper).
func Figure3(cfg SweepConfig) ([]FigurePoint, error) {
	return runSweep(cfg, fig3Points(cfg))
}

// FigureAdaptive compares the adaptive control plane against both static
// choices: the Figure 2 (Right) size axis (where the right answer flips
// from direct to proxy partway along), then two stress rows at the sweep's
// Fig3Total size — bursty cross traffic parked on the proxy ToR (staying
// direct is right) and a proxy crash mid-epoch (failing over is right).
// Static schemes run each row unchanged, so every cell answers "what would
// this policy have cost here".
func FigureAdaptive(cfg SweepConfig) ([]FigurePoint, error) {
	points := make([]sweepPoint, 0, len(cfg.Sizes)+2)
	for _, size := range cfg.Sizes {
		size := size
		points = append(points, sweepPoint{
			label: fmt.Sprintf("size=%v", size),
			x:     float64(size),
			customize: func(sp *IncastSpec) {
				sp.Degree = cfg.Fig2RightDegree
				sp.TotalBytes = size
				sp.Control = cfg.Policy
			},
		})
	}
	points = append(points, sweepPoint{
		label: fmt.Sprintf("size=%v+cross", cfg.Fig3Total),
		x:     float64(cfg.Fig3Total),
		customize: func(sp *IncastSpec) {
			sp.Degree = cfg.Fig2RightDegree
			sp.TotalBytes = cfg.Fig3Total
			sp.Control = cfg.Policy
			sp.CrossTraffic = workload.CrossTrafficSpec{Flows: 2, Bytes: 40 * MB}
			sp.IncastDelay = 2 * units.Millisecond
		},
	})
	points = append(points, sweepPoint{
		label: fmt.Sprintf("size=%v+crash", cfg.Fig3Total),
		x:     float64(cfg.Fig3Total),
		customize: func(sp *IncastSpec) {
			sp.Degree = cfg.Fig2RightDegree
			sp.TotalBytes = cfg.Fig3Total
			sp.Control = cfg.Policy
			sp.ProxyCrashAt = units.Millisecond
			sp.ProxyRestartAfter = 50 * units.Millisecond
			sp.MaxSimTime = 2 * units.Second
		},
	})
	return runSweepSchemes(cfg, points,
		[]Scheme{Baseline, ProxyStreamlined, SchemeAdaptive})
}

// DetectLatencyPoint is one row of the detection-to-resteer latency
// figure: for an adaptive run at one incast size, the control plane's
// latency from declaring onset to executing the proxy steer. The
// quantiles come from the control_detect_to_steer_us windowed-quantile
// series in the run manifests the sweep already produces (averaged over
// the point's repeated runs); Steers counts the samples behind them.
type DetectLatencyPoint struct {
	Label          string
	X              float64
	Steers         uint64
	P50, P99, P999 Duration
	ConfigHash     uint64
	Seed           int64
}

// FigureDetectLatency sweeps the adaptive scheme over the size axis and
// reports how fast detection turned into a re-steer at each point. Cells
// where the controller never steered (the epoch fit the direct path)
// report zero quantiles and zero steers — that row is the figure's
// negative control, not a measurement gap.
func FigureDetectLatency(cfg SweepConfig) ([]DetectLatencyPoint, error) {
	runs := cfg.Runs
	if runs <= 0 {
		runs = 1
	}
	trial := func(i int) (DetectLatencyPoint, error) {
		size := cfg.Sizes[i]
		sp := IncastSpec{
			Scheme:     SchemeAdaptive,
			Degree:     cfg.Fig2RightDegree,
			TotalBytes: size,
			Control:    cfg.Policy,
			Runs:       runs,
			Seed:       rng.DeriveSeed(cfg.Seed, int64(i), int64(SchemeAdaptive)),
			Parallel:   1,
		}
		res, err := workload.Run(sp)
		if err != nil {
			return DetectLatencyPoint{}, fmt.Errorf("size=%v adaptive: %w", size, err)
		}
		p := DetectLatencyPoint{
			Label: fmt.Sprintf("size=%v", size),
			X:     float64(size),
			Seed:  sp.Seed,
		}
		var sampled int
		for _, rr := range res.Runs {
			if rr.Manifest == nil {
				continue
			}
			m := rr.Manifest.Metrics
			p.ConfigHash = rr.Manifest.ConfigHash
			if c, ok := m.Get("control_detect_to_steer_us_count"); ok {
				p.Steers += uint64(c)
			}
			p50, ok := m.Get(obs.LabeledName("control_detect_to_steer_us", "quantile", "0.5"))
			if !ok {
				continue
			}
			p99, _ := m.Get(obs.LabeledName("control_detect_to_steer_us", "quantile", "0.99"))
			p999, _ := m.Get(obs.LabeledName("control_detect_to_steer_us", "quantile", "0.999"))
			p.P50 += Duration(p50) * units.Microsecond
			p.P99 += Duration(p99) * units.Microsecond
			p.P999 += Duration(p999) * units.Microsecond
			sampled++
		}
		if sampled > 1 {
			p.P50 /= Duration(sampled)
			p.P99 /= Duration(sampled)
			p.P999 /= Duration(sampled)
		}
		return p, nil
	}
	return runner.Map(cfg.Parallel, len(cfg.Sizes), trial)
}

// WriteDetectLatencyTable renders the detection-to-resteer figure as an
// aligned table, one row per size point.
func WriteDetectLatencyTable(w io.Writer, title string, pts []DetectLatencyPoint) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# %s\n", title)
	fmt.Fprintln(tw, "point\tsteers\tp50\tp99\tp99.9\tconfig")
	for _, p := range pts {
		cfg := "-"
		if p.ConfigHash != 0 {
			cfg = fmt.Sprintf("%08x", p.ConfigHash>>32)
		}
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\t%s\n", p.Label, p.Steers, p.P50, p.P99, p.P999, cfg)
	}
	return tw.Flush()
}

// sweepPoint is one x-coordinate of a figure sweep; customize stamps the
// coordinate onto the spec.
type sweepPoint struct {
	label     string
	x         float64
	customize func(*IncastSpec)
}

// runSweep executes every (point, scheme) cell of a figure, fanning the
// cells across the sweep's worker pool and merging results in row order
// (points in input order, schemes within each row) so the output is
// byte-identical however many workers ran it.
//
// Each cell's seed is derived from the sweep seed and the cell's (point,
// scheme) position. Before this derivation every cell ran with the raw
// sweep seed, so samples were fully correlated across sweep points: a
// lucky spray pattern at degree 2 reappeared at every other degree,
// and the reported min/max understated the true run-to-run spread.
func runSweep(cfg SweepConfig, points []sweepPoint) ([]FigurePoint, error) {
	return runSweepSchemes(cfg, points, Schemes())
}

func runSweepSchemes(cfg SweepConfig, points []sweepPoint, schemes []Scheme) ([]FigurePoint, error) {
	runs := cfg.Runs
	if runs <= 0 {
		runs = 1
	}
	trial := func(i int) (FigurePoint, error) {
		pt, s := points[i/len(schemes)], schemes[i%len(schemes)]
		sp := IncastSpec{
			Scheme: s,
			Runs:   runs,
			Seed:   rng.DeriveSeed(cfg.Seed, int64(i/len(schemes)), int64(s)),
			// The cells themselves are the unit of parallelism; their
			// inner runs stay serial so the pool is not oversubscribed.
			Parallel: 1,
		}
		if s != SchemeAdaptive {
			sp.Shards = cfg.Shards
		}
		pt.customize(&sp)
		if cfg.Fast {
			prm, err := model.FromSpec(sp)
			if err != nil {
				return FigurePoint{}, fmt.Errorf("%s %v (fast): %w", pt.label, s, err)
			}
			pred := model.Predict(prm)
			// One closed-form number per cell: no run-to-run spread, no
			// manifest to hash.
			return FigurePoint{
				Label:  pt.label,
				X:      pt.x,
				Scheme: s,
				Avg:    pred.ICT,
				Min:    pred.ICT,
				Max:    pred.ICT,
				Seed:   sp.Seed,
			}, nil
		}
		res, err := workload.Run(sp)
		if err != nil {
			return FigurePoint{}, fmt.Errorf("%s %v: %w", pt.label, s, err)
		}
		p := FigurePoint{
			Label:  pt.label,
			X:      pt.x,
			Scheme: s,
			Avg:    res.ICT.Avg(),
			Min:    res.ICT.Min(),
			Max:    res.ICT.Max(),
			Seed:   sp.Seed,
		}
		if len(res.Runs) > 0 && res.Runs[0].Manifest != nil {
			p.ConfigHash = res.Runs[0].Manifest.ConfigHash
		}
		return p, nil
	}
	pts, err := runner.Map(cfg.Parallel, len(points)*len(schemes), trial)
	if err != nil {
		return nil, err
	}
	// Backfill each row's baseline average so reductions compute per point.
	for row := 0; row < len(points); row++ {
		var baseAvg Duration
		for col, s := range schemes {
			if s == Baseline {
				baseAvg = pts[row*len(schemes)+col].Avg
			}
		}
		for col := range schemes {
			pts[row*len(schemes)+col].BaselineAvg = baseAvg
		}
	}
	return pts, nil
}

// MeanReduction averages a proxy scheme's per-point reductions across a
// figure (how §4.2 quotes "on average" numbers).
func MeanReduction(pts []FigurePoint, s Scheme) float64 {
	var sum float64
	var n int
	for _, p := range pts {
		if p.Scheme == s && p.BaselineAvg > 0 {
			sum += p.Reduction()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WriteFigureTable renders sweep points as an aligned table (one row per
// x-coordinate and scheme), the format cmd/figures prints.
func WriteFigureTable(w io.Writer, title string, pts []FigurePoint) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# %s\n", title)
	fmt.Fprintln(tw, "point\tscheme\tavg\tmin\tmax\treduction\tconfig")
	for _, p := range pts {
		red := "-"
		if p.Scheme != Baseline && p.BaselineAvg > 0 {
			red = fmt.Sprintf("%.2f%%", p.Reduction()*100)
		}
		cfg := "-"
		if p.ConfigHash != 0 {
			cfg = fmt.Sprintf("%08x", p.ConfigHash>>32)
		}
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%v\t%s\t%s\n", p.Label, p.Scheme, p.Avg, p.Min, p.Max, red, cfg)
	}
	return tw.Flush()
}

// CDF re-exports the empirical CDF type used by the host-stack figures.
type CDF = stats.CDF

// Figure4 regenerates the user-space proxy per-packet latency CDF
// (p99 ~ 359 us in §5).
func Figure4(packets int, seed int64) *CDF {
	return hoststack.UserSpaceProxy().Measure(packets, seed)
}

// Figure5a regenerates the eBPF lower-bound CDF (median ~0.42 us), with
// the given fraction of trimmed-header (NACK-path) packets.
func Figure5a(packets int, nackFraction float64, seed int64) *CDF {
	return hoststack.EBPFLowerBound(nackFraction).Measure(packets, seed)
}

// Figure5aMeasured runs the real Go implementation of the proxy's packet
// program and returns its measured per-packet runtime CDF — the empirical
// counterpart to the modeled lower bound.
func Figure5aMeasured(packets int, nackFraction float64) *CDF {
	return hoststack.MeasureProgram(packets, nackFraction)
}

// Figure5b regenerates the stack-inclusive upper-bound CDF
// (median ~326 us).
func Figure5b(packets int, seed int64) *CDF {
	return hoststack.EBPFUpperBound().Measure(packets, seed)
}

// WriteCDFTable renders a latency CDF at standard quantiles.
func WriteCDFTable(w io.Writer, title string, c *CDF) error {
	fmt.Fprintf(w, "# %s (n=%d)\n", title, c.N())
	for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999} {
		if _, err := fmt.Fprintf(w, "p%-5.1f %v\n", q*100, c.Quantile(q)); err != nil {
			return err
		}
	}
	return nil
}
