module incastproxy

go 1.22
