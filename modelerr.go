package incastproxy

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"incastproxy/internal/model"
	"incastproxy/internal/rng"
	"incastproxy/internal/runner"
	"incastproxy/internal/workload"
)

// ModelErrorPoint is one cell of the sim-vs-model cross-validation table:
// the packet-level simulator's measurement beside the analytical model's
// prediction, with signed relative errors ((model-sim)/sim) per metric.
type ModelErrorPoint struct {
	Label  string
	Scheme Scheme
	// Regime is the model branch that produced the prediction.
	Regime string

	SimICT, ModelICT Duration
	SimP50, ModelP50 Duration
	SimP99, ModelP99 Duration
	// ICTErr/P50Err/P99Err are signed relative errors; negative means the
	// model under-predicts the simulator.
	ICTErr, P50Err, P99Err float64
	Seed                   int64
}

// FigureModelError runs the sweep's full grid — the Figure 2 (Left/Right)
// and Figure 3 axes — through both the packet-level simulator and the
// analytical model, and reports the per-cell prediction error. This is the
// model's accuracy audit: the validation tests in internal/model pin hard
// bounds on a fixed sub-grid, while this figure prints the live numbers for
// whatever sweep the caller configured. Adaptive is excluded (the model does
// not cover mid-epoch re-steering); cfg.Fast is ignored — the whole point is
// paying for the DES reference.
func FigureModelError(cfg SweepConfig) ([]ModelErrorPoint, error) {
	points := append(append(fig2LeftPoints(cfg), fig2RightPoints(cfg)...), fig3Points(cfg)...)
	schemes := Schemes()
	runs := cfg.Runs
	if runs <= 0 {
		runs = 1
	}
	trial := func(i int) (ModelErrorPoint, error) {
		pt, s := points[i/len(schemes)], schemes[i%len(schemes)]
		sp := IncastSpec{
			Scheme:   s,
			Runs:     runs,
			Seed:     rng.DeriveSeed(cfg.Seed, int64(i/len(schemes)), int64(s)),
			Parallel: 1,
			Shards:   cfg.Shards,
		}
		pt.customize(&sp)
		res, err := workload.Run(sp)
		if err != nil {
			return ModelErrorPoint{}, fmt.Errorf("%s %v (sim): %w", pt.label, s, err)
		}
		prm, err := model.FromSpec(sp)
		if err != nil {
			return ModelErrorPoint{}, fmt.Errorf("%s %v (model): %w", pt.label, s, err)
		}
		pred := model.Predict(prm)
		p := ModelErrorPoint{
			Label:    pt.label,
			Scheme:   s,
			Regime:   pred.Regime.String(),
			SimICT:   res.ICT.Avg(),
			ModelICT: pred.ICT,
			ModelP50: pred.P50,
			ModelP99: pred.P99,
			Seed:     sp.Seed,
		}
		// Average the per-run FCT quantiles the same way the ICT column
		// averages completion times.
		for _, rr := range res.Runs {
			p.SimP50 += rr.FlowFCT.P50
			p.SimP99 += rr.FlowFCT.P99
		}
		if n := Duration(len(res.Runs)); n > 0 {
			p.SimP50 /= n
			p.SimP99 /= n
		}
		p.ICTErr = signedRelErr(p.SimICT, p.ModelICT)
		p.P50Err = signedRelErr(p.SimP50, p.ModelP50)
		p.P99Err = signedRelErr(p.SimP99, p.ModelP99)
		return p, nil
	}
	return runner.Map(cfg.Parallel, len(points)*len(schemes), trial)
}

// signedRelErr is (model-sim)/sim, NaN-free: a zero sim measurement (which
// only degenerate cells produce) reports zero error rather than dividing.
func signedRelErr(sim, mod Duration) float64 {
	if sim == 0 {
		return 0
	}
	return (float64(mod) - float64(sim)) / float64(sim)
}

// MaxAbsModelError returns the grid's worst absolute ICT error — the single
// number to watch when recalibrating the model.
func MaxAbsModelError(pts []ModelErrorPoint) float64 {
	var worst float64
	for _, p := range pts {
		if e := math.Abs(p.ICTErr); e > worst {
			worst = e
		}
	}
	return worst
}

// WriteModelErrorTable renders the cross-validation table, one row per
// (point, scheme) cell.
func WriteModelErrorTable(w io.Writer, title string, pts []ModelErrorPoint) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# %s\n", title)
	fmt.Fprintln(tw, "point\tscheme\tregime\tict(sim)\tict(model)\tict err\tp50 err\tp99 err")
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%v\t%s\t%v\t%v\t%+.1f%%\t%+.1f%%\t%+.1f%%\n",
			p.Label, p.Scheme, p.Regime, p.SimICT, p.ModelICT,
			100*p.ICTErr, 100*p.P50Err, 100*p.P99Err)
	}
	return tw.Flush()
}
