package incastproxy

import (
	"strings"
	"testing"

	"incastproxy/internal/units"
)

func TestCompareSchemesHeadlineResult(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cmp, err := CompareSchemes(IncastSpec{Degree: 8, TotalBytes: 40 * MB, Runs: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheme{ProxyNaive, ProxyStreamlined} {
		if red := cmp.Reduction(s); red < 0.30 {
			t.Errorf("%v reduction = %.1f%%, want >= 30%%", s, red*100)
		}
	}
	if cmp.ICT(Baseline) <= 0 {
		t.Fatal("missing baseline ICT")
	}
}

func TestFigure2RightCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	cfg := SweepConfig{
		Sizes:           []ByteSize{10 * MB, 40 * MB},
		Fig2RightDegree: 4,
		Runs:            1,
		Seed:            3,
	}
	pts, err := Figure2Right(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byPoint := map[string]map[Scheme]FigurePoint{}
	for _, p := range pts {
		if byPoint[p.Label] == nil {
			byPoint[p.Label] = map[Scheme]FigurePoint{}
		}
		byPoint[p.Label][p.Scheme] = p
	}
	// Small incast: all three schemes roughly on par (within 2x).
	small := byPoint["size=10MB"]
	if r := small[ProxyStreamlined].Reduction(); r > 0.5 || r < -1.0 {
		t.Errorf("10MB: streamlined reduction %.2f, expected near parity", r)
	}
	// Large incast: clear proxy win.
	large := byPoint["size=40MB"]
	if r := large[ProxyStreamlined].Reduction(); r < 0.3 {
		t.Errorf("40MB: streamlined reduction %.2f, want > 0.3", r)
	}
	if r := large[ProxyNaive].Reduction(); r < 0.3 {
		t.Errorf("40MB: naive reduction %.2f, want > 0.3", r)
	}
}

func TestFigure3BenefitGrowsWithLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	cfg := SweepConfig{
		Latencies:  []Duration{100 * Microsecond, Millisecond},
		Fig3Degree: 4,
		Fig3Total:  40 * MB,
		Runs:       1,
		Seed:       3,
	}
	pts, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var redLow, redHigh float64
	for _, p := range pts {
		if p.Scheme != ProxyStreamlined {
			continue
		}
		if p.Label == "latency=100us" {
			redLow = p.Reduction()
		} else {
			redHigh = p.Reduction()
		}
	}
	if redHigh <= redLow {
		t.Errorf("reduction must grow with latency: 100us=%.2f 1ms=%.2f", redLow, redHigh)
	}
}

func TestFigure2LeftBenefitGrowsWithDegree(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	cfg := SweepConfig{
		Degrees:       []int{2, 16},
		Fig2LeftTotal: 40 * MB,
		Runs:          1,
		Seed:          3,
	}
	pts, err := Figure2Left(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := MeanReduction(pts, ProxyStreamlined); got <= 0 {
		t.Errorf("mean streamlined reduction %.2f, want positive", got)
	}
	if got := MeanReduction(pts, ProxyNaive); got <= 0 {
		t.Errorf("mean naive reduction %.2f, want positive", got)
	}
}

func TestWriteFigureTable(t *testing.T) {
	pts := []FigurePoint{
		{Label: "degree=4", X: 4, Scheme: Baseline, Avg: 50 * Millisecond, BaselineAvg: 50 * Millisecond},
		{Label: "degree=4", X: 4, Scheme: ProxyStreamlined, Avg: 15 * Millisecond, BaselineAvg: 50 * Millisecond},
	}
	var sb strings.Builder
	if err := WriteFigureTable(&sb, "Fig 2 (Left)", pts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig 2 (Left)", "baseline", "proxy-streamlined", "70.00%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4And5Quantiles(t *testing.T) {
	f4 := Figure4(50_000, 1)
	if p99 := f4.Quantile(0.99); p99 < 200*Microsecond || p99 > 600*Microsecond {
		t.Fatalf("Fig4 p99 = %v", p99)
	}
	f5a := Figure5a(50_000, 0.1, 2)
	if med := f5a.Quantile(0.5); med > units.Microsecond {
		t.Fatalf("Fig5a median = %v, want sub-us", med)
	}
	f5b := Figure5b(50_000, 3)
	if med := f5b.Quantile(0.5); med < 100*Microsecond {
		t.Fatalf("Fig5b median = %v, want hundreds of us", med)
	}
	var sb strings.Builder
	if err := WriteCDFTable(&sb, "Fig 4", f4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "p99") {
		t.Fatal("CDF table missing p99 row")
	}
}

func TestFigure5aMeasuredIsFast(t *testing.T) {
	c := Figure5aMeasured(10_000, 0.05)
	if med := c.Quantile(0.5); med > 5*Microsecond {
		t.Fatalf("measured program median %v", med)
	}
}

func TestMeanReductionEmpty(t *testing.T) {
	if MeanReduction(nil, ProxyNaive) != 0 {
		t.Fatal("empty points should give 0")
	}
}

func TestSweepDefaults(t *testing.T) {
	p := PaperSweep()
	if p.Fig2LeftTotal != 100*MB || p.Runs != 5 || len(p.Latencies) != 6 {
		t.Fatalf("paper sweep: %+v", p)
	}
	q := QuickSweep()
	if q.Fig2LeftTotal != 40*MB || len(q.Degrees) == 0 {
		t.Fatalf("quick sweep: %+v", q)
	}
}

func TestConstantDelay(t *testing.T) {
	d := ConstantDelay(3 * Microsecond)
	if d.Mean() != 3*Microsecond {
		t.Fatal("constant delay wrong")
	}
}

func TestDefaultTopoIsPaperScale(t *testing.T) {
	tp := DefaultTopo()
	if tp.Spines != 8 || tp.Backbones != 64 || tp.LinkRate != 100*Gbps {
		t.Fatalf("default topo: %+v", tp)
	}
}

func TestRunChaosThroughAPI(t *testing.T) {
	// Proxy crash mid-incast with direct-path failover: the flows must
	// all complete, and the run must report the crash in its timeline.
	res, err := RunChaos(ChaosSpec{
		Incast: IncastSpec{
			Degree:     4,
			TotalBytes: 8 * MB,
			Seed:       42,
		},
		CrashAt:        500 * Microsecond,
		DetectionDelay: 300 * Microsecond,
		Mode:           FailoverDirect,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.FailedOver == 0 || len(res.Timeline) == 0 {
		t.Fatalf("completed=%v failedOver=%d timeline=%v",
			res.Completed, res.FailedOver, res.Timeline)
	}
}
