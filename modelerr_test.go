package incastproxy

import (
	"math"
	"strings"
	"testing"

	"incastproxy/internal/units"
)

// smallGrid is a 2x2x2-axis sweep small enough for CI: every figure axis has
// two points, one DES run per cell.
func smallGrid() SweepConfig {
	return SweepConfig{
		Degrees:         []int{2, 8},
		Fig2LeftTotal:   40 * MB,
		Sizes:           []ByteSize{10 * MB, 40 * MB},
		Fig2RightDegree: 4,
		Latencies:       []Duration{100 * units.Microsecond, units.Millisecond},
		Fig3Degree:      4,
		Fig3Total:       40 * MB,
		Runs:            1,
		Seed:            7,
	}
}

func TestFigureModelErrorSmallGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	pts, err := FigureModelError(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	// 6 points x 3 schemes.
	if want := 18; len(pts) != want {
		t.Fatalf("got %d cells, want %d", len(pts), want)
	}
	for _, p := range pts {
		if p.SimICT <= 0 || p.ModelICT <= 0 {
			t.Fatalf("%s %v: empty cell %+v", p.Label, p.Scheme, p)
		}
		if p.Regime == "" {
			t.Fatalf("%s %v: missing regime", p.Label, p.Scheme)
		}
		if math.IsNaN(p.ICTErr) || math.IsNaN(p.P50Err) || math.IsNaN(p.P99Err) {
			t.Fatalf("%s %v: NaN error column %+v", p.Label, p.Scheme, p)
		}
	}
	// The whole grid sits inside the loosest validated bound (the 100 us
	// streamlined band; see internal/model's validation tests for the
	// per-regime bounds).
	if worst := MaxAbsModelError(pts); worst > 0.60 {
		t.Errorf("worst ICT error %.1f%% exceeds the validated 60%% envelope", 100*worst)
	}
	var sb strings.Builder
	if err := WriteModelErrorTable(&sb, "sim vs model", pts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# sim vs model", "degree=2", "size=40MB", "latency=1ms", "regime"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestFastSweepMatchesModel pins the fast path's contract: a Fast sweep
// returns one model evaluation per cell (no spread), agrees with the same
// grid's DES shape on the headline comparisons, and costs effectively
// nothing.
func TestFastSweepMatchesModel(t *testing.T) {
	cfg := QuickSweep()
	cfg.Fast = true
	for name, run := range map[string]func(SweepConfig) ([]FigurePoint, error){
		"fig2l": Figure2Left, "fig2r": Figure2Right, "fig3": Figure3,
	} {
		pts, err := run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(pts) == 0 {
			t.Fatalf("%s: no points", name)
		}
		for _, p := range pts {
			if p.Avg <= 0 || p.Min != p.Avg || p.Max != p.Avg {
				t.Fatalf("%s %s %v: fast cells must be spread-free: %+v", name, p.Label, p.Scheme, p)
			}
			if p.ConfigHash != 0 {
				t.Fatalf("%s %s: fast cells have no manifest hash", name, p.Label)
			}
		}
	}
	// Figure 2 (Left) at 40 MB: the streamlined proxy must beat the
	// baseline at every degree >= 2 — the paper's headline, which the model
	// must reproduce for the fast table to be worth printing.
	pts, err := Figure2Left(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[Scheme]map[string]Duration{}
	for _, p := range pts {
		if byScheme[p.Scheme] == nil {
			byScheme[p.Scheme] = map[string]Duration{}
		}
		byScheme[p.Scheme][p.Label] = p.Avg
	}
	for label, base := range byScheme[Baseline] {
		if label == "degree=1" {
			continue
		}
		if prox := byScheme[ProxyStreamlined][label]; prox >= base {
			t.Errorf("%s: fast model says streamlined %v >= baseline %v", label, prox, base)
		}
	}
	// Baseline backfill must work so reductions print.
	for _, p := range pts {
		if p.BaselineAvg <= 0 {
			t.Errorf("%s %v: missing baseline backfill", p.Label, p.Scheme)
		}
	}
}

// TestFastSweepRejectsAdaptive: the model cannot evaluate mid-epoch
// re-steering, so a fast sweep that includes SchemeAdaptive must fail
// loudly instead of printing a silently-wrong row.
func TestFastSweepRejectsAdaptive(t *testing.T) {
	cfg := QuickSweep()
	cfg.Fast = true
	if _, err := FigureAdaptive(cfg); err == nil {
		t.Fatal("fast FigureAdaptive must error")
	}
}
