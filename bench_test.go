package incastproxy

// Benchmark harness: one bench per paper table/figure (see DESIGN.md §4).
//
// Each simulation bench runs a reduced-size instance (documented inline)
// that preserves the corresponding figure's shape; `cmd/figures -full`
// regenerates the paper-scale series. Benchmarks report simulated events
// and incast completion times as custom metrics so `go test -bench` output
// doubles as a results table.

import (
	"fmt"
	"testing"

	"incastproxy/internal/hoststack"
	"incastproxy/internal/workload"
)

// benchIncast runs one incast spec b.N times, reporting ICT and event
// throughput.
func benchIncast(b *testing.B, spec IncastSpec) {
	b.Helper()
	var lastICT Duration
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := RunIncast(spec)
		if err != nil {
			b.Fatal(err)
		}
		lastICT = res.ICT.Avg()
		events = res.Runs[0].Events
	}
	b.ReportMetric(lastICT.Milliseconds(), "ict-ms")
	b.ReportMetric(float64(events), "events")
}

// BenchmarkFig2LeftDegreeSweep regenerates Figure 2 (Left) at reduced
// scale: ICT vs incast degree for all three schemes, 40 MB total.
func BenchmarkFig2LeftDegreeSweep(b *testing.B) {
	for _, deg := range []int{4, 8} {
		for _, s := range Schemes() {
			b.Run(fmt.Sprintf("degree=%d/%v", deg, s), func(b *testing.B) {
				benchIncast(b, IncastSpec{Scheme: s, Degree: deg, TotalBytes: 40 * MB, Runs: 1, Seed: 7})
			})
		}
	}
}

// BenchmarkFig2RightSizeSweep regenerates Figure 2 (Right) at reduced
// scale: ICT vs incast size at degree 4, bracketing the ~20 MB crossover.
func BenchmarkFig2RightSizeSweep(b *testing.B) {
	for _, size := range []ByteSize{10 * MB, 40 * MB} {
		for _, s := range Schemes() {
			b.Run(fmt.Sprintf("size=%v/%v", size, s), func(b *testing.B) {
				benchIncast(b, IncastSpec{Scheme: s, Degree: 4, TotalBytes: size, Runs: 1, Seed: 7})
			})
		}
	}
}

// BenchmarkFig3LatencySweep regenerates Figure 3 at reduced scale: ICT vs
// long-haul link latency at degree 4, 40 MB.
func BenchmarkFig3LatencySweep(b *testing.B) {
	for _, lat := range []Duration{100 * Microsecond, Millisecond} {
		for _, s := range Schemes() {
			b.Run(fmt.Sprintf("latency=%v/%v", lat, s), func(b *testing.B) {
				t := DefaultTopo()
				t.InterDelay = lat
				benchIncast(b, IncastSpec{Scheme: s, Degree: 4, TotalBytes: 40 * MB, Runs: 1, Seed: 7, Topo: t})
			})
		}
	}
}

// BenchmarkFastSweep1000Cells prices the analytical fast path at sweep
// scale: a 1002-cell Figure 2 (Right) grid (334 sizes x 3 schemes) evaluated
// entirely by the model, serially. Contrast with BenchmarkFig2LeftDegreeSweep,
// whose six DES cells cost seconds each — `make bench-json` records both in
// BENCH_model.json, and that ratio is the fast path's reason to exist.
func BenchmarkFastSweep1000Cells(b *testing.B) {
	sizes := make([]ByteSize, 0, 334)
	for i := 1; i <= 334; i++ {
		sizes = append(sizes, ByteSize(i)*MB)
	}
	cfg := SweepConfig{
		Sizes:           sizes,
		Fig2RightDegree: 8,
		Runs:            1,
		Seed:            7,
		Parallel:        1,
		Fast:            true,
	}
	var cells int
	for i := 0; i < b.N; i++ {
		pts, err := Figure2Right(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cells = len(pts)
	}
	b.ReportMetric(float64(cells), "cells")
}

// BenchmarkFig1BottleneckShift measures the Figure 1 telemetry run: where
// the hot queue sits under baseline vs streamlined.
func BenchmarkFig1BottleneckShift(b *testing.B) {
	for _, s := range []Scheme{Baseline, ProxyStreamlined} {
		b.Run(s.String(), func(b *testing.B) {
			var rxQ, pxQ float64
			for i := 0; i < b.N; i++ {
				res, err := RunIncast(IncastSpec{Scheme: s, Degree: 8, TotalBytes: 40 * MB, Runs: 1, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				rxQ = float64(res.Runs[0].ReceiverToRMaxQueue)
				pxQ = float64(res.Runs[0].ProxyToRMaxQueue)
			}
			b.ReportMetric(rxQ/1e6, "rxToR-MB")
			b.ReportMetric(pxQ/1e6, "pxToR-MB")
		})
	}
}

// BenchmarkFig4UserspaceCDF regenerates the Figure 4 user-space proxy
// latency distribution and reports its p50/p99.
func BenchmarkFig4UserspaceCDF(b *testing.B) {
	var p50, p99 Duration
	for i := 0; i < b.N; i++ {
		c := Figure4(100_000, 1)
		p50, p99 = c.Quantile(0.5), c.Quantile(0.99)
	}
	b.ReportMetric(p50.Microseconds(), "p50-us")
	b.ReportMetric(p99.Microseconds(), "p99-us")
}

// BenchmarkFig5aEBPFLowerBound regenerates the modeled eBPF lower bound.
func BenchmarkFig5aEBPFLowerBound(b *testing.B) {
	var p50 Duration
	for i := 0; i < b.N; i++ {
		p50 = Figure5a(100_000, 0.05, 2).Quantile(0.5)
	}
	b.ReportMetric(p50.Microseconds(), "p50-us")
}

// BenchmarkFig5aMeasuredProgram measures the real Go implementation of the
// proxy's per-packet program (the empirical lower bound).
func BenchmarkFig5aMeasuredProgram(b *testing.B) {
	var p50 Duration
	for i := 0; i < b.N; i++ {
		p50 = Figure5aMeasured(50_000, 0.05).Quantile(0.5)
	}
	b.ReportMetric(p50.Microseconds(), "p50-us")
}

// BenchmarkFig5bEBPFUpperBound regenerates the stack-inclusive upper bound.
func BenchmarkFig5bEBPFUpperBound(b *testing.B) {
	var p50 Duration
	for i := 0; i < b.N; i++ {
		p50 = Figure5b(100_000, 3).Quantile(0.5)
	}
	b.ReportMetric(p50.Microseconds(), "p50-us")
}

// BenchmarkAblationNoEarlyFeedback tests §3 Insight #2: a streamlined
// proxy that merely relays (no local NACKs) should lose most of the
// benefit.
func BenchmarkAblationNoEarlyFeedback(b *testing.B) {
	for _, noEarly := range []bool{false, true} {
		name := "early-nack"
		if noEarly {
			name = "relay-only"
		}
		b.Run(name, func(b *testing.B) {
			benchIncast(b, IncastSpec{
				Scheme: ProxyStreamlined, Degree: 8, TotalBytes: 40 * MB,
				Runs: 1, Seed: 7, NoEarlyFeedback: noEarly,
			})
		})
	}
}

// BenchmarkAblationBaselineTrimming gives the baseline receiver-side
// trimming and NACKs: loss detection still pays the long loop.
func BenchmarkAblationBaselineTrimming(b *testing.B) {
	for _, trim := range []bool{false, true} {
		name := "drop-rto"
		if trim {
			name = "trim-nack"
		}
		b.Run(name, func(b *testing.B) {
			benchIncast(b, IncastSpec{
				Scheme: Baseline, Degree: 8, TotalBytes: 40 * MB,
				Runs: 1, Seed: 7, TrimReceiverDC: trim,
			})
		})
	}
}

// BenchmarkAblationInitialWindow sweeps the §4.1 IW = 1 BDP choice.
func BenchmarkAblationInitialWindow(b *testing.B) {
	for _, scale := range []float64{0.25, 1, 2} {
		b.Run(fmt.Sprintf("iw=%.2fxBDP", scale), func(b *testing.B) {
			benchIncast(b, IncastSpec{
				Scheme: Baseline, Degree: 4, TotalBytes: 40 * MB,
				Runs: 1, Seed: 7, IWScale: scale,
			})
		})
	}
}

// BenchmarkRelatedWorkGeminiCC compares the Gemini-like cross-DC
// congestion control (milder decrease for long-RTT flows) as a baseline
// fix-up: it helps steady-state utilization but, as the paper argues,
// "overlooks the more severe issue of network overload when windows are
// too large" — the proxy still wins.
func BenchmarkRelatedWorkGeminiCC(b *testing.B) {
	cases := []struct {
		name   string
		scheme Scheme
		gemini bool
	}{
		{"baseline-dctcp", Baseline, false},
		{"baseline-gemini", Baseline, true},
		{"proxy-streamlined", ProxyStreamlined, false},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			benchIncast(b, IncastSpec{Scheme: c.scheme, Degree: 8,
				TotalBytes: 40 * MB, Runs: 1, Seed: 7, Gemini: c.gemini})
		})
	}
}

// BenchmarkAblationPacketSpraying compares §4.1's per-packet spraying
// against per-flow ECMP hashing: hashing concentrates flows on fewer
// paths (collisions), spraying balances but reorders.
func BenchmarkAblationPacketSpraying(b *testing.B) {
	for _, spray := range []bool{true, false} {
		name := "per-flow-ecmp"
		if spray {
			name = "spraying"
		}
		b.Run(name, func(b *testing.B) {
			t := DefaultTopo()
			t.Spray = spray
			benchIncast(b, IncastSpec{Scheme: ProxyStreamlined, Degree: 8,
				TotalBytes: 40 * MB, Runs: 1, Seed: 7, Topo: t})
		})
	}
}

// BenchmarkFutureWork1InferringProxy compares the trimming-dependent
// streamlined proxy against the future-work #1 inferring proxy, which
// detects losses from sequence gaps without router support.
func BenchmarkFutureWork1InferringProxy(b *testing.B) {
	for _, s := range []Scheme{workload.ProxyStreamlined, workload.ProxyInferring} {
		b.Run(s.String(), func(b *testing.B) {
			var falseNacks uint64
			var lastICT Duration
			for i := 0; i < b.N; i++ {
				res, err := RunIncast(IncastSpec{Scheme: s, Degree: 8, TotalBytes: 40 * MB, Runs: 1, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				lastICT = res.ICT.Avg()
				falseNacks = res.Runs[0].ProxyFalseNacks
			}
			b.ReportMetric(lastICT.Milliseconds(), "ict-ms")
			b.ReportMetric(float64(falseNacks), "false-nacks")
		})
	}
}

// BenchmarkFutureWork2HookPlacement compares per-packet proxy overhead at
// each candidate hook (user space, TC eBPF, XDP, NIC offload).
func BenchmarkFutureWork2HookPlacement(b *testing.B) {
	for _, p := range hoststack.HookPlacements(0.05) {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var p50 Duration
			for i := 0; i < b.N; i++ {
				p50 = p.Measure(100_000, 7).Quantile(0.5)
			}
			b.ReportMetric(p50.Microseconds(), "p50-us")
		})
	}
}

// BenchmarkFutureWork3Orchestration runs two concurrent incasts: sharing
// one proxy vs orchestrated onto two proxies. Contention at a shared proxy
// down-ToR is exactly what future work #3's selection problem avoids.
func BenchmarkFutureWork3Orchestration(b *testing.B) {
	buildFlows := func(proxies []int) []FlowSpec {
		var flows []FlowSpec
		id := FlowID(1)
		for inc := 0; inc < 2; inc++ {
			proxyHost := proxies[inc%len(proxies)]
			for s := 0; s < 4; s++ {
				flows = append(flows, FlowSpec{
					ID:    id,
					Src:   HostRef{DC: 0, Host: inc*4 + s},
					Dst:   HostRef{DC: 1, Host: inc},
					Bytes: 10 * MB,
					Via:   &ProxyRef{Scheme: ProxyStreamlined, At: HostRef{DC: 0, Host: proxyHost}},
				})
				id++
			}
		}
		return flows
	}
	for _, tc := range []struct {
		name    string
		proxies []int
	}{
		{"shared-proxy", []int{63}},
		{"orchestrated-two-proxies", []int{62, 63}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var makespan Duration
			for i := 0; i < b.N; i++ {
				res, err := RunScenario(Scenario{Flows: buildFlows(tc.proxies), Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.Makespan
			}
			b.ReportMetric(makespan.Milliseconds(), "makespan-ms")
		})
	}
}

// BenchmarkScenarioMoE measures a small cross-DC Mixture-of-Experts
// dispatch phase (the §2 motivating workload) under direct vs proxied
// routing.
func BenchmarkScenarioMoE(b *testing.B) {
	run := func(b *testing.B, proxied bool) {
		// 6 local + 2 remote experts at 8 MB/pair: each remote expert
		// receives a 48 MB cross-DC incast — past the Figure 2 (Right)
		// crossover, so proxying should pay off.
		cfg := workload.MoEConfig{
			LocalExperts:  6,
			RemoteExperts: 2,
			BytesPerPair:  8 * MB,
			Phases:        1,
			ProxyHost:     [2]int{63, 63},
		}
		if proxied {
			s := ProxyStreamlined
			cfg.ProxyCrossDC = &s
		}
		flows, _ := workload.MoEAllToAll(cfg, 1)
		var makespan Duration
		for i := 0; i < b.N; i++ {
			res, err := RunScenario(Scenario{Flows: flows, Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			makespan = res.Makespan
		}
		b.ReportMetric(makespan.Milliseconds(), "makespan-ms")
	}
	b.Run("direct", func(b *testing.B) { run(b, false) })
	b.Run("proxied", func(b *testing.B) { run(b, true) })
}

// BenchmarkSweepSerialVsParallel measures the deterministic runner on a
// reduced Figure 2 (Left) sweep: the parallel=N wall-clock over parallel=1
// is the experiment-harness speedup (≈ min(N, cells, cores)× on idle
// hardware), while allocs/op tracks the pooled event path — outputs are
// byte-identical across rows by construction (TestFigureTableSerialVsParallel).
func BenchmarkSweepSerialVsParallel(b *testing.B) {
	for _, par := range []int{1, 4} {
		par := par
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			cfg := SweepConfig{
				Degrees:       []int{2, 4, 8},
				Fig2LeftTotal: 8 * MB,
				Runs:          2,
				Seed:          1,
				Parallel:      par,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Figure2Left(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsOverhead quantifies what the observability layer costs a
// simulated incast: the registry's lazy collectors should keep the
// always-on instrumented run within a few percent of the uninstrumented
// baseline, while full event tracing pays for its per-event appends.
// Compare ns/op across the three sub-benches (ISSUE budget: metrics ≤5%).
func BenchmarkObsOverhead(b *testing.B) {
	base := IncastSpec{Scheme: ProxyStreamlined, Degree: 4, TotalBytes: 8 * MB, Runs: 1, Seed: 7}
	cases := []struct {
		name string
		obs  *ObsConfig
	}{
		{"uninstrumented", &ObsConfig{Disable: true}},
		{"metrics", nil}, // the always-on default
		{"metrics+trace", &ObsConfig{Trace: true}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			spec := base
			spec.Obs = c.obs
			benchIncast(b, spec)
		})
	}
}
