package cliutil

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestWaitUntilImmediateTrue(t *testing.T) {
	calls := 0
	if !WaitUntil(time.Second, time.Millisecond, func() bool { calls++; return true }) {
		t.Fatal("immediately-true condition reported false")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestWaitUntilEventuallyTrue(t *testing.T) {
	var flag atomic.Bool
	go func() {
		time.Sleep(10 * time.Millisecond)
		flag.Store(true)
	}()
	if !WaitUntil(5*time.Second, time.Millisecond, flag.Load) {
		t.Fatal("condition became true but WaitUntil missed it")
	}
}

func TestWaitUntilDeadline(t *testing.T) {
	start := time.Now()
	if WaitUntil(20*time.Millisecond, time.Millisecond, func() bool { return false }) {
		t.Fatal("never-true condition reported true")
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("returned after %v, before the deadline", el)
	}
}

func TestWaitUntilZeroIntervalDefaults(t *testing.T) {
	// interval <= 0 must not spin or panic.
	n := 0
	if !WaitUntil(time.Second, 0, func() bool { n++; return n >= 3 }) {
		t.Fatal("condition not reached")
	}
}
