package cliutil

import (
	"fmt"
	"log/slog"
	"os"

	"incastproxy/internal/obs"
)

// NewLogger builds the standard CLI logger: slog text to stderr, or JSON
// when jsonFormat is set (one object per line, machine-ingestable). Both
// binaries (relayd, proxybench) route their operational log lines — with
// trace IDs where a flow is in scope — through this.
func NewLogger(jsonFormat bool) *slog.Logger {
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

// DumpMetrics writes a registry's final snapshot to path as deterministic
// manifest JSON (the -metrics-dump flag). label becomes the manifest's
// config string so the dump self-describes which invocation produced it.
func DumpMetrics(path, label string, seed int64, reg *obs.Registry) error {
	if path == "" || reg == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics dump: %w", err)
	}
	defer f.Close()
	if err := obs.NewManifest(seed, label, reg.Snapshot()).WriteJSON(f); err != nil {
		return fmt.Errorf("metrics dump: %w", err)
	}
	return f.Close()
}

// DumpTrace writes a tracer's events to path as Chrome trace-event JSON
// (the -trace flag; load in Perfetto / chrome://tracing).
func DumpTrace(path string, tr *obs.Tracer) error {
	if path == "" || tr == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace dump: %w", err)
	}
	defer f.Close()
	if err := tr.WriteChromeTrace(f); err != nil {
		return fmt.Errorf("trace dump: %w", err)
	}
	return f.Close()
}
