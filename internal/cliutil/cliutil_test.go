package cliutil

import (
	"testing"

	"incastproxy/internal/units"
)

func TestParseSize(t *testing.T) {
	cases := map[string]units.ByteSize{
		"40MB":   40 * units.MB,
		"1.5GB":  1500 * units.MB,
		"100KB":  100 * units.KB,
		"512B":   512,
		"1000":   1000,
		" 2 MB ": 2 * units.MB,
		"0MB":    0,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "-5MB", "MB"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) should fail", bad)
		}
	}
}

func TestParseDuration(t *testing.T) {
	cases := map[string]units.Duration{
		"100us": 100 * units.Microsecond,
		"1ms":   units.Millisecond,
		"2.5s":  2500 * units.Millisecond,
		"500ns": 500 * units.Nanosecond,
		"7ps":   7 * units.Picosecond,
	}
	for in, want := range cases {
		got, err := ParseDuration(in)
		if err != nil || got != want {
			t.Errorf("ParseDuration(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "5", "abcms", "-1ms"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) should fail", bad)
		}
	}
}

func TestParseRate(t *testing.T) {
	cases := map[string]units.BitRate{
		"100Gbps": 100 * units.Gbps,
		"10Mbps":  10 * units.Mbps,
		"1.5Kbps": 1500,
		"9bps":    9,
	}
	for in, want := range cases {
		got, err := ParseRate(in)
		if err != nil || got != want {
			t.Errorf("ParseRate(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "100", "fastbps"} {
		if _, err := ParseRate(bad); err == nil {
			t.Errorf("ParseRate(%q) should fail", bad)
		}
	}
}
