// Package cliutil provides the human-friendly size/duration parsing shared
// by the command-line tools (incastsim, relayd, figures).
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"incastproxy/internal/units"
)

// ParseSize parses "40MB", "1.5GB", "100KB", "512B", or a bare byte count.
// Units are decimal (1 MB = 1e6 B), matching the paper.
func ParseSize(s string) (units.ByteSize, error) {
	raw := strings.TrimSpace(strings.ToUpper(s))
	if raw == "" {
		return 0, fmt.Errorf("cliutil: empty size")
	}
	mult := units.Byte
	switch {
	case strings.HasSuffix(raw, "GB"):
		mult, raw = units.GB, strings.TrimSuffix(raw, "GB")
	case strings.HasSuffix(raw, "MB"):
		mult, raw = units.MB, strings.TrimSuffix(raw, "MB")
	case strings.HasSuffix(raw, "KB"):
		mult, raw = units.KB, strings.TrimSuffix(raw, "KB")
	case strings.HasSuffix(raw, "B"):
		raw = strings.TrimSuffix(raw, "B")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("cliutil: bad size %q", s)
	}
	return units.ByteSize(v * float64(mult)), nil
}

// ParseDuration parses "100us", "1ms", "2.5s", "500ns" into simulated
// duration.
func ParseDuration(s string) (units.Duration, error) {
	raw := strings.TrimSpace(strings.ToLower(s))
	if raw == "" {
		return 0, fmt.Errorf("cliutil: empty duration")
	}
	mult := units.Microsecond
	switch {
	case strings.HasSuffix(raw, "us"):
		mult, raw = units.Microsecond, strings.TrimSuffix(raw, "us")
	case strings.HasSuffix(raw, "ms"):
		mult, raw = units.Millisecond, strings.TrimSuffix(raw, "ms")
	case strings.HasSuffix(raw, "ns"):
		mult, raw = units.Nanosecond, strings.TrimSuffix(raw, "ns")
	case strings.HasSuffix(raw, "ps"):
		mult, raw = units.Picosecond, strings.TrimSuffix(raw, "ps")
	case strings.HasSuffix(raw, "s"):
		mult, raw = units.Second, strings.TrimSuffix(raw, "s")
	default:
		return 0, fmt.Errorf("cliutil: duration %q needs a unit (ps/ns/us/ms/s)", s)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("cliutil: bad duration %q", s)
	}
	return units.Duration(v * float64(mult)), nil
}

// ParseRate parses "100Gbps", "10Mbps", "1Gbps".
func ParseRate(s string) (units.BitRate, error) {
	raw := strings.TrimSpace(s)
	lower := strings.ToLower(raw)
	mult := units.BitPerSecond
	switch {
	case strings.HasSuffix(lower, "gbps"):
		mult, raw = units.Gbps, raw[:len(raw)-4]
	case strings.HasSuffix(lower, "mbps"):
		mult, raw = units.Mbps, raw[:len(raw)-4]
	case strings.HasSuffix(lower, "kbps"):
		mult, raw = units.Kbps, raw[:len(raw)-4]
	case strings.HasSuffix(lower, "bps"):
		raw = raw[:len(raw)-3]
	default:
		return 0, fmt.Errorf("cliutil: rate %q needs a unit (bps/Kbps/Mbps/Gbps)", s)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("cliutil: bad rate %q", s)
	}
	return units.BitRate(v * float64(mult)), nil
}
