package cliutil

import (
	"sync"
	"time"

	"incastproxy/internal/units"
)

// WallClock adapts a wall clock to an obs tracer clock: picosecond
// timestamps relative to the first read, so live-path traces use the same
// time base (and fit int64) as virtual-time sim traces. Pass the result
// to obs.NewTracerWithClock; the obs package itself never reads a clock,
// this adapter is where the wall-time decision lives.
func WallClock(now func() time.Time) func() units.Time {
	var mu sync.Mutex
	var epoch time.Time
	return func() units.Time {
		mu.Lock()
		defer mu.Unlock()
		if epoch.IsZero() {
			epoch = now()
			return 0
		}
		return units.Time(units.FromStd(now().Sub(epoch)))
	}
}
