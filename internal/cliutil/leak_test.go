package cliutil

import (
	"strings"
	"testing"
	"time"
)

// recordingFailer captures Errorf calls so the tests can assert LeakCheck
// both stays quiet on clean returns and speaks up on real leaks.
type recordingFailer struct {
	msgs []string
}

func (r *recordingFailer) Helper() {}
func (r *recordingFailer) Errorf(format string, args ...any) {
	r.msgs = append(r.msgs, format)
}

func TestLeakCheckCleanReturn(t *testing.T) {
	f := &recordingFailer{}
	check := LeakCheck(f)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	check()
	if len(f.msgs) != 0 {
		t.Fatalf("clean return reported a leak: %v", f.msgs)
	}
}

func TestLeakCheckDetectsLeak(t *testing.T) {
	f := &recordingFailer{}
	check := LeakCheck(f)
	release := make(chan struct{})
	go func() { <-release }() // parked goroutine LeakCheck must flag
	// Shrink the deadline indirectly: the leaked goroutine never exits, so
	// check() runs its full 2s poll. Acceptable in a unit test run once.
	check()
	close(release)
	if len(f.msgs) == 0 {
		t.Fatal("leaked goroutine went unreported")
	}
	if !strings.Contains(f.msgs[0], "goroutine leak") {
		t.Fatalf("unexpected failure message %q", f.msgs[0])
	}
	// Let the released goroutine finish before the next test snapshots.
	time.Sleep(10 * time.Millisecond)
}
