package cliutil

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// Failer is the slice of *testing.T that LeakCheck needs. Taking the
// interface instead of the concrete type keeps the testing package out of
// this (non-test) file's import graph while letting every test package in
// the repo share one leak detector.
type Failer interface {
	Helper()
	Errorf(format string, args ...any)
}

// LeakCheck snapshots the goroutine count and returns a function to defer:
// on return it polls until the count falls back to the snapshot (plus any
// goroutines the runtime itself owns) or the deadline passes, then fails
// the test with a full stack dump if extra goroutines survived.
//
// The relay and lan substrates spawn a goroutine per splice direction, per
// accepted conn, and per health loop; "drain/Close leaves nothing behind"
// is the invariant that keeps a long-lived relayd from slowly pinning
// memory, and it is exactly the kind of regression ordinary assertions
// miss — the test passes while the leaked goroutine idles. Use as:
//
//	defer cliutil.LeakCheck(t)()
//
// before creating any servers or clients, so everything the test spawns is
// in scope.
func LeakCheck(f Failer) func() {
	f.Helper()
	base := runtime.NumGoroutine()
	return func() {
		f.Helper()
		// Goroutine teardown is asynchronous: a closed conn's copy loop
		// needs a few scheduler passes to observe the error and exit.
		if WaitUntil(2*time.Second, time.Millisecond, func() bool {
			return runtime.NumGoroutine() <= base
		}) {
			return
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		f.Errorf("goroutine leak: %d running, %d at start\n%s",
			runtime.NumGoroutine(), base, summarizeStacks(string(buf)))
	}
}

// summarizeStacks trims a full goroutine dump to its headline lines plus
// the top frame of each stack — enough to identify the leaker without
// drowning the test log.
func summarizeStacks(dump string) string {
	var b strings.Builder
	for _, g := range strings.Split(dump, "\n\n") {
		lines := strings.Split(g, "\n")
		n := len(lines)
		if n > 3 {
			n = 3
		}
		fmt.Fprintln(&b, strings.Join(lines[:n], "\n"))
	}
	return b.String()
}
