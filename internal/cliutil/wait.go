package cliutil

import "time"

// WaitUntil polls cond every interval until it returns true or deadline
// elapses, reporting whether cond became true. It replaces fixed
// wall-clock sleeps in tests of the real-conn substrate: a sleep sized for
// a loaded CI machine wastes time on a fast one and still flakes on a
// slower one, while polling converges as soon as the condition holds and
// fails only at the (generous) deadline.
//
// cond runs on the caller's goroutine; it must be safe to call repeatedly
// and should do its own synchronization (atomics, mutexed reads).
func WaitUntil(deadline, interval time.Duration, cond func() bool) bool {
	if interval <= 0 {
		interval = time.Millisecond
	}
	end := time.Now().Add(deadline)
	for {
		if cond() {
			return true
		}
		if time.Now().After(end) {
			// One last look: cond may have flipped while we slept
			// past the deadline.
			return cond()
		}
		time.Sleep(interval)
	}
}
