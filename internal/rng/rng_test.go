package rng

import (
	"math"
	"testing"
	"testing/quick"

	"incastproxy/internal/units"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Fatal("DeriveSeed must be a pure function")
	}
}

// Distinct label paths must yield distinct seeds, including the pairs the
// experiment harness relies on: consecutive runs, consecutive sweep points,
// and consecutive schemes under the same base seed.
func TestDeriveSeedDistinctness(t *testing.T) {
	seen := make(map[int64][]int64)
	add := func(seed int64, path ...int64) {
		if prev, dup := seen[seed]; dup {
			t.Fatalf("seed collision: labels %v and %v both give %d", prev, path, seed)
		}
		seen[seed] = path
	}
	for base := int64(0); base < 4; base++ {
		add(DeriveSeed(base), base, -1)
		for run := int64(0); run < 16; run++ {
			add(DeriveSeed(base, run), base, run)
			for scheme := int64(0); scheme < 3; scheme++ {
				add(DeriveSeed(base, run, scheme), base, run, scheme)
			}
		}
	}
}

// Seeds derived from adjacent bases must not produce correlated streams
// (the failure mode of additive seed schemes like seed+run*prime).
func TestDeriveSeedDecorrelatesAdjacentBases(t *testing.T) {
	a := New(DeriveSeed(1, 0))
	b := New(DeriveSeed(2, 0))
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent-base derived seeds look correlated: %d/64 equal draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Int63() == c2.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children look correlated: %d/64 equal draws", same)
	}
}

func TestPerm(t *testing.T) {
	src := New(5)
	p := src.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(6)
	for i := 0; i < 1000; i++ {
		if v := src.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
	}
	if src.Intn(3) < 0 || src.Intn(3) > 2 {
		t.Fatal("Intn out of range")
	}
}

func TestConstant(t *testing.T) {
	d := Constant{D: 5 * units.Microsecond}
	if d.Sample(New(1)) != 5*units.Microsecond || d.Mean() != 5*units.Microsecond {
		t.Fatal("constant distribution broken")
	}
}

func TestUniformBounds(t *testing.T) {
	src := New(3)
	u := Uniform{Low: 10, High: 20}
	for i := 0; i < 1000; i++ {
		v := u.Sample(src)
		if v < 10 || v > 20 {
			t.Fatalf("uniform sample %v out of [10,20]", v)
		}
	}
	if u.Mean() != 15 {
		t.Fatalf("uniform mean = %v", u.Mean())
	}
}

func TestUniformDegenerate(t *testing.T) {
	u := Uniform{Low: 10, High: 10}
	if u.Sample(New(1)) != 10 {
		t.Fatal("degenerate uniform should return Low")
	}
}

func TestNormalNonNegative(t *testing.T) {
	src := New(9)
	n := Normal{Mu: 10, Sigma: 100}
	for i := 0; i < 5000; i++ {
		if n.Sample(src) < 0 {
			t.Fatal("normal must truncate at zero")
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	src := New(11)
	ln := LogNormal{Median: units.Duration(420 * units.Nanosecond), Sigma: 0.5}
	var s []float64
	for i := 0; i < 20000; i++ {
		s = append(s, float64(ln.Sample(src)))
	}
	// Empirical median should be within 5% of the configured median.
	med := median(s)
	want := float64(420 * units.Nanosecond)
	if math.Abs(med-want)/want > 0.05 {
		t.Fatalf("lognormal empirical median %v, want ~%v", med, want)
	}
}

func TestExponentialMean(t *testing.T) {
	src := New(13)
	e := Exponential{MeanD: units.Duration(100)}
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(e.Sample(src))
	}
	got := sum / n
	if math.Abs(got-100)/100 > 0.05 {
		t.Fatalf("exponential empirical mean %v, want ~100", got)
	}
}

func TestShifted(t *testing.T) {
	s := Shifted{Base: Constant{D: 5}, Offset: 7}
	if s.Sample(New(1)) != 12 || s.Mean() != 12 {
		t.Fatal("shifted distribution broken")
	}
}

func TestMixtureWeights(t *testing.T) {
	src := New(17)
	m := Mixture{Components: []Component{
		{Weight: 0.9, Dist: Constant{D: 1}},
		{Weight: 0.1, Dist: Constant{D: 1000}},
	}}
	fast := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.Sample(src) == 1 {
			fast++
		}
	}
	frac := float64(fast) / n
	if frac < 0.87 || frac > 0.93 {
		t.Fatalf("fast-path fraction %v, want ~0.9", frac)
	}
	wantMean := 0.9*1 + 0.1*1000
	if math.Abs(float64(m.Mean())-wantMean) > 1 {
		t.Fatalf("mixture mean %v, want ~%v", m.Mean(), wantMean)
	}
}

func TestMixtureEmpty(t *testing.T) {
	var m Mixture
	if m.Sample(New(1)) != 0 || m.Mean() != 0 {
		t.Fatal("empty mixture should sample 0")
	}
}

func TestEmpirical(t *testing.T) {
	e := Empirical{Values: []units.Duration{1, 2, 3}}
	src := New(21)
	seen := map[units.Duration]bool{}
	for i := 0; i < 100; i++ {
		v := e.Sample(src)
		if v < 1 || v > 3 {
			t.Fatalf("empirical sample %v not in source values", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("empirical did not cover all values: %v", seen)
	}
	if e.Mean() != 2 {
		t.Fatalf("empirical mean = %v, want 2", e.Mean())
	}
	var empty Empirical
	if empty.Sample(src) != 0 || empty.Mean() != 0 {
		t.Fatal("empty empirical should sample 0")
	}
}

// Property: every distribution in the package returns non-negative samples.
func TestPropertyNonNegativeSamples(t *testing.T) {
	dists := []Distribution{
		Constant{D: 3},
		Uniform{Low: 0, High: 50},
		Normal{Mu: 5, Sigma: 50},
		LogNormal{Median: 100, Sigma: 2},
		Exponential{MeanD: 30},
		Shifted{Base: Exponential{MeanD: 10}, Offset: 2},
		Mixture{Components: []Component{{1, Constant{D: 4}}, {1, Normal{Mu: 1, Sigma: 10}}}},
		Empirical{Values: []units.Duration{0, 5, 9}},
	}
	f := func(seed int64) bool {
		src := New(seed)
		for _, d := range dists {
			for i := 0; i < 32; i++ {
				if d.Sample(src) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStrings(t *testing.T) {
	for _, d := range []Distribution{
		Constant{D: 1}, Uniform{1, 2}, Normal{1, 2}, LogNormal{1, 0.5},
		Exponential{1}, Shifted{Constant{1}, 2}, Mixture{}, Empirical{},
	} {
		if d.String() == "" {
			t.Fatalf("%T has empty String()", d)
		}
	}
}

func median(s []float64) float64 {
	cp := append([]float64(nil), s...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}
