// Package rng provides seeded random sources and latency distributions used
// by the simulator (packet spraying, jitter) and the host-stack model
// (per-packet processing latency in Figures 4-5). All randomness in the
// repository flows through this package so experiments are reproducible from
// a single seed.
package rng

import (
	"fmt"
	"math"
	"math/rand"

	"incastproxy/internal/units"
)

// Source is a deterministic random source. It wraps math/rand so call sites
// do not depend on the global generator.
type Source struct {
	r *rand.Rand
}

// DeriveSeed deterministically derives an independent child seed from a base
// seed and a label path, using the SplitMix64 finalizer. Distinct label paths
// yield decorrelated seeds even when base seeds are small consecutive
// integers, which is what makes parallel trials safe: every (run, sweep
// point, scheme) combination gets its own stream instead of sharing the
// experiment's base seed.
func DeriveSeed(base int64, labels ...int64) int64 {
	x := splitmix64(uint64(base))
	for _, l := range labels {
		// The golden-ratio increment keeps label 0 distinct from "no
		// label"; the odd multiplier makes the pre-mix injective in l.
		x = splitmix64(x + 0x9e3779b97f4a7c15*uint64(l+1))
	}
	return int64(x)
}

// splitmix64 is the SplitMix64 avalanche finalizer (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators").
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child source; the child's stream is a
// deterministic function of the parent seed and the label.
func (s *Source) Split(label int64) *Source {
	const golden = 0x1e3779b97f4a7c15 // 2^63/phi, truncated to int64
	return New(s.r.Int63() ^ label*golden)
}

// Intn returns a uniform int in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// NormFloat64 returns a standard normal variate.
func (s *Source) NormFloat64() float64 { return s.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with mean 1.
func (s *Source) ExpFloat64() float64 { return s.r.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// A Distribution produces random durations. It abstracts the latency of a
// host-stack pipeline stage.
type Distribution interface {
	// Sample draws one duration. Implementations must never return a
	// negative duration.
	Sample(src *Source) units.Duration
	// Mean returns the distribution's expected value.
	Mean() units.Duration
	String() string
}

// Constant is a degenerate distribution that always returns D.
type Constant struct{ D units.Duration }

func (c Constant) Sample(*Source) units.Duration { return c.D }
func (c Constant) Mean() units.Duration          { return c.D }
func (c Constant) String() string                { return fmt.Sprintf("const(%v)", c.D) }

// Uniform draws uniformly from [Low, High].
type Uniform struct{ Low, High units.Duration }

func (u Uniform) Sample(src *Source) units.Duration {
	if u.High <= u.Low {
		return u.Low
	}
	return u.Low + units.Duration(src.Int63()%int64(u.High-u.Low+1))
}
func (u Uniform) Mean() units.Duration { return (u.Low + u.High) / 2 }
func (u Uniform) String() string       { return fmt.Sprintf("uniform(%v,%v)", u.Low, u.High) }

// Normal is a normal distribution truncated at zero.
type Normal struct{ Mu, Sigma units.Duration }

func (n Normal) Sample(src *Source) units.Duration {
	v := float64(n.Mu) + float64(n.Sigma)*src.NormFloat64()
	if v < 0 {
		v = 0
	}
	return units.Duration(v)
}
func (n Normal) Mean() units.Duration { return n.Mu }
func (n Normal) String() string       { return fmt.Sprintf("normal(%v,%v)", n.Mu, n.Sigma) }

// LogNormal draws exp(N(mu, sigma)) scaled so the *median* equals Median.
// Heavy right tails model scheduler preemptions and interrupt coalescing in
// the host stack; Sigma is the shape parameter of the underlying normal.
type LogNormal struct {
	Median units.Duration
	Sigma  float64
}

func (l LogNormal) Sample(src *Source) units.Duration {
	v := float64(l.Median) * math.Exp(l.Sigma*src.NormFloat64())
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	if v > float64(math.MaxInt64)/2 {
		v = float64(math.MaxInt64) / 2
	}
	return units.Duration(v)
}

func (l LogNormal) Mean() units.Duration {
	return units.Duration(float64(l.Median) * math.Exp(l.Sigma*l.Sigma/2))
}
func (l LogNormal) String() string { return fmt.Sprintf("lognormal(med=%v,s=%.2f)", l.Median, l.Sigma) }

// Exponential has the given mean.
type Exponential struct{ MeanD units.Duration }

func (e Exponential) Sample(src *Source) units.Duration {
	return units.Duration(float64(e.MeanD) * src.ExpFloat64())
}
func (e Exponential) Mean() units.Duration { return e.MeanD }
func (e Exponential) String() string       { return fmt.Sprintf("exp(%v)", e.MeanD) }

// Shifted adds a fixed offset to another distribution; it models a constant
// code path plus a random component.
type Shifted struct {
	Base   Distribution
	Offset units.Duration
}

func (s Shifted) Sample(src *Source) units.Duration { return s.Offset + s.Base.Sample(src) }
func (s Shifted) Mean() units.Duration              { return s.Offset + s.Base.Mean() }
func (s Shifted) String() string {
	return fmt.Sprintf("%v+%v", s.Offset, s.Base)
}

// Component is one branch of a Mixture.
type Component struct {
	Weight float64
	Dist   Distribution
}

// Mixture draws from one of several distributions with given weights. It
// models bimodal host behaviour (fast path vs. preempted path).
type Mixture struct{ Components []Component }

func (m Mixture) Sample(src *Source) units.Duration {
	total := 0.0
	for _, c := range m.Components {
		total += c.Weight
	}
	x := src.Float64() * total
	for _, c := range m.Components {
		if x < c.Weight {
			return c.Dist.Sample(src)
		}
		x -= c.Weight
	}
	if len(m.Components) == 0 {
		return 0
	}
	return m.Components[len(m.Components)-1].Dist.Sample(src)
}

func (m Mixture) Mean() units.Duration {
	total, sum := 0.0, 0.0
	for _, c := range m.Components {
		total += c.Weight
		sum += c.Weight * float64(c.Dist.Mean())
	}
	if total == 0 {
		return 0
	}
	return units.Duration(sum / total)
}

func (m Mixture) String() string { return fmt.Sprintf("mixture(%d)", len(m.Components)) }

// Empirical resamples uniformly from recorded values, e.g. real measured
// processing times fed back into the pipeline model.
type Empirical struct{ Values []units.Duration }

func (e Empirical) Sample(src *Source) units.Duration {
	if len(e.Values) == 0 {
		return 0
	}
	return e.Values[src.Intn(len(e.Values))]
}

func (e Empirical) Mean() units.Duration {
	if len(e.Values) == 0 {
		return 0
	}
	var sum int64
	for _, v := range e.Values {
		sum += int64(v)
	}
	return units.Duration(sum / int64(len(e.Values)))
}

func (e Empirical) String() string { return fmt.Sprintf("empirical(n=%d)", len(e.Values)) }
