package detect

import (
	"incastproxy/internal/units"
)

// IncastDetectorConfig parameterizes destination-side incast detection.
type IncastDetectorConfig struct {
	// Window is the sliding window over which concurrent senders are
	// counted (default 1 ms).
	Window units.Duration
	// DegreeThreshold is the sender count above which the pattern is
	// declared an incast (default 4).
	DegreeThreshold int
	// MinBytes filters out trivial bursts (default 1 MB aggregate in
	// the window) — Figure 2 (Right) shows small incasts gain nothing
	// from a proxy.
	MinBytes units.ByteSize
}

func (c IncastDetectorConfig) withDefaults() IncastDetectorConfig {
	if c.Window <= 0 {
		c.Window = units.Millisecond
	}
	if c.DegreeThreshold <= 0 {
		c.DegreeThreshold = 4
	}
	if c.MinBytes <= 0 {
		c.MinBytes = units.MB
	}
	return c
}

type flowStart struct {
	at     units.Time
	sender uint64
	bytes  units.ByteSize
}

type dstState struct {
	recent []flowStart
	// onsets records when incasts were first detected, for periodicity
	// estimation.
	onsets []units.Time
	active bool
}

// IncastDetector watches flow arrivals per destination and (a) flags
// forming incasts and (b) predicts the next onset of periodic incasts
// (§6: "some applications exhibit periodic behavior, providing an
// opportunity to predict when an incast is about to occur").
type IncastDetector struct {
	cfg  IncastDetectorConfig
	dsts map[uint64]*dstState
}

// NewIncastDetector returns a detector.
func NewIncastDetector(cfg IncastDetectorConfig) *IncastDetector {
	return &IncastDetector{cfg: cfg.withDefaults(), dsts: make(map[uint64]*dstState)}
}

// ObserveFlowStart records that sender started a flow of the given size
// toward dst. It returns true when this observation crosses the incast
// detection threshold (the first detection of a burst, not every packet).
func (d *IncastDetector) ObserveFlowStart(dst, sender uint64, bytes units.ByteSize, now units.Time) bool {
	st := d.dsts[dst]
	if st == nil {
		st = &dstState{}
		d.dsts[dst] = st
	}
	st.recent = append(st.recent, flowStart{at: now, sender: sender, bytes: bytes})
	d.trim(st, now)

	deg, agg := d.windowStats(st)
	isIncast := deg >= d.cfg.DegreeThreshold && agg >= d.cfg.MinBytes
	if isIncast && !st.active {
		st.active = true
		st.onsets = append(st.onsets, now)
		return true
	}
	if !isIncast {
		st.active = false
	}
	return false
}

// Degree returns the number of distinct senders toward dst within the
// current window.
func (d *IncastDetector) Degree(dst uint64, now units.Time) int {
	st := d.dsts[dst]
	if st == nil {
		return 0
	}
	d.trim(st, now)
	deg, _ := d.windowStats(st)
	return deg
}

// PredictNextOnset estimates when the next incast toward dst begins, from
// the mean inter-onset period of past detections. It needs at least three
// onsets to commit to a period.
func (d *IncastDetector) PredictNextOnset(dst uint64) (units.Time, bool) {
	st := d.dsts[dst]
	if st == nil || len(st.onsets) < 3 {
		return 0, false
	}
	first, last := st.onsets[0], st.onsets[len(st.onsets)-1]
	period := units.Duration(int64(last.Sub(first)) / int64(len(st.onsets)-1))
	if period <= 0 {
		return 0, false
	}
	return last.Add(period), true
}

// Onsets returns the recorded incast onset times for dst.
func (d *IncastDetector) Onsets(dst uint64) []units.Time {
	st := d.dsts[dst]
	if st == nil {
		return nil
	}
	return append([]units.Time(nil), st.onsets...)
}

func (d *IncastDetector) trim(st *dstState, now units.Time) {
	cut := 0
	for cut < len(st.recent) && now.Sub(st.recent[cut].at) > d.cfg.Window {
		cut++
	}
	st.recent = st.recent[cut:]
}

func (d *IncastDetector) windowStats(st *dstState) (degree int, agg units.ByteSize) {
	senders := make(map[uint64]bool, len(st.recent))
	for _, f := range st.recent {
		senders[f.sender] = true
		agg += f.bytes
	}
	return len(senders), agg
}
