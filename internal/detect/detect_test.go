package detect

import (
	"testing"
	"testing/quick"

	"incastproxy/internal/rng"
	"incastproxy/internal/units"
)

func us(n int64) units.Time { return units.Time(n) * units.Time(units.Microsecond) }

func TestLossTrackerInOrderNoLosses(t *testing.T) {
	lt := NewLossTracker(LossTrackerConfig{})
	for seq := uint64(0); seq < 1000; seq++ {
		if losses := lt.Observe(1, seq, us(int64(seq))); len(losses) != 0 {
			t.Fatalf("in-order stream flagged losses: %v", losses)
		}
	}
	if lt.Stats.LossesFlagged != 0 {
		t.Fatalf("flagged = %d", lt.Stats.LossesFlagged)
	}
}

func TestLossTrackerToleratesReordering(t *testing.T) {
	lt := NewLossTracker(LossTrackerConfig{ReorderDelay: 100 * units.Microsecond})
	// Swap adjacent pairs: 1,0,3,2,5,4... arriving 1us apart.
	now := int64(0)
	for base := uint64(0); base < 500; base += 2 {
		for _, seq := range []uint64{base + 1, base} {
			if losses := lt.Observe(1, seq, us(now)); len(losses) != 0 {
				t.Fatalf("reordering within tolerance flagged: %v", losses)
			}
			now++
		}
	}
	if lt.Stats.LossesFlagged != 0 {
		t.Fatal("false positives under bounded reordering")
	}
}

func TestLossTrackerDetectsRealLoss(t *testing.T) {
	lt := NewLossTracker(LossTrackerConfig{ReorderDelay: 50 * units.Microsecond})
	lt.Observe(1, 0, us(0))
	lt.Observe(1, 1, us(1))
	// seq 2 lost; 3..10 arrive.
	var got []Loss
	for seq := uint64(3); seq <= 10; seq++ {
		got = append(got, lt.Observe(1, seq, us(int64(seq)))...)
	}
	if len(got) != 0 {
		t.Fatalf("flagged before ReorderDelay: %v", got)
	}
	got = lt.Flush(us(100))
	if len(got) != 1 || got[0] != (Loss{Flow: 1, Seq: 2}) {
		t.Fatalf("losses = %v, want seq 2", got)
	}
	// Flushing again must not re-flag.
	if again := lt.Flush(us(200)); len(again) != 0 {
		t.Fatalf("double-flagged: %v", again)
	}
}

func TestLossTrackerLossDetectedOnLaterArrival(t *testing.T) {
	lt := NewLossTracker(LossTrackerConfig{ReorderDelay: 50 * units.Microsecond})
	lt.Observe(1, 0, us(0))
	lt.Observe(1, 2, us(1)) // hole at 1
	losses := lt.Observe(1, 3, us(60))
	if len(losses) != 1 || losses[0].Seq != 1 {
		t.Fatalf("losses = %v", losses)
	}
}

func TestLossTrackerLateArrivalCountsFalsePositive(t *testing.T) {
	lt := NewLossTracker(LossTrackerConfig{ReorderDelay: 10 * units.Microsecond})
	lt.Observe(1, 0, us(0))
	lt.Observe(1, 2, us(1))
	lt.Flush(us(50)) // seq 1 flagged
	lt.Observe(1, 1, us(60))
	if lt.Stats.LateArrivals != 1 {
		t.Fatalf("late arrivals = %d", lt.Stats.LateArrivals)
	}
}

func TestLossTrackerWindowOverrun(t *testing.T) {
	lt := NewLossTracker(LossTrackerConfig{WindowPkts: 8, ReorderDelay: units.Second})
	lt.Observe(1, 0, us(0))
	// Jump far ahead: hole at 1..9 with window 8 forces early decisions.
	losses := lt.Observe(1, 100, us(1))
	if len(losses) == 0 {
		t.Fatal("window overrun should force loss decisions")
	}
	if lt.Stats.WindowOverruns == 0 {
		t.Fatal("overruns not counted")
	}
}

func TestLossTrackerFlowEviction(t *testing.T) {
	lt := NewLossTracker(LossTrackerConfig{MaxFlows: 4})
	for f := uint64(1); f <= 5; f++ {
		lt.Observe(f, 0, us(int64(f)))
	}
	if lt.TrackedFlows() != 4 {
		t.Fatalf("tracked = %d", lt.TrackedFlows())
	}
	if lt.Stats.FlowEvictions != 1 {
		t.Fatalf("evictions = %d", lt.Stats.FlowEvictions)
	}
}

// Property: a random permutation bounded by maxDisplacement packets and
// delivered densely in time never produces false positives, and dropping a
// random subset always flags exactly the dropped sequences after a flush.
func TestPropertyLossTrackerExactness(t *testing.T) {
	f := func(seed int64, nRaw uint8, dropEvery uint8) bool {
		src := rng.New(seed)
		n := int(nRaw)%200 + 20
		drop := int(dropEvery)%7 + 3 // drop every 3rd..9th

		// Build arrival order with local shuffles of width 3.
		seqs := make([]uint64, 0, n)
		dropped := map[uint64]bool{}
		for i := 0; i < n; i++ {
			if i%drop == 0 && i > 0 {
				dropped[uint64(i)] = true
				continue
			}
			seqs = append(seqs, uint64(i))
		}
		for i := 0; i+1 < len(seqs); i += 2 {
			if src.Intn(2) == 0 {
				seqs[i], seqs[i+1] = seqs[i+1], seqs[i]
			}
		}

		lt := NewLossTracker(LossTrackerConfig{ReorderDelay: 100 * units.Microsecond, WindowPkts: 1 << 16})
		flagged := map[uint64]bool{}
		now := int64(0)
		for _, s := range seqs {
			for _, l := range lt.Observe(1, s, us(now)) {
				flagged[l.Seq] = true
			}
			now++
		}
		for _, l := range lt.Flush(us(now + 1000)) {
			flagged[l.Seq] = true
		}
		// Drops beyond the highest delivered sequence are invisible to
		// gap-based detection (no later packet reveals the hole); the
		// property covers only non-tail losses.
		var maxDelivered uint64
		for _, s := range seqs {
			if s > maxDelivered {
				maxDelivered = s
			}
		}
		expect := map[uint64]bool{}
		for s := range dropped {
			if s < maxDelivered {
				expect[s] = true
			}
		}
		if len(flagged) != len(expect) {
			return false
		}
		for s := range expect {
			if !flagged[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIncastDetectorThreshold(t *testing.T) {
	d := NewIncastDetector(IncastDetectorConfig{DegreeThreshold: 4, MinBytes: units.MB})
	dst := uint64(9)
	// Three senders: below threshold.
	for s := uint64(1); s <= 3; s++ {
		if d.ObserveFlowStart(dst, s, units.MB, us(int64(s))) {
			t.Fatal("detected below degree threshold")
		}
	}
	// Fourth sender crosses it.
	if !d.ObserveFlowStart(dst, 4, units.MB, us(4)) {
		t.Fatal("not detected at threshold")
	}
	// Still active: no re-trigger.
	if d.ObserveFlowStart(dst, 5, units.MB, us(5)) {
		t.Fatal("re-triggered while active")
	}
	if d.Degree(dst, us(5)) != 5 {
		t.Fatalf("degree = %d", d.Degree(dst, us(5)))
	}
}

func TestIncastDetectorMinBytesFilter(t *testing.T) {
	d := NewIncastDetector(IncastDetectorConfig{DegreeThreshold: 2, MinBytes: 10 * units.MB})
	dst := uint64(1)
	for s := uint64(1); s <= 6; s++ {
		if d.ObserveFlowStart(dst, s, units.KB, us(int64(s))) {
			t.Fatal("tiny burst must not count as incast (Fig 2 Right)")
		}
	}
}

func TestIncastDetectorWindowExpiry(t *testing.T) {
	d := NewIncastDetector(IncastDetectorConfig{Window: units.Duration(10 * units.Microsecond), DegreeThreshold: 2, MinBytes: 1})
	dst := uint64(1)
	d.ObserveFlowStart(dst, 1, units.MB, us(0))
	// 1ms later the first flow is out of the window.
	if d.Degree(dst, us(1000)) != 0 {
		t.Fatal("window did not expire old flows")
	}
}

func TestIncastDetectorPeriodPrediction(t *testing.T) {
	d := NewIncastDetector(IncastDetectorConfig{DegreeThreshold: 2, MinBytes: 1, Window: units.Duration(100 * units.Microsecond)})
	dst := uint64(3)
	// Bursts every 10ms: onset detection at t, t+10ms, t+20ms.
	for burst := int64(0); burst < 3; burst++ {
		base := burst * 10_000 // us
		d.ObserveFlowStart(dst, 1, units.MB, us(base))
		d.ObserveFlowStart(dst, 2, units.MB, us(base+1))
		// Quiet period resets the active flag.
		d.ObserveFlowStart(dst, 9, 1, us(base+5000))
	}
	next, ok := d.PredictNextOnset(dst)
	if !ok {
		t.Fatal("no prediction after 3 onsets")
	}
	want := us(30_001)
	tol := units.Time(2 * units.Millisecond)
	if next < want-tol || next > want+tol {
		t.Fatalf("predicted %v, want ~%v", next, want)
	}
	if len(d.Onsets(dst)) != 3 {
		t.Fatalf("onsets = %d", len(d.Onsets(dst)))
	}
}

func TestIncastDetectorNoPredictionWithoutHistory(t *testing.T) {
	d := NewIncastDetector(IncastDetectorConfig{})
	if _, ok := d.PredictNextOnset(42); ok {
		t.Fatal("prediction without history")
	}
	if d.Degree(42, us(0)) != 0 || d.Onsets(42) != nil {
		t.Fatal("unknown destination should be empty")
	}
}
