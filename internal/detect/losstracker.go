// Package detect implements the paper's two detection problems:
//
//   - Future work #1: tracking packet loss at the proxy *without* switch
//     trimming support — disambiguating reordered from lost packets within
//     eBPF-like memory constraints (bounded per-flow windows, bounded flow
//     table with LRU eviction).
//
//   - Research agenda "pattern-aware rerouting": detecting that an incast
//     is forming toward a destination, and predicting the next one from
//     periodic application behaviour (e.g. ML training synchronization).
package detect

import (
	"incastproxy/internal/units"
)

// LossTrackerConfig bounds the tracker's memory, mirroring eBPF map
// constraints.
type LossTrackerConfig struct {
	// WindowPkts is the per-flow reorder window: sequence numbers more
	// than WindowPkts behind the highest seen are no longer tracked
	// (default 256).
	WindowPkts int
	// ReorderDelay is how long a sequence gap may persist before it is
	// declared a loss (RACK-style time threshold; default 50 us, a few
	// intra-DC RTTs).
	ReorderDelay units.Duration
	// MaxFlows bounds the flow table; least-recently-updated flows are
	// evicted (default 1024).
	MaxFlows int
}

func (c LossTrackerConfig) withDefaults() LossTrackerConfig {
	if c.WindowPkts <= 0 {
		c.WindowPkts = 256
	}
	if c.ReorderDelay <= 0 {
		c.ReorderDelay = 50 * units.Microsecond
	}
	if c.MaxFlows <= 0 {
		c.MaxFlows = 1024
	}
	return c
}

// Loss identifies one declared-lost packet.
type Loss struct {
	Flow uint64
	Seq  uint64
}

// LossTrackerStats counts tracker activity, including the error sources
// §5's future-work questions ask about.
type LossTrackerStats struct {
	Observed      uint64
	LossesFlagged uint64
	// LateArrivals counts packets that arrived after being flagged lost
	// — each one is a false positive the consumer may have acted on.
	LateArrivals uint64
	// WindowOverruns counts holes pushed out of the reorder window
	// before ReorderDelay elapsed (forced early decisions).
	WindowOverruns uint64
	FlowEvictions  uint64
}

type hole struct {
	seq     uint64
	sinceAt units.Time
}

type flowTrack struct {
	highest   uint64
	hasAny    bool
	holes     []hole // sorted by seq
	flagged   map[uint64]bool
	lastTouch uint64
}

// LossTracker detects losses from a sequence stream under reordering. It is
// deliberately single-goroutine (it models an eBPF program's per-CPU
// processing).
type LossTracker struct {
	cfg   LossTrackerConfig
	flows map[uint64]*flowTrack
	clock uint64
	Stats LossTrackerStats
}

// NewLossTracker returns a tracker with the given bounds.
func NewLossTracker(cfg LossTrackerConfig) *LossTracker {
	cfg = cfg.withDefaults()
	return &LossTracker{cfg: cfg, flows: make(map[uint64]*flowTrack, cfg.MaxFlows)}
}

// Observe processes one arriving data packet and returns any sequences
// newly declared lost for that flow (holes older than ReorderDelay, plus
// holes forced out of the reorder window).
func (t *LossTracker) Observe(flow, seq uint64, now units.Time) []Loss {
	t.Stats.Observed++
	ft := t.flow(flow)

	var losses []Loss
	switch {
	case !ft.hasAny:
		ft.hasAny = true
		ft.highest = seq
	case seq > ft.highest:
		// Every skipped sequence becomes a hole.
		for s := ft.highest + 1; s < seq; s++ {
			ft.holes = append(ft.holes, hole{seq: s, sinceAt: now})
		}
		ft.highest = seq
		losses = t.enforceWindow(flow, ft, losses)
	default:
		// A reordered (or retransmitted) arrival fills its hole.
		losses = t.fill(flow, ft, seq, losses)
	}
	return t.expire(flow, ft, now, losses)
}

// Flush declares all holes of every flow older than ReorderDelay lost,
// without needing a new arrival. Callers invoke it from a timer.
func (t *LossTracker) Flush(now units.Time) []Loss {
	var losses []Loss
	for f, ft := range t.flows {
		losses = t.expire(f, ft, now, losses)
	}
	return losses
}

// TrackedFlows returns the current flow-table occupancy.
func (t *LossTracker) TrackedFlows() int { return len(t.flows) }

func (t *LossTracker) flow(f uint64) *flowTrack {
	t.clock++
	if ft, ok := t.flows[f]; ok {
		ft.lastTouch = t.clock
		return ft
	}
	if len(t.flows) >= t.cfg.MaxFlows {
		t.evict()
	}
	ft := &flowTrack{flagged: make(map[uint64]bool), lastTouch: t.clock}
	t.flows[f] = ft
	return ft
}

func (t *LossTracker) evict() {
	var victim uint64
	oldest := ^uint64(0)
	for f, ft := range t.flows {
		if ft.lastTouch < oldest {
			oldest = ft.lastTouch
			victim = f
		}
	}
	delete(t.flows, victim)
	t.Stats.FlowEvictions++
}

// fill removes seq's hole if present; a fill of an already-flagged seq is a
// detected false positive (late arrival).
func (t *LossTracker) fill(flow uint64, ft *flowTrack, seq uint64, losses []Loss) []Loss {
	if ft.flagged[seq] {
		t.Stats.LateArrivals++
		delete(ft.flagged, seq)
		return losses
	}
	for i, h := range ft.holes {
		if h.seq == seq {
			ft.holes = append(ft.holes[:i], ft.holes[i+1:]...)
			break
		}
	}
	return losses
}

// expire flags holes older than ReorderDelay.
func (t *LossTracker) expire(flow uint64, ft *flowTrack, now units.Time, losses []Loss) []Loss {
	kept := ft.holes[:0]
	for _, h := range ft.holes {
		if now.Sub(h.sinceAt) >= t.cfg.ReorderDelay {
			losses = t.flag(flow, ft, h.seq, losses)
		} else {
			kept = append(kept, h)
		}
	}
	ft.holes = kept
	return losses
}

// enforceWindow force-flags holes that fell out of the reorder window
// (memory bound), counting them as early decisions.
func (t *LossTracker) enforceWindow(flow uint64, ft *flowTrack, losses []Loss) []Loss {
	if ft.highest < uint64(t.cfg.WindowPkts) {
		return losses
	}
	floor := ft.highest - uint64(t.cfg.WindowPkts)
	kept := ft.holes[:0]
	for _, h := range ft.holes {
		if h.seq < floor {
			t.Stats.WindowOverruns++
			losses = t.flag(flow, ft, h.seq, losses)
		} else {
			kept = append(kept, h)
		}
	}
	ft.holes = kept
	return losses
}

func (t *LossTracker) flag(flow uint64, ft *flowTrack, seq uint64, losses []Loss) []Loss {
	if ft.flagged[seq] {
		return losses
	}
	ft.flagged[seq] = true
	t.Stats.LossesFlagged++
	return append(losses, Loss{Flow: flow, Seq: seq})
}
