// Package trace records time series from a running simulation: periodic
// queue-occupancy samples (how Figure 1's "congestion point" story is
// visualized) and timestamped flow events. A Recorder attaches to ports of
// interest and samples them on the simulation clock.
//
// The export path is rebased on internal/obs: CSV rows are merged on the
// union of sample timestamps in time order (the old writer aligned rows by
// index, misattributing timestamps whenever series differed in length), and
// Log events can be forwarded to an obs.Tracer for Chrome trace export.
package trace

import (
	"fmt"
	"io"
	"sort"

	"incastproxy/internal/netsim"
	"incastproxy/internal/obs"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// QueueSample is one observation of a queue's occupancy.
type QueueSample struct {
	At    units.Time
	Bytes units.ByteSize
}

// QueueSeries is the sampled occupancy of one watched port.
type QueueSeries struct {
	Label   string
	Samples []QueueSample
}

// Peak returns the maximum sampled occupancy and its time.
func (q *QueueSeries) Peak() (units.ByteSize, units.Time) {
	var maxB units.ByteSize
	var at units.Time
	for _, s := range q.Samples {
		if s.Bytes > maxB {
			maxB, at = s.Bytes, s.At
		}
	}
	return maxB, at
}

// Mean returns the time-average of the sampled occupancy.
func (q *QueueSeries) Mean() units.ByteSize {
	if len(q.Samples) == 0 {
		return 0
	}
	var sum int64
	for _, s := range q.Samples {
		sum += int64(s.Bytes)
	}
	return units.ByteSize(sum / int64(len(q.Samples)))
}

// Event is a timestamped annotation (flow start, completion, timeout...).
type Event struct {
	At   units.Time
	What string
}

// Recorder samples watched ports at a fixed simulated interval and collects
// events. The zero value is not usable; create with New.
type Recorder struct {
	interval units.Duration
	until    units.Time
	ports    []*netsim.Port
	series   []*QueueSeries
	events   []Event
	started  bool
	tracer   *obs.Tracer
}

// New returns a recorder sampling every interval until the given simulated
// time (use units.MaxTime to sample as long as the run lasts).
func New(interval units.Duration, until units.Time) *Recorder {
	if interval <= 0 {
		interval = units.Duration(100 * units.Microsecond)
	}
	return &Recorder{interval: interval, until: until}
}

// Watch registers a port's egress queue for sampling. It must be called
// before Start.
func (r *Recorder) Watch(label string, p *netsim.Port) *QueueSeries {
	if r.started {
		panic("trace: Watch after Start")
	}
	s := &QueueSeries{Label: label}
	r.ports = append(r.ports, p)
	r.series = append(r.series, s)
	return s
}

// Start schedules the sampling loop on the engine.
func (r *Recorder) Start(e *sim.Engine) {
	r.started = true
	var tick sim.Event
	tick = func(e *sim.Engine) {
		for i, p := range r.ports {
			r.series[i].Samples = append(r.series[i].Samples, QueueSample{
				At:    e.Now(),
				Bytes: p.QueuedBytes(),
			})
		}
		next := e.Now().Add(r.interval)
		if next <= r.until {
			e.Schedule(next, tick)
		}
	}
	e.After(0, tick)
}

// SetTracer forwards subsequent Log events into t as instants (category
// "log"), putting Recorder annotations on the same Chrome trace timeline as
// flow and queue events. Nil detaches.
func (r *Recorder) SetTracer(t *obs.Tracer) { r.tracer = t }

// Log appends a timestamped event.
func (r *Recorder) Log(at units.Time, format string, args ...any) {
	what := fmt.Sprintf(format, args...)
	r.events = append(r.events, Event{At: at, What: what})
	r.tracer.Instant(at, "log", what, 0)
}

// Events returns the recorded events in time order.
func (r *Recorder) Events() []Event {
	out := append([]Event(nil), r.events...)
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Series returns the recorded queue series in Watch order.
func (r *Recorder) Series() []*QueueSeries { return r.series }

// SeriesSet converts the recorded queue series to an obs.SeriesSet, the
// shared deterministic export path.
func (r *Recorder) SeriesSet() *obs.SeriesSet {
	ss := &obs.SeriesSet{}
	for _, q := range r.series {
		s := ss.Add(q.Label)
		for _, smp := range q.Samples {
			s.Add(smp.At, int64(smp.Bytes))
		}
	}
	return ss
}

// WriteCSV emits "time_us,label1,label2,..." rows merged on the union of
// all sample timestamps in time order. Series sampled over different windows
// (a port watched late, a sampler stopped early) get blank cells instead of
// another series' timestamps — the old index-aligned writer interleaved them
// by sample position, attributing row times from whichever series happened
// to be listed first.
func (r *Recorder) WriteCSV(w io.Writer) error {
	return r.SeriesSet().WriteCSV(w)
}
