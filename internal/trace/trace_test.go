package trace

import (
	"strings"
	"testing"

	"incastproxy/internal/netsim"
	"incastproxy/internal/sim"
	"incastproxy/internal/topo"
	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

type sinkNode struct{ id netsim.NodeID }

func (s *sinkNode) ID() netsim.NodeID                                 { return s.id }
func (s *sinkNode) Name() string                                      { return "sink" }
func (s *sinkNode) Receive(*sim.Engine, *netsim.Packet, *netsim.Port) {}

func TestRecorderSamplesQueue(t *testing.T) {
	e := sim.New()
	a, b := &sinkNode{id: 1}, &sinkNode{id: 2}
	// Slow 1 Gbps link: 100 packets of 1500B take 1.2ms to drain.
	pa, _ := netsim.Connect(a, b, units.Gbps, 0, netsim.QueueConfig{}, netsim.QueueConfig{}, nil)

	r := New(units.Duration(50*units.Microsecond), units.Time(5*units.Millisecond))
	series := r.Watch("a->b", pa)
	r.Start(e)

	for i := 0; i < 100; i++ {
		pkt := &netsim.Packet{ID: uint64(i), Kind: netsim.Data, Size: 1500, FullSize: 1500}
		pa.Send(e, pkt)
	}
	e.Run()

	if len(series.Samples) < 10 {
		t.Fatalf("samples = %d", len(series.Samples))
	}
	peak, at := series.Peak()
	if peak < 100*1500/2 {
		t.Fatalf("peak %v too low; queue buildup not captured", peak)
	}
	if at == 0 && peak == 0 {
		t.Fatal("no peak recorded")
	}
	if series.Mean() <= 0 {
		t.Fatal("mean should be positive while draining")
	}
	// Occupancy must eventually drain to zero within the watch window.
	last := series.Samples[len(series.Samples)-1]
	if last.Bytes != 0 {
		t.Fatalf("queue not drained at end: %v", last.Bytes)
	}
}

func TestRecorderStopsAtUntil(t *testing.T) {
	e := sim.New()
	a, b := &sinkNode{id: 1}, &sinkNode{id: 2}
	pa, _ := netsim.Connect(a, b, units.Gbps, 0, netsim.QueueConfig{}, netsim.QueueConfig{}, nil)
	r := New(units.Duration(10*units.Microsecond), units.Time(100*units.Microsecond))
	s := r.Watch("x", pa)
	r.Start(e)
	e.Run()
	// ~11 ticks (0..100us inclusive).
	if len(s.Samples) > 12 {
		t.Fatalf("sampler did not stop: %d samples", len(s.Samples))
	}
}

func TestWatchAfterStartPanics(t *testing.T) {
	r := New(0, 0)
	r.Start(sim.New())
	defer func() {
		if recover() == nil {
			t.Fatal("Watch after Start must panic")
		}
	}()
	r.Watch("late", nil)
}

func TestEventsSorted(t *testing.T) {
	r := New(0, 0)
	r.Log(30, "third")
	r.Log(10, "first %d", 1)
	r.Log(20, "second")
	ev := r.Events()
	if len(ev) != 3 || ev[0].What != "first 1" || ev[2].What != "third" {
		t.Fatalf("events = %+v", ev)
	}
}

func TestWriteCSV(t *testing.T) {
	e := sim.New()
	a, b := &sinkNode{id: 1}, &sinkNode{id: 2}
	pa, _ := netsim.Connect(a, b, units.Gbps, 0, netsim.QueueConfig{}, netsim.QueueConfig{}, nil)
	r := New(units.Duration(10*units.Microsecond), units.Time(50*units.Microsecond))
	r.Watch("q1", pa)
	r.Start(e)
	e.Run()

	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "time_us,q1\n") {
		t.Fatalf("csv header wrong: %q", out)
	}
	if strings.Count(out, "\n") < 3 {
		t.Fatalf("csv too short:\n%s", out)
	}
}

// TestRecorderOnIncastShowsBottleneckShift attaches the recorder through
// the workload OnBuild hook and confirms the Figure 1 story as a time
// series: under the streamlined proxy the proxy down-ToR is the hot queue.
func TestRecorderOnIncastShowsBottleneckShift(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	var rx, px *QueueSeries
	spec := workload.Spec{
		Scheme:     workload.ProxyStreamlined,
		Degree:     8,
		TotalBytes: 40 * units.MB,
		Runs:       1,
		Seed:       7,
		OnBuild: func(net *topo.Network, e *sim.Engine) {
			r := New(units.Duration(200*units.Microsecond), units.Time(10*units.Second))
			rx = r.Watch("receiver-down-tor", net.DownToRPort(net.Hosts[1][0]))
			px = r.Watch("proxy-down-tor", net.DownToRPort(net.Hosts[0][len(net.Hosts[0])-1]))
			r.Start(e)
		},
	}
	if _, err := workload.Run(spec); err != nil {
		t.Fatal(err)
	}
	rxPeak, _ := rx.Peak()
	pxPeak, _ := px.Peak()
	if pxPeak <= rxPeak {
		t.Fatalf("proxy ToR peak %v should exceed receiver ToR peak %v", pxPeak, rxPeak)
	}
}
