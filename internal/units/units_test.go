package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTransmitTimeExact(t *testing.T) {
	tests := []struct {
		rate BitRate
		size ByteSize
		want Duration
	}{
		{100 * Gbps, 1500 * Byte, 120 * Nanosecond},
		{100 * Gbps, 1 * Byte, 80 * Picosecond},
		{10 * Gbps, 1500 * Byte, 1200 * Nanosecond},
		{1 * Gbps, 125 * MB, Second},
		{100 * Gbps, 64 * Byte, 5120 * Picosecond},
	}
	for _, tt := range tests {
		if got := tt.rate.TransmitTime(tt.size); got != tt.want {
			t.Errorf("TransmitTime(%v, %v) = %v, want %v", tt.rate, tt.size, got, tt.want)
		}
	}
}

func TestTransmitTimeRoundsUp(t *testing.T) {
	// 1 byte at 3 bps = 8/3 s = 2_666_666_666_666.67 ns; must round up.
	got := BitRate(3).TransmitTime(1)
	if got != Duration(2_666_666_666_667) {
		t.Fatalf("TransmitTime(3bps, 1B) = %d ps, want 2666666666667 ps", got)
	}
}

func TestBytesInInverseOfTransmitTime(t *testing.T) {
	f := func(rateGbps uint8, sizeKB uint16) bool {
		rate := BitRate(int64(rateGbps%200+1)) * Gbps
		size := ByteSize(int64(sizeKB)+1) * KB
		d := rate.TransmitTime(size)
		got := rate.BytesIn(d)
		// Rounding up the duration can only over-deliver by < 1 byte worth
		// of picoseconds; allow 1 byte of slack.
		return got >= size-1 && got <= size+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBDP(t *testing.T) {
	// 100 Gb/s * 4 ms RTT = 50 MB.
	got := (100 * Gbps).BDP(4 * Millisecond)
	if got != 50*MB {
		t.Fatalf("BDP = %v, want 50MB", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0).Add(5 * Microsecond)
	t1 := t0.Add(3 * Millisecond)
	if d := t1.Sub(t0); d != 3*Millisecond {
		t.Fatalf("Sub = %v", d)
	}
	if !t0.Before(t1) || !t1.After(t0) {
		t.Fatal("Before/After inconsistent")
	}
}

func TestDurationStd(t *testing.T) {
	if (3 * Millisecond).Std() != 3*time.Millisecond {
		t.Fatal("Std conversion wrong")
	}
	if FromStd(2*time.Microsecond) != 2*Microsecond {
		t.Fatal("FromStd conversion wrong")
	}
}

func TestStrings(t *testing.T) {
	cases := map[string]string{
		(120 * Nanosecond).String():  "120ns",
		(1500 * Byte).String():       "1.5KB",
		(100 * Gbps).String():        "100Gbps",
		(50 * MB).String():           "50MB",
		(0 * Picosecond).String():    "0s",
		(500 * Picosecond).String():  "500ps",
		(2 * Second).String():        "2s",
		(250 * Microsecond).String(): "250us",
		(3 * Millisecond).String():   "3ms",
		(999 * Byte).String():        "999B",
		(2 * GB).String():            "2GB",
		ByteSize(1234567).String():   "1.235MB",
		BitRate(500).String():        "500bps",
		(2 * Kbps).String():          "2Kbps",
		(30 * Mbps).String():         "30Mbps",
		Time(0).String():             "0s",
		Time(5000).String():          "5ns",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Microsecond
	if d.Seconds() != 0.0015 {
		t.Fatalf("Seconds = %v", d.Seconds())
	}
	if d.Microseconds() != 1500 {
		t.Fatalf("Microseconds = %v", d.Microseconds())
	}
	if d.Milliseconds() != 1.5 {
		t.Fatalf("Milliseconds = %v", d.Milliseconds())
	}
}

func TestByteSizeBits(t *testing.T) {
	if (10 * Byte).Bits() != 80 {
		t.Fatal("Bits wrong")
	}
}

func TestBytesInZeroInputs(t *testing.T) {
	if (100 * Gbps).BytesIn(0) != 0 {
		t.Fatal("zero duration should carry zero bytes")
	}
	if BitRate(0).BytesIn(Second) != 0 {
		t.Fatal("zero rate should carry zero bytes")
	}
	if (100 * Gbps).TransmitTime(0) != 0 {
		t.Fatal("zero size should serialize instantly")
	}
}

func TestMulDiv128Saturation(t *testing.T) {
	// A result overflowing int64 must saturate, not wrap.
	d := BitRate(math.MaxInt64).TransmitTime(ByteSize(math.MaxInt64 / 8))
	if d < 0 {
		t.Fatalf("saturating math wrapped negative: %v", d)
	}
}

func TestMulDivNoOverflow(t *testing.T) {
	// 100 Gbps over ~1s (1e12 ps) would overflow a naive a*b multiply.
	got := (100 * Gbps).BytesIn(Duration(999_999_999_999))
	want := ByteSize(12_499_999_999) // ~12.5 GB
	if got < want-2 || got > want+2 {
		t.Fatalf("BytesIn big = %v, want ~%v", got, want)
	}
}

func TestTransmitTimeZeroRate(t *testing.T) {
	if d := BitRate(0).TransmitTime(100); d <= 0 {
		t.Fatal("zero-rate transmit time should be effectively infinite")
	}
}
