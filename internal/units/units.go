// Package units defines the simulation's base quantities: time, data size,
// and bit rate. Simulated time is kept in integer picoseconds so that
// serialization delays at 100 Gb/s (80 ps per byte) stay exact across
// hundreds of millions of events.
package units

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Time is an absolute simulation timestamp in picoseconds since the start of
// the run. The zero value is the beginning of the simulation.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable timestamp; it is used as an "infinitely
// far in the future" sentinel for disabled timers.
const MaxTime Time = math.MaxInt64

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

func (t Time) String() string { return Duration(t).String() }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds returns the duration as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Std converts d to a time.Duration, saturating at the bounds of
// time.Duration's nanosecond resolution.
func (d Duration) Std() time.Duration { return time.Duration(d / Nanosecond) }

// FromStd converts a wall-clock time.Duration into a simulated Duration.
func FromStd(d time.Duration) Duration { return Duration(d) * Nanosecond }

func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d < Nanosecond && d > -Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond && d > -Microsecond:
		return fmt.Sprintf("%.3gns", float64(d)/float64(Nanosecond))
	case d < Millisecond && d > -Millisecond:
		return fmt.Sprintf("%.4gus", float64(d)/float64(Microsecond))
	case d < Second && d > -Second:
		return fmt.Sprintf("%.4gms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", d.Seconds())
	}
}

// ByteSize is a quantity of data in bytes.
type ByteSize int64

// Common data sizes.
const (
	Byte ByteSize = 1
	KB            = 1000 * Byte
	MB            = 1000 * KB
	GB            = 1000 * MB
	KiB           = 1024 * Byte
	MiB           = 1024 * KiB
)

// Bits returns the size in bits.
func (b ByteSize) Bits() int64 { return int64(b) * 8 }

func (b ByteSize) String() string {
	switch {
	case b < KB && b > -KB:
		return fmt.Sprintf("%dB", int64(b))
	case b < MB && b > -MB:
		return fmt.Sprintf("%.4gKB", float64(b)/float64(KB))
	case b < GB && b > -GB:
		return fmt.Sprintf("%.4gMB", float64(b)/float64(MB))
	default:
		return fmt.Sprintf("%.4gGB", float64(b)/float64(GB))
	}
}

// BitRate is a transmission rate in bits per second.
type BitRate int64

// Common rates.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1000 * BitPerSecond
	Mbps                 = 1000 * Kbps
	Gbps                 = 1000 * Mbps
)

// TransmitTime returns the serialization delay of size at rate r.
// It rounds up to the next picosecond so a busy link never finishes early.
func (r BitRate) TransmitTime(size ByteSize) Duration {
	if r <= 0 {
		return Duration(math.MaxInt64)
	}
	if size <= 0 {
		return 0
	}
	// duration_ps = ceil(bits * 1e12 / rate), in 128-bit arithmetic.
	return Duration(mulDiv128(uint64(size.Bits()), uint64(Second), uint64(r), true))
}

// BytesIn returns how many whole bytes r transfers in d.
func (r BitRate) BytesIn(d Duration) ByteSize {
	if d <= 0 || r <= 0 {
		return 0
	}
	// bytes = rate * d_ps / (1e12 * 8), in 128-bit arithmetic.
	return ByteSize(mulDiv128(uint64(r), uint64(d), uint64(Second)*8, false))
}

// mulDiv128 computes a*b/c in 128-bit arithmetic, optionally rounding up,
// saturating at MaxInt64 if the result does not fit.
func mulDiv128(a, b, c uint64, ceil bool) int64 {
	hi, lo := bits.Mul64(a, b)
	if hi >= c {
		return math.MaxInt64
	}
	q, rem := bits.Div64(hi, lo, c)
	if ceil && rem > 0 {
		q++
	}
	if q > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(q)
}

// BDP returns the bandwidth-delay product for a round-trip time rtt at rate r.
func (r BitRate) BDP(rtt Duration) ByteSize { return r.BytesIn(rtt) }

func (r BitRate) String() string {
	switch {
	case r < Kbps:
		return fmt.Sprintf("%dbps", int64(r))
	case r < Mbps:
		return fmt.Sprintf("%.4gKbps", float64(r)/float64(Kbps))
	case r < Gbps:
		return fmt.Sprintf("%.4gMbps", float64(r)/float64(Mbps))
	default:
		return fmt.Sprintf("%.4gGbps", float64(r)/float64(Gbps))
	}
}
