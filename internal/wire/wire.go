// lint:virtual-time
// (pragma: opts this package into the wallclock analyzer — no wall-clock
// reads in non-test sources; see internal/lint and DESIGN.md §12)

// Package wire defines the proxy protocol's binary header: the bytes the
// streamlined proxy's packet program parses on the critical path, and the
// framing the TCP relay uses for its dial preamble. The layout is fixed
// size and fixed endian (big), exactly the kind of structure an eBPF
// program can parse with direct loads.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the current protocol version.
const Version = 1

// HeaderSize is the fixed on-wire header length in bytes.
const HeaderSize = 28

// Kind discriminates frame types.
type Kind uint8

// Frame kinds.
const (
	// KindData carries flow payload.
	KindData Kind = 1
	// KindAck acknowledges one data frame.
	KindAck Kind = 2
	// KindNack requests retransmission of one data frame.
	KindNack Kind = 3
	// KindDial opens a relayed connection; the payload is the target
	// address ("host:port").
	KindDial Kind = 4
	// KindDialOK confirms the relay connected to the target.
	KindDialOK Kind = 5
	// KindError carries a relay-side failure message in the payload.
	KindError Kind = 6
	// KindBusy is the relay's fast admission-shed answer: the relay is at
	// capacity (max concurrent connections or accept-rate budget) and this
	// dial was refused *before* any target dial. Unlike KindError it
	// carries a machine-readable verdict the client's circuit breaker can
	// act on without parsing a message; the payload is empty.
	KindBusy Kind = 7
	// KindGoingAway is the relay's drain-shed answer: the relay is
	// gracefully shutting down, finishing established splices but refusing
	// new dials. Clients should re-route (direct path or another relay)
	// rather than retry this relay. The payload is empty.
	KindGoingAway Kind = 8
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "DATA"
	case KindAck:
		return "ACK"
	case KindNack:
		return "NACK"
	case KindDial:
		return "DIAL"
	case KindDialOK:
		return "DIAL_OK"
	case KindError:
		return "ERROR"
	case KindBusy:
		return "BUSY"
	case KindGoingAway:
		return "GOING_AWAY"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Header flags.
const (
	// FlagTrimmed marks a data frame whose payload was cut to zero by a
	// trimming switch; only the header survives.
	FlagTrimmed = 1 << 0
	// FlagECN is the congestion-experienced mark.
	FlagECN = 1 << 1
	// FlagRetx marks retransmitted data.
	FlagRetx = 1 << 2
)

// Header is the decoded frame header.
//
// Wire layout (big endian):
//
//	off 0  : Version  (1 byte)
//	off 1  : Kind     (1 byte)
//	off 2  : Flags    (1 byte)
//	off 3  : reserved (1 byte, must be 0)
//	off 4  : FlowID   (8 bytes)
//	off 12 : Seq      (8 bytes)
//	off 20 : Length   (4 bytes, payload bytes that follow)
//	off 24 : Checksum (4 bytes, over the first 24 bytes with this
//	         field zeroed)
type Header struct {
	Kind   Kind
	Flags  uint8
	FlowID uint64
	Seq    uint64
	Length uint32
}

// Trimmed reports FlagTrimmed.
func (h Header) Trimmed() bool { return h.Flags&FlagTrimmed != 0 }

// ECN reports FlagECN.
func (h Header) ECN() bool { return h.Flags&FlagECN != 0 }

// Retx reports FlagRetx.
func (h Header) Retx() bool { return h.Flags&FlagRetx != 0 }

func (h Header) String() string {
	return fmt.Sprintf("%v flow=%d seq=%d len=%d flags=%#x", h.Kind, h.FlowID, h.Seq, h.Length, h.Flags)
}

// Decoding errors.
var (
	ErrShortHeader = errors.New("wire: buffer shorter than header")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadKind     = errors.New("wire: unknown kind")
	ErrBadChecksum = errors.New("wire: checksum mismatch")
	ErrBadReserved = errors.New("wire: reserved byte not zero")
)

// AppendHeader marshals h onto buf and returns the extended slice.
func AppendHeader(buf []byte, h Header) []byte {
	var scratch [HeaderSize]byte
	b := scratch[:]
	b[0] = Version
	b[1] = byte(h.Kind)
	b[2] = h.Flags
	b[3] = 0
	binary.BigEndian.PutUint64(b[4:], h.FlowID)
	binary.BigEndian.PutUint64(b[12:], h.Seq)
	binary.BigEndian.PutUint32(b[20:], h.Length)
	binary.BigEndian.PutUint32(b[24:], checksum(b[:24]))
	return append(buf, b...)
}

// Marshal returns the header as a fresh HeaderSize-byte slice.
func Marshal(h Header) []byte { return AppendHeader(nil, h) }

// Parse decodes and verifies a header from the front of b.
func Parse(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, ErrShortHeader
	}
	if b[0] != Version {
		return Header{}, ErrBadVersion
	}
	if b[3] != 0 {
		return Header{}, ErrBadReserved
	}
	k := Kind(b[1])
	if k < KindData || k > KindGoingAway {
		return Header{}, ErrBadKind
	}
	want := binary.BigEndian.Uint32(b[24:28])
	if checksum(b[:24]) != want {
		return Header{}, ErrBadChecksum
	}
	return Header{
		Kind:   k,
		Flags:  b[2],
		FlowID: binary.BigEndian.Uint64(b[4:12]),
		Seq:    binary.BigEndian.Uint64(b[12:20]),
		Length: binary.BigEndian.Uint32(b[20:24]),
	}, nil
}

// checksum is a simple 32-bit ones'-complement-style sum, cheap enough for
// a per-packet program hot path.
func checksum(b []byte) uint32 {
	var sum uint64
	for len(b) >= 4 {
		sum += uint64(binary.BigEndian.Uint32(b))
		b = b[4:]
	}
	var last [4]byte
	if len(b) > 0 {
		copy(last[:], b)
		sum += uint64(binary.BigEndian.Uint32(last[:]))
	}
	for sum>>32 != 0 {
		sum = sum&0xffffffff + sum>>32
	}
	return uint32(^sum)
}
