package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	h := Header{Kind: KindData, Flags: FlagECN | FlagRetx, FlowID: 42, Seq: 1234567, Length: 1472}
	b := Marshal(h)
	if len(b) != HeaderSize {
		t.Fatalf("len = %d", len(b))
	}
	got, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("roundtrip: got %+v, want %+v", got, h)
	}
	if !got.ECN() || !got.Retx() || got.Trimmed() {
		t.Fatal("flag accessors wrong")
	}
}

func TestAppendHeaderPreservesPrefix(t *testing.T) {
	prefix := []byte("prefix")
	b := AppendHeader(append([]byte(nil), prefix...), Header{Kind: KindAck, FlowID: 1})
	if !bytes.HasPrefix(b, prefix) {
		t.Fatal("prefix clobbered")
	}
	if _, err := Parse(b[len(prefix):]); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	good := Marshal(Header{Kind: KindData, FlowID: 7, Seq: 9, Length: 100})

	if _, err := Parse(good[:HeaderSize-1]); err != ErrShortHeader {
		t.Fatalf("short: %v", err)
	}

	bad := append([]byte(nil), good...)
	bad[0] = 99
	if _, err := Parse(bad); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[1] = 0
	if _, err := Parse(bad); err != ErrBadKind {
		t.Fatalf("kind zero: %v", err)
	}
	bad[1] = byte(KindGoingAway) + 1
	if _, err := Parse(bad); err != ErrBadKind {
		t.Fatalf("kind high: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[3] = 1
	if _, err := Parse(bad); err != ErrBadReserved {
		t.Fatalf("reserved: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[10] ^= 0xff // corrupt FlowID
	if _, err := Parse(bad); err != ErrBadChecksum {
		t.Fatalf("checksum: %v", err)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindData, KindAck, KindNack, KindDial, KindDialOK, KindError, KindBusy, KindGoingAway, Kind(77)} {
		if k.String() == "" {
			t.Fatalf("kind %d empty string", k)
		}
	}
}

func TestHeaderString(t *testing.T) {
	if (Header{Kind: KindData}).String() == "" {
		t.Fatal("empty header string")
	}
}

// Property: marshal/parse is the identity for all valid headers.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(kind uint8, flags uint8, flow, seq uint64, length uint32) bool {
		h := Header{
			Kind:   Kind(kind%8) + 1,
			Flags:  flags & 0x07,
			FlowID: flow,
			Seq:    seq,
			Length: length,
		}
		got, err := Parse(Marshal(h))
		return err == nil && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: any single-bit corruption of the first 24 bytes is caught by
// the checksum (or an earlier structural check).
func TestPropertySingleBitFlipDetected(t *testing.T) {
	f := func(flow, seq uint64, length uint32, pos uint8, bit uint8) bool {
		h := Header{Kind: KindData, FlowID: flow, Seq: seq, Length: length}
		b := Marshal(h)
		p := int(pos) % 24
		b[p] ^= 1 << (bit % 8)
		got, err := Parse(b)
		if err != nil {
			return true // detected
		}
		// Undetected parse must at least not equal the original
		// (checksum collision on our simple sum is possible only if
		// the value actually differs somewhere we compare).
		return got != h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	h := Header{Kind: KindData, FlowID: 42, Seq: 7, Length: 1472}
	buf := make([]byte, 0, HeaderSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendHeader(buf[:0], h)
	}
}

func BenchmarkParse(b *testing.B) {
	buf := Marshal(Header{Kind: KindData, FlowID: 42, Seq: 7, Length: 1472})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(buf); err != nil {
			b.Fatal(err)
		}
	}
}
