package wire

// The dial preamble is the relay protocol's only variable-length,
// attacker-facing input: a DIAL header followed by Length bytes naming the
// target ("host:port"). The relay parses it from every accepted connection
// before any policy check runs, so the parser must be total — truncated,
// oversized, and garbage inputs all map to typed errors, never to a panic,
// an unbounded allocation, or a silent misread. FuzzParsePreamble holds the
// parser to that.

import (
	"errors"
	"fmt"
	"io"
)

// MaxTargetLen bounds the dial target. Anything longer than a
// host:port can reasonably be is a malformed or hostile preamble, and the
// bound caps the allocation an unauthenticated client can force.
const MaxTargetLen = 1024

// Preamble errors. ReadPreamble and ParsePreamble wrap these with detail;
// match with errors.Is.
var (
	// ErrPreambleTruncated reports a connection or buffer that ended
	// before the advertised preamble was complete.
	ErrPreambleTruncated = errors.New("wire: truncated dial preamble")
	// ErrNotDial reports a structurally valid frame of the wrong kind
	// where a DIAL was required.
	ErrNotDial = errors.New("wire: preamble is not a DIAL frame")
	// ErrTargetLen reports a DIAL whose target length is zero or exceeds
	// MaxTargetLen.
	ErrTargetLen = errors.New("wire: dial target length out of range")
	// ErrTargetGarbage reports a target containing control or non-ASCII
	// bytes — never legitimate in a host:port, always hostile or corrupt.
	ErrTargetGarbage = errors.New("wire: dial target contains garbage bytes")
)

// Dial is a decoded dial preamble: the target plus the trace context the
// client attached. TraceID and SpanID ride the header's FlowID and Seq
// fields — both were fixed at zero in DIAL frames, so carrying them is a
// wire-compatible extension: old parsers ignore the fields, old dialers
// produce TraceID=0 ("untraced"), and the existing checksum already
// covers them.
type Dial struct {
	Target  string
	TraceID uint64
	SpanID  uint64
}

// AppendDial marshals a dial preamble onto buf. The target is validated
// with the same rules the parser enforces, so a preamble this function
// produces always parses.
func AppendDial(buf []byte, d Dial) ([]byte, error) {
	if len(d.Target) == 0 || len(d.Target) > MaxTargetLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTargetLen, len(d.Target))
	}
	if err := checkTarget([]byte(d.Target)); err != nil {
		return nil, err
	}
	buf = AppendHeader(buf, Header{
		Kind:   KindDial,
		FlowID: d.TraceID,
		Seq:    d.SpanID,
		Length: uint32(len(d.Target)),
	})
	return append(buf, d.Target...), nil
}

// AppendDialPreamble marshals an untraced dial preamble for target onto
// buf (compatibility wrapper over AppendDial).
func AppendDialPreamble(buf []byte, target string) ([]byte, error) {
	return AppendDial(buf, Dial{Target: target})
}

// ParseDial decodes a dial preamble from the front of b, returning the
// dial and the number of bytes consumed. It never panics and never
// allocates more than MaxTargetLen regardless of input.
func ParseDial(b []byte) (d Dial, n int, err error) {
	if len(b) < HeaderSize {
		return Dial{}, 0, fmt.Errorf("%w: %d of %d header bytes", ErrPreambleTruncated, len(b), HeaderSize)
	}
	h, err := Parse(b)
	if err != nil {
		return Dial{}, 0, err
	}
	if h.Kind != KindDial {
		return Dial{}, 0, fmt.Errorf("%w: got %v", ErrNotDial, h.Kind)
	}
	if h.Length == 0 || h.Length > MaxTargetLen {
		return Dial{}, 0, fmt.Errorf("%w: %d bytes", ErrTargetLen, h.Length)
	}
	end := HeaderSize + int(h.Length)
	if len(b) < end {
		return Dial{}, 0, fmt.Errorf("%w: %d of %d target bytes", ErrPreambleTruncated, len(b)-HeaderSize, h.Length)
	}
	t := b[HeaderSize:end]
	if err := checkTarget(t); err != nil {
		return Dial{}, 0, err
	}
	return Dial{Target: string(t), TraceID: h.FlowID, SpanID: h.Seq}, end, nil
}

// ParsePreamble decodes a dial preamble from the front of b, returning
// only the target (compatibility wrapper over ParseDial).
func ParsePreamble(b []byte) (target string, n int, err error) {
	d, n, err := ParseDial(b)
	return d.Target, n, err
}

// ReadDial consumes a dial preamble from r — the relay's accept path.
// A stream that ends early reports ErrPreambleTruncated; structural and
// content failures report the same typed errors as ParseDial.
func ReadDial(r io.Reader) (Dial, error) {
	hdr := make([]byte, HeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Dial{}, fmt.Errorf("%w: header: %v", ErrPreambleTruncated, err)
		}
		return Dial{}, err
	}
	h, err := Parse(hdr)
	if err != nil {
		return Dial{}, err
	}
	if h.Kind != KindDial {
		return Dial{}, fmt.Errorf("%w: got %v", ErrNotDial, h.Kind)
	}
	if h.Length == 0 || h.Length > MaxTargetLen {
		return Dial{}, fmt.Errorf("%w: %d bytes", ErrTargetLen, h.Length)
	}
	target := make([]byte, h.Length)
	if _, err := io.ReadFull(r, target); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Dial{}, fmt.Errorf("%w: target: %v", ErrPreambleTruncated, err)
		}
		return Dial{}, err
	}
	if err := checkTarget(target); err != nil {
		return Dial{}, err
	}
	return Dial{Target: string(target), TraceID: h.FlowID, SpanID: h.Seq}, nil
}

// ReadPreamble consumes a dial preamble from r, returning only the target
// (compatibility wrapper over ReadDial).
func ReadPreamble(r io.Reader) (string, error) {
	d, err := ReadDial(r)
	return d.Target, err
}

// checkTarget rejects bytes that cannot occur in a host:port — control
// characters, spaces, DEL, and anything non-ASCII.
func checkTarget(t []byte) error {
	for i, c := range t {
		if c <= 0x20 || c >= 0x7f {
			return fmt.Errorf("%w: byte %#02x at offset %d", ErrTargetGarbage, c, i)
		}
	}
	return nil
}
