package wire

// The dial preamble is the relay protocol's only variable-length,
// attacker-facing input: a DIAL header followed by Length bytes naming the
// target ("host:port"). The relay parses it from every accepted connection
// before any policy check runs, so the parser must be total — truncated,
// oversized, and garbage inputs all map to typed errors, never to a panic,
// an unbounded allocation, or a silent misread. FuzzParsePreamble holds the
// parser to that.

import (
	"errors"
	"fmt"
	"io"
)

// MaxTargetLen bounds the dial target. Anything longer than a
// host:port can reasonably be is a malformed or hostile preamble, and the
// bound caps the allocation an unauthenticated client can force.
const MaxTargetLen = 1024

// Preamble errors. ReadPreamble and ParsePreamble wrap these with detail;
// match with errors.Is.
var (
	// ErrPreambleTruncated reports a connection or buffer that ended
	// before the advertised preamble was complete.
	ErrPreambleTruncated = errors.New("wire: truncated dial preamble")
	// ErrNotDial reports a structurally valid frame of the wrong kind
	// where a DIAL was required.
	ErrNotDial = errors.New("wire: preamble is not a DIAL frame")
	// ErrTargetLen reports a DIAL whose target length is zero or exceeds
	// MaxTargetLen.
	ErrTargetLen = errors.New("wire: dial target length out of range")
	// ErrTargetGarbage reports a target containing control or non-ASCII
	// bytes — never legitimate in a host:port, always hostile or corrupt.
	ErrTargetGarbage = errors.New("wire: dial target contains garbage bytes")
)

// AppendDialPreamble marshals a dial preamble for target onto buf. The
// target is validated with the same rules the parser enforces, so a
// preamble this function produces always parses.
func AppendDialPreamble(buf []byte, target string) ([]byte, error) {
	if len(target) == 0 || len(target) > MaxTargetLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTargetLen, len(target))
	}
	if err := checkTarget([]byte(target)); err != nil {
		return nil, err
	}
	buf = AppendHeader(buf, Header{Kind: KindDial, Length: uint32(len(target))})
	return append(buf, target...), nil
}

// ParsePreamble decodes a dial preamble from the front of b, returning the
// target and the number of bytes consumed. It never panics and never
// allocates more than MaxTargetLen regardless of input.
func ParsePreamble(b []byte) (target string, n int, err error) {
	if len(b) < HeaderSize {
		return "", 0, fmt.Errorf("%w: %d of %d header bytes", ErrPreambleTruncated, len(b), HeaderSize)
	}
	h, err := Parse(b)
	if err != nil {
		return "", 0, err
	}
	if h.Kind != KindDial {
		return "", 0, fmt.Errorf("%w: got %v", ErrNotDial, h.Kind)
	}
	if h.Length == 0 || h.Length > MaxTargetLen {
		return "", 0, fmt.Errorf("%w: %d bytes", ErrTargetLen, h.Length)
	}
	end := HeaderSize + int(h.Length)
	if len(b) < end {
		return "", 0, fmt.Errorf("%w: %d of %d target bytes", ErrPreambleTruncated, len(b)-HeaderSize, h.Length)
	}
	t := b[HeaderSize:end]
	if err := checkTarget(t); err != nil {
		return "", 0, err
	}
	return string(t), end, nil
}

// ReadPreamble consumes a dial preamble from r — the relay's accept path.
// A stream that ends early reports ErrPreambleTruncated; structural and
// content failures report the same typed errors as ParsePreamble.
func ReadPreamble(r io.Reader) (string, error) {
	hdr := make([]byte, HeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return "", fmt.Errorf("%w: header: %v", ErrPreambleTruncated, err)
		}
		return "", err
	}
	h, err := Parse(hdr)
	if err != nil {
		return "", err
	}
	if h.Kind != KindDial {
		return "", fmt.Errorf("%w: got %v", ErrNotDial, h.Kind)
	}
	if h.Length == 0 || h.Length > MaxTargetLen {
		return "", fmt.Errorf("%w: %d bytes", ErrTargetLen, h.Length)
	}
	target := make([]byte, h.Length)
	if _, err := io.ReadFull(r, target); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return "", fmt.Errorf("%w: target: %v", ErrPreambleTruncated, err)
		}
		return "", err
	}
	if err := checkTarget(target); err != nil {
		return "", err
	}
	return string(target), nil
}

// checkTarget rejects bytes that cannot occur in a host:port — control
// characters, spaces, DEL, and anything non-ASCII.
func checkTarget(t []byte) error {
	for i, c := range t {
		if c <= 0x20 || c >= 0x7f {
			return fmt.Errorf("%w: byte %#02x at offset %d", ErrTargetGarbage, c, i)
		}
	}
	return nil
}
