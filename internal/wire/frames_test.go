package wire

// The BUSY and GOING_AWAY frames are the relay's overload vocabulary: an
// admission shed and a drain shed must reach the client as explicit,
// parseable verdicts, never as a silent close or a hang. These tests (and
// FuzzHeaderRoundTrip) hold the codec to the same totality bar as the dial
// preamble: every byte pattern either parses to a header that re-encodes
// byte-identically, or maps to a typed error.

import (
	"bytes"
	"testing"
)

func TestBusyAndGoingAwayFrames(t *testing.T) {
	for _, k := range []Kind{KindBusy, KindGoingAway} {
		b := Marshal(Header{Kind: k})
		h, err := Parse(b)
		if err != nil {
			t.Fatalf("%v frame failed to parse: %v", k, err)
		}
		if h.Kind != k || h.Length != 0 {
			t.Fatalf("%v frame decoded as %+v", k, h)
		}
		// A shed verdict followed by stream teardown bytes must still
		// parse from a prefix read, the way DialViaRelay consumes it.
		trail := append(append([]byte(nil), b...), "ignored trailing bytes"...)
		if h2, err := Parse(trail); err != nil || h2.Kind != k {
			t.Fatalf("%v with trailer: %+v, %v", k, h2, err)
		}
	}
}

func TestShedKindsAreNotDialPreambles(t *testing.T) {
	// A client that echoes a shed frame back at a relay must hit the
	// preamble parser's wrong-kind error, not be mistaken for a dial.
	for _, k := range []Kind{KindBusy, KindGoingAway} {
		b := Marshal(Header{Kind: k, Length: 4})
		b = append(b, "addr"...)
		if _, _, err := ParsePreamble(b); err == nil {
			t.Fatalf("%v parsed as a dial preamble", k)
		}
	}
}

// FuzzHeaderRoundTrip fuzzes the frame codec over raw header fields,
// covering the BUSY/GOING_AWAY shed frames alongside the original kinds:
// every header the encoder can produce must parse back field-identical, and
// every out-of-range kind must be rejected with ErrBadKind.
func FuzzHeaderRoundTrip(f *testing.F) {
	f.Add(uint8(KindBusy), uint8(0), uint64(0), uint64(0), uint32(0))
	f.Add(uint8(KindGoingAway), uint8(0), uint64(0), uint64(0), uint32(0))
	f.Add(uint8(KindError), uint8(0), uint64(1), uint64(2), uint32(16))
	f.Add(uint8(KindData), uint8(FlagECN|FlagTrimmed), uint64(42), uint64(7), uint32(1472))
	f.Add(uint8(0), uint8(0xff), uint64(1<<63), uint64(1), uint32(1<<31))
	f.Add(uint8(255), uint8(1), uint64(3), uint64(4), uint32(5))

	f.Fuzz(func(t *testing.T, kind, flags uint8, flow, seq uint64, length uint32) {
		h := Header{Kind: Kind(kind), Flags: flags, FlowID: flow, Seq: seq, Length: length}
		b := Marshal(h)
		if len(b) != HeaderSize {
			t.Fatalf("marshal produced %d bytes", len(b))
		}
		got, err := Parse(b)
		valid := Kind(kind) >= KindData && Kind(kind) <= KindGoingAway
		if !valid {
			if err != ErrBadKind {
				t.Fatalf("kind %d: err = %v, want ErrBadKind", kind, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid header %+v failed to parse: %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip: got %+v, want %+v", got, h)
		}
		// Re-encoding the parsed header must be byte-identical.
		if !bytes.Equal(Marshal(got), b) {
			t.Fatalf("re-encode of %+v differs from original bytes", got)
		}
	})
}
