package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func mustPreamble(t testing.TB, target string) []byte {
	t.Helper()
	b, err := AppendDialPreamble(nil, target)
	if err != nil {
		t.Fatalf("AppendDialPreamble(%q): %v", target, err)
	}
	return b
}

func TestPreambleRoundTrip(t *testing.T) {
	b := mustPreamble(t, "10.0.0.7:9000")
	b = append(b, "trailing stream bytes"...) // payload after the preamble

	target, n, err := ParsePreamble(b)
	if err != nil {
		t.Fatal(err)
	}
	if target != "10.0.0.7:9000" {
		t.Fatalf("target = %q", target)
	}
	if n != HeaderSize+len("10.0.0.7:9000") {
		t.Fatalf("consumed %d bytes", n)
	}

	got, err := ReadPreamble(bytes.NewReader(b))
	if err != nil || got != "10.0.0.7:9000" {
		t.Fatalf("ReadPreamble = %q, %v", got, err)
	}
}

func TestPreambleTruncated(t *testing.T) {
	full := mustPreamble(t, "host.example:443")
	for _, cut := range []int{0, 1, HeaderSize - 1, HeaderSize, HeaderSize + 3, len(full) - 1} {
		if _, _, err := ParsePreamble(full[:cut]); !errors.Is(err, ErrPreambleTruncated) &&
			!errors.Is(err, ErrShortHeader) {
			t.Fatalf("cut=%d: err = %v", cut, err)
		}
		if _, err := ReadPreamble(bytes.NewReader(full[:cut])); !errors.Is(err, ErrPreambleTruncated) &&
			!errors.Is(err, ErrShortHeader) {
			t.Fatalf("read cut=%d: err = %v", cut, err)
		}
	}
}

func TestPreambleOversizedAndEmpty(t *testing.T) {
	if _, err := AppendDialPreamble(nil, strings.Repeat("a", MaxTargetLen+1)); !errors.Is(err, ErrTargetLen) {
		t.Fatalf("oversized append: %v", err)
	}
	if _, err := AppendDialPreamble(nil, ""); !errors.Is(err, ErrTargetLen) {
		t.Fatalf("empty append: %v", err)
	}
	// Hand-craft headers the encoder refuses to produce.
	for _, length := range []uint32{0, MaxTargetLen + 1, 1 << 30} {
		hdr := Marshal(Header{Kind: KindDial, Length: length})
		b := append(hdr, make([]byte, 16)...)
		if _, _, err := ParsePreamble(b); !errors.Is(err, ErrTargetLen) {
			t.Fatalf("length %d: %v", length, err)
		}
		if _, err := ReadPreamble(bytes.NewReader(b)); !errors.Is(err, ErrTargetLen) {
			t.Fatalf("read length %d: %v", length, err)
		}
	}
}

func TestPreambleWrongKindAndGarbage(t *testing.T) {
	notDial := Marshal(Header{Kind: KindData, Length: 4})
	notDial = append(notDial, "abcd"...)
	if _, _, err := ParsePreamble(notDial); !errors.Is(err, ErrNotDial) {
		t.Fatalf("wrong kind: %v", err)
	}

	for _, target := range []string{"has space:80", "nul\x00byte:80", "high\xffbyte:80", "tab\tchar:80"} {
		if _, err := AppendDialPreamble(nil, target); !errors.Is(err, ErrTargetGarbage) {
			t.Fatalf("append %q: %v", target, err)
		}
		hdr := Marshal(Header{Kind: KindDial, Length: uint32(len(target))})
		b := append(hdr, target...)
		if _, _, err := ParsePreamble(b); !errors.Is(err, ErrTargetGarbage) {
			t.Fatalf("parse %q: %v", target, err)
		}
		if _, err := ReadPreamble(bytes.NewReader(b)); !errors.Is(err, ErrTargetGarbage) {
			t.Fatalf("read %q: %v", target, err)
		}
	}
}

func TestPreambleCorruptHeader(t *testing.T) {
	b := mustPreamble(t, "h:1")
	b[5] ^= 0xff // flip FlowID bits: checksum must catch it
	if _, _, err := ParsePreamble(b); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corrupt: %v", err)
	}
}

// ReadPreamble must pass through non-EOF transport errors unmapped, so the
// relay can distinguish a peer that hung up from a broken socket.
func TestReadPreamblePropagatesReaderError(t *testing.T) {
	boom := errors.New("socket exploded")
	if _, err := ReadPreamble(errReader{boom}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }

func FuzzParsePreamble(f *testing.F) {
	f.Add(mustPreamble(f, "10.0.0.7:9000"))
	f.Add(mustPreamble(f, "a:1"))
	f.Add([]byte{})
	f.Add(make([]byte, HeaderSize))
	f.Add(Marshal(Header{Kind: KindDial, Length: 1 << 31}))
	f.Add(Marshal(Header{Kind: KindError, Length: 3}))

	f.Fuzz(func(t *testing.T, data []byte) {
		target, n, err := ParsePreamble(data)
		if err != nil {
			if target != "" || n != 0 {
				t.Fatalf("error path leaked results: %q, %d", target, n)
			}
			return
		}
		// A successful parse must be internally consistent...
		if len(target) == 0 || len(target) > MaxTargetLen {
			t.Fatalf("target length %d out of bounds", len(target))
		}
		if n != HeaderSize+len(target) || n > len(data) {
			t.Fatalf("consumed %d of %d for %d-byte target", n, len(data), len(target))
		}
		// ...agree with the streaming parser...
		streamed, err := ReadPreamble(bytes.NewReader(data))
		if err != nil || streamed != target {
			t.Fatalf("ReadPreamble disagrees: %q, %v", streamed, err)
		}
		// ...and survive a re-encode round trip.
		re, err := AppendDialPreamble(nil, target)
		if err != nil {
			t.Fatalf("re-encode refused parsed target %q: %v", target, err)
		}
		back, m, err := ParsePreamble(re)
		if err != nil || back != target || m != len(re) {
			t.Fatalf("round trip: %q, %d, %v", back, m, err)
		}
	})
}

var _ io.Reader = errReader{}
