package stats

import (
	"math"
	"testing"

	"incastproxy/internal/rng"
)

// Below capacity the reservoir holds everything, so a bounded sample must
// agree with the exact sample on every aggregate, percentiles included.
func TestBoundedMatchesExactUnderCapacity(t *testing.T) {
	src := rng.New(7)
	var exact Sample
	bounded := NewBounded(4096, 7)
	for i := 0; i < 1000; i++ {
		v := src.Float64() * 100
		exact.Add(v)
		bounded.Add(v)
	}
	if exact.N() != bounded.N() {
		t.Fatalf("N: exact %d, bounded %d", exact.N(), bounded.N())
	}
	if bounded.ReservoirN() != 1000 {
		t.Fatalf("reservoir holds %d, want all 1000", bounded.ReservoirN())
	}
	for _, p := range []float64{0, 10, 50, 90, 99, 99.9, 100} {
		if e, b := exact.Percentile(p), bounded.Percentile(p); e != b {
			t.Errorf("p%g: exact %g, bounded %g", p, e, b)
		}
	}
	if exact.Min() != bounded.Min() || exact.Max() != bounded.Max() {
		t.Error("min/max diverge under capacity")
	}
	if math.Abs(exact.Mean()-bounded.Mean()) > 1e-9 {
		t.Errorf("mean: exact %g, bounded %g", exact.Mean(), bounded.Mean())
	}
	if math.Abs(exact.Stddev()-bounded.Stddev()) > 1e-9 {
		t.Errorf("stddev: exact %g, bounded %g", exact.Stddev(), bounded.Stddev())
	}
}

// Past capacity the moments must stay exact even though the reservoir has
// started evicting: count, mean, min, max are streamed, not sampled.
func TestBoundedMomentsExactOverCapacity(t *testing.T) {
	const n = 50000
	src := rng.New(11)
	var exact Sample
	bounded := NewBounded(512, 11)
	for i := 0; i < n; i++ {
		// A heavy right tail, like flow completion times.
		v := math.Exp(2 * src.NormFloat64())
		exact.Add(v)
		bounded.Add(v)
	}
	if bounded.N() != n {
		t.Fatalf("N = %d, want %d", bounded.N(), n)
	}
	if bounded.ReservoirN() != 512 {
		t.Fatalf("reservoir holds %d, want capacity 512", bounded.ReservoirN())
	}
	if exact.Min() != bounded.Min() {
		t.Errorf("min: exact %g, bounded %g", exact.Min(), bounded.Min())
	}
	if exact.Max() != bounded.Max() {
		t.Errorf("max: exact %g, bounded %g", exact.Max(), bounded.Max())
	}
	if rel := math.Abs(exact.Mean()-bounded.Mean()) / exact.Mean(); rel > 1e-9 {
		t.Errorf("mean relative error %g: exact %g, bounded %g", rel, exact.Mean(), bounded.Mean())
	}
	if rel := math.Abs(exact.Stddev()-bounded.Stddev()) / exact.Stddev(); rel > 1e-6 {
		t.Errorf("stddev relative error %g: exact %g, bounded %g", rel, exact.Stddev(), bounded.Stddev())
	}
}

// Reservoir percentiles are estimates; on a uniform stream 25x the capacity
// they must still land close to the exact order statistics.
func TestBoundedPercentileApproximation(t *testing.T) {
	const n = 100000
	src := rng.New(23)
	var exact Sample
	bounded := NewBounded(4096, 23)
	for i := 0; i < n; i++ {
		v := src.Float64()
		exact.Add(v)
		bounded.Add(v)
	}
	// On Uniform(0,1) the value scale equals the rank scale, so an
	// absolute tolerance is a rank tolerance. 4 standard errors of the
	// p50 estimate at capacity 4096 is ~0.031.
	for _, tc := range []struct{ p, tol float64 }{
		{50, 0.04}, {90, 0.03}, {99, 0.01},
	} {
		e, b := exact.Percentile(tc.p), bounded.Percentile(tc.p)
		if math.Abs(e-b) > tc.tol {
			t.Errorf("p%g: exact %.4f, bounded %.4f, tolerance %.3f", tc.p, e, b, tc.tol)
		}
	}
}

// Same seed + same observation order must reproduce the reservoir exactly;
// this is what keeps bounded summaries byte-identical across shard counts.
func TestBoundedDeterministic(t *testing.T) {
	feed := func(s *Sample) {
		src := rng.New(5)
		for i := 0; i < 10000; i++ {
			s.Add(src.ExpFloat64())
		}
	}
	a, b := NewBounded(256, 99), NewBounded(256, 99)
	feed(a)
	feed(b)
	av, bv := a.Values(), b.Values()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("reservoirs diverge at %d: %g vs %g", i, av[i], bv[i])
		}
	}

	// A different reservoir seed changes eviction choices but never the
	// streamed moments.
	c := NewBounded(256, 100)
	feed(c)
	if a.Mean() != c.Mean() || a.Min() != c.Min() || a.Max() != c.Max() || a.N() != c.N() {
		t.Error("streamed moments depend on the reservoir seed")
	}
}

func TestBoundedDropsNaNAndClampsCapacity(t *testing.T) {
	s := NewBounded(0, 1) // capacity clamps to 1
	s.Add(math.NaN())
	if s.N() != 0 {
		t.Fatal("NaN counted")
	}
	s.Add(3)
	s.Add(5)
	if s.N() != 2 || s.ReservoirN() != 1 {
		t.Fatalf("N=%d reservoir=%d, want 2 and 1", s.N(), s.ReservoirN())
	}
	if s.Min() != 3 || s.Max() != 5 || s.Mean() != 4 {
		t.Errorf("moments wrong: min %g max %g mean %g", s.Min(), s.Max(), s.Mean())
	}
	if !s.Bounded() {
		t.Error("Bounded() false for NewBounded sample")
	}
	var exact Sample
	if exact.Bounded() {
		t.Error("Bounded() true for zero-value sample")
	}
}

// SummarizeDurations must work identically over a bounded sample that never
// overflowed — the common case for sub-capacity incast degrees.
func TestSummarizeDurationsBounded(t *testing.T) {
	var exact Sample
	bounded := NewBounded(4096, 1)
	for i := 1; i <= 100; i++ {
		exact.Add(float64(i))
		bounded.Add(float64(i))
	}
	if SummarizeDurations(&exact) != SummarizeDurations(bounded) {
		t.Error("summaries diverge under capacity")
	}
}
