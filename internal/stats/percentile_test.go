package stats

import (
	"math"
	"testing"
)

// Table-driven edge cases for Sample.Percentile: empty and single-element
// samples, the p=0/p=100 extremes (and out-of-range p), duplicate values,
// and linear interpolation between closest ranks.
func TestPercentileEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		values []float64
		p      float64
		want   float64
	}{
		{"empty/p50", nil, 50, 0},
		{"empty/p0", nil, 0, 0},
		{"empty/p100", nil, 100, 0},

		{"single/p0", []float64{7}, 0, 7},
		{"single/p50", []float64{7}, 50, 7},
		{"single/p100", []float64{7}, 100, 7},

		{"two/p0", []float64{10, 20}, 0, 10},
		{"two/p25", []float64{10, 20}, 25, 12.5},
		{"two/p50", []float64{10, 20}, 50, 15},
		{"two/p100", []float64{10, 20}, 100, 20},

		// Out-of-range p clamps to the extremes.
		{"clamp/negative", []float64{1, 2, 3}, -10, 1},
		{"clamp/over100", []float64{1, 2, 3}, 150, 3},

		// All-duplicate samples report the duplicate at every rank.
		{"dup/p0", []float64{5, 5, 5, 5}, 0, 5},
		{"dup/p37", []float64{5, 5, 5, 5}, 37, 5},
		{"dup/p100", []float64{5, 5, 5, 5}, 100, 5},

		// Partial duplicates still interpolate over sorted ranks:
		// sorted [1 1 2], p50 -> rank 1 -> 1, p75 -> rank 1.5 -> 1.5.
		{"partialdup/p50", []float64{2, 1, 1}, 50, 1},
		{"partialdup/p75", []float64{2, 1, 1}, 75, 1.5},

		// Interpolation between closest ranks: sorted [10 20 30 40],
		// p50 -> rank 1.5 -> 25; p90 -> rank 2.7 -> 37.
		{"interp/p50", []float64{40, 10, 30, 20}, 50, 25},
		{"interp/p90", []float64{40, 10, 30, 20}, 90, 37},
		// Exact-rank hit needs no interpolation.
		{"exact/p50of5", []float64{1, 2, 3, 4, 5}, 50, 3},

		// ±Inf p clamps like any other out-of-range p.
		{"clamp/negInf", []float64{1, 2, 3}, math.Inf(-1), 1},
		{"clamp/posInf", []float64{1, 2, 3}, math.Inf(1), 3},

		// NaN observations are dropped at Add, so they never poison the
		// interpolation: [NaN 10 20] behaves exactly like [10 20].
		{"nanvalue/p50", []float64{math.NaN(), 10, 20}, 50, 15},
		{"nanvalue/p100", []float64{10, math.NaN(), 20}, 100, 20},
		{"allnan/p50", []float64{math.NaN(), math.NaN()}, 50, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var s Sample
			for _, v := range tc.values {
				s.Add(v)
			}
			got := s.Percentile(tc.p)
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("Percentile(%v) of %v = %v, want %v", tc.p, tc.values, got, tc.want)
			}
		})
	}
}

// A NaN p reports NaN instead of silently indexing with an undefined rank
// (int(NaN) is platform-dependent and used to reach the slice index).
func TestPercentileNaNP(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(2)
	if got := s.Percentile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Percentile(NaN) = %v, want NaN", got)
	}
	var empty Sample
	if got := empty.Percentile(math.NaN()); got != 0 {
		t.Fatalf("empty Percentile(NaN) = %v, want 0", got)
	}
}

// NaN observations must not perturb the sample's count or aggregates.
func TestAddDropsNaN(t *testing.T) {
	var s Sample
	s.Add(math.NaN())
	s.Add(5)
	s.Add(math.NaN())
	if s.N() != 1 {
		t.Fatalf("N = %d after NaN adds, want 1", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := s.Percentile(50); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
}

// Adding after a percentile query must re-sort, not append past the sorted
// prefix.
func TestPercentileAfterAdd(t *testing.T) {
	var s Sample
	s.Add(30)
	s.Add(10)
	if got := s.Percentile(100); got != 30 {
		t.Fatalf("p100 = %v", got)
	}
	s.Add(50)
	if got := s.Percentile(100); got != 50 {
		t.Fatalf("p100 after Add = %v, want 50", got)
	}
	if got := s.Percentile(0); got != 10 {
		t.Fatalf("p0 after Add = %v, want 10", got)
	}
}
