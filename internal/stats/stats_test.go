package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"incastproxy/internal/units"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 3 {
		t.Fatalf("Median = %v", s.Median())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	for _, v := range []float64{10, 20, 30, 40} {
		s.Add(v)
	}
	// p50 over 4 values with linear interpolation: rank 1.5 -> 25.
	if got := s.Percentile(50); got != 25 {
		t.Fatalf("p50 = %v, want 25", got)
	}
	if got := s.Percentile(0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 40 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestStddev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	// Known sample stddev ~2.138.
	if got := s.Stddev(); math.Abs(got-2.138) > 0.01 {
		t.Fatalf("Stddev = %v", got)
	}
}

func TestAddAfterSortStaysCorrect(t *testing.T) {
	var s Sample
	s.Add(5)
	_ = s.Min() // forces a sort
	s.Add(1)    // must invalidate sorted state
	if s.Min() != 1 {
		t.Fatal("Add after sort lost ordering invalidation")
	}
}

func TestSummarizeDurations(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.AddDuration(units.Duration(i) * units.Microsecond)
	}
	sum := SummarizeDurations(&s)
	if sum.N != 100 || sum.Min != units.Microsecond || sum.Max != 100*units.Microsecond {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.P50 < 50*units.Microsecond || sum.P50 > 51*units.Microsecond {
		t.Fatalf("P50 = %v", sum.P50)
	}
	if sum.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestCDF(t *testing.T) {
	var c CDF
	for i := 1; i <= 1000; i++ {
		c.Observe(units.Duration(i))
	}
	if c.N() != 1000 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.At(500); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("At(500) = %v", got)
	}
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(2000); got != 1 {
		t.Fatalf("At(2000) = %v", got)
	}
	if q := c.Quantile(0.99); q < 985 || q > 995 {
		t.Fatalf("Quantile(0.99) = %v", q)
	}
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("Points len = %d", len(pts))
	}
	if pts[0].Prob != 0 || pts[10].Prob != 1 {
		t.Fatalf("endpoints wrong: %+v %+v", pts[0], pts[10])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Latency < pts[i-1].Latency {
			t.Fatal("CDF points must be non-decreasing")
		}
	}
	if c.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.Points(5) != nil || c.At(10) != 0 {
		t.Fatal("empty CDF should be inert")
	}
}

func TestRunStats(t *testing.T) {
	var r RunStats
	for _, d := range []units.Duration{10, 20, 30} {
		r.Add(d * units.Millisecond)
	}
	if r.Avg() != 20*units.Millisecond || r.Min() != 10*units.Millisecond || r.Max() != 30*units.Millisecond {
		t.Fatalf("RunStats = %v", r.String())
	}
	if r.N() != 3 {
		t.Fatalf("N = %d", r.N())
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(100, 25); got != 0.75 {
		t.Fatalf("Reduction = %v, want 0.75", got)
	}
	if got := Reduction(0, 5); got != 0 {
		t.Fatalf("Reduction with zero base = %v", got)
	}
}

// Property: Percentile is monotone in p and bounded by [Min, Max].
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		if len(vals) == 0 {
			return true
		}
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		pa := math.Abs(math.Mod(a, 100))
		pb := math.Abs(math.Mod(b, 100))
		if pa > pb {
			pa, pb = pb, pa
		}
		qa, qb := s.Percentile(pa), s.Percentile(pb)
		return qa <= qb && qa >= s.Min() && qb <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CDF.At(Quantile(q)) >= q for all observed q.
func TestPropertyCDFQuantileConsistency(t *testing.T) {
	f := func(raw []uint16, q uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var c CDF
		for _, v := range raw {
			c.Observe(units.Duration(v))
		}
		qq := float64(q%101) / 100
		return c.At(c.Quantile(qq)) >= qq-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Values() returns a sorted permutation of the inputs.
func TestPropertyValuesSorted(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) {
				s.Add(v)
				clean = append(clean, v)
			}
		}
		got := s.Values()
		if !sort.Float64sAreSorted(got) {
			return false
		}
		return len(got) == len(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
