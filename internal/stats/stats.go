// Package stats provides the small statistical toolkit the experiment
// harness needs: percentile estimation, CDFs for the Figure 4-5 latency
// plots, and min/mean/max aggregation across repeated simulation runs
// (the paper reports average, minimum and maximum incast completion time
// over 5 runs).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"incastproxy/internal/rng"
	"incastproxy/internal/units"
)

// Sample accumulates float64 observations. The zero value is ready to use
// and stores every observation exactly; NewBounded returns a Sample whose
// memory stays constant no matter how many observations arrive.
type Sample struct {
	// values holds every observation in exact mode, or the reservoir in
	// bounded mode.
	values []float64
	sorted bool

	// Bounded mode (NewBounded). bound > 0 selects it: moments stream
	// through Welford's recurrence while values becomes a fixed-size
	// uniform reservoir (Vitter's Algorithm R) used only for percentiles.
	bound  int
	src    *rng.Source
	count  int64
	mu, m2 float64
	lo, hi float64
}

// boundedSampleLabel namespaces the reservoir's RNG stream under
// rng.DeriveSeed so a bounded sample never shares a stream with any other
// consumer of the same base seed.
const boundedSampleLabel = 0x5e5e

// NewBounded returns a Sample whose memory footprint is fixed at capacity
// observations regardless of how many are added. Count, mean, min, max, and
// standard deviation stay exact (streamed); percentiles are estimated from a
// uniform reservoir of at most capacity observations. Replacement decisions
// draw from a deterministic stream derived from seed via rng.DeriveSeed, so
// two bounded samples fed identical observations in identical order with the
// same seed report byte-identical results — which is what lets the sharded
// workload path summarize per-flow completion times at 10k-sender scale
// without unbounded buffers and without breaking cross-shard-count
// reproducibility.
func NewBounded(capacity int, seed int64) *Sample {
	if capacity < 1 {
		capacity = 1
	}
	return &Sample{
		bound: capacity,
		src:   rng.New(rng.DeriveSeed(seed, boundedSampleLabel)),
	}
}

// Bounded reports whether the sample was built by NewBounded.
func (s *Sample) Bounded() bool { return s.bound > 0 }

// ReservoirN returns how many observations the percentile reservoir
// currently holds: min(N, capacity) in bounded mode, N otherwise.
func (s *Sample) ReservoirN() int { return len(s.values) }

// Add appends an observation. NaN observations are dropped: one NaN would
// poison every aggregate (mean, percentiles, CDF ranks) and break the sort
// order percentile interpolation depends on.
func (s *Sample) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if s.bound > 0 {
		s.addBounded(v)
		return
	}
	s.values = append(s.values, v)
	s.sorted = false
}

func (s *Sample) addBounded(v float64) {
	s.count++
	if s.count == 1 || v < s.lo {
		s.lo = v
	}
	if s.count == 1 || v > s.hi {
		s.hi = v
	}
	d := v - s.mu
	s.mu += d / float64(s.count)
	s.m2 += d * (v - s.mu)

	// Algorithm R: the first bound observations fill the reservoir; the
	// k-th observation then replaces a uniformly random slot with
	// probability bound/k, keeping every prefix a uniform sample.
	if len(s.values) < s.bound {
		s.values = append(s.values, v)
		s.sorted = false
		return
	}
	if j := s.src.Intn(int(s.count)); j < s.bound {
		s.values[j] = v
		s.sorted = false
	}
}

// AddDuration appends a duration observation in picoseconds.
func (s *Sample) AddDuration(d units.Duration) { s.Add(float64(d)) }

// N returns the number of observations, including (in bounded mode) those
// no longer held in the reservoir.
func (s *Sample) N() int {
	if s.bound > 0 {
		return int(s.count)
	}
	return len(s.values)
}

// Mean returns the arithmetic mean, or 0 for an empty sample. Exact in both
// modes.
func (s *Sample) Mean() float64 {
	if s.bound > 0 {
		return s.mu
	}
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Min returns the smallest observation, or 0 for an empty sample. Exact in
// both modes.
func (s *Sample) Min() float64 {
	if s.bound > 0 {
		return s.lo
	}
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[0]
}

// Max returns the largest observation, or 0 for an empty sample. Exact in
// both modes.
func (s *Sample) Max() float64 {
	if s.bound > 0 {
		return s.hi
	}
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[len(s.values)-1]
}

// Stddev returns the sample standard deviation. Exact in both modes (bounded
// mode streams the second moment with Welford's recurrence).
func (s *Sample) Stddev() float64 {
	if s.bound > 0 {
		if s.count < 2 {
			return 0
		}
		return math.Sqrt(s.m2 / float64(s.count-1))
	}
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns 0 for an empty sample and
// NaN for a NaN p; p outside [0, 100] (including ±Inf) clamps to the
// extremes rather than extrapolating past the observed range. In bounded
// mode the rank is taken over the reservoir, so once N exceeds the capacity
// the result is a uniform-subsample estimate, not the exact order statistic.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if math.IsNaN(p) {
		return math.NaN()
	}
	s.sort()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[len(s.values)-1]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Values returns a sorted copy of the stored observations (the reservoir,
// in bounded mode).
func (s *Sample) Values() []float64 {
	s.sort()
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// DurationSummary reports a sample of durations as min/mean/max with
// percentiles, matching how the paper quotes latency results.
type DurationSummary struct {
	N                   int
	Min, Mean, Max      units.Duration
	P50, P90, P99, P999 units.Duration
}

// SummarizeDurations computes a DurationSummary from a Sample that holds
// picosecond observations.
func SummarizeDurations(s *Sample) DurationSummary {
	return DurationSummary{
		N:    s.N(),
		Min:  units.Duration(s.Min()),
		Mean: units.Duration(s.Mean()),
		Max:  units.Duration(s.Max()),
		P50:  units.Duration(s.Percentile(50)),
		P90:  units.Duration(s.Percentile(90)),
		P99:  units.Duration(s.Percentile(99)),
		P999: units.Duration(s.Percentile(99.9)),
	}
}

func (d DurationSummary) String() string {
	return fmt.Sprintf("n=%d min=%v mean=%v p50=%v p99=%v max=%v",
		d.N, d.Min, d.Mean, d.P50, d.P99, d.Max)
}

// CDF is an empirical cumulative distribution function over durations,
// used to regenerate the Figure 4 and Figure 5 plots.
type CDF struct {
	sample Sample
}

// Observe records one duration.
func (c *CDF) Observe(d units.Duration) { c.sample.AddDuration(d) }

// N returns the number of observations.
func (c *CDF) N() int { return c.sample.N() }

// At returns the empirical fraction of observations <= d.
func (c *CDF) At(d units.Duration) float64 {
	vals := c.sample.Values()
	if len(vals) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(vals, float64(d)+0.5)
	return float64(idx) / float64(len(vals))
}

// Quantile returns the inverse empirical CDF at q in [0,1]: the smallest
// observed duration d such that At(d) >= q.
func (c *CDF) Quantile(q float64) units.Duration {
	vals := c.sample.Values()
	if len(vals) == 0 {
		return 0
	}
	if q <= 0 {
		return units.Duration(vals[0])
	}
	idx := int(math.Ceil(q*float64(len(vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return units.Duration(vals[idx])
}

// Points returns n evenly spaced (duration, probability) pairs suitable for
// plotting, from the minimum to the maximum observation.
func (c *CDF) Points(n int) []CDFPoint {
	vals := c.sample.Values()
	if len(vals) == 0 || n <= 0 {
		return nil
	}
	pts := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		if n == 1 {
			q = 1
		}
		pts = append(pts, CDFPoint{
			Latency: units.Duration(c.sample.Percentile(q * 100)),
			Prob:    q,
		})
	}
	return pts
}

// CDFPoint is one plotted point of an empirical CDF.
type CDFPoint struct {
	Latency units.Duration
	Prob    float64
}

// Table renders the CDF as a fixed set of quantiles, one per line, in the
// form the figure regeneration tools print.
func (c *CDF) Table() string {
	var b strings.Builder
	for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999} {
		fmt.Fprintf(&b, "p%05.1f %v\n", q*100, c.Quantile(q))
	}
	return b.String()
}

// RunStats aggregates one scalar metric (e.g. incast completion time) across
// repeated runs and reports average, minimum and maximum, exactly as §4.1
// describes ("We run each setup 5 times and report the average, minimum and
// maximum incast completion time").
type RunStats struct {
	sample Sample
}

// Add records the metric from one run.
func (r *RunStats) Add(d units.Duration) { r.sample.AddDuration(d) }

// N returns the number of recorded runs.
func (r *RunStats) N() int { return r.sample.N() }

// Avg returns the mean across runs.
func (r *RunStats) Avg() units.Duration { return units.Duration(r.sample.Mean()) }

// Min returns the minimum across runs.
func (r *RunStats) Min() units.Duration { return units.Duration(r.sample.Min()) }

// Max returns the maximum across runs.
func (r *RunStats) Max() units.Duration { return units.Duration(r.sample.Max()) }

func (r *RunStats) String() string {
	return fmt.Sprintf("avg=%v min=%v max=%v (n=%d)", r.Avg(), r.Min(), r.Max(), r.N())
}

// Reduction returns the relative reduction of b versus a, i.e. (a-b)/a,
// as a fraction in [0,1] when b <= a. The paper quotes proxy gains this way
// ("reduces incast completion time by 70.60%").
func Reduction(a, b units.Duration) float64 {
	if a == 0 {
		return 0
	}
	return float64(a-b) / float64(a)
}
