package model

import (
	"testing"

	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

// BenchmarkPredictFCT prices one full prediction (regime selection plus FCT
// distribution) in the overflow regime — the most branch-heavy path.
func BenchmarkPredictFCT(b *testing.B) {
	p := Params{Scheme: workload.Baseline, Degree: 8, TotalBytes: 100 * units.MB,
		DirectRTT: 4 * units.Millisecond}
	b.ReportAllocs()
	var sink Prediction
	for i := 0; i < b.N; i++ {
		sink = Predict(p)
	}
	_ = sink
}

// BenchmarkPredictICT prices the orchestrator's steering call: both candidate
// paths of one request, as AdaptivePolicy evaluates per decision.
func BenchmarkPredictICT(b *testing.B) {
	p := Params{Scheme: workload.ProxyStreamlined, Degree: 8, TotalBytes: 100 * units.MB,
		DirectRTT: 4 * units.Millisecond, ProxyUpRTT: 8 * units.Microsecond}
	b.ReportAllocs()
	var sink units.Duration
	for i := 0; i < b.N; i++ {
		d, pr := Compare(p)
		sink = d.ICT + pr.ICT
	}
	_ = sink
}

// BenchmarkFromSpec prices the spec-to-params mapping (validation plus
// analytic path RTTs), the entry point the fast sweep pays per cell.
func BenchmarkFromSpec(b *testing.B) {
	sp := workload.Spec{Scheme: workload.ProxyStreamlined, Degree: 8, TotalBytes: 100 * units.MB}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FromSpec(sp); err != nil {
			b.Fatal(err)
		}
	}
}
