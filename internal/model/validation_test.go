package model

import (
	"math"
	"testing"

	"incastproxy/internal/topo"
	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

// relErr is |model-sim|/sim; sim==0 only for degenerate cells we never assert.
func relErr(sim, mod units.Duration) float64 {
	if sim == 0 {
		return 0
	}
	return math.Abs(float64(mod)-float64(sim)) / float64(sim)
}

// validationCell pins the model against one full DES run. Bound applies to
// the ICT and tail-FCT errors; p50Bound (when set) loosens the median, whose
// straggler spread the closed form only approximates.
type validationCell struct {
	name     string
	scheme   workload.Scheme
	deg      int
	size     units.ByteSize
	lat      units.Duration
	cross    int // cross-traffic flows of 40 MB each, IncastDelay 2 ms
	bound    float64
	p50Bound float64
}

// Per-regime bounds, calibrated against seed-7 runs (see DESIGN.md §14):
// no-loss cells agree to <0.1% (assert 10%); overflow cells to <12% with p50
// within 16% (assert 25%); sustained baseline to <10%/<17% (assert 25%);
// standard proxy cells to <10% (assert 20%); cross-traffic cells run +14..23%
// conservative (assert 30%). The 100 us streamlined band with large
// share-to-window ratios is seed-dependent straggler territory — the model is
// a deliberate lower bound there, pinned loosely to detect regressions.
func validationGrid() []validationCell {
	ms := units.Millisecond
	us := units.Microsecond
	return []validationCell{
		// --- no-loss: burst fits the ToR buffer, pure pipeline time.
		{name: "noloss-deg1", scheme: workload.Baseline, deg: 1, size: 100 * units.MB, lat: ms, bound: 0.10},
		{name: "noloss-deg4-small", scheme: workload.Baseline, deg: 4, size: 10 * units.MB, lat: ms, bound: 0.10},
		// --- first-RTT overflow: burst overshoots, go-back-N recovery.
		{name: "overflow-deg4", scheme: workload.Baseline, deg: 4, size: 100 * units.MB, lat: ms, bound: 0.25},
		{name: "overflow-deg8", scheme: workload.Baseline, deg: 8, size: 40 * units.MB, lat: ms, bound: 0.25},
		{name: "overflow-deg16", scheme: workload.Baseline, deg: 16, size: 40 * units.MB, lat: ms, bound: 0.25},
		{name: "overflow-10ms", scheme: workload.Baseline, deg: 4, size: 40 * units.MB, lat: 10 * ms, bound: 0.25},
		// --- sustained overload at short RTT: demand outlasts the window.
		{name: "sustained-1us", scheme: workload.Baseline, deg: 4, size: 100 * units.MB, lat: us, bound: 0.25},
		{name: "sustained-100us", scheme: workload.Baseline, deg: 4, size: 100 * units.MB, lat: 100 * us, bound: 0.25},
		// --- proxied: split-RTT pipelining, header-trim churn.
		{name: "proxy-deg2", scheme: workload.ProxyStreamlined, deg: 2, size: 40 * units.MB, lat: ms, bound: 0.20},
		{name: "proxy-deg4", scheme: workload.ProxyStreamlined, deg: 4, size: 100 * units.MB, lat: ms, bound: 0.20},
		{name: "proxy-deg8", scheme: workload.ProxyStreamlined, deg: 8, size: 40 * units.MB, lat: ms, bound: 0.20},
		{name: "proxy-10ms", scheme: workload.ProxyStreamlined, deg: 4, size: 40 * units.MB, lat: 10 * ms, bound: 0.20},
		{name: "proxy-100us", scheme: workload.ProxyStreamlined, deg: 4, size: 40 * units.MB, lat: 100 * us, bound: 0.20},
		{name: "naive-deg4", scheme: workload.ProxyNaive, deg: 4, size: 100 * units.MB, lat: ms, bound: 0.20},
		{name: "naive-deg8", scheme: workload.ProxyNaive, deg: 8, size: 40 * units.MB, lat: ms, bound: 0.20},
		// --- cross-traffic sharing the proxy's long-haul path.
		{name: "cross-proxy", scheme: workload.ProxyStreamlined, deg: 4, size: 40 * units.MB, lat: ms, cross: 2, bound: 0.30},
		// --- known-loose band: 100 us streamlined with share >> window;
		// seed-dependent straggler timeouts make the sim non-monotone in
		// degree here and the model is a lower bound (DESIGN.md §14).
		{name: "loose-100us-deg2", scheme: workload.ProxyStreamlined, deg: 2, size: 100 * units.MB, lat: 100 * us, bound: 0.30},
		{name: "loose-100us-deg4", scheme: workload.ProxyStreamlined, deg: 4, size: 100 * units.MB, lat: 100 * us, bound: 0.60, p50Bound: 0.60},
	}
}

// TestModelAgainstSimulator cross-validates every Predict regime against the
// packet-level DES and fails if any cell drifts past its calibrated bound —
// the acceptance gate for using the model as a steering oracle and fast
// sweep backend.
func TestModelAgainstSimulator(t *testing.T) {
	for _, c := range validationGrid() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			cfg := topo.DefaultConfig()
			cfg.InterDelay = c.lat
			sp := workload.Spec{Scheme: c.scheme, Degree: c.deg, TotalBytes: c.size,
				Runs: 1, Seed: 7, Topo: cfg}
			if c.cross > 0 {
				sp.CrossTraffic = workload.CrossTrafficSpec{Flows: c.cross, Bytes: 40 * units.MB}
				sp.IncastDelay = 2 * units.Millisecond
			}
			res, err := workload.Run(sp)
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			prm, err := FromSpec(sp)
			if err != nil {
				t.Fatalf("FromSpec: %v", err)
			}
			pred := Predict(prm)
			rr := res.Runs[0]

			p50Bound := c.p50Bound
			if p50Bound == 0 {
				p50Bound = c.bound
			}
			if e := relErr(rr.ICT, pred.ICT); e > c.bound {
				t.Errorf("ICT: sim=%v model=%v err=%.1f%% > %.0f%%",
					rr.ICT, pred.ICT, 100*e, 100*c.bound)
			}
			if e := relErr(rr.FlowFCT.P99, pred.P99); e > c.bound {
				t.Errorf("p99 FCT: sim=%v model=%v err=%.1f%% > %.0f%%",
					rr.FlowFCT.P99, pred.P99, 100*e, 100*c.bound)
			}
			if e := relErr(rr.FlowFCT.P50, pred.P50); e > p50Bound {
				t.Errorf("p50 FCT: sim=%v model=%v err=%.1f%% > %.0f%%",
					rr.FlowFCT.P50, pred.P50, 100*e, 100*p50Bound)
			}
		})
	}
}

// TestModelBoundaryAgainstSimulator pins the degenerate fabrics the sweep
// grids never visit: a single-leaf DC (sender and proxy under one ToR) and a
// one-sender "incast". With one flow and no convergence there is no loss, so
// model and sim must agree tightly even on this uncalibrated topology.
func TestModelBoundaryAgainstSimulator(t *testing.T) {
	for _, scheme := range []workload.Scheme{workload.Baseline, workload.ProxyStreamlined} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			t.Parallel()
			sp := workload.Spec{Scheme: scheme, Degree: 1, TotalBytes: 10 * units.MB,
				Runs: 1, Seed: 7, Topo: singleLeafConfig()}
			res, err := workload.Run(sp)
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			prm, err := FromSpec(sp)
			if err != nil {
				t.Fatalf("FromSpec: %v", err)
			}
			pred := Predict(prm)
			rr := res.Runs[0]
			if rr.Timeouts != 0 {
				t.Fatalf("one-sender boundary run timed out %d times; premise broken", rr.Timeouts)
			}
			if e := relErr(rr.ICT, pred.ICT); e > 0.10 {
				t.Errorf("ICT: sim=%v model=%v err=%.1f%% > 10%%", rr.ICT, pred.ICT, 100*e)
			}
			if e := relErr(rr.FlowFCT.P99, pred.P99); e > 0.10 {
				t.Errorf("p99: sim=%v model=%v err=%.1f%% > 10%%", rr.FlowFCT.P99, pred.P99, 100*e)
			}
		})
	}
}
