package model

import (
	"fmt"

	"incastproxy/internal/netsim"
	"incastproxy/internal/topo"
	"incastproxy/internal/transport"
	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

// PathRTTs derives the model's three base RTTs analytically from a fabric
// configuration, without building the fabric: per traversed link the cost is
// 2*propagation + serialization of a full data packet forward and a control
// packet back — exactly topo.Network.PathRTT's sum, so the analytic values
// match the built fabric's to the picosecond (pinned by tests).
//
//   - direct: sender -> receiver across DCs (4 intra + 2 inter links:
//     host-leaf, leaf-spine, spine-backbone, and the mirrored descent);
//   - up: sender -> proxy inside the sending DC (4 intra links, or 2 when a
//     single-leaf DC puts them under the same ToR);
//   - down: proxy -> receiver across DCs (4 intra + 2 inter, like direct).
func PathRTTs(cfg topo.Config, mss units.ByteSize) (direct, up, down units.Duration) {
	perLink := cfg.LinkRate.TransmitTime(mss) + cfg.LinkRate.TransmitTime(netsim.ControlSize)
	link := func(intra, inter int) units.Duration {
		n := intra + inter
		return 2*(units.Duration(intra)*cfg.IntraDelay+units.Duration(inter)*cfg.InterDelay) +
			units.Duration(n)*perLink
	}
	upIntra := 4
	if cfg.Leaves == 1 {
		// Single-leaf DC: the first sender and the proxy (the DC's last
		// host) share a ToR; the path is host-leaf-host.
		upIntra = 2
	}
	return link(4, 2), link(upIntra, 0), link(4, 2)
}

// FromSpec maps a full simulation spec onto the model's parameter set,
// deriving path RTTs, window sizing, and buffer depth from the spec's
// topology the same way the workload harness does when it builds flows. The
// returned Params predict the spec's first run; run-to-run spray noise is
// what the DES's repeated seeds measure and the model cannot.
//
// SchemeAdaptive is rejected — the controller re-steers mid-epoch, which no
// single closed form covers; evaluate its two candidate outcomes with
// Compare instead.
func FromSpec(spec workload.Spec) (Params, error) {
	if spec.Scheme == workload.SchemeAdaptive {
		return Params{}, fmt.Errorf("model: SchemeAdaptive is not modeled (it re-steers mid-epoch); use Compare on its candidate paths")
	}
	if err := spec.Validate(); err != nil {
		return Params{}, err
	}
	cfg := spec.Topo
	if cfg.Spines == 0 {
		cfg = topo.DefaultConfig()
	}
	if cfg.Backbones == 0 {
		return Params{}, fmt.Errorf("model: topology has no inter-DC backbone; every scheme needs the long-haul path")
	}
	mss := spec.MSS
	if mss <= 0 {
		mss = transport.DefaultMSS
	}
	direct, up, down := PathRTTs(cfg, mss)
	p := Params{
		Scheme:       spec.Scheme,
		Degree:       spec.Degree,
		TotalBytes:   spec.TotalBytes,
		DirectRTT:    direct,
		ProxyUpRTT:   up,
		ProxyDownRTT: down,
		Rate:         cfg.LinkRate,
		Buffer:       cfg.TorQueue.Capacity,
		FanIn:        cfg.Spines,
		MSS:          mss,
		IWScale:      spec.IWScale,
		IncastDelay:  spec.IncastDelay,
	}
	if spec.CrossTraffic.Flows > 0 {
		p.CrossBytes = units.ByteSize(spec.CrossTraffic.Flows) * spec.CrossTraffic.Bytes
	}
	return p, nil
}
