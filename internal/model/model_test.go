package model

import (
	"testing"

	"incastproxy/internal/netsim"
	"incastproxy/internal/sim"
	"incastproxy/internal/topo"
	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

// singleLeafConfig is the smallest fabric the model must handle: one leaf,
// one spine, one backbone per DC side — sender and proxy share a ToR.
func singleLeafConfig() topo.Config {
	return topo.Config{
		Spines:            1,
		Leaves:            1,
		ServersPerLeaf:    4,
		Backbones:         1,
		BackbonesPerSpine: 1,
		LinkRate:          100 * units.Gbps,
		IntraDelay:        units.Microsecond,
		InterDelay:        100 * units.Microsecond,
		TorQueue:          netsim.QueueConfig{Capacity: 1_000_000},
		Spray:             true,
		Seed:              1,
	}
}

// The analytic path RTTs must match the built fabric's PathRTT to the
// picosecond — they are the same sum over the same links.
func TestPathRTTsMatchBuiltFabric(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  topo.Config
	}{
		{"default", topo.DefaultConfig()},
		{"single-leaf", singleLeafConfig()},
		{"latency-sweep", func() topo.Config {
			c := topo.DefaultConfig()
			c.InterDelay = 10 * units.Millisecond
			return c
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := topo.Build(sim.New(), tc.cfg)
			snd := net.Hosts[0][0]
			recv := net.Hosts[1][0]
			proxyHost := net.Hosts[0][len(net.Hosts[0])-1]
			mss := transportMSS()

			direct, up, down := PathRTTs(tc.cfg, mss)
			if want := net.PathRTT(snd, recv, mss, netsim.ControlSize); direct != want {
				t.Errorf("direct RTT = %v, fabric says %v", direct, want)
			}
			if want := net.PathRTT(snd, proxyHost, mss, netsim.ControlSize); up != want {
				t.Errorf("up RTT = %v, fabric says %v", up, want)
			}
			if want := net.PathRTT(proxyHost, recv, mss, netsim.ControlSize); down != want {
				t.Errorf("down RTT = %v, fabric says %v", down, want)
			}
		})
	}
}

func transportMSS() units.ByteSize { return 1500 }

func TestFromSpecDefaults(t *testing.T) {
	p, err := FromSpec(workload.Spec{Scheme: workload.Baseline, Degree: 4, TotalBytes: 40 * units.MB})
	if err != nil {
		t.Fatal(err)
	}
	def := topo.DefaultConfig()
	if p.Rate != def.LinkRate || p.Buffer != def.TorQueue.Capacity || p.FanIn != def.Spines {
		t.Fatalf("defaults not derived from the default fabric: %+v", p)
	}
	if p.MSS != 1500 {
		t.Fatalf("MSS = %v", p.MSS)
	}
	if p.DirectRTT <= 2*def.InterDelay {
		t.Fatalf("direct RTT %v must exceed the bare long-haul propagation", p.DirectRTT)
	}
	if p.CrossBytes != 0 {
		t.Fatalf("zero cross-traffic spec must produce zero CrossBytes, got %v", p.CrossBytes)
	}
}

func TestFromSpecRejectsAdaptiveAndInvalid(t *testing.T) {
	if _, err := FromSpec(workload.Spec{Scheme: workload.SchemeAdaptive, Degree: 4, TotalBytes: units.MB}); err == nil {
		t.Fatal("adaptive scheme must be rejected")
	}
	if _, err := FromSpec(workload.Spec{Scheme: workload.Baseline, Degree: 0, TotalBytes: units.MB}); err == nil {
		t.Fatal("invalid spec must be rejected")
	}
	noBackbone := singleLeafConfig()
	noBackbone.Backbones = 0
	noBackbone.BackbonesPerSpine = 0
	if _, err := FromSpec(workload.Spec{Scheme: workload.Baseline, Degree: 1, TotalBytes: units.MB, Topo: noBackbone}); err == nil {
		t.Fatal("backbone-less topology must be rejected")
	}
}

// A degenerate one-sender "incast" can never overflow via aggregate burst:
// the model must land in the no-loss regime with the ideal pipeline time.
func TestPredictOneSenderNoLoss(t *testing.T) {
	p, err := FromSpec(workload.Spec{Scheme: workload.Baseline, Degree: 1, TotalBytes: 100 * units.MB})
	if err != nil {
		t.Fatal(err)
	}
	pred := Predict(p)
	if pred.Regime != RegimeNoLoss {
		t.Fatalf("regime = %v, want no-loss", pred.Regime)
	}
	ideal := p.DirectRTT/2 + p.Rate.TransmitTime(p.TotalBytes)
	if pred.ICT != ideal {
		t.Fatalf("ICT = %v, want ideal %v", pred.ICT, ideal)
	}
	if pred.P50 != pred.P99 || pred.P50 != pred.ICT {
		t.Fatalf("one flow: p50/p99/ICT must coincide: %+v", pred)
	}
	if pred.LossBytes != 0 {
		t.Fatalf("no-loss regime predicted %v lost", pred.LossBytes)
	}
}

// CrossBytes must penalize only the proxy path: the direct prediction is
// unchanged, and the proxied one grows by at most the cross drain time.
func TestCrossTrafficOnlyAffectsProxyPath(t *testing.T) {
	base := Params{Scheme: workload.ProxyStreamlined, Degree: 4, TotalBytes: 40 * units.MB,
		DirectRTT: 4 * units.Millisecond, ProxyUpRTT: 8 * units.Microsecond}
	withCross := base
	withCross.CrossBytes = 80 * units.MB

	d0, p0 := Compare(base)
	d1, p1 := Compare(withCross)
	if d0.ICT != d1.ICT {
		t.Fatalf("cross traffic changed the direct prediction: %v -> %v", d0.ICT, d1.ICT)
	}
	if p1.ICT <= p0.ICT {
		t.Fatalf("cross traffic must slow the proxied path: %v -> %v", p0.ICT, p1.ICT)
	}
}

// Measured path state must steer the comparison: queueing excess on the
// proxy path erodes its win; loss on the direct path widens it.
func TestMeasuredStateFoldsIn(t *testing.T) {
	base := Params{Scheme: workload.ProxyStreamlined, Degree: 8, TotalBytes: 100 * units.MB,
		DirectRTT: 4 * units.Millisecond, ProxyUpRTT: 8 * units.Microsecond}
	d, p := Compare(base)
	if p.ICT >= d.ICT {
		t.Fatalf("big lossy incast: proxy must win (%v vs %v)", p.ICT, d.ICT)
	}
	busy := base
	busy.ProxyExcess = 400 * units.Millisecond
	_, pBusy := Compare(busy)
	if pBusy.ICT <= p.ICT+150*units.Millisecond {
		t.Fatalf("400ms proxy excess must inflate the proxied ICT: %v -> %v", p.ICT, pBusy.ICT)
	}
	lossy := base
	lossy.DirectLoss = 0.5
	dLossy, _ := Compare(lossy)
	if dLossy.ICT <= d.ICT {
		t.Fatalf("measured direct loss must inflate the direct ICT: %v -> %v", d.ICT, dLossy.ICT)
	}
}

// Predictions must grow monotonically with transfer size within each
// scheme, and the goodput must never exceed the link rate.
func TestPredictMonotonicAndBounded(t *testing.T) {
	for _, scheme := range []workload.Scheme{workload.Baseline, workload.ProxyNaive, workload.ProxyStreamlined} {
		var prev units.Duration
		for _, size := range []units.ByteSize{units.MB, 10 * units.MB, 40 * units.MB,
			100 * units.MB, 400 * units.MB, 1600 * units.MB} {
			p, err := FromSpec(workload.Spec{Scheme: scheme, Degree: 8, TotalBytes: size})
			if err != nil {
				t.Fatal(err)
			}
			pred := Predict(p)
			if pred.ICT <= 0 {
				t.Fatalf("%v @ %v: non-positive ICT %v", scheme, size, pred.ICT)
			}
			if pred.ICT < prev {
				t.Errorf("%v: ICT shrank with size: %v @ %v < %v earlier", scheme, pred.ICT, size, prev)
			}
			if pred.P50 > pred.P99 {
				t.Errorf("%v @ %v: p50 %v > p99 %v", scheme, size, pred.P50, pred.P99)
			}
			if pred.Goodput > p.Rate {
				t.Errorf("%v @ %v: goodput %v exceeds link rate %v", scheme, size, pred.Goodput, p.Rate)
			}
			prev = pred.ICT
		}
	}
}

// The zero-value Params (plus a size) must predict something sane off the
// default fabric's constants — the orchestrator's coarse-Request path.
func TestPredictZeroValueDefaults(t *testing.T) {
	pred := Predict(Params{Degree: 8, TotalBytes: 100 * units.MB, DirectRTT: 4 * units.Millisecond})
	if pred.ICT <= 0 || pred.Regime != RegimeOverflow {
		t.Fatalf("zero-value params: %+v", pred)
	}
	if Predict(Params{}).ICT != 0 {
		t.Fatal("empty params must predict zero")
	}
}

func TestRegimeStrings(t *testing.T) {
	for r, want := range map[Regime]string{
		RegimeNoLoss: "no-loss", RegimeSustained: "sustained",
		RegimeOverflow: "overflow", RegimeProxy: "proxy", Regime(42): "Regime(42)",
	} {
		if got := r.String(); got != want {
			t.Errorf("Regime(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}
