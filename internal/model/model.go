// lint:virtual-time
// (pragma: opts this package into the wallclock analyzer — no wall-clock
// reads in non-test sources; see internal/lint and DESIGN.md §12. The model
// is clock-free by construction: it computes with units.Duration only.)

// Package model is the analytical twin of the packet-level incast
// simulation: a clock-free, closed-form estimator that predicts an incast
// epoch's completion time, FCT distribution, and goodput in microseconds of
// wall time instead of the seconds-to-minutes a DES run costs.
//
// It follows the fluid/queueing style of Zhao et al.'s tail-latency
// estimation and RepFlow's M/G/1 FCT reasoning (see PAPERS.md): the epoch
// is decomposed into a first-RTT burst that either fits the bottleneck
// buffer or overflows it, a loss-recovery phase paced by go-back-N
// retransmission timeouts and slow-start rounds, and — for the proxy
// schemes — a split-RTT pipeline whose only residual cost is trimmed-header
// churn at the sending-DC ToR. Every constant below was calibrated against
// the simulator on the Figure 2/3 sweep grids; internal/model's validation
// tests pin the resulting error bounds per regime, and `figures -fig
// modelerr` prints the full sim-vs-model table.
//
// The model is deliberately coarse where the DES is exact (per-packet
// spraying, DCTCP marking dynamics, per-flow stragglers); DESIGN.md §14
// documents the regime boundaries and the known error sources.
package model

import (
	"fmt"
	"math"

	"incastproxy/internal/topo"
	"incastproxy/internal/transport"
	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

// Regime labels which closed-form branch produced a prediction; the
// validation harness asserts different error bounds per regime.
type Regime int

// The model's regimes.
const (
	// RegimeNoLoss: the first-RTT burst fits the receiver down-ToR buffer
	// and the whole transfer fits the senders' initial windows — the epoch
	// is one pipelined transmission.
	RegimeNoLoss Regime = iota
	// RegimeSustained: no first-RTT overflow, but the transfer needs
	// multiple window rounds; late slow-start growth costs a straggler
	// timeout on the long loop.
	RegimeSustained
	// RegimeOverflow: the burst overflows the buffer; the baseline pays an
	// initial RTO plus RTT-paced go-back-N recovery of the overflow.
	RegimeOverflow
	// RegimeProxy: the epoch is relayed through an in-DC proxy; losses (if
	// any) are repaired over the short intra-DC loop, leaving trimmed-header
	// churn (streamlined) or one short recovery stall (naive) as the only
	// penalty on top of the split-RTT pipeline.
	RegimeProxy
)

func (r Regime) String() string {
	switch r {
	case RegimeNoLoss:
		return "no-loss"
	case RegimeSustained:
		return "sustained"
	case RegimeOverflow:
		return "overflow"
	case RegimeProxy:
		return "proxy"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// Params parameterizes one incast epoch for the analytical model. Build it
// from a full workload.Spec with FromSpec (which derives the analytic path
// RTTs from the topology), or directly from coarse control-plane state (the
// orchestrator's Request) when no fabric exists.
type Params struct {
	// Scheme selects the closed form (SchemeAdaptive is not modeled:
	// its controller re-steers mid-epoch; use Compare for its two
	// candidate outcomes).
	Scheme workload.Scheme
	// Degree is the sender fan-in; TotalBytes the epoch's aggregate size
	// (split equally among senders, as the workload does).
	Degree     int
	TotalBytes units.ByteSize

	// DirectRTT is the sender<->receiver round-trip of the direct path;
	// ProxyUpRTT the sender<->proxy round-trip; ProxyDownRTT the
	// proxy<->receiver round-trip (defaults to DirectRTT: the down leg
	// rides the same long-haul path).
	DirectRTT    units.Duration
	ProxyUpRTT   units.Duration
	ProxyDownRTT units.Duration

	// Rate is the uniform link rate (the bottleneck drain rate); Buffer
	// the down-ToR queue capacity at both candidate congestion points.
	Rate   units.BitRate
	Buffer units.ByteSize
	// FanIn caps the burst's concurrent arrival multiplier: however many
	// senders transmit, at most FanIn uplinks feed the bottleneck leaf
	// (the spine count; default 8, the §4.1 fabric).
	FanIn int

	// MSS is the data-packet wire size (default 1500 B); HeaderBytes the
	// trimmed-header/control size (default 64 B); IWScale the initial
	// window in BDP multiples (default 1); MinRTO the transport's timeout
	// floor (default transport.DefaultMinRTO).
	MSS         units.ByteSize
	HeaderBytes units.ByteSize
	IWScale     float64
	MinRTO      units.Duration

	// CrossBytes is background traffic contending for the proxy down-ToR
	// during the epoch (the direct path is unaffected — exactly the
	// asymmetry cross traffic creates in the simulator).
	CrossBytes units.ByteSize
	// IncastDelay offsets the epoch start; it is included in ICT (the
	// simulator's ICT is the absolute last completion time) but not in
	// the per-flow FCTs.
	IncastDelay units.Duration

	// Measured path state (the adaptive policy's PathEstimator feed):
	// Excess inflates the matching RTT, Loss stretches the matching
	// path's service time by 1/(1-loss).
	DirectExcess units.Duration
	ProxyExcess  units.Duration
	DirectLoss   float64
	ProxyLoss    float64
}

// Prediction is the model's answer for one (Params, Scheme) cell.
type Prediction struct {
	// ICT is the incast completion time: last byte at the receiver,
	// measured from time zero (includes IncastDelay, like the simulator).
	ICT units.Duration
	// P50/P99/Mean summarize the per-flow FCT distribution (measured from
	// the epoch start, excluding IncastDelay, like the simulator's
	// receiver-side FCTs).
	P50, P99, Mean units.Duration
	// Goodput is TotalBytes over the epoch duration.
	Goodput units.BitRate
	// LossBytes estimates the first-burst buffer overflow (dropped bytes
	// on the direct path, trimmed bytes on the streamlined proxy path).
	LossBytes units.ByteSize
	// Regime is the closed-form branch that produced the numbers.
	Regime Regime
}

// Calibrated constants. Each was fitted to the packet-level simulator on
// the Figure 2 (Left/Right) and Figure 3 grids; the validation tests assert
// the residual error bounds.
const (
	// stragglerSpreadRTT spreads the overflow recovery's completion over
	// the fan-in: the last flow to win slow-start rounds finishes about
	// 2.5 RTT per doubling of degree after the first.
	stragglerSpreadRTT = 2.5
	// p50SpreadFraction separates the median flow from the last one in
	// the overflow regime (p50 = p99 - fraction*Degree*RTT).
	p50SpreadFraction = 0.15
	// sustainedDirectRTOs is the direct path's sustained-regime straggler
	// penalty in MinRTO units: late window growth overshoots the buffer
	// and one-and-a-half timeout cycles repair it.
	sustainedDirectRTOs = 1.5
	// sustainedProxyRTOs is the streamlined path's equivalent: the short
	// NACK loop repairs most of it, leaving three quarters of a timeout.
	sustainedProxyRTOs = 0.75
	// naiveLossBufferFactor gates the naive relay's recovery stall: its
	// split connections ride independent windows, so the proxy ToR only
	// collapses once the queued share clears ~2.5 buffers.
	naiveLossBufferFactor = 2.5
	// maxLossStretch caps the measured-loss service stretch 1/(1-loss).
	maxLossStretch = 0.95
)

// withDefaults fills zero fields with the §4.1 fabric's parameters, so
// coarse callers (the orchestrator's Request) get the same defaults the
// simulator's spec machinery applies.
func (p Params) withDefaults() Params {
	def := topo.DefaultConfig()
	if p.Degree < 1 {
		p.Degree = 1
	}
	if p.Rate <= 0 {
		p.Rate = def.LinkRate
	}
	if p.Buffer <= 0 {
		p.Buffer = def.TorQueue.Capacity
	}
	if p.FanIn <= 0 {
		p.FanIn = def.Spines
	}
	if p.MSS <= 0 {
		p.MSS = transport.DefaultMSS
	}
	if p.HeaderBytes <= 0 {
		p.HeaderBytes = 64
	}
	if p.IWScale <= 0 {
		p.IWScale = 1
	}
	if p.MinRTO <= 0 {
		p.MinRTO = transport.DefaultMinRTO
	}
	if p.ProxyDownRTT <= 0 {
		p.ProxyDownRTT = p.DirectRTT
	}
	if p.DirectLoss < 0 {
		p.DirectLoss = 0
	}
	if p.ProxyLoss < 0 {
		p.ProxyLoss = 0
	}
	return p
}

// Predict evaluates the closed-form model for one scheme. It never runs the
// simulator; a call costs well under a microsecond (BenchmarkPredictFCT).
// SchemeAdaptive is not modeled — Predict treats it as the streamlined
// proxy outcome; use Compare to see both candidate paths the adaptive
// controller chooses between.
func Predict(p Params) Prediction {
	p = p.withDefaults()
	if p.TotalBytes <= 0 {
		return Prediction{}
	}
	if p.Scheme == workload.Baseline {
		return predictDirect(p)
	}
	return predictProxied(p)
}

// PredictICT is the single-number form of Predict.
func PredictICT(p Params) units.Duration { return Predict(p).ICT }

// Compare evaluates both candidate routings of one epoch: the direct path
// and the proxied path (p.Scheme when it names a proxy design, streamlined
// otherwise). This is the adaptive policy's steering oracle.
func Compare(p Params) (direct, proxied Prediction) {
	d := p
	d.Scheme = workload.Baseline
	x := p
	if x.Scheme == workload.Baseline || x.Scheme == workload.SchemeAdaptive {
		x.Scheme = workload.ProxyStreamlined
	}
	return Predict(d), Predict(x)
}

// effFanIn is the burst's concurrent arrival multiplier: senders beyond the
// spine count cannot add arrival bandwidth at the bottleneck leaf.
func (p Params) effFanIn() int {
	if p.Degree < p.FanIn {
		return p.Degree
	}
	return p.FanIn
}

// burstBytes is the first-RTT injection: Degree windows of min(share, IW).
func (p Params) burstBytes(iw units.ByteSize) units.ByteSize {
	share := p.TotalBytes / units.ByteSize(p.Degree)
	if iw < share {
		share = iw
	}
	return share * units.ByteSize(p.Degree)
}

// overflowBytes is the first-burst buffer overflow at the bottleneck: the
// burst arrives at effFanIn times the drain rate, so the queue absorbs only
// 1/effFanIn of it while it lands; what exceeds the buffer is lost (dropped
// on the direct path, trimmed on the streamlined proxy path).
func (p Params) overflowBytes(burst units.ByteSize) units.ByteSize {
	fan := p.effFanIn()
	if fan <= 1 {
		return -p.Buffer
	}
	queued := burst * units.ByteSize(fan-1) / units.ByteSize(fan)
	return queued - p.Buffer
}

// scaleIW applies IWScale to a BDP-sized window.
func (p Params) scaleIW(bdp units.ByteSize) units.ByteSize {
	return units.ByteSize(float64(bdp) * p.IWScale)
}

// stretch inflates a duration by the measured loss rate's service penalty.
func stretch(d units.Duration, loss float64) units.Duration {
	if loss <= 0 {
		return d
	}
	if loss > maxLossStretch {
		loss = maxLossStretch
	}
	return units.Duration(float64(d) / (1 - loss))
}

// predictDirect models the baseline: every byte crosses the long-haul path,
// and first-burst overflow is repaired by go-back-N timeouts over it.
func predictDirect(p Params) Prediction {
	rtt := p.DirectRTT + p.DirectExcess
	oneway := rtt / 2
	serve := stretch(p.Rate.TransmitTime(p.TotalBytes), p.DirectLoss)
	iw := p.scaleIW(p.Rate.BDP(rtt))
	burst := p.burstBytes(iw)
	over := p.overflowBytes(burst)

	pred := Prediction{Regime: RegimeNoLoss}
	if over <= 0 {
		ict := p.IncastDelay + oneway + serve
		if p.Degree >= 2 && p.TotalBytes > burst {
			// Sustained: multi-round window growth eventually overshoots
			// the buffer; the straggler repairs it over the long loop.
			pred.Regime = RegimeSustained
			pen := units.Duration(sustainedDirectRTOs * float64(p.MinRTO))
			ict += pen
			pred.P99 = ict - p.IncastDelay
			pred.P50 = pred.P99 - pen/2
		} else {
			pred.P99 = ict - p.IncastDelay
			pred.P50 = pred.P99
		}
		return finishPrediction(pred, p, ict)
	}

	// Overflow: the whole burst transmission overlaps the initial-RTO
	// wait (initRTO exceeds the burst's serialization by construction),
	// so the epoch is the RTO stall plus slow-start recovery of the
	// overflow — log2(over/deg·MSS) doubling rounds, each one RTT plus
	// draining the refilled buffer — plus a fan-in straggler spread.
	pred.Regime = RegimeOverflow
	pred.LossBytes = over
	initRTO := 3*rtt + p.Rate.TransmitTime(units.ByteSize(p.Degree)*iw)
	if initRTO < p.MinRTO {
		initRTO = p.MinRTO
	}
	rounds := math.Log2(float64(over)/float64(units.ByteSize(p.Degree)*p.MSS) + 1)
	if rounds < 0 {
		rounds = 0
	}
	refill := over
	if refill > p.Buffer {
		refill = p.Buffer
	}
	recovery := units.Duration(rounds * float64(rtt+p.Rate.TransmitTime(refill)))
	var spread units.Duration
	if lg := math.Log2(float64(p.Degree)); lg > 1 {
		spread = units.Duration(stragglerSpreadRTT * float64(rtt) * (lg - 1))
	}
	// Bytes beyond the first burst ride later window rounds and cannot
	// overlap the stall (zero on the 1 ms-latency grids, where IW covers
	// each share).
	var tail units.ByteSize
	if p.TotalBytes > burst {
		tail = p.TotalBytes - burst
	}
	ict := p.IncastDelay + oneway + initRTO + stretch(recovery, p.DirectLoss) +
		spread + p.Rate.TransmitTime(tail)
	pred.P99 = ict - p.IncastDelay
	pred.P50 = pred.P99 - units.Duration(p50SpreadFraction*float64(p.Degree)*float64(rtt))
	if pred.P50 < oneway {
		pred.P50 = oneway
	}
	return finishPrediction(pred, p, ict)
}

// predictProxied models the relayed schemes: the transfer pipelines through
// the split RTT (up-leg one-way + serialization + down-leg one-way), and
// losses are repaired over the short intra-DC loop.
func predictProxied(p Params) Prediction {
	rttUp := p.ProxyUpRTT + p.ProxyExcess
	rttDown := p.ProxyDownRTT
	pathRTT := rttUp + rttDown
	// Cross traffic shares the proxy down-ToR; whatever drained during
	// the incast's head start no longer contends.
	cross := p.CrossBytes - p.Rate.BytesIn(p.IncastDelay)
	if cross < 0 {
		cross = 0
	}
	serveBytes := p.TotalBytes + cross
	serve := stretch(p.Rate.TransmitTime(serveBytes), p.ProxyLoss)
	iw := p.scaleIW(p.Rate.BDP(pathRTT))
	burst := p.burstBytes(iw)
	over := p.overflowBytes(burst)

	pred := Prediction{Regime: RegimeProxy}
	ict := p.IncastDelay + rttUp/2 + serve + rttDown/2

	switch p.Scheme {
	case workload.ProxyNaive:
		// The naive relay's split connections drop (no trimming); one
		// recovery stall appears once the queued share clears well past
		// the buffer.
		queued := p.TotalBytes * units.ByteSize(p.effFanIn()-1) / units.ByteSize(p.effFanIn())
		var pen units.Duration
		if p.Degree >= 2 && float64(queued) > naiveLossBufferFactor*float64(p.Buffer) {
			pen = p.MinRTO + p.Rate.TransmitTime(p.Buffer)/2
			if over > 0 {
				pred.LossBytes = over
			}
		}
		ict += pen
		pred.P99 = ict - p.IncastDelay
		pred.P50 = pred.P99 - pen/2

	default:
		// Streamlined (and the inferring variant, which behaves like it
		// with sequence-gap detection standing in for trimming): each
		// trimmed header consumes one header-serialization slot at the
		// bottleneck while the backlog persists, so the residual churn is
		// alpha/(1-alpha) of the backlog's drain time, with alpha the
		// header-to-data serialization ratio across the extra fan-in.
		var churn, pen units.Duration
		backlog := serveBytes - p.Buffer
		if backlog < 0 {
			backlog = 0
		}
		alpha := float64(p.effFanIn()-1) * float64(p.HeaderBytes) / float64(p.MSS)
		if alpha > 0.9 {
			alpha = 0.9
		}
		switch {
		case over > 0:
			churn = units.Duration(alpha / (1 - alpha) * float64(p.Rate.TransmitTime(backlog)))
			pred.LossBytes = over
		case p.Degree >= 2 && p.TotalBytes > burst:
			// Sustained multi-round growth trims later rounds; the short
			// NACK loop repairs them, but once a share needs several
			// slow-start doublings past its initial window the late
			// rounds overshoot hard enough to cost a straggler timeout.
			churn = units.Duration(alpha / (1 - alpha) * float64(p.Rate.TransmitTime(backlog)))
			if p.TotalBytes/units.ByteSize(p.Degree) > 4*iw {
				pen = units.Duration(sustainedProxyRTOs * float64(p.MinRTO))
			}
		}
		ict += churn + pen
		pred.P99 = ict - p.IncastDelay
		pred.P50 = pred.P99 - pen
	}
	if half := (ict - p.IncastDelay) / 2; pred.P50 < half {
		pred.P50 = half
	}
	return finishPrediction(pred, p, ict)
}

// finishPrediction fills the derived fields shared by every branch.
func finishPrediction(pred Prediction, p Params, ict units.Duration) Prediction {
	pred.ICT = ict
	pred.Mean = pred.P50
	if epoch := ict - p.IncastDelay; epoch > 0 {
		pred.Goodput = units.BitRate(float64(p.TotalBytes.Bits()) / epoch.Seconds())
	}
	return pred
}
