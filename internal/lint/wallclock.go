package lint

import (
	"go/ast"
	"go/types"
)

// VirtualTimePragma is the file pragma (an exact comment line) that opts a
// package into the wallclock analyzer. It lives next to the code it
// constrains: any file of the package may carry it, and once one does, every
// non-test file of the package is checked. Migrating packages in is a
// one-line change; migrating them out is visible in review.
const VirtualTimePragma = "lint:virtual-time"

// wallclockBanned are the package-level time functions that read or schedule
// against the wall clock. time.Duration arithmetic and constants stay legal.
var wallclockBanned = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// Wallclock forbids wall-clock reads in packages that declare themselves
// virtual-time. The simulator and everything it records through run on the
// sim engine clock; a single time.Now or time.Sleep in a recording path
// silently breaks run-to-run determinism and the byte-identical
// manifest/trace guarantee. This generalizes the original
// TestNoWallClockInVirtualTimePaths, whose hand-maintained directory list
// drifted once already (internal/wire had to be patched in after the fact).
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock reads (time.Now, time.Sleep, timers, tickers) in " +
		"packages carrying the " + VirtualTimePragma + " file pragma",
	Run: runWallclock,
}

// HasVirtualTimePragma reports whether a loaded package opts into the
// wallclock analyzer. Exposed so coverage tests can pin the opt-in set.
func HasVirtualTimePragma(pkg *Package) bool {
	return hasPragma(pkg.Files, VirtualTimePragma)
}

func runWallclock(pass *Pass) {
	if !hasPragma(pass.Files, VirtualTimePragma) {
		return
	}
	for _, f := range pass.Files {
		timeNames := make(map[string]bool)
		for _, name := range importNames(f, "time") {
			if name == "." {
				// A dot import makes every banned call an unqualified ident
				// and defeats the selector scan below; ban the import form.
				pass.Reportf(f.Name.Pos(), "dot import of time in a virtual-time package defeats the wallclock lint")
				continue
			}
			timeNames[name] = true
		}
		if len(timeNames) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || !timeNames[pkg.Name] || !wallclockBanned[sel.Sel.Name] {
				return true
			}
			// Guard against a local variable shadowing the import name: only
			// flag when the identifier resolves to the package. With partial
			// type info (no resolution) fall through to the syntactic match.
			if obj := pass.Info.Uses[pkg]; obj != nil {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			pass.Reportf(sel.Pos(),
				"wall-clock call time.%s in a virtual-time package (use the sim engine clock or an injected clock)",
				sel.Sel.Name)
			return true
		})
	}
}
