package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errdrop flags write/encode calls whose error result is silently discarded
// in the wire, relay, and obs packages — the paths that put bytes on
// sockets and rows in artifacts. A dropped short-write there surfaces later
// as a truncated trace, a half-written manifest, or a peer stuck mid-frame.
//
// Flagged: a bare statement (or go/defer) calling a function named Write*,
// Encode*, Fprint*, or Flush whose final result is an error. Not flagged:
// explicit discards (`_, _ = c.Write(b)`) — visible acknowledgment is the
// point — and sinks that are documented never to fail: strings.Builder,
// bytes.Buffer, and hash.Hash receivers, or fmt.Fprint* into those.
var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc: "flag discarded errors from write/encode/flush calls on the wire, " +
		"relay, and obs output paths",
	Match: func(path string) bool {
		for _, p := range []string{"internal/wire", "internal/relay", "internal/obs"} {
			if strings.HasSuffix(path, p) {
				return true
			}
		}
		return false
	},
	Run: runErrdrop,
}

func runErrdrop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = n.Call
			case *ast.DeferStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			name := errdropName(call)
			if name == "" {
				return true
			}
			if !returnsError(pass, call) || neverFails(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"error result of %s is discarded on an output path: handle it or discard explicitly (_, _ =) with a reason",
				calleeName(call))
			return true
		})
	}
}

// errdropName returns the callee's bare name when it matches the
// write/encode family, else "".
func errdropName(call *ast.CallExpr) string {
	var name string
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	default:
		return ""
	}
	switch {
	case strings.HasPrefix(name, "Write"),
		strings.HasPrefix(name, "Encode"),
		strings.HasPrefix(name, "Fprint"),
		name == "Flush":
		return name
	}
	return ""
}

// returnsError reports whether the call's final result is of type error.
// Without type info the name match alone is too noisy, so it returns false.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call.Fun)
	if t == nil {
		return false
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// neverFails exempts sinks documented never to return a write error:
// methods on strings.Builder, bytes.Buffer, and hash.Hash values, and
// fmt.Fprint* whose destination is one of those.
func neverFails(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if strings.HasPrefix(sel.Sel.Name, "Fprint") {
		if len(call.Args) == 0 {
			return false
		}
		return infallibleSink(pass.TypeOf(call.Args[0]))
	}
	return infallibleSink(pass.TypeOf(sel.X))
}

func infallibleSink(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case pkg == "strings" && name == "Builder",
		pkg == "bytes" && name == "Buffer",
		pkg == "hash":
		return true
	}
	return false
}
