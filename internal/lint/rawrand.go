package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// rawrandCtors are the math/rand package-level names that construct a local,
// explicitly-seeded generator rather than touching the process-global source.
// Everything else at package level (Intn, Float64, Perm, Shuffle, Seed, ...)
// draws from — or reseeds — the shared global and is banned.
var rawrandCtors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// Types, so `rand.Rand` / `rand.Source` in declarations stay legal.
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
}

// Rawrand forbids the math/rand global generator and ad-hoc seed arithmetic
// outside internal/rng. Every random draw in the repository must flow through
// an explicitly-seeded source whose seed comes off an rng.DeriveSeed label
// path; the global generator is process-wide state that breaks run-to-run
// reproducibility, and hand-rolled seed arithmetic (seed + run*7919) produces
// correlated streams — the exact bug class PR 3 fixed twice.
var Rawrand = &Analyzer{
	Name: "rawrand",
	Doc: "forbid math/rand global-generator use and ad-hoc seed arithmetic " +
		"outside internal/rng (derive seeds with rng.DeriveSeed label paths)",
	Match: func(path string) bool {
		return !strings.HasSuffix(path, "internal/rng")
	},
	Run: runRawrand,
}

func runRawrand(pass *Pass) {
	for _, f := range pass.Files {
		names := make(map[string]bool) // local names binding math/rand{,/v2}
		for _, p := range []string{"math/rand", "math/rand/v2"} {
			for _, n := range importNames(f, p) {
				if n == "." {
					pass.Reportf(f.Name.Pos(), "dot import of %s defeats the rawrand lint", p)
					continue
				}
				names[n] = true
			}
		}
		rngName := ""
		if ns := importNames(f, "incastproxy/internal/rng"); len(ns) > 0 {
			rngName = ns[0]
		}
		if len(names) == 0 && rngName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pkg, ok := n.X.(*ast.Ident)
				if !ok || !names[pkg.Name] || rawrandCtors[n.Sel.Name] {
					return true
				}
				if shadowed(pass, pkg) {
					return true
				}
				pass.Reportf(n.Pos(),
					"use of math/rand global %s.%s: draw from an explicitly-seeded source (rand.New(rand.NewSource(rng.DeriveSeed(...))))",
					pkg.Name, n.Sel.Name)
			case *ast.CallExpr:
				checkSeedArg(pass, n, names, rngName)
			}
			return true
		})
	}
}

// shadowed reports whether ident resolves to something other than a package
// name (a local variable shadowing the import). With partial type info the
// syntactic match stands.
func shadowed(pass *Pass, ident *ast.Ident) bool {
	if obj := pass.Info.Uses[ident]; obj != nil {
		_, isPkg := obj.(*types.PkgName)
		return !isPkg
	}
	return false
}

// checkSeedArg flags a seed-accepting constructor (rand.New, rand.NewSource,
// rng.New) whose first argument is ad-hoc arithmetic — a top-level binary
// expression like seed+run*7919. Seeds must arrive whole: a literal, a
// variable, or an rng.DeriveSeed call. Additive/multiplicative schemes
// correlate the streams of adjacent runs, which is exactly what DeriveSeed's
// SplitMix64 label paths exist to prevent.
func checkSeedArg(pass *Pass, call *ast.CallExpr, names map[string]bool, rngName string) {
	if len(call.Args) == 0 {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || shadowed(pass, pkg) {
		return
	}
	seedCtor := (names[pkg.Name] && (sel.Sel.Name == "NewSource" || sel.Sel.Name == "New")) ||
		(rngName != "" && pkg.Name == rngName && sel.Sel.Name == "New")
	if !seedCtor {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if bin, ok := arg.(*ast.BinaryExpr); ok && arithmeticOp(bin.Op) {
		pass.Reportf(arg.Pos(),
			"ad-hoc seed arithmetic in %s.%s: derive child seeds with rng.DeriveSeed(base, labels...) instead",
			pkg.Name, sel.Sel.Name)
	}
}

func arithmeticOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.XOR, token.AND, token.OR, token.SHL, token.SHR, token.AND_NOT:
		return true
	}
	return false
}
