package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestGolden lints each fixture package under testdata with its analyzer and
// checks the raw findings against the fixtures' `// want `…“ annotations:
// every annotated line must produce a matching finding, every finding must
// land on an annotated line.
func TestGolden(t *testing.T) {
	cases := []struct {
		dir      string
		analyzer *Analyzer
	}{
		{"wallclock", Wallclock},
		{"wallclock_optout", Wallclock},
		{"rawrand", Rawrand},
		{"maporder", Maporder},
		{"orphangoroutine", Orphangoroutine},
		{"errdrop", Errdrop},
	}
	for _, tc := range cases {
		t.Run(tc.dir+"/"+tc.analyzer.Name, func(t *testing.T) {
			pkg, err := LoadDir(filepath.Join("testdata", tc.dir))
			if err != nil {
				t.Fatal(err)
			}
			var diags []Diagnostic
			RunPackage(pkg, tc.analyzer, &diags)
			checkWants(t, pkg, diags)
		})
	}
}

// want is one expected finding: a file, a line, and a message pattern.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, rest, ok := strings.Cut(c.Text, "want ")
				if !ok {
					continue
				}
				rest = strings.TrimSpace(rest)
				if len(rest) < 2 || rest[0] != '`' {
					t.Errorf("%s: malformed want annotation %q (use want `regexp`)",
						pkg.Fset.Position(c.Pos()), rest)
					continue
				}
				end := strings.IndexByte(rest[1:], '`')
				if end < 0 {
					t.Errorf("%s: unterminated want annotation", pkg.Fset.Position(c.Pos()))
					continue
				}
				re, err := regexp.Compile(rest[1 : 1+end])
				if err != nil {
					t.Errorf("%s: bad want regexp: %v", pkg.Fset.Position(c.Pos()), err)
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// TestSuppressionRoundTrip runs the full pipeline (Run, not RunPackage) over
// the suppress fixture: reasoned suppressions on the same line and the line
// above must hide their findings, the un-suppressed call must survive, and
// unused or reasonless suppressions must be reported by the "lint"
// pseudo-analyzer.
func TestSuppressionRoundTrip(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{Wallclock})
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s: %s", d.Analyzer, d.Message))
	}
	expect := []*regexp.Regexp{
		regexp.MustCompile(`^lint: malformed suppression`),
		regexp.MustCompile(`^lint: unused suppression for "wallclock"`),
		regexp.MustCompile(`^wallclock: wall-clock call time\.Now`), // stillFlagged only
	}
	if len(got) != len(expect) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(expect), strings.Join(got, "\n"))
	}
	for _, re := range expect {
		found := false
		for _, g := range got {
			if re.MatchString(g) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic matching %q in:\n%s", re, strings.Join(got, "\n"))
		}
	}
}

// TestPragmaDetection pins the exact-line semantics: prose mentioning the
// pragma does not opt a package in.
func TestPragmaDetection(t *testing.T) {
	in, err := LoadDir(filepath.Join("testdata", "wallclock"))
	if err != nil {
		t.Fatal(err)
	}
	if !hasPragma(in.Files, VirtualTimePragma) {
		t.Error("wallclock fixture should carry the virtual-time pragma")
	}
	out, err := LoadDir(filepath.Join("testdata", "wallclock_optout"))
	if err != nil {
		t.Fatal(err)
	}
	if hasPragma(out.Files, VirtualTimePragma) {
		t.Error("optout fixture must not match: the pragma is an exact comment line, not prose")
	}
}

// TestByName covers driver-facing analyzer lookup.
func TestByName(t *testing.T) {
	for _, a := range Analyzers {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the analyzer", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName should return nil for unknown analyzers")
	}
}

// TestImportNames covers alias and double-import resolution.
func TestImportNames(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "wallclock"))
	if err != nil {
		t.Fatal(err)
	}
	var f *ast.File
	for _, file := range pkg.Files {
		f = file
	}
	names := importNames(f, "time")
	if len(names) != 2 || names[0] != "time" || names[1] != "reclock" {
		t.Errorf("importNames = %v, want [time reclock]", names)
	}
}
