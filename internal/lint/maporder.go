package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// maporderSinks are method/function names that emit ordered output: bytes on
// a writer, rows in an encoder, or events on a tracer. Emitting one of these
// per map iteration bakes Go's randomized map order into the artifact.
// Commutative metric updates (counter.Add) are deliberately absent: they
// fold, so iteration order cannot reach the output.
var maporderSinks = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"Emit": true, "Instant": true, "Annotate": true, "StartSpan": true,
	"Observe": true, "Record": true,
}

// Maporder flags a `range` over a map whose body feeds an ordered output —
// appending to a slice that is never subsequently sorted, writing to an
// encoder/writer, or emitting trace events. Map iteration order is
// randomized per run, so any of these silently breaks the byte-identical
// guarantee on figures, manifests, and traces. The blessed patterns are
// collect-keys-then-sort (the append is followed by a sort call on the same
// variable) and folding into order-insensitive aggregates.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map bodies that append to an unsorted slice, write " +
		"to an encoder/writer, or emit trace events (sort keys first)",
	Run: runMaporder,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				// Reached only for package-level literals (var x = func(){…});
				// literals inside a FuncDecl are covered by its check, which
				// stops the outer walk before descending here.
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFuncMapRanges(pass, body)
			}
			return false
		})
	}
}

// checkFuncMapRanges scans one function body for map ranges, using the whole
// body as the horizon for was-it-sorted-afterwards checks.
func checkFuncMapRanges(pass *Pass, body *ast.BlockStmt) {
	sorts := collectSortCalls(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, rs, sorts)
		return true
	})
}

// sortCall is one call whose name suggests sorting, with the root objects of
// its arguments (sortNamed(s.Counters) → the object of s).
type sortCall struct {
	end  ast.Node
	args map[types.Object]bool
}

// collectSortCalls gathers every call in body whose callee name mentions
// "sort" (sort.Slice, slices.SortFunc, a local sortNamed helper, ...).
func collectSortCalls(pass *Pass, body *ast.BlockStmt) []sortCall {
	var out []sortCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		sc := sortCall{end: call, args: make(map[types.Object]bool)}
		for _, a := range call.Args {
			if obj := rootObject(pass, a); obj != nil {
				sc.args[obj] = true
			}
		}
		out = append(out, sc)
		return true
	})
	return out
}

// calleeName renders a call's function name: "sort.Slice" -> "sort.Slice",
// "sortNamed" -> "sortNamed", method calls -> receiver-less "Name".
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			return x.Name + "." + fn.Sel.Name
		}
		return fn.Sel.Name
	}
	return ""
}

// rootObject resolves an expression to the object of its leftmost identifier:
// `stamps` → stamps, `s.Counters` → s, `&buf` → buf.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if pass.Info == nil {
				return nil
			}
			if obj := pass.Info.Uses[x]; obj != nil {
				return obj
			}
			return pass.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkMapRangeBody flags ordered sinks inside one map-range body.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, sorts []sortCall) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append(dst, ...) to a slice that outlives the loop and is never
		// sorted afterwards.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			obj := rootObject(pass, call.Args[0])
			if obj == nil {
				return true
			}
			// Declared inside the loop body: iteration-local, order can't
			// escape.
			if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
				return true
			}
			if sortedAfter(obj, rs, sorts) {
				return true
			}
			pass.Reportf(call.Pos(),
				"append to %s inside range over map with no subsequent sort: iteration order is randomized per run (sort before emitting)",
				obj.Name())
			return true
		}
		// Writer/encoder/tracer emission per iteration.
		name := sinkName(call)
		if name != "" {
			pass.Reportf(call.Pos(),
				"%s inside range over map emits in randomized iteration order: iterate sorted keys instead",
				name)
		}
		return true
	})
}

// sortedAfter reports whether obj is passed to a sort-named call positioned
// after the range statement ends.
func sortedAfter(obj types.Object, rs *ast.RangeStmt, sorts []sortCall) bool {
	for _, sc := range sorts {
		if sc.end.Pos() > rs.End() && sc.args[obj] {
			return true
		}
	}
	return false
}

// sinkName returns a printable name when call is an ordered-output sink.
func sinkName(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if !maporderSinks[sel.Sel.Name] {
		return ""
	}
	return calleeName(call)
}
