// Package lint is a stdlib-only static-analysis framework enforcing the
// repository's determinism, clock, and concurrency invariants — the side
// conditions every reproduced figure rests on but the compiler cannot see.
//
// The model is a small subset of go/analysis: an Analyzer inspects one
// type-checked package at a time and reports Diagnostics (position, analyzer
// name, message). The driver in cmd/lint loads every package in the module,
// runs the suite, and exits non-zero on findings; `make lint` and CI gate on
// it, and the virtual-time shim test in internal/obs keeps `go test ./...`
// enforcing the wallclock analyzer as well.
//
// Two comment conventions steer the suite:
//
//   - A file containing a comment line that is exactly "lint:virtual-time"
//     opts its whole package into the wallclock analyzer. The pragma lives in
//     the package itself (next to the code it constrains) instead of a
//     directory list in a faraway test, so a new virtual-time package cannot
//     silently escape the lint when the list drifts.
//
//   - A finding is suppressed by a comment of the form
//     "//lint:ignore <analyzer> <reason>" on the flagged line or the line
//     above it. The reason is mandatory; a reasonless or unused suppression
//     is itself a finding, so suppressions cannot rot.
//
// Everything here uses only go/parser, go/ast, go/types, and go/importer —
// no external analysis modules — so the lint runs anywhere the toolchain
// does.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Diagnostic is one finding: an analyzer, a position, and a message.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Position token.Position `json:"-"`
	Pos      string         `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// An Analyzer checks one package at a time and reports findings through the
// Pass. Match (nil = every package) restricts which import paths the driver
// hands to the analyzer; golden tests bypass it and run on fixtures directly.
type Analyzer struct {
	Name  string
	Doc   string
	Match func(pkgPath string) bool
	Run   func(*Pass)
}

// A Pass carries one package's syntax and type information to an analyzer.
// Only non-test sources are present: the invariants guard what ships, and
// tests routinely (and legitimately) touch wall clocks and raw randomness.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string // import path, e.g. "incastproxy/internal/sim"
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: position,
		Pos:      position.String(),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of an expression, or nil when type
// information is unavailable (analyzers degrade to their syntactic
// heuristics in that case rather than crashing).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// A Package is one loaded, type-checked package of the module.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test sources, sorted by file name
	Types *types.Package
	Info  *types.Info
}

// LoadModule parses and type-checks every package under the module rooted at
// root (the directory containing go.mod), excluding testdata and hidden
// directories and excluding _test.go files. Stdlib imports are type-checked
// from GOROOT source via go/importer; module-internal imports are resolved
// recursively. Type-check errors are tolerated (Info stays partial) so a
// broken tree still lints, but parse errors are fatal.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ld := &loader{
		root:   root,
		module: modPath,
		fset:   token.NewFileSet(),
		pkgs:   make(map[string]*Package),
		std:    importer.ForCompiler(token.NewFileSet(), "source", nil),
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		pkg, err := ld.load(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// LoadDir loads a single directory as a standalone package (stdlib imports
// only). Golden tests use it to lint fixture packages under testdata.
func LoadDir(dir string) (*Package, error) {
	ld := &loader{
		root:   dir,
		module: "lintfixture",
		fset:   token.NewFileSet(),
		pkgs:   make(map[string]*Package),
		std:    importer.ForCompiler(token.NewFileSet(), "source", nil),
	}
	pkg, err := ld.load(dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	return pkg, nil
}

type loader struct {
	root    string
	module  string
	fset    *token.FileSet
	pkgs    map[string]*Package // keyed by directory
	std     types.Importer
	loading []string // import-path stack for cycle reporting
}

// load parses and type-checks the package in dir, caching by directory.
// Directories with no non-test Go sources return (nil, nil).
func (ld *loader) load(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	if pkg, ok := ld.pkgs[dir]; ok {
		return pkg, nil
	}
	importPath := ld.importPath(dir)
	for _, p := range ld.loading {
		if p == importPath {
			return nil, fmt.Errorf("lint: import cycle through %s", importPath)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		ld.pkgs[dir] = nil
		return nil, nil
	}

	ld.loading = append(ld.loading, importPath)
	defer func() { ld.loading = ld.loading[:len(ld.loading)-1] }()

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: ld,
		Error:    func(error) {}, // tolerate; analyzers degrade to syntax
	}
	tpkg, _ := conf.Check(importPath, ld.fset, files, info)
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  ld.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	ld.pkgs[dir] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths load from source
// under the module root, everything else (stdlib) goes to the GOROOT source
// importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.module || strings.HasPrefix(path, ld.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.module), "/")
		pkg, err := ld.load(filepath.Join(ld.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("lint: no package at %s", path)
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

// importPath maps a directory under the module root to its import path.
func (ld *loader) importPath(dir string) string {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil || rel == "." {
		return ld.module
	}
	return ld.module + "/" + filepath.ToSlash(rel)
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Run executes the analyzers over the packages (honoring each analyzer's
// Match), applies //lint:ignore suppressions, and reports malformed or
// unused suppressions as findings of the pseudo-analyzer "lint". The result
// is sorted by position then analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			RunPackage(pkg, a, &raw)
		}
	}
	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}
	out := applySuppressions(pkgs, raw, running)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// RunPackage runs one analyzer over one package, appending raw (unfiltered)
// findings to diags. Golden tests use it to bypass Match and suppression
// filtering; Run is the production entry point.
func RunPackage(pkg *Package, a *Analyzer, diags *[]Diagnostic) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Path:     pkg.Path,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		diags:    diags,
	}
	a.Run(pass)
}

// ignorePrefix is the suppression marker: "//lint:ignore <analyzer> <reason>".
const ignorePrefix = "lint:ignore"

type suppression struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// applySuppressions drops diagnostics covered by a well-formed
// //lint:ignore comment on the same line or the line above, and emits
// "lint" findings for malformed suppressions and for suppressions that
// matched nothing (only for analyzers that actually ran).
func applySuppressions(pkgs []*Package, diags []Diagnostic, running map[string]bool) []Diagnostic {
	// file -> line -> suppression
	byLine := make(map[string]map[int]*suppression)
	var out []Diagnostic
	var all []*suppression
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
					if len(fields) < 2 {
						out = append(out, Diagnostic{
							Analyzer: "lint",
							Position: pos,
							Pos:      pos.String(),
							Message:  "malformed suppression: want //lint:ignore <analyzer> <reason>",
						})
						continue
					}
					s := &suppression{
						pos:      pos,
						analyzer: fields[0],
						reason:   strings.Join(fields[1:], " "),
					}
					if byLine[pos.Filename] == nil {
						byLine[pos.Filename] = make(map[int]*suppression)
					}
					byLine[pos.Filename][pos.Line] = s
					all = append(all, s)
				}
			}
		}
	}
	for _, d := range diags {
		if s := matchSuppression(byLine, d); s != nil {
			s.used = true
			continue
		}
		out = append(out, d)
	}
	for _, s := range all {
		if !s.used && running[s.analyzer] {
			out = append(out, Diagnostic{
				Analyzer: "lint",
				Position: s.pos,
				Pos:      s.pos.String(),
				Message:  fmt.Sprintf("unused suppression for %q (%s)", s.analyzer, s.reason),
			})
		}
	}
	return out
}

// matchSuppression finds a suppression covering d: same file, matching
// analyzer, on the diagnostic's line (trailing comment) or the line above.
func matchSuppression(byLine map[string]map[int]*suppression, d Diagnostic) *suppression {
	lines := byLine[d.Position.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range []int{d.Position.Line, d.Position.Line - 1} {
		if s := lines[line]; s != nil && s.analyzer == d.Analyzer {
			return s
		}
	}
	return nil
}

// importNames returns every local name under which a file imports path
// (empty when the file does not import it; may include "." for dot imports
// and "_" for blank ones).
func importNames(f *ast.File, path string) []string {
	var names []string
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			names = append(names, imp.Name.Name)
			continue
		}
		// Last path element is the default package name for every stdlib
		// and module-internal package this repo touches.
		if i := strings.LastIndex(path, "/"); i >= 0 {
			names = append(names, path[i+1:])
		} else {
			names = append(names, path)
		}
	}
	return names
}

// hasPragma reports whether any file of the package contains a comment line
// that is exactly pragma (e.g. "lint:virtual-time").
func hasPragma(files []*ast.File, pragma string) bool {
	for _, f := range files {
		if fileHasPragma(f, pragma) {
			return true
		}
	}
	return false
}

func fileHasPragma(f *ast.File, pragma string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == pragma {
				return true
			}
		}
	}
	return false
}

// Analyzers is the production suite, in the order the driver runs it.
var Analyzers = []*Analyzer{
	Wallclock,
	Rawrand,
	Maporder,
	Orphangoroutine,
	Errdrop,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}
