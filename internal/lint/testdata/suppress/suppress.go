// lint:virtual-time

// Package fixture exercises the suppression round trip: a reasoned
// //lint:ignore hides the finding on its line or the next, an unused or
// malformed suppression is itself reported, and an un-suppressed finding
// still comes through.
package fixture

import "time"

func suppressedAbove() time.Time {
	//lint:ignore wallclock this fixture documents the line-above form
	return time.Now()
}

func suppressedTrailing() {
	time.Sleep(time.Millisecond) //lint:ignore wallclock trailing-comment form
}

func stillFlagged() time.Time {
	return time.Now()
}

func unused() {
	//lint:ignore wallclock nothing on the next line reads the clock
	_ = time.Second
}

func malformed() {
	//lint:ignore wallclock
	_ = time.Second
}
