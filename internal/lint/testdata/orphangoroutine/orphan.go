// Package fixture exercises the orphangoroutine analyzer: goroutines with no
// WaitGroup, channel, select, or context coordination are flagged.
package fixture

import (
	"context"
	"sync"
)

func work() {}

func orphan() {
	go work()   // want `goroutine has no shutdown coordination`
	go func() { // want `goroutine has no shutdown coordination`
		for {
			work()
		}
	}()
}

type server struct{}

func (server) Serve() error { return nil }

func orphanMethod(s server) {
	go s.Serve() // want `goroutine has no shutdown coordination`
}

func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func doneChannel() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	return done
}

func withContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func channelArg(results chan<- int) {
	go func() {
		results <- 1
	}()
}

func selectLoop(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}
