// Package fixture exercises the maporder analyzer: map-range bodies feeding
// ordered outputs are flagged; collect-then-sort and pure aggregation pass.
package fixture

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

func unsortedAppend(m map[string]int) []string {
	var rows []string
	for k := range m {
		rows = append(rows, k) // want `append to rows inside range over map with no subsequent sort`
	}
	return rows
}

func writerInLoop(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over map`
	}
}

func encoderInLoop(w io.Writer, m map[string]int) {
	enc := json.NewEncoder(w)
	for _, v := range m {
		enc.Encode(v) // want `enc\.Encode inside range over map`
	}
}

type sink struct{}

func (sink) Instant(name string) {}

func tracerInLoop(s sink, m map[string]int) {
	for k := range m {
		s.Instant(k) // want `s\.Instant inside range over map`
	}
}

func sortedAppend(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type row struct{ Name string }

// helperSorted mirrors the registry Snapshot shape: append to struct fields
// in several map loops, sort through a local helper afterwards.
func helperSorted(m map[string]int) []row {
	var out struct{ Rows []row }
	for k := range m {
		out.Rows = append(out.Rows, row{Name: k})
	}
	sortRows := func(rs []row) {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name })
	}
	sortRows(out.Rows)
	return out.Rows
}

func aggregation(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // folding is order-insensitive: no finding
	}
	return total
}

func loopLocal(w io.Writer, m map[string][]byte) {
	for _, vs := range m {
		var line []byte
		line = append(line, vs...) // iteration-local slice: no finding
		_ = line
	}
}
