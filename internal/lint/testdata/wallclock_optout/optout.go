// Package fixture has no lint:virtual-time-style pragma (the marker in this
// sentence is prose, not an exact comment line), so the wallclock analyzer
// must stay silent even though it reads the clock freely.
package fixture

import "time"

func reads() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
