// Package fixture exercises the rawrand analyzer: global-generator draws and
// ad-hoc seed arithmetic are flagged, explicitly-seeded local sources pass.
package fixture

import "math/rand"

func globals() {
	_ = rand.Intn(10)  // want `use of math/rand global rand\.Intn`
	_ = rand.Float64() // want `use of math/rand global rand\.Float64`
	f := rand.Float64  // want `use of math/rand global rand\.Float64`
	_ = f
	rand.Shuffle(3, func(i, j int) {}) // want `use of math/rand global rand\.Shuffle`
	rand.Seed(42)                      // want `use of math/rand global rand\.Seed`
}

func adHocSeeds(seed int64, run int) {
	_ = rand.NewSource(seed + int64(run)*7919) // want `ad-hoc seed arithmetic in rand\.NewSource`
}

func legal(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	var src rand.Source = rand.NewSource(seed)
	_ = src
	return r.Float64() // draws on a local source are fine
}

// shadow proves a local named rand is not confused with the package.
func shadow() int {
	type fake struct{ Intn func(int) int }
	rand := fake{Intn: func(n int) int { return 0 }}
	return rand.Intn(3)
}
