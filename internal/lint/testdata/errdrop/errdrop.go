// Package fixture exercises the errdrop analyzer: discarded write/encode
// errors are flagged, explicit discards and infallible sinks pass.
package fixture

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"strings"
)

type manifest struct{}

func (manifest) WriteJSON(w io.Writer) error { return nil }

func drops(w io.Writer, c io.WriteCloser, m manifest) {
	w.Write([]byte("x"))         // want `error result of w\.Write is discarded`
	io.WriteString(w, "x")       // want `error result of io\.WriteString is discarded`
	fmt.Fprintf(w, "x %d", 1)    // want `error result of fmt\.Fprintf is discarded`
	m.WriteJSON(w)               // want `error result of m\.WriteJSON is discarded`
	json.NewEncoder(w).Encode(m) // want `error result of Encode is discarded`
	bw := bufio.NewWriter(w)
	defer bw.Flush()  // want `error result of bw\.Flush is discarded`
	go m.WriteJSON(w) // want `error result of m\.WriteJSON is discarded`
}

func explicit(w io.Writer) {
	_, _ = w.Write([]byte("best-effort: peer may already be gone"))
}

func handled(w io.Writer) error {
	if _, err := w.Write([]byte("x")); err != nil {
		return err
	}
	return nil
}

func infallible() string {
	var b strings.Builder
	b.WriteString("a")
	fmt.Fprintf(&b, "%d", 1)
	var buf bytes.Buffer
	buf.Write([]byte("x"))
	h := fnv.New64a()
	h.Write([]byte("x"))
	return b.String()
}
