// lint:virtual-time

// Package fixture exercises the wallclock analyzer: the pragma above opts
// the package in, so every banned time call must be flagged.
package fixture

import (
	"time"
	reclock "time"
)

func reads() time.Duration {
	start := time.Now()             // want `wall-clock call time\.Now`
	time.Sleep(time.Millisecond)    // want `wall-clock call time\.Sleep`
	_ = time.Since(start)           // want `wall-clock call time\.Since`
	_ = time.Until(start)           // want `wall-clock call time\.Until`
	t := time.NewTimer(time.Second) // want `wall-clock call time\.NewTimer`
	defer t.Stop()
	k := time.NewTicker(time.Second) // want `wall-clock call time\.NewTicker`
	defer k.Stop()
	<-time.After(time.Millisecond) // want `wall-clock call time\.After`
	_ = reclock.Now()              // want `wall-clock call time\.Now`
	return 3 * time.Second         // durations and constants stay legal
}

// shadow proves a local binding named like the import is not confused with
// the package.
func shadow() int {
	type clock struct{ Now func() int }
	time := clock{Now: func() int { return 0 }}
	return time.Now()
}
