package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Orphangoroutine flags `go` statements with no visible shutdown
// coordination: the spawned function neither registers with a WaitGroup,
// touches a channel (send, receive, close, select), nor carries a
// context.Context. Such goroutines have no way to be joined or cancelled —
// the dial-race/leak class PR 6 fixed in the relay client — so in the
// packages that run real concurrency they must either coordinate or carry a
// //lint:ignore with the lifecycle argument.
//
// The check is a heuristic over the go statement's call expression (and
// function-literal body, when there is one): coordination passed in less
// visible ways deserves the suppression comment anyway, as documentation.
var Orphangoroutine = &Analyzer{
	Name: "orphangoroutine",
	Doc: "flag go statements whose function captures no done channel, " +
		"context, or WaitGroup registration in the live-concurrency packages",
	Match: func(path string) bool {
		for _, p := range []string{"internal/relay", "internal/chaosnet", "internal/runner", "internal/sim"} {
			if strings.HasSuffix(path, p) {
				return true
			}
		}
		return false
	},
	Run: runOrphangoroutine,
}

func runOrphangoroutine(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !coordinated(pass, g.Call) {
				pass.Reportf(g.Pos(),
					"goroutine has no shutdown coordination (no WaitGroup, done channel, select, or context): join it or document its lifecycle with a suppression")
			}
			return true
		})
	}
}

// coordinated scans the go statement's call — arguments, callee, and the
// whole body when the callee is a function literal — for any lifecycle
// signal.
func coordinated(pass *Pass, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.CallExpr:
			switch fn := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fn.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				// WaitGroup registration / join, or ctx.Done().
				switch fn.Sel.Name {
				case "Done", "Wait", "Add":
					found = true
				}
			}
		case ast.Expr:
			// Any value of channel or context.Context type in scope counts:
			// the goroutine can observe shutdown through it.
			if t := pass.TypeOf(n); t != nil && (isChan(t) || isContext(t)) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isChan(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
