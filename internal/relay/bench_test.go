package relay

import (
	"context"
	"io"
	"net"
	"testing"
)

// BenchmarkSpliceThroughput measures bytes through one established splice
// over loopback TCP: client -> relay -> sink, 64 KiB writes. b.SetBytes
// makes `go test -bench` report MB/s for the live data plane.
func BenchmarkSpliceThroughput(b *testing.B) {
	sinkL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer sinkL.Close()
	go func() {
		for {
			c, err := sinkL.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(io.Discard, c)
			}()
		}
	}()

	relayL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := New(Config{})
	go srv.Serve(relayL)
	defer srv.Close()

	c, err := DialViaRelay(context.Background(), nil, relayL.Addr().String(), sinkL.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	const chunk = 64 << 10
	buf := make([]byte, chunk)
	b.SetBytes(chunk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDialViaRelay measures the full connect-preamble-verdict
// handshake latency per admitted connection over loopback TCP.
func BenchmarkDialViaRelay(b *testing.B) {
	sinkL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer sinkL.Close()
	go func() {
		for {
			c, err := sinkL.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(io.Discard, c)
			}()
		}
	}()

	relayL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := New(Config{})
	go srv.Serve(relayL)
	defer srv.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := DialViaRelay(context.Background(), nil, relayL.Addr().String(), sinkL.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

// BenchmarkShedBusy measures the fast-shed path: a relay at MaxConns must
// answer BUSY quickly — shedding is only a brownout if refusal is cheaper
// than service.
func BenchmarkShedBusy(b *testing.B) {
	sinkL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer sinkL.Close()
	go func() {
		for {
			c, err := sinkL.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(io.Discard, c)
			}()
		}
	}()

	relayL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := New(Config{MaxConns: 1})
	go srv.Serve(relayL)
	defer srv.Close()

	// Hold the single admission slot for the benchmark's duration.
	held, err := DialViaRelay(context.Background(), nil, relayL.Addr().String(), sinkL.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer held.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := DialViaRelay(context.Background(), nil, relayL.Addr().String(), sinkL.Addr().String())
		if !IsShed(err) {
			b.Fatalf("want shed, got %v", err)
		}
	}
}
