package relay

// Client-side resilience: the relay shortens the control loop only while it
// is reachable, so a sender that insists on the relay when the relay is dead
// turns a performance optimization into an availability bug. Client wraps
// DialViaRelay with a retry policy (per-attempt timeout, exponential backoff
// with jitter, bounded attempts), an active health-check loop, a circuit
// breaker, and graceful degradation: when the relay is down — or shedding
// under overload — flows fall back to the direct shortest path: slower, per
// the paper's argument, but alive.
//
// The breaker is what keeps N incast senders from turning one overloaded
// relay into N retry storms: consecutive dial failures (or a single
// explicit BUSY/GOING_AWAY shed, which is the relay *telling* us to go
// away) open it, open dials fail fast without touching the network, and a
// half-open probe after a cool-down lets exactly one dial test the water.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"incastproxy/internal/control"
	"incastproxy/internal/obs"
	"incastproxy/internal/rng"
	"incastproxy/internal/units"
)

// DialPolicy bounds one logical dial: how many attempts, how long each may
// take, and how retries space out.
type DialPolicy struct {
	// AttemptTimeout caps each individual attempt (default 2s).
	AttemptTimeout time.Duration
	// MaxAttempts is the total number of attempts, first try included
	// (default 3).
	MaxAttempts int
	// BackoffBase is the delay before the first retry; it doubles per
	// retry (default 50ms).
	BackoffBase time.Duration
	// BackoffMax caps the backoff delay (default 2s).
	BackoffMax time.Duration
	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter] of
	// its nominal value, desynchronizing retry storms from the many
	// senders of an incast (default 0.2).
	Jitter float64
	// Rand supplies the jitter coin in [0,1); tests inject a seeded
	// source for reproducibility. The default is a policy-local source
	// seeded once from the wall clock through rng.DeriveSeed — never the
	// math/rand process global, whose shared state would couple jitter
	// draws across unrelated clients. It need not be goroutine-safe:
	// withDefaults serializes draws, since concurrent DialTarget calls
	// share the policy.
	Rand func() float64
}

func (p DialPolicy) withDefaults() DialPolicy {
	if p.AttemptTimeout <= 0 {
		p.AttemptTimeout = 2 * time.Second
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 50 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 2 * time.Second
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = 0.2
	}
	inner := p.Rand
	if inner == nil {
		// Live-path jitter wants decorrelation, not reproducibility: seed a
		// policy-local source off the wall clock, mixed through DeriveSeed so
		// two policies created in the same nanosecond still diverge elsewhere.
		inner = rand.New(rand.NewSource(rng.DeriveSeed(time.Now().UnixNano()))).Float64
	}
	var mu sync.Mutex
	p.Rand = func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return inner()
	}
	return p
}

// delay returns the jittered backoff before retry number n (n >= 1).
func (p DialPolicy) delay(n int) time.Duration {
	d := p.BackoffBase << uint(n-1)
	if d > p.BackoffMax || d <= 0 {
		d = p.BackoffMax
	}
	spread := 1 + p.Jitter*(2*p.Rand()-1)
	return time.Duration(float64(d) * spread)
}

// BreakerState is the circuit breaker's state.
type BreakerState int32

// Breaker states: Closed passes dials through, Open fails them fast, and
// HalfOpen lets exactly one probe dial through to test recovery.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(s))
	}
}

// BreakerPolicy configures the client's circuit breaker.
type BreakerPolicy struct {
	// FailureThreshold is how many consecutive relay dial failures open
	// the breaker (default 5). An explicit BUSY/GOING_AWAY shed opens it
	// immediately regardless — the relay has already answered. Negative
	// disables the breaker entirely.
	FailureThreshold int
	// OpenTimeout is how long the breaker stays open before a half-open
	// probe dial is allowed (default 1s).
	OpenTimeout time.Duration
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.FailureThreshold == 0 {
		p.FailureThreshold = 5
	}
	if p.OpenTimeout <= 0 {
		p.OpenTimeout = time.Second
	}
	return p
}

func (p BreakerPolicy) disabled() bool { return p.FailureThreshold < 0 }

// ClientConfig parameterizes a resilient relay client.
type ClientConfig struct {
	// Dial is the underlying dialer (default net.Dialer); tests inject
	// lan fabric dialers.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
	// RelayAddr is the relay to route through.
	RelayAddr string
	// Policy bounds relay dial attempts.
	Policy DialPolicy
	// Breaker configures the circuit breaker layered on the retry
	// policy. The zero value enables it with defaults; set
	// FailureThreshold negative to disable.
	Breaker BreakerPolicy
	// FallbackDirect, when set, dials the target directly once the relay
	// path is exhausted, known-unhealthy, or breaker-open, instead of
	// failing the flow.
	FallbackDirect bool
	// HealthInterval spaces active health probes; zero disables the
	// loop (health then changes only on dial outcomes).
	HealthInterval time.Duration
	// HealthTimeout caps one probe (default AttemptTimeout).
	HealthTimeout time.Duration
	// Registry, if set, registers the client's Metrics under
	// relay_client_* names.
	Registry *obs.Registry
	// Tracer, if set, opens a client.dial root span per DialTarget call
	// (context derived from TraceSeed and a dial counter) and records
	// breaker transitions and shed verdicts as instant events. The span's
	// context rides the dial preamble, so relay-side spans join the trace.
	Tracer *obs.Tracer
	// TraceSeed roots the dial span IDs (obs.NewSpanContext); seeded
	// harnesses pass their run seed for reproducible trace IDs.
	TraceSeed int64
	// PathEstimator, if set, receives every health probe's outcome: the
	// dial round-trip on success (ObserveRTT) plus a loss mark either way
	// (ObserveLoss), and every relay dial's admission verdict
	// (ObserveBusy). It is the same estimator type the simulator's in-sim
	// probers feed, so admission policies (orchestrator.AdaptivePolicy)
	// consume live relay telemetry — including breaker-visible overload —
	// through the interface they already use.
	PathEstimator *control.PathEstimator
}

// Client dials targets through a relay with retries, health tracking, a
// circuit breaker, and optional direct fallback. Create with NewClient;
// Close stops the health loop.
type Client struct {
	cfg ClientConfig
	// Metrics shares the Server's counter type: DialRetries, Fallbacks,
	// HealthFlaps, BreakerOpens, BreakerState, and BusySheds are the
	// client-side fields.
	Metrics Metrics

	traceN atomic.Uint64 // dial counter: per-dial span context label

	mu        sync.Mutex
	unhealthy bool
	closed    bool
	stop      chan struct{}
	loopDone  chan struct{}

	// Circuit breaker state, all guarded by mu.
	brState     BreakerState
	consecFails int
	openedAt    time.Time
	probing     bool // a half-open probe dial is in flight
}

// ErrRelayUnavailable reports that every relay attempt failed and direct
// fallback was not enabled.
var ErrRelayUnavailable = errors.New("relay: relay unavailable")

// ErrRelayBusy reports a dial the relay shed with a BUSY frame: the relay
// is alive but at admission capacity. Retrying immediately amplifies the
// overload; back off or take the direct path.
var ErrRelayBusy = errors.New("relay: busy (admission shed)")

// ErrRelayDraining reports a dial the relay shed with GOING_AWAY: the relay
// is gracefully shutting down. Re-route rather than retry.
var ErrRelayDraining = errors.New("relay: draining (going away)")

// ErrBreakerOpen reports a dial the client's circuit breaker refused
// without touching the network. It matches ErrRelayUnavailable under
// errors.Is.
var ErrBreakerOpen = fmt.Errorf("%w (circuit breaker open)", ErrRelayUnavailable)

// IsShed reports whether err is an explicit relay overload verdict
// (BUSY or GOING_AWAY) rather than a transport failure.
func IsShed(err error) bool {
	return errors.Is(err, ErrRelayBusy) || errors.Is(err, ErrRelayDraining)
}

// NewClient returns a Client and, if HealthInterval is set, starts its
// health-check loop.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Dial == nil {
		var d net.Dialer
		cfg.Dial = d.DialContext
	}
	cfg.Policy = cfg.Policy.withDefaults()
	cfg.Breaker = cfg.Breaker.withDefaults()
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = cfg.Policy.AttemptTimeout
	}
	c := &Client{
		cfg:      cfg,
		Metrics:  NewMetrics(cfg.Registry, "relay_client"),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	if cfg.HealthInterval > 0 {
		//lint:ignore orphangoroutine healthLoop selects on c.stop and closes c.loopDone; Close joins it
		go c.healthLoop()
	} else {
		close(c.loopDone)
	}
	return c
}

// Close stops the health loop. Established connections are unaffected.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.stop)
	c.mu.Unlock()
	<-c.loopDone
	return nil
}

// Healthy reports the relay's last known state. It starts true and flips on
// probe and dial outcomes; each transition counts one HealthFlaps.
func (c *Client) Healthy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.unhealthy
}

func (c *Client) setHealthy(ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.unhealthy == !ok {
		return
	}
	c.unhealthy = !ok
	c.Metrics.HealthFlaps.Add(1)
}

// Breaker returns the circuit breaker's current state.
func (c *Client) Breaker() BreakerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.brState
}

// breakerAcquire asks the breaker for permission to dial the relay.
// probe is true when this dial is the single half-open trial.
func (c *Client) breakerAcquire() (probe, allowed bool) {
	if c.cfg.Breaker.disabled() {
		return false, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.brState {
	case BreakerClosed:
		return false, true
	case BreakerOpen:
		if time.Since(c.openedAt) < c.cfg.Breaker.OpenTimeout {
			return false, false
		}
		c.setBreakerLocked(BreakerHalfOpen)
		fallthrough
	case BreakerHalfOpen:
		if c.probing {
			return false, false
		}
		c.probing = true
		return true, true
	}
	return false, true
}

// breakerReport folds one relay dial outcome into the breaker. Shed
// verdicts open it immediately; other failures open it after
// FailureThreshold in a row; caller-cancelled dials are neutral.
func (c *Client) breakerReport(probe bool, err error, ctxErr error) {
	if c.cfg.Breaker.disabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if probe {
		c.probing = false
	}
	if err == nil {
		c.consecFails = 0
		c.setBreakerLocked(BreakerClosed)
		return
	}
	if ctxErr != nil && errors.Is(err, ctxErr) {
		return // the caller gave up, not the relay
	}
	c.consecFails++
	shed := errors.Is(err, ErrRelayBusy) || errors.Is(err, ErrRelayDraining)
	if shed || c.consecFails >= c.cfg.Breaker.FailureThreshold || c.brState == BreakerHalfOpen {
		if c.brState != BreakerOpen {
			c.Metrics.BreakerOpens.Add(1)
		}
		c.openedAt = time.Now()
		c.setBreakerLocked(BreakerOpen)
	}
}

func (c *Client) setBreakerLocked(s BreakerState) {
	if s != c.brState && c.cfg.Tracer != nil {
		// Breaker flips are control-plane decisions: instant events on
		// the decision timeline (track 0, cat "client").
		c.cfg.Tracer.Instant(c.cfg.Tracer.Now(), "client", "breaker."+s.String(), 0)
	}
	c.brState = s
	c.Metrics.BreakerState.Set(int64(s))
}

// healthLoop probes the relay's accept path every HealthInterval.
func (c *Client) healthLoop() {
	defer close(c.loopDone)
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthTimeout)
			start := time.Now()
			conn, err := c.cfg.Dial(ctx, "tcp", c.cfg.RelayAddr)
			cancel()
			if err != nil {
				c.cfg.PathEstimator.ObserveLoss(true)
				c.setHealthy(false)
				continue
			}
			c.cfg.PathEstimator.ObserveRTT(units.FromStd(time.Since(start)))
			c.cfg.PathEstimator.ObserveLoss(false)
			conn.Close()
			c.setHealthy(true)
		}
	}
}

// DialTarget opens a byte stream to target: through the relay while it is
// healthy and the breaker allows it, retrying per the policy, and directly
// when the relay path is exhausted, shed, or breaker-open (FallbackDirect).
// The error from the last relay attempt is always surfaced — promptly, each
// attempt individually bounded — when no path works.
func (c *Client) DialTarget(ctx context.Context, target string) (net.Conn, error) {
	var sp *obs.Span
	var sc obs.SpanContext
	start := time.Now()
	if c.cfg.Tracer != nil {
		sc = obs.NewSpanContext(c.cfg.TraceSeed, int64(c.traceN.Add(1)))
		sp = c.cfg.Tracer.StartRoot(c.cfg.Tracer.Now(), "client", "client.dial", sc,
			obs.Arg{Key: "target", Val: target})
	}
	finish := func(outcome string) {
		c.Metrics.DialDurationUS.Observe(c.cfg.Tracer.Now(), time.Since(start).Microseconds())
		if sp != nil {
			sp.End(c.cfg.Tracer.Now(), obs.Arg{Key: "outcome", Val: outcome})
		}
	}
	relayErr := ErrRelayUnavailable
	wantRelay := c.Healthy() || !c.cfg.FallbackDirect
	if wantRelay {
		probe, allowed := c.breakerAcquire()
		if !allowed {
			relayErr = ErrBreakerOpen
			if sp != nil {
				sp.Annotate(c.cfg.Tracer.Now(), "client.breaker_open")
			}
		} else {
			conn, err := c.dialRelayWithRetries(ctx, target, sc)
			c.breakerReport(probe, err, ctx.Err())
			if err == nil {
				c.setHealthy(true)
				c.cfg.PathEstimator.ObserveBusy(false)
				finish("relay")
				return conn, nil
			}
			relayErr = err
			if IsShed(err) {
				// The relay answered: it is alive but shedding.
				// Overload feeds the estimator's busy signal, not
				// the reachability health bit.
				c.Metrics.BusySheds.Add(1)
				c.cfg.PathEstimator.ObserveBusy(true)
				if sp != nil {
					// The terminal shed event of this flow's trace: the
					// relay sheds before reading the preamble, so only
					// the client can attribute the verdict to the trace.
					sp.Annotate(c.cfg.Tracer.Now(), "client.shed")
				}
			} else if ctx.Err() == nil {
				c.setHealthy(false)
			}
		}
	}
	if c.cfg.FallbackDirect {
		conn, err := c.cfg.Dial(ctx, "tcp", target)
		if err == nil {
			c.Metrics.Fallbacks.Add(1)
			finish("fallback-direct")
			return conn, nil
		}
		finish("error")
		return nil, fmt.Errorf("relay path: %w; direct path: %v", relayErr, err)
	}
	switch {
	case IsShed(relayErr):
		finish("shed")
	case errors.Is(relayErr, ErrBreakerOpen):
		finish("breaker-open")
	default:
		finish("error")
	}
	return nil, relayErr
}

func (c *Client) dialRelayWithRetries(ctx context.Context, target string, sc obs.SpanContext) (net.Conn, error) {
	p := c.cfg.Policy
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.Metrics.DialRetries.Add(1)
			if err := sleepCtx(ctx, p.delay(attempt)); err != nil {
				return nil, err
			}
		}
		actx, cancel := context.WithTimeout(ctx, p.AttemptTimeout)
		conn, err := DialViaRelaySpan(actx, c.cfg.Dial, c.cfg.RelayAddr, target, sc)
		cancel()
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if IsShed(err) {
			// An explicit shed is an authoritative answer, not a
			// transient fault: retrying an overloaded relay amplifies
			// the very burst it is shedding.
			return nil, fmt.Errorf("relay: shed by %s: %w", c.cfg.RelayAddr, err)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("relay: %d attempts to %s failed: %w",
		p.MaxAttempts, c.cfg.RelayAddr, lastErr)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
