package relay

// Client-side resilience: the relay shortens the control loop only while it
// is reachable, so a sender that insists on the relay when the relay is dead
// turns a performance optimization into an availability bug. Client wraps
// DialViaRelay with a retry policy (per-attempt timeout, exponential backoff
// with jitter, bounded attempts), an active health-check loop, and graceful
// degradation: when the relay is down, flows fall back to the direct
// shortest path — slower, per the paper's argument, but alive.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"incastproxy/internal/control"
	"incastproxy/internal/obs"
	"incastproxy/internal/units"
)

// DialPolicy bounds one logical dial: how many attempts, how long each may
// take, and how retries space out.
type DialPolicy struct {
	// AttemptTimeout caps each individual attempt (default 2s).
	AttemptTimeout time.Duration
	// MaxAttempts is the total number of attempts, first try included
	// (default 3).
	MaxAttempts int
	// BackoffBase is the delay before the first retry; it doubles per
	// retry (default 50ms).
	BackoffBase time.Duration
	// BackoffMax caps the backoff delay (default 2s).
	BackoffMax time.Duration
	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter] of
	// its nominal value, desynchronizing retry storms from the many
	// senders of an incast (default 0.2).
	Jitter float64
	// Rand supplies the jitter coin in [0,1); tests inject a seeded
	// source for reproducibility (default math/rand).
	Rand func() float64
}

func (p DialPolicy) withDefaults() DialPolicy {
	if p.AttemptTimeout <= 0 {
		p.AttemptTimeout = 2 * time.Second
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 50 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 2 * time.Second
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = 0.2
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	return p
}

// delay returns the jittered backoff before retry number n (n >= 1).
func (p DialPolicy) delay(n int) time.Duration {
	d := p.BackoffBase << uint(n-1)
	if d > p.BackoffMax || d <= 0 {
		d = p.BackoffMax
	}
	spread := 1 + p.Jitter*(2*p.Rand()-1)
	return time.Duration(float64(d) * spread)
}

// ClientConfig parameterizes a resilient relay client.
type ClientConfig struct {
	// Dial is the underlying dialer (default net.Dialer); tests inject
	// lan fabric dialers.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
	// RelayAddr is the relay to route through.
	RelayAddr string
	// Policy bounds relay dial attempts.
	Policy DialPolicy
	// FallbackDirect, when set, dials the target directly once the relay
	// path is exhausted or known-unhealthy, instead of failing the flow.
	FallbackDirect bool
	// HealthInterval spaces active health probes; zero disables the
	// loop (health then changes only on dial outcomes).
	HealthInterval time.Duration
	// HealthTimeout caps one probe (default AttemptTimeout).
	HealthTimeout time.Duration
	// Registry, if set, registers the client's Metrics under
	// relay_client_* names.
	Registry *obs.Registry
	// PathEstimator, if set, receives every health probe's outcome: the
	// dial round-trip on success (ObserveRTT) plus a loss mark either way
	// (ObserveLoss). It is the same estimator type the simulator's in-sim
	// probers feed, so admission policies (orchestrator.AdaptivePolicy)
	// consume live relay telemetry through the interface they already use.
	PathEstimator *control.PathEstimator
}

// Client dials targets through a relay with retries, health tracking, and
// optional direct fallback. Create with NewClient; Close stops the health
// loop.
type Client struct {
	cfg ClientConfig
	// Metrics shares the Server's counter type: DialRetries, Fallbacks,
	// and HealthFlaps are the client-side fields.
	Metrics Metrics

	mu        sync.Mutex
	unhealthy bool
	closed    bool
	stop      chan struct{}
	loopDone  chan struct{}
}

// ErrRelayUnavailable reports that every relay attempt failed and direct
// fallback was not enabled.
var ErrRelayUnavailable = errors.New("relay: relay unavailable")

// NewClient returns a Client and, if HealthInterval is set, starts its
// health-check loop.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Dial == nil {
		var d net.Dialer
		cfg.Dial = d.DialContext
	}
	cfg.Policy = cfg.Policy.withDefaults()
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = cfg.Policy.AttemptTimeout
	}
	c := &Client{
		cfg:      cfg,
		Metrics:  NewMetrics(cfg.Registry, "relay_client"),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	if cfg.HealthInterval > 0 {
		go c.healthLoop()
	} else {
		close(c.loopDone)
	}
	return c
}

// Close stops the health loop. Established connections are unaffected.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.stop)
	c.mu.Unlock()
	<-c.loopDone
	return nil
}

// Healthy reports the relay's last known state. It starts true and flips on
// probe and dial outcomes; each transition counts one HealthFlaps.
func (c *Client) Healthy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.unhealthy
}

func (c *Client) setHealthy(ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.unhealthy == !ok {
		return
	}
	c.unhealthy = !ok
	c.Metrics.HealthFlaps.Add(1)
}

// healthLoop probes the relay's accept path every HealthInterval.
func (c *Client) healthLoop() {
	defer close(c.loopDone)
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthTimeout)
			start := time.Now()
			conn, err := c.cfg.Dial(ctx, "tcp", c.cfg.RelayAddr)
			cancel()
			if err != nil {
				c.cfg.PathEstimator.ObserveLoss(true)
				c.setHealthy(false)
				continue
			}
			c.cfg.PathEstimator.ObserveRTT(units.FromStd(time.Since(start)))
			c.cfg.PathEstimator.ObserveLoss(false)
			conn.Close()
			c.setHealthy(true)
		}
	}
}

// DialTarget opens a byte stream to target: through the relay while it is
// healthy, retrying per the policy, and directly when the relay path is
// exhausted (FallbackDirect). The error from the last relay attempt is
// always surfaced — promptly, each attempt individually bounded — when no
// path works.
func (c *Client) DialTarget(ctx context.Context, target string) (net.Conn, error) {
	relayErr := ErrRelayUnavailable
	tryRelay := c.Healthy() || !c.cfg.FallbackDirect
	if tryRelay {
		conn, err := c.dialRelayWithRetries(ctx, target)
		if err == nil {
			c.setHealthy(true)
			return conn, nil
		}
		relayErr = err
		c.setHealthy(false)
	}
	if c.cfg.FallbackDirect {
		conn, err := c.cfg.Dial(ctx, "tcp", target)
		if err == nil {
			c.Metrics.Fallbacks.Add(1)
			return conn, nil
		}
		return nil, fmt.Errorf("relay path: %w; direct path: %v", relayErr, err)
	}
	return nil, relayErr
}

func (c *Client) dialRelayWithRetries(ctx context.Context, target string) (net.Conn, error) {
	p := c.cfg.Policy
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.Metrics.DialRetries.Add(1)
			if err := sleepCtx(ctx, p.delay(attempt)); err != nil {
				return nil, err
			}
		}
		actx, cancel := context.WithTimeout(ctx, p.AttemptTimeout)
		conn, err := DialViaRelay(actx, c.cfg.Dial, c.cfg.RelayAddr, target)
		cancel()
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("relay: %d attempts to %s failed: %w",
		p.MaxAttempts, c.cfg.RelayAddr, lastErr)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
