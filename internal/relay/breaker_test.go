package relay

// Circuit-breaker behavior: an explicit shed or a run of dial failures must
// open the breaker, an open breaker must fail fast without touching the
// network, and a half-open probe must be the only dial that tests recovery.
// The final test hammers health flaps and concurrent dials together — the
// interleaving that only the race detector can audit.

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"incastproxy/internal/cliutil"
	"incastproxy/internal/control"
	"incastproxy/internal/lan"
)

// countingDialer wraps a fabric dialer and counts invocations, so tests can
// prove a breaker-open dial never reached the network.
func countingDialer(f *lan.Fabric, from lan.Addr) (func(context.Context, string, string) (net.Conn, error), *atomic.Int64) {
	inner := f.Dialer(from)
	var calls atomic.Int64
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		calls.Add(1)
		return inner(ctx, network, addr)
	}, &calls
}

func TestBreakerOpensOnBusyShed(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	defer sinkL.Close()
	echoServer(t, sinkL)
	relayL, _ := f.Listen("relay")
	srv := New(Config{Dial: f.Dialer("relay"), MaxConns: 1})
	go srv.Serve(relayL)
	defer srv.Close()

	// Occupy the only admission slot.
	held, err := DialViaRelay(context.Background(), f.Dialer("other"), "relay", "sink")
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()

	dial, calls := countingDialer(f, "client")
	est := control.NewPathEstimator("relay", 0)
	c := NewClient(ClientConfig{
		Dial:          dial,
		RelayAddr:     "relay",
		Policy:        fastPolicy(),
		PathEstimator: est,
	})
	defer c.Close()

	// One BUSY is authoritative: the breaker opens immediately, with no
	// retries (a shed is an answer, not a fault).
	_, err = c.DialTarget(context.Background(), "sink")
	if !errors.Is(err, ErrRelayBusy) {
		t.Fatalf("err = %v, want ErrRelayBusy", err)
	}
	if got := c.Breaker(); got != BreakerOpen {
		t.Fatalf("breaker = %v after shed, want open", got)
	}
	if c.Metrics.BreakerOpens.Load() != 1 || c.Metrics.BusySheds.Load() != 1 {
		t.Fatalf("opens=%d sheds=%d, want 1/1",
			c.Metrics.BreakerOpens.Load(), c.Metrics.BusySheds.Load())
	}
	if r := c.Metrics.DialRetries.Load(); r != 0 {
		t.Fatalf("retries = %d after an explicit shed, want 0", r)
	}
	// Shedding is overload, not unreachability: health stays up, and the
	// estimator's busy axis (not its loss axis) carries the signal.
	if !c.Healthy() {
		t.Fatal("BUSY flipped the reachability health bit")
	}
	if est.BusyRate() == 0 {
		t.Fatal("shed never reached the estimator's busy signal")
	}

	// While open, dials fail fast without touching the network.
	before := calls.Load()
	_, err = c.DialTarget(context.Background(), "sink")
	if !errors.Is(err, ErrRelayUnavailable) {
		t.Fatalf("breaker-open dial: err = %v, want ErrRelayUnavailable", err)
	}
	if calls.Load() != before {
		t.Fatal("breaker-open dial touched the network")
	}
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	f := lan.NewFabric(lan.PipeConfig{})
	// No relay listening at all: every attempt is a transport failure.
	dial, calls := countingDialer(f, "client")
	c := NewClient(ClientConfig{
		Dial:      dial,
		RelayAddr: "relay",
		Policy:    fastPolicy(),
		Breaker:   BreakerPolicy{FailureThreshold: 2, OpenTimeout: time.Hour},
	})
	defer c.Close()

	for i := 0; i < 2; i++ {
		if _, err := c.DialTarget(context.Background(), "sink"); err == nil {
			t.Fatal("dead relay dial succeeded")
		}
	}
	if got := c.Breaker(); got != BreakerOpen {
		t.Fatalf("breaker = %v after %d failed dials, want open", got, 2)
	}
	before := calls.Load()
	if _, err := c.DialTarget(context.Background(), "sink"); !errors.Is(err, ErrRelayUnavailable) {
		t.Fatalf("err = %v, want ErrRelayUnavailable", err)
	}
	if calls.Load() != before {
		t.Fatal("breaker-open dial touched the network")
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	defer sinkL.Close()
	echoServer(t, sinkL)
	relayL, _ := f.Listen("relay")
	srv := New(Config{Dial: f.Dialer("relay"), MaxConns: 1})
	go srv.Serve(relayL)
	defer srv.Close()

	held, err := DialViaRelay(context.Background(), f.Dialer("other"), "relay", "sink")
	if err != nil {
		t.Fatal(err)
	}

	c := NewClient(ClientConfig{
		Dial:      f.Dialer("client"),
		RelayAddr: "relay",
		Policy:    fastPolicy(),
		Breaker:   BreakerPolicy{OpenTimeout: 10 * time.Millisecond},
	})
	defer c.Close()

	if _, err := c.DialTarget(context.Background(), "sink"); !errors.Is(err, ErrRelayBusy) {
		t.Fatalf("err = %v, want ErrRelayBusy", err)
	}
	if c.Breaker() != BreakerOpen {
		t.Fatalf("breaker = %v, want open", c.Breaker())
	}

	// Capacity returns; after the cool-down the next dial is the half-open
	// probe and its success closes the breaker.
	held.Close()
	if !cliutil.WaitUntil(5*time.Second, time.Millisecond, func() bool {
		return srv.ActiveSplices() == 0
	}) {
		t.Fatal("slot never freed")
	}
	var conn net.Conn
	if !cliutil.WaitUntil(5*time.Second, 2*time.Millisecond, func() bool {
		var derr error
		conn, derr = c.DialTarget(context.Background(), "sink")
		return derr == nil
	}) {
		t.Fatalf("breaker never recovered; state = %v", c.Breaker())
	}
	conn.Close()
	if got := c.Breaker(); got != BreakerClosed {
		t.Fatalf("breaker = %v after successful probe, want closed", got)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	defer sinkL.Close()
	echoServer(t, sinkL)
	relayL, _ := f.Listen("relay")
	srv := New(Config{Dial: f.Dialer("relay"), MaxConns: 1})
	go srv.Serve(relayL)
	defer srv.Close()

	held, err := DialViaRelay(context.Background(), f.Dialer("other"), "relay", "sink")
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()

	c := NewClient(ClientConfig{
		Dial:      f.Dialer("client"),
		RelayAddr: "relay",
		Policy:    fastPolicy(),
		Breaker:   BreakerPolicy{FailureThreshold: 100, OpenTimeout: 10 * time.Millisecond},
	})
	defer c.Close()

	if _, err := c.DialTarget(context.Background(), "sink"); !errors.Is(err, ErrRelayBusy) {
		t.Fatalf("err = %v, want ErrRelayBusy", err)
	}
	time.Sleep(15 * time.Millisecond)
	// Still at capacity: the half-open probe is shed too, and a failed
	// probe re-opens immediately regardless of the failure threshold.
	if _, err := c.DialTarget(context.Background(), "sink"); !errors.Is(err, ErrRelayBusy) {
		t.Fatalf("probe err = %v, want ErrRelayBusy", err)
	}
	if got := c.Breaker(); got != BreakerOpen {
		t.Fatalf("breaker = %v after failed probe, want open", got)
	}
	if opens := c.Metrics.BreakerOpens.Load(); opens != 2 {
		t.Fatalf("breaker opens = %d, want 2", opens)
	}
}

func TestBreakerDisabled(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	f := lan.NewFabric(lan.PipeConfig{})
	dial, calls := countingDialer(f, "client")
	c := NewClient(ClientConfig{
		Dial:      dial,
		RelayAddr: "relay",
		Policy:    fastPolicy(),
		Breaker:   BreakerPolicy{FailureThreshold: -1},
	})
	defer c.Close()

	// Many consecutive failures, yet every dial still reaches the network.
	for i := 0; i < 4; i++ {
		before := calls.Load()
		if _, err := c.DialTarget(context.Background(), "sink"); err == nil {
			t.Fatal("dead relay dial succeeded")
		}
		if calls.Load() == before {
			t.Fatalf("dial %d short-circuited with the breaker disabled", i)
		}
	}
	if got := c.Breaker(); got != BreakerClosed {
		t.Fatalf("disabled breaker moved to %v", got)
	}
}

func TestClientConcurrentDialsSurviveHealthFlaps(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	defer sinkL.Close()
	echoServer(t, sinkL)

	c := NewClient(ClientConfig{
		Dial:           f.Dialer("client"),
		RelayAddr:      "relay",
		Policy:         fastPolicy(),
		Breaker:        BreakerPolicy{FailureThreshold: 2, OpenTimeout: 2 * time.Millisecond},
		FallbackDirect: true,
		HealthInterval: time.Millisecond,
		PathEstimator:  control.NewPathEstimator("relay", 0),
	})
	defer c.Close()

	// The relay flaps: up briefly, down briefly, repeatedly — racing the
	// health loop, the breaker's open/half-open transitions, and a pile of
	// concurrent dials. Every dial must still complete (fallback guarantees
	// a path); the race detector audits the interleavings.
	stopFlap := make(chan struct{})
	flapDone := make(chan struct{})
	go func() {
		defer close(flapDone)
		for {
			select {
			case <-stopFlap:
				return
			default:
			}
			relayL, err := f.Listen("relay")
			if err == nil {
				srv := New(Config{Dial: f.Dialer("relay"), MaxConns: 4})
				go srv.Serve(relayL)
				time.Sleep(5 * time.Millisecond)
				srv.Close()
				relayL.Close()
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	const workers = 8
	const dialsPer = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < dialsPer; i++ {
				conn, err := c.DialTarget(context.Background(), "sink")
				if err != nil {
					t.Errorf("dial with fallback failed: %v", err)
					return
				}
				conn.Write([]byte("x"))
				conn.Close()
			}
		}()
	}
	wg.Wait()
	close(stopFlap)
	<-flapDone
}
