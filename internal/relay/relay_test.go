package relay

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"incastproxy/internal/cliutil"
	"incastproxy/internal/lan"
	"incastproxy/internal/wire"
)

// echoServer accepts connections and echoes everything back.
func echoServer(t testing.TB, l net.Listener) {
	t.Helper()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
}

// sinkServer accepts connections and counts received bytes per conn.
func sinkServer(t testing.TB, l net.Listener, got chan<- int64) {
	t.Helper()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				n, _ := io.Copy(io.Discard, c)
				got <- n
			}()
		}
	}()
}

func TestRelayOverRealTCP(t *testing.T) {
	// Target echo server on localhost.
	tl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	echoServer(t, tl)

	// Relay on localhost.
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{})
	go srv.Serve(rl)
	defer srv.Close()

	c, err := DialViaRelay(context.Background(), nil, rl.Addr().String(), tl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	msg := bytes.Repeat([]byte("relay-me."), 1000)
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("echo mismatch through relay")
	}
	if srv.Metrics.AcceptedConns.Load() != 1 {
		t.Fatalf("accepted = %d", srv.Metrics.AcceptedConns.Load())
	}
}

func TestRelayOverEmulatedWAN(t *testing.T) {
	// DC0 hosts the client and the relay; DC1 hosts the sink. Cross-DC
	// paths carry 20ms one-way latency.
	f := lan.NewFabric(lan.PipeConfig{})
	f.SetPathFunc(func(from, to lan.Addr) lan.PipeConfig {
		crossDC := (len(from) > 2 && len(to) > 2) && from[:3] != to[:3]
		if crossDC {
			return lan.PipeConfig{Latency: 20 * time.Millisecond}
		}
		return lan.PipeConfig{Latency: 50 * time.Microsecond}
	})

	sinkL, err := f.Listen("dc1/sink")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int64, 1)
	sinkServer(t, sinkL, got)

	relayL, err := f.Listen("dc0/relay")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Dial: f.Dialer("dc0/relay")})
	go srv.Serve(relayL)
	defer srv.Close()

	c, err := DialViaRelay(context.Background(), f.Dialer("dc0/client"), "dc0/relay", "dc1/sink")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 100_000)
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	if cw, ok := c.(interface{ CloseWrite() error }); ok {
		cw.CloseWrite()
	}
	select {
	case n := <-got:
		if n != int64(len(payload)) {
			t.Fatalf("sink got %d, want %d", n, len(payload))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sink never finished")
	}
	if srv.Metrics.BytesUpstream.Load() != uint64(len(payload)) {
		t.Fatalf("upstream bytes = %d", srv.Metrics.BytesUpstream.Load())
	}
	c.Close()
}

func TestRelayDialErrorPropagates(t *testing.T) {
	f := lan.NewFabric(lan.PipeConfig{})
	relayL, _ := f.Listen("relay")
	srv := New(Config{Dial: f.Dialer("relay")})
	go srv.Serve(relayL)
	defer srv.Close()

	_, err := DialViaRelay(context.Background(), f.Dialer("client"), "relay", "missing-target")
	if err == nil {
		t.Fatal("dial to missing target must fail")
	}
	if srv.Metrics.DialErrors.Load() != 1 {
		t.Fatalf("dial errors = %d", srv.Metrics.DialErrors.Load())
	}
}

func TestRelayPolicyRefusal(t *testing.T) {
	f := lan.NewFabric(lan.PipeConfig{})
	f.Listen("secret")
	relayL, _ := f.Listen("relay")
	srv := New(Config{
		Dial:        f.Dialer("relay"),
		AllowTarget: func(addr string) bool { return addr != "secret" },
	})
	go srv.Serve(relayL)
	defer srv.Close()

	if _, err := DialViaRelay(context.Background(), f.Dialer("client"), "relay", "secret"); err == nil {
		t.Fatal("policy-refused target must fail")
	}
}

func TestRelayBadPreamble(t *testing.T) {
	f := lan.NewFabric(lan.PipeConfig{})
	relayL, _ := f.Listen("relay")
	srv := New(Config{Dial: f.Dialer("relay")})
	go srv.Serve(relayL)
	defer srv.Close()

	c, err := f.Dial("client", "relay")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Send a DATA header instead of DIAL.
	c.Write(wire.Marshal(wire.Header{Kind: wire.KindData, Length: 4}))
	hdr := make([]byte, wire.HeaderSize)
	if _, err := io.ReadFull(c, hdr); err != nil {
		t.Fatal(err)
	}
	h, err := wire.Parse(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind != wire.KindError {
		t.Fatalf("kind = %v, want ERROR", h.Kind)
	}
}

func TestRelaySlowPreambleTimedOut(t *testing.T) {
	// A client sending a partial preamble and then going silent must not
	// hold a handler goroutine forever (slowloris on the accept path).
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{PreambleTimeout: 50 * time.Millisecond})
	go srv.Serve(rl)
	defer srv.Close()

	c, err := net.Dial("tcp", rl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// One byte short of a header, then silence.
	c.Write(make([]byte, wire.HeaderSize-1))

	// The relay must give up and tear the connection down: our read ends
	// with a KindError frame or a plain close, promptly.
	done := make(chan struct{})
	go func() {
		io.Copy(io.Discard, c)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("relay kept the half-preamble connection open")
	}
	if !cliutil.WaitUntil(5*time.Second, time.Millisecond, func() bool {
		return srv.Metrics.ActiveConns.Load() == 0
	}) {
		t.Fatalf("handler leaked: active = %d", srv.Metrics.ActiveConns.Load())
	}
}

func TestRelayConcurrentConnections(t *testing.T) {
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	got := make(chan int64, 32)
	sinkServer(t, sinkL, got)
	relayL, _ := f.Listen("relay")
	srv := New(Config{Dial: f.Dialer("relay")})
	go srv.Serve(relayL)
	defer srv.Close()

	const conns = 16
	const per = 10_000
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialViaRelay(context.Background(),
				f.Dialer(lan.Addr(fmt.Sprintf("client%d", i))), "relay", "sink")
			if err != nil {
				t.Error(err)
				return
			}
			c.Write(make([]byte, per))
			c.(interface{ CloseWrite() error }).CloseWrite()
			c.Close()
		}(i)
	}
	wg.Wait()
	var total int64
	for i := 0; i < conns; i++ {
		select {
		case n := <-got:
			total += n
		case <-time.After(10 * time.Second):
			t.Fatal("missing sink completion")
		}
	}
	if total != conns*per {
		t.Fatalf("total = %d, want %d", total, conns*per)
	}
	if srv.Metrics.AcceptedConns.Load() != conns {
		t.Fatalf("accepted = %d", srv.Metrics.AcceptedConns.Load())
	}
	// The handler's deferred ActiveConns decrement races the sink's byte
	// count: poll instead of asserting instantly.
	if !cliutil.WaitUntil(5*time.Second, time.Millisecond, func() bool {
		return srv.Metrics.ActiveConns.Load() == 0
	}) {
		t.Fatalf("active = %d after drain", srv.Metrics.ActiveConns.Load())
	}
}

func TestRelayCloseUnblocksEverything(t *testing.T) {
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	echoServer(t, sinkL)
	relayL, _ := f.Listen("relay")
	srv := New(Config{Dial: f.Dialer("relay")})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(relayL) }()

	c, err := DialViaRelay(context.Background(), f.Dialer("client"), "relay", "sink")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveDone:
		if err != net.ErrClosed {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	// Idempotent close.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDialViaRelayConnectError(t *testing.T) {
	f := lan.NewFabric(lan.PipeConfig{})
	if _, err := DialViaRelay(context.Background(), f.Dialer("c"), "nobody", "x"); err == nil {
		t.Fatal("dialing a missing relay must fail")
	}
}
