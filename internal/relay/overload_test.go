package relay

// Overload-protection behavior of the live relay server: admission sheds
// must be fast and explicit (a BUSY/GOING_AWAY frame, never a hang), drains
// must be brownouts (established splices finish while new dials are turned
// away), and deadlines must reclaim what stalled peers would otherwise pin
// — without ever tearing down a splice that is busy in only one direction.

import (
	"context"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"incastproxy/internal/cliutil"
	"incastproxy/internal/lan"
)

func TestRelayShedsOverMaxConns(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	defer sinkL.Close()
	echoServer(t, sinkL)
	relayL, _ := f.Listen("relay")
	srv := New(Config{Dial: f.Dialer("relay"), MaxConns: 2})
	go srv.Serve(relayL)
	defer srv.Close()

	// Fill both admission slots with live splices.
	var held []net.Conn
	for i := 0; i < 2; i++ {
		c, err := DialViaRelay(context.Background(), f.Dialer("client"), "relay", "sink")
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, c)
	}
	// The third dial must get an explicit BUSY, promptly.
	start := time.Now()
	_, err := DialViaRelay(context.Background(), f.Dialer("client"), "relay", "sink")
	if !errors.Is(err, ErrRelayBusy) {
		t.Fatalf("over-cap dial: err = %v, want ErrRelayBusy", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("BUSY verdict took %v; sheds must be fast", d)
	}
	if srv.Metrics.ShedBusy.Load() != 1 {
		t.Fatalf("shed busy = %d, want 1", srv.Metrics.ShedBusy.Load())
	}

	// Brownout, not blackout: the established splices were untouched.
	for _, c := range held {
		if _, err := c.Write([]byte("ping")); err != nil {
			t.Fatalf("established splice broken by shed: %v", err)
		}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Fatalf("established splice broken by shed: %v", err)
		}
	}

	// Releasing a slot re-opens admission.
	held[0].Close()
	if !cliutil.WaitUntil(5*time.Second, time.Millisecond, func() bool {
		return srv.ActiveSplices() < 2
	}) {
		t.Fatalf("splice slot never released: active = %d", srv.ActiveSplices())
	}
	c, err := DialViaRelay(context.Background(), f.Dialer("client"), "relay", "sink")
	if err != nil {
		t.Fatalf("dial after slot release: %v", err)
	}
	c.Close()
	held[1].Close()
	srv.Close()
}

func TestRelayAcceptRateShed(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	defer sinkL.Close()
	echoServer(t, sinkL)
	relayL, _ := f.Listen("relay")
	// One token, refilled far too slowly to matter within the test.
	srv := New(Config{Dial: f.Dialer("relay"), AcceptRate: 0.001, AcceptBurst: 1})
	go srv.Serve(relayL)
	defer srv.Close()

	c, err := DialViaRelay(context.Background(), f.Dialer("client"), "relay", "sink")
	if err != nil {
		t.Fatalf("first dial (one token banked): %v", err)
	}
	defer c.Close()
	if _, err := DialViaRelay(context.Background(), f.Dialer("client"), "relay", "sink"); !errors.Is(err, ErrRelayBusy) {
		t.Fatalf("bucket-empty dial: err = %v, want ErrRelayBusy", err)
	}
	if srv.Metrics.ShedBusy.Load() != 1 {
		t.Fatalf("shed busy = %d, want 1", srv.Metrics.ShedBusy.Load())
	}
	c.Close()
	srv.Close()
}

func TestRelayGracefulDrain(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	defer sinkL.Close()
	echoServer(t, sinkL)
	relayL, _ := f.Listen("relay")
	srv := New(Config{Dial: f.Dialer("relay")})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(relayL) }()

	held, err := DialViaRelay(context.Background(), f.Dialer("client"), "relay", "sink")
	if err != nil {
		t.Fatal(err)
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(10 * time.Second) }()
	if !cliutil.WaitUntil(5*time.Second, time.Millisecond, func() bool {
		return srv.State() == StateDraining
	}) {
		t.Fatal("server never entered draining")
	}

	// New dials are shed with GOING_AWAY while the drain is in progress...
	if _, err := DialViaRelay(context.Background(), f.Dialer("client"), "relay", "sink"); !errors.Is(err, ErrRelayDraining) {
		t.Fatalf("dial during drain: err = %v, want ErrRelayDraining", err)
	}
	if srv.Metrics.ShedGoingAway.Load() != 1 {
		t.Fatalf("shed goingaway = %d, want 1", srv.Metrics.ShedGoingAway.Load())
	}

	// ...while the established splice keeps working.
	if _, err := held.Write([]byte("ping")); err != nil {
		t.Fatalf("draining relay broke a live splice: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(held, buf); err != nil {
		t.Fatalf("draining relay broke a live splice: %v", err)
	}

	// Finishing the splice completes the drain cleanly.
	held.Close()
	select {
	case err := <-drainDone:
		if err != nil {
			t.Fatalf("clean drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed after last splice ended")
	}
	if srv.State() != StateClosed {
		t.Fatalf("state after drain = %d, want closed", srv.State())
	}
	select {
	case err := <-serveDone:
		if err != net.ErrClosed {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

func TestRelayDrainTimeoutHardCloses(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	defer sinkL.Close()
	echoServer(t, sinkL)
	relayL, _ := f.Listen("relay")
	srv := New(Config{Dial: f.Dialer("relay")})
	go srv.Serve(relayL)

	held, err := DialViaRelay(context.Background(), f.Dialer("client"), "relay", "sink")
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()

	// The splice is never finished: the drain must hit its deadline,
	// hard-close it, and say so.
	if err := srv.Drain(50 * time.Millisecond); !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("drain with a stuck splice: err = %v, want ErrDrainTimeout", err)
	}
	if srv.State() != StateClosed {
		t.Fatalf("state after timed-out drain = %d, want closed", srv.State())
	}
	// The stuck splice was forcibly torn down: our end reads EOF/error.
	held.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := held.Read(make([]byte, 1)); err == nil {
		t.Fatal("splice survived a timed-out drain")
	}
}

func TestRelayIdleSpliceClosed(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	defer sinkL.Close()
	echoServer(t, sinkL)
	relayL, _ := f.Listen("relay")
	srv := New(Config{Dial: f.Dialer("relay"), IdleTimeout: 50 * time.Millisecond})
	go srv.Serve(relayL)
	defer srv.Close()

	c, err := DialViaRelay(context.Background(), f.Dialer("client"), "relay", "sink")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Say nothing. The relay must reclaim the splice, not pin two
	// goroutines and a buffer on a peer that went quiet.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle splice was never torn down")
	}
	if !cliutil.WaitUntil(5*time.Second, time.Millisecond, func() bool {
		return srv.Metrics.IdleClosed.Load() == 1 && srv.ActiveSplices() == 0
	}) {
		t.Fatalf("idle teardown not recorded: idleClosed=%d active=%d",
			srv.Metrics.IdleClosed.Load(), srv.ActiveSplices())
	}
}

func TestRelayOneWayTrafficSurvivesIdleDeadline(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	defer sinkL.Close()
	got := make(chan int64, 1)
	sinkServer(t, sinkL, got)
	relayL, _ := f.Listen("relay")
	srv := New(Config{Dial: f.Dialer("relay"), IdleTimeout: 60 * time.Millisecond})
	go srv.Serve(relayL)
	defer srv.Close()

	c, err := DialViaRelay(context.Background(), f.Dialer("client"), "relay", "sink")
	if err != nil {
		t.Fatal(err)
	}
	// A one-way bulk transfer: the sink never sends anything back, so the
	// downstream direction sees zero bytes for far longer than IdleTimeout.
	// Upstream progress must keep the whole splice alive.
	var sent int64
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		n, err := c.Write(make([]byte, 1024))
		if err != nil {
			t.Fatalf("one-way splice killed mid-transfer: %v", err)
		}
		sent += int64(n)
		time.Sleep(10 * time.Millisecond)
	}
	c.(interface{ CloseWrite() error }).CloseWrite()
	select {
	case n := <-got:
		if n != sent {
			t.Fatalf("sink got %d, sent %d", n, sent)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sink never finished")
	}
	if srv.Metrics.IdleClosed.Load() != 0 {
		t.Fatalf("idle teardown fired on a busy one-way splice (%d)",
			srv.Metrics.IdleClosed.Load())
	}
	c.Close()
	srv.Close()
}

// tempAcceptErr is the EMFILE-class transient accept failure: a net.Error
// that is Temporary but not a Timeout.
type tempAcceptErr struct{}

func (tempAcceptErr) Error() string   { return "accept: resource temporarily unavailable" }
func (tempAcceptErr) Timeout() bool   { return false }
func (tempAcceptErr) Temporary() bool { return true }

// flakyListener fails its first n Accepts with tempAcceptErr.
type flakyListener struct {
	net.Listener
	remaining atomic.Int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.remaining.Add(-1) >= 0 {
		return nil, tempAcceptErr{}
	}
	return l.Listener.Accept()
}

func TestRelayServeRetriesTemporaryAcceptErrors(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	defer sinkL.Close()
	echoServer(t, sinkL)
	relayL, _ := f.Listen("relay")
	fl := &flakyListener{Listener: relayL}
	fl.remaining.Store(3)
	srv := New(Config{Dial: f.Dialer("relay")})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(fl) }()
	defer srv.Close()

	// Serve must ride out the transient failures and still answer dials.
	c, err := DialViaRelay(context.Background(), f.Dialer("client"), "relay", "sink")
	if err != nil {
		t.Fatalf("dial after transient accept errors: %v", err)
	}
	c.Close()
	if got := srv.Metrics.AcceptRetries.Load(); got != 3 {
		t.Fatalf("accept retries = %d, want 3", got)
	}
	select {
	case err := <-serveDone:
		t.Fatalf("Serve exited on a temporary accept error: %v", err)
	default:
	}
	srv.Close()
	if err := <-serveDone; err != net.ErrClosed {
		t.Fatalf("Serve returned %v", err)
	}
}
