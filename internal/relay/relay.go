// Package relay implements the naive proxy design (§3, §5) over real
// net.Conn transports: a connection-splitting relay deployed in the sending
// datacenter. Each client connection carries a wire-format dial preamble
// naming the remote target; the relay opens its own connection to the
// target and splices bytes in both directions.
//
// Splitting the connection is what shortens the feedback loop: the
// client's transport control loop (kernel TCP in a real deployment, the
// lan emulation in tests) terminates at the relay, microseconds away,
// instead of at the remote receiver, milliseconds away.
//
// The relay is only a win while it is not itself the bottleneck, so the
// server defends itself under exactly the incast bursts it is deployed to
// absorb: admission control (max concurrent connections plus a token-bucket
// accept rate) sheds excess dials with a fast BUSY wire frame before any
// work is done for them; per-splice idle and lifetime deadlines reclaim
// goroutines pinned by stalled peers; and Drain performs a graceful
// shutdown — established splices finish, new dials get GOING_AWAY — with a
// hard deadline. Shedding new dials always comes before disturbing
// established splices: a brownout, not a blackout.
package relay

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"incastproxy/internal/obs"
	"incastproxy/internal/units"
	"incastproxy/internal/wire"
)

// Metrics exposes the relay's runtime counters. The fields are registry
// instruments (atomically updated, safe to read concurrently) and keep the
// Load/Add accessors of the atomic fields they replaced, so existing callers
// compile unchanged; with a registry attached the same values also appear in
// snapshots under relay_* names.
type Metrics struct {
	AcceptedConns *obs.Counter
	ActiveConns   *obs.Gauge
	DialErrors    *obs.Counter
	BytesUpstream *obs.Counter // client -> target
	BytesDownstr  *obs.Counter // target -> client

	// Overload-protection counters (see Config.MaxConns/AcceptRate and
	// Server.Drain).
	ShedBusy      *obs.Counter // dials refused with BUSY (admission)
	ShedGoingAway *obs.Counter // dials refused with GOING_AWAY (drain)
	AcceptRetries *obs.Counter // temporary accept errors retried
	IdleClosed    *obs.Counter // splices torn down by the idle deadline
	State         *obs.Gauge   // 0 serving, 1 draining, 2 closed

	// Client-side resilience counters (see Client).
	DialRetries  *obs.Counter // relay dial attempts beyond the first
	Fallbacks    *obs.Counter // flows degraded to the direct path
	HealthFlaps  *obs.Counter // healthy <-> unhealthy transitions
	BreakerOpens *obs.Counter // circuit breaker closed/half-open -> open
	BreakerState *obs.Gauge   // 0 closed, 1 open, 2 half-open
	BusySheds    *obs.Counter // dials the relay answered with BUSY/GOING_AWAY

	// Sliding-window latency quantiles (p50/p99/p999 on /metrics).
	SpliceDurationUS *obs.WindowQuantile // server: admitted splice lifetime
	DialDurationUS   *obs.WindowQuantile // client: dial-to-verdict latency
}

// NewMetrics builds the instrument set, registered under prefix_* when reg
// is non-nil, standalone otherwise.
func NewMetrics(reg *obs.Registry, prefix string) Metrics {
	if reg == nil {
		return Metrics{
			AcceptedConns: &obs.Counter{},
			ActiveConns:   &obs.Gauge{},
			DialErrors:    &obs.Counter{},
			BytesUpstream: &obs.Counter{},
			BytesDownstr:  &obs.Counter{},
			ShedBusy:      &obs.Counter{},
			ShedGoingAway: &obs.Counter{},
			AcceptRetries: &obs.Counter{},
			IdleClosed:    &obs.Counter{},
			State:         &obs.Gauge{},
			DialRetries:   &obs.Counter{},
			Fallbacks:     &obs.Counter{},
			HealthFlaps:   &obs.Counter{},
			BreakerOpens:  &obs.Counter{},
			BreakerState:  &obs.Gauge{},
			BusySheds:     &obs.Counter{},

			SpliceDurationUS: obs.NewWindowQuantile(0, obs.DefaultWindowSize),
			DialDurationUS:   obs.NewWindowQuantile(0, obs.DefaultWindowSize),
		}
	}
	return Metrics{
		AcceptedConns: reg.Counter(prefix + "_accepted_conns_total"),
		ActiveConns:   reg.Gauge(prefix + "_active_conns"),
		DialErrors:    reg.Counter(prefix + "_dial_errors_total"),
		BytesUpstream: reg.Counter(prefix + "_bytes_upstream_total"),
		BytesDownstr:  reg.Counter(prefix + "_bytes_downstream_total"),
		ShedBusy:      reg.Counter(prefix + "_shed_busy_total"),
		ShedGoingAway: reg.Counter(prefix + "_shed_goingaway_total"),
		AcceptRetries: reg.Counter(prefix + "_accept_retries_total"),
		IdleClosed:    reg.Counter(prefix + "_idle_closed_total"),
		State:         reg.Gauge(prefix + "_state"),
		DialRetries:   reg.Counter(prefix + "_dial_retries_total"),
		Fallbacks:     reg.Counter(prefix + "_fallbacks_total"),
		HealthFlaps:   reg.Counter(prefix + "_health_flaps_total"),
		BreakerOpens:  reg.Counter(prefix + "_breaker_opens_total"),
		BreakerState:  reg.Gauge(prefix + "_breaker_state"),
		BusySheds:     reg.Counter(prefix + "_busy_sheds_total"),

		SpliceDurationUS: reg.Window(prefix+"_splice_duration_us", 0, obs.DefaultWindowSize),
		DialDurationUS:   reg.Window(prefix+"_dial_duration_us", 0, obs.DefaultWindowSize),
	}
}

// Config parameterizes a relay Server.
type Config struct {
	// Dial opens connections to targets; defaults to a net.Dialer.
	// Tests and the examples inject lan fabric dialers here.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
	// BufBytes sizes each splice buffer (default 64 KiB).
	BufBytes int
	// AllowTarget, if set, filters dialable targets (return false to
	// refuse). Production deployments restrict the relay to the
	// receiver datacenter's address space.
	AllowTarget func(addr string) bool
	// DialTimeout bounds the relay's dial to the target (default 10s),
	// so a blackholed target surfaces as a prompt KindError to the
	// client instead of a silent hang.
	DialTimeout time.Duration
	// PreambleTimeout bounds how long a client may take to deliver its
	// dial preamble (default 10s). Without it a client that sends a
	// partial header holds a handler goroutine and connection slot
	// forever — a slowloris on the relay's accept path.
	PreambleTimeout time.Duration

	// MaxConns caps concurrently admitted relay connections; dials
	// arriving over the cap are shed with a BUSY frame before any target
	// dial or preamble read (0 = unlimited). This is the knob that keeps
	// the relay from melting under the very incast it absorbs: past the
	// cap, more splices only add queueing, and an explicit BUSY lets the
	// sender's breaker re-route instead of piling on.
	MaxConns int
	// AcceptRate, when positive, limits admissions to this many per
	// second via a token bucket of depth AcceptBurst; dials beyond the
	// budget are shed with BUSY. It smooths connection-setup bursts that
	// MaxConns alone would admit all at once.
	AcceptRate float64
	// AcceptBurst is the token-bucket depth (default 8 when AcceptRate is
	// set).
	AcceptBurst int
	// IdleTimeout tears down a splice when no bytes move in either
	// direction for this long (0 = no idle limit). A stalled peer
	// otherwise pins two goroutines and a buffer forever.
	IdleTimeout time.Duration
	// SpliceTimeout caps a splice's total lifetime regardless of
	// activity (0 = unlimited) — the byte-pump analogue of a request
	// deadline.
	SpliceTimeout time.Duration

	// Registry, if set, registers the server's Metrics under relay_*
	// names, so a -debug-addr endpoint can expose them.
	Registry *obs.Registry
	// Tracer, if set, records per-connection causal spans (relay.conn ->
	// relay.dial -> relay.splice, joined to the client's trace via the
	// context in the dial preamble) and shed/drain instant events. Create
	// it with obs.NewTracerWithClock so span timestamps are meaningful.
	Tracer *obs.Tracer
	// Logger, if set, receives structured per-connection log lines
	// (sheds, dial failures, drain progress) with trace IDs attached.
	// Nil disables logging.
	Logger *slog.Logger
}

// Server states (Metrics.State): the overload/degradation state machine is
// serving -> draining -> closed, with load-driven BUSY shedding a condition
// of serving rather than a state of its own.
const (
	StateServing int64 = iota
	StateDraining
	StateClosed
)

// Span derivation labels: SpanContext.Child keys for the relay-side spans
// of one flow. Distinct from clientSpanTransfer in chaosnet, so a flow's
// client- and server-side span IDs never collide.
const (
	spanLabelConn   int64 = 1
	spanLabelDial   int64 = 2
	spanLabelSplice int64 = 3
)

// Server is a relay instance. Create with New, run with Serve.
type Server struct {
	cfg     Config
	log     *slog.Logger
	Metrics Metrics

	mu       sync.Mutex
	state    int64
	listener net.Listener
	conns    map[net.Conn]struct{}
	active   int            // admitted splices in flight (MaxConns accounting)
	tokens   float64        // accept-rate bucket level
	lastFill time.Time      // last bucket refill
	wg       sync.WaitGroup // every conn goroutine: splices and shed writers
	inflight sync.WaitGroup // admitted splices only: what Drain waits for

	traceN atomic.Uint64 // server-rooted trace counter for untraced dials
}

// ErrTargetRefused reports a target rejected by AllowTarget.
var ErrTargetRefused = errors.New("relay: target refused by policy")

// ErrDrainTimeout reports a Drain that hit its deadline with splices still
// in flight; they were hard-closed.
var ErrDrainTimeout = errors.New("relay: drain deadline exceeded")

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	if cfg.Dial == nil {
		var d net.Dialer
		cfg.Dial = d.DialContext
	}
	if cfg.BufBytes <= 0 {
		cfg.BufBytes = 64 << 10
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.PreambleTimeout <= 0 {
		cfg.PreambleTimeout = 10 * time.Second
	}
	if cfg.AcceptRate > 0 && cfg.AcceptBurst <= 0 {
		cfg.AcceptBurst = 8
	}
	log := cfg.Logger
	if log == nil {
		// A handler whose level is unreachable: Enabled() is false for
		// every record, so disabled logging costs one branch, no formatting.
		log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
	}
	s := &Server{
		cfg:     cfg,
		log:     log,
		Metrics: NewMetrics(cfg.Registry, "relay"),
		conns:   make(map[net.Conn]struct{}),
		tokens:  float64(cfg.AcceptBurst),
	}
	s.Metrics.State.Set(StateServing)
	return s
}

// traceNow reads the tracer's injected clock (0 when untraced/clockless).
func (s *Server) traceNow() units.Time { return s.cfg.Tracer.Now() }

// Registry returns the registry the server's metrics are registered in
// (nil when Config.Registry was not set).
func (s *Server) Registry() *obs.Registry { return s.cfg.Registry }

// State returns the server's lifecycle state (StateServing, StateDraining,
// StateClosed).
func (s *Server) State() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// ActiveSplices returns the number of admitted splices in flight.
func (s *Server) ActiveSplices() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// acceptBackoff caps the retry delay for transient accept errors.
const (
	acceptBackoffBase = 5 * time.Millisecond
	acceptBackoffMax  = time.Second
)

// Serve accepts relay clients on l until Close or Drain completes (or a
// fatal accept error). Transient accept failures — EMFILE-class resource
// exhaustion, aborted handshakes, timeouts — are retried with capped
// backoff instead of tearing down the listener: running out of file
// descriptors for a moment must degrade, not kill, the relay.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.state == StateClosed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()
	var backoff time.Duration
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.state == StateClosed
			s.mu.Unlock()
			if closed {
				return net.ErrClosed
			}
			if retryableAccept(err) {
				if backoff == 0 {
					backoff = acceptBackoffBase
				} else if backoff *= 2; backoff > acceptBackoffMax {
					backoff = acceptBackoffMax
				}
				s.Metrics.AcceptRetries.Add(1)
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		s.Metrics.AcceptedConns.Add(1)
		admitted, verdict := s.admit(c)
		if !admitted {
			if verdict == 0 {
				// Closed while accepting: no shed goroutine was
				// started, just drop the conn.
				c.Close()
				return net.ErrClosed
			}
			// Sheds happen before the preamble read by design (no work
			// for refused dials), so no trace context exists server-side
			// yet: the shed is an untraced instant here, and the client
			// records the terminal shed event on its own dial span.
			if s.cfg.Tracer != nil {
				name := "relay.shed.busy"
				if verdict == wire.KindGoingAway {
					name = "relay.shed.goaway"
				}
				s.cfg.Tracer.Instant(s.traceNow(), "relay", name, 0)
			}
			s.log.Info("relay: shed dial", "verdict", verdict.String(), "remote", remoteAddr(c))
			continue
		}
		s.Metrics.ActiveConns.Add(1)
		admittedAt := s.traceNow()
		go func() {
			defer s.wg.Done()
			defer s.inflight.Done()
			defer s.release()
			defer s.Metrics.ActiveConns.Add(-1)
			defer s.untrack(c)
			s.handle(c, admittedAt)
		}()
	}
}

// remoteAddr renders a peer address for log lines, tolerating nil.
func remoteAddr(c net.Conn) string {
	if a := c.RemoteAddr(); a != nil {
		return a.String()
	}
	return "?"
}

// retryableAccept reports whether an accept error is transient: worth a
// capped-backoff retry rather than listener teardown. Covers deadline-style
// timeouts and the EMFILE/ECONNABORTED-class errors net.Error marks
// temporary (the deprecation of Temporary notwithstanding, it is exactly
// the accept-loop signal it was introduced for; net/http's Serve keeps the
// same check).
func retryableAccept(err error) bool {
	var ne net.Error
	if !errors.As(err, &ne) {
		return false
	}
	if ne.Timeout() {
		return true
	}
	type temporary interface{ Temporary() bool }
	var te temporary
	return errors.As(err, &te) && te.Temporary()
}

// admit decides one accepted connection's fate under the admission policy
// and current lifecycle state. It returns (true, 0) for an admitted
// connection — with the splice registered in every waitgroup/counter under
// the lock, so Drain's Wait can never race an Add — or (false, kind) for a
// shed one, spawning the shed writer itself. (false, 0) means the server
// closed mid-accept.
func (s *Server) admit(c net.Conn) (bool, wire.Kind) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case StateClosed:
		return false, 0
	case StateDraining:
		s.shedLocked(c, wire.KindGoingAway)
		return false, wire.KindGoingAway
	}
	if s.cfg.MaxConns > 0 && s.active >= s.cfg.MaxConns {
		s.shedLocked(c, wire.KindBusy)
		return false, wire.KindBusy
	}
	if s.cfg.AcceptRate > 0 && !s.takeTokenLocked() {
		s.shedLocked(c, wire.KindBusy)
		return false, wire.KindBusy
	}
	s.conns[c] = struct{}{}
	s.active++
	s.wg.Add(1)
	s.inflight.Add(1)
	return true, 0
}

// takeTokenLocked refills and draws from the accept-rate bucket.
func (s *Server) takeTokenLocked() bool {
	now := time.Now()
	if !s.lastFill.IsZero() {
		s.tokens += now.Sub(s.lastFill).Seconds() * s.cfg.AcceptRate
		if max := float64(s.cfg.AcceptBurst); s.tokens > max {
			s.tokens = max
		}
	}
	s.lastFill = now
	if s.tokens < 1 {
		return false
	}
	s.tokens--
	return true
}

// shedLocked spawns the fast-shed writer for a refused connection: one wire
// header, a short write deadline, close. The goroutine is tracked in s.wg
// (but not s.inflight — shed writers must not delay a drain) and the conn
// in s.conns so Close can cut a stalled shed write short.
func (s *Server) shedLocked(c net.Conn, kind wire.Kind) {
	if kind == wire.KindBusy {
		s.Metrics.ShedBusy.Add(1)
	} else {
		s.Metrics.ShedGoingAway.Add(1)
	}
	s.conns[c] = struct{}{}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.untrack(c)
		defer c.Close()
		c.SetDeadline(time.Now().Add(time.Second))
		if _, err := c.Write(wire.Marshal(wire.Header{Kind: kind})); err != nil {
			return
		}
		// Half-close, then drain the client's in-flight preamble before
		// the full close. Closing immediately races with the preamble
		// write the client is making right now: with the preamble unread,
		// a TCP close degrades to an RST that can destroy the verdict in
		// flight (and a lan-pipe close breaks the write outright), so the
		// client sees a generic transport error instead of the explicit
		// shed — and retries a dial this relay just refused. The drain is
		// bounded by the deadline above and the preamble's maximum size.
		if cw, ok := c.(interface{ CloseWrite() error }); ok {
			cw.CloseWrite()
		}
		io.Copy(io.Discard, io.LimitReader(c, wire.HeaderSize+wire.MaxTargetLen))
	}()
}

func (s *Server) release() {
	s.mu.Lock()
	s.active--
	s.mu.Unlock()
}

// Drain gracefully shuts the server down: new dials are shed with
// GOING_AWAY while established splices run to completion, for at most
// timeout; any splices still alive at the deadline are hard-closed and
// ErrDrainTimeout is returned. Either way the server is fully closed (and
// Serve has returned) when Drain returns; a clean drain returns nil.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.state == StateClosed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	if s.state == StateServing {
		s.state = StateDraining
		s.Metrics.State.Set(StateDraining)
	}
	s.mu.Unlock()
	s.cfg.Tracer.Instant(s.traceNow(), "relay", "relay.drain.begin", 0)
	s.log.Info("relay: drain begun", "timeout", timeout)

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var err error
	select {
	case <-done:
	case <-timer.C:
		err = ErrDrainTimeout
	}
	s.Close()
	if err != nil {
		s.cfg.Tracer.Instant(s.traceNow(), "relay", "relay.drain.timeout", 0)
		s.log.Warn("relay: drain deadline exceeded, splices hard-closed")
	} else {
		s.cfg.Tracer.Instant(s.traceNow(), "relay", "relay.drain.done", 0)
		s.log.Info("relay: drained cleanly")
	}
	return err
}

// Close stops accepting and closes every active connection, then waits for
// handlers to drain. It is the hard stop; use Drain for the graceful path.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.state == StateClosed {
		s.mu.Unlock()
		return nil
	}
	s.state = StateClosed
	s.Metrics.State.Set(StateClosed)
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// handle runs one relayed connection to completion. admittedAt is the
// admission timestamp on the tracer clock (0 when untraced), taken in the
// accept loop so the relay.conn span starts where the slot was claimed.
func (s *Server) handle(client net.Conn, admittedAt units.Time) {
	defer client.Close()
	client.SetReadDeadline(time.Now().Add(s.cfg.PreambleTimeout))
	d, err := readDial(client)
	if err != nil {
		s.log.Warn("relay: bad preamble", "remote", remoteAddr(client), "err", err)
		writeError(client, err)
		return
	}
	client.SetReadDeadline(time.Time{})

	// Join the client's trace: the preamble carried its span context, and
	// both sides derive the same child IDs from it (obs.SpanContext.Child).
	// A legacy dialer sends no context (TraceID 0); the relay then roots a
	// server-local trace so `relayd -trace` still yields one span tree per
	// flow even when no client cooperates.
	var conn *obs.Span
	parent := obs.SpanContext{Trace: d.TraceID, Span: d.SpanID}
	if s.cfg.Tracer != nil {
		if parent.Trace == 0 {
			parent = obs.NewSpanContext(int64(s.traceN.Add(1)), spanLabelConn)
		}
		conn = s.cfg.Tracer.StartSpan(admittedAt, "relay", "relay.conn", parent, spanLabelConn,
			obs.Arg{Key: "target", Val: d.Target})
	}
	s.log.Debug("relay: admitted", "remote", remoteAddr(client),
		"target", d.Target, "trace", obs.IDString(parent.Trace))

	if s.cfg.AllowTarget != nil && !s.cfg.AllowTarget(d.Target) {
		s.Metrics.DialErrors.Add(1)
		s.log.Warn("relay: target refused by policy", "target", d.Target, "trace", obs.IDString(parent.Trace))
		if conn != nil {
			conn.End(s.traceNow(), obs.Arg{Key: "outcome", Val: "refused"})
		}
		writeError(client, ErrTargetRefused)
		return
	}
	var td *obs.Span
	if conn != nil {
		td = conn.Child(s.traceNow(), "relay", "relay.dial", spanLabelDial)
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DialTimeout)
	remote, err := s.cfg.Dial(ctx, "tcp", d.Target)
	cancel()
	if err != nil {
		s.Metrics.DialErrors.Add(1)
		s.log.Warn("relay: target dial failed", "target", d.Target,
			"trace", obs.IDString(parent.Trace), "err", err)
		if conn != nil {
			td.End(s.traceNow(), obs.Arg{Key: "outcome", Val: "error"})
			conn.End(s.traceNow(), obs.Arg{Key: "outcome", Val: "dial-error"})
		}
		writeError(client, err)
		return
	}
	if conn != nil {
		td.End(s.traceNow(), obs.Arg{Key: "outcome", Val: "ok"})
	}
	defer remote.Close()
	if _, err := client.Write(wire.Marshal(wire.Header{Kind: wire.KindDialOK})); err != nil {
		if conn != nil {
			conn.End(s.traceNow(), obs.Arg{Key: "outcome", Val: "client-gone"})
		}
		return
	}
	var sp *obs.Span
	if conn != nil {
		sp = conn.Child(s.traceNow(), "relay", "relay.splice", spanLabelSplice)
	}
	start := time.Now()
	up, down := s.splice(client, remote)
	s.Metrics.SpliceDurationUS.Observe(s.traceNow(), time.Since(start).Microseconds())
	if conn != nil {
		now := s.traceNow()
		sp.End(now,
			obs.Arg{Key: "up_bytes", Val: fmt.Sprint(up)},
			obs.Arg{Key: "down_bytes", Val: fmt.Sprint(down)})
		conn.End(now, obs.Arg{Key: "outcome", Val: "ok"})
	}
	s.log.Debug("relay: splice done", "target", d.Target,
		"trace", obs.IDString(parent.Trace), "up_bytes", up, "down_bytes", down)
}

// spliceState is the deadline bookkeeping shared by a splice's two copy
// directions: one direction's progress keeps the other's idle clock from
// firing (a one-way bulk transfer is busy, not idle), and the teardown is
// counted once no matter which side trips it.
type spliceState struct {
	activity atomic.Int64 // UnixNano of the last byte moved, either direction
	lifetime time.Time    // absolute SpliceTimeout deadline (zero = none)
	timedOut atomic.Bool
}

// splice copies bytes both ways until both directions finish, returning
// the byte counts moved client->target (up) and target->client (down).
func (s *Server) splice(client, remote net.Conn) (up, down int64) {
	st := &spliceState{}
	st.activity.Store(time.Now().UnixNano())
	if s.cfg.SpliceTimeout > 0 {
		st.lifetime = time.Now().Add(s.cfg.SpliceTimeout)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		up = s.copyDirection(remote, client, st)
		s.Metrics.BytesUpstream.Add(uint64(up))
	}()
	go func() {
		defer wg.Done()
		down = s.copyDirection(client, remote, st)
		s.Metrics.BytesDownstr.Add(uint64(down))
	}()
	wg.Wait()
	return up, down
}

// copyDirection streams src->dst, half-closing dst when src ends, and fully
// closing both on error so the opposite direction unblocks. Reads and
// writes carry the splice's idle/lifetime deadline; a read that times out
// while the *other* direction is still moving bytes is re-armed, so only a
// splice idle in both directions (or past its lifetime) is torn down.
func (s *Server) copyDirection(dst, src net.Conn, st *spliceState) int64 {
	buf := make([]byte, s.cfg.BufBytes)
	var n int64
	for {
		if limit, ok := s.spliceDeadline(st); ok {
			src.SetReadDeadline(limit)
		}
		rn, rerr := src.Read(buf)
		if rn > 0 {
			st.activity.Store(time.Now().UnixNano())
			if limit, ok := s.spliceDeadline(st); ok {
				dst.SetWriteDeadline(limit)
			}
			wn, werr := dst.Write(buf[:rn])
			n += int64(wn)
			if werr != nil {
				if isDeadline(werr) {
					s.noteSpliceTimeout(st)
				}
				dst.Close()
				src.Close()
				return n
			}
			st.activity.Store(time.Now().UnixNano())
		}
		if rerr != nil {
			if isDeadline(rerr) {
				if s.stillLive(st) {
					continue // the other direction is active
				}
				s.noteSpliceTimeout(st)
				dst.Close()
				src.Close()
				return n
			}
			if errors.Is(rerr, io.EOF) {
				if cw, ok := dst.(interface{ CloseWrite() error }); ok {
					cw.CloseWrite()
				} else {
					dst.Close()
				}
			} else {
				dst.Close()
				src.Close()
			}
			return n
		}
	}
}

// spliceDeadline computes the next absolute I/O deadline for a splice: the
// earlier of "last activity + IdleTimeout" and the lifetime cap.
func (s *Server) spliceDeadline(st *spliceState) (time.Time, bool) {
	var limit time.Time
	if s.cfg.IdleTimeout > 0 {
		limit = time.Unix(0, st.activity.Load()).Add(s.cfg.IdleTimeout)
	}
	if !st.lifetime.IsZero() && (limit.IsZero() || st.lifetime.Before(limit)) {
		limit = st.lifetime
	}
	return limit, !limit.IsZero()
}

// stillLive reports whether a deadline-expired read should be re-armed:
// true while the splice saw activity within the idle window and is inside
// its lifetime.
func (s *Server) stillLive(st *spliceState) bool {
	now := time.Now()
	if !st.lifetime.IsZero() && !now.Before(st.lifetime) {
		return false
	}
	if s.cfg.IdleTimeout <= 0 {
		return true
	}
	return now.Before(time.Unix(0, st.activity.Load()).Add(s.cfg.IdleTimeout))
}

func (s *Server) noteSpliceTimeout(st *spliceState) {
	if st.timedOut.CompareAndSwap(false, true) {
		s.Metrics.IdleClosed.Add(1)
	}
}

// isDeadline reports a timeout-flavoured I/O error (os.ErrDeadlineExceeded
// on real sockets, the lan pipe's timeoutError in tests).
func isDeadline(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// readDial consumes the client's dial preamble (target + trace context).
// Malformed preambles (truncated, oversized, garbage) surface as the wire
// package's typed errors.
func readDial(c net.Conn) (wire.Dial, error) {
	d, err := wire.ReadDial(c)
	if err != nil {
		return wire.Dial{}, fmt.Errorf("relay: %w", err)
	}
	return d, nil
}

// writeError best-effort reports a failure to the client.
func writeError(c net.Conn, err error) {
	msg := []byte(err.Error())
	if len(msg) > 1024 {
		msg = msg[:1024]
	}
	buf := wire.AppendHeader(nil, wire.Header{Kind: wire.KindError, Length: uint32(len(msg))})
	_, _ = c.Write(append(buf, msg...)) // best-effort: the peer may already be gone
}

// DialViaRelay opens a client connection through the relay at relayAddr to
// target, performing the preamble handshake. The returned conn carries the
// end-to-end byte stream. A relay that sheds the dial surfaces as
// ErrRelayBusy (admission) or ErrRelayDraining (graceful shutdown) — both
// prompt, explicit verdicts the caller's breaker or fallback can act on.
func DialViaRelay(ctx context.Context,
	dial func(ctx context.Context, network, addr string) (net.Conn, error),
	relayAddr, target string) (net.Conn, error) {
	return DialViaRelaySpan(ctx, dial, relayAddr, target, obs.SpanContext{})
}

// DialViaRelaySpan is DialViaRelay with a span context attached: sc rides
// the dial preamble (header FlowID/Seq), so the relay's server-side spans
// join the caller's trace. A zero sc dials untraced.
func DialViaRelaySpan(ctx context.Context,
	dial func(ctx context.Context, network, addr string) (net.Conn, error),
	relayAddr, target string, sc obs.SpanContext) (net.Conn, error) {
	if dial == nil {
		var d net.Dialer
		dial = d.DialContext
	}
	c, err := dial(ctx, "tcp", relayAddr)
	if err != nil {
		return nil, err
	}
	// The context must bound the whole handshake, not just the dial: a
	// relay that accepts the connection and then dies (or a listener that
	// closed with this dial in its backlog) would otherwise hang the
	// response read forever.
	deadlined := false
	if dl, ok := ctx.Deadline(); ok {
		deadlined = c.SetDeadline(dl) == nil
	}
	pre, err := wire.AppendDial(nil, wire.Dial{Target: target, TraceID: sc.Trace, SpanID: sc.Span})
	if err != nil {
		c.Close()
		return nil, err
	}
	if _, err := c.Write(pre); err != nil {
		c.Close()
		return nil, err
	}
	hdr := make([]byte, wire.HeaderSize)
	if _, err := io.ReadFull(c, hdr); err != nil {
		c.Close()
		return nil, fmt.Errorf("relay: reading dial response: %w", err)
	}
	h, err := wire.Parse(hdr)
	if err != nil {
		c.Close()
		return nil, err
	}
	switch h.Kind {
	case wire.KindDialOK:
		if deadlined {
			c.SetDeadline(time.Time{})
		}
		return c, nil
	case wire.KindBusy:
		c.Close()
		return nil, ErrRelayBusy
	case wire.KindGoingAway:
		c.Close()
		return nil, ErrRelayDraining
	case wire.KindError:
		msg := make([]byte, h.Length)
		io.ReadFull(c, msg)
		c.Close()
		return nil, fmt.Errorf("relay: %s", msg)
	default:
		c.Close()
		return nil, fmt.Errorf("relay: unexpected response %v", h.Kind)
	}
}
