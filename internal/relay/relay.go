// Package relay implements the naive proxy design (§3, §5) over real
// net.Conn transports: a connection-splitting relay deployed in the sending
// datacenter. Each client connection carries a wire-format dial preamble
// naming the remote target; the relay opens its own connection to the
// target and splices bytes in both directions.
//
// Splitting the connection is what shortens the feedback loop: the
// client's transport control loop (kernel TCP in a real deployment, the
// lan emulation in tests) terminates at the relay, microseconds away,
// instead of at the remote receiver, milliseconds away.
package relay

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"incastproxy/internal/obs"
	"incastproxy/internal/wire"
)

// Metrics exposes the relay's runtime counters. The fields are registry
// instruments (atomically updated, safe to read concurrently) and keep the
// Load/Add accessors of the atomic fields they replaced, so existing callers
// compile unchanged; with a registry attached the same values also appear in
// snapshots under relay_* names.
type Metrics struct {
	AcceptedConns *obs.Counter
	ActiveConns   *obs.Gauge
	DialErrors    *obs.Counter
	BytesUpstream *obs.Counter // client -> target
	BytesDownstr  *obs.Counter // target -> client

	// Client-side resilience counters (see Client).
	DialRetries *obs.Counter // relay dial attempts beyond the first
	Fallbacks   *obs.Counter // flows degraded to the direct path
	HealthFlaps *obs.Counter // healthy <-> unhealthy transitions
}

// NewMetrics builds the instrument set, registered under prefix_* when reg
// is non-nil, standalone otherwise.
func NewMetrics(reg *obs.Registry, prefix string) Metrics {
	if reg == nil {
		return Metrics{
			AcceptedConns: &obs.Counter{},
			ActiveConns:   &obs.Gauge{},
			DialErrors:    &obs.Counter{},
			BytesUpstream: &obs.Counter{},
			BytesDownstr:  &obs.Counter{},
			DialRetries:   &obs.Counter{},
			Fallbacks:     &obs.Counter{},
			HealthFlaps:   &obs.Counter{},
		}
	}
	return Metrics{
		AcceptedConns: reg.Counter(prefix + "_accepted_conns_total"),
		ActiveConns:   reg.Gauge(prefix + "_active_conns"),
		DialErrors:    reg.Counter(prefix + "_dial_errors_total"),
		BytesUpstream: reg.Counter(prefix + "_bytes_upstream_total"),
		BytesDownstr:  reg.Counter(prefix + "_bytes_downstream_total"),
		DialRetries:   reg.Counter(prefix + "_dial_retries_total"),
		Fallbacks:     reg.Counter(prefix + "_fallbacks_total"),
		HealthFlaps:   reg.Counter(prefix + "_health_flaps_total"),
	}
}

// Config parameterizes a relay Server.
type Config struct {
	// Dial opens connections to targets; defaults to a net.Dialer.
	// Tests and the examples inject lan fabric dialers here.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
	// BufBytes sizes each splice buffer (default 64 KiB).
	BufBytes int
	// AllowTarget, if set, filters dialable targets (return false to
	// refuse). Production deployments restrict the relay to the
	// receiver datacenter's address space.
	AllowTarget func(addr string) bool
	// DialTimeout bounds the relay's dial to the target (default 10s),
	// so a blackholed target surfaces as a prompt KindError to the
	// client instead of a silent hang.
	DialTimeout time.Duration
	// PreambleTimeout bounds how long a client may take to deliver its
	// dial preamble (default 10s). Without it a client that sends a
	// partial header holds a handler goroutine and connection slot
	// forever — a slowloris on the relay's accept path.
	PreambleTimeout time.Duration
	// Registry, if set, registers the server's Metrics under relay_*
	// names, so a -debug-addr endpoint can expose them.
	Registry *obs.Registry
}

// Server is a relay instance. Create with New, run with Serve.
type Server struct {
	cfg     Config
	Metrics Metrics

	mu       sync.Mutex
	closed   bool
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
}

// ErrTargetRefused reports a target rejected by AllowTarget.
var ErrTargetRefused = errors.New("relay: target refused by policy")

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	if cfg.Dial == nil {
		var d net.Dialer
		cfg.Dial = d.DialContext
	}
	if cfg.BufBytes <= 0 {
		cfg.BufBytes = 64 << 10
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.PreambleTimeout <= 0 {
		cfg.PreambleTimeout = 10 * time.Second
	}
	return &Server{
		cfg:     cfg,
		Metrics: NewMetrics(cfg.Registry, "relay"),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Registry returns the registry the server's metrics are registered in
// (nil when Config.Registry was not set).
func (s *Server) Registry() *obs.Registry { return s.cfg.Registry }

// Serve accepts relay clients on l until Close (or a fatal accept error).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return net.ErrClosed
			}
			return err
		}
		if !s.track(c) {
			c.Close()
			return net.ErrClosed
		}
		s.Metrics.AcceptedConns.Add(1)
		s.Metrics.ActiveConns.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.Metrics.ActiveConns.Add(-1)
			defer s.untrack(c)
			s.handle(c)
		}()
	}
}

// Close stops accepting and closes every active connection, then waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// handle runs one relayed connection to completion.
func (s *Server) handle(client net.Conn) {
	defer client.Close()
	client.SetReadDeadline(time.Now().Add(s.cfg.PreambleTimeout))
	target, err := readDial(client)
	if err != nil {
		writeError(client, err)
		return
	}
	client.SetReadDeadline(time.Time{})
	if s.cfg.AllowTarget != nil && !s.cfg.AllowTarget(target) {
		s.Metrics.DialErrors.Add(1)
		writeError(client, ErrTargetRefused)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DialTimeout)
	remote, err := s.cfg.Dial(ctx, "tcp", target)
	cancel()
	if err != nil {
		s.Metrics.DialErrors.Add(1)
		writeError(client, err)
		return
	}
	defer remote.Close()
	if _, err := client.Write(wire.Marshal(wire.Header{Kind: wire.KindDialOK})); err != nil {
		return
	}
	s.splice(client, remote)
}

// splice copies bytes both ways until both directions finish.
func (s *Server) splice(client, remote net.Conn) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		n := copyDirection(remote, client, s.cfg.BufBytes)
		s.Metrics.BytesUpstream.Add(uint64(n))
	}()
	go func() {
		defer wg.Done()
		n := copyDirection(client, remote, s.cfg.BufBytes)
		s.Metrics.BytesDownstr.Add(uint64(n))
	}()
	wg.Wait()
}

// copyDirection streams src->dst, half-closing dst when src ends, and
// fully closing both on error so the opposite direction unblocks.
func copyDirection(dst, src net.Conn, bufBytes int) int64 {
	buf := make([]byte, bufBytes)
	n, err := io.CopyBuffer(dst, src, buf)
	if err != nil {
		dst.Close()
		src.Close()
		return n
	}
	if cw, ok := dst.(interface{ CloseWrite() error }); ok {
		cw.CloseWrite()
	} else {
		dst.Close()
	}
	return n
}

// readDial consumes the client's dial preamble and returns the target.
// Malformed preambles (truncated, oversized, garbage) surface as the wire
// package's typed errors.
func readDial(c net.Conn) (string, error) {
	target, err := wire.ReadPreamble(c)
	if err != nil {
		return "", fmt.Errorf("relay: %w", err)
	}
	return target, nil
}

// writeError best-effort reports a failure to the client.
func writeError(c net.Conn, err error) {
	msg := []byte(err.Error())
	if len(msg) > 1024 {
		msg = msg[:1024]
	}
	buf := wire.AppendHeader(nil, wire.Header{Kind: wire.KindError, Length: uint32(len(msg))})
	c.Write(append(buf, msg...))
}

// DialViaRelay opens a client connection through the relay at relayAddr to
// target, performing the preamble handshake. The returned conn carries the
// end-to-end byte stream.
func DialViaRelay(ctx context.Context,
	dial func(ctx context.Context, network, addr string) (net.Conn, error),
	relayAddr, target string) (net.Conn, error) {
	if dial == nil {
		var d net.Dialer
		dial = d.DialContext
	}
	c, err := dial(ctx, "tcp", relayAddr)
	if err != nil {
		return nil, err
	}
	pre, err := wire.AppendDialPreamble(nil, target)
	if err != nil {
		c.Close()
		return nil, err
	}
	if _, err := c.Write(pre); err != nil {
		c.Close()
		return nil, err
	}
	hdr := make([]byte, wire.HeaderSize)
	if _, err := io.ReadFull(c, hdr); err != nil {
		c.Close()
		return nil, fmt.Errorf("relay: reading dial response: %w", err)
	}
	h, err := wire.Parse(hdr)
	if err != nil {
		c.Close()
		return nil, err
	}
	switch h.Kind {
	case wire.KindDialOK:
		return c, nil
	case wire.KindError:
		msg := make([]byte, h.Length)
		io.ReadFull(c, msg)
		c.Close()
		return nil, fmt.Errorf("relay: %s", msg)
	default:
		c.Close()
		return nil, fmt.Errorf("relay: unexpected response %v", h.Kind)
	}
}
