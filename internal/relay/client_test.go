package relay

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"incastproxy/internal/cliutil"
	"incastproxy/internal/control"
	"incastproxy/internal/lan"
)

// fastPolicy keeps retry delays tiny and deterministic for tests.
func fastPolicy() DialPolicy {
	src := rand.New(rand.NewSource(1))
	return DialPolicy{
		AttemptTimeout: 500 * time.Millisecond,
		MaxAttempts:    3,
		BackoffBase:    time.Millisecond,
		BackoffMax:     4 * time.Millisecond,
		Jitter:         0.2,
		Rand:           src.Float64,
	}
}

func TestClientDialsThroughHealthyRelay(t *testing.T) {
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	echoServer(t, sinkL)
	relayL, _ := f.Listen("relay")
	srv := New(Config{Dial: f.Dialer("relay")})
	go srv.Serve(relayL)
	defer srv.Close()

	c := NewClient(ClientConfig{
		Dial:      f.Dialer("client"),
		RelayAddr: "relay",
		Policy:    fastPolicy(),
	})
	defer c.Close()

	conn, err := c.DialTarget(context.Background(), "sink")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("through the relay")
	go conn.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("echo: %q, %v", got, err)
	}
	if r := c.Metrics.DialRetries.Load(); r != 0 {
		t.Fatalf("retries = %d on a healthy relay", r)
	}
	if fb := c.Metrics.Fallbacks.Load(); fb != 0 {
		t.Fatalf("fallbacks = %d on a healthy relay", fb)
	}
}

func TestClientRetriesThenFails(t *testing.T) {
	f := lan.NewFabric(lan.PipeConfig{})
	// No relay listening at all.
	c := NewClient(ClientConfig{
		Dial:      f.Dialer("client"),
		RelayAddr: "relay",
		Policy:    fastPolicy(),
	})
	defer c.Close()

	_, err := c.DialTarget(context.Background(), "sink")
	if err == nil {
		t.Fatal("dead relay with no fallback must fail")
	}
	if r := c.Metrics.DialRetries.Load(); r != 2 {
		t.Fatalf("retries = %d, want 2 (3 attempts)", r)
	}
	if c.Healthy() {
		t.Fatal("relay should be marked unhealthy after exhausted retries")
	}
}

func TestClientFallsBackToDirect(t *testing.T) {
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	echoServer(t, sinkL)
	// Relay address is not listening: every relay attempt fails.
	c := NewClient(ClientConfig{
		Dial:           f.Dialer("client"),
		RelayAddr:      "relay",
		Policy:         fastPolicy(),
		FallbackDirect: true,
	})
	defer c.Close()

	conn, err := c.DialTarget(context.Background(), "sink")
	if err != nil {
		t.Fatalf("fallback should have saved the flow: %v", err)
	}
	defer conn.Close()
	msg := []byte("direct path")
	go conn.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("echo: %q, %v", got, err)
	}
	if fb := c.Metrics.Fallbacks.Load(); fb != 1 {
		t.Fatalf("fallbacks = %d, want 1", fb)
	}
	if c.Metrics.HealthFlaps.Load() != 1 {
		t.Fatalf("health flaps = %d, want 1 (up -> down)", c.Metrics.HealthFlaps.Load())
	}

	// The relay is now known-dead: the next dial must skip the retry loop
	// and go straight to the direct path.
	before := c.Metrics.DialRetries.Load()
	conn2, err := c.DialTarget(context.Background(), "sink")
	if err != nil {
		t.Fatal(err)
	}
	conn2.Close()
	if c.Metrics.DialRetries.Load() != before {
		t.Fatal("known-unhealthy relay was retried anyway")
	}
	if fb := c.Metrics.Fallbacks.Load(); fb != 2 {
		t.Fatalf("fallbacks = %d, want 2", fb)
	}
}

func TestClientHealthLoopDetectsCrashAndRecovery(t *testing.T) {
	f := lan.NewFabric(lan.PipeConfig{})
	sinkL, _ := f.Listen("sink")
	echoServer(t, sinkL)
	relayL, _ := f.Listen("relay")
	srv := New(Config{Dial: f.Dialer("relay")})
	go srv.Serve(relayL)

	c := NewClient(ClientConfig{
		Dial:           f.Dialer("client"),
		RelayAddr:      "relay",
		Policy:         fastPolicy(),
		FallbackDirect: true,
		HealthInterval: 2 * time.Millisecond,
	})
	defer c.Close()

	if !c.Healthy() {
		t.Fatal("client must start healthy")
	}

	// Crash the relay; the probe loop must notice without any dial.
	srv.Close()
	relayL.Close()
	if !cliutil.WaitUntil(5*time.Second, time.Millisecond, func() bool { return !c.Healthy() }) {
		t.Fatal("health loop never noticed the crashed relay")
	}

	// A flow during the outage degrades to direct.
	conn, err := c.DialTarget(context.Background(), "sink")
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if c.Metrics.Fallbacks.Load() == 0 {
		t.Fatal("outage dial should have fallen back")
	}

	// Restart the relay on the same address; the loop must flip back.
	relayL2, err := f.Listen("relay")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Config{Dial: f.Dialer("relay")})
	go srv2.Serve(relayL2)
	defer srv2.Close()
	if !cliutil.WaitUntil(5*time.Second, time.Millisecond, func() bool { return c.Healthy() }) {
		t.Fatal("health loop never noticed the recovered relay")
	}
	if flaps := c.Metrics.HealthFlaps.Load(); flaps < 2 {
		t.Fatalf("health flaps = %d, want >= 2 (down, up)", flaps)
	}

	// Healthy again: flows route through the relay once more (no new
	// fallback; AcceptedConns is useless here — health probes hit it too).
	fbBefore := c.Metrics.Fallbacks.Load()
	conn2, err := c.DialTarget(context.Background(), "sink")
	if err != nil {
		t.Fatal(err)
	}
	conn2.Close()
	if c.Metrics.Fallbacks.Load() != fbBefore {
		t.Fatal("recovered relay not used: dial fell back to direct")
	}
}

func TestClientDialContextCancelled(t *testing.T) {
	f := lan.NewFabric(lan.PipeConfig{})
	c := NewClient(ClientConfig{
		Dial:      f.Dialer("client"),
		RelayAddr: "relay",
		Policy:    fastPolicy(),
	})
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.DialTarget(ctx, "sink"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestClientSurfacesSlowDialPromptly(t *testing.T) {
	// A dialer that hangs until its context expires: the per-attempt
	// timeout must bound each try, so 3 attempts with tiny backoff finish
	// in well under a second.
	var calls atomic.Int32
	hang := func(ctx context.Context, network, addr string) (net.Conn, error) {
		calls.Add(1)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	p := fastPolicy()
	p.AttemptTimeout = 5 * time.Millisecond
	c := NewClient(ClientConfig{Dial: hang, RelayAddr: "relay", Policy: p})
	defer c.Close()

	start := time.Now()
	_, err := c.DialTarget(context.Background(), "sink")
	if err == nil {
		t.Fatal("hanging relay must fail")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dial failure took %v: attempt timeout not applied", elapsed)
	}
	if calls.Load() != 3 {
		t.Fatalf("dial calls = %d, want 3", calls.Load())
	}
}

func TestDialPolicyBackoffBoundedAndJittered(t *testing.T) {
	src := rand.New(rand.NewSource(7))
	p := DialPolicy{
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  80 * time.Millisecond,
		Jitter:      0.5,
		Rand:        src.Float64,
	}.withDefaults()
	for n := 1; n <= 12; n++ {
		d := p.delay(n)
		if d < time.Duration(float64(p.BackoffBase)*0.5) {
			t.Fatalf("delay(%d) = %v below jitter floor", n, d)
		}
		if d > time.Duration(float64(p.BackoffMax)*1.5) {
			t.Fatalf("delay(%d) = %v above jittered cap", n, d)
		}
	}
}

func TestClientHealthProbesFeedPathEstimator(t *testing.T) {
	f := lan.NewFabric(lan.PipeConfig{})
	relayL, _ := f.Listen("relay")
	srv := New(Config{Dial: f.Dialer("relay")})
	go srv.Serve(relayL)

	est := control.NewPathEstimator("relay", 0)
	c := NewClient(ClientConfig{
		Dial:           f.Dialer("client"),
		RelayAddr:      "relay",
		Policy:         fastPolicy(),
		HealthInterval: time.Millisecond,
		PathEstimator:  est,
	})
	defer c.Close()

	// Successful probes accumulate RTT samples and keep the path healthy.
	if !cliutil.WaitUntil(5*time.Second, time.Millisecond, func() bool { return est.RTTSamples() >= 3 }) {
		t.Fatalf("estimator never fed: %v", est)
	}
	if est.RTT() <= 0 {
		t.Fatalf("rtt estimate not positive: %v", est)
	}
	if !est.Healthy(0.5) {
		t.Fatalf("healthy relay shows lossy path: %v", est)
	}

	// Crash the relay: probes turn into loss marks and the smoothed loss
	// crosses the down threshold — the same signal the simulator's
	// controller keys its failover on.
	srv.Close()
	relayL.Close()
	if !cliutil.WaitUntil(5*time.Second, time.Millisecond, func() bool { return !est.Healthy(0.5) }) {
		t.Fatalf("estimator never saw the dead relay: %v", est)
	}
	sent, lost := est.Probes()
	if lost == 0 || sent <= lost {
		t.Fatalf("probe accounting off: sent=%d lost=%d", sent, lost)
	}
}
