package hoststack

import (
	"errors"
	"time"

	"incastproxy/internal/stats"
	"incastproxy/internal/units"
	"incastproxy/internal/wire"
)

// Verdict is the packet program's forwarding decision, mirroring an eBPF
// TC program's return semantics.
type Verdict uint8

// Program verdicts.
const (
	// VerdictForward relays the frame toward the remote receiver.
	VerdictForward Verdict = iota
	// VerdictNack tells the caller to emit a NACK to the sender and
	// drop the (trimmed) frame.
	VerdictNack
	// VerdictRelayControl relays a control frame toward the sender.
	VerdictRelayControl
	// VerdictDrop discards the frame (malformed or unknown).
	VerdictDrop
)

func (v Verdict) String() string {
	switch v {
	case VerdictForward:
		return "FORWARD"
	case VerdictNack:
		return "NACK"
	case VerdictRelayControl:
		return "RELAY_CONTROL"
	case VerdictDrop:
		return "DROP"
	default:
		return "?"
	}
}

// FlowState is the per-flow record the program maintains: the minimal
// state the streamlined design needs (§3: "it suffices if the proxy just
// keeps track of packet losses").
type FlowState struct {
	HighestSeq uint64
	Packets    uint64
	Nacked     uint64
	LastNacked uint64
}

// ProgramStats counts program activity.
type ProgramStats struct {
	Forwarded uint64
	Nacked    uint64
	Relayed   uint64
	Dropped   uint64
	MapEvicts uint64
	MapMisses uint64
	DupNacks  uint64
}

// Program is the streamlined proxy's per-packet logic as it would be
// compiled to eBPF: parse the fixed header, consult a bounded per-flow map
// (the analogue of BPF_MAP_TYPE_LRU_HASH), and classify the frame. It is
// deliberately branch-light and allocation-free on the hot path.
type Program struct {
	// MaxFlows bounds the flow map, like an eBPF map's max_entries.
	// When full, the least-recently-used flow is evicted.
	MaxFlows int

	flows map[uint64]*flowEntry
	// lruClock is a cheap access counter for LRU eviction.
	lruClock uint64

	Stats ProgramStats
}

type flowEntry struct {
	state    FlowState
	lastUsed uint64
}

// ErrNoState reports a lookup for an untracked flow.
var ErrNoState = errors.New("hoststack: no state for flow")

// NewProgram returns a program with capacity for maxFlows concurrent flows
// (default 1024 if <= 0).
func NewProgram(maxFlows int) *Program {
	if maxFlows <= 0 {
		maxFlows = 1024
	}
	return &Program{
		MaxFlows: maxFlows,
		flows:    make(map[uint64]*flowEntry, maxFlows),
	}
}

// Process classifies one frame. It never allocates for well-formed frames
// of known flows.
func (p *Program) Process(frame []byte) Verdict {
	h, err := wire.Parse(frame)
	if err != nil {
		p.Stats.Dropped++
		return VerdictDrop
	}
	switch h.Kind {
	case wire.KindData:
		st := p.lookup(h.FlowID)
		st.Packets++
		if h.Seq > st.HighestSeq {
			st.HighestSeq = h.Seq
		}
		if h.Trimmed() {
			// Early loss feedback path: per-flow state update +
			// NACK emission.
			if st.LastNacked == h.Seq && st.Nacked > 0 {
				p.Stats.DupNacks++
			}
			st.Nacked++
			st.LastNacked = h.Seq
			p.Stats.Nacked++
			return VerdictNack
		}
		p.Stats.Forwarded++
		return VerdictForward
	case wire.KindAck, wire.KindNack:
		p.Stats.Relayed++
		return VerdictRelayControl
	default:
		p.Stats.Dropped++
		return VerdictDrop
	}
}

// Flow returns a copy of the tracked state for a flow.
func (p *Program) Flow(id uint64) (FlowState, error) {
	e, ok := p.flows[id]
	if !ok {
		return FlowState{}, ErrNoState
	}
	return e.state, nil
}

// TrackedFlows returns the number of flows currently in the map.
func (p *Program) TrackedFlows() int { return len(p.flows) }

// lookup fetches or creates the flow entry, evicting the LRU entry when
// the map is at capacity.
func (p *Program) lookup(id uint64) *FlowState {
	p.lruClock++
	if e, ok := p.flows[id]; ok {
		e.lastUsed = p.lruClock
		return &e.state
	}
	p.Stats.MapMisses++
	if len(p.flows) >= p.MaxFlows {
		p.evictLRU()
	}
	e := &flowEntry{lastUsed: p.lruClock}
	p.flows[id] = e
	return &e.state
}

func (p *Program) evictLRU() {
	var victim uint64
	oldest := ^uint64(0)
	for id, e := range p.flows {
		if e.lastUsed < oldest {
			oldest = e.lastUsed
			victim = id
		}
	}
	delete(p.flows, victim)
	p.Stats.MapEvicts++
}

// MeasureProgram runs the real program over n synthetic frames (a mix of
// data, trimmed, and control) and returns the wall-clock per-packet
// runtime CDF in simulated units — the empirical counterpart of the
// Figure 5a lower bound.
func MeasureProgram(n int, trimmedFraction float64) *stats.CDF {
	p := NewProgram(4096)
	dataF := wire.Marshal(wire.Header{Kind: wire.KindData, FlowID: 7, Seq: 1, Length: 1472})
	trimF := wire.Marshal(wire.Header{Kind: wire.KindData, Flags: wire.FlagTrimmed, FlowID: 7, Seq: 2})
	ackF := wire.Marshal(wire.Header{Kind: wire.KindAck, FlowID: 7, Seq: 1})
	var c stats.CDF
	period := 0
	if trimmedFraction > 0 {
		period = int(1 / trimmedFraction)
	}
	for i := 0; i < n; i++ {
		f := dataF
		switch {
		case period > 0 && i%period == 0:
			f = trimF
		case i%13 == 0:
			f = ackF
		}
		start := time.Now()
		p.Process(f)
		el := time.Since(start)
		c.Observe(units.FromStd(el))
	}
	return &c
}
