package hoststack

import (
	"testing"

	"incastproxy/internal/rng"
	"incastproxy/internal/units"
	"incastproxy/internal/wire"
)

func TestPipelineSampleIsSumOfStages(t *testing.T) {
	p := Pipeline{Name: "x", Stages: []Stage{
		{"a", rng.Constant{D: 3 * units.Microsecond}},
		{"b", rng.Constant{D: 4 * units.Microsecond}},
	}}
	if got := p.Sample(rng.New(1)); got != 7*units.Microsecond {
		t.Fatalf("sample = %v", got)
	}
	if p.Mean() != 7*units.Microsecond {
		t.Fatalf("mean = %v", p.Mean())
	}
	if p.String() == "" {
		t.Fatal("empty string")
	}
}

func TestUserSpaceProxyCalibration(t *testing.T) {
	// Figure 4: p99 should land near 359 us; the median must sit in the
	// tens of microseconds (full user-space round trip).
	c := UserSpaceProxy().Measure(100_000, 1)
	p99 := c.Quantile(0.99)
	if p99 < 200*units.Microsecond || p99 > 600*units.Microsecond {
		t.Fatalf("userspace p99 = %v, want ~359us", p99)
	}
	med := c.Quantile(0.5)
	if med < 15*units.Microsecond || med > 120*units.Microsecond {
		t.Fatalf("userspace median = %v, want tens of us", med)
	}
	if p99 < 4*med {
		t.Fatalf("tail not heavy enough: p99=%v median=%v", p99, med)
	}
}

func TestEBPFLowerBoundCalibration(t *testing.T) {
	// Figure 5a: aggregate median ~0.42 us, well below a microsecond.
	c := EBPFLowerBound(0.1).Measure(100_000, 2)
	med := c.Quantile(0.5)
	if med < 300*units.Nanosecond || med > 650*units.Nanosecond {
		t.Fatalf("ebpf lower-bound median = %v, want ~0.42us", med)
	}
	if p999 := c.Quantile(0.999); p999 > 10*units.Microsecond {
		t.Fatalf("ebpf lower bound p99.9 = %v, should stay in the us range", p999)
	}
}

func TestEBPFTwoPathsDiffer(t *testing.T) {
	// Figure 5a shows the per-flow-state (NACK) path costing more than
	// the stateless forward path.
	fwd := EBPFLowerBoundForward().Measure(50_000, 3)
	nack := EBPFLowerBoundNack().Measure(50_000, 4)
	if nack.Quantile(0.5) <= fwd.Quantile(0.5) {
		t.Fatalf("NACK path (%v) must be slower than forward path (%v)",
			nack.Quantile(0.5), fwd.Quantile(0.5))
	}
}

func TestEBPFUpperBoundCalibration(t *testing.T) {
	// Figure 5b: median ~325.92 us, dominated by the stack.
	c := EBPFUpperBound().Measure(100_000, 5)
	med := c.Quantile(0.5)
	if med < 200*units.Microsecond || med > 500*units.Microsecond {
		t.Fatalf("upper-bound median = %v, want ~326us", med)
	}
	// The proxy logic contribution must be minute relative to the total
	// (the paper's point about hooking lower in the stack).
	ebpf := EBPFLowerBound(0.05).Measure(100_000, 6)
	if float64(ebpf.Quantile(0.5)) > 0.01*float64(med) {
		t.Fatalf("program (%v) should be <1%% of stack path (%v)", ebpf.Quantile(0.5), med)
	}
}

func TestEBPFLowerBoundFractionClamped(t *testing.T) {
	if EBPFLowerBound(-1).Measure(100, 1).N() != 100 {
		t.Fatal("negative fraction should clamp")
	}
	if EBPFLowerBound(2).Measure(100, 1).N() != 100 {
		t.Fatal("fraction > 1 should clamp")
	}
}

func TestHookPlacementOrdering(t *testing.T) {
	// Future work #2: each hook lower in the stack must cost strictly
	// less at the median: userspace > TC > XDP > NIC offload.
	pipes := HookPlacements(0.05)
	if len(pipes) != 4 {
		t.Fatalf("placements = %d", len(pipes))
	}
	var medians []units.Duration
	for _, p := range pipes {
		medians = append(medians, p.Measure(50_000, 7).Quantile(0.5))
	}
	for i := 1; i < len(medians); i++ {
		if medians[i] >= medians[i-1] {
			t.Fatalf("hook %q (%v) not cheaper than %q (%v)",
				pipes[i].Name, medians[i], pipes[i-1].Name, medians[i-1])
		}
	}
	// XDP must stay sub-microsecond; NIC offload a few hundred ns.
	if medians[2] > units.Microsecond {
		t.Fatalf("XDP median = %v", medians[2])
	}
	if medians[3] > 500*units.Nanosecond {
		t.Fatalf("NIC offload median = %v", medians[3])
	}
}

func frame(kind wire.Kind, flags uint8, flow, seq uint64) []byte {
	return wire.Marshal(wire.Header{Kind: kind, Flags: flags, FlowID: flow, Seq: seq, Length: 0})
}

func TestProgramVerdicts(t *testing.T) {
	p := NewProgram(16)
	if v := p.Process(frame(wire.KindData, 0, 1, 1)); v != VerdictForward {
		t.Fatalf("data = %v", v)
	}
	if v := p.Process(frame(wire.KindData, wire.FlagTrimmed, 1, 2)); v != VerdictNack {
		t.Fatalf("trimmed = %v", v)
	}
	if v := p.Process(frame(wire.KindAck, 0, 1, 1)); v != VerdictRelayControl {
		t.Fatalf("ack = %v", v)
	}
	if v := p.Process(frame(wire.KindNack, 0, 1, 1)); v != VerdictRelayControl {
		t.Fatalf("nack = %v", v)
	}
	if v := p.Process(frame(wire.KindDial, 0, 1, 1)); v != VerdictDrop {
		t.Fatalf("dial = %v", v)
	}
	if v := p.Process([]byte{1, 2, 3}); v != VerdictDrop {
		t.Fatalf("garbage = %v", v)
	}
	if p.Stats.Forwarded != 1 || p.Stats.Nacked != 1 || p.Stats.Relayed != 2 || p.Stats.Dropped != 2 {
		t.Fatalf("stats = %+v", p.Stats)
	}
	for _, v := range []Verdict{VerdictForward, VerdictNack, VerdictRelayControl, VerdictDrop, Verdict(9)} {
		if v.String() == "" {
			t.Fatal("empty verdict string")
		}
	}
}

func TestProgramFlowState(t *testing.T) {
	p := NewProgram(16)
	p.Process(frame(wire.KindData, 0, 5, 10))
	p.Process(frame(wire.KindData, 0, 5, 7)) // reordered, below highest
	p.Process(frame(wire.KindData, wire.FlagTrimmed, 5, 11))
	st, err := p.Flow(5)
	if err != nil {
		t.Fatal(err)
	}
	if st.HighestSeq != 11 || st.Packets != 3 || st.Nacked != 1 || st.LastNacked != 11 {
		t.Fatalf("state = %+v", st)
	}
	if _, err := p.Flow(99); err != ErrNoState {
		t.Fatalf("untracked flow: %v", err)
	}
}

func TestProgramLRUEviction(t *testing.T) {
	p := NewProgram(4)
	for f := uint64(1); f <= 4; f++ {
		p.Process(frame(wire.KindData, 0, f, 1))
	}
	// Touch flows 2-4 so flow 1 is LRU.
	for f := uint64(2); f <= 4; f++ {
		p.Process(frame(wire.KindData, 0, f, 2))
	}
	p.Process(frame(wire.KindData, 0, 5, 1)) // must evict flow 1
	if p.TrackedFlows() != 4 {
		t.Fatalf("tracked = %d", p.TrackedFlows())
	}
	if _, err := p.Flow(1); err != ErrNoState {
		t.Fatal("flow 1 should have been evicted")
	}
	if p.Stats.MapEvicts != 1 {
		t.Fatalf("evicts = %d", p.Stats.MapEvicts)
	}
}

func TestProgramDupNackCounting(t *testing.T) {
	p := NewProgram(4)
	p.Process(frame(wire.KindData, wire.FlagTrimmed, 1, 5))
	p.Process(frame(wire.KindData, wire.FlagTrimmed, 1, 5))
	if p.Stats.DupNacks != 1 {
		t.Fatalf("dup nacks = %d", p.Stats.DupNacks)
	}
}

func TestMeasureProgramProducesSubMicrosecondMedian(t *testing.T) {
	c := MeasureProgram(20_000, 0.05)
	if c.N() != 20_000 {
		t.Fatalf("n = %d", c.N())
	}
	// The real Go implementation of the program should run in well under
	// 5 us per packet on any modern machine (the paper's eBPF version
	// measures 0.42 us median).
	if med := c.Quantile(0.5); med > 5*units.Microsecond {
		t.Fatalf("measured program median = %v, implausibly slow", med)
	}
}

func BenchmarkProgramForwardPath(b *testing.B) {
	p := NewProgram(4096)
	f := frame(wire.KindData, 0, 7, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p.Process(f) != VerdictForward {
			b.Fatal("bad verdict")
		}
	}
}

func BenchmarkProgramNackPath(b *testing.B) {
	p := NewProgram(4096)
	f := frame(wire.KindData, wire.FlagTrimmed, 7, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p.Process(f) != VerdictNack {
			b.Fatal("bad verdict")
		}
	}
}
