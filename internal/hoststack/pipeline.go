// Package hoststack models the host-side packet processing pipelines the
// paper's §5 testbed measures, replacing the real ConnectX-5/kernel-6.11
// setup we do not have (see DESIGN.md's substitution table).
//
// Two artifacts are provided:
//
//   - Latency pipeline models (Figures 4, 5a, 5b): stage-by-stage latency
//     distributions calibrated to the paper's reported medians and tails
//     (user-space naive proxy p99 = 359.17 us; eBPF lower-bound median =
//     0.42 us; stack-inclusive upper-bound median = 325.92 us).
//
//   - A real implementation of the streamlined proxy's per-packet program
//     (program.go): the logic that would be compiled to eBPF, operating on
//     wire-format bytes with an eBPF-style bounded LRU flow map. Its
//     measured Go runtime substantiates the sub-microsecond lower bound.
package hoststack

import (
	"fmt"

	"incastproxy/internal/rng"
	"incastproxy/internal/stats"
	"incastproxy/internal/units"
)

// Stage is one named step of a host pipeline with a latency distribution.
type Stage struct {
	Name string
	Lat  rng.Distribution
}

// Pipeline is a sequence of stages; a packet's latency is the sum of one
// sample per stage.
type Pipeline struct {
	Name   string
	Stages []Stage
}

// Sample draws one end-to-end latency.
func (p Pipeline) Sample(src *rng.Source) units.Duration {
	var total units.Duration
	for _, s := range p.Stages {
		total += s.Lat.Sample(src)
	}
	return total
}

// Mean returns the sum of stage means.
func (p Pipeline) Mean() units.Duration {
	var total units.Duration
	for _, s := range p.Stages {
		total += s.Lat.Mean()
	}
	return total
}

// Measure samples n packets and returns their latency CDF.
func (p Pipeline) Measure(n int, seed int64) *stats.CDF {
	src := rng.New(seed)
	var c stats.CDF
	for i := 0; i < n; i++ {
		c.Observe(p.Sample(src))
	}
	return &c
}

func (p Pipeline) String() string {
	return fmt.Sprintf("pipeline(%s, %d stages, mean=%v)", p.Name, len(p.Stages), p.Mean())
}

// UserSpaceProxy models the naive proxy implemented in user space at the TC
// layer (Figure 4): "packet transmission time from the TC hook to user
// space, user-space processing latency, and back". The heavy lognormal
// tails come from context switches and interrupts; the mixture's slow
// branch models scheduler preemption. Calibrated so the 99th percentile
// lands near the paper's 359.17 us.
func UserSpaceProxy() Pipeline {
	return Pipeline{
		Name: "userspace-naive-proxy",
		Stages: []Stage{
			{"tc-to-socket", rng.Shifted{
				Offset: 4 * units.Microsecond,
				Base:   rng.LogNormal{Median: 6 * units.Microsecond, Sigma: 0.6},
			}},
			{"wakeup-ctx-switch", rng.Mixture{Components: []rng.Component{
				{Weight: 0.93, Dist: rng.LogNormal{Median: 12 * units.Microsecond, Sigma: 0.5}},
				{Weight: 0.07, Dist: rng.LogNormal{Median: 160 * units.Microsecond, Sigma: 0.45}},
			}}},
			{"userspace-relay-logic", rng.Shifted{
				Offset: 2 * units.Microsecond,
				Base:   rng.Exponential{MeanD: 4 * units.Microsecond},
			}},
			{"syscall-tx-to-tc", rng.Shifted{
				Offset: 5 * units.Microsecond,
				Base:   rng.LogNormal{Median: 8 * units.Microsecond, Sigma: 0.6},
			}},
		},
	}
}

// EBPFLowerBoundForward models the eBPF program runtime on the forward
// (data relay) path: parse, flow lookup, redirect (Figure 5a's faster
// path). Median calibrated to the paper's 0.42 us with the forward path
// slightly below the aggregate median.
func EBPFLowerBoundForward() Pipeline {
	return Pipeline{
		Name: "ebpf-lower-bound-forward",
		Stages: []Stage{
			{"bytecode-parse-redirect", rng.Shifted{
				Offset: 250 * units.Nanosecond,
				Base:   rng.LogNormal{Median: 130 * units.Nanosecond, Sigma: 0.45},
			}},
		},
	}
}

// EBPFLowerBoundNack models the eBPF runtime on the trimmed-header path,
// which updates per-flow state and emits a NACK (Figure 5a's slower path:
// "distributions of the two paths differ as a result of different per-flow
// state management").
func EBPFLowerBoundNack() Pipeline {
	return Pipeline{
		Name: "ebpf-lower-bound-nack",
		Stages: []Stage{
			{"bytecode-parse", rng.Shifted{
				Offset: 250 * units.Nanosecond,
				Base:   rng.LogNormal{Median: 110 * units.Nanosecond, Sigma: 0.4},
			}},
			{"flow-state-update-nack", rng.Shifted{
				Offset: 120 * units.Nanosecond,
				Base:   rng.LogNormal{Median: 90 * units.Nanosecond, Sigma: 0.5},
			}},
		},
	}
}

// EBPFLowerBound mixes the two program paths with the given fraction of
// trimmed (NACK-path) packets; the §5 aggregate median is 0.42 us.
func EBPFLowerBound(nackFraction float64) Pipeline {
	if nackFraction < 0 {
		nackFraction = 0
	}
	if nackFraction > 1 {
		nackFraction = 1
	}
	fwd := EBPFLowerBoundForward()
	nack := EBPFLowerBoundNack()
	return Pipeline{
		Name: "ebpf-lower-bound",
		Stages: []Stage{{
			Name: "program",
			Lat: rng.Mixture{Components: []rng.Component{
				{Weight: 1 - nackFraction, Dist: pipelineDist{fwd}},
				{Weight: nackFraction, Dist: pipelineDist{nack}},
			}},
		}},
	}
}

// EBPFUpperBound models the tcpdump-measured end-to-end path (Figure 5b):
// proxy processing and forwarding plus packet-to-wire, physical
// transmission and packet reception — "disproportionally large",
// median 325.92 us, dominated by the networking stack rather than the
// proxy logic itself.
func EBPFUpperBound() Pipeline {
	return Pipeline{
		Name: "ebpf-upper-bound",
		Stages: []Stage{
			{"nic-rx-to-tc", rng.Shifted{
				Offset: 20 * units.Microsecond,
				Base:   rng.LogNormal{Median: 25 * units.Microsecond, Sigma: 0.5},
			}},
			{"ebpf-program", pipelineDist{EBPFLowerBound(0.05)}},
			{"stack-tx-wire-rx", rng.Shifted{
				Offset: 150 * units.Microsecond,
				Base:   rng.LogNormal{Median: 130 * units.Microsecond, Sigma: 0.45},
			}},
		},
	}
}

// Future work #2 explores "more efficient proxy implementation":
// alternative hook placements below the TC qdisc. The pipelines below
// model the same program at the XDP hook (before sk_buff allocation,
// saving most of the NIC->TC kernel path) and offloaded to the NIC
// (no host kernel at all, only the device's packet engine).

// XDPLowerBound models the program at the XDP hook: the bytecode runtime
// plus the (much smaller) driver-level entry cost.
func XDPLowerBound(nackFraction float64) Pipeline {
	return Pipeline{
		Name: "xdp-lower-bound",
		Stages: []Stage{
			{"driver-entry", rng.Shifted{
				Offset: 80 * units.Nanosecond,
				Base:   rng.LogNormal{Median: 40 * units.Nanosecond, Sigma: 0.4},
			}},
			{"program", pipelineDist{EBPFLowerBound(nackFraction)}},
		},
	}
}

// NICOffloadLowerBound models the program offloaded to the NIC: a fixed
// pipeline-stage cost with very little variance and no host involvement.
func NICOffloadLowerBound() Pipeline {
	return Pipeline{
		Name: "nic-offload-lower-bound",
		Stages: []Stage{
			{"nic-pipeline", rng.Shifted{
				Offset: 150 * units.Nanosecond,
				Base:   rng.Normal{Mu: 30 * units.Nanosecond, Sigma: 10 * units.Nanosecond},
			}},
		},
	}
}

// HookPlacements returns the future-work #2 comparison set: per-packet
// proxy overhead at each candidate hook, slowest first. The Figure 4
// user-space measurement starts at the TC hook, so the shared NIC->TC
// entry cost is prepended to both host-resident placements to make them
// comparable.
func HookPlacements(nackFraction float64) []Pipeline {
	nicToTC := Stage{"nic-rx-to-tc", rng.Shifted{
		Offset: 20 * units.Microsecond,
		Base:   rng.LogNormal{Median: 25 * units.Microsecond, Sigma: 0.5},
	}}
	return []Pipeline{
		{Name: "userspace", Stages: append([]Stage{nicToTC},
			Stage{"tc-to-user-and-back", pipelineDist{UserSpaceProxy()}})},
		{Name: "tc-ebpf", Stages: []Stage{
			nicToTC,
			{"program", pipelineDist{EBPFLowerBound(nackFraction)}},
		}},
		XDPLowerBound(nackFraction),
		NICOffloadLowerBound(),
	}
}

// pipelineDist adapts a Pipeline to the rng.Distribution interface so
// pipelines can nest as stages.
type pipelineDist struct{ p Pipeline }

func (d pipelineDist) Sample(src *rng.Source) units.Duration { return d.p.Sample(src) }
func (d pipelineDist) Mean() units.Duration                  { return d.p.Mean() }
func (d pipelineDist) String() string                        { return d.p.Name }
