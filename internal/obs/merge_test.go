package obs

import (
	"bytes"
	"testing"
)

func snapshotOf(build func(r *Registry)) Snapshot {
	r := NewRegistry()
	build(r)
	return r.Snapshot()
}

func TestMergeSnapshotsSumsAndPassesThrough(t *testing.T) {
	a := snapshotOf(func(r *Registry) {
		r.Counter("pkts_total").Add(10)
		r.Gauge("pending").Set(3)
		r.Counter("only_a_total").Add(1)
	})
	b := snapshotOf(func(r *Registry) {
		r.Counter("pkts_total").Add(32)
		r.Gauge("pending").Set(4)
		r.Gauge("only_b").Set(9)
	})
	m := MergeSnapshots(a, b)
	if v, ok := m.Get("pkts_total"); !ok || v != 42 {
		t.Errorf("pkts_total = %d (ok=%v), want 42", v, ok)
	}
	if v, ok := m.Get("pending"); !ok || v != 7 {
		t.Errorf("pending = %d (ok=%v), want 7", v, ok)
	}
	if v, ok := m.Get("only_a_total"); !ok || v != 1 {
		t.Errorf("only_a_total = %d (ok=%v), want 1", v, ok)
	}
	if v, ok := m.Get("only_b"); !ok || v != 9 {
		t.Errorf("only_b = %d (ok=%v), want 9", v, ok)
	}
}

func TestMergeSnapshotsHistogramsBucketwise(t *testing.T) {
	bounds := []int64{10, 100, 1000}
	a := snapshotOf(func(r *Registry) {
		h := r.Histogram("lat_us", bounds)
		h.Observe(5)
		h.Observe(50)
	})
	b := snapshotOf(func(r *Registry) {
		h := r.Histogram("lat_us", bounds)
		h.Observe(50)
		h.Observe(5000)
	})
	m := MergeSnapshots(a, b)
	if len(m.Histograms) != 1 {
		t.Fatalf("got %d histograms, want 1", len(m.Histograms))
	}
	h := m.Histograms[0]
	if h.Count != 4 || h.Sum != 5105 {
		t.Errorf("count=%d sum=%d, want 4 and 5105", h.Count, h.Sum)
	}
	// Buckets: <=10 holds one 5, <=100 holds two 50s, <=1000 empty,
	// +Inf overflow holds the 5000.
	want := []uint64{1, 2, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

// Merge output must be sorted like Registry.Snapshot output: the merged
// text serialization of one registry's snapshot equals the original's.
func TestMergeSnapshotsDeterministicText(t *testing.T) {
	build := func(r *Registry) {
		r.Counter("z_total").Add(1)
		r.Counter("a_total").Add(2)
		r.Gauge("m").Set(5)
		r.Histogram("h_us", []int64{1, 10}).Observe(3)
	}
	one := snapshotOf(build)
	var direct, merged bytes.Buffer
	if err := one.WriteText(&direct); err != nil {
		t.Fatal(err)
	}
	if err := MergeSnapshots(one).WriteText(&merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), merged.Bytes()) {
		t.Errorf("single-snapshot merge not idempotent:\n--- direct ---\n%s\n--- merged ---\n%s",
			direct.Bytes(), merged.Bytes())
	}
}

func TestMergeSnapshotsMismatchedBoundsPanics(t *testing.T) {
	a := snapshotOf(func(r *Registry) { r.Histogram("h", []int64{1, 2}).Observe(1) })
	b := snapshotOf(func(r *Registry) { r.Histogram("h", []int64{1, 3}).Observe(1) })
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched bounds did not panic")
		}
	}()
	MergeSnapshots(a, b)
}
