package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// The acceptance check for live introspection: a registry served on an
// ephemeral port exposes Prometheus text, JSON, and the pprof index.
func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("relay_accepted_conns_total").Add(3)
	reg.Gauge("relay_active_conns").Set(1)

	srv, l, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := fmt.Sprintf("http://%v", l.Addr())
	client := &http.Client{Timeout: 5 * time.Second}

	get := func(path string) (int, string) {
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, "relay_accepted_conns_total 3") ||
		!strings.Contains(body, "# TYPE relay_accepted_conns_total counter") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	code, body = get("/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status = %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/metrics.json not JSON: %v\n%s", err, body)
	}
	mets, ok := doc["metrics"].(map[string]any)
	if !ok || mets["relay_active_conns"] != 1.0 {
		t.Fatalf("/metrics.json metrics = %v", doc["metrics"])
	}

	code, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status=%d body:\n%.200s", code, body)
	}

	if code, _ = get("/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
}
