package obs

import (
	"fmt"
	"sort"
)

// MergeSnapshots folds several snapshots into one: counters with the same
// name sum, gauges with the same name sum, and histograms with the same
// name merge bucket-wise (their bounds must be identical, or the merge
// panics — folding differently-bucketed histograms is a programming
// error). Names present in only some snapshots pass through unchanged. The
// result is sorted by name, exactly like Registry.Snapshot output, so equal
// inputs produce byte-identical WriteText serializations.
//
// The sharded simulator uses this to fold its per-shard diagnostic
// registries into a single view.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	counters := make(map[string]int64)
	gauges := make(map[string]int64)
	hists := make(map[string]*HistogramValue)
	for _, s := range snaps {
		for _, c := range s.Counters {
			counters[c.Name] += c.Value
		}
		for _, g := range s.Gauges {
			gauges[g.Name] += g.Value
		}
		for _, h := range s.Histograms {
			acc, ok := hists[h.Name]
			if !ok {
				cp := HistogramValue{
					Name:   h.Name,
					Bounds: append([]int64(nil), h.Bounds...),
					Counts: append([]uint64(nil), h.Counts...),
					Sum:    h.Sum,
					Count:  h.Count,
				}
				hists[h.Name] = &cp
				continue
			}
			if len(acc.Bounds) != len(h.Bounds) {
				panic(fmt.Sprintf("obs: merging histogram %q with mismatched bucket counts (%d vs %d)",
					h.Name, len(acc.Bounds), len(h.Bounds)))
			}
			for i, b := range h.Bounds {
				if acc.Bounds[i] != b {
					panic(fmt.Sprintf("obs: merging histogram %q with mismatched bounds", h.Name))
				}
			}
			for i, c := range h.Counts {
				acc.Counts[i] += c
			}
			acc.Sum += h.Sum
			acc.Count += h.Count
		}
	}

	var out Snapshot
	for name, v := range counters {
		out.Counters = append(out.Counters, NamedValue{name, v})
	}
	for name, v := range gauges {
		out.Gauges = append(out.Gauges, NamedValue{name, v})
	}
	for _, h := range hists {
		out.Histograms = append(out.Histograms, *h)
	}
	sortNamed := func(vs []NamedValue) {
		sort.Slice(vs, func(i, j int) bool { return vs[i].Name < vs[j].Name })
	}
	sortNamed(out.Counters)
	sortNamed(out.Gauges)
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out
}
