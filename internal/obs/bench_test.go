package obs

import (
	"testing"
)

// The instruments sit on simulator hot paths (per-packet in the worst
// case); these benches put numbers on the per-record cost the ≤5% overhead
// budget in ISSUE/DESIGN rests on.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_depth")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_us", DefaultDurationBucketsMicros())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i % 1_000_000))
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkTracerInstant(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Instant(0, "flow", "nack", int64(i))
	}
}

func BenchmarkTracerInstantNil(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Instant(0, "flow", "nack", int64(i))
	}
}

// BenchmarkSpanEmit is the enabled-path cost of one full span (root begin
// + end, including ID derivation and the trace/span args) — what a traced
// relay pays per connection, not per byte.
func BenchmarkSpanEmit(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartRoot(0, "client", "client.dial", NewSpanContext(int64(i), 1))
		sp.End(0)
	}
}

// BenchmarkSpanEmitNil is the disabled-path cost: a nil tracer must make
// span instrumentation free (0 allocs) so the relay hot path is unchanged
// when tracing is off.
func BenchmarkSpanEmitNil(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartRoot(0, "client", "client.dial", SpanContext{Trace: 1, Span: 1})
		sp.End(0)
	}
}

func BenchmarkWindowQuantileObserve(b *testing.B) {
	w := NewWindowQuantile(0, DefaultWindowSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Observe(0, int64(i))
	}
}

func BenchmarkWindowQuantileQuery(b *testing.B) {
	w := NewWindowQuantile(0, DefaultWindowSize)
	for i := 0; i < DefaultWindowSize; i++ {
		w.Observe(0, int64(i*37%1000))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Quantile(0.99)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 64; i++ {
		r.Counter(string(rune('a'+i%26)) + "_total").Add(uint64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
