package obs

// Causal flow tracing. A SpanContext is a 64-bit trace ID (one per flow)
// plus a 64-bit span ID (one per operation within the flow). Contexts are
// derived with rng.DeriveSeed so a seeded run produces the same IDs every
// time, and child IDs derived independently on both sides of a wire hop
// agree (the relay derives its server-side span IDs from the client's
// context carried in the dial preamble).
//
// Spans are emitted as Chrome async events (PhaseSpanBegin/PhaseSpanEnd)
// keyed by the span ID, so overlapping client- and server-side slices of
// one flow coexist on the trace-ID track without breaking B/E nesting.

import (
	"fmt"

	"incastproxy/internal/rng"
	"incastproxy/internal/units"
)

// SpanContext identifies one span within one trace. The zero value is
// invalid (no trace).
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context carries a trace.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

// TraceString renders the trace ID as fixed-width hex (log correlation).
func (sc SpanContext) TraceString() string { return IDString(sc.Trace) }

// IDString renders a trace or span ID as fixed-width hex.
func IDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// track folds the trace ID into a positive Chrome tid so every span and
// instant of one flow lands on one track.
func (sc SpanContext) track() int64 { return int64(sc.Trace &^ (1 << 63)) }

// NewSpanContext derives a root context from a seed and labels via
// rng.DeriveSeed — deterministic for seeded runs, well-mixed for
// wall-clock seeds. IDs are never zero so Valid() holds.
func NewSpanContext(seed int64, labels ...int64) SpanContext {
	id := uint64(rng.DeriveSeed(seed, labels...))
	if id == 0 {
		id = 1
	}
	return SpanContext{Trace: id, Span: id}
}

// Child derives the context of a sub-operation. Both ends of a wire hop
// derive identical IDs from the same parent and label, which is how the
// relay's server-side spans join the client's trace without extra bytes
// on the wire.
func (sc SpanContext) Child(label int64) SpanContext {
	id := uint64(rng.DeriveSeed(int64(sc.Span), label))
	if id == 0 {
		id = 1
	}
	return SpanContext{Trace: sc.Trace, Span: id}
}

// Span is a live handle on an open span. A nil *Span (from a nil tracer
// or invalid context) discards everything, so instrumented paths never
// branch.
type Span struct {
	tr   *Tracer
	ctx  SpanContext
	cat  string
	name string
}

// StartRoot opens a root span with an explicit context (the caller minted
// it with NewSpanContext, or received it over the wire). Returns nil on a
// nil tracer or invalid context.
func (t *Tracer) StartRoot(at units.Time, cat, name string, sc SpanContext, args ...Arg) *Span {
	if t == nil || !sc.Valid() {
		return nil
	}
	t.spanEvent(PhaseSpanBegin, at, cat, name, sc, 0, args)
	return &Span{tr: t, ctx: sc, cat: cat, name: name}
}

// StartSpan opens a child span under parent (possibly a remote context
// from the wire), deriving the child ID from (parent.Span, label).
func (t *Tracer) StartSpan(at units.Time, cat, name string, parent SpanContext, label int64, args ...Arg) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	sc := parent.Child(label)
	t.spanEvent(PhaseSpanBegin, at, cat, name, sc, parent.Span, args)
	return &Span{tr: t, ctx: sc, cat: cat, name: name}
}

func (t *Tracer) spanEvent(ph byte, at units.Time, cat, name string, sc SpanContext, parent uint64, args []Arg) {
	full := make([]Arg, 0, len(args)+3)
	full = append(full,
		Arg{Key: "trace", Val: IDString(sc.Trace)},
		Arg{Key: "span", Val: IDString(sc.Span)})
	if parent != 0 {
		full = append(full, Arg{Key: "parent", Val: IDString(parent)})
	}
	full = append(full, args...)
	t.add(Event{At: at, Ph: ph, Cat: cat, Name: name, TID: sc.track(),
		Trace: sc.Trace, Span: sc.Span, Args: full})
}

// Context returns the span's context (zero for a nil span) — put it on
// the wire to extend the trace across a hop.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// Child opens a sub-span of s.
func (s *Span) Child(at units.Time, cat, name string, label int64, args ...Arg) *Span {
	if s == nil {
		return nil
	}
	return s.tr.StartSpan(at, cat, name, s.ctx, label, args...)
}

// Annotate records an instant event on the span's trace track — the hook
// for decision-timeline marks (sheds, breaker flips, steers) that belong
// to a flow.
func (s *Span) Annotate(at units.Time, name string, args ...Arg) {
	if s == nil {
		return
	}
	full := make([]Arg, 0, len(args)+2)
	full = append(full,
		Arg{Key: "trace", Val: IDString(s.ctx.Trace)},
		Arg{Key: "span", Val: IDString(s.ctx.Span)})
	full = append(full, args...)
	s.tr.add(Event{At: at, Ph: PhaseInstant, Cat: s.cat, Name: name,
		TID: s.ctx.track(), Trace: s.ctx.Trace, Span: s.ctx.Span, Args: full})
}

// End closes the span.
func (s *Span) End(at units.Time, args ...Arg) {
	if s == nil {
		return
	}
	s.tr.spanEvent(PhaseSpanEnd, at, s.cat, s.name, s.ctx, 0, args)
}

// TraceSummary aggregates one trace's recorded structure, for invariant
// checks (chaosnet's trace-completeness gate) and tests.
type TraceSummary struct {
	// Spans counts completed (begun and ended) spans by name.
	Spans map[string]int
	// Open counts spans begun but never ended — zero in a complete tree.
	Open int
	// Instants counts instant events linked to the trace, by name.
	Instants map[string]int
}

// Summaries folds the event log into per-trace summaries, matching span
// begin/end pairs by span ID. Events without a trace ID are ignored.
func (t *Tracer) Summaries() map[uint64]*TraceSummary {
	out := make(map[uint64]*TraceSummary)
	open := make(map[uint64]string) // span id -> name
	for _, ev := range t.Events() {
		if ev.Trace == 0 {
			continue
		}
		ts := out[ev.Trace]
		if ts == nil {
			ts = &TraceSummary{Spans: make(map[string]int), Instants: make(map[string]int)}
			out[ev.Trace] = ts
		}
		switch ev.Ph {
		case PhaseSpanBegin:
			open[ev.Span] = ev.Name
			ts.Open++
		case PhaseSpanEnd:
			if name, ok := open[ev.Span]; ok {
				delete(open, ev.Span)
				ts.Open--
				ts.Spans[name]++
			}
		case PhaseInstant:
			ts.Instants[ev.Name]++
		}
	}
	return out
}
