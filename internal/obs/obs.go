// lint:virtual-time
// (pragma: opts this package into the wallclock analyzer — no wall-clock
// reads in non-test sources; see internal/lint and DESIGN.md §12)

// Package obs is the unified observability layer: a zero-dependency
// (stdlib-only) metrics registry, a structured event tracer, and a live
// debug/introspection surface shared by the simulator, the transport, and
// the real-host relay substrate.
//
// The three pieces and their contracts:
//
//   - Registry: typed counters, gauges, and fixed-bucket histograms with
//     cheap atomic hot-path recording, plus lazy "collector" funcs that pull
//     values already tracked elsewhere (queue stats, sender stats) only at
//     snapshot time — zero hot-path cost. Snapshots are sorted by name, so
//     the same run state always serializes to the same bytes.
//
//   - Tracer: an append-only, concurrency-safe log of events (flow
//     lifecycle, queue trims/marks/drops, fault windows, cwnd trajectories,
//     causal flow spans) exportable as Chrome trace-event JSON (loadable in
//     Perfetto or chrome://tracing) and as CSV. Timestamps come either from
//     the caller (virtual time, the simulator) or from a clock injected via
//     NewTracerWithClock (live paths); both produce the same export format,
//     so a sim trace and a relay soak trace open in the same viewer. Span
//     contexts (span.go) are derived with rng.DeriveSeed, so seeded-run
//     traces replay with identical IDs.
//
//   - WindowQuantile: sliding-window streaming quantiles (p50/p99/p999)
//     registered through Registry.Window and exported on /metrics as
//     {quantile="..."}-labeled gauge series — the live-tail counterpart to
//     the fixed-bucket histograms.
//
//   - Debug surface: an http.ServeMux with net/http/pprof, a Prometheus
//     text /metrics endpoint, and a JSON snapshot, served by relayd and
//     proxybench under -debug-addr.
//
// Determinism contract: nothing in this package reads the wall clock or
// any other ambient nondeterminism on a recording path. Timestamps always
// come from the caller (simulated time) or from a caller-injected clock
// (live wall-time paths own that choice). A seeded run instrumented through
// this package therefore produces byte-identical snapshots and trace
// exports on every execution — the property the determinism tests in
// internal/workload assert, and the property that makes a metrics snapshot
// trustworthy before/after evidence for optimization work.
//
// All write paths are nil-receiver safe: a nil *Registry hands out nil
// instruments, and recording on a nil instrument is a no-op, so packages
// can instrument unconditionally and let the caller decide whether
// telemetry exists.
package obs
