package obs

// Live introspection for the real-host substrate (relayd, proxybench):
// an HTTP mux exposing net/http/pprof, expvar, and the metrics registry
// in both Prometheus text and JSON forms. The simulator never serves
// this — virtual-time telemetry is exported at end of run instead.

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux returns a mux serving:
//
//	/metrics           registry snapshot, Prometheus text format
//	/metrics.json      registry snapshot as JSON
//	/debug/vars        expvar (Go runtime memstats et al.)
//	/debug/pprof/...   the standard pprof surface
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		// The only write failure here is the scraper disconnecting
		// mid-response; net/http tears the conn down either way.
		_ = reg.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeSnapshotJSON(w, reg.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeSnapshotJSON(w http.ResponseWriter, s Snapshot) {
	m := NewManifest(0, "live", s)
	// As above: a failed write means the client went away mid-response.
	_ = m.WriteJSON(w)
}

// ServeDebug listens on addr and serves the debug mux in a background
// goroutine. It returns the bound listener (use addr ":0" in tests and read
// l.Addr()) and the server for shutdown.
func ServeDebug(addr string, reg *Registry) (*http.Server, net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewDebugMux(reg)}
	go srv.Serve(l)
	return srv, l, nil
}
