package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"strings"
)

// Manifest identifies one run well enough to reproduce and compare it: the
// seed, a human-readable fingerprint of the effective configuration, a hash
// of that fingerprint, and the final metric snapshot. Embedded in workload
// results, it is the provenance record the figures pipeline and future
// before/after perf comparisons key on.
type Manifest struct {
	Seed       int64
	Config     string
	ConfigHash uint64
	Metrics    Snapshot
}

// NewManifest builds a manifest, hashing the config fingerprint.
func NewManifest(seed int64, config string, metrics Snapshot) *Manifest {
	return &Manifest{
		Seed:       seed,
		Config:     config,
		ConfigHash: Fingerprint(config),
		Metrics:    metrics,
	}
}

// Fingerprint hashes a configuration string (FNV-1a 64).
func Fingerprint(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// String renders the one-line provenance header tools print above results.
func (m *Manifest) String() string {
	if m == nil {
		return "manifest: none"
	}
	return fmt.Sprintf("manifest: seed=%d config-hash=%016x", m.Seed, m.ConfigHash)
}

// WriteJSON serializes the manifest deterministically: fixed key order,
// sorted metrics.
func (m *Manifest) WriteJSON(w io.Writer) error {
	if m == nil {
		_, err := io.WriteString(w, "null\n")
		return err
	}
	cfg, err := json.Marshal(m.Config)
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "{\n  \"seed\": %d,\n  \"config\": %s,\n  \"config_hash\": \"%016x\",\n  \"metrics\": {\n",
		m.Seed, cfg, m.ConfigHash)
	first := true
	writeScalar := func(v NamedValue) error {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		name, err := json.Marshal(v.Name)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "    %s: %d", name, v.Value)
		return nil
	}
	for _, v := range m.Metrics.Counters {
		if err := writeScalar(v); err != nil {
			return err
		}
	}
	for _, v := range m.Metrics.Gauges {
		if err := writeScalar(v); err != nil {
			return err
		}
	}
	b.WriteString("\n  }\n}\n")
	_, err = io.WriteString(w, b.String())
	return err
}
