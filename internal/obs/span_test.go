package obs

import (
	"strings"
	"sync"
	"testing"

	"incastproxy/internal/units"
)

func TestSpanContextDeterministic(t *testing.T) {
	a := NewSpanContext(42, 7)
	b := NewSpanContext(42, 7)
	if a != b {
		t.Fatalf("same seed+labels produced different contexts: %v vs %v", a, b)
	}
	if !a.Valid() {
		t.Fatal("derived context must be valid")
	}
	if c := NewSpanContext(42, 8); c == a {
		t.Fatal("different labels must produce different contexts")
	}
}

// TestChildAgreement is the cross-process invariant the relay relies on:
// both ends of a wire hop hold the same parent context (the client sent
// it in the dial preamble) and must independently derive identical child
// span IDs from the same label.
func TestChildAgreement(t *testing.T) {
	parent := NewSpanContext(1, 2, 3)
	clientSide := parent.Child(5)
	serverSide := SpanContext{Trace: parent.Trace, Span: parent.Span}.Child(5)
	if clientSide != serverSide {
		t.Fatalf("child derivation disagrees across the hop: %v vs %v", clientSide, serverSide)
	}
	if clientSide.Trace != parent.Trace {
		t.Fatal("child must stay in the parent's trace")
	}
	if clientSide.Span == parent.Span {
		t.Fatal("child must get its own span ID")
	}
}

func TestSpanTreeSummaries(t *testing.T) {
	tr := NewTracer()
	sc := NewSpanContext(9, 1)
	root := tr.StartRoot(10, "client", "client.dial", sc)
	child := root.Child(20, "relay", "relay.conn", 1)
	child.Annotate(25, "relay.mark")
	child.End(30)
	root.End(40, Arg{Key: "outcome", Val: "ok"})

	sums := tr.Summaries()
	s := sums[sc.Trace]
	if s == nil {
		t.Fatal("no summary for the trace")
	}
	if s.Open != 0 {
		t.Fatalf("open spans = %d, want 0", s.Open)
	}
	if s.Spans["client.dial"] != 1 || s.Spans["relay.conn"] != 1 {
		t.Fatalf("span counts = %v", s.Spans)
	}
	if s.Instants["relay.mark"] != 1 {
		t.Fatalf("instant counts = %v", s.Instants)
	}
}

func TestSummariesFlagOpenSpans(t *testing.T) {
	tr := NewTracer()
	sc := NewSpanContext(9, 2)
	tr.StartRoot(10, "client", "client.dial", sc) // never ended
	if s := tr.Summaries()[sc.Trace]; s == nil || s.Open != 1 {
		t.Fatalf("summary = %+v, want Open=1", s)
	}
}

func TestNilSpanSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot(0, "c", "n", NewSpanContext(1))
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	// Every method on a nil span must no-op.
	sp.Annotate(0, "x")
	sp.End(0)
	if c := sp.Child(0, "c", "n", 1); c != nil {
		t.Fatal("nil span's child must be nil")
	}
	if sp.Context().Valid() {
		t.Fatal("nil span's context must be invalid")
	}
	// An invalid context is refused even on a live tracer.
	live := NewTracer()
	if s := live.StartRoot(0, "c", "n", SpanContext{}); s != nil {
		t.Fatal("invalid context must not open a span")
	}
	if live.Len() != 0 {
		t.Fatal("refused span must record nothing")
	}
}

func TestSpanChromeExport(t *testing.T) {
	tr := NewTracer()
	sc := NewSpanContext(3, 1)
	sp := tr.StartRoot(units.Time(1_000_000), "client", "client.dial", sc)
	sp.End(units.Time(2_000_000))
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"ph":"b"`, `"ph":"e"`, `"id":"0x`, `"trace":"` + sc.TraceString()} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome export missing %q:\n%s", want, out)
		}
	}
}

// TestTracerConcurrentSpans exercises the tracer's lock under parallel
// span traffic (the live relay records from many goroutines); run with
// -race this is the data-race gate.
func TestTracerConcurrentSpans(t *testing.T) {
	clock := func() units.Time { return 7 }
	tr := NewTracerWithClock(clock)
	var wg sync.WaitGroup
	const workers = 8
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := NewSpanContext(int64(i), 1)
			root := tr.StartRoot(tr.Now(), "w", "work", sc)
			for j := int64(0); j < 50; j++ {
				ch := root.Child(tr.Now(), "w", "step", j+2)
				ch.Annotate(tr.Now(), "tick")
				ch.End(tr.Now())
			}
			root.End(tr.Now())
		}(i)
	}
	wg.Wait()
	sums := tr.Summaries()
	if len(sums) != workers {
		t.Fatalf("traces = %d, want %d", len(sums), workers)
	}
	for id, s := range sums {
		if s.Open != 0 {
			t.Fatalf("trace %s left %d spans open", IDString(id), s.Open)
		}
		if s.Spans["step"] != 50 {
			t.Fatalf("trace %s: steps = %d, want 50", IDString(id), s.Spans["step"])
		}
	}
}
