package obs

import (
	"bytes"
	"strings"
	"testing"

	"incastproxy/internal/units"
)

const us = units.Time(units.Microsecond)

// Series of different lengths must merge on the union of timestamps with
// blank cells — the regression the old index-aligned writer had, where the
// shorter series' samples were stamped with the longer one's times.
func TestSeriesSetUnionMerge(t *testing.T) {
	ss := &SeriesSet{}
	long := ss.Add("long")
	short := ss.Add("short")
	for i := 1; i <= 4; i++ {
		long.Add(units.Time(i)*us, int64(i*10))
	}
	short.Add(2*us, 200) // sampled late, over a shorter window
	var b bytes.Buffer
	if err := ss.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"time_us,long,short",
		"1.000000,10,",
		"2.000000,20,200",
		"3.000000,30,",
		"4.000000,40,",
		"",
	}, "\n")
	if b.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", b.String(), want)
	}
}

// Duplicate timestamps must not wedge the per-series cursor: the last
// sample at a stamp wins and later rows still appear.
func TestSeriesSetDuplicateTimestamps(t *testing.T) {
	ss := &SeriesSet{}
	s := ss.Add("q")
	s.Add(1*us, 5)
	s.Add(1*us, 6) // same stamp, later sample: wins
	s.Add(2*us, 7)
	var b bytes.Buffer
	if err := ss.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "time_us,q\n1.000000,6\n2.000000,7\n"
	if b.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestSeriesPeakMean(t *testing.T) {
	var s Series
	if v, _ := s.Peak(); v != 0 {
		t.Fatal("empty peak should be 0")
	}
	if s.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	s.Add(1*us, 10)
	s.Add(2*us, 30)
	s.Add(3*us, 20)
	v, at := s.Peak()
	if v != 30 || at != 2*us {
		t.Fatalf("peak = %d @ %v", v, at)
	}
	if s.Mean() != 20 {
		t.Fatalf("mean = %d", s.Mean())
	}
}
