package obs

// Golden test for the Prometheus text exposition: one registry covering
// every rendering rule — plain and labeled counters (one TYPE line per
// base name), gauges, windowed-quantile series, histograms with
// cumulative buckets, and label-value escaping — compared byte-for-byte.
// Any format drift (ordering, TYPE dedup, escaping) fails here first.

import (
	"testing"

	"incastproxy/internal/units"
)

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(`relay_sheds_total{verdict="busy"}`).Add(2)
	r.Counter(LabeledName("relay_sheds_total", "verdict", `a"b\`)).Add(4)
	r.Gauge("active").Set(3)
	r.Gauge(LabeledName("note", "k", "x\ny")).Set(7)
	r.Histogram("lat_us", []int64{10, 100}).Observe(50)
	w := r.Window("dial_us", 0, 8)
	w.Observe(units.Time(1), 10)
	w.Observe(units.Time(2), 20)
	w.Observe(units.Time(3), 30)

	const want = `# TYPE dial_us_count counter
dial_us_count 3
# TYPE relay_sheds_total counter
relay_sheds_total{verdict="a\"b\\"} 4
relay_sheds_total{verdict="busy"} 2
# TYPE active gauge
active 3
# TYPE dial_us gauge
dial_us{quantile="0.5"} 20
dial_us{quantile="0.99"} 30
dial_us{quantile="0.999"} 30
# TYPE note gauge
note{k="x\ny"} 7
# TYPE lat_us histogram
lat_us_bucket{le="10"} 0
lat_us_bucket{le="100"} 1
lat_us_bucket{le="+Inf"} 1
lat_us_sum 50
lat_us_count 1
`
	if got := r.Snapshot().Text(); got != want {
		t.Fatalf("exposition drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabeledNameEscaping(t *testing.T) {
	for _, tc := range []struct{ val, want string }{
		{"plain", `m{k="plain"}`},
		{`back\slash`, `m{k="back\\slash"}`},
		{`qu"ote`, `m{k="qu\"ote"}`},
		{"new\nline", `m{k="new\nline"}`},
	} {
		if got := LabeledName("m", "k", tc.val); got != tc.want {
			t.Fatalf("LabeledName(%q) = %q, want %q", tc.val, got, tc.want)
		}
	}
}
