package obs

// Sliding-window streaming quantiles. A WindowQuantile keeps the last N
// observations in a ring (optionally also bounded by sample age relative
// to the newest observation — no clock is read, so the type is safe in
// virtual-time packages) and answers p50/p99/p999 queries over the live
// window. Registries expose them on /metrics as gauge series labeled
// {quantile="0.5"|"0.99"|"0.999"}.

import (
	"sort"
	"sync"

	"incastproxy/internal/units"
)

// WindowQuantile is a fixed-capacity sliding window of observations.
// Nil-safe like the other instruments. Create with NewWindowQuantile or
// Registry.Window.
type WindowQuantile struct {
	mu     sync.Mutex
	window units.Duration // 0 = count-bounded only
	at     []units.Time   // ring, parallel to vs
	vs     []int64
	head   int // next write position
	n      int // live samples
	total  uint64
}

// DefaultWindowSize is the sample capacity Registry.Window uses when the
// caller passes size <= 0.
const DefaultWindowSize = 1024

// NewWindowQuantile returns a window holding at most size samples (and,
// if window > 0, only samples younger than window relative to the newest
// observation's timestamp).
func NewWindowQuantile(window units.Duration, size int) *WindowQuantile {
	if size <= 0 {
		size = DefaultWindowSize
	}
	return &WindowQuantile{
		window: window,
		at:     make([]units.Time, size),
		vs:     make([]int64, size),
	}
}

// Observe records one value at the given timestamp. Timestamps must be
// non-decreasing for the age bound to be meaningful; the count bound
// never needs them.
func (w *WindowQuantile) Observe(at units.Time, v int64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.at[w.head] = at
	w.vs[w.head] = v
	w.head = (w.head + 1) % len(w.vs)
	if w.n < len(w.vs) {
		w.n++
	}
	w.total++
	w.evictLocked(at)
	w.mu.Unlock()
}

// evictLocked drops samples older than the age window, measured against
// the newest timestamp (not a wall clock).
func (w *WindowQuantile) evictLocked(newest units.Time) {
	if w.window <= 0 {
		return
	}
	cutoff := newest - units.Time(w.window)
	for w.n > 0 {
		oldest := (w.head - w.n + len(w.vs)) % len(w.vs)
		if w.at[oldest] >= cutoff {
			return
		}
		w.n--
	}
}

// Count returns the number of live samples in the window.
func (w *WindowQuantile) Count() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Total returns the lifetime observation count (exported as a _count
// counter so rate() works even though the window forgets).
func (w *WindowQuantile) Total() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// Quantile returns the q-quantile (0 < q <= 1, nearest-rank) over the
// live window, or 0 with ok=false when the window is empty.
func (w *WindowQuantile) Quantile(q float64) (int64, bool) {
	if w == nil {
		return 0, false
	}
	w.mu.Lock()
	sorted := make([]int64, w.n)
	for i := 0; i < w.n; i++ {
		sorted[i] = w.vs[(w.head-w.n+i+len(w.vs))%len(w.vs)]
	}
	w.mu.Unlock()
	if len(sorted) == 0 {
		return 0, false
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	idx := int(q*float64(len(sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx], true
}
