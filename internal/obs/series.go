package obs

import (
	"fmt"
	"io"
	"sort"

	"incastproxy/internal/units"
)

// Point is one sample of a time series in virtual time.
type Point struct {
	At    units.Time
	Value int64
}

// Series is an append-only sampled time series (e.g. queue occupancy).
type Series struct {
	Label  string
	Points []Point
}

// Add appends one sample.
func (s *Series) Add(at units.Time, v int64) {
	s.Points = append(s.Points, Point{At: at, Value: v})
}

// Peak returns the maximum sampled value and the time it was observed.
func (s *Series) Peak() (int64, units.Time) {
	var maxV int64
	var at units.Time
	for _, p := range s.Points {
		if p.Value > maxV {
			maxV, at = p.Value, p.At
		}
	}
	return maxV, at
}

// Mean returns the average of the sampled values (0 when empty).
func (s *Series) Mean() int64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum int64
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / int64(len(s.Points))
}

// SeriesSet is a group of series sharing one export. Unlike the old
// trace.Recorder CSV writer — which aligned rows by sample index, silently
// misattributing timestamps whenever series had different lengths — the set
// merges rows on the union of all timestamps in time order, leaving cells
// blank where a series has no sample at that instant.
type SeriesSet struct {
	Series []*Series
}

// Add registers a new empty series under the given label.
func (ss *SeriesSet) Add(label string) *Series {
	s := &Series{Label: label}
	ss.Series = append(ss.Series, s)
	return s
}

// WriteCSV emits "time_us,label1,label2,..." rows over the union of all
// sample timestamps, sorted by time. Output is deterministic for identical
// series contents.
func (ss *SeriesSet) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "time_us"); err != nil {
		return err
	}
	for _, s := range ss.Series {
		if _, err := fmt.Fprintf(w, ",%s", csvEscape(s.Label)); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}

	// Union of timestamps across all series.
	stampSet := make(map[units.Time]struct{})
	for _, s := range ss.Series {
		for _, p := range s.Points {
			stampSet[p.At] = struct{}{}
		}
	}
	stamps := make([]units.Time, 0, len(stampSet))
	for at := range stampSet {
		stamps = append(stamps, at)
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i] < stamps[j] })

	// Per-series cursors; each series' points are in append (time) order.
	idx := make([]int, len(ss.Series))
	for _, at := range stamps {
		if _, err := io.WriteString(w, tsMicros(at)); err != nil {
			return err
		}
		for si, s := range ss.Series {
			// Consume every point at (or stranded before) this stamp;
			// with duplicate timestamps the last sample wins.
			cell := ""
			for idx[si] < len(s.Points) && s.Points[idx[si]].At <= at {
				if s.Points[idx[si]].At == at {
					cell = fmt.Sprintf("%d", s.Points[idx[si]].Value)
				}
				idx[si]++
			}
			if _, err := fmt.Fprintf(w, ",%s", cell); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
