package obs

import (
	"strings"
	"testing"
)

// Instrumented code records unconditionally; every instrument and the
// registry itself must be safe (and silent) with nil receivers.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Load() != 0 || c.Value() != 0 {
		t.Fatal("nil counter should read zero")
	}
	var g *Gauge
	g.Add(-3)
	g.Set(7)
	if g.Load() != 0 {
		t.Fatal("nil gauge should read zero")
	}
	var m *MaxGauge
	m.Observe(9)
	if m.Load() != 0 {
		t.Fatal("nil max gauge should read zero")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should read zero")
	}

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Max("x") != nil ||
		r.Histogram("x", []int64{1}) != nil {
		t.Fatal("nil registry should hand out nil instruments")
	}
	r.CounterFunc("x", func() uint64 { return 1 })
	r.GaugeFunc("x", func() int64 { return 1 })
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
	if s.Text() != "" {
		t.Fatalf("nil registry text = %q", s.Text())
	}
}

func TestCounterGaugeMax(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Add(2)
	c.Inc()
	if c.Load() != 3 {
		t.Fatalf("counter = %d, want 3", c.Load())
	}
	if r.Counter("hits") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-4)
	if g.Load() != 6 {
		t.Fatalf("gauge = %d, want 6", g.Load())
	}
	m := r.Max("peak")
	m.Observe(5)
	m.Observe(3) // lower: ignored
	m.Observe(8)
	if m.Load() != 8 {
		t.Fatalf("max = %d, want 8", m.Load())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 1+10+11+100+5000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	hv := r.Snapshot().Histograms[0]
	// Bounds are inclusive upper edges: 1 and 10 land in le=10; 11 and
	// 100 in le=100; 5000 overflows to +Inf.
	want := []uint64{2, 2, 0, 1}
	for i, w := range want {
		if hv.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, hv.Counts[i], w, hv.Counts)
		}
	}
}

func TestLazyCollectors(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.CounterFunc("lazy_total", func() uint64 { calls++; return 42 })
	r.GaugeFunc("lazy_depth", func() int64 { return -7 })
	if calls != 0 {
		t.Fatal("collector must not run before snapshot")
	}
	s := r.Snapshot()
	if calls != 1 {
		t.Fatalf("collector ran %d times, want 1", calls)
	}
	if v, ok := s.Get("lazy_total"); !ok || v != 42 {
		t.Fatalf("lazy_total = %d,%v", v, ok)
	}
	if v, ok := s.Get("lazy_depth"); !ok || v != -7 {
		t.Fatalf("lazy_depth = %d,%v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get on absent name must report !ok")
	}
}

// Registration order must not leak into the export: two registries built in
// different orders with equal state serialize byte-identically.
func TestSnapshotDeterministicOrder(t *testing.T) {
	mk := func(order []string) string {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n).Add(5)
		}
		r.Gauge("g").Set(1)
		r.Histogram("h", []int64{1, 2}).Observe(2)
		return r.Snapshot().Text()
	}
	a := mk([]string{"b_total", "a_total", "c_total"})
	b := mk([]string{"c_total", "b_total", "a_total"})
	if a != b {
		t.Fatalf("registration order changed the export:\n%s\nvs\n%s", a, b)
	}
	idxA := strings.Index(a, "a_total")
	idxB := strings.Index(a, "b_total")
	if idxA < 0 || idxB < 0 || idxA > idxB {
		t.Fatalf("export not name-sorted:\n%s", a)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`q_dropped_total{port="a->b"}`).Add(3)
	r.Counter(`q_dropped_total{port="c->d"}`).Add(4)
	r.Gauge("depth").Set(2)
	r.Histogram("lat_us", []int64{10, 100}).Observe(50)
	got := r.Snapshot().Text()

	// One TYPE line per base name even with two labeled children.
	if n := strings.Count(got, "# TYPE q_dropped_total counter"); n != 1 {
		t.Fatalf("TYPE lines for labeled counter = %d, want 1\n%s", n, got)
	}
	for _, want := range []string{
		`q_dropped_total{port="a->b"} 3`,
		`q_dropped_total{port="c->d"} 4`,
		"# TYPE depth gauge",
		"depth 2",
		"# TYPE lat_us histogram",
		`lat_us_bucket{le="10"} 0`,
		`lat_us_bucket{le="100"} 1`,
		`lat_us_bucket{le="+Inf"} 1`,
		"lat_us_sum 50",
		"lat_us_count 1",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}
