package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"

	"incastproxy/internal/units"
)

// Event phases, following the Chrome trace-event format.
const (
	PhaseBegin   byte = 'B' // start of a duration slice (flow start, fault inject)
	PhaseEnd     byte = 'E' // end of a duration slice (flow completion, fault clear)
	PhaseInstant byte = 'i' // a point event (trim, NACK, RTO, ...)
	PhaseCounter byte = 'C' // a sampled value (cwnd, queue occupancy)

	// Async phases carry spans (see span.go). Unlike B/E, async slices are
	// matched by id rather than stack position, so client- and server-side
	// spans of one flow may overlap on a track without corrupting nesting.
	PhaseSpanBegin byte = 'b'
	PhaseSpanEnd   byte = 'e'
)

// Arg is one key/value annotation on an event.
type Arg struct {
	Key string
	Val string
}

// Event is one recorded trace entry. At is virtual (simulated) time — or
// wall time for tracers created with NewTracerWithClock; TID groups events
// of one logical track (a flow ID, or 0 for component-level events).
type Event struct {
	At   units.Time
	Ph   byte
	Cat  string
	Name string
	TID  int64
	Args []Arg
	// Val carries the sampled value for PhaseCounter events.
	Val float64
	// Trace and Span link the event into a causal flow tree (span.go);
	// both are zero for plain (non-span) events. Span doubles as the
	// Chrome async id for PhaseSpanBegin/PhaseSpanEnd.
	Trace uint64
	Span  uint64
}

// Tracer is an append-only event log. The zero value is unusable; create
// with NewTracer (virtual time: callers pass timestamps explicitly) or
// NewTracerWithClock (live paths: Now() reads the injected clock). A nil
// *Tracer discards every record, so instrumented code never needs an
// enabled-check. All methods are safe for concurrent use; events keep
// their global record order, so single-threaded (simulator) logs replay
// byte-identically.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	clock  func() units.Time
}

// NewTracer returns an empty tracer with no clock: every record carries a
// caller-supplied (virtual) timestamp and Now() returns 0.
func NewTracer() *Tracer { return &Tracer{} }

// NewTracerWithClock returns a tracer whose Now() reads the given clock.
// Live paths (relay, chaosnet, proxybench) inject a wall-clock adapter
// here — the obs package itself never reads time.Now, keeping the
// wall-clock lint clean — while sim paths may inject the engine clock.
func NewTracerWithClock(clock func() units.Time) *Tracer {
	return &Tracer{clock: clock}
}

// Now returns the injected clock's current time, or 0 if the tracer is
// nil or clockless. Use it to timestamp records on live paths where no
// virtual time exists.
func (t *Tracer) Now() units.Time {
	if t == nil || t.clock == nil {
		return 0
	}
	return t.clock()
}

// Enabled reports whether records are being kept.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

func (t *Tracer) add(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Begin opens a duration slice named name on track tid.
func (t *Tracer) Begin(at units.Time, cat, name string, tid int64, args ...Arg) {
	t.add(Event{At: at, Ph: PhaseBegin, Cat: cat, Name: name, TID: tid, Args: args})
}

// End closes the innermost open slice with the same name on track tid.
func (t *Tracer) End(at units.Time, cat, name string, tid int64, args ...Arg) {
	t.add(Event{At: at, Ph: PhaseEnd, Cat: cat, Name: name, TID: tid, Args: args})
}

// Instant records a point event.
func (t *Tracer) Instant(at units.Time, cat, name string, tid int64, args ...Arg) {
	t.add(Event{At: at, Ph: PhaseInstant, Cat: cat, Name: name, TID: tid, Args: args})
}

// Count records a sampled value; name identifies the counter track (embed
// the flow/port label in it — Chrome counters are keyed by name, not tid).
func (t *Tracer) Count(at units.Time, cat, name string, tid int64, val float64) {
	t.add(Event{At: at, Ph: PhaseCounter, Cat: cat, Name: name, TID: tid, Val: val})
}

// Append copies every event of other onto t in record order, merging the
// two logs onto one timeline (e.g. one trace file for several schemes).
func (t *Tracer) Append(other *Tracer) {
	if t == nil || other == nil {
		return
	}
	evs := other.Events()
	t.mu.Lock()
	t.events = append(t.events, evs...)
	t.mu.Unlock()
}

// Logf records a free-form instant annotation, the shim for the old
// trace.Recorder.Log call sites.
func (t *Tracer) Logf(at units.Time, cat string, format string, args ...any) {
	if t == nil {
		return
	}
	t.Instant(at, cat, fmt.Sprintf(format, args...), 0)
}

// tsMicros renders a picosecond virtual timestamp as the microsecond
// double Chrome expects, with fixed precision for determinism.
func tsMicros(at units.Time) string {
	return strconv.FormatFloat(float64(at)/1e6, 'f', 6, 64)
}

// WriteChromeTrace serializes the log in the Chrome trace-event JSON array
// format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Counter events become args:{"value": v}; instant events get scope "t"
// (thread) so they render as ticks on their flow track; span events carry
// their span hex as the async id, so begin/end pairs match across
// goroutines and processes.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range t.Events() {
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if err := writeChromeEvent(w, ev); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

func writeChromeEvent(w io.Writer, ev Event) error {
	name, err := json.Marshal(ev.Name)
	if err != nil {
		return err
	}
	cat, err := json.Marshal(ev.Cat)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, `{"name":%s,"cat":%s,"ph":"%c","ts":%s,"pid":1,"tid":%d`,
		name, cat, ev.Ph, tsMicros(ev.At), ev.TID); err != nil {
		return err
	}
	if ev.Ph == PhaseInstant {
		if _, err := io.WriteString(w, `,"s":"t"`); err != nil {
			return err
		}
	}
	if ev.Ph == PhaseSpanBegin || ev.Ph == PhaseSpanEnd {
		if _, err := fmt.Fprintf(w, `,"id":"0x%x"`, ev.Span); err != nil {
			return err
		}
	}
	if ev.Ph == PhaseCounter {
		if _, err := fmt.Fprintf(w, `,"args":{"value":%s}`,
			strconv.FormatFloat(ev.Val, 'g', -1, 64)); err != nil {
			return err
		}
	} else if len(ev.Args) > 0 {
		if _, err := io.WriteString(w, `,"args":{`); err != nil {
			return err
		}
		for i, a := range ev.Args {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			k, err := json.Marshal(a.Key)
			if err != nil {
				return err
			}
			v, err := json.Marshal(a.Val)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s:%s", k, v); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}"); err != nil {
			return err
		}
	}
	_, err = io.WriteString(w, "}")
	return err
}

// WriteCSV serializes the log as one deterministic CSV table:
// time_us,phase,cat,name,tid,value,args. Args are joined k=v;k=v.
func (t *Tracer) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "time_us,phase,cat,name,tid,value,args\n"); err != nil {
		return err
	}
	for _, ev := range t.Events() {
		val := ""
		if ev.Ph == PhaseCounter {
			val = strconv.FormatFloat(ev.Val, 'g', -1, 64)
		}
		args := ""
		for i, a := range ev.Args {
			if i > 0 {
				args += ";"
			}
			args += a.Key + "=" + a.Val
		}
		if _, err := fmt.Fprintf(w, "%s,%c,%s,%s,%d,%s,%s\n",
			tsMicros(ev.At), ev.Ph, csvEscape(ev.Cat), csvEscape(ev.Name), ev.TID, val, csvEscape(args)); err != nil {
			return err
		}
	}
	return nil
}

// csvEscape quotes a field if it contains a comma, quote, or newline.
func csvEscape(s string) string {
	needs := false
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == '"' || c == '\n' || c == '\r' {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	return strconv.Quote(s)
}
