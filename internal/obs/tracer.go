package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"incastproxy/internal/units"
)

// Event phases, following the Chrome trace-event format.
const (
	PhaseBegin   byte = 'B' // start of a duration slice (flow start, fault inject)
	PhaseEnd     byte = 'E' // end of a duration slice (flow completion, fault clear)
	PhaseInstant byte = 'i' // a point event (trim, NACK, RTO, ...)
	PhaseCounter byte = 'C' // a sampled value (cwnd, queue occupancy)
)

// Arg is one key/value annotation on an event.
type Arg struct {
	Key string
	Val string
}

// Event is one recorded trace entry. At is virtual (simulated) time; TID
// groups events of one logical track (a flow ID, or 0 for component-level
// events).
type Event struct {
	At   units.Time
	Ph   byte
	Cat  string
	Name string
	TID  int64
	Args []Arg
	// Val carries the sampled value for PhaseCounter events.
	Val float64
}

// Tracer is an append-only event log in virtual time. The zero value is
// unusable; create with NewTracer. A nil *Tracer discards every record,
// so instrumented code never needs an enabled-check. Tracer is not
// goroutine-safe: it is designed for the single-threaded simulator.
type Tracer struct {
	events []Event
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Enabled reports whether records are being kept.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded events in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

func (t *Tracer) add(ev Event) {
	if t == nil {
		return
	}
	t.events = append(t.events, ev)
}

// Begin opens a duration slice named name on track tid.
func (t *Tracer) Begin(at units.Time, cat, name string, tid int64, args ...Arg) {
	t.add(Event{At: at, Ph: PhaseBegin, Cat: cat, Name: name, TID: tid, Args: args})
}

// End closes the innermost open slice with the same name on track tid.
func (t *Tracer) End(at units.Time, cat, name string, tid int64, args ...Arg) {
	t.add(Event{At: at, Ph: PhaseEnd, Cat: cat, Name: name, TID: tid, Args: args})
}

// Instant records a point event.
func (t *Tracer) Instant(at units.Time, cat, name string, tid int64, args ...Arg) {
	t.add(Event{At: at, Ph: PhaseInstant, Cat: cat, Name: name, TID: tid, Args: args})
}

// Count records a sampled value; name identifies the counter track (embed
// the flow/port label in it — Chrome counters are keyed by name, not tid).
func (t *Tracer) Count(at units.Time, cat, name string, tid int64, val float64) {
	t.add(Event{At: at, Ph: PhaseCounter, Cat: cat, Name: name, TID: tid, Val: val})
}

// Append copies every event of other onto t in record order, merging the
// two logs onto one timeline (e.g. one trace file for several schemes).
func (t *Tracer) Append(other *Tracer) {
	if t == nil || other == nil {
		return
	}
	t.events = append(t.events, other.events...)
}

// Logf records a free-form instant annotation, the shim for the old
// trace.Recorder.Log call sites.
func (t *Tracer) Logf(at units.Time, cat string, format string, args ...any) {
	if t == nil {
		return
	}
	t.Instant(at, cat, fmt.Sprintf(format, args...), 0)
}

// tsMicros renders a picosecond virtual timestamp as the microsecond
// double Chrome expects, with fixed precision for determinism.
func tsMicros(at units.Time) string {
	return strconv.FormatFloat(float64(at)/1e6, 'f', 6, 64)
}

// WriteChromeTrace serializes the log in the Chrome trace-event JSON array
// format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Counter events become args:{"value": v}; instant events get scope "t"
// (thread) so they render as ticks on their flow track.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range t.Events() {
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if err := writeChromeEvent(w, ev); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

func writeChromeEvent(w io.Writer, ev Event) error {
	name, err := json.Marshal(ev.Name)
	if err != nil {
		return err
	}
	cat, err := json.Marshal(ev.Cat)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, `{"name":%s,"cat":%s,"ph":"%c","ts":%s,"pid":1,"tid":%d`,
		name, cat, ev.Ph, tsMicros(ev.At), ev.TID); err != nil {
		return err
	}
	if ev.Ph == PhaseInstant {
		if _, err := io.WriteString(w, `,"s":"t"`); err != nil {
			return err
		}
	}
	if ev.Ph == PhaseCounter {
		if _, err := fmt.Fprintf(w, `,"args":{"value":%s}`,
			strconv.FormatFloat(ev.Val, 'g', -1, 64)); err != nil {
			return err
		}
	} else if len(ev.Args) > 0 {
		if _, err := io.WriteString(w, `,"args":{`); err != nil {
			return err
		}
		for i, a := range ev.Args {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			k, err := json.Marshal(a.Key)
			if err != nil {
				return err
			}
			v, err := json.Marshal(a.Val)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s:%s", k, v); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}"); err != nil {
			return err
		}
	}
	_, err = io.WriteString(w, "}")
	return err
}

// WriteCSV serializes the log as one deterministic CSV table:
// time_us,phase,cat,name,tid,value,args. Args are joined k=v;k=v.
func (t *Tracer) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "time_us,phase,cat,name,tid,value,args\n"); err != nil {
		return err
	}
	for _, ev := range t.Events() {
		val := ""
		if ev.Ph == PhaseCounter {
			val = strconv.FormatFloat(ev.Val, 'g', -1, 64)
		}
		args := ""
		for i, a := range ev.Args {
			if i > 0 {
				args += ";"
			}
			args += a.Key + "=" + a.Val
		}
		if _, err := fmt.Fprintf(w, "%s,%c,%s,%s,%d,%s,%s\n",
			tsMicros(ev.At), ev.Ph, csvEscape(ev.Cat), csvEscape(ev.Name), ev.TID, val, csvEscape(args)); err != nil {
			return err
		}
	}
	return nil
}

// csvEscape quotes a field if it contains a comma, quote, or newline.
func csvEscape(s string) string {
	needs := false
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == '"' || c == '\n' || c == '\r' {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	return strconv.Quote(s)
}
