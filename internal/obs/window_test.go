package obs

import (
	"testing"

	"incastproxy/internal/units"
)

func TestWindowQuantileBasics(t *testing.T) {
	w := NewWindowQuantile(0, 8)
	if _, ok := w.Quantile(0.5); ok {
		t.Fatal("empty window must report ok=false")
	}
	for i := int64(1); i <= 5; i++ {
		w.Observe(units.Time(i), i*10)
	}
	if got := w.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := w.Total(); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
	if v, _ := w.Quantile(0.5); v != 30 {
		t.Fatalf("p50 = %d, want 30 (nearest rank of 10..50)", v)
	}
	if v, _ := w.Quantile(1); v != 50 {
		t.Fatalf("p100 = %d, want 50", v)
	}
}

func TestWindowQuantileRingEviction(t *testing.T) {
	w := NewWindowQuantile(0, 4)
	for i := int64(1); i <= 10; i++ {
		w.Observe(units.Time(i), i)
	}
	// Only the last 4 samples (7..10) survive the count bound.
	if got := w.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got := w.Total(); got != 10 {
		t.Fatalf("total = %d, want 10 (lifetime count must not forget)", got)
	}
	if v, _ := w.Quantile(0.5); v != 8 {
		t.Fatalf("p50 = %d, want 8 over the live window 7..10", v)
	}
}

func TestWindowQuantileAgeEviction(t *testing.T) {
	// Age bound of 100 time units, measured against the newest sample —
	// no clock involved.
	w := NewWindowQuantile(units.Duration(100), 16)
	w.Observe(10, 1)
	w.Observe(20, 2)
	w.Observe(200, 3) // evicts both older samples (cutoff 100)
	if got := w.Count(); got != 1 {
		t.Fatalf("count = %d, want 1 after age eviction", got)
	}
	if v, _ := w.Quantile(0.5); v != 3 {
		t.Fatalf("p50 = %d, want 3", v)
	}
}

// A sample whose timestamp lands exactly on the age cutoff is inside the
// window: eviction keeps at[oldest] >= cutoff, so the bound is inclusive.
func TestWindowQuantileSampleExactlyAtCutoff(t *testing.T) {
	w := NewWindowQuantile(units.Duration(100), 16)
	w.Observe(99, 1)  // one tick older than the cutoff: evicted
	w.Observe(100, 2) // exactly at the cutoff: retained
	w.Observe(150, 3)
	w.Observe(200, 4) // newest; cutoff = 200 - 100 = 100
	if got := w.Count(); got != 3 {
		t.Fatalf("count = %d, want 3 (cutoff is inclusive)", got)
	}
	if v, _ := w.Quantile(0.0001); v != 2 {
		t.Fatalf("min = %d, want 2 (the exactly-at-cutoff sample)", v)
	}
}

// Equal timestamps must never age-evict each other — their mutual age is
// zero — even when they wrap the ring and trip the count bound.
func TestWindowQuantileEqualTimestampsFillRing(t *testing.T) {
	w := NewWindowQuantile(units.Duration(1), 4)
	for i := int64(1); i <= 10; i++ {
		w.Observe(units.Time(500), i)
	}
	if got := w.Count(); got != 4 {
		t.Fatalf("count = %d, want 4 (count bound only)", got)
	}
	if got := w.Total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
	// The ring holds the last four values, 7..10.
	if v, _ := w.Quantile(1); v != 10 {
		t.Fatalf("p100 = %d, want 10", v)
	}
	if v, _ := w.Quantile(0.0001); v != 7 {
		t.Fatalf("min = %d, want 7", v)
	}
}

// When the age window is smaller than the gap between observations, every
// arrival evicts everything before it: the window degenerates to the single
// newest sample instead of underflowing or going negative.
func TestWindowQuantileWindowSmallerThanGap(t *testing.T) {
	w := NewWindowQuantile(units.Duration(10), 16)
	for i := int64(0); i < 5; i++ {
		w.Observe(units.Time(i*1000), i+1)
		if got := w.Count(); got != 1 {
			t.Fatalf("after sample %d: count = %d, want 1", i+1, got)
		}
		if v, ok := w.Quantile(0.5); !ok || v != i+1 {
			t.Fatalf("after sample %d: p50 = %d (ok=%v), want %d", i+1, v, ok, i+1)
		}
	}
	if got := w.Total(); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
}

func TestWindowQuantileNilSafety(t *testing.T) {
	var w *WindowQuantile
	w.Observe(0, 1)
	if w.Count() != 0 || w.Total() != 0 {
		t.Fatal("nil window must count nothing")
	}
	if _, ok := w.Quantile(0.5); ok {
		t.Fatal("nil window must report ok=false")
	}
}

func TestRegistryWindowExport(t *testing.T) {
	r := NewRegistry()
	w := r.Window("dial_us", 0, 4)
	if r.Window("dial_us", 0, 4) != w {
		t.Fatal("Window must be get-or-create")
	}
	for i := int64(1); i <= 4; i++ {
		w.Observe(units.Time(i), i*100)
	}
	snap := r.Snapshot()
	if v, ok := snap.Get(`dial_us{quantile="0.5"}`); !ok || v != 200 {
		t.Fatalf("p50 gauge = %d (ok=%v), want 200", v, ok)
	}
	if v, ok := snap.Get(`dial_us{quantile="0.99"}`); !ok || v != 400 {
		t.Fatalf("p99 gauge = %d (ok=%v), want 400", v, ok)
	}
	if v, ok := snap.Get("dial_us_count"); !ok || v != 4 {
		t.Fatalf("count = %d (ok=%v), want 4", v, ok)
	}
}
