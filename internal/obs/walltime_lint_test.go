package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The simulator and everything it records through run on virtual time;
// a single wall-clock read in a recording path silently breaks run-to-run
// determinism (and the byte-identical manifest/trace guarantee). This lint
// forbids wall-clock calls in the non-test sources of the virtual-time
// packages. `make lint` runs it explicitly.
func TestNoWallClockInVirtualTimePaths(t *testing.T) {
	banned := map[string]bool{
		"Now": true, "Sleep": true, "Since": true, "Until": true,
		"Tick": true, "After": true, "NewTimer": true, "NewTicker": true,
	}
	// ../wire rides along: the dial preamble now carries trace context, and
	// encoding/decoding it must never read a clock of its own.
	dirs := []string{"../sim", "../netsim", "../transport", "../control", "../chaosnet", "../wire", "."}
	fset := token.NewFileSet()
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			name := ent.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			// Resolve the local name of the "time" import (usually "time").
			timePkg := ""
			for _, imp := range f.Imports {
				if strings.Trim(imp.Path.Value, `"`) == "time" {
					timePkg = "time"
					if imp.Name != nil {
						timePkg = imp.Name.Name
					}
				}
			}
			if timePkg == "" {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkg, ok := sel.X.(*ast.Ident)
				if !ok || pkg.Name != timePkg || !banned[sel.Sel.Name] {
					return true
				}
				t.Errorf("%s: wall-clock call time.%s in a virtual-time package (use the sim engine clock)",
					fset.Position(sel.Pos()), sel.Sel.Name)
				return true
			})
		}
	}
}
