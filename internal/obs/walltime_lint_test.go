package obs

import (
	"testing"

	"incastproxy/internal/lint"
)

// The simulator and everything it records through run on virtual time; a
// single wall-clock read in a recording path silently breaks run-to-run
// determinism (and the byte-identical manifest/trace guarantee).
//
// This test is a thin shim over the wallclock analyzer in internal/lint: it
// loads the whole module and fails on any unsuppressed finding, so plain
// `go test ./...` keeps enforcing the clock ban even where cmd/lint isn't
// wired in. Which packages are checked is no longer a directory list here —
// each virtual-time package opts in with a "lint:virtual-time" file pragma
// next to its package doc (the old hand-maintained list drifted once:
// internal/wire had to be patched in after the dial preamble grew trace
// context). `make lint` runs the full suite via cmd/lint.
func TestNoWallClockInVirtualTimePaths(t *testing.T) {
	pkgs, err := lint.LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range lint.Run(pkgs, []*lint.Analyzer{lint.Wallclock}) {
		t.Errorf("%s", d)
	}
}

// TestVirtualTimePragmaCoverage pins the opt-in set: losing a pragma (say,
// in a refactor that rewrites a package doc file) would silently drop that
// package from the wallclock ban, which is exactly the drift failure mode
// the pragma design replaces. Extend this list when a new package opts in.
func TestVirtualTimePragmaCoverage(t *testing.T) {
	want := map[string]bool{
		"incastproxy/internal/sim":       true,
		"incastproxy/internal/netsim":    true,
		"incastproxy/internal/transport": true,
		"incastproxy/internal/control":   true,
		"incastproxy/internal/chaosnet":  true,
		"incastproxy/internal/wire":      true,
		"incastproxy/internal/obs":       true,
		"incastproxy/internal/model":     true,
	}
	pkgs, err := lint.LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		if lint.HasVirtualTimePragma(pkg) {
			if !want[pkg.Path] {
				// New opt-ins are welcome; record them here so removal is
				// a visible decision too.
				t.Errorf("package %s carries the virtual-time pragma but is not in the coverage list; add it", pkg.Path)
			}
			delete(want, pkg.Path)
		}
	}
	for path := range want {
		t.Errorf("package %s lost its lint:virtual-time pragma", path)
	}
}
