package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"incastproxy/internal/units"
)

// Counter is a monotonically increasing uint64 metric. All methods are safe
// for concurrent use and safe on a nil receiver (writes become no-ops, reads
// return zero), so hot paths can record unconditionally.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value. (Named for drop-in compatibility with the
// atomic.Uint64 fields it replaced in relay.Metrics.)
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Value returns the current value.
func (c *Counter) Value() uint64 { return c.Load() }

// Gauge is a settable int64 metric (e.g. active connections). Nil-safe like
// Counter.
type Gauge struct {
	v atomic.Int64
}

// Add adjusts the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.Load() }

// MaxGauge tracks the high-water mark of an observed quantity.
type MaxGauge struct {
	v atomic.Int64
}

// Observe raises the recorded maximum to n if n exceeds it.
func (m *MaxGauge) Observe(n int64) {
	if m == nil {
		return
	}
	for {
		cur := m.v.Load()
		if n <= cur {
			return
		}
		if m.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the high-water mark.
func (m *MaxGauge) Load() int64 {
	if m == nil {
		return 0
	}
	return m.v.Load()
}

// Value returns the high-water mark.
func (m *MaxGauge) Value() int64 { return m.Load() }

// Histogram counts int64 observations into fixed buckets. Bounds are
// inclusive upper edges in ascending order; an implicit +Inf bucket catches
// the rest. Observe is lock-free: a binary search plus three atomic adds.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Int64
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// DefaultDurationBucketsMicros returns histogram bounds suited to latencies
// from sub-microsecond NIC hops to multi-second RTO stalls, in microseconds.
func DefaultDurationBucketsMicros() []int64 {
	return []int64{1, 2, 5, 10, 20, 50, 100, 200, 500,
		1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
		100_000, 200_000, 500_000, 1_000_000, 5_000_000}
}

// Registry holds named instruments and lazy collectors. Get-or-create
// lookups lock; recording on the returned instrument does not. A nil
// *Registry hands out nil instruments, so instrumentation can be wired
// unconditionally. Create with NewRegistry.
type Registry struct {
	mu           sync.Mutex
	counters     map[string]*Counter
	gauges       map[string]*Gauge
	maxes        map[string]*MaxGauge
	hists        map[string]*Histogram
	windows      map[string]*WindowQuantile
	counterFuncs map[string]func() uint64
	gaugeFuncs   map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     make(map[string]*Counter),
		gauges:       make(map[string]*Gauge),
		maxes:        make(map[string]*MaxGauge),
		hists:        make(map[string]*Histogram),
		windows:      make(map[string]*WindowQuantile),
		counterFuncs: make(map[string]func() uint64),
		gaugeFuncs:   make(map[string]func() int64),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Max returns the high-water gauge with the given name, creating it on
// first use.
func (r *Registry) Max(name string) *MaxGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.maxes[name]
	if !ok {
		m = &MaxGauge{}
		r.maxes[name] = m
	}
	return m
}

// Histogram returns the histogram with the given name, creating it with the
// given bucket bounds on first use (later calls reuse the existing buckets).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := append([]int64(nil), bounds...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Window returns the sliding-window quantile tracker with the given name,
// creating it with the given bounds on first use (later calls reuse the
// existing window). Snapshots export it as gauge series labeled
// {quantile="0.5"|"0.99"|"0.999"} plus a lifetime _count counter.
func (r *Registry) Window(name string, window units.Duration, size int) *WindowQuantile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.windows[name]
	if !ok {
		w = NewWindowQuantile(window, size)
		r.windows[name] = w
	}
	return w
}

// CounterFunc registers a lazy counter: fn is invoked only at snapshot time.
// Use it to export values some other struct already tracks (queue stats,
// sender stats) with zero hot-path cost.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFuncs[name] = fn
}

// GaugeFunc registers a lazy gauge, evaluated only at snapshot time.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// NamedValue is one scalar metric in a snapshot.
type NamedValue struct {
	Name  string
	Value int64
}

// HistogramValue is one histogram in a snapshot. Counts has one entry per
// bound plus a final +Inf bucket.
type HistogramValue struct {
	Name   string
	Bounds []int64
	Counts []uint64
	Sum    int64
	Count  uint64
}

// Snapshot is a point-in-time copy of a registry, sorted by metric name.
// Equal registry states produce byte-identical WriteText/WriteJSON output.
type Snapshot struct {
	Counters   []NamedValue
	Gauges     []NamedValue
	Histograms []HistogramValue
}

// Snapshot captures every instrument and collector. Collectors run under
// the registry lock in sorted-name order.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedValue{name, int64(c.Load())})
	}
	for name, fn := range r.counterFuncs {
		s.Counters = append(s.Counters, NamedValue{name, int64(fn())})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedValue{name, g.Load()})
	}
	for name, fn := range r.gaugeFuncs {
		s.Gauges = append(s.Gauges, NamedValue{name, fn()})
	}
	for name, m := range r.maxes {
		s.Gauges = append(s.Gauges, NamedValue{name, m.Load()})
	}
	for name, w := range r.windows {
		for _, q := range windowQuantiles {
			v, _ := w.Quantile(q.q)
			s.Gauges = append(s.Gauges, NamedValue{LabeledName(name, "quantile", q.label), v})
		}
		s.Counters = append(s.Counters, NamedValue{name + "_count", int64(w.Total())})
	}
	for name, h := range r.hists {
		hv := HistogramValue{
			Name:   name,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Sum:    h.sum.Load(),
			Count:  h.count.Load(),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sortNamed := func(vs []NamedValue) {
		sort.Slice(vs, func(i, j int) bool { return vs[i].Name < vs[j].Name })
	}
	sortNamed(s.Counters)
	sortNamed(s.Gauges)
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Get returns the snapshotted value of a scalar metric by name.
func (s Snapshot) Get(name string) (int64, bool) {
	for _, v := range s.Counters {
		if v.Name == name {
			return v.Value, true
		}
	}
	for _, v := range s.Gauges {
		if v.Name == name {
			return v.Value, true
		}
	}
	return 0, false
}

// baseName strips a {label="x"} suffix for Prometheus TYPE lines.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// windowQuantiles are the quantile series every WindowQuantile exports.
var windowQuantiles = []struct {
	q     float64
	label string
}{{0.5, "0.5"}, {0.99, "0.99"}, {0.999, "0.999"}}

// LabeledName renders base{key="val"} with the Prometheus text-format
// label-value escaping (backslash, double quote, newline). Use it when
// registering an instrument whose name carries a label pair.
func LabeledName(base, key, val string) string {
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	b.WriteString(key)
	b.WriteString(`="`)
	for i := 0; i < len(val); i++ {
		switch c := val[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteString(`"}`)
	return b.String()
}

// WriteText serializes the snapshot in the Prometheus text exposition
// format. Output is deterministic: sorted by name, fixed formatting.
func (s Snapshot) WriteText(w io.Writer) error {
	var lastType string
	emitType := func(name, kind string) error {
		b := baseName(name)
		key := b + "\x00" + kind
		if key == lastType {
			return nil
		}
		lastType = key
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", b, kind)
		return err
	}
	for _, c := range s.Counters {
		if err := emitType(c.Name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := emitType(g.Name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := emitType(h.Name, "histogram"); err != nil {
			return err
		}
		cum := uint64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", h.Name, b, cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", h.Name, h.Sum, h.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// Text returns the Prometheus text serialization as a string.
func (s Snapshot) Text() string {
	var b strings.Builder
	_ = s.WriteText(&b) // strings.Builder writes cannot fail
	return b.String()
}
