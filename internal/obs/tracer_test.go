package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"incastproxy/internal/units"
)

func sampleTracer() *Tracer {
	tr := NewTracer()
	tr.Begin(0, "flow", "flow 1", 1, Arg{Key: "bytes", Val: "1000"})
	tr.Instant(units.Time(1500), "flow", "nack", 1, Arg{Key: "seq", Val: "3"})
	tr.Count(units.Time(2*units.Microsecond), "queue", "queue recv-tor", 0, 4096)
	tr.Logf(units.Time(3*units.Microsecond), "log", "fault %s", "proxy-crash")
	tr.End(units.Time(4*units.Microsecond), "flow", "flow 1", 1, Arg{Key: "outcome", Val: "completed"})
	return tr
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must report disabled")
	}
	tr.Begin(0, "a", "b", 1)
	tr.End(0, "a", "b", 1)
	tr.Instant(0, "a", "b", 1)
	tr.Count(0, "a", "b", 1, 2)
	tr.Logf(0, "a", "x %d", 1)
	tr.Append(NewTracer())
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must stay empty")
	}
	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
}

// The Chrome export must be a JSON array Perfetto accepts: every event with
// name/cat/ph/ts/pid/tid, counters carrying args.value, instants scoped "t".
func TestChromeTraceValidJSON(t *testing.T) {
	var b bytes.Buffer
	if err := sampleTracer().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(b.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for _, ev := range evs {
		for _, k := range []string{"name", "cat", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing %q: %v", k, ev)
			}
		}
	}
	if evs[0]["ph"] != "B" || evs[4]["ph"] != "E" {
		t.Fatalf("phases = %v / %v", evs[0]["ph"], evs[4]["ph"])
	}
	if evs[1]["s"] != "t" {
		t.Fatalf("instant missing thread scope: %v", evs[1])
	}
	args, ok := evs[2]["args"].(map[string]any)
	if !ok || args["value"] != 4096.0 {
		t.Fatalf("counter args = %v", evs[2]["args"])
	}
	// ts is microseconds: the 1500 ps instant is 0.0015 us.
	if evs[1]["ts"] != 0.0015 {
		t.Fatalf("ts = %v, want 0.0015", evs[1]["ts"])
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleTracer().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleTracer().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical tracers produced different exports")
	}
}

func TestTracerCSV(t *testing.T) {
	var b bytes.Buffer
	if err := sampleTracer().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "time_us,phase,cat,name,tid,value,args" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 6 {
		t.Fatalf("got %d rows, want 6:\n%s", len(lines), b.String())
	}
	if !strings.Contains(lines[2], "seq=3") {
		t.Fatalf("instant row lost its args: %q", lines[2])
	}
	if !strings.Contains(lines[3], ",4096,") {
		t.Fatalf("counter row lost its value: %q", lines[3])
	}
}

func TestTracerAppend(t *testing.T) {
	a := NewTracer()
	a.Instant(1, "x", "one", 1)
	b := NewTracer()
	b.Instant(2, "x", "two", 2)
	a.Append(b)
	a.Append(nil) // no-op
	if a.Len() != 2 {
		t.Fatalf("len = %d, want 2", a.Len())
	}
	if a.Events()[1].Name != "two" {
		t.Fatalf("appended event = %+v", a.Events()[1])
	}
}

func TestCSVEscape(t *testing.T) {
	cases := map[string]string{
		"plain":    "plain",
		"a,b":      `"a,b"`,
		`say "hi"`: `"say \"hi\""`,
	}
	for in, want := range cases {
		if got := csvEscape(in); got != want {
			t.Fatalf("csvEscape(%q) = %q, want %q", in, got, want)
		}
	}
}
