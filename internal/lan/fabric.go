package lan

import (
	"context"
	"net"
	"sync"
	"time"
)

// Fabric is an in-process network: named endpoints connected by emulated
// links whose latency/bandwidth depend on the endpoint pair. It mimics the
// two-datacenter world: intra-DC dials get the LAN profile, cross-DC dials
// the WAN profile.
type Fabric struct {
	mu        sync.Mutex
	listeners map[Addr]*listener
	// pathFor picks the link profile for a (from, to) pair.
	pathFor func(from, to Addr) PipeConfig
}

// NewFabric returns a fabric where every path uses the given default
// profile. Use SetPathFunc for pair-dependent profiles.
func NewFabric(def PipeConfig) *Fabric {
	return &Fabric{
		listeners: make(map[Addr]*listener),
		pathFor:   func(_, _ Addr) PipeConfig { return def },
	}
}

// SetPathFunc installs a function choosing the link profile per
// (from, to) endpoint pair.
func (f *Fabric) SetPathFunc(fn func(from, to Addr) PipeConfig) {
	f.mu.Lock()
	f.pathFor = fn
	f.mu.Unlock()
}

// Listen binds a listener at addr.
func (f *Fabric) Listen(addr Addr) (net.Listener, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, exists := f.listeners[addr]; exists {
		return nil, ErrAddrInUse
	}
	l := &listener{fabric: f, addr: addr, backlog: make(chan *Conn, 64), closed: make(chan struct{})}
	f.listeners[addr] = l
	return l, nil
}

// Dial connects from one endpoint to a listening address.
func (f *Fabric) Dial(from, to Addr) (net.Conn, error) {
	f.mu.Lock()
	l, ok := f.listeners[to]
	pathFor := f.pathFor
	f.mu.Unlock()
	if !ok {
		return nil, ErrRefused
	}
	clientEnd, serverEnd := Pipe(pathFor(from, to), from, to)
	select {
	case l.backlog <- serverEnd:
		return clientEnd, nil
	case <-time.After(time.Second):
		clientEnd.Close()
		return nil, ErrRefused
	}
}

// Dialer returns a net.Dialer-shaped function originating at from, for
// APIs that take func(ctx, network, addr).
func (f *Fabric) Dialer(from Addr) func(ctx context.Context, network, addr string) (net.Conn, error) {
	return func(ctx context.Context, _ string, addr string) (net.Conn, error) {
		type res struct {
			c   net.Conn
			err error
		}
		ch := make(chan res, 1)
		go func() {
			c, err := f.Dial(from, Addr(addr))
			ch <- res{c, err}
		}()
		select {
		case r := <-ch:
			return r.c, r.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

type listener struct {
	fabric  *Fabric
	addr    Addr
	backlog chan *Conn
	once    sync.Once
	closed  chan struct{}
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *listener) Close() error {
	l.once.Do(func() {
		l.fabric.mu.Lock()
		delete(l.fabric.listeners, l.addr)
		l.fabric.mu.Unlock()
		close(l.closed)
	})
	return nil
}

// Addr implements net.Listener.
func (l *listener) Addr() net.Addr { return l.addr }
