package lan

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"incastproxy/internal/cliutil"
	"incastproxy/internal/units"
)

func TestPipeBasicTransfer(t *testing.T) {
	a, b := Pipe(PipeConfig{}, "a", "b")
	defer a.Close()
	defer b.Close()

	msg := []byte("hello across the pipe")
	go func() {
		a.Write(msg)
		a.CloseWrite()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestPipeLatencyApplied(t *testing.T) {
	const lat = 30 * time.Millisecond
	a, b := Pipe(PipeConfig{Latency: lat}, "a", "b")
	defer a.Close()
	defer b.Close()

	start := time.Now()
	go a.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < lat {
		t.Fatalf("read completed in %v, before the %v latency", el, lat)
	}
}

func TestPipeBandwidthLimited(t *testing.T) {
	// 1 Mb/s: 25 KB takes ~200ms.
	a, b := Pipe(PipeConfig{Rate: units.Mbps, BufBytes: 1 << 20}, "a", "b")
	defer a.Close()
	defer b.Close()

	payload := make([]byte, 25_000)
	start := time.Now()
	go func() {
		a.Write(payload)
		a.CloseWrite()
	}()
	n, err := io.Copy(io.Discard, b)
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("copy: n=%d err=%v", n, err)
	}
	el := time.Since(start)
	if el < 150*time.Millisecond {
		t.Fatalf("25KB at 1Mbps finished in %v; rate limit not applied", el)
	}
	if el > 2*time.Second {
		t.Fatalf("took %v; rate limiter far too slow", el)
	}
}

func TestPipeDuplex(t *testing.T) {
	a, b := Pipe(PipeConfig{}, "a", "b")
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		a.Write([]byte("ping"))
		buf := make([]byte, 4)
		io.ReadFull(a, buf)
		if string(buf) != "pong" {
			t.Error("a got", string(buf))
		}
	}()
	go func() {
		defer wg.Done()
		buf := make([]byte, 4)
		io.ReadFull(b, buf)
		if string(buf) != "ping" {
			t.Error("b got", string(buf))
		}
		b.Write([]byte("pong"))
	}()
	wg.Wait()
}

func TestPipeCloseUnblocksReader(t *testing.T) {
	a, b := Pipe(PipeConfig{}, "a", "b")
	// No sleep needed: whether Close lands before or after the Read
	// blocks, the reader must come back with EOF/ErrClosedPipe.
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		close(started)
		buf := make([]byte, 1)
		_, err := b.Read(buf)
		errc <- err
	}()
	<-started
	a.Close()
	select {
	case err := <-errc:
		if err != io.EOF && err != io.ErrClosedPipe {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not unblocked by close")
	}
}

func TestPipeWriteAfterPeerClose(t *testing.T) {
	a, b := Pipe(PipeConfig{}, "a", "b")
	b.Close()
	// Close propagation is asynchronous: poll until a write fails instead
	// of guessing a propagation delay.
	if !cliutil.WaitUntil(5*time.Second, time.Millisecond, func() bool {
		_, err := a.Write([]byte("x"))
		return err != nil
	}) {
		t.Fatal("write to closed peer never failed")
	}
}

func TestPipeReadDeadline(t *testing.T) {
	a, b := Pipe(PipeConfig{}, "a", "b")
	defer a.Close()
	defer b.Close()
	b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 1)
	_, err := b.Read(buf)
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestPipeAddrs(t *testing.T) {
	a, b := Pipe(PipeConfig{}, "dc0/h1", "dc1/h2")
	defer a.Close()
	defer b.Close()
	if a.LocalAddr().String() != "dc0/h1" || a.RemoteAddr().String() != "dc1/h2" {
		t.Fatal("a addrs wrong")
	}
	if b.LocalAddr().String() != "dc1/h2" || a.LocalAddr().Network() != "lan" {
		t.Fatal("b addrs wrong")
	}
}

func TestFabricListenDial(t *testing.T) {
	f := NewFabric(PipeConfig{})
	l, err := f.Listen("dc1/server")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	go func() {
		c, err := f.Dial("dc0/client", "dc1/server")
		if err != nil {
			t.Error(err)
			return
		}
		c.Write([]byte("hi"))
		c.Close()
	}()

	c, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "hi" {
		t.Fatalf("got %q err %v", buf, err)
	}
}

func TestFabricDialRefused(t *testing.T) {
	f := NewFabric(PipeConfig{})
	if _, err := f.Dial("a", "nobody"); err != ErrRefused {
		t.Fatalf("err = %v", err)
	}
}

func TestFabricDuplicateListen(t *testing.T) {
	f := NewFabric(PipeConfig{})
	if _, err := f.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Listen("x"); err != ErrAddrInUse {
		t.Fatalf("err = %v", err)
	}
}

func TestFabricListenerCloseUnblocksAccept(t *testing.T) {
	f := NewFabric(PipeConfig{})
	l, _ := f.Listen("x")
	// Handshake instead of a sleep: Close before or after Accept blocks
	// must both surface net.ErrClosed.
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := l.Accept()
		done <- err
	}()
	<-started
	l.Close()
	select {
	case err := <-done:
		if err != net.ErrClosed {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept not unblocked")
	}
	// Address is reusable after close.
	if _, err := f.Listen("x"); err != nil {
		t.Fatal("address not released:", err)
	}
}

func TestFabricPathFunc(t *testing.T) {
	f := NewFabric(PipeConfig{})
	f.SetPathFunc(func(from, to Addr) PipeConfig {
		if from == "dc0/c" && to == "dc1/s" {
			return PipeConfig{Latency: 40 * time.Millisecond}
		}
		return PipeConfig{}
	})
	l, _ := f.Listen("dc1/s")
	defer l.Close()
	go func() {
		c, _ := l.Accept()
		buf := make([]byte, 1)
		io.ReadFull(c, buf)
		c.Write(buf)
	}()
	c, err := f.Dial("dc0/c", "dc1/s")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	c.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 80*time.Millisecond {
		t.Fatalf("RTT %v, want >= 80ms (2x40ms)", rtt)
	}
}

func TestFabricDialerContext(t *testing.T) {
	f := NewFabric(PipeConfig{})
	l, _ := f.Listen("s")
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	dial := f.Dialer("c")
	c, err := dial(t.Context(), "lan", "s")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}
