// Package lan provides in-process network emulation over real net.Conn
// interfaces: duplex pipes with configurable one-way propagation delay and
// link bandwidth, and a Fabric that hands out listeners and dialers like a
// miniature two-datacenter network. The TCP relay (internal/relay) and the
// tcprelay example run unmodified over these connections, which is how the
// repository demonstrates real-socket proxy behaviour across an emulated
// WAN without privileged network namespaces.
package lan

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"incastproxy/internal/units"
)

// segment is a chunk of bytes that becomes readable at a given time.
type segment struct {
	data []byte
	at   time.Time
}

// halfPipe is one direction of a link: a bounded queue of segments with
// arrival times computed from latency + serialization at the link rate.
type halfPipe struct {
	mu       sync.Mutex
	readable sync.Cond
	writable sync.Cond

	latency time.Duration
	rate    units.BitRate

	segs     []segment
	queued   int // bytes queued
	capBytes int

	nextFree time.Time // when the "wire" is free for the next byte

	closed    bool // writer closed: EOF after draining
	broken    bool // reader closed: writes fail
	rdeadline time.Time
	wdeadline time.Time
}

func newHalfPipe(latency time.Duration, rate units.BitRate, capBytes int) *halfPipe {
	h := &halfPipe{latency: latency, rate: rate, capBytes: capBytes}
	h.readable.L = &h.mu
	h.writable.L = &h.mu
	return h
}

var errTimeout = &timeoutError{}

type timeoutError struct{}

func (*timeoutError) Error() string   { return "lan: i/o timeout" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// write enqueues b, blocking while the buffer is full.
func (h *halfPipe) write(b []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	written := 0
	for len(b) > 0 {
		if h.broken || h.closed {
			return written, io.ErrClosedPipe
		}
		if !h.wdeadline.IsZero() && !time.Now().Before(h.wdeadline) {
			return written, errTimeout
		}
		if h.queued >= h.capBytes {
			h.waitWritable()
			continue
		}
		n := len(b)
		if room := h.capBytes - h.queued; n > room {
			n = room
		}
		chunk := make([]byte, n)
		copy(chunk, b[:n])

		now := time.Now()
		dep := h.nextFree
		if dep.Before(now) {
			dep = now
		}
		var tx time.Duration
		if h.rate > 0 {
			tx = h.rate.TransmitTime(units.ByteSize(n)).Std()
		}
		h.nextFree = dep.Add(tx)
		h.segs = append(h.segs, segment{data: chunk, at: h.nextFree.Add(h.latency)})
		h.queued += n
		b = b[n:]
		written += n
		h.readable.Broadcast()
	}
	return written, nil
}

// waitWritable blocks until buffer space frees, the pipe breaks, or the
// write deadline passes; the deadline is enforced with a timed wakeup.
func (h *halfPipe) waitWritable() {
	if h.wdeadline.IsZero() {
		h.writable.Wait()
		return
	}
	h.timedWait(&h.writable, h.wdeadline)
}

// read returns available bytes, honouring segment arrival times.
func (h *halfPipe) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if !h.rdeadline.IsZero() && !time.Now().Before(h.rdeadline) {
			return 0, errTimeout
		}
		if len(h.segs) > 0 {
			now := time.Now()
			first := h.segs[0]
			if wait := first.at.Sub(now); wait > 0 {
				// Not "arrived" yet: sleep outside the lock via
				// a timed condition wait.
				h.sleepUntil(first.at)
				continue
			}
			n := copy(p, first.data)
			if n == len(first.data) {
				h.segs = h.segs[1:]
			} else {
				h.segs[0].data = first.data[n:]
			}
			h.queued -= n
			h.writable.Broadcast()
			return n, nil
		}
		if h.closed {
			return 0, io.EOF
		}
		if h.broken {
			return 0, io.ErrClosedPipe
		}
		h.waitReadable()
	}
}

func (h *halfPipe) waitReadable() {
	if h.rdeadline.IsZero() {
		h.readable.Wait()
		return
	}
	h.timedWait(&h.readable, h.rdeadline)
}

// sleepUntil releases the lock until t (or an earlier wakeup).
func (h *halfPipe) sleepUntil(t time.Time) {
	h.mu.Unlock()
	d := time.Until(t)
	if d > 0 {
		time.Sleep(d)
	}
	h.mu.Lock()
}

// timedWait waits on c but wakes by deadline.
func (h *halfPipe) timedWait(c *sync.Cond, deadline time.Time) {
	timer := time.AfterFunc(time.Until(deadline), func() {
		h.mu.Lock()
		c.Broadcast()
		h.mu.Unlock()
	})
	c.Wait()
	timer.Stop()
}

func (h *halfPipe) closeWrite() {
	h.mu.Lock()
	h.closed = true
	h.readable.Broadcast()
	h.mu.Unlock()
}

func (h *halfPipe) breakPipe() {
	h.mu.Lock()
	h.broken = true
	h.readable.Broadcast()
	h.writable.Broadcast()
	h.mu.Unlock()
}

// Addr is a fabric address.
type Addr string

// Network implements net.Addr.
func (Addr) Network() string { return "lan" }

// String implements net.Addr.
func (a Addr) String() string { return string(a) }

// Conn is one end of an emulated link. It implements net.Conn plus
// CloseWrite (half-close), like *net.TCPConn.
type Conn struct {
	out, in     *halfPipe
	local, peer Addr
	closeOnce   sync.Once
}

// PipeConfig describes one emulated link.
type PipeConfig struct {
	// Latency is the one-way propagation delay (each direction).
	Latency time.Duration
	// Rate limits each direction's throughput; <= 0 means unlimited.
	Rate units.BitRate
	// BufBytes is the per-direction in-flight buffer, emulating socket
	// buffers (default 256 KiB).
	BufBytes int
}

// Pipe creates a duplex link and returns its two ends.
func Pipe(cfg PipeConfig, a, b Addr) (*Conn, *Conn) {
	if cfg.BufBytes <= 0 {
		cfg.BufBytes = 256 << 10
	}
	ab := newHalfPipe(cfg.Latency, cfg.Rate, cfg.BufBytes)
	ba := newHalfPipe(cfg.Latency, cfg.Rate, cfg.BufBytes)
	ca := &Conn{out: ab, in: ba, local: a, peer: b}
	cb := &Conn{out: ba, in: ab, local: b, peer: a}
	return ca, cb
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) { return c.in.read(p) }

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) { return c.out.write(p) }

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.out.closeWrite()
		c.in.breakPipe()
	})
	return nil
}

// CloseWrite half-closes the sending direction, like TCP FIN.
func (c *Conn) CloseWrite() error {
	c.out.closeWrite()
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.peer }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	c.SetWriteDeadline(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.in.mu.Lock()
	c.in.rdeadline = t
	c.in.readable.Broadcast()
	c.in.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.out.mu.Lock()
	c.out.wdeadline = t
	c.out.writable.Broadcast()
	c.out.mu.Unlock()
	return nil
}

var _ net.Conn = (*Conn)(nil)

// ErrAddrInUse reports a duplicate Listen address.
var ErrAddrInUse = errors.New("lan: address already in use")

// ErrRefused reports a Dial to an address nobody listens on.
var ErrRefused = errors.New("lan: connection refused")
