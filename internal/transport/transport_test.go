package transport

import (
	"testing"
	"testing/quick"

	"incastproxy/internal/netsim"
	"incastproxy/internal/rng"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// pair wires two hosts with a direct full-duplex link.
type pair struct {
	e        *sim.Engine
	src, dst *netsim.Host
}

func newPair(t testing.TB, rate units.BitRate, delay units.Duration, q netsim.QueueConfig) *pair {
	t.Helper()
	e := sim.New()
	src := netsim.NewHost(1, "src")
	dst := netsim.NewHost(2, "dst")
	// Both directions get the same egress config; control packets ride
	// the priority band regardless.
	netsim.Connect(src, dst, rate, delay, q, q, rng.New(99))
	return &pair{e: e, src: src, dst: dst}
}

// runFlow transfers total bytes over p and returns (receiver done time, ok).
func runFlow(t testing.TB, p *pair, total units.ByteSize, cfg Config) (units.Time, *Sender, *Receiver) {
	t.Helper()
	var doneAt units.Time
	recv := NewReceiver(p.dst, 1, p.src.ID(), total, func(at units.Time) { doneAt = at })
	snd := NewSender(p.src, 1, p.dst.ID(), 0, total, cfg, nil)
	p.src.Bind(1, snd)
	p.dst.Bind(1, recv)
	snd.Start(p.e)
	p.e.RunUntil(units.Time(30 * units.Second))
	return doneAt, snd, recv
}

func TestBasicTransferCompletes(t *testing.T) {
	p := newPair(t, 100*units.Gbps, units.Microsecond, netsim.QueueConfig{})
	total := 1 * units.MB
	cfg := Config{InitWindow: 10 * units.MB, ExpectedRTT: 2 * units.Microsecond}
	doneAt, snd, recv := runFlow(t, p, total, cfg)
	if !recv.Done() || !snd.Done() {
		t.Fatalf("flow incomplete: recv=%v snd=%v", recv.Done(), snd.Done())
	}
	if recv.Bytes() != total {
		t.Fatalf("received %v, want %v", recv.Bytes(), total)
	}
	// 1MB @ 100Gbps = 80us serialization + ~2us propagation.
	if doneAt < units.Time(80*units.Microsecond) || doneAt > units.Time(120*units.Microsecond) {
		t.Fatalf("completion at %v, want ~81us", doneAt)
	}
	if snd.Stats.Retransmits != 0 || snd.Stats.Timeouts != 0 {
		t.Fatalf("lossless path saw retx=%d timeouts=%d", snd.Stats.Retransmits, snd.Stats.Timeouts)
	}
	if fct := snd.FCT(); fct != snd.DoneAt().Sub(0) {
		t.Fatalf("FCT = %v, want DoneAt-start = %v", fct, snd.DoneAt())
	}
}

func TestWindowLimitedThroughput(t *testing.T) {
	// 1 MSS window over a 1ms-delay link: ~1 packet per RTT (2ms).
	p := newPair(t, 100*units.Gbps, units.Millisecond, netsim.QueueConfig{})
	total := 15000 * units.Byte // 10 packets
	cfg := Config{InitWindow: 1500, ExpectedRTT: 2 * units.Millisecond}
	doneAt, _, recv := runFlow(t, p, total, cfg)
	if !recv.Done() {
		t.Fatal("flow incomplete")
	}
	// Slow-start doubles the window, so it's faster than 10 RTTs but
	// must take at least 3 round trips (1+2+4 >= 10 packets at ~2ms).
	if doneAt < units.Time(5*units.Millisecond) {
		t.Fatalf("completion at %v: window limit not enforced", doneAt)
	}
}

func TestLastPacketSmaller(t *testing.T) {
	p := newPair(t, 100*units.Gbps, units.Microsecond, netsim.QueueConfig{})
	total := units.ByteSize(1500*3 + 700)
	cfg := Config{InitWindow: 1 * units.MB, ExpectedRTT: 2 * units.Microsecond}
	_, snd, recv := runFlow(t, p, total, cfg)
	if !recv.Done() || recv.Bytes() != total {
		t.Fatalf("received %v, want %v", recv.Bytes(), total)
	}
	if snd.Stats.PktsSent != 4 {
		t.Fatalf("sent %d packets, want 4", snd.Stats.PktsSent)
	}
}

func TestDropRecoveryViaRTO(t *testing.T) {
	// Tiny drop-tail queue, big initial window: the burst overflows and
	// the sender must recover through timeouts.
	q := netsim.QueueConfig{Capacity: 15_000} // 10 packets
	p := newPair(t, 10*units.Gbps, 10*units.Microsecond, q)
	total := 300 * units.KB // 200 packets
	cfg := Config{
		InitWindow:  1 * units.MB, // whole flow in the first burst
		ExpectedRTT: 25 * units.Microsecond,
		MinRTO:      50 * units.Microsecond,
	}
	doneAt, snd, recv := runFlow(t, p, total, cfg)
	if !recv.Done() {
		t.Fatalf("flow incomplete after drops: recv %v of %v, timeouts=%d",
			recv.Bytes(), total, snd.Stats.Timeouts)
	}
	if snd.Stats.Timeouts == 0 || snd.Stats.Retransmits == 0 {
		t.Fatalf("expected timeout-driven recovery, got timeouts=%d retx=%d",
			snd.Stats.Timeouts, snd.Stats.Retransmits)
	}
	if doneAt == 0 {
		t.Fatal("no completion time")
	}
}

func TestTrimNackRecovery(t *testing.T) {
	// Trimming queue: overflowing packets become headers, the receiver
	// NACKs them, and the sender retransmits without waiting for RTO.
	q := netsim.QueueConfig{Capacity: 15_000, Trim: true}
	p := newPair(t, 10*units.Gbps, 10*units.Microsecond, q)
	total := 300 * units.KB
	cfg := Config{
		InitWindow:  1 * units.MB,
		ExpectedRTT: 25 * units.Microsecond,
		MinRTO:      10 * units.Millisecond, // RTO effectively out of the picture
	}
	doneAt, snd, recv := runFlow(t, p, total, cfg)
	if !recv.Done() {
		t.Fatalf("flow incomplete: recv %v of %v, nacks=%d", recv.Bytes(), total, snd.Stats.Nacks)
	}
	if snd.Stats.Nacks == 0 {
		t.Fatal("expected NACK-driven recovery")
	}
	if recv.Stats.TrimmedSeen == 0 || recv.Stats.NacksSent == 0 {
		t.Fatalf("receiver saw %d trims, sent %d nacks", recv.Stats.TrimmedSeen, recv.Stats.NacksSent)
	}
	// NACK recovery must beat the 10ms RTO path by a wide margin.
	if doneAt > units.Time(8*units.Millisecond) {
		t.Fatalf("NACK recovery too slow: %v", doneAt)
	}
	if snd.Stats.Timeouts != 0 {
		t.Fatalf("NACK path should avoid timeouts, got %d", snd.Stats.Timeouts)
	}
}

func TestECNMarksReduceWindow(t *testing.T) {
	q := netsim.QueueConfig{Capacity: 1 << 30, MarkLow: 3000, MarkHigh: 6000}
	p := newPair(t, 10*units.Gbps, 10*units.Microsecond, q)
	total := 1500 * units.KB
	cfg := Config{InitWindow: 500 * 1500, ExpectedRTT: 25 * units.Microsecond}
	_, snd, recv := runFlow(t, p, total, cfg)
	if !recv.Done() {
		t.Fatal("flow incomplete")
	}
	if snd.Stats.MarkedAcks == 0 {
		t.Fatal("expected ECN-marked acks")
	}
	if snd.Stats.Decreases == 0 {
		t.Fatal("marked acks must trigger window decreases")
	}
	// ECN must not be treated as loss: no timeouts, no retransmits.
	if snd.Stats.Timeouts != 0 || snd.Stats.Retransmits != 0 {
		t.Fatalf("ECN-only congestion caused timeouts=%d retx=%d",
			snd.Stats.Timeouts, snd.Stats.Retransmits)
	}
}

func TestRTTEstimate(t *testing.T) {
	p := newPair(t, 100*units.Gbps, 500*units.Microsecond, netsim.QueueConfig{})
	cfg := Config{InitWindow: 3000, ExpectedRTT: units.Millisecond}
	_, snd, recv := runFlow(t, p, 150*units.KB, cfg)
	if !recv.Done() {
		t.Fatal("flow incomplete")
	}
	srtt := snd.SRTT()
	if srtt < 900*units.Microsecond || srtt > 1500*units.Microsecond {
		t.Fatalf("SRTT = %v, want ~1ms", srtt)
	}
	if snd.RTO() < srtt {
		t.Fatalf("RTO %v below SRTT %v", snd.RTO(), srtt)
	}
}

func TestStreamingSender(t *testing.T) {
	p := newPair(t, 100*units.Gbps, units.Microsecond, netsim.QueueConfig{})
	var doneAt units.Time
	recv := NewReceiver(p.dst, 1, p.src.ID(), 0, nil)
	snd := NewStreamingSender(p.src, 1, p.dst.ID(), 0,
		Config{InitWindow: 1 * units.MB, ExpectedRTT: 2 * units.Microsecond},
		func(at units.Time) { doneAt = at })
	p.src.Bind(1, snd)
	p.dst.Bind(1, recv)
	snd.Start(p.e)

	// Supply in three bursts separated by idle time.
	for burst := 0; burst < 3; burst++ {
		at := units.Time(burst) * units.Time(100*units.Microsecond)
		p.e.Schedule(at, func(e *sim.Engine) {
			for i := 0; i < 10; i++ {
				snd.Supply(e, 1500)
			}
		})
	}
	p.e.Schedule(units.Time(300*units.Microsecond), func(e *sim.Engine) { snd.CloseSupply(e) })
	p.e.Run()

	if !snd.Done() {
		t.Fatal("streaming sender incomplete")
	}
	if recv.Bytes() != 30*1500 {
		t.Fatalf("received %v, want %v", recv.Bytes(), 30*1500)
	}
	if doneAt == 0 {
		t.Fatal("onDone not called")
	}
}

func TestStreamingSupplyOnFixedPanics(t *testing.T) {
	p := newPair(t, units.Gbps, 0, netsim.QueueConfig{})
	snd := NewSender(p.src, 1, p.dst.ID(), 0, 1500, Config{}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Supply on fixed sender must panic")
		}
	}()
	snd.Supply(p.e, 1500)
}

func TestZeroByteFlowCompletesImmediately(t *testing.T) {
	p := newPair(t, units.Gbps, 0, netsim.QueueConfig{})
	snd := NewSender(p.src, 1, p.dst.ID(), 0, 0, Config{}, nil)
	p.src.Bind(1, snd)
	snd.Start(p.e)
	p.e.Run()
	if !snd.Done() {
		t.Fatal("zero-byte flow should complete at Start")
	}
}

func TestDuplicateDataReAcked(t *testing.T) {
	e := sim.New()
	src := netsim.NewHost(1, "src")
	dst := netsim.NewHost(2, "dst")
	netsim.Connect(src, dst, 100*units.Gbps, 0, netsim.QueueConfig{}, netsim.QueueConfig{}, nil)
	recv := NewReceiver(dst, 1, src.ID(), 0, nil)
	dst.Bind(1, recv)
	acks := 0
	src.Bind(1, netsim.EndpointFunc(func(*sim.Engine, *netsim.Packet) { acks++ }))

	for i := 0; i < 2; i++ {
		pkt := src.NewPacket()
		pkt.Flow = 1
		pkt.Kind = netsim.Data
		pkt.Seq = 7
		pkt.Size = 1500
		pkt.FullSize = 1500
		pkt.Dst = dst.ID()
		src.Send(e, pkt)
	}
	e.Run()
	if recv.Stats.Duplicates != 1 {
		t.Fatalf("duplicates = %d", recv.Stats.Duplicates)
	}
	if acks != 2 {
		t.Fatalf("acks = %d, want re-ack of duplicate", acks)
	}
	if recv.Bytes() != 1500 {
		t.Fatalf("bytes = %v, duplicate must not double-count", recv.Bytes())
	}
}

func TestReceiverIgnoresNonData(t *testing.T) {
	e := sim.New()
	h := netsim.NewHost(1, "h")
	recv := NewReceiver(h, 1, 2, 0, nil)
	recv.Handle(e, &netsim.Packet{Kind: netsim.Ack, Flow: 1})
	if recv.Stats.PktsReceived != 0 {
		t.Fatal("receiver must ignore control packets")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MSS != DefaultMSS || c.MinWindow != DefaultMSS {
		t.Fatalf("defaults: %+v", c)
	}
	if c.InitRTO < c.MinRTO || c.MaxRTO <= 0 || c.Gain <= 0 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.String() == "" {
		t.Fatal("empty config string")
	}
}

func TestKarnRetransmitsDoNotSkewSRTT(t *testing.T) {
	// Drop-heavy path; after recovery SRTT should still be close to the
	// real RTT (~20us), not inflated by retransmission ambiguity.
	q := netsim.QueueConfig{Capacity: 15_000}
	p := newPair(t, 10*units.Gbps, 10*units.Microsecond, q)
	cfg := Config{
		InitWindow:  500 * units.KB,
		ExpectedRTT: 25 * units.Microsecond,
		MinRTO:      100 * units.Microsecond,
	}
	_, snd, recv := runFlow(t, p, 150*units.KB, cfg)
	if !recv.Done() {
		t.Fatal("flow incomplete")
	}
	if snd.SRTT() > 2*units.Millisecond {
		t.Fatalf("SRTT %v absurdly inflated; Karn filtering broken?", snd.SRTT())
	}
}

func TestFlowSurvivesLinkOutage(t *testing.T) {
	// The forward direction fails for a while mid-flow; the sender must
	// detect the blackout via RTO and finish after the link heals.
	p := newPair(t, 10*units.Gbps, 10*units.Microsecond, netsim.QueueConfig{})
	total := 600 * units.KB
	cfg := Config{
		InitWindow:  64 * units.KB,
		ExpectedRTT: 25 * units.Microsecond,
		MinRTO:      200 * units.Microsecond,
	}
	var doneAt units.Time
	recv := NewReceiver(p.dst, 1, p.src.ID(), total, func(at units.Time) { doneAt = at })
	snd := NewSender(p.src, 1, p.dst.ID(), 0, total, cfg, nil)
	p.src.Bind(1, snd)
	p.dst.Bind(1, recv)
	snd.Start(p.e)

	out := p.src.NIC()
	p.e.Schedule(units.Time(50*units.Microsecond), func(*sim.Engine) { out.SetDown(true) })
	p.e.Schedule(units.Time(3*units.Millisecond), func(*sim.Engine) { out.SetDown(false) })
	p.e.RunUntil(units.Time(30 * units.Second))

	if !recv.Done() || recv.Bytes() != total {
		t.Fatalf("flow did not survive outage: %v of %v", recv.Bytes(), total)
	}
	if snd.Stats.Timeouts == 0 {
		t.Fatal("outage must be detected by timeout")
	}
	if doneAt < units.Time(3*units.Millisecond) {
		t.Fatalf("finished at %v, before the link healed", doneAt)
	}
}

func TestGeminiModeMilderDecrease(t *testing.T) {
	// Same marked-congestion scenario over a long-RTT path, with and
	// without Gemini scaling: the Gemini sender must decrease less per
	// mark and hold a larger window.
	run := func(gemini bool) units.ByteSize {
		q := netsim.QueueConfig{Capacity: 1 << 30, MarkLow: 3000, MarkHigh: 6000}
		p := newPair(t, 10*units.Gbps, 2*units.Millisecond, q) // ~4ms RTT
		cfg := Config{
			InitWindow:  400 * 1500,
			ExpectedRTT: 4 * units.Millisecond,
			GeminiMode:  gemini,
			RTTRef:      100 * units.Microsecond,
		}
		_, snd, recv := runFlow(t, p, 3*units.MB, cfg)
		if !recv.Done() {
			t.Fatal("flow incomplete")
		}
		if snd.Stats.MarkedAcks == 0 {
			t.Fatal("scenario produced no marks")
		}
		return snd.Cwnd()
	}
	dctcp := run(false)
	gemini := run(true)
	if gemini <= dctcp {
		t.Fatalf("gemini cwnd %v should exceed dctcp cwnd %v on a long-RTT marked path",
			gemini, dctcp)
	}
}

func TestSpuriousTimeoutUndone(t *testing.T) {
	// InitRTO far below the actual RTT: the timer fires before the first
	// ACK arrives. The late ACKs must be recognized as evidence of a
	// spurious timeout, restoring the window and avoiding retransmission
	// of the whole flight.
	p := newPair(t, 100*units.Gbps, 2*units.Millisecond, netsim.QueueConfig{})
	total := 300 * units.KB
	cfg := Config{
		InitWindow:  1 * units.MB,
		ExpectedRTT: 100 * units.Microsecond, // wrong on purpose (real: 4ms)
		MinRTO:      100 * units.Microsecond,
	}
	doneAt, snd, recv := runFlow(t, p, total, cfg)
	if !recv.Done() {
		t.Fatal("flow incomplete")
	}
	if snd.Stats.Timeouts == 0 {
		t.Fatal("test premise broken: no timeout fired")
	}
	if snd.Stats.SpuriousRTO == 0 {
		t.Fatal("spurious timeout not detected")
	}
	// Undo must keep completion near one RTT + retransmission trickle,
	// not a multi-RTO crawl.
	if doneAt > units.Time(40*units.Millisecond) {
		t.Fatalf("completion %v: spurious-RTO undo ineffective", doneAt)
	}
}

// Property: over lossy (drop or trim) links with random capacities, flows
// always complete, and the receiver sees exactly the flow's bytes.
func TestPropertyFlowAlwaysCompletes(t *testing.T) {
	f := func(seed int64, capKB uint8, trim bool, sizeKB uint16) bool {
		capacity := units.ByteSize(int(capKB)%64+4) * 1500
		total := units.ByteSize(int(sizeKB)%200+1) * units.KB
		q := netsim.QueueConfig{Capacity: capacity, Trim: trim}
		p := newPair(t, 10*units.Gbps, 5*units.Microsecond, q)
		cfg := Config{
			InitWindow:  256 * units.KB,
			ExpectedRTT: 12 * units.Microsecond,
			MinRTO:      50 * units.Microsecond,
		}
		_, snd, recv := runFlow(t, p, total, cfg)
		return recv.Done() && snd.Done() && recv.Bytes() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTransfer1MBLossless(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := newPair(b, 100*units.Gbps, units.Microsecond, netsim.QueueConfig{})
		cfg := Config{InitWindow: 10 * units.MB, ExpectedRTT: 2 * units.Microsecond}
		_, _, recv := runFlow(b, p, units.MB, cfg)
		if !recv.Done() {
			b.Fatal("incomplete")
		}
	}
}
