package transport

import (
	"fmt"

	"incastproxy/internal/netsim"
	"incastproxy/internal/obs"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// SenderStats counts transport-level events for one flow.
type SenderStats struct {
	PktsSent     uint64
	Retransmits  uint64
	Timeouts     uint64
	Nacks        uint64
	MarkedAcks   uint64
	UnmarkedAcks uint64
	Decreases    uint64
	// SpuriousRTO counts timeouts detected as spurious (an original
	// transmission's ACK arrived just after the timer fired) and undone
	// F-RTO-style.
	SpuriousRTO uint64
}

type sendRecord struct {
	size   units.ByteSize
	sentAt units.Time
	retx   bool
}

// Sender is the DCTCP-like sending endpoint of one flow. It must be bound
// to its host with Host.Bind(flow, sender) before Start.
//
// A Sender either carries a fixed number of bytes (NewSender) or streams
// packets supplied incrementally (NewStreamingSender), which is how the
// naive proxy's upstream half feeds its downstream half.
type Sender struct {
	cfg  Config
	host *netsim.Host
	flow netsim.FlowID

	dst      netsim.NodeID // data packets are addressed here
	finalDst netsim.NodeID // eventual receiver when dst is a streamlined proxy

	// Fixed-size mode.
	totalBytes units.ByteSize
	numPkts    int64

	// Streaming mode (totalBytes < 0): sizes of supplied-but-unsent
	// packets, in order.
	streaming    bool
	supplyQ      []units.ByteSize
	supplyClosed bool
	suppliedPkts int64

	nextSeq     int64
	outstanding map[int64]*sendRecord
	pktSize     map[int64]units.ByteSize
	acked       map[int64]bool
	ackedBytes  units.ByteSize
	ackedPkts   int64
	lost        map[int64]bool
	retxQ       []int64
	sendOrder   []orderEntry

	cwnd     float64
	ssthresh float64
	inflight units.ByteSize
	sentNew  units.ByteSize

	alpha        float64
	winAcked     units.ByteSize
	winMarked    units.ByteSize
	alphaNext    units.Time
	lastDecrease units.Time
	// recoveryPoint is the time of the last window reduction; congestion
	// signals carried by packets sent before it are stale and ignored
	// (standard recovery-point semantics — without this, the marked ACKs
	// of a pre-timeout burst crush the freshly reset window).
	recoveryPoint units.Time

	srtt, rttvar units.Duration
	rto          units.Duration
	backoff      uint

	timer         *sim.Timer
	lastTimeoutAt units.Time
	rtoUndone     bool
	started       bool
	frozen        bool
	aborted       bool
	done          bool
	doneAt        units.Time
	onDone        func(units.Time)
	Stats         SenderStats

	// Observability (see Attach): tel is the shared per-run sink, label
	// names this flow on trace tracks, eng lets engine-less entry points
	// (Abort) timestamp their events, startedAt anchors the FCT.
	tel       *Telemetry
	label     string
	eng       *sim.Engine
	startedAt units.Time
}

type orderEntry struct {
	seq    int64
	sentAt units.Time
}

// NewSender creates a fixed-size sender for total bytes addressed to dst.
// finalDst is non-zero only when dst is a streamlined proxy relaying to the
// eventual receiver. onDone (optional) fires when every byte is acked.
func NewSender(host *netsim.Host, flow netsim.FlowID, dst, finalDst netsim.NodeID,
	total units.ByteSize, cfg Config, onDone func(units.Time)) *Sender {
	s := newSender(host, flow, dst, finalDst, cfg, onDone)
	s.totalBytes = total
	s.numPkts = int64((total + s.cfg.MSS - 1) / s.cfg.MSS)
	return s
}

// NewStreamingSender creates a sender whose packets are supplied one at a
// time with Supply; CloseSupply marks the end of the stream.
func NewStreamingSender(host *netsim.Host, flow netsim.FlowID, dst, finalDst netsim.NodeID,
	cfg Config, onDone func(units.Time)) *Sender {
	s := newSender(host, flow, dst, finalDst, cfg, onDone)
	s.streaming = true
	return s
}

func newSender(host *netsim.Host, flow netsim.FlowID, dst, finalDst netsim.NodeID,
	cfg Config, onDone func(units.Time)) *Sender {
	cfg = cfg.withDefaults()
	return &Sender{
		cfg:         cfg,
		host:        host,
		flow:        flow,
		dst:         dst,
		finalDst:    finalDst,
		outstanding: make(map[int64]*sendRecord),
		pktSize:     make(map[int64]units.ByteSize),
		acked:       make(map[int64]bool),
		lost:        make(map[int64]bool),
		cwnd:        float64(cfg.InitWindow),
		ssthresh:    float64(1 << 50),
		alpha:       1, // DCTCP convention: first mark halves the window
		rto:         cfg.InitRTO,
		onDone:      onDone,
	}
}

// Attach wires the sender to a telemetry sink under the given flow label.
// Call before Start; a nil sink is valid and records nothing.
func (s *Sender) Attach(tel *Telemetry, label string) {
	s.tel = tel
	s.label = label
}

// Start begins transmission at the engine's current time.
func (s *Sender) Start(e *sim.Engine) {
	if s.started {
		return
	}
	s.started = true
	s.eng = e
	s.startedAt = e.Now()
	s.timer = sim.NewTimer(e, s.onTimeout)
	s.alphaNext = e.Now().Add(s.cfg.ExpectedRTT)
	if tr := s.tel.tracer(); tr != nil {
		tr.Begin(e.Now(), "flow", s.label, int64(s.flow),
			obs.Arg{Key: "bytes", Val: fmt.Sprintf("%d", s.totalBytes)})
		s.traceWindow(e)
	}
	s.checkDone(e) // a zero-byte flow completes immediately
	s.trySend(e)
}

// traceWindow samples the congestion state (cwnd, alpha, RTO) onto the
// flow's counter tracks.
func (s *Sender) traceWindow(e *sim.Engine) {
	tr := s.tel.tracer()
	if tr == nil {
		return
	}
	tr.Count(e.Now(), "transport", "cwnd "+s.label, int64(s.flow), s.cwnd)
	tr.Count(e.Now(), "transport", "alpha "+s.label, int64(s.flow), s.alpha)
}

// Supply appends one packet of the given size to a streaming sender.
func (s *Sender) Supply(e *sim.Engine, size units.ByteSize) {
	if !s.streaming {
		panic("transport: Supply on fixed-size sender")
	}
	s.supplyQ = append(s.supplyQ, size)
	s.suppliedPkts++
	if s.started {
		s.trySend(e)
	}
}

// CloseSupply marks the end of a streaming sender's data.
func (s *Sender) CloseSupply(e *sim.Engine) {
	s.supplyClosed = true
	s.checkDone(e)
}

// Abort permanently silences the sender mid-flow: the RTO timer is
// cancelled, no further packets (fresh or retransmitted) are sent, and
// onDone never fires. Failover controllers call it when re-homing a flow's
// remaining bytes onto a new path after a proxy crash, so the dead flow's
// timers stop churning the event loop.
func (s *Sender) Abort() {
	s.aborted = true
	if s.timer != nil {
		s.timer.Cancel()
	}
	if tr := s.tel.tracer(); tr != nil && s.eng != nil && !s.done {
		tr.Instant(s.eng.Now(), "flow", "abort", int64(s.flow))
		tr.End(s.eng.Now(), "flow", s.label, int64(s.flow), obs.Arg{Key: "outcome", Val: "aborted"})
	}
}

// Aborted reports whether Abort was called.
func (s *Sender) Aborted() bool { return s.aborted }

// Done reports whether every byte has been acknowledged.
func (s *Sender) Done() bool { return s.done }

// DoneAt returns when the flow completed (valid once Done).
func (s *Sender) DoneAt() units.Time { return s.doneAt }

// FCT returns the flow completion time — final ack minus Start — or 0 while
// the flow is still running.
func (s *Sender) FCT() units.Duration {
	if !s.done {
		return 0
	}
	return s.doneAt.Sub(s.startedAt)
}

// Cwnd returns the current congestion window in bytes.
func (s *Sender) Cwnd() units.ByteSize { return units.ByteSize(s.cwnd) }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() units.Duration { return s.srtt }

// RTO returns the current retransmission timeout.
func (s *Sender) RTO() units.Duration { return s.rto }

// Inflight returns the bytes currently outstanding.
func (s *Sender) Inflight() units.ByteSize { return s.inflight }

// SentBytes returns how many distinct payload bytes have been transmitted at
// least once (retransmissions excluded). Re-steering logic uses it to size
// the suffix of a flow that has not yet been exposed to the network.
func (s *Sender) SentBytes() units.ByteSize { return s.sentNew }

// FreezeNew stops the sender from ever transmitting bytes it has not yet
// sent at least once, while keeping the retransmission machinery (RTO,
// NACK recovery) alive for the bytes already exposed. A re-steer that moves
// a flow's un-sent suffix onto another path freezes the old leg: whatever
// was already in flight completes on its original path — with full loss
// recovery — and nothing new joins it.
func (s *Sender) FreezeNew() { s.frozen = true }

// Boost raises the congestion window to at least w and immediately tries to
// send. The adaptive workload starts flows with a small paced window while
// the controller decides where to steer the epoch; once the verdict is
// "stay direct" the full initial window is released with Boost. No-op on
// finished or aborted senders, and never shrinks the window.
func (s *Sender) Boost(e *sim.Engine, w units.ByteSize) {
	if s.done || s.aborted || float64(w) <= s.cwnd {
		return
	}
	s.cwnd = float64(w)
	s.traceWindow(e)
	s.trySend(e)
}

// SupplyBacklog returns the bytes supplied to a streaming sender that have
// not yet been transmitted for the first time — the naive proxy's relay
// queue occupancy.
func (s *Sender) SupplyBacklog() units.ByteSize {
	var b units.ByteSize
	for _, sz := range s.supplyQ {
		b += sz
	}
	return b
}

// Handle implements netsim.Endpoint for ACK/NACK delivery.
func (s *Sender) Handle(e *sim.Engine, p *netsim.Packet) {
	switch p.Kind {
	case netsim.Ack:
		s.onAck(e, p)
	case netsim.Nack:
		s.onNack(e, p)
	}
}

// sizeOf returns the wire size of data packet seq.
func (s *Sender) sizeOf(seq int64) units.ByteSize {
	if sz, ok := s.pktSize[seq]; ok {
		return sz
	}
	if s.streaming {
		panic("transport: unknown streaming packet size")
	}
	if seq == s.numPkts-1 {
		if rem := s.totalBytes % s.cfg.MSS; rem != 0 {
			return rem
		}
	}
	return s.cfg.MSS
}

// nextNewSize reports the size of the next fresh packet and whether one is
// available to send.
func (s *Sender) nextNewSize() (units.ByteSize, bool) {
	if s.frozen {
		return 0, false
	}
	if s.streaming {
		idx := s.nextSeq - (s.suppliedPkts - int64(len(s.supplyQ)))
		if idx < 0 || idx >= int64(len(s.supplyQ)) {
			return 0, false
		}
		return s.supplyQ[idx], true
	}
	if s.nextSeq >= s.numPkts {
		return 0, false
	}
	return s.sizeOf(s.nextSeq), true
}

func (s *Sender) trySend(e *sim.Engine) {
	if s.aborted {
		return
	}
	for {
		// Retransmissions first.
		seq, size, retx, ok := s.pickNext()
		if !ok {
			return
		}
		if s.inflight > 0 && s.inflight+size > units.ByteSize(s.cwnd) {
			return
		}
		s.transmit(e, seq, size, retx)
	}
}

// pickNext chooses the next packet (retransmission before new data) without
// consuming it if the window blocks.
func (s *Sender) pickNext() (seq int64, size units.ByteSize, retx, ok bool) {
	for len(s.retxQ) > 0 {
		cand := s.retxQ[0]
		if s.acked[cand] || !s.lost[cand] {
			s.retxQ = s.retxQ[1:]
			continue
		}
		return cand, s.sizeOf(cand), true, true
	}
	sz, avail := s.nextNewSize()
	if !avail {
		return 0, 0, false, false
	}
	return s.nextSeq, sz, false, true
}

func (s *Sender) transmit(e *sim.Engine, seq int64, size units.ByteSize, retx bool) {
	if retx {
		s.retxQ = s.retxQ[1:]
		delete(s.lost, seq)
		s.Stats.Retransmits++
	} else {
		if s.streaming {
			s.supplyQ = s.supplyQ[1:]
		}
		s.pktSize[seq] = size
		s.nextSeq++
		s.sentNew += size
	}
	pkt := s.host.NewPacket()
	pkt.Flow = s.flow
	pkt.Kind = netsim.Data
	pkt.Seq = seq
	pkt.Size = size
	pkt.FullSize = size
	pkt.Dst = s.dst
	pkt.FinalDst = s.finalDst
	pkt.Retx = retx
	pkt.SentAt = e.Now()

	s.outstanding[seq] = &sendRecord{size: size, sentAt: e.Now(), retx: retx}
	s.sendOrder = append(s.sendOrder, orderEntry{seq: seq, sentAt: e.Now()})
	s.inflight += size
	s.Stats.PktsSent++
	s.host.Send(e, pkt)
	if !s.timer.Pending() {
		s.timer.ArmAfter(s.rto)
	}
}

func (s *Sender) onAck(e *sim.Engine, p *netsim.Packet) {
	seq := p.Seq
	rec := s.outstanding[seq]
	if rec != nil {
		delete(s.outstanding, seq)
		s.inflight -= rec.size
		if !rec.retx && !p.Retx {
			s.sampleRTT(e.Now().Sub(rec.sentAt))
		}
		s.backoff = 0
	}
	if !s.acked[seq] {
		wasLost := s.lost[seq]
		s.acked[seq] = true
		s.ackedBytes += s.sizeOf(seq)
		s.ackedPkts++
		if s.ackedPkts == 1 {
			if tr := s.tel.tracer(); tr != nil {
				tr.Instant(e.Now(), "flow", "first-ack", int64(s.flow))
			}
		}
		delete(s.lost, seq) // a late arrival cancels a pending retransmit
		// F-RTO-style undo (RFC 5682 spirit, cited by the paper): an
		// ACK of an *original* transmission for a packet the timeout
		// declared lost proves the timeout was spurious (a truly lost
		// original is never acked) — restore the window instead of
		// crawling back from one MSS. At most one undo per timeout.
		if wasLost && !p.Retx && !s.rtoUndone && s.lastTimeoutAt != 0 {
			s.cwnd = maxf(s.cwnd, s.ssthresh)
			s.backoff = 0
			s.rtoUndone = true
			s.Stats.SpuriousRTO++
			if tr := s.tel.tracer(); tr != nil {
				tr.Instant(e.Now(), "flow", "rto-undo", int64(s.flow))
			}
		}
		marked := p.EchoECN
		if marked && (rec == nil || rec.sentAt < s.recoveryPoint) {
			marked = false // stale signal from before the last reduction
		}
		s.updateWindow(e, s.sizeOf(seq), marked)
		s.traceWindow(e)
	}
	s.checkDone(e)
	s.trySend(e)
}

func (s *Sender) onNack(e *sim.Engine, p *netsim.Packet) {
	seq := p.Seq
	s.Stats.Nacks++
	rec := s.outstanding[seq]
	if rec == nil || s.acked[seq] {
		return // stale NACK for something already resolved
	}
	delete(s.outstanding, seq)
	s.inflight -= rec.size
	if !s.lost[seq] {
		s.lost[seq] = true
		s.retxQ = append(s.retxQ, seq)
	}
	// Loss signal: multiplicative decrease, at most once per RTT
	// ("decreases the window upon receiving ... NACK packet", §4.1).
	// NACKs for pre-recovery packets are stale.
	if rec.sentAt >= s.recoveryPoint && s.allowDecrease(e) {
		s.cwnd = s.cwnd / 2
		s.clampWindow()
		s.ssthresh = s.cwnd
		s.Stats.Decreases++
		s.traceWindow(e)
	}
	if tr := s.tel.tracer(); tr != nil {
		tr.Instant(e.Now(), "flow", "nack", int64(s.flow),
			obs.Arg{Key: "seq", Val: fmt.Sprintf("%d", seq)})
	}
	s.trySend(e)
}

// updateWindow applies the §4.1 control law to one acked packet.
func (s *Sender) updateWindow(e *sim.Engine, size units.ByteSize, marked bool) {
	s.winAcked += size
	if marked {
		s.Stats.MarkedAcks++
		s.winMarked += size
	} else {
		s.Stats.UnmarkedAcks++
	}
	// Update DCTCP alpha once per RTT.
	if e.Now() >= s.alphaNext {
		frac := 0.0
		if s.winAcked > 0 {
			frac = float64(s.winMarked) / float64(s.winAcked)
		}
		s.alpha = (1-s.cfg.Gain)*s.alpha + s.cfg.Gain*frac
		s.winAcked, s.winMarked = 0, 0
		s.alphaNext = e.Now().Add(s.currentRTT())
	}
	if marked {
		// DCTCP-style decrease: scale the window by the marked
		// fraction estimate. ssthresh is deliberately left alone —
		// ECN is an early signal, not a loss; clobbering ssthresh
		// here would end slow-start recovery permanently.
		if s.allowDecrease(e) {
			beta := s.alpha / 2
			if s.cfg.GeminiMode {
				// Gemini: milder reduction for longer-RTT
				// flows (beta scaled by RTTRef/RTT).
				if rtt := s.currentRTT(); rtt > s.cfg.RTTRef {
					beta *= float64(s.cfg.RTTRef) / float64(rtt)
				}
			}
			s.cwnd = s.cwnd * (1 - beta)
			s.clampWindow()
			s.Stats.Decreases++
		}
		return
	}
	// Unmarked ACK: increase. Slow start below ssthresh, else additive
	// increase of one MSS per RTT.
	if s.cwnd < s.ssthresh {
		s.cwnd += float64(size)
	} else {
		s.cwnd += float64(s.cfg.MSS) * float64(size) / s.cwnd
	}
}

func (s *Sender) allowDecrease(e *sim.Engine) bool {
	rtt := s.currentRTT()
	if s.lastDecrease != 0 && e.Now().Sub(s.lastDecrease) < rtt {
		return false
	}
	s.lastDecrease = e.Now()
	s.recoveryPoint = e.Now()
	return true
}

func (s *Sender) clampWindow() {
	if s.cwnd < float64(s.cfg.MinWindow) {
		s.cwnd = float64(s.cfg.MinWindow)
	}
}

func (s *Sender) currentRTT() units.Duration {
	if s.srtt > 0 {
		return s.srtt
	}
	return s.cfg.ExpectedRTT
}

// sampleRTT runs the standard SRTT/RTTVAR estimator (RFC 6298 constants).
func (s *Sender) sampleRTT(rtt units.Duration) {
	if rtt <= 0 {
		return
	}
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		diff := s.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	s.tel.observeRTT(rtt)
}

// onTimeout fires when the oldest outstanding packet has been unacknowledged
// for a full (backed-off) RTO. A timeout declares the ENTIRE outstanding
// window lost — go-back-N, as in htsim — not just the packets older than the
// deadline: the window resets to its minimum (§4.1: "the sender resets its
// congestion window upon timeout"), so anything still marked in flight is a
// fiction. Expiring entries one RTO-age at a time instead would livelock a
// long outage: packets transmitted into the blackhole keep refreshing the
// send log, and once the backed-off RTO pegs at MaxRTO the timer fires once
// per straggler, microseconds apart, defeating the backoff entirely.
func (s *Sender) onTimeout(e *sim.Engine) {
	effRTO := s.effectiveRTO()
	deadline := e.Now().Add(-effRTO)
	expired := false
	// Has the oldest valid entry exceeded its deadline?
	for len(s.sendOrder) > 0 {
		front := s.sendOrder[0]
		rec := s.outstanding[front.seq]
		if rec == nil || rec.sentAt != front.sentAt {
			s.sendOrder = s.sendOrder[1:] // stale entry
			continue
		}
		expired = front.sentAt <= deadline
		break
	}
	if expired {
		// Flush the whole window into the retransmit queue.
		flushed := 0
		for _, front := range s.sendOrder {
			rec := s.outstanding[front.seq]
			if rec == nil || rec.sentAt != front.sentAt {
				continue
			}
			delete(s.outstanding, front.seq)
			s.inflight -= rec.size
			if !s.lost[front.seq] && !s.acked[front.seq] {
				s.lost[front.seq] = true
				s.retxQ = append(s.retxQ, front.seq)
				flushed++
			}
		}
		s.sendOrder = s.sendOrder[:0]
		s.Stats.Timeouts++
		if tr := s.tel.tracer(); tr != nil {
			tr.Instant(e.Now(), "flow", "rto", int64(s.flow),
				obs.Arg{Key: "flushed", Val: fmt.Sprintf("%d", flushed)},
				obs.Arg{Key: "backoff", Val: fmt.Sprintf("%d", s.backoff)})
		}
		// Standard loss-recovery target: remember half the pre-loss
		// window so slow start rebuilds quickly, then reset the
		// window itself (§4.1: "resets its congestion window upon
		// timeout").
		s.ssthresh = maxf(s.cwnd/2, float64(2*s.cfg.MSS))
		s.cwnd = float64(s.cfg.MinWindow)
		s.recoveryPoint = e.Now()
		s.lastTimeoutAt = e.Now()
		s.rtoUndone = false
		if s.backoff < 16 {
			s.backoff++
		}
		s.traceWindow(e)
	}
	s.rearmTimer(e)
	s.trySend(e)
}

func (s *Sender) effectiveRTO() units.Duration {
	r := s.rto << s.backoff
	if r > s.cfg.MaxRTO || r <= 0 {
		r = s.cfg.MaxRTO
	}
	return r
}

// rearmTimer schedules the next expiry check at the oldest outstanding
// packet's deadline.
func (s *Sender) rearmTimer(e *sim.Engine) {
	for len(s.sendOrder) > 0 {
		front := s.sendOrder[0]
		rec := s.outstanding[front.seq]
		if rec == nil || rec.sentAt != front.sentAt {
			s.sendOrder = s.sendOrder[1:]
			continue
		}
		s.timer.Arm(front.sentAt.Add(s.effectiveRTO()))
		return
	}
	s.timer.Cancel()
}

func (s *Sender) checkDone(e *sim.Engine) {
	if s.done || s.aborted {
		return
	}
	complete := false
	if s.streaming {
		complete = s.supplyClosed && len(s.supplyQ) == 0 && s.ackedPkts == s.suppliedPkts
	} else {
		complete = s.ackedBytes >= s.totalBytes && s.totalBytes >= 0
	}
	if complete {
		s.done = true
		s.doneAt = e.Now()
		if s.timer != nil {
			s.timer.Cancel()
		}
		s.tel.observeFCT(s.doneAt.Sub(s.startedAt))
		if tr := s.tel.tracer(); tr != nil {
			tr.End(e.Now(), "flow", s.label, int64(s.flow),
				obs.Arg{Key: "outcome", Val: "completed"})
		}
		if s.onDone != nil {
			s.onDone(e.Now())
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
