// lint:virtual-time
// (pragma: opts this package into the wallclock analyzer — no wall-clock
// reads in non-test sources; see internal/lint and DESIGN.md §12)

// Package transport implements the DCTCP-like transport of §4.1: a
// window-based sender that resets its congestion window on timeout,
// decreases it on ECN-marked ACKs or NACKs, and increases it on unmarked
// ACKs, with the initial window set to one bandwidth-delay product
// (following Homa). Acknowledgements are per data packet, which keeps the
// protocol correct under the fabric's packet spraying.
package transport

import (
	"fmt"

	"incastproxy/internal/units"
)

// Config parameterizes one flow's transport behaviour. Zero fields take the
// documented defaults via withDefaults.
type Config struct {
	// MSS is the wire size of a full data packet.
	MSS units.ByteSize
	// InitWindow is the initial congestion window in bytes. The §4.1
	// setting is 1 BDP of the flow's path; the experiment harness
	// computes it from the topology.
	InitWindow units.ByteSize
	// MinWindow floors the congestion window (default 1 MSS).
	MinWindow units.ByteSize
	// Gain is the DCTCP alpha EWMA gain g (default 1/16).
	Gain float64
	// ExpectedRTT seeds RTT-dependent machinery (alpha update cadence,
	// decrease rate-limiting) before the first RTT sample arrives.
	ExpectedRTT units.Duration
	// InitRTO is the retransmission timeout before any RTT sample
	// (default 3x ExpectedRTT).
	InitRTO units.Duration
	// MinRTO floors the timeout; with a proxy the short feedback loop
	// admits microsecond-level timeouts (§5).
	MinRTO units.Duration
	// MaxRTO caps exponential backoff.
	MaxRTO units.Duration

	// GeminiMode enables the Gemini-like cross-datacenter variant the
	// paper's related work discusses: the ECN-triggered multiplicative
	// decrease is scaled down for long-RTT flows
	// (beta = alpha/2 * min(1, RTTRef/RTT)), avoiding link
	// under-utilization over long-haul paths — but, as the paper notes,
	// doing nothing about first-RTT overload.
	GeminiMode bool
	// RTTRef is Gemini's intra-datacenter reference RTT (default
	// 100 us).
	RTTRef units.Duration
}

// Default transport constants. The 1 ms RTO floor mirrors practical
// datacenter minRTO tuning (and htsim's default): a lower floor makes
// normal ToR queue oscillation fire spurious timeouts. Schemes that want
// the §5 "microsecond-level timeout" behaviour set MinRTO explicitly.
const (
	DefaultMSS units.ByteSize = 1500
	// DefaultMinRTO is the RTO floor applied when Config.MinRTO is zero;
	// exported so the analytical model (internal/model) prices timeout
	// stalls with the same floor the simulated senders pay.
	DefaultMinRTO = units.Millisecond
	defaultGain   = 1.0 / 16
	defaultMaxRTO = 5 * units.Second
)

func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = DefaultMSS
	}
	if c.MinWindow <= 0 {
		c.MinWindow = c.MSS
	}
	if c.InitWindow <= 0 {
		c.InitWindow = 10 * c.MSS
	}
	if c.Gain <= 0 || c.Gain > 1 {
		c.Gain = defaultGain
	}
	if c.ExpectedRTT <= 0 {
		c.ExpectedRTT = 100 * units.Microsecond
	}
	if c.InitRTO <= 0 {
		c.InitRTO = 3 * c.ExpectedRTT
	}
	if c.MinRTO <= 0 {
		c.MinRTO = DefaultMinRTO
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = defaultMaxRTO
	}
	if c.InitRTO < c.MinRTO {
		c.InitRTO = c.MinRTO
	}
	if c.RTTRef <= 0 {
		c.RTTRef = 100 * units.Microsecond
	}
	return c
}

func (c Config) String() string {
	return fmt.Sprintf("mss=%v iw=%v rtt=%v rto=[%v,%v]",
		c.MSS, c.InitWindow, c.ExpectedRTT, c.MinRTO, c.MaxRTO)
}
