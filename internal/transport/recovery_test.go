package transport

// Recovery behaviour under injected faults: the transport must survive link
// flaps and inter-DC blackholes with RTO-driven retransmission, reset its
// window on timeout (§4.1), back off exponentially instead of livelocking,
// and resume cleanly when the path heals.

import (
	"testing"

	"incastproxy/internal/faults"
	"incastproxy/internal/netsim"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

func TestRecoveryAcrossMidFlowLinkFlap(t *testing.T) {
	// 10 Gbps / 10 us link; the flow takes ~800 us clean, and the link
	// flaps down for 2 ms in the middle.
	p := newPair(t, 10*units.Gbps, 10*units.Microsecond, netsim.QueueConfig{})
	total := units.ByteSize(1 * units.MB)
	cfg := Config{
		InitWindow:  100 * units.KB,
		ExpectedRTT: 25 * units.Microsecond,
		MinRTO:      100 * units.Microsecond,
	}

	inj := faults.New(p.e, 1)
	inj.FlapLink(p.src.NIC(), units.Time(200*units.Microsecond), 2*units.Millisecond)

	doneAt, snd, recv := runFlow(t, p, total, cfg)
	if !recv.Done() || recv.Bytes() != total {
		t.Fatalf("flow incomplete across flap: recv %v of %v, timeouts=%d",
			recv.Bytes(), total, snd.Stats.Timeouts)
	}
	if snd.Stats.Timeouts == 0 || snd.Stats.Retransmits == 0 {
		t.Fatalf("flap must force RTO recovery, got timeouts=%d retx=%d",
			snd.Stats.Timeouts, snd.Stats.Retransmits)
	}
	// Completion can't precede the link coming back.
	if doneAt < units.Time(2200*units.Microsecond) {
		t.Fatalf("done at %v, before the flap cleared", doneAt)
	}
	if len(inj.Timeline()) != 2 {
		t.Fatalf("timeline = %v", inj.Timeline())
	}
}

func TestBlackholeResetsWindowAndBacksOff(t *testing.T) {
	// Emulate a long-haul path: 1 ms propagation. A 100 ms blackhole is
	// many RTOs long; the sender must reset cwnd to the minimum, back off
	// exponentially (bounded timeout count — no livelock), and finish
	// after the path heals.
	p := newPair(t, 10*units.Gbps, units.Millisecond, netsim.QueueConfig{})
	total := units.ByteSize(300 * units.KB)
	cfg := Config{
		InitWindow:  30 * units.KB,
		ExpectedRTT: 2 * units.Millisecond,
		MinRTO:      4 * units.Millisecond,
		MaxRTO:      50 * units.Millisecond,
	}

	const holeStart = units.Time(3 * units.Millisecond)
	const holeDur = 100 * units.Millisecond
	inj := faults.New(p.e, 1)
	// Both directions of the only link: a true blackhole.
	inj.BlackholePorts("inter-dc", []*netsim.Port{p.src.NIC(), p.dst.NIC()}, holeStart, holeDur)

	var cwndMidHole units.ByteSize
	var timeoutsMidHole uint64

	var doneAt units.Time
	recv := NewReceiver(p.dst, 1, p.src.ID(), total, func(at units.Time) { doneAt = at })
	snd := NewSender(p.src, 1, p.dst.ID(), 0, total, cfg, nil)
	p.src.Bind(1, snd)
	p.dst.Bind(1, recv)
	// Sample sender state deep inside the hole, after several RTOs.
	p.e.Schedule(holeStart.Add(80*units.Millisecond), func(*sim.Engine) {
		cwndMidHole = snd.Cwnd()
		timeoutsMidHole = snd.Stats.Timeouts
	})
	snd.Start(p.e)
	p.e.RunUntil(units.Time(5 * units.Second))

	if !recv.Done() || recv.Bytes() != total {
		t.Fatalf("flow incomplete after blackhole: recv %v of %v", recv.Bytes(), total)
	}
	if doneAt < holeStart.Add(holeDur) {
		t.Fatalf("done at %v, inside the blackhole", doneAt)
	}
	// §4.1: cwnd resets to the minimum on timeout.
	if cwndMidHole != cfg.MSS && cwndMidHole != 1500 {
		t.Fatalf("cwnd mid-blackhole = %v, want 1 MSS", cwndMidHole)
	}
	// Exponential backoff bounds the RTO count: with MinRTO 4 ms doubling
	// to a 50 ms cap, a 100 ms outage fits well under 10 expiries. A
	// livelocked (non-backing-off) sender would fire 25+.
	if timeoutsMidHole == 0 {
		t.Fatal("no timeouts during a total blackhole")
	}
	if timeoutsMidHole > 10 {
		t.Fatalf("timeouts = %d during the hole: backoff not applied (livelock)", timeoutsMidHole)
	}
}

func TestAbortSilencesSender(t *testing.T) {
	p := newPair(t, 10*units.Gbps, units.Millisecond, netsim.QueueConfig{})
	cfg := Config{InitWindow: 15 * units.KB, ExpectedRTT: 2 * units.Millisecond}

	// The path is dead from the start; the sender would retransmit
	// forever without Abort.
	p.src.NIC().SetDown(true)

	recv := NewReceiver(p.dst, 1, p.src.ID(), 300*units.KB, nil)
	snd := NewSender(p.src, 1, p.dst.ID(), 0, 300*units.KB, cfg, nil)
	p.src.Bind(1, snd)
	p.dst.Bind(1, recv)
	snd.Start(p.e)

	p.e.Schedule(units.Time(20*units.Millisecond), func(*sim.Engine) { snd.Abort() })
	p.e.RunUntil(units.Time(30 * units.Millisecond))

	if !snd.Aborted() || snd.Done() {
		t.Fatalf("aborted=%v done=%v", snd.Aborted(), snd.Done())
	}
	// Once aborted, the event loop drains: nothing re-arms, so no timer
	// survives past the abort instant.
	if n := p.e.Pending(); n != 0 {
		t.Fatalf("%d events still queued after abort: timers still churning", n)
	}
	sentAtAbort := snd.Stats.PktsSent
	p.e.Run()
	if snd.Stats.PktsSent != sentAtAbort {
		t.Fatal("aborted sender transmitted again")
	}
}
