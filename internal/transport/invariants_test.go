package transport

import (
	"testing"
	"testing/quick"

	"incastproxy/internal/netsim"
	"incastproxy/internal/rng"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// invariantChecker wraps a sender and asserts its internal accounting
// invariants after every delivered packet.
func checkInvariants(t *testing.T, s *Sender) {
	t.Helper()
	if s.inflight < 0 {
		t.Fatalf("inflight negative: %v", s.inflight)
	}
	if units.ByteSize(s.cwnd) < s.cfg.MinWindow {
		t.Fatalf("cwnd %v below floor %v", s.cwnd, s.cfg.MinWindow)
	}
	var sum units.ByteSize
	for _, rec := range s.outstanding {
		sum += rec.size
	}
	if sum != s.inflight {
		t.Fatalf("inflight %v != outstanding sum %v", s.inflight, sum)
	}
	if s.rto < s.cfg.MinRTO || s.rto > s.cfg.MaxRTO {
		t.Fatalf("rto %v outside [%v, %v]", s.rto, s.cfg.MinRTO, s.cfg.MaxRTO)
	}
}

// TestPropertyTransportInvariants runs randomized lossy flows and checks
// accounting invariants at every ACK/NACK delivery, and exact data
// delivery at the end.
func TestPropertyTransportInvariants(t *testing.T) {
	f := func(seed int64, capPkts uint8, trim bool, sizeKB uint16, delayUS uint8) bool {
		capacity := units.ByteSize(int(capPkts)%48+4) * 1500
		total := units.ByteSize(int(sizeKB)%120+2) * units.KB
		delay := units.Duration(int(delayUS)%40+2) * units.Microsecond

		e := sim.New()
		src := netsim.NewHost(1, "src")
		dst := netsim.NewHost(2, "dst")
		q := netsim.QueueConfig{Capacity: capacity, Trim: trim, MarkLow: capacity / 4, MarkHigh: capacity / 2}
		netsim.Connect(src, dst, 10*units.Gbps, delay, q, q, rng.New(seed))

		cfg := Config{
			InitWindow:  256 * units.KB,
			ExpectedRTT: 2*delay + 10*units.Microsecond,
			MinRTO:      100 * units.Microsecond,
		}
		recv := NewReceiver(dst, 1, src.ID(), total, nil)
		snd := NewSender(src, 1, dst.ID(), 0, total, cfg, nil)

		// Intercept delivery to the sender so invariants are checked
		// after every control packet.
		src.Bind(1, netsim.EndpointFunc(func(e *sim.Engine, p *netsim.Packet) {
			snd.Handle(e, p)
			checkInvariants(t, snd)
		}))
		dst.Bind(1, recv)
		snd.Start(e)
		e.RunUntil(units.Time(20 * units.Second))

		return recv.Done() && snd.Done() && recv.Bytes() == total && snd.Inflight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNoDuplicateDelivery: the receiver's byte count equals the
// flow size exactly, never more, even under heavy retransmission.
func TestPropertyNoDuplicateDelivery(t *testing.T) {
	f := func(seed int64, sizeKB uint16) bool {
		total := units.ByteSize(int(sizeKB)%300+10) * units.KB
		e := sim.New()
		src := netsim.NewHost(1, "src")
		dst := netsim.NewHost(2, "dst")
		q := netsim.QueueConfig{Capacity: 9000} // brutal: 6 packets
		netsim.Connect(src, dst, 10*units.Gbps, 5*units.Microsecond, q, q, rng.New(seed))
		recv := NewReceiver(dst, 1, src.ID(), total, nil)
		snd := NewSender(src, 1, dst.ID(), 0, total, Config{
			InitWindow:  128 * units.KB,
			ExpectedRTT: 15 * units.Microsecond,
			MinRTO:      100 * units.Microsecond,
		}, nil)
		src.Bind(1, snd)
		dst.Bind(1, recv)
		snd.Start(e)
		e.RunUntil(units.Time(20 * units.Second))
		return recv.Done() && recv.Bytes() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSenderAccessorsDuringRun spot-checks the exported accessors.
func TestSenderAccessorsDuringRun(t *testing.T) {
	p := newPair(t, 10*units.Gbps, 100*units.Microsecond, netsim.QueueConfig{})
	cfg := Config{InitWindow: 15_000, ExpectedRTT: 220 * units.Microsecond}
	snd := NewSender(p.src, 1, p.dst.ID(), 0, 150*units.KB, cfg, nil)
	recv := NewReceiver(p.dst, 1, p.src.ID(), 150*units.KB, nil)
	p.src.Bind(1, snd)
	p.dst.Bind(1, recv)
	snd.Start(p.e)
	p.e.RunUntil(units.Time(50 * units.Microsecond))
	if snd.Inflight() == 0 {
		t.Fatal("mid-flight inflight should be positive")
	}
	if snd.Cwnd() != 15_000 {
		t.Fatalf("cwnd = %v before any feedback", snd.Cwnd())
	}
	if snd.Done() {
		t.Fatal("cannot be done mid-flight")
	}
	p.e.RunUntil(units.Time(20 * units.Second))
	if !snd.Done() || snd.DoneAt() == 0 {
		t.Fatal("flow should finish")
	}
}
