package transport

// Telemetry is the shared observability sink for the senders of one run:
// an RTT histogram in the metrics registry plus (optionally) a flow-event
// tracer. One Telemetry serves every flow — per-flow series are separated
// on the tracer's tracks, aggregate distributions share the histogram.
//
// A nil *Telemetry (and a Telemetry holding nil instruments) records
// nothing; senders call through unconditionally.

import (
	"incastproxy/internal/obs"
	"incastproxy/internal/units"
)

// Telemetry carries the instruments a Sender records into.
type Telemetry struct {
	// RTT accumulates smoothed-RTT input samples, in microseconds.
	RTT *obs.Histogram
	// FCT accumulates flow completion times, in microseconds.
	FCT *obs.Histogram
	// Trace receives flow lifecycle events and cwnd/alpha trajectories.
	Trace *obs.Tracer
}

// NewTelemetry registers the transport histograms on reg (nil-safe) and
// binds the tracer (which may be nil to disable event recording).
func NewTelemetry(reg *obs.Registry, tr *obs.Tracer) *Telemetry {
	return &Telemetry{
		RTT:   reg.Histogram("transport_rtt_us", obs.DefaultDurationBucketsMicros()),
		FCT:   reg.Histogram("transport_fct_us", obs.DefaultDurationBucketsMicros()),
		Trace: tr,
	}
}

func (t *Telemetry) observeRTT(d units.Duration) {
	if t != nil {
		t.RTT.Observe(int64(d) / int64(units.Microsecond))
	}
}

func (t *Telemetry) observeFCT(d units.Duration) {
	if t != nil {
		t.FCT.Observe(int64(d) / int64(units.Microsecond))
	}
}

func (t *Telemetry) tracer() *obs.Tracer {
	if t == nil {
		return nil
	}
	return t.Trace
}

// InstrumentSenders exports the summed SenderStats of a (growing) slice of
// senders as lazy registry collectors. The slice pointer is captured, so
// senders appended after registration are included in later snapshots.
func InstrumentSenders(reg *obs.Registry, senders *[]*Sender) {
	if reg == nil {
		return
	}
	sum := func(pick func(*SenderStats) uint64) func() uint64 {
		return func() uint64 {
			var n uint64
			for _, s := range *senders {
				n += pick(&s.Stats)
			}
			return n
		}
	}
	reg.CounterFunc("transport_pkts_sent_total", sum(func(s *SenderStats) uint64 { return s.PktsSent }))
	reg.CounterFunc("transport_retransmits_total", sum(func(s *SenderStats) uint64 { return s.Retransmits }))
	reg.CounterFunc("transport_timeouts_total", sum(func(s *SenderStats) uint64 { return s.Timeouts }))
	reg.CounterFunc("transport_spurious_rto_total", sum(func(s *SenderStats) uint64 { return s.SpuriousRTO }))
	reg.CounterFunc("transport_nacks_total", sum(func(s *SenderStats) uint64 { return s.Nacks }))
	reg.CounterFunc("transport_marked_acks_total", sum(func(s *SenderStats) uint64 { return s.MarkedAcks }))
	reg.CounterFunc("transport_unmarked_acks_total", sum(func(s *SenderStats) uint64 { return s.UnmarkedAcks }))
	reg.CounterFunc("transport_decreases_total", sum(func(s *SenderStats) uint64 { return s.Decreases }))
}

// InstrumentReceivers exports the summed ReceiverStats of a (growing) slice
// of receivers as lazy registry collectors.
func InstrumentReceivers(reg *obs.Registry, receivers *[]*Receiver) {
	if reg == nil {
		return
	}
	sum := func(pick func(*ReceiverStats) uint64) func() uint64 {
		return func() uint64 {
			var n uint64
			for _, r := range *receivers {
				n += pick(&r.Stats)
			}
			return n
		}
	}
	reg.CounterFunc("transport_pkts_received_total", sum(func(s *ReceiverStats) uint64 { return s.PktsReceived }))
	reg.CounterFunc("transport_duplicates_total", sum(func(s *ReceiverStats) uint64 { return s.Duplicates }))
	reg.CounterFunc("transport_trimmed_seen_total", sum(func(s *ReceiverStats) uint64 { return s.TrimmedSeen }))
	reg.CounterFunc("transport_acks_sent_total", sum(func(s *ReceiverStats) uint64 { return s.AcksSent }))
	reg.CounterFunc("transport_nacks_sent_total", sum(func(s *ReceiverStats) uint64 { return s.NacksSent }))
}
