package transport

import (
	"incastproxy/internal/netsim"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// ReceiverStats counts what one receiving endpoint observed.
type ReceiverStats struct {
	PktsReceived uint64
	Duplicates   uint64
	TrimmedSeen  uint64
	AcksSent     uint64
	NacksSent    uint64
}

// Receiver is the receiving endpoint of one flow: it acknowledges every
// data packet individually, echoing the packet's ECN mark, and (optionally)
// NACKs trimmed headers that reach it. Bind it to its host before use.
type Receiver struct {
	host *netsim.Host
	flow netsim.FlowID
	// ackDst is where control packets are addressed: the sender
	// directly, or the streamlined proxy, which relays them.
	ackDst netsim.NodeID

	// NackOnTrim makes the receiver NACK trimmed headers. Receivers do
	// this whenever trimming is enabled on their path; the streamlined
	// proxy's value is generating the same NACK a millisecond earlier.
	NackOnTrim bool

	// OnData, if set, observes every new (non-duplicate, non-trimmed)
	// data packet; the naive proxy's upstream half uses it to feed its
	// relay queue.
	OnData func(e *sim.Engine, p *netsim.Packet)

	expected units.ByteSize
	received map[int64]bool
	bytes    units.ByteSize
	done     bool
	doneAt   units.Time
	onDone   func(units.Time)
	Stats    ReceiverStats
}

// NewReceiver creates a receiver expecting the given number of bytes
// (0 means unbounded/streaming; completion is then never signalled).
// Control packets are sent to ackDst.
func NewReceiver(host *netsim.Host, flow netsim.FlowID, ackDst netsim.NodeID,
	expected units.ByteSize, onDone func(units.Time)) *Receiver {
	return &Receiver{
		host:       host,
		flow:       flow,
		ackDst:     ackDst,
		NackOnTrim: true,
		expected:   expected,
		received:   make(map[int64]bool),
		onDone:     onDone,
	}
}

// Bytes returns the distinct payload bytes received so far.
func (r *Receiver) Bytes() units.ByteSize { return r.bytes }

// Done reports whether all expected bytes have arrived.
func (r *Receiver) Done() bool { return r.done }

// DoneAt returns the completion time (valid once Done).
func (r *Receiver) DoneAt() units.Time { return r.doneAt }

// Handle implements netsim.Endpoint.
func (r *Receiver) Handle(e *sim.Engine, p *netsim.Packet) {
	if p.Kind != netsim.Data {
		return // receivers only consume data
	}
	if p.Trimmed {
		r.Stats.TrimmedSeen++
		if r.NackOnTrim {
			r.sendControl(e, netsim.Nack, p)
		}
		return
	}
	r.Stats.PktsReceived++
	if r.received[p.Seq] {
		r.Stats.Duplicates++
		// Re-ACK: the earlier ACK may have been dropped or the
		// sender may have spuriously retransmitted.
		r.sendControl(e, netsim.Ack, p)
		return
	}
	r.received[p.Seq] = true
	r.bytes += p.Size
	if r.OnData != nil {
		r.OnData(e, p)
	}
	r.sendControl(e, netsim.Ack, p)
	if !r.done && r.expected > 0 && r.bytes >= r.expected {
		r.done = true
		r.doneAt = e.Now()
		if r.onDone != nil {
			r.onDone(e.Now())
		}
	}
}

// sendControl emits an ACK or NACK for data packet p back toward ackDst.
func (r *Receiver) sendControl(e *sim.Engine, kind netsim.Kind, p *netsim.Packet) {
	c := r.host.NewPacket()
	c.Flow = r.flow
	c.Kind = kind
	c.Seq = p.Seq
	c.Size = netsim.ControlSize
	c.FullSize = netsim.ControlSize
	c.Dst = r.ackDst
	c.FinalDst = p.Src
	c.EchoECN = p.ECN && kind == netsim.Ack
	c.Retx = p.Retx // Karn: flag acks of retransmitted data
	c.SentAt = p.SentAt
	if kind == netsim.Ack {
		r.Stats.AcksSent++
	} else {
		r.Stats.NacksSent++
	}
	r.host.Send(e, c)
}
