package proxy

import (
	"incastproxy/internal/detect"
	"incastproxy/internal/netsim"
	"incastproxy/internal/rng"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// InferringStats counts the inferring proxy's activity, including the
// error sources §5's future work #1 asks about.
type InferringStats struct {
	DataForwarded uint64
	NacksSent     uint64
	AcksRelayed   uint64
	NacksRelayed  uint64
	// FalseNacks counts NACKs later contradicted by the original
	// packet's arrival (reordering mistaken for loss).
	FalseNacks uint64
}

// InferringGroup is the future-work #1 proxy: it provides early loss
// feedback *without* switch trimming support by inferring losses from
// sequence gaps, disambiguating reordering (packet spraying!) from real
// loss with a time threshold and eBPF-like bounded memory
// (detect.LossTracker). One group serves every flow relayed through one
// proxy host, sharing a single bounded flow table — exactly the resource
// constraint an eBPF map imposes.
type InferringGroup struct {
	host    *netsim.Host
	tracker *detect.LossTracker
	flows   map[netsim.FlowID]inferFlow

	// FlushEvery is the period of the tracker's timer-driven hole
	// expiry (how quickly losses are declared without new arrivals).
	FlushEvery units.Duration
	// ProcDelay models per-packet processing (the inferring program
	// does more work than the streamlined trim check).
	ProcDelay rng.Distribution
	src       *rng.Source

	started bool
	until   units.Time
	Stats   InferringStats
}

type inferFlow struct {
	sender, receiver netsim.NodeID
}

// NewInferringGroup creates the group at the proxy host. trackerCfg bounds
// the loss tracker's memory; flushEvery drives timer-based hole expiry
// (default 50 us).
func NewInferringGroup(host *netsim.Host, trackerCfg detect.LossTrackerConfig,
	flushEvery units.Duration, procDelay rng.Distribution, src *rng.Source) *InferringGroup {
	if flushEvery <= 0 {
		flushEvery = 50 * units.Microsecond
	}
	return &InferringGroup{
		host:       host,
		tracker:    detect.NewLossTracker(trackerCfg),
		flows:      make(map[netsim.FlowID]inferFlow),
		FlushEvery: flushEvery,
		ProcDelay:  procDelay,
		src:        src,
	}
}

// Tracker exposes the underlying loss tracker (for error-rate telemetry).
func (g *InferringGroup) Tracker() *detect.LossTracker { return g.tracker }

// AddFlow registers one relayed flow and binds the group at the proxy
// host for it.
func (g *InferringGroup) AddFlow(flow netsim.FlowID, sender, receiver netsim.NodeID) {
	g.flows[flow] = inferFlow{sender: sender, receiver: receiver}
	g.host.Bind(flow, endpointForFlow{g, flow})
}

// Start arms the periodic flush loop until the given simulated time.
func (g *InferringGroup) Start(e *sim.Engine, until units.Time) {
	if g.started {
		return
	}
	g.started = true
	g.until = until
	var tick sim.Event
	tick = func(e *sim.Engine) {
		for _, loss := range g.tracker.Flush(e.Now()) {
			g.nack(e, netsim.FlowID(loss.Flow), int64(loss.Seq))
		}
		next := e.Now().Add(g.FlushEvery)
		if next <= g.until {
			e.Schedule(next, tick)
		}
	}
	e.After(g.FlushEvery, tick)
}

// endpointForFlow adapts the group to netsim.Endpoint for one flow.
type endpointForFlow struct {
	g    *InferringGroup
	flow netsim.FlowID
}

// Handle implements netsim.Endpoint.
func (ef endpointForFlow) Handle(e *sim.Engine, pkt *netsim.Packet) {
	g := ef.g
	d := units.Duration(0)
	if g.ProcDelay != nil {
		d = g.ProcDelay.Sample(g.src)
	}
	if d <= 0 {
		g.process(e, ef.flow, pkt)
		return
	}
	e.After(d, func(e *sim.Engine) { g.process(e, ef.flow, pkt) })
}

func (g *InferringGroup) process(e *sim.Engine, flow netsim.FlowID, pkt *netsim.Packet) {
	fl, ok := g.flows[flow]
	if !ok {
		return
	}
	switch pkt.Kind {
	case netsim.Data:
		before := g.tracker.Stats.LateArrivals
		losses := g.tracker.Observe(uint64(flow), uint64(pkt.Seq), e.Now())
		if !pkt.Retx {
			// A flagged sequence arriving as an *original* (not a
			// retransmission) means reordering was mistaken for
			// loss — the NACK was a false positive. A
			// retransmission filling the hole is the expected
			// outcome of a correct NACK.
			g.Stats.FalseNacks += g.tracker.Stats.LateArrivals - before
		}
		for _, l := range losses {
			g.nack(e, netsim.FlowID(l.Flow), int64(l.Seq))
		}
		g.Stats.DataForwarded++
		pkt.Dst = fl.receiver
		pkt.Hops = 0
		g.host.Send(e, pkt)
	case netsim.Ack:
		g.Stats.AcksRelayed++
		pkt.Dst = fl.sender
		pkt.Hops = 0
		g.host.Send(e, pkt)
	default:
		g.Stats.NacksRelayed++
		pkt.Dst = fl.sender
		pkt.Hops = 0
		g.host.Send(e, pkt)
	}
}

func (g *InferringGroup) nack(e *sim.Engine, flow netsim.FlowID, seq int64) {
	fl, ok := g.flows[flow]
	if !ok {
		return
	}
	g.Stats.NacksSent++
	n := g.host.NewPacket()
	n.Flow = flow
	n.Kind = netsim.Nack
	n.Seq = seq
	n.Size = netsim.ControlSize
	n.FullSize = netsim.ControlSize
	n.Dst = fl.sender
	g.host.Send(e, n)
}
