package proxy

import (
	"testing"

	"incastproxy/internal/netsim"
	"incastproxy/internal/rng"
	"incastproxy/internal/sim"
	"incastproxy/internal/transport"
	"incastproxy/internal/units"
)

// chain wires sender -- proxy -- receiver hosts in a line so unit tests can
// exercise proxy endpoints without a full fabric. A middle switch routes by
// host ID.
type chain struct {
	e             *sim.Engine
	snd, prx, rcv *netsim.Host
}

func newChain(t testing.TB, q netsim.QueueConfig) *chain {
	t.Helper()
	e := sim.New()
	snd := netsim.NewHost(1, "snd")
	prx := netsim.NewHost(2, "prx")
	rcv := netsim.NewHost(3, "rcv")
	sw := netsim.NewSwitch(10, "sw", rng.New(5), false)
	rate := 10 * units.Gbps
	_, swToSnd := netsim.Connect(snd, sw, rate, 5*units.Microsecond, q, q, rng.New(1))
	swToPrx, _ := netsim.Connect(sw, prx, rate, 5*units.Microsecond, q, q, rng.New(2))
	swToRcv, _ := netsim.Connect(sw, rcv, rate, units.Millisecond, q, q, rng.New(3))
	sw.AddRoute(snd.ID(), swToSnd)
	sw.AddRoute(prx.ID(), swToPrx)
	sw.AddRoute(rcv.ID(), swToRcv)
	return &chain{e: e, snd: snd, prx: prx, rcv: rcv}
}

func TestStreamlinedForwardsDataToReceiver(t *testing.T) {
	c := newChain(t, netsim.QueueConfig{})
	p := NewStreamlined(c.prx, 1, c.snd.ID(), c.rcv.ID(), nil, nil)
	c.prx.Bind(1, p)
	var got *netsim.Packet
	c.rcv.Bind(1, netsim.EndpointFunc(func(_ *sim.Engine, pkt *netsim.Packet) { got = pkt }))

	pkt := c.snd.NewPacket()
	pkt.Flow = 1
	pkt.Kind = netsim.Data
	pkt.Seq = 3
	pkt.Size = 1500
	pkt.FullSize = 1500
	pkt.Dst = c.prx.ID()
	pkt.FinalDst = c.rcv.ID()
	c.snd.Send(c.e, pkt)
	c.e.Run()

	if got == nil {
		t.Fatal("data not forwarded to receiver")
	}
	if got.Src != c.snd.ID() {
		t.Fatal("proxy must preserve the original source")
	}
	if p.Stats.DataForwarded != 1 {
		t.Fatalf("DataForwarded = %d", p.Stats.DataForwarded)
	}
}

func TestStreamlinedNacksTrimmedHeaders(t *testing.T) {
	c := newChain(t, netsim.QueueConfig{})
	p := NewStreamlined(c.prx, 1, c.snd.ID(), c.rcv.ID(), nil, nil)
	c.prx.Bind(1, p)
	var nack *netsim.Packet
	c.snd.Bind(1, netsim.EndpointFunc(func(_ *sim.Engine, pkt *netsim.Packet) { nack = pkt }))
	forwarded := false
	c.rcv.Bind(1, netsim.EndpointFunc(func(_ *sim.Engine, pkt *netsim.Packet) { forwarded = true }))

	pkt := c.snd.NewPacket()
	pkt.Flow = 1
	pkt.Kind = netsim.Data
	pkt.Seq = 9
	pkt.Size = 1500
	pkt.FullSize = 1500
	pkt.Dst = c.prx.ID()
	pkt.FinalDst = c.rcv.ID()
	pkt.Trim()
	c.snd.Send(c.e, pkt)
	c.e.Run()

	if forwarded {
		t.Fatal("trimmed header must not cross the long-haul link")
	}
	if nack == nil || nack.Kind != netsim.Nack || nack.Seq != 9 {
		t.Fatalf("expected NACK for seq 9, got %v", nack)
	}
	if p.Stats.NacksSent != 1 {
		t.Fatalf("NacksSent = %d", p.Stats.NacksSent)
	}
}

func TestStreamlinedRelaysAcksToSender(t *testing.T) {
	c := newChain(t, netsim.QueueConfig{})
	p := NewStreamlined(c.prx, 1, c.snd.ID(), c.rcv.ID(), nil, nil)
	c.prx.Bind(1, p)
	var ack *netsim.Packet
	c.snd.Bind(1, netsim.EndpointFunc(func(_ *sim.Engine, pkt *netsim.Packet) { ack = pkt }))

	a := c.rcv.NewPacket()
	a.Flow = 1
	a.Kind = netsim.Ack
	a.Seq = 4
	a.Size = netsim.ControlSize
	a.EchoECN = true
	a.Dst = c.prx.ID()
	a.FinalDst = c.snd.ID()
	c.rcv.Send(c.e, a)
	c.e.Run()

	if ack == nil || ack.Kind != netsim.Ack || !ack.EchoECN {
		t.Fatalf("ack not relayed intact: %v", ack)
	}
	if p.Stats.AcksRelayed != 1 {
		t.Fatalf("AcksRelayed = %d", p.Stats.AcksRelayed)
	}
}

func TestStreamlinedProcessingDelayApplied(t *testing.T) {
	c := newChain(t, netsim.QueueConfig{})
	const d = 10 * units.Microsecond
	p := NewStreamlined(c.prx, 1, c.snd.ID(), c.rcv.ID(), rng.Constant{D: d}, rng.New(1))
	c.prx.Bind(1, p)
	var at units.Time
	c.rcv.Bind(1, netsim.EndpointFunc(func(e *sim.Engine, _ *netsim.Packet) { at = e.Now() }))

	pkt := c.snd.NewPacket()
	pkt.Flow = 1
	pkt.Kind = netsim.Data
	pkt.Size = 1500
	pkt.FullSize = 1500
	pkt.Dst = c.prx.ID()
	pkt.FinalDst = c.rcv.ID()
	c.snd.Send(c.e, pkt)
	c.e.Run()

	// Without the proxy delay the arrival would be exactly serialization
	// + propagation on both legs; the extra 10us must show up.
	base := 2*(1200*units.Nanosecond) + 5*units.Microsecond + 5*units.Microsecond + // snd->sw->prx
		2*(1200*units.Nanosecond) + 5*units.Microsecond + units.Millisecond // prx->sw->rcv
	if at < units.Time(base+d) {
		t.Fatalf("arrival %v too early; proc delay not applied (base %v)", at, base)
	}
}

func TestNaiveRelaysEndToEnd(t *testing.T) {
	c := newChain(t, netsim.QueueConfig{})
	total := 150 * units.KB

	var doneAt units.Time
	relay := NewNaive(c.prx, 1, 2, c.snd.ID(), c.rcv.ID(), NaiveConfig{
		Total: total,
		DownCfg: transport.Config{
			InitWindow:  units.MB,
			ExpectedRTT: 2 * units.Millisecond,
		},
	})
	rcv := transport.NewReceiver(c.rcv, 2, c.prx.ID(), total, func(at units.Time) { doneAt = at })
	c.rcv.Bind(2, rcv)
	snd := transport.NewSender(c.snd, 1, c.prx.ID(), 0, total,
		transport.Config{InitWindow: 256 * units.KB, ExpectedRTT: 20 * units.Microsecond}, nil)
	c.snd.Bind(1, snd)

	relay.Start(c.e)
	snd.Start(c.e)
	c.e.RunUntil(units.Time(10 * units.Second))

	if !rcv.Done() {
		t.Fatalf("naive relay incomplete: %v of %v delivered", rcv.Bytes(), total)
	}
	if rcv.Bytes() != total {
		t.Fatalf("delivered %v, want %v", rcv.Bytes(), total)
	}
	if doneAt == 0 {
		t.Fatal("completion not signalled")
	}
	if relay.Relayed() != total {
		t.Fatalf("relayed %v, want %v", relay.Relayed(), total)
	}
	if !snd.Done() {
		t.Fatal("upstream leg should complete")
	}
}

func TestNaiveTracksRelayQueueHighWatermark(t *testing.T) {
	// Fast upstream, slow downstream start: the relay queue must build.
	c := newChain(t, netsim.QueueConfig{})
	total := 150 * units.KB
	relay := NewNaive(c.prx, 1, 2, c.snd.ID(), c.rcv.ID(), NaiveConfig{
		Total: total,
		DownCfg: transport.Config{
			InitWindow:  1500, // 1 packet per downstream RTT (~2ms)
			ExpectedRTT: 2 * units.Millisecond,
		},
	})
	rcv := transport.NewReceiver(c.rcv, 2, c.prx.ID(), total, nil)
	c.rcv.Bind(2, rcv)
	snd := transport.NewSender(c.snd, 1, c.prx.ID(), 0, total,
		transport.Config{InitWindow: 256 * units.KB, ExpectedRTT: 20 * units.Microsecond}, nil)
	c.snd.Bind(1, snd)
	relay.Start(c.e)
	snd.Start(c.e)
	c.e.RunUntil(units.Time(10 * units.Second))

	if !rcv.Done() {
		t.Fatal("incomplete")
	}
	// Upstream finishes in ~150us; downstream needs several 2ms RTTs, so
	// nearly the whole flow must have queued at the proxy.
	if relay.MaxRelayQueue < total/2 {
		t.Fatalf("MaxRelayQueue = %v, expected a deep relay queue", relay.MaxRelayQueue)
	}
}
