package proxy

import (
	"testing"

	"incastproxy/internal/detect"
	"incastproxy/internal/netsim"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

func newInferChain(t *testing.T) (*chain, *InferringGroup) {
	t.Helper()
	c := newChain(t, netsim.QueueConfig{})
	g := NewInferringGroup(c.prx, detect.LossTrackerConfig{
		ReorderDelay: 50 * units.Microsecond,
	}, 20*units.Microsecond, nil, nil)
	g.AddFlow(1, c.snd.ID(), c.rcv.ID())
	return c, g
}

func sendData(c *chain, e *sim.Engine, seq int64, retx bool) {
	pkt := c.snd.NewPacket()
	pkt.Flow = 1
	pkt.Kind = netsim.Data
	pkt.Seq = seq
	pkt.Size = 1500
	pkt.FullSize = 1500
	pkt.Retx = retx
	pkt.Dst = c.prx.ID()
	pkt.FinalDst = c.rcv.ID()
	c.snd.Send(e, pkt)
}

func TestInferringForwardsInOrderData(t *testing.T) {
	c, g := newInferChain(t)
	got := 0
	c.rcv.Bind(1, netsim.EndpointFunc(func(*sim.Engine, *netsim.Packet) { got++ }))
	nacks := 0
	c.snd.Bind(1, netsim.EndpointFunc(func(_ *sim.Engine, p *netsim.Packet) {
		if p.Kind == netsim.Nack {
			nacks++
		}
	}))
	g.Start(c.e, units.Time(10*units.Millisecond))
	for seq := int64(0); seq < 50; seq++ {
		sendData(c, c.e, seq, false)
	}
	c.e.RunUntil(units.Time(5 * units.Millisecond))
	if got != 50 {
		t.Fatalf("forwarded %d/50", got)
	}
	if nacks != 0 {
		t.Fatalf("in-order stream produced %d NACKs", nacks)
	}
	if g.Stats.DataForwarded != 50 {
		t.Fatalf("stats: %+v", g.Stats)
	}
}

func TestInferringNacksSequenceGapAfterDelay(t *testing.T) {
	c, g := newInferChain(t)
	c.rcv.Bind(1, netsim.EndpointFunc(func(*sim.Engine, *netsim.Packet) {}))
	var nackSeqs []int64
	c.snd.Bind(1, netsim.EndpointFunc(func(_ *sim.Engine, p *netsim.Packet) {
		if p.Kind == netsim.Nack {
			nackSeqs = append(nackSeqs, p.Seq)
		}
	}))
	g.Start(c.e, units.Time(10*units.Millisecond))
	// Seqs 0,1,3,4 — 2 is "dropped" before the proxy.
	for _, seq := range []int64{0, 1, 3, 4} {
		sendData(c, c.e, seq, false)
	}
	c.e.RunUntil(units.Time(5 * units.Millisecond))
	if len(nackSeqs) != 1 || nackSeqs[0] != 2 {
		t.Fatalf("nacks = %v, want [2]", nackSeqs)
	}
	if g.Stats.NacksSent != 1 {
		t.Fatalf("stats: %+v", g.Stats)
	}
}

func TestInferringRetransmissionFillsHoleWithoutFalseNack(t *testing.T) {
	c, g := newInferChain(t)
	c.rcv.Bind(1, netsim.EndpointFunc(func(*sim.Engine, *netsim.Packet) {}))
	c.snd.Bind(1, netsim.EndpointFunc(func(*sim.Engine, *netsim.Packet) {}))
	g.Start(c.e, units.Time(50*units.Millisecond))
	sendData(c, c.e, 0, false)
	sendData(c, c.e, 2, false)                  // hole at 1
	c.e.RunUntil(units.Time(units.Millisecond)) // hole flagged + NACKed
	sendData(c, c.e, 1, true)                   // retransmission arrives
	c.e.RunUntil(units.Time(5 * units.Millisecond))
	if g.Stats.FalseNacks != 0 {
		t.Fatalf("retransmission must not count as false NACK: %+v", g.Stats)
	}
	if g.Stats.NacksSent != 1 {
		t.Fatalf("stats: %+v", g.Stats)
	}
}

func TestInferringLateOriginalCountsFalseNack(t *testing.T) {
	c, g := newInferChain(t)
	c.rcv.Bind(1, netsim.EndpointFunc(func(*sim.Engine, *netsim.Packet) {}))
	c.snd.Bind(1, netsim.EndpointFunc(func(*sim.Engine, *netsim.Packet) {}))
	g.Start(c.e, units.Time(50*units.Millisecond))
	sendData(c, c.e, 0, false)
	sendData(c, c.e, 2, false)
	c.e.RunUntil(units.Time(units.Millisecond)) // NACK for 1 already sent
	sendData(c, c.e, 1, false)                  // the ORIGINAL shows up late
	c.e.RunUntil(units.Time(5 * units.Millisecond))
	if g.Stats.FalseNacks != 1 {
		t.Fatalf("late original must count as false NACK: %+v", g.Stats)
	}
}

func TestInferringRelaysControl(t *testing.T) {
	c, g := newInferChain(t)
	g.Start(c.e, units.Time(units.Millisecond))
	var gotAck bool
	c.snd.Bind(1, netsim.EndpointFunc(func(_ *sim.Engine, p *netsim.Packet) {
		gotAck = p.Kind == netsim.Ack && p.EchoECN
	}))
	a := c.rcv.NewPacket()
	a.Flow = 1
	a.Kind = netsim.Ack
	a.Seq = 9
	a.Size = netsim.ControlSize
	a.EchoECN = true
	a.Dst = c.prx.ID()
	a.FinalDst = c.snd.ID()
	c.rcv.Send(c.e, a)
	c.e.Run()
	if !gotAck || g.Stats.AcksRelayed != 1 {
		t.Fatalf("ack not relayed: %+v", g.Stats)
	}
}

func TestInferringUnknownFlowDropped(t *testing.T) {
	c, g := newInferChain(t)
	g.process(c.e, 99, &netsim.Packet{Kind: netsim.Data, Flow: 99, Size: 1500})
	if g.Stats.DataForwarded != 0 {
		t.Fatal("unknown flow must be ignored")
	}
}

func TestInferringStartIdempotent(t *testing.T) {
	c, g := newInferChain(t)
	g.Start(c.e, units.Time(units.Millisecond))
	g.Start(c.e, units.Time(units.Millisecond)) // no double flush loop
	c.e.Run()
	if g.Tracker() == nil {
		t.Fatal("tracker accessor broken")
	}
}
