package proxy

import (
	"incastproxy/internal/netsim"
	"incastproxy/internal/sim"
	"incastproxy/internal/transport"
	"incastproxy/internal/units"
)

// Naive joins two independent transport connections at the proxy host:
// an upstream leg (sender -> proxy, flow upFlow) terminated by a full
// receiver, and a downstream leg (proxy -> receiver, flow downFlow) driven
// by a streaming sender. "Proxy_S sends a packet onto the wire as long as
// the queue at proxy_R is non-empty and there is bandwidth available"
// (§4.1) — here the relay queue is the streaming sender's supply queue and
// "bandwidth available" is its congestion window.
type Naive struct {
	Up   *transport.Receiver
	Down *transport.Sender

	// MaxRelayQueue is the high-watermark of bytes buffered at the
	// proxy between the two legs (received upstream, not yet sent
	// downstream).
	MaxRelayQueue units.ByteSize
	relayed       units.ByteSize
}

// NaiveConfig configures the two legs.
type NaiveConfig struct {
	// Total is the number of bytes this flow carries end to end.
	Total units.ByteSize
	// UpCfg configures the sender->proxy leg's receiver side (none
	// needed today) and DownCfg the proxy->receiver leg's sender.
	DownCfg transport.Config
}

// NewNaive wires the proxy-side endpoints for one relayed flow and binds
// them at the proxy host. senderID is the upstream flow's sender (ACK
// destination); receiverID the downstream destination host.
func NewNaive(proxyHost *netsim.Host, upFlow, downFlow netsim.FlowID,
	senderID, receiverID netsim.NodeID, cfg NaiveConfig) *Naive {
	n := &Naive{}
	n.Down = transport.NewStreamingSender(proxyHost, downFlow, receiverID, 0, cfg.DownCfg, nil)
	n.Up = transport.NewReceiver(proxyHost, upFlow, senderID, cfg.Total, nil)
	n.Up.OnData = func(e *sim.Engine, p *netsim.Packet) {
		n.relayed += p.Size
		n.Down.Supply(e, p.Size)
		if q := n.Down.SupplyBacklog(); q > n.MaxRelayQueue {
			n.MaxRelayQueue = q
		}
		if n.Up.Done() {
			n.Down.CloseSupply(e)
		}
	}
	proxyHost.Bind(upFlow, n.Up)
	proxyHost.Bind(downFlow, n.Down)
	return n
}

// Start starts the downstream leg (it idles until supplied).
func (n *Naive) Start(e *sim.Engine) { n.Down.Start(e) }

// Relayed returns the bytes received upstream so far.
func (n *Naive) Relayed() units.ByteSize { return n.relayed }
