// Package proxy implements the paper's two proxy designs (§3, §4.1):
//
//   - Naive: two independent transport connections per flow, joined by a
//     relay queue at the proxy. The proxy runs full sender and receiver
//     logic; the upstream connection is contained in the sending
//     datacenter, so its feedback loop is microseconds long.
//
//   - Streamlined: a single end-to-end connection routed through the
//     proxy. Switches in the sending datacenter trim overflowing packets
//     to headers; when a header-only packet reaches the proxy, it NACKs
//     the sender immediately — loss is detected and signalled as if the
//     proxy were the receiver — and forwards everything else unchanged.
package proxy

import (
	"incastproxy/internal/netsim"
	"incastproxy/internal/rng"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// StreamlinedStats counts per-flow proxy activity.
type StreamlinedStats struct {
	DataForwarded uint64
	AcksRelayed   uint64
	NacksSent     uint64
	NacksRelayed  uint64
}

// Streamlined is the lightweight per-flow proxy endpoint of §3 Insight #3.
// It keeps no connection state: it only inspects whether a data packet was
// trimmed. Bind it at the proxy host for the flow's ID.
type Streamlined struct {
	host     *netsim.Host
	flow     netsim.FlowID
	sender   netsim.NodeID
	receiver netsim.NodeID

	// ProcDelay models the per-packet processing overhead of the eBPF
	// TC-hook implementation (§5 measures a 0.42 us median lower
	// bound). Nil means zero overhead.
	ProcDelay rng.Distribution
	src       *rng.Source

	// NoEarlyNack disables the proxy's loss feedback: trimmed headers
	// are forwarded to the remote receiver instead of being NACKed
	// locally. This is the §3 Insight #2 ablation ("a proxy that simply
	// relays packets ... does not accelerate convergence").
	NoEarlyNack bool

	Stats StreamlinedStats
}

// NewStreamlined creates the proxy endpoint for one flow whose sender and
// eventual receiver are the given hosts.
func NewStreamlined(host *netsim.Host, flow netsim.FlowID, sender, receiver netsim.NodeID,
	procDelay rng.Distribution, src *rng.Source) *Streamlined {
	return &Streamlined{
		host:      host,
		flow:      flow,
		sender:    sender,
		receiver:  receiver,
		ProcDelay: procDelay,
		src:       src,
	}
}

// Handle implements netsim.Endpoint.
func (p *Streamlined) Handle(e *sim.Engine, pkt *netsim.Packet) {
	d := units.Duration(0)
	if p.ProcDelay != nil {
		d = p.ProcDelay.Sample(p.src)
	}
	if d <= 0 {
		p.process(e, pkt)
		return
	}
	e.After(d, func(e *sim.Engine) { p.process(e, pkt) })
}

func (p *Streamlined) process(e *sim.Engine, pkt *netsim.Packet) {
	switch {
	case pkt.Kind == netsim.Data && pkt.Trimmed && p.NoEarlyNack:
		// Ablation: relay the trimmed header to the receiver; the
		// loss signal then pays the full long-haul round trip.
		p.Stats.DataForwarded++
		pkt.Dst = p.receiver
		pkt.Hops = 0
		p.host.Send(e, pkt)
	case pkt.Kind == netsim.Data && pkt.Trimmed:
		// Early loss feedback: NACK the sender now instead of
		// letting the header cross the long-haul link.
		p.Stats.NacksSent++
		n := p.host.NewPacket()
		n.Flow = p.flow
		n.Kind = netsim.Nack
		n.Seq = pkt.Seq
		n.Size = netsim.ControlSize
		n.FullSize = netsim.ControlSize
		n.Dst = p.sender
		p.host.Send(e, n)
	case pkt.Kind == netsim.Data:
		// Forward toward the real receiver.
		p.Stats.DataForwarded++
		pkt.Dst = p.receiver
		pkt.Hops = 0
		p.host.Send(e, pkt)
	default:
		// Control from the receiver side: relay to the sender.
		if pkt.Kind == netsim.Ack {
			p.Stats.AcksRelayed++
		} else {
			p.Stats.NacksRelayed++
		}
		pkt.Dst = p.sender
		pkt.Hops = 0
		p.host.Send(e, pkt)
	}
}
