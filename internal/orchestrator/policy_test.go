package orchestrator

import (
	"testing"

	"incastproxy/internal/control"
	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

// With a single registered proxy, decentralized sampling must converge on it
// every time regardless of trial count — and report the sampling overhead it
// actually paid, not the pool size.
func TestDecentralizedSingleProxy(t *testing.T) {
	o := New(1)
	only := workload.HostRef{DC: 0, Host: 63}
	o.Register(Proxy{Ref: only, Capacity: 100 * units.Gbps})
	pol := Decentralized{O: o, Trials: 5}
	if pol.Name() != "static-sampled" {
		t.Fatalf("name = %q", pol.Name())
	}
	for i := 0; i < 3; i++ {
		d, err := pol.Decide(bigReq())
		if err != nil {
			t.Fatal(err)
		}
		if !d.UseProxy || d.Proxy != only {
			t.Fatalf("decision %d missed the only proxy: %+v", i, d)
		}
		if d.Probes != 5 {
			t.Fatalf("decision %d probes = %d, want the 5 trials paid", i, d.Probes)
		}
		pol.Release(d.Assignment)
	}
	if active, committed, _ := o.Load(only); active != 0 || committed != 0 {
		t.Fatalf("load not released: active=%d committed=%v", active, committed)
	}
	// The single proxy going down empties the candidate pool.
	o.MarkDown(only)
	if _, err := pol.Decide(bigReq()); err != ErrNoProxies {
		t.Fatalf("down sole proxy: err = %v, want ErrNoProxies", err)
	}
}

// PredictICT must preserve the paper's ordering at every overflow severity:
// once the burst overflows, proxy schemes never predict worse than the
// loss-paying baseline; when it fits, they cost at most the intra hop; and
// predictions grow monotonically with transfer size within each scheme.
func TestPredictICTMonotonicAcrossSchemes(t *testing.T) {
	schemes := []workload.Scheme{workload.Baseline, workload.ProxyNaive, workload.ProxyStreamlined}
	req := bigReq()
	var prev map[workload.Scheme]units.Duration
	for _, bytes := range []units.ByteSize{10 * units.MB, 40 * units.MB, 100 * units.MB, 400 * units.MB} {
		req.Bytes = bytes
		cur := make(map[workload.Scheme]units.Duration, len(schemes))
		for _, s := range schemes {
			cur[s] = PredictICT(s, req)
			if cur[s] <= 0 {
				t.Fatalf("%v @ %v: non-positive prediction %v", s, bytes, cur[s])
			}
			if prev != nil && cur[s] < prev[s] {
				t.Errorf("%v: prediction shrank with size: %v @ %v < %v earlier", s, cur[s], bytes, prev[s])
			}
		}
		bound := cur[workload.Baseline]
		if firstRTTOverflow(req) <= 0 {
			// No first-RTT loss: the proxy buys nothing and pays the
			// intra-DC relay hop (Figure 2 Right's flat region).
			bound += req.IntraRTT
		}
		for _, s := range schemes[1:] {
			if cur[s] > bound {
				t.Errorf("@ %v: %v predicts %v, worse than baseline bound %v", bytes, s, cur[s], bound)
			}
		}
		prev = cur
	}
	// Once the burst overflows, the baseline must pay a visible penalty.
	req.Bytes = 400 * units.MB
	if PredictICT(workload.Baseline, req) <= PredictICT(workload.ProxyStreamlined, req) {
		t.Error("overflowing baseline should predict strictly worse than streamlined")
	}
}

// An adaptive decision in flight when its proxy dies: Failover must re-home
// the placement onto the surviving proxy, the adaptive policy must route the
// next incast there too, and a proxy with failing probes must be refused
// before the static selector sees the request at all.
func TestFailoverWithAdaptiveDecisionInFlight(t *testing.T) {
	o := New(1)
	p1 := workload.HostRef{DC: 0, Host: 62}
	p2 := workload.HostRef{DC: 0, Host: 63}
	o.Register(Proxy{Ref: p1, Capacity: 100 * units.Gbps})
	o.Register(Proxy{Ref: p2, Capacity: 100 * units.Gbps})
	pol := NewAdaptivePolicy(o, control.DefaultConfig())

	d, err := pol.Decide(bigReq())
	if err != nil {
		t.Fatal(err)
	}
	if !d.UseProxy || d.Assignment == 0 {
		t.Fatalf("adaptive should proxy the big incast: %+v", d)
	}
	first := d.Proxy

	// The chosen proxy dies with the placement still in flight.
	reps := o.Failover(first)
	if len(reps) != 1 || reps[0].ID != d.Assignment {
		t.Fatalf("failover replacements = %+v, want the in-flight placement", reps)
	}
	other := p2
	if first == p2 {
		other = p1
	}
	if !reps[0].To.UseProxy || reps[0].To.Proxy != other {
		t.Fatalf("re-home went to %+v, want survivor %v", reps[0].To, other)
	}

	// Subsequent adaptive decisions must avoid the downed proxy.
	d2, err := pol.Decide(bigReq())
	if err != nil {
		t.Fatal(err)
	}
	if !d2.UseProxy || d2.Proxy != other {
		t.Fatalf("post-failover decision = %+v, want survivor %v", d2, other)
	}
	pol.Release(reps[0].To.Assignment)
	pol.Release(d2.Assignment)
	if active, committed, _ := o.Load(other); active != 0 || committed != 0 {
		t.Fatalf("survivor load not drained: active=%d committed=%v", active, committed)
	}

	// Probe losses on the proxy path veto proxying entirely, without
	// consulting (or erroring on) the selector.
	for i := 0; i < 30; i++ {
		pol.ProxyEstimator().ObserveLoss(true)
	}
	d3, err := pol.Decide(bigReq())
	if err != nil {
		t.Fatal(err)
	}
	if d3.UseProxy {
		t.Fatalf("lossy proxy path should force direct: %+v", d3)
	}
}

// The adaptive policy must keep an incast direct when measured queueing
// excess on the proxy path erodes the predicted win below hysteresis.
func TestAdaptivePolicyRespectsMeasuredExcess(t *testing.T) {
	o := New(1)
	o.Register(Proxy{Ref: workload.HostRef{DC: 0, Host: 63}, Capacity: 100 * units.Gbps})
	pol := NewAdaptivePolicy(o, control.DefaultConfig())

	req := bigReq()
	d, err := pol.Decide(req)
	if err != nil {
		t.Fatal(err)
	}
	if !d.UseProxy {
		t.Fatalf("idle fabric: expected proxy, got %+v", d)
	}
	pol.Release(d.Assignment)

	// A long queueing excess on the proxy path (busy proxy ToR) makes the
	// intra hop cost more than the baseline's loss recovery saves.
	pol.ProxyEstimator().ObserveRTT(8 * units.Microsecond)
	for i := 0; i < 50; i++ {
		pol.ProxyEstimator().ObserveRTT(400 * units.Millisecond)
	}
	d2, err := pol.Decide(req)
	if err != nil {
		t.Fatal(err)
	}
	if d2.UseProxy {
		t.Fatalf("congested proxy path: expected direct, got %+v", d2)
	}
}

// A relay answering dials with BUSY is alive (probes succeed, zero loss)
// but overloaded; the breaker-fed busy rate must keep new incasts off it
// until the shed rate decays, exactly like probe loss keeps them off a dead
// one.
func TestAdaptivePolicyRefusesSheddingProxy(t *testing.T) {
	o := New(1)
	o.Register(Proxy{Ref: workload.HostRef{DC: 0, Host: 63}, Capacity: 100 * units.Gbps})
	pol := NewAdaptivePolicy(o, control.DefaultConfig())

	// Healthy probes, but every recent dial came back BUSY — the relay
	// breaker's view of sustained admission shedding.
	for i := 0; i < 50; i++ {
		pol.ProxyEstimator().ObserveLoss(false)
		pol.ProxyEstimator().ObserveBusy(true)
	}
	d, err := pol.Decide(bigReq())
	if err != nil {
		t.Fatal(err)
	}
	if d.UseProxy {
		t.Fatalf("shedding proxy: expected direct, got %+v", d)
	}
	if dials, sheds := pol.ProxyEstimator().Admissions(); dials != 50 || sheds != 50 {
		t.Fatalf("admission accounting: dials=%d sheds=%d", dials, sheds)
	}

	// Admissions resume: the busy EWMA decays and the proxy wins again.
	for i := 0; i < 50; i++ {
		pol.ProxyEstimator().ObserveBusy(false)
	}
	d2, err := pol.Decide(bigReq())
	if err != nil {
		t.Fatal(err)
	}
	if !d2.UseProxy {
		t.Fatalf("recovered proxy: expected proxy, got %+v", d2)
	}
	pol.Release(d2.Assignment)
}
