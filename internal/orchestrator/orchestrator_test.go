package orchestrator

import (
	"testing"

	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

// bigReq is an incast that clearly benefits from proxying: 100 MB over a
// 4 ms / 100 Gb/s path against a 17 MB buffer.
func bigReq() Request {
	return Request{
		Degree:      8,
		Bytes:       100 * units.MB,
		SenderDC:    0,
		InterRTT:    4 * units.Millisecond,
		IntraRTT:    8 * units.Microsecond,
		Rate:        100 * units.Gbps,
		BufferBytes: 17 * units.MB,
	}
}

func TestWorthProxyingLargeIncast(t *testing.T) {
	ok, reason := WorthProxying(bigReq())
	if !ok {
		t.Fatalf("large incast should be proxied: %s", reason)
	}
}

func TestWorthProxyingSmallIncast(t *testing.T) {
	// Figure 2 (Right): a 20 MB degree-4 incast sees no first-RTT loss
	// ("all three schemes are on par and there is no benefit using a
	// proxy").
	req := bigReq()
	req.Degree = 4
	req.Bytes = 20 * units.MB
	ok, reason := WorthProxying(req)
	if ok {
		t.Fatalf("20MB/degree-4 incast should not be proxied (%s)", reason)
	}
	// A lone sender can never overload via aggregate burst.
	req.Degree = 1
	req.Bytes = 100 * units.MB
	if ok, _ := WorthProxying(req); ok {
		t.Fatal("degree-1 flow should not be proxied")
	}
}

func TestWorthProxyingNoLatencyGap(t *testing.T) {
	// Figure 3: with inter ~ intra there is nothing to win.
	req := bigReq()
	req.InterRTT = 20 * units.Microsecond
	req.IntraRTT = 8 * units.Microsecond
	if ok, _ := WorthProxying(req); ok {
		t.Fatal("no latency gap -> no proxy")
	}
}

func TestDecideNoProxyRegistered(t *testing.T) {
	o := New(1)
	if _, err := o.Decide(bigReq()); err != ErrNoProxies {
		t.Fatalf("err = %v", err)
	}
}

func TestDecidePicksLeastLoaded(t *testing.T) {
	o := New(1)
	p1 := Proxy{Ref: workload.HostRef{DC: 0, Host: 60}, Capacity: 100 * units.Gbps}
	p2 := Proxy{Ref: workload.HostRef{DC: 0, Host: 61}, Capacity: 100 * units.Gbps}
	o.Register(p1)
	o.Register(p2)

	d1, err := o.Decide(bigReq())
	if err != nil || !d1.UseProxy {
		t.Fatalf("d1 = %+v err %v", d1, err)
	}
	d2, err := o.Decide(bigReq())
	if err != nil {
		t.Fatal(err)
	}
	if d1.Proxy == d2.Proxy {
		t.Fatal("second incast should land on the other (less loaded) proxy")
	}
	// Releasing p1's load steers the next incast back to it.
	o.Complete(d1.Proxy, bigReq().Bytes)
	d3, _ := o.Decide(bigReq())
	if d3.Proxy != d1.Proxy {
		t.Fatalf("after release, expected %v, got %v", d1.Proxy, d3.Proxy)
	}
}

func TestDecideIgnoresOtherDCProxies(t *testing.T) {
	o := New(1)
	o.Register(Proxy{Ref: workload.HostRef{DC: 1, Host: 0}, Capacity: 100 * units.Gbps})
	if _, err := o.Decide(bigReq()); err != ErrNoProxies {
		t.Fatal("proxy must be in the sending datacenter")
	}
}

func TestDecideSmallIncastBypassesProxy(t *testing.T) {
	o := New(1)
	o.Register(Proxy{Ref: workload.HostRef{DC: 0, Host: 60}, Capacity: 100 * units.Gbps})
	req := bigReq()
	req.Bytes = units.MB
	d, err := o.Decide(req)
	if err != nil {
		t.Fatal(err)
	}
	if d.UseProxy {
		t.Fatal("small incast must go direct")
	}
	if active, committed, _ := o.Load(workload.HostRef{DC: 0, Host: 60}); active != 0 || committed != 0 {
		t.Fatal("bypass must not consume proxy capacity")
	}
}

func TestDecideDefaultSchemeStreamlined(t *testing.T) {
	o := New(1)
	o.Register(Proxy{Ref: workload.HostRef{DC: 0, Host: 60}})
	d, _ := o.Decide(bigReq())
	if d.Scheme != workload.ProxyStreamlined {
		t.Fatalf("scheme = %v", d.Scheme)
	}
	req := bigReq()
	req.Scheme = workload.ProxyNaive
	d, _ = o.Decide(req)
	if d.Scheme != workload.ProxyNaive {
		t.Fatalf("scheme = %v", d.Scheme)
	}
}

func TestDecentralizedSamplesAndBalances(t *testing.T) {
	o := New(7)
	for h := 0; h < 8; h++ {
		o.Register(Proxy{Ref: workload.HostRef{DC: 0, Host: 56 + h}, Capacity: 100 * units.Gbps})
	}
	counts := map[workload.HostRef]int{}
	for i := 0; i < 64; i++ {
		d, err := o.DecideDecentralized(bigReq(), 2)
		if err != nil {
			t.Fatal(err)
		}
		if !d.UseProxy || d.Probes != 2 {
			t.Fatalf("decision = %+v", d)
		}
		counts[d.Proxy]++
	}
	// Power-of-two-choices must spread incasts: no proxy should hold
	// more than a third of them.
	for ref, c := range counts {
		if c > 22 {
			t.Fatalf("proxy %v got %d/64 incasts; balancing failed: %v", ref, c, counts)
		}
	}
}

func TestDecentralizedNoProxies(t *testing.T) {
	o := New(1)
	if _, err := o.DecideDecentralized(bigReq(), 3); err != ErrNoProxies {
		t.Fatalf("err = %v", err)
	}
}

func TestCompleteUnknownProxyIsNoop(t *testing.T) {
	o := New(1)
	o.Complete(workload.HostRef{DC: 0, Host: 1}, units.MB) // must not panic
}

func TestLoadAccounting(t *testing.T) {
	o := New(1)
	ref := workload.HostRef{DC: 0, Host: 60}
	o.Register(Proxy{Ref: ref})
	o.Decide(bigReq())
	active, committed, ok := o.Load(ref)
	if !ok || active != 1 || committed != bigReq().Bytes {
		t.Fatalf("load = %d/%v ok=%v", active, committed, ok)
	}
	// Over-release clamps at zero.
	o.Complete(ref, 10*bigReq().Bytes)
	if _, committed, _ := o.Load(ref); committed != 0 {
		t.Fatalf("committed = %v after over-release", committed)
	}
	if _, _, ok := o.Load(workload.HostRef{DC: 1, Host: 1}); ok {
		t.Fatal("unknown proxy should not report load")
	}
}

func TestPredictICTOrdering(t *testing.T) {
	req := bigReq()
	base := PredictICT(workload.Baseline, req)
	prox := PredictICT(workload.ProxyStreamlined, req)
	if prox >= base {
		t.Fatalf("model: proxy (%v) must beat baseline (%v) on a lossy incast", prox, base)
	}
	// Small incast: baseline pays no penalty, proxy adds a hop.
	small := req
	small.Bytes = units.MB
	if PredictICT(workload.Baseline, small) > PredictICT(workload.ProxyStreamlined, small) {
		t.Fatal("model: tiny incast should not favor the proxy")
	}
}
