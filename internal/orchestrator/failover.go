package orchestrator

// Failure handling: the orchestrator's global view must include liveness,
// or it keeps steering incasts at a dead proxy. A proxy marked down is
// excluded from Decide/DecideDecentralized, and the incasts already placed
// on it are re-homed — to the least-loaded healthy proxy in the same
// datacenter when one exists, otherwise back to the direct path (the
// paper's baseline: slower, but it completes).

import (
	"fmt"
	"sort"

	"incastproxy/internal/workload"
)

// PlacementID names one placement made by Decide/DecideDecentralized.
type PlacementID uint64

// Placement records where one incast was placed.
type Placement struct {
	ID    PlacementID
	Proxy workload.HostRef
	Req   Request
}

// Replacement is Failover's verdict for one stranded incast.
type Replacement struct {
	ID   PlacementID
	From workload.HostRef
	// To is the replacement placement: UseProxy false means no healthy
	// proxy remained and the incast must run direct.
	To Decision
}

// MarkDown marks ref unhealthy: it is skipped by subsequent selection and
// its standing assignments become candidates for Failover. Reports whether
// the proxy was known.
func (o *Orchestrator) MarkDown(ref workload.HostRef) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.proxies[ref]
	if !ok {
		return false
	}
	if !st.down {
		o.met.markDowns.Inc()
	}
	st.down = true
	return true
}

// MarkUp restores a proxy to the candidate pool (load counters intact).
func (o *Orchestrator) MarkUp(ref workload.HostRef) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.proxies[ref]
	if !ok {
		return false
	}
	if st.down {
		o.met.markUps.Inc()
	}
	st.down = false
	return true
}

// Healthy reports whether ref is registered and not marked down.
func (o *Orchestrator) Healthy(ref workload.HostRef) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.proxies[ref]
	return ok && !st.down
}

// Assignments returns the standing assignments on ref, ordered by ID.
func (o *Orchestrator) Assignments(ref workload.HostRef) []Placement {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.assignmentsLocked(ref)
}

func (o *Orchestrator) assignmentsLocked(ref workload.HostRef) []Placement {
	var out []Placement
	for _, a := range o.assigned {
		if a.Proxy == ref {
			out = append(out, *a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Release frees a tracked assignment when its incast completes. Complete
// remains for callers that track only aggregate load.
func (o *Orchestrator) Release(id PlacementID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if a, ok := o.assigned[id]; ok {
		o.unassign(a)
	}
}

// Failover marks ref down and re-homes every incast stranded on it: each is
// reassigned to the least-loaded healthy proxy in its own sending
// datacenter, rebalancing load across survivors as it goes; when no healthy
// proxy remains, the verdict is a direct-path fallback and the assignment is
// dropped from tracking. Replacements are processed and returned in ID
// order, so a fixed scenario fails over the same way every run.
func (o *Orchestrator) Failover(ref workload.HostRef) []Replacement {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.met.failovers.Inc()
	if st, ok := o.proxies[ref]; ok {
		if !st.down {
			o.met.markDowns.Inc()
		}
		st.down = true
	}
	stranded := o.assignmentsLocked(ref)
	out := make([]Replacement, 0, len(stranded))
	for _, a := range stranded {
		old := o.assigned[a.ID]
		o.unassign(old)
		re := Replacement{ID: a.ID, From: ref}
		if best := o.bestHealthyLocked(a.Req.SenderDC); best != nil {
			id := o.assign(best, a.Req)
			o.met.rehomed.Inc()
			re.To = Decision{
				UseProxy:   true,
				Proxy:      best.info.Ref,
				Scheme:     schemeOf(a.Req),
				Reason:     fmt.Sprintf("failover from downed proxy %v", ref),
				Assignment: id,
			}
		} else {
			re.To = Decision{
				UseProxy: false,
				Reason:   fmt.Sprintf("no healthy proxy left in DC %d: direct fallback", a.Req.SenderDC),
			}
		}
		out = append(out, re)
	}
	return out
}

func (o *Orchestrator) bestHealthyLocked(dc int) *proxyState {
	var best *proxyState
	for _, ref := range o.order {
		st := o.proxies[ref]
		if st.info.Ref.DC != dc || st.down {
			continue
		}
		if best == nil || less(st, best) {
			best = st
		}
	}
	return best
}
