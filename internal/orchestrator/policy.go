package orchestrator

// Policy abstracts the admission-and-placement strategy an incast consults
// before launch. The static global-view Orchestrator implements it, as do
// the sampling decentralized variant and the telemetry-driven adaptive
// policy below — callers pick one at startup (the -policy flag) and route
// every incast through the same three calls without caring which strategy
// answered.

import (
	"fmt"

	"incastproxy/internal/control"
	"incastproxy/internal/model"
)

// Policy answers incast routing questions.
type Policy interface {
	// Name identifies the strategy ("static-global", "static-sampled",
	// "adaptive").
	Name() string
	// Decide routes one incast. A UseProxy decision carries a live
	// Assignment that must be Released when the incast completes.
	Decide(req Request) (Decision, error)
	// Release frees a placement returned in a Decision (no-op for direct
	// decisions, whose Assignment is zero).
	Release(id PlacementID)
}

// Name labels the global-view strategy; with it the Orchestrator itself is
// a Policy (Decide and Release already match).
func (o *Orchestrator) Name() string { return "static-global" }

// noteDirect counts a direct verdict made on the orchestrator's behalf by a
// wrapping policy, so orchestrator_* decision metrics stay complete no
// matter which strategy answered.
func (o *Orchestrator) noteDirect() {
	o.met.decisions.Inc()
	o.met.direct.Inc()
}

// Decentralized adapts DecideDecentralized to the Policy interface: each
// decision samples Trials random proxies and takes the least loaded.
type Decentralized struct {
	O      *Orchestrator
	Trials int
}

// Name identifies the sampling strategy.
func (d Decentralized) Name() string { return "static-sampled" }

// Decide samples d.Trials proxies and picks the least loaded.
func (d Decentralized) Decide(req Request) (Decision, error) {
	return d.O.DecideDecentralized(req, d.Trials)
}

// Release frees a placement made by Decide.
func (d Decentralized) Release(id PlacementID) { d.O.Release(id) }

// AdaptivePolicy is the admission-time counterpart of the in-epoch
// controller (internal/control): before placing an incast it folds the
// measured state of both paths — probe loss and queueing-delay excess from
// the same PathEstimator type the simulator's probers and relay.Client's
// health loop feed — into the closed-form ICT model, and proxies only when
// the prediction says the proxy wins by more than the hysteresis factor.
// A proxy path with failing probes is refused outright, before the static
// selector ever sees the request.
type AdaptivePolicy struct {
	o             *Orchestrator
	cfg           control.Config
	direct, proxy *control.PathEstimator
}

// NewAdaptivePolicy wraps the orchestrator's static selection with
// estimator-driven admission. cfg supplies ProbeLoss and Hysteresis (start
// from control.DefaultConfig).
func NewAdaptivePolicy(o *Orchestrator, cfg control.Config) *AdaptivePolicy {
	return &AdaptivePolicy{
		o:      o,
		cfg:    cfg,
		direct: control.NewPathEstimator("direct", 0),
		proxy:  control.NewPathEstimator("proxy", 0),
	}
}

// Name identifies the adaptive strategy.
func (p *AdaptivePolicy) Name() string { return "adaptive" }

// DirectEstimator returns the direct path's estimator; feed it probe RTTs
// and losses.
func (p *AdaptivePolicy) DirectEstimator() *control.PathEstimator { return p.direct }

// ProxyEstimator returns the proxy path's estimator.
func (p *AdaptivePolicy) ProxyEstimator() *control.PathEstimator { return p.proxy }

// Decide routes one incast using the measured path state. The request's
// nominal RTTs are inflated by each path's current queueing excess, so the
// same incast that deserves a proxy on an idle fabric is kept direct while
// the proxy side is busy — and refused the proxy entirely while its probes
// are failing.
func (p *AdaptivePolicy) Decide(req Request) (Decision, error) {
	if !p.proxy.Healthy(p.cfg.ProbeLoss) {
		p.o.noteDirect()
		return Decision{UseProxy: false,
			Reason: fmt.Sprintf("proxy path unhealthy (probe loss %.2f >= %.2f)",
				p.proxy.LossRate(), p.cfg.ProbeLoss)}, nil
	}
	// A relay that answers dials with BUSY/GOING_AWAY is alive — probes
	// succeed — but overloaded or draining: the breaker-fed busy rate is
	// the only signal that distinguishes the two, and sending more incasts
	// its way amplifies the overload it is shedding. The probe-loss
	// threshold doubles as the shed-rate bar.
	if p.proxy.BusyRate() >= p.cfg.ProbeLoss {
		p.o.noteDirect()
		return Decision{UseProxy: false,
			Reason: fmt.Sprintf("proxy shedding load (busy rate %.2f >= %.2f)",
				p.proxy.BusyRate(), p.cfg.ProbeLoss)}, nil
	}
	// Steer off the analytical model's two-path comparison, folding the
	// estimators' measured queueing excess and loss into the prediction:
	// excess inflates the matching path's RTT, loss stretches its service.
	prm := modelParams(schemeOf(req), req)
	prm.DirectExcess = p.direct.Excess()
	prm.ProxyExcess = p.proxy.Excess()
	prm.DirectLoss = p.direct.LossRate()
	prm.ProxyLoss = p.proxy.LossRate()
	direct, proxied := model.Compare(prm)
	if float64(direct.ICT) <= float64(proxied.ICT)*p.cfg.Hysteresis {
		p.o.noteDirect()
		return Decision{UseProxy: false,
			Reason: fmt.Sprintf("predicted direct ICT %v within hysteresis %.2gx of proxied %v",
				direct.ICT, p.cfg.Hysteresis, proxied.ICT)}, nil
	}
	// The static selector re-checks WorthProxying; hand it the measured
	// path state the same way, as RTT inflation.
	eff := req
	eff.InterRTT += p.direct.Excess()
	eff.IntraRTT += p.proxy.Excess()
	return p.o.Decide(eff)
}

// Release frees a placement made by Decide.
func (p *AdaptivePolicy) Release(id PlacementID) { p.o.Release(id) }

var (
	_ Policy = (*Orchestrator)(nil)
	_ Policy = Decentralized{}
	_ Policy = (*AdaptivePolicy)(nil)
)
