// Package orchestrator addresses the paper's future work #3: selecting
// proxy servers across concurrent incasts. It provides
//
//   - a benefit predictor deciding whether an incast should be proxied at
//     all (Figure 2 Right shows small incasts gain nothing; Figure 3 shows
//     gains require a real intra/inter latency gap);
//
//   - a centralized selector with a global load view ("selected by a
//     global orchestrator, which requires frequent updates on proxy
//     status");
//
//   - a decentralized selector based on sampled probes ("in a
//     decentralized manner with repeated trials by individual incast"),
//     implemented as power-of-d-choices.
package orchestrator

import (
	"errors"
	"fmt"
	"sync"

	"incastproxy/internal/model"
	"incastproxy/internal/obs"
	"incastproxy/internal/rng"
	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

// Proxy describes one registered proxy server.
type Proxy struct {
	Ref workload.HostRef
	// Capacity is the proxy NIC rate; assignments are tracked against it.
	Capacity units.BitRate
}

// Request describes an incast asking for a routing decision.
type Request struct {
	Degree   int
	Bytes    units.ByteSize
	SenderDC int

	// InterRTT is the sender->receiver round-trip; IntraRTT the
	// sender->proxy round-trip.
	InterRTT, IntraRTT units.Duration
	// Rate is the bottleneck link rate; BufferBytes the receiver
	// down-ToR buffer.
	Rate        units.BitRate
	BufferBytes units.ByteSize
	// Scheme is the proxy design to use when proxying (default
	// streamlined).
	Scheme workload.Scheme
}

// Decision is the orchestrator's answer.
type Decision struct {
	UseProxy bool
	Proxy    workload.HostRef
	Scheme   workload.Scheme
	Reason   string
	// Probes counts remote load queries performed (decentralized mode's
	// communication overhead).
	Probes int
	// Assignment identifies this placement for failover bookkeeping
	// (zero when UseProxy is false). Pass it to Release when the incast
	// completes; Failover reuses it to re-home stranded incasts.
	Assignment PlacementID
}

type proxyState struct {
	info      Proxy
	active    int
	committed units.ByteSize
	down      bool
}

// Orchestrator tracks proxies and assigns incasts to them.
type Orchestrator struct {
	mu       sync.Mutex
	proxies  map[workload.HostRef]*proxyState
	order    []workload.HostRef // stable iteration for determinism
	src      *rng.Source
	nextID   PlacementID
	assigned map[PlacementID]*Placement

	// tracer, when set, records each routing decision as an instant on
	// the "orchestrator" decision-timeline track (see SetTracer).
	tracer *obs.Tracer

	// met holds registry instruments (see Instrument). The fields stay
	// nil until Instrument is called; nil instruments record nothing, so
	// the hot paths update them unconditionally.
	met struct {
		decisions, proxied, direct, probes *obs.Counter
		failovers, rehomed                 *obs.Counter
		markDowns, markUps                 *obs.Counter
	}
}

// Instrument registers the orchestrator's activity counters and live
// assignment gauges under orchestrator_* names. Call once, before use.
func (o *Orchestrator) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	o.met.decisions = reg.Counter("orchestrator_decisions_total")
	o.met.proxied = reg.Counter("orchestrator_proxied_total")
	o.met.direct = reg.Counter("orchestrator_direct_total")
	o.met.probes = reg.Counter("orchestrator_probes_total")
	o.met.failovers = reg.Counter("orchestrator_failovers_total")
	o.met.rehomed = reg.Counter("orchestrator_rehomed_total")
	o.met.markDowns = reg.Counter("orchestrator_mark_down_total")
	o.met.markUps = reg.Counter("orchestrator_mark_up_total")
	reg.GaugeFunc("orchestrator_assignments", func() int64 {
		o.mu.Lock()
		defer o.mu.Unlock()
		return int64(len(o.assigned))
	})
	reg.GaugeFunc("orchestrator_proxies_down", func() int64 {
		o.mu.Lock()
		defer o.mu.Unlock()
		var n int64
		for _, st := range o.proxies {
			if st.down {
				n++
			}
		}
		return n
	})
}

// SetTracer attaches a tracer: every Decide/DecideDecentralized outcome
// becomes an instant event on the "orchestrator" track (args: use_proxy,
// reason, probes), so placement decisions interleave with the control
// plane's steer timeline and the data plane's flow spans. Call before use.
func (o *Orchestrator) SetTracer(tr *obs.Tracer) { o.tracer = tr }

// traceDecision records one routing outcome on the decision timeline.
func (o *Orchestrator) traceDecision(mode string, d Decision) {
	if o.tracer == nil {
		return
	}
	use := "false"
	if d.UseProxy {
		use = "true"
	}
	o.tracer.Instant(o.tracer.Now(), "orchestrator", "decide."+mode, 0,
		obs.Arg{Key: "use_proxy", Val: use},
		obs.Arg{Key: "reason", Val: d.Reason},
		obs.Arg{Key: "probes", Val: fmt.Sprintf("%d", d.Probes)})
}

// Errors returned by selection.
var (
	ErrNoProxies = errors.New("orchestrator: no proxy registered in the sending datacenter")
)

// New returns an orchestrator; seed drives decentralized sampling.
func New(seed int64) *Orchestrator {
	return &Orchestrator{
		proxies:  make(map[workload.HostRef]*proxyState),
		src:      rng.New(seed),
		assigned: make(map[PlacementID]*Placement),
	}
}

// Register adds (or replaces) a proxy.
func (o *Orchestrator) Register(p Proxy) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, exists := o.proxies[p.Ref]; !exists {
		o.order = append(o.order, p.Ref)
	}
	o.proxies[p.Ref] = &proxyState{info: p}
}

// Load reports a proxy's active incast count and committed bytes.
func (o *Orchestrator) Load(ref workload.HostRef) (active int, committed units.ByteSize, ok bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.proxies[ref]
	if !ok {
		return 0, 0, false
	}
	return st.active, st.committed, true
}

// WorthProxying applies the paper's empirical benefit conditions and
// returns a human-readable reason either way.
func WorthProxying(req Request) (bool, string) {
	// Figure 3: the latency saving appears once the inter-DC path is
	// much slower than the intra-DC one (>= 100 us links vs 1 us links,
	// i.e. roughly two orders of magnitude in RTT).
	if req.IntraRTT > 0 && req.InterRTT < 10*req.IntraRTT {
		return false, fmt.Sprintf("latency gap too small (inter %v < 10x intra %v)",
			req.InterRTT, req.IntraRTT)
	}
	// Figure 2 (Right): an incast that fits in the receiver down-ToR
	// buffer loses nothing in the first RTT, so the feedback delay does
	// not matter and "there is no benefit using a proxy". First-RTT
	// traffic is bounded by the senders' initial windows (1 BDP each).
	overflow := firstRTTOverflow(req)
	if overflow <= 0 {
		return false, "no first-RTT loss expected (burst fits the receiver buffer)"
	}
	return true, fmt.Sprintf("first-RTT burst overflows the receiver buffer by %v", overflow)
}

// Decide picks a proxy with the full global view: the least-loaded (by
// committed bytes, then active incasts) registered proxy in the sending
// datacenter.
func (o *Orchestrator) Decide(req Request) (Decision, error) {
	o.met.decisions.Inc()
	if ok, reason := WorthProxying(req); !ok {
		o.met.direct.Inc()
		dec := Decision{UseProxy: false, Reason: reason}
		o.traceDecision("global", dec)
		return dec, nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	var best *proxyState
	probes := 0
	for _, ref := range o.order {
		st := o.proxies[ref]
		if st.info.Ref.DC != req.SenderDC || st.down {
			continue
		}
		probes++
		if best == nil || less(st, best) {
			best = st
		}
	}
	if best == nil {
		return Decision{}, ErrNoProxies
	}
	id := o.assign(best, req)
	o.met.proxied.Inc()
	o.met.probes.Add(uint64(probes))
	dec := Decision{
		UseProxy:   true,
		Proxy:      best.info.Ref,
		Scheme:     schemeOf(req),
		Reason:     "least-loaded proxy (global view)",
		Probes:     probes,
		Assignment: id,
	}
	o.traceDecision("global", dec)
	return dec, nil
}

// DecideDecentralized samples `trials` random proxies in the sending DC and
// picks the least loaded of the sample — the "repeated trials by individual
// incast" alternative, trading probe overhead for selection quality.
func (o *Orchestrator) DecideDecentralized(req Request, trials int) (Decision, error) {
	o.met.decisions.Inc()
	if ok, reason := WorthProxying(req); !ok {
		o.met.direct.Inc()
		dec := Decision{UseProxy: false, Reason: reason}
		o.traceDecision("sampled", dec)
		return dec, nil
	}
	if trials < 1 {
		trials = 2
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	var candidates []*proxyState
	for _, ref := range o.order {
		if st := o.proxies[ref]; st.info.Ref.DC == req.SenderDC && !st.down {
			candidates = append(candidates, st)
		}
	}
	if len(candidates) == 0 {
		return Decision{}, ErrNoProxies
	}
	var best *proxyState
	probes := 0
	for i := 0; i < trials; i++ {
		st := candidates[o.src.Intn(len(candidates))]
		probes++
		if best == nil || less(st, best) {
			best = st
		}
	}
	id := o.assign(best, req)
	o.met.proxied.Inc()
	o.met.probes.Add(uint64(probes))
	dec := Decision{
		UseProxy:   true,
		Proxy:      best.info.Ref,
		Scheme:     schemeOf(req),
		Reason:     fmt.Sprintf("best of %d sampled proxies (decentralized)", trials),
		Probes:     probes,
		Assignment: id,
	}
	o.traceDecision("sampled", dec)
	return dec, nil
}

// Complete releases an assignment made by Decide/DecideDecentralized.
func (o *Orchestrator) Complete(ref workload.HostRef, bytes units.ByteSize) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st, ok := o.proxies[ref]
	if !ok {
		return
	}
	if st.active > 0 {
		st.active--
	}
	st.committed -= bytes
	if st.committed < 0 {
		st.committed = 0
	}
}

func (o *Orchestrator) assign(st *proxyState, req Request) PlacementID {
	st.active++
	st.committed += req.Bytes
	o.nextID++
	id := o.nextID
	o.assigned[id] = &Placement{ID: id, Proxy: st.info.Ref, Req: req}
	return id
}

func (o *Orchestrator) unassign(a *Placement) {
	if st, ok := o.proxies[a.Proxy]; ok {
		if st.active > 0 {
			st.active--
		}
		st.committed -= a.Req.Bytes
		if st.committed < 0 {
			st.committed = 0
		}
	}
	delete(o.assigned, a.ID)
}

func less(a, b *proxyState) bool {
	if a.committed != b.committed {
		return a.committed < b.committed
	}
	return a.active < b.active
}

func schemeOf(req Request) workload.Scheme {
	if req.Scheme == workload.ProxyNaive {
		return workload.ProxyNaive
	}
	return workload.ProxyStreamlined
}

// modelParams maps a routing Request onto the analytical model's parameter
// set: the direct path is the sender->receiver long haul, the proxy up-leg
// the sender->proxy loop, and the relay's down leg rides the same long-haul
// path the direct route uses. Zero Rate/Buffer fields fall back to the §4.1
// fabric defaults inside the model, matching the simulator's spec defaults.
func modelParams(scheme workload.Scheme, req Request) model.Params {
	if scheme != workload.Baseline {
		scheme = schemeOf(req)
	}
	return model.Params{
		Scheme:       scheme,
		Degree:       req.Degree,
		TotalBytes:   req.Bytes,
		DirectRTT:    req.InterRTT,
		ProxyUpRTT:   req.IntraRTT,
		ProxyDownRTT: req.InterRTT,
		Rate:         req.Rate,
		Buffer:       req.BufferBytes,
	}
}

// PredictICT estimates one routing's incast completion time by delegating to
// the calibrated analytical model (internal/model) — the same closed form
// the fast figure sweeps use and the validation tests pin against the
// packet-level simulator per regime.
func PredictICT(scheme workload.Scheme, req Request) units.Duration {
	return model.PredictICT(modelParams(scheme, req))
}

// firstRTTOverflow estimates the bytes a first-RTT burst loses at the
// receiver down-ToR. Senders inject up to one BDP each (IW = 1 BDP); the
// burst arrives at Degree times the drain rate, so the queue absorbs only
// 1/Degree of the arrivals while they land. Overflow is what exceeds
// buffer plus concurrent drain.
func firstRTTOverflow(req Request) units.ByteSize {
	firstRTT := units.ByteSize(req.Degree) * req.Rate.BDP(req.InterRTT)
	if firstRTT > req.Bytes {
		firstRTT = req.Bytes
	}
	if req.Degree <= 1 {
		return 0
	}
	queued := firstRTT * units.ByteSize(req.Degree-1) / units.ByteSize(req.Degree)
	return queued - req.BufferBytes
}
