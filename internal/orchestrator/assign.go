package orchestrator

import (
	"sort"

	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

// Fabric carries the path characteristics AssignIncasts needs for benefit
// prediction (the §4.1 fabric's values by default via DefaultFabric).
type Fabric struct {
	InterRTT, IntraRTT units.Duration
	Rate               units.BitRate
	BufferBytes        units.ByteSize
}

// DefaultFabric returns the §4.1 fabric characteristics at 1 ms long-haul
// links.
func DefaultFabric() Fabric {
	return Fabric{
		InterRTT:    4 * units.Millisecond,
		IntraRTT:    10 * units.Microsecond,
		Rate:        100 * units.Gbps,
		BufferBytes: 17 * units.MB,
	}
}

// Assignment reports what AssignIncasts decided for one detected incast.
type Assignment struct {
	Dst      workload.HostRef
	Start    units.Duration
	Degree   int
	Bytes    units.ByteSize
	Decision Decision
}

// AssignIncasts groups cross-datacenter flows into incasts (by destination
// and start time), asks the orchestrator for a routing decision per
// incast, and returns a copy of the flows with Via set where beneficial —
// the end-to-end form of future work #3 used by the mltraining example.
// Flows already carrying a Via, and intra-DC flows, are left untouched.
func (o *Orchestrator) AssignIncasts(flows []workload.FlowSpec, fab Fabric,
	scheme workload.Scheme) ([]workload.FlowSpec, []Assignment, error) {
	type key struct {
		dst   workload.HostRef
		start units.Duration
	}
	groups := make(map[key][]int)
	for i, f := range flows {
		if f.Via == nil && f.Src.DC != f.Dst.DC {
			k := key{f.Dst, f.Start}
			groups[k] = append(groups[k], i)
		}
	}
	// Deterministic decision order.
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.start != b.start {
			return a.start < b.start
		}
		if a.dst.DC != b.dst.DC {
			return a.dst.DC < b.dst.DC
		}
		return a.dst.Host < b.dst.Host
	})

	out := append([]workload.FlowSpec(nil), flows...)
	var assignments []Assignment
	for _, k := range keys {
		idxs := groups[k]
		var bytes units.ByteSize
		for _, i := range idxs {
			bytes += flows[i].Bytes
		}
		dec, err := o.Decide(Request{
			Degree:      len(idxs),
			Bytes:       bytes,
			SenderDC:    flows[idxs[0]].Src.DC,
			InterRTT:    fab.InterRTT,
			IntraRTT:    fab.IntraRTT,
			Rate:        fab.Rate,
			BufferBytes: fab.BufferBytes,
			Scheme:      scheme,
		})
		if err != nil {
			return nil, nil, err
		}
		if dec.UseProxy {
			for _, i := range idxs {
				out[i].Via = &workload.ProxyRef{Scheme: dec.Scheme, At: dec.Proxy}
			}
		}
		assignments = append(assignments, Assignment{
			Dst:      k.dst,
			Start:    k.start,
			Degree:   len(idxs),
			Bytes:    bytes,
			Decision: dec,
		})
	}
	return out, assignments, nil
}
