package orchestrator

import (
	"testing"

	"incastproxy/internal/netsim"
	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

func assignFixture() []workload.FlowSpec {
	var flows []workload.FlowSpec
	id := 1
	// Incast A: 4 senders -> dc1/h0, 10 MB each (big: should be proxied).
	for s := 0; s < 4; s++ {
		flows = append(flows, workload.FlowSpec{
			ID: netsim.FlowID(id), Src: workload.HostRef{DC: 0, Host: s},
			Dst: workload.HostRef{DC: 1, Host: 0}, Bytes: 10 * units.MB,
		})
		id++
	}
	// Incast B: 2 senders -> dc1/h1, 100 KB each (small: stays direct).
	for s := 4; s < 6; s++ {
		flows = append(flows, workload.FlowSpec{
			ID: netsim.FlowID(id), Src: workload.HostRef{DC: 0, Host: s},
			Dst: workload.HostRef{DC: 1, Host: 1}, Bytes: 100 * units.KB,
		})
		id++
	}
	// Intra-DC flow: never touched.
	flows = append(flows, workload.FlowSpec{
		ID: netsim.FlowID(id), Src: workload.HostRef{DC: 1, Host: 5},
		Dst: workload.HostRef{DC: 1, Host: 6}, Bytes: 50 * units.MB,
	})
	return flows
}

func TestAssignIncasts(t *testing.T) {
	o := New(1)
	o.Register(Proxy{Ref: workload.HostRef{DC: 0, Host: 63}, Capacity: 100 * units.Gbps})
	flows := assignFixture()
	out, assignments, err := o.AssignIncasts(flows, DefaultFabric(), workload.ProxyStreamlined)
	if err != nil {
		t.Fatal(err)
	}
	if len(assignments) != 2 {
		t.Fatalf("assignments = %d, want 2 incasts", len(assignments))
	}
	for _, a := range assignments {
		switch a.Dst {
		case workload.HostRef{DC: 1, Host: 0}:
			if !a.Decision.UseProxy || a.Degree != 4 || a.Bytes != 40*units.MB {
				t.Fatalf("big incast: %+v", a)
			}
		case workload.HostRef{DC: 1, Host: 1}:
			if a.Decision.UseProxy {
				t.Fatalf("small incast proxied: %+v", a)
			}
		default:
			t.Fatalf("unexpected incast %+v", a)
		}
	}
	for i, f := range out {
		crossBig := f.Src.DC == 0 && f.Dst == (workload.HostRef{DC: 1, Host: 0})
		if crossBig && (f.Via == nil || f.Via.At != (workload.HostRef{DC: 0, Host: 63})) {
			t.Fatalf("flow %d of big incast not proxied: %+v", i, f)
		}
		if !crossBig && f.Via != nil {
			t.Fatalf("flow %d wrongly proxied: %+v", i, f)
		}
	}
	// Input must not be mutated.
	for _, f := range flows {
		if f.Via != nil {
			t.Fatal("AssignIncasts mutated its input")
		}
	}
}

func TestAssignIncastsRespectsExistingVia(t *testing.T) {
	o := New(1)
	o.Register(Proxy{Ref: workload.HostRef{DC: 0, Host: 63}})
	pinned := &workload.ProxyRef{Scheme: workload.ProxyNaive, At: workload.HostRef{DC: 0, Host: 7}}
	flows := []workload.FlowSpec{{
		ID: 1, Src: workload.HostRef{DC: 0, Host: 0}, Dst: workload.HostRef{DC: 1, Host: 0},
		Bytes: 100 * units.MB, Via: pinned,
	}}
	out, assignments, err := o.AssignIncasts(flows, DefaultFabric(), workload.ProxyStreamlined)
	if err != nil {
		t.Fatal(err)
	}
	if len(assignments) != 0 {
		t.Fatal("pinned flow must not be re-decided")
	}
	if out[0].Via != pinned {
		t.Fatal("pinned Via replaced")
	}
}

func TestAssignIncastsNoProxyError(t *testing.T) {
	o := New(1) // nothing registered
	flows := assignFixture()
	if _, _, err := o.AssignIncasts(flows, DefaultFabric(), workload.ProxyStreamlined); err == nil {
		t.Fatal("expected error with no registered proxies")
	}
}

func TestAssignIncastsDeterministicOrder(t *testing.T) {
	run := func() []Assignment {
		o := New(1)
		o.Register(Proxy{Ref: workload.HostRef{DC: 0, Host: 62}})
		o.Register(Proxy{Ref: workload.HostRef{DC: 0, Host: 63}})
		_, as, err := o.AssignIncasts(assignFixture(), DefaultFabric(), workload.ProxyStreamlined)
		if err != nil {
			t.Fatal(err)
		}
		return as
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic assignment count")
	}
	for i := range a {
		if a[i].Decision.Proxy != b[i].Decision.Proxy || a[i].Dst != b[i].Dst {
			t.Fatalf("nondeterministic assignment %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
