package orchestrator

import (
	"testing"

	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

func threeProxies(t *testing.T) (*Orchestrator, [3]workload.HostRef) {
	t.Helper()
	o := New(1)
	refs := [3]workload.HostRef{
		{DC: 0, Host: 60}, {DC: 0, Host: 61}, {DC: 0, Host: 62},
	}
	for _, r := range refs {
		o.Register(Proxy{Ref: r, Capacity: 100 * units.Gbps})
	}
	return o, refs
}

func TestDecideSkipsDownProxy(t *testing.T) {
	o, refs := threeProxies(t)
	if !o.MarkDown(refs[0]) {
		t.Fatal("MarkDown on a registered proxy returned false")
	}
	for i := 0; i < 6; i++ {
		d, err := o.Decide(bigReq())
		if err != nil {
			t.Fatal(err)
		}
		if d.Proxy == refs[0] {
			t.Fatalf("decision %d placed an incast on the downed proxy", i)
		}
	}
	dd, err := o.DecideDecentralized(bigReq(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if dd.Proxy == refs[0] {
		t.Fatal("decentralized decision used the downed proxy")
	}
	if o.Healthy(refs[0]) || !o.Healthy(refs[1]) {
		t.Fatal("Healthy disagrees with MarkDown")
	}
	o.MarkUp(refs[0])
	if !o.Healthy(refs[0]) {
		t.Fatal("MarkUp did not restore health")
	}
}

func TestAllProxiesDownIsNoProxies(t *testing.T) {
	o, refs := threeProxies(t)
	for _, r := range refs {
		o.MarkDown(r)
	}
	if _, err := o.Decide(bigReq()); err != ErrNoProxies {
		t.Fatalf("err = %v, want ErrNoProxies", err)
	}
	if _, err := o.DecideDecentralized(bigReq(), 2); err != ErrNoProxies {
		t.Fatalf("decentralized err = %v, want ErrNoProxies", err)
	}
}

func TestFailoverReassignsToStandby(t *testing.T) {
	o, _ := threeProxies(t)

	// Three incasts; least-loaded rotation places one on each proxy.
	var placed []Decision
	for i := 0; i < 3; i++ {
		d, err := o.Decide(bigReq())
		if err != nil {
			t.Fatal(err)
		}
		placed = append(placed, d)
	}
	victim := placed[0].Proxy
	if got := o.Assignments(victim); len(got) != 1 {
		t.Fatalf("assignments on victim = %d, want 1", len(got))
	}

	res := o.Failover(victim)
	if len(res) != 1 {
		t.Fatalf("replacements = %d, want 1", len(res))
	}
	re := res[0]
	if re.From != victim || !re.To.UseProxy || re.To.Proxy == victim {
		t.Fatalf("bad replacement: %+v", re)
	}
	if re.To.Assignment == 0 || re.To.Assignment == re.ID {
		t.Fatalf("replacement must carry a fresh placement id, got %v (old %v)",
			re.To.Assignment, re.ID)
	}
	// Books rebalanced: victim drained, survivor carries the extra load.
	if act, com, _ := o.Load(victim); act != 0 || com != 0 {
		t.Fatalf("victim load after failover: active=%d committed=%v", act, com)
	}
	act, _, _ := o.Load(re.To.Proxy)
	if act != 2 {
		t.Fatalf("standby active = %d, want 2 (own incast + failed-over)", act)
	}
	// The downed proxy stays out of future decisions.
	if d, err := o.Decide(bigReq()); err != nil || d.Proxy == victim {
		t.Fatalf("post-failover decision: %+v, %v", d, err)
	}
}

func TestFailoverFallsBackDirectWhenNoStandby(t *testing.T) {
	o := New(1)
	only := workload.HostRef{DC: 0, Host: 60}
	o.Register(Proxy{Ref: only, Capacity: 100 * units.Gbps})
	d, err := o.Decide(bigReq())
	if err != nil || !d.UseProxy {
		t.Fatalf("%+v, %v", d, err)
	}

	res := o.Failover(only)
	if len(res) != 1 {
		t.Fatalf("replacements = %d", len(res))
	}
	if res[0].To.UseProxy {
		t.Fatalf("no standby exists, yet failover proxied: %+v", res[0].To)
	}
	if len(o.Assignments(only)) != 0 {
		t.Fatal("direct-fallback placement still tracked on the dead proxy")
	}
}

func TestReleaseFreesPlacement(t *testing.T) {
	o, _ := threeProxies(t)
	d, err := o.Decide(bigReq())
	if err != nil {
		t.Fatal(err)
	}
	act, com, _ := o.Load(d.Proxy)
	if act != 1 || com == 0 {
		t.Fatalf("load after decide: %d, %v", act, com)
	}
	o.Release(d.Assignment)
	if act, com, _ := o.Load(d.Proxy); act != 0 || com != 0 {
		t.Fatalf("load after release: %d, %v", act, com)
	}
	// Double release is harmless.
	o.Release(d.Assignment)
	if len(o.Assignments(d.Proxy)) != 0 {
		t.Fatal("released placement still tracked")
	}
}

func TestFailoverDeterministicOrder(t *testing.T) {
	run := func() []Replacement {
		o, refs := threeProxies(t)
		// Force several incasts onto refs[0] by downing the others first.
		o.MarkDown(refs[1])
		o.MarkDown(refs[2])
		for i := 0; i < 4; i++ {
			if _, err := o.Decide(bigReq()); err != nil {
				t.Fatal(err)
			}
		}
		o.MarkUp(refs[1])
		o.MarkUp(refs[2])
		return o.Failover(refs[0])
	}
	a, b := run(), run()
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("replacements = %d, %d, want 4 each", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].To.Proxy != b[i].To.Proxy {
			t.Fatalf("run diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Rebalance, not pile-on: 4 stranded incasts over 2 survivors -> 2+2.
	seen := map[workload.HostRef]int{}
	for _, re := range a {
		seen[re.To.Proxy]++
	}
	for ref, n := range seen {
		if n != 2 {
			t.Fatalf("survivor %v got %d incasts, want 2", ref, n)
		}
	}
}
