package netsim

import (
	"fmt"

	"incastproxy/internal/obs"
	"incastproxy/internal/rng"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// Node is anything attached to the fabric that can receive packets.
type Node interface {
	ID() NodeID
	Name() string
	// Receive is called when a packet has fully arrived at this node.
	Receive(e *sim.Engine, p *Packet, from *Port)
}

// Port is one unidirectional egress attachment point of a node: an output
// queue in front of a serializing link. Two ports form a full-duplex link
// via Connect; each direction has its own queue and busy state.
type Port struct {
	owner   Node
	peer    *Port
	rate    units.BitRate
	delay   units.Duration
	q       *queue
	busy    bool
	down    bool
	corrupt func(*Packet) bool
	handoff func(at units.Time, pkt *Packet)
	label   string
}

// Connect joins a and b with a full-duplex link of the given rate and
// one-way propagation delay. qa configures a's egress queue (toward b) and
// qb configures b's egress queue (toward a). It returns the two ports
// (a-side first).
func Connect(a, b Node, rate units.BitRate, delay units.Duration, qa, qb QueueConfig, src *rng.Source) (*Port, *Port) {
	var sa, sb *rng.Source
	if src != nil {
		sa, sb = src.Split(int64(a.ID())<<16|int64(b.ID())), src.Split(int64(b.ID())<<16|int64(a.ID()))
	}
	pa := &Port{owner: a, rate: rate, delay: delay, q: newQueue(qa, sa),
		label: fmt.Sprintf("%s->%s", a.Name(), b.Name())}
	pb := &Port{owner: b, rate: rate, delay: delay, q: newQueue(qb, sb),
		label: fmt.Sprintf("%s->%s", b.Name(), a.Name())}
	pa.peer, pb.peer = pb, pa
	if attacher, ok := a.(portAttacher); ok {
		attacher.attachPort(pa)
	}
	if attacher, ok := b.(portAttacher); ok {
		attacher.attachPort(pb)
	}
	return pa, pb
}

type portAttacher interface{ attachPort(*Port) }

// Owner returns the node this port belongs to.
func (p *Port) Owner() Node { return p.owner }

// Peer returns the port at the far end of the link.
func (p *Port) Peer() *Port { return p.peer }

// Rate returns the link bandwidth.
func (p *Port) Rate() units.BitRate { return p.rate }

// Delay returns the one-way propagation delay.
func (p *Port) Delay() units.Duration { return p.delay }

// Label returns a human-readable "src->dst" name for telemetry.
func (p *Port) Label() string { return p.label }

// Stats returns a snapshot of the egress queue's counters.
func (p *Port) Stats() QueueStats { return p.q.Stats }

// QueuedBytes returns the current data-band occupancy of the egress queue.
func (p *Port) QueuedBytes() units.ByteSize { return p.q.bytesQueued() }

// SetDown takes this egress direction of the link down (true) or restores
// it. While down, every packet offered to the port is dropped — failure
// injection for robustness tests. Packets already serialized keep
// propagating (a cut does not recall photons in flight).
func (p *Port) SetDown(down bool) { p.down = down }

// Down reports whether the egress direction is failed.
func (p *Port) Down() bool { return p.down }

// SetCorrupt installs a per-packet corruption predicate: every packet
// offered to the port for which fn returns true is destroyed (a corrupted
// frame fails its FCS at the far end and is never delivered). fn is invoked
// once per offered packet, so a seeded random predicate stays deterministic.
// Pass nil to clear.
func (p *Port) SetCorrupt(fn func(*Packet) bool) { p.corrupt = fn }

// SetHandoff diverts this port's deliveries to fn instead of scheduling
// them on the local engine: fn receives the arrival time (serialization end
// plus the link's propagation delay) and the packet, and is responsible for
// invoking Receive on the peer's owner at that time. The sharded runtime
// installs handoffs on every boundary link so that cross-shard packets
// travel through the shard group's deterministic inter-shard queues. Pass
// nil to restore local delivery.
func (p *Port) SetHandoff(fn func(at units.Time, pkt *Packet)) { p.handoff = fn }

// SetTracer attaches (or, with nil, detaches) an event tracer to this
// port's egress queue: every trim, drop, ECN mark, down-drop, and
// corruption event is recorded as an instant on the packet's flow track.
func (p *Port) SetTracer(t *obs.Tracer) {
	p.q.trace = t
	p.q.label = p.label
}

// Instrument exports this port's queue counters to the registry as lazy
// collectors under netsim_queue_* names labelled with the port, plus its
// occupancy high-water mark. Zero hot-path cost: values are read from
// QueueStats only at snapshot time.
func (p *Port) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	label := fmt.Sprintf("{port=%q}", p.label)
	reg.CounterFunc("netsim_queue_enqueued_total"+label, func() uint64 { return p.q.Stats.Enqueued })
	reg.CounterFunc("netsim_queue_dropped_total"+label, func() uint64 { return p.q.Stats.Dropped })
	reg.CounterFunc("netsim_queue_trimmed_total"+label, func() uint64 { return p.q.Stats.Trimmed })
	reg.CounterFunc("netsim_queue_marked_total"+label, func() uint64 { return p.q.Stats.Marked })
	reg.CounterFunc("netsim_queue_corrupted_total"+label, func() uint64 { return p.q.Stats.Corrupted })
	reg.GaugeFunc("netsim_queue_max_bytes"+label, func() int64 { return int64(p.q.Stats.MaxBytes) })
	reg.GaugeFunc("netsim_queue_bytes"+label, func() int64 { return int64(p.q.bytesQueued()) })
}

// Send enqueues pkt for transmission out of this port. Drops and trims are
// applied by the queue according to its configuration.
func (p *Port) Send(e *sim.Engine, pkt *Packet) {
	if p.down {
		p.q.Stats.Dropped++
		p.q.traceEvent(e.Now(), "down-drop", pkt)
		return
	}
	if p.corrupt != nil && p.corrupt(pkt) {
		p.q.Stats.Corrupted++
		p.q.traceEvent(e.Now(), "corrupt", pkt)
		return
	}
	if !p.q.enqueue(e.Now(), pkt) {
		return // dropped; counted in queue stats
	}
	p.tryTransmit(e)
}

// tryTransmit starts serializing the next queued packet if the link is idle.
func (p *Port) tryTransmit(e *sim.Engine) {
	if p.busy || p.q.empty() {
		return
	}
	pkt := p.q.pop()
	p.busy = true
	txTime := p.rate.TransmitTime(pkt.Size)
	e.After(txTime, func(e *sim.Engine) {
		p.busy = false
		// Propagation: the packet arrives at the peer after the
		// one-way delay; the link is pipelined, so the next packet
		// can start serializing immediately. Deliveries are keyed by
		// DeliveryKey so same-instant arrivals at a node execute in an
		// order intrinsic to the packets — independent of how the
		// fabric is sharded.
		arrive := e.Now().Add(p.delay)
		if p.handoff != nil {
			p.handoff(arrive, pkt)
		} else {
			e.ScheduleKeyed(arrive, DeliveryKey(pkt), func(e *sim.Engine) {
				p.peer.owner.Receive(e, pkt, p.peer)
			})
		}
		p.tryTransmit(e)
	})
}
