package netsim

import (
	"testing"

	"incastproxy/internal/rng"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// sinkNode records arrivals with timestamps.
type sinkNode struct {
	id      NodeID
	arrived []*Packet
	times   []units.Time
}

func (s *sinkNode) ID() NodeID   { return s.id }
func (s *sinkNode) Name() string { return "sink" }
func (s *sinkNode) Receive(e *sim.Engine, p *Packet, _ *Port) {
	s.arrived = append(s.arrived, p)
	s.times = append(s.times, e.Now())
}

func TestLinkSerializationPlusPropagation(t *testing.T) {
	e := sim.New()
	a := &sinkNode{id: 1}
	b := &sinkNode{id: 2}
	pa, _ := Connect(a, b, 100*units.Gbps, units.Microsecond, QueueConfig{}, QueueConfig{}, nil)

	p := dataPkt(1, 1500)
	pa.Send(e, p)
	e.Run()

	if len(b.arrived) != 1 {
		t.Fatalf("arrived = %d packets", len(b.arrived))
	}
	// 1500B @ 100Gbps = 120ns serialization + 1us propagation.
	want := units.Time(0).Add(120*units.Nanosecond + units.Microsecond)
	if b.times[0] != want {
		t.Fatalf("arrival at %v, want %v", b.times[0], want)
	}
}

func TestLinkBackToBackPacketsPipelined(t *testing.T) {
	e := sim.New()
	a := &sinkNode{id: 1}
	b := &sinkNode{id: 2}
	pa, _ := Connect(a, b, 100*units.Gbps, units.Microsecond, QueueConfig{}, QueueConfig{}, nil)

	// Two packets sent at t=0: second finishes serializing at 240ns,
	// arrives at 240ns+1us. Propagation pipelines with serialization.
	pa.Send(e, dataPkt(1, 1500))
	pa.Send(e, dataPkt(2, 1500))
	e.Run()

	if len(b.arrived) != 2 {
		t.Fatalf("arrived = %d", len(b.arrived))
	}
	want0 := units.Time(0).Add(120*units.Nanosecond + units.Microsecond)
	want1 := units.Time(0).Add(240*units.Nanosecond + units.Microsecond)
	if b.times[0] != want0 || b.times[1] != want1 {
		t.Fatalf("arrivals at %v/%v, want %v/%v", b.times[0], b.times[1], want0, want1)
	}
}

func TestLinkThroughputAtLineRate(t *testing.T) {
	e := sim.New()
	a := &sinkNode{id: 1}
	b := &sinkNode{id: 2}
	pa, _ := Connect(a, b, 10*units.Gbps, 0, QueueConfig{}, QueueConfig{}, nil)

	const n = 1000
	for i := 0; i < n; i++ {
		pa.Send(e, dataPkt(uint64(i), 1500))
	}
	end := e.Run()
	// n*1500B @ 10Gbps = 1.2ms.
	want := units.Time(0).Add(units.Duration(n) * 1200 * units.Nanosecond)
	if end != want {
		t.Fatalf("drain time %v, want %v", end, want)
	}
	if len(b.arrived) != n {
		t.Fatalf("arrived %d, want %d", len(b.arrived), n)
	}
}

func TestFullDuplexIndependentDirections(t *testing.T) {
	e := sim.New()
	a := &sinkNode{id: 1}
	b := &sinkNode{id: 2}
	pa, pb := Connect(a, b, 100*units.Gbps, units.Microsecond, QueueConfig{}, QueueConfig{}, nil)

	pa.Send(e, dataPkt(1, 1500))
	pb.Send(e, dataPkt(2, 1500))
	e.Run()
	if len(a.arrived) != 1 || len(b.arrived) != 1 {
		t.Fatal("both directions should deliver independently")
	}
	if a.times[0] != b.times[0] {
		t.Fatal("full duplex directions should not serialize against each other")
	}
}

func TestPortAccessors(t *testing.T) {
	a := &sinkNode{id: 1}
	b := &sinkNode{id: 2}
	pa, pb := Connect(a, b, 100*units.Gbps, 3*units.Microsecond, QueueConfig{Capacity: 100}, QueueConfig{}, rng.New(1))
	if pa.Peer() != pb || pb.Peer() != pa {
		t.Fatal("peer wiring wrong")
	}
	if pa.Owner() != Node(a) || pa.Rate() != 100*units.Gbps || pa.Delay() != 3*units.Microsecond {
		t.Fatal("accessors wrong")
	}
	if pa.Label() == "" {
		t.Fatal("label empty")
	}
	if pa.QueuedBytes() != 0 {
		t.Fatal("fresh port should have empty queue")
	}
}

func TestSwitchForwardsViaFIB(t *testing.T) {
	e := sim.New()
	sw := NewSwitch(10, "sw", rng.New(1), false)
	h1 := &sinkNode{id: 1}
	h2 := &sinkNode{id: 2}
	_, p1up := Connect(h1, sw, 100*units.Gbps, 0, QueueConfig{}, QueueConfig{}, nil)
	_ = p1up
	swToH2, _ := func() (*Port, *Port) {
		return Connect(sw, h2, 100*units.Gbps, 0, QueueConfig{}, QueueConfig{}, nil)
	}()
	sw.AddRoute(2, swToH2)

	pkt := dataPkt(1, 1500)
	pkt.Dst = 2
	sw.Receive(e, pkt, nil)
	e.Run()
	if len(h2.arrived) != 1 {
		t.Fatal("switch did not forward to h2")
	}
	if pkt.Hops != 1 {
		t.Fatalf("hops = %d", pkt.Hops)
	}
}

func TestSwitchFIBMissCounted(t *testing.T) {
	e := sim.New()
	sw := NewSwitch(10, "sw", rng.New(1), false)
	pkt := dataPkt(1, 1500)
	pkt.Dst = 99
	sw.Receive(e, pkt, nil)
	if sw.Misses != 1 {
		t.Fatalf("Misses = %d", sw.Misses)
	}
}

func TestSwitchSprayingUsesAllPaths(t *testing.T) {
	e := sim.New()
	sw := NewSwitch(10, "sw", rng.New(42), true)
	dst := &sinkNode{id: 2}
	mids := make([]*sinkNode, 4)
	counts := make([]int, 4)
	for i := range mids {
		mids[i] = &sinkNode{id: NodeID(100 + i)}
		out, _ := Connect(sw, mids[i], 100*units.Gbps, 0, QueueConfig{}, QueueConfig{}, nil)
		sw.AddRoute(dst.id, out)
	}
	for i := 0; i < 400; i++ {
		pkt := dataPkt(uint64(i), 1500)
		pkt.Dst = dst.id
		pkt.Flow = 1 // same flow: spraying must still spread
		sw.Receive(e, pkt, nil)
	}
	e.Run()
	for i, m := range mids {
		counts[i] = len(m.arrived)
		if counts[i] < 50 {
			t.Fatalf("path %d got %d/400 packets; spraying not uniform: %v", i, counts[i], counts)
		}
	}
}

func TestSwitchPerFlowECMPIsSticky(t *testing.T) {
	e := sim.New()
	sw := NewSwitch(10, "sw", rng.New(42), false)
	dst := &sinkNode{id: 2}
	mids := make([]*sinkNode, 4)
	for i := range mids {
		mids[i] = &sinkNode{id: NodeID(100 + i)}
		out, _ := Connect(sw, mids[i], 100*units.Gbps, 0, QueueConfig{}, QueueConfig{}, nil)
		sw.AddRoute(dst.id, out)
	}
	for i := 0; i < 100; i++ {
		pkt := dataPkt(uint64(i), 1500)
		pkt.Dst = dst.id
		pkt.Flow = 7
		sw.Receive(e, pkt, nil)
	}
	e.Run()
	nonEmpty := 0
	for _, m := range mids {
		if len(m.arrived) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("per-flow ECMP spread one flow over %d paths", nonEmpty)
	}
}

func TestRoutingLoopPanics(t *testing.T) {
	e := sim.New()
	s1 := NewSwitch(1, "s1", rng.New(1), false)
	s2 := NewSwitch(2, "s2", rng.New(2), false)
	p12, p21 := Connect(s1, s2, 100*units.Gbps, 0, QueueConfig{}, QueueConfig{}, nil)
	s1.AddRoute(99, p12)
	s2.AddRoute(99, p21)
	pkt := dataPkt(1, 100)
	pkt.Dst = 99
	defer func() {
		if recover() == nil {
			t.Fatal("routing loop should panic")
		}
	}()
	s1.Receive(e, pkt, nil)
	e.Run()
}

func TestHostDemuxAndCatchAll(t *testing.T) {
	e := sim.New()
	h := NewHost(1, "h1")
	src := &sinkNode{id: 2}
	_, toHost := Connect(src, h, 100*units.Gbps, 0, QueueConfig{}, QueueConfig{}, nil)
	_ = toHost

	var flowGot, catchGot int
	h.Bind(5, EndpointFunc(func(*sim.Engine, *Packet) { flowGot++ }))
	h.SetCatchAll(EndpointFunc(func(*sim.Engine, *Packet) { catchGot++ }))

	p1 := dataPkt(1, 100)
	p1.Flow = 5
	h.Receive(e, p1, nil)
	p2 := dataPkt(2, 100)
	p2.Flow = 6
	h.Receive(e, p2, nil)
	if flowGot != 1 || catchGot != 1 {
		t.Fatalf("flowGot=%d catchGot=%d", flowGot, catchGot)
	}

	h.Unbind(5)
	h.Receive(e, p1, nil)
	if catchGot != 2 {
		t.Fatal("unbound flow should hit catch-all")
	}
}

func TestHostUnclaimedCounter(t *testing.T) {
	h := NewHost(1, "h1")
	p := dataPkt(1, 100)
	h.Receive(sim.New(), p, nil)
	if h.Unclaimed != 1 {
		t.Fatalf("Unclaimed = %d", h.Unclaimed)
	}
}

func TestHostPacketIDsUnique(t *testing.T) {
	h1 := NewHost(1, "h1")
	h2 := NewHost(2, "h2")
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		a, b := h1.NewPacket(), h2.NewPacket()
		if seen[a.ID] || seen[b.ID] || a.ID == b.ID {
			t.Fatal("packet IDs must be unique across hosts")
		}
		seen[a.ID], seen[b.ID] = true, true
	}
}

func TestHostSingleNIC(t *testing.T) {
	h := NewHost(1, "h1")
	other := &sinkNode{id: 2}
	Connect(h, other, units.Gbps, 0, QueueConfig{}, QueueConfig{}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("second NIC attachment should panic")
		}
	}()
	Connect(h, other, units.Gbps, 0, QueueConfig{}, QueueConfig{}, nil)
}

func TestHostSendReachesPeer(t *testing.T) {
	e := sim.New()
	h := NewHost(1, "h1")
	dst := &sinkNode{id: 2}
	Connect(h, dst, 100*units.Gbps, units.Microsecond, QueueConfig{}, QueueConfig{}, nil)
	pkt := h.NewPacket()
	pkt.Kind = Data
	pkt.Size = 1500
	pkt.Dst = 2
	h.Send(e, pkt)
	e.Run()
	if len(dst.arrived) != 1 {
		t.Fatal("host send did not deliver")
	}
}
