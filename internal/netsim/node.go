package netsim

import (
	"fmt"

	"incastproxy/internal/rng"
	"incastproxy/internal/sim"
)

// maxHops guards against routing loops; no sane path in the two-DC fabric
// exceeds it.
const maxHops = 64

// Switch forwards packets by destination host using a FIB with ECMP
// next-hop sets. With spraying enabled (the §4.1 configuration) it picks a
// uniformly random next-hop per packet; otherwise it hashes the flow ID so
// a flow sticks to one path.
type Switch struct {
	id     NodeID
	name   string
	ports  []*Port
	fib    map[NodeID][]*Port
	src    *rng.Source
	spray  bool
	Misses uint64 // packets with no FIB entry (dropped)
}

// NewSwitch returns a switch with the given identity. src drives spraying
// decisions; spray selects per-packet (true) or per-flow (false) ECMP.
func NewSwitch(id NodeID, name string, src *rng.Source, spray bool) *Switch {
	return &Switch{id: id, name: name, fib: make(map[NodeID][]*Port), src: src, spray: spray}
}

// ID implements Node.
func (s *Switch) ID() NodeID { return s.id }

// Name implements Node.
func (s *Switch) Name() string { return s.name }

func (s *Switch) attachPort(p *Port) { s.ports = append(s.ports, p) }

// Ports returns the switch's attached ports in attachment order.
func (s *Switch) Ports() []*Port { return s.ports }

// AddRoute appends ports to the ECMP next-hop set for destination host dst.
func (s *Switch) AddRoute(dst NodeID, ports ...*Port) {
	s.fib[dst] = append(s.fib[dst], ports...)
}

// Routes returns the ECMP set for dst (nil if none).
func (s *Switch) Routes(dst NodeID) []*Port { return s.fib[dst] }

// Receive implements Node: look up the FIB and forward.
func (s *Switch) Receive(e *sim.Engine, p *Packet, _ *Port) {
	p.Hops++
	if p.Hops > maxHops {
		panic(fmt.Sprintf("netsim: routing loop: %v at %s", p, s.name))
	}
	next := s.fib[p.Dst]
	if len(next) == 0 {
		s.Misses++
		return
	}
	var out *Port
	switch {
	case len(next) == 1:
		out = next[0]
	case s.spray:
		out = next[s.src.Intn(len(next))]
	default:
		out = next[flowHash(p.Flow)%uint64(len(next))]
	}
	out.Send(e, p)
}

// flowHash is a fixed 64-bit mix (splitmix64 finalizer) for per-flow ECMP.
func flowHash(f FlowID) uint64 {
	x := uint64(f) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Endpoint consumes packets delivered to a host for one flow. Transport
// senders/receivers and proxy relays all implement Endpoint.
type Endpoint interface {
	Handle(e *sim.Engine, p *Packet)
}

// EndpointFunc adapts a function to the Endpoint interface.
type EndpointFunc func(e *sim.Engine, p *Packet)

// Handle implements Endpoint.
func (f EndpointFunc) Handle(e *sim.Engine, p *Packet) { f(e, p) }

// Host is a server with a single NIC. Arriving packets are demultiplexed to
// per-flow endpoints; a default endpoint receives unclaimed packets.
type Host struct {
	id        NodeID
	name      string
	nic       *Port
	endpoints map[FlowID]Endpoint
	catchAll  Endpoint
	down      bool
	// Unclaimed counts packets that matched no endpoint.
	Unclaimed uint64
	// DroppedDown counts packets discarded (in either direction) while the
	// host was crashed.
	DroppedDown uint64
	nextPkt     *uint64
}

// NewHost returns a host. pktIDs is the shared packet-ID counter for the
// simulation (so IDs are unique fabric-wide); it may be nil for tests.
func NewHost(id NodeID, name string, pktIDs *uint64) *Host {
	if pktIDs == nil {
		pktIDs = new(uint64)
	}
	return &Host{id: id, name: name, endpoints: make(map[FlowID]Endpoint), nextPkt: pktIDs}
}

// ID implements Node.
func (h *Host) ID() NodeID { return h.id }

// Name implements Node.
func (h *Host) Name() string { return h.name }

func (h *Host) attachPort(p *Port) {
	if h.nic != nil {
		panic("netsim: host " + h.name + " already has a NIC")
	}
	h.nic = p
}

// NIC returns the host's single port.
func (h *Host) NIC() *Port { return h.nic }

// Bind registers the endpoint handling packets of flow f at this host.
func (h *Host) Bind(f FlowID, ep Endpoint) { h.endpoints[f] = ep }

// Unbind removes a flow binding.
func (h *Host) Unbind(f FlowID) { delete(h.endpoints, f) }

// SetCatchAll installs an endpoint for packets with no flow binding.
func (h *Host) SetCatchAll(ep Endpoint) { h.catchAll = ep }

// SetDown crashes (true) or restarts (false) the host. While down the host
// neither receives nor transmits: arriving packets vanish and Send becomes a
// no-op — the failure primitive behind proxy-crash injection. Flow bindings
// survive a restart (endpoint state is the caller's to reset if the modelled
// failure loses it).
func (h *Host) SetDown(down bool) { h.down = down }

// Down reports whether the host is crashed.
func (h *Host) Down() bool { return h.down }

// NewPacket allocates a packet originating at this host with a unique ID.
func (h *Host) NewPacket() *Packet {
	*h.nextPkt++
	return &Packet{ID: *h.nextPkt, Src: h.id}
}

// Send transmits pkt out of the host NIC.
func (h *Host) Send(e *sim.Engine, pkt *Packet) {
	if h.down {
		h.DroppedDown++
		return
	}
	h.nic.Send(e, pkt)
}

// Receive implements Node: demultiplex to the flow's endpoint.
func (h *Host) Receive(e *sim.Engine, p *Packet, _ *Port) {
	if h.down {
		h.DroppedDown++
		return
	}
	if ep, ok := h.endpoints[p.Flow]; ok {
		ep.Handle(e, p)
		return
	}
	if h.catchAll != nil {
		h.catchAll.Handle(e, p)
		return
	}
	h.Unclaimed++
}
