package netsim

import (
	"fmt"

	"incastproxy/internal/rng"
	"incastproxy/internal/sim"
)

// maxHops guards against routing loops; no sane path in the two-DC fabric
// exceeds it.
const maxHops = 64

// Switch forwards packets by destination host using a FIB with ECMP
// next-hop sets. With spraying enabled (the §4.1 configuration) it picks a
// uniformly random next-hop per packet; otherwise it hashes the flow ID so
// a flow sticks to one path.
type Switch struct {
	id       NodeID
	name     string
	ports    []*Port
	fib      map[NodeID][]*Port
	sprayKey uint64
	spray    bool
	Misses   uint64 // packets with no FIB entry (dropped)
}

// NewSwitch returns a switch with the given identity. src seeds the
// per-switch spraying key; spray selects per-packet (true) or per-flow
// (false) ECMP. Per-packet spray choices are a hash of (switch key, packet
// ID, hop count) rather than draws from a sequential stream, so a spray
// decision depends only on the packet — never on the order simultaneous
// packets happened to traverse the switch. That keeps sharded runs
// byte-identical at any shard count while staying uniform and seeded.
func NewSwitch(id NodeID, name string, src *rng.Source, spray bool) *Switch {
	var key uint64
	if src != nil {
		key = uint64(src.Int63())
	}
	return &Switch{id: id, name: name, fib: make(map[NodeID][]*Port), sprayKey: key, spray: spray}
}

// ID implements Node.
func (s *Switch) ID() NodeID { return s.id }

// Name implements Node.
func (s *Switch) Name() string { return s.name }

func (s *Switch) attachPort(p *Port) { s.ports = append(s.ports, p) }

// Ports returns the switch's attached ports in attachment order.
func (s *Switch) Ports() []*Port { return s.ports }

// AddRoute appends ports to the ECMP next-hop set for destination host dst.
func (s *Switch) AddRoute(dst NodeID, ports ...*Port) {
	s.fib[dst] = append(s.fib[dst], ports...)
}

// Routes returns the ECMP set for dst (nil if none).
func (s *Switch) Routes(dst NodeID) []*Port { return s.fib[dst] }

// Receive implements Node: look up the FIB and forward.
func (s *Switch) Receive(e *sim.Engine, p *Packet, _ *Port) {
	p.Hops++
	if p.Hops > maxHops {
		panic(fmt.Sprintf("netsim: routing loop: %v at %s", p, s.name))
	}
	next := s.fib[p.Dst]
	if len(next) == 0 {
		s.Misses++
		return
	}
	var out *Port
	switch {
	case len(next) == 1:
		out = next[0]
	case s.spray:
		out = next[mix64(s.sprayKey^uint64(p.ID)+uint64(p.Hops)*0x9e3779b97f4a7c15)%uint64(len(next))]
	default:
		out = next[flowHash(p.Flow)%uint64(len(next))]
	}
	out.Send(e, p)
}

// flowHash is a fixed 64-bit mix (splitmix64 finalizer) for per-flow ECMP.
func flowHash(f FlowID) uint64 {
	return mix64(uint64(f) + 0x9e3779b97f4a7c15)
}

// mix64 is the SplitMix64 avalanche finalizer.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeliveryKey is the same-instant tie-break rank a link delivery carries
// (sim.Engine.ScheduleKeyed): a mix of the packet ID. The mix matters
// twice: it is a bijection, so distinct packets never collide (a collision
// would fall back to scheduling order, which is partition-dependent), and
// it is never zero for real IDs, so deliveries always rank as keyed events
// — arriving before any same-instant plain event such as a retransmission
// timer. Raw IDs would also rank same-instant arrivals by (host, send
// order), a systematic bias the mix destroys. Used by ports for local
// deliveries and by the sharded runtime for cross-shard injections, so
// both paths rank ties identically.
func DeliveryKey(p *Packet) uint64 { return mix64(p.ID) }

// Endpoint consumes packets delivered to a host for one flow. Transport
// senders/receivers and proxy relays all implement Endpoint.
type Endpoint interface {
	Handle(e *sim.Engine, p *Packet)
}

// EndpointFunc adapts a function to the Endpoint interface.
type EndpointFunc func(e *sim.Engine, p *Packet)

// Handle implements Endpoint.
func (f EndpointFunc) Handle(e *sim.Engine, p *Packet) { f(e, p) }

// Host is a server with a single NIC. Arriving packets are demultiplexed to
// per-flow endpoints; a default endpoint receives unclaimed packets.
type Host struct {
	id        NodeID
	name      string
	nic       *Port
	endpoints map[FlowID]Endpoint
	catchAll  Endpoint
	down      bool
	// Unclaimed counts packets that matched no endpoint.
	Unclaimed uint64
	// DroppedDown counts packets discarded (in either direction) while the
	// host was crashed.
	DroppedDown uint64
	pktSeq      uint64
}

// NewHost returns a host. Packet IDs are allocated per host — the host ID
// in the top 32 bits, a local counter below — so IDs stay unique
// fabric-wide without any cross-host shared counter. (A shared counter
// would be both a data race and a determinism leak once hosts run on
// parallel shard engines: the interleaving would choose the IDs.)
func NewHost(id NodeID, name string) *Host {
	return &Host{id: id, name: name, endpoints: make(map[FlowID]Endpoint)}
}

// ID implements Node.
func (h *Host) ID() NodeID { return h.id }

// Name implements Node.
func (h *Host) Name() string { return h.name }

func (h *Host) attachPort(p *Port) {
	if h.nic != nil {
		panic("netsim: host " + h.name + " already has a NIC")
	}
	h.nic = p
}

// NIC returns the host's single port.
func (h *Host) NIC() *Port { return h.nic }

// Bind registers the endpoint handling packets of flow f at this host.
func (h *Host) Bind(f FlowID, ep Endpoint) { h.endpoints[f] = ep }

// Unbind removes a flow binding.
func (h *Host) Unbind(f FlowID) { delete(h.endpoints, f) }

// SetCatchAll installs an endpoint for packets with no flow binding.
func (h *Host) SetCatchAll(ep Endpoint) { h.catchAll = ep }

// SetDown crashes (true) or restarts (false) the host. While down the host
// neither receives nor transmits: arriving packets vanish and Send becomes a
// no-op — the failure primitive behind proxy-crash injection. Flow bindings
// survive a restart (endpoint state is the caller's to reset if the modelled
// failure loses it).
func (h *Host) SetDown(down bool) { h.down = down }

// Down reports whether the host is crashed.
func (h *Host) Down() bool { return h.down }

// NewPacket allocates a packet originating at this host with a unique ID
// (host ID in the top 32 bits, per-host counter below).
func (h *Host) NewPacket() *Packet {
	h.pktSeq++
	return &Packet{ID: uint64(uint32(h.id))<<32 | h.pktSeq&0xffffffff, Src: h.id}
}

// Send transmits pkt out of the host NIC.
func (h *Host) Send(e *sim.Engine, pkt *Packet) {
	if h.down {
		h.DroppedDown++
		return
	}
	h.nic.Send(e, pkt)
}

// Receive implements Node: demultiplex to the flow's endpoint.
func (h *Host) Receive(e *sim.Engine, p *Packet, _ *Port) {
	if h.down {
		h.DroppedDown++
		return
	}
	if ep, ok := h.endpoints[p.Flow]; ok {
		ep.Handle(e, p)
		return
	}
	if h.catchAll != nil {
		h.catchAll.Handle(e, p)
		return
	}
	h.Unclaimed++
}
