package netsim

import (
	"testing"
	"testing/quick"

	"incastproxy/internal/rng"
	"incastproxy/internal/units"
)

func dataPkt(id uint64, size units.ByteSize) *Packet {
	return &Packet{ID: id, Kind: Data, Size: size, FullSize: size}
}

func TestQueueFIFOOrder(t *testing.T) {
	q := newQueue(QueueConfig{Capacity: 10000}, nil)
	for i := uint64(1); i <= 5; i++ {
		if !q.enqueue(0, dataPkt(i, 100)) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	for i := uint64(1); i <= 5; i++ {
		p := q.pop()
		if p == nil || p.ID != i {
			t.Fatalf("pop = %v, want ID %d", p, i)
		}
	}
	if q.pop() != nil {
		t.Fatal("pop on empty queue should be nil")
	}
}

func TestQueueDropTail(t *testing.T) {
	q := newQueue(QueueConfig{Capacity: 250}, nil)
	if !q.enqueue(0, dataPkt(1, 100)) || !q.enqueue(0, dataPkt(2, 100)) {
		t.Fatal("first two packets should fit")
	}
	if q.enqueue(0, dataPkt(3, 100)) {
		t.Fatal("third packet should be dropped (250B capacity)")
	}
	if q.Stats.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", q.Stats.Dropped)
	}
}

func TestQueueUnboundedWhenCapacityZero(t *testing.T) {
	q := newQueue(QueueConfig{}, nil)
	for i := uint64(0); i < 1000; i++ {
		if !q.enqueue(0, dataPkt(i, 1500)) {
			t.Fatal("unbounded queue must never drop")
		}
	}
	if q.Stats.Dropped != 0 {
		t.Fatal("unbounded queue recorded drops")
	}
}

func TestQueueTrimOnOverflow(t *testing.T) {
	q := newQueue(QueueConfig{Capacity: 250, Trim: true}, nil)
	q.enqueue(0, dataPkt(1, 100))
	q.enqueue(0, dataPkt(2, 100))
	p3 := dataPkt(3, 1500)
	if !q.enqueue(0, p3) {
		t.Fatal("overflowing packet should be trimmed, not dropped")
	}
	if !p3.Trimmed || p3.Size != ControlSize || p3.FullSize != 1500 {
		t.Fatalf("trim result: %+v", p3)
	}
	if q.Stats.Trimmed != 1 {
		t.Fatalf("Trimmed = %d", q.Stats.Trimmed)
	}
	// Trimmed header must come out before untrimmed data (priority band).
	if got := q.pop(); got.ID != 3 {
		t.Fatalf("pop = %d, want trimmed header first", got.ID)
	}
}

func TestControlPacketsUsePriorityBand(t *testing.T) {
	q := newQueue(QueueConfig{Capacity: 1 << 20}, nil)
	q.enqueue(0, dataPkt(1, 1500))
	ackP := &Packet{ID: 2, Kind: Ack, Size: ControlSize}
	q.enqueue(0, ackP)
	if got := q.pop(); got.ID != 2 {
		t.Fatalf("ACK should dequeue first, got %d", got.ID)
	}
	if got := q.pop(); got.ID != 1 {
		t.Fatalf("data should follow, got %d", got.ID)
	}
}

func TestPriorityBandCapacity(t *testing.T) {
	q := newQueue(QueueConfig{PrioCapacity: 100}, nil)
	a := &Packet{ID: 1, Kind: Ack, Size: 64}
	b := &Packet{ID: 2, Kind: Ack, Size: 64}
	if !q.enqueue(0, a) {
		t.Fatal("first ack should fit")
	}
	if q.enqueue(0, b) {
		t.Fatal("second ack should be dropped")
	}
	if q.Stats.Dropped != 1 {
		t.Fatalf("Dropped = %d", q.Stats.Dropped)
	}
}

func TestECNMarkingThresholds(t *testing.T) {
	cfg := QueueConfig{Capacity: 1 << 30, MarkLow: 1000, MarkHigh: 2000}
	q := newQueue(cfg, rng.New(1))
	// Below MarkLow: never marked.
	p := dataPkt(1, 500)
	q.enqueue(0, p)
	if p.ECN {
		t.Fatal("packet below MarkLow must not be marked")
	}
	// Push occupancy above MarkHigh: always marked.
	q.enqueue(0, dataPkt(2, 1500))
	p3 := dataPkt(3, 500)
	q.enqueue(0, p3) // occupancy 2500 > 2000
	if !p3.ECN {
		t.Fatal("packet above MarkHigh must be marked")
	}
	if q.Stats.Marked == 0 {
		t.Fatal("marking not counted")
	}
}

func TestECNMarkingProbabilisticBetweenThresholds(t *testing.T) {
	marked, total := 0, 0
	src := rng.New(7)
	for i := 0; i < 2000; i++ {
		q := newQueue(QueueConfig{Capacity: 1 << 30, MarkLow: 1000, MarkHigh: 2000}, src)
		q.enqueue(0, dataPkt(1, 1000)) // occupancy 1000 = MarkLow, unmarked
		p := dataPkt(2, 500)           // occupancy 1500, mid-range: p(mark)=0.5
		q.enqueue(0, p)
		total++
		if p.ECN {
			marked++
		}
	}
	frac := float64(marked) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("mid-threshold mark fraction = %v, want ~0.5", frac)
	}
}

func TestMarkingDisabled(t *testing.T) {
	q := newQueue(QueueConfig{Capacity: 1 << 30}, nil)
	for i := uint64(0); i < 100; i++ {
		p := dataPkt(i, 1500)
		q.enqueue(0, p)
		if p.ECN {
			t.Fatal("marking disabled but packet marked")
		}
	}
}

func TestQueueHighWatermark(t *testing.T) {
	q := newQueue(QueueConfig{Capacity: 1 << 20}, nil)
	q.enqueue(0, dataPkt(1, 1000))
	q.enqueue(0, dataPkt(2, 1000))
	q.pop()
	q.enqueue(0, dataPkt(3, 100))
	if q.Stats.MaxBytes != 2000 {
		t.Fatalf("MaxBytes = %v, want 2000", q.Stats.MaxBytes)
	}
}

// Property: bytes are conserved — every enqueued packet is either popped,
// dropped, or still queued; occupancy never goes negative.
func TestPropertyQueueConservation(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		src := rng.New(seed)
		q := newQueue(QueueConfig{Capacity: 5000, Trim: seed%2 == 0}, src)
		var id uint64
		accepted, popped := 0, 0
		for _, op := range ops {
			if op%3 == 0 {
				if q.pop() != nil {
					popped++
				}
				continue
			}
			id++
			size := units.ByteSize(int(op)%1500 + 1)
			var p *Packet
			if op%5 == 0 {
				p = &Packet{ID: id, Kind: Ack, Size: ControlSize}
			} else {
				p = dataPkt(id, size)
			}
			if q.enqueue(0, p) {
				accepted++
			}
		}
		if q.data.bytes < 0 || q.prio.bytes < 0 {
			return false
		}
		remaining := 0
		for q.pop() != nil {
			remaining++
		}
		return accepted == popped+remaining && q.data.bytes == 0 && q.prio.bytes == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if Data.String() != "DATA" || Ack.String() != "ACK" || Nack.String() != "NACK" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}

func TestPacketString(t *testing.T) {
	p := dataPkt(1, 1500)
	if p.String() == "" {
		t.Fatal("empty packet string")
	}
}
