package netsim

import (
	"incastproxy/internal/obs"
	"incastproxy/internal/rng"
	"incastproxy/internal/units"
)

// QueueConfig parameterizes one egress queue. The §4.1 settings are exposed
// directly: byte capacity, RED-style ECN thresholds, and trimming support.
type QueueConfig struct {
	// Capacity bounds the data queue in bytes; <= 0 means unbounded
	// (used for host NICs, where the "queue" is host memory).
	Capacity units.ByteSize
	// PrioCapacity bounds the control/priority queue; <= 0 means
	// unbounded. Control packets are tiny, so this rarely binds.
	PrioCapacity units.ByteSize
	// MarkLow/MarkHigh are the ECN marking thresholds: below MarkLow no
	// packet is marked, above MarkHigh every packet is marked, and in
	// between the marking probability rises linearly (RED on the
	// instantaneous queue length, as DCTCP deployments configure).
	// MarkHigh == 0 disables marking.
	MarkLow, MarkHigh units.ByteSize
	// Trim enables NDP-style packet trimming: a data packet that would
	// overflow the data queue has its payload cut to ControlSize and is
	// enqueued in the priority queue instead of being dropped.
	Trim bool
}

// QueueStats counts what happened at one queue.
type QueueStats struct {
	Enqueued  uint64
	Dropped   uint64
	Trimmed   uint64
	Marked    uint64
	Corrupted uint64         // packets destroyed by an injected corruption fault
	MaxBytes  units.ByteSize // high-watermark of data-queue occupancy
	BytesSeen units.ByteSize // total bytes accepted
}

// queue is a two-band (control + data) egress queue with ECN and trimming.
type queue struct {
	cfg   QueueConfig
	src   *rng.Source
	data  fifo
	prio  fifo
	Stats QueueStats

	// trace, when set, receives per-packet instant events (trim, drop,
	// mark) on the flow's track; label names the owning port.
	trace *obs.Tracer
	label string
}

type fifo struct {
	pkts  []*Packet
	head  int
	bytes units.ByteSize
}

func (f *fifo) push(p *Packet) {
	f.pkts = append(f.pkts, p)
	f.bytes += p.Size
}

func (f *fifo) pop() *Packet {
	if f.head >= len(f.pkts) {
		return nil
	}
	p := f.pkts[f.head]
	f.pkts[f.head] = nil
	f.head++
	f.bytes -= p.Size
	if f.head == len(f.pkts) {
		f.pkts = f.pkts[:0]
		f.head = 0
	}
	return p
}

func (f *fifo) len() int { return len(f.pkts) - f.head }

func newQueue(cfg QueueConfig, src *rng.Source) *queue {
	return &queue{cfg: cfg, src: src}
}

// enqueue admits p at virtual time now, applying marking, trimming, or
// dropping. It reports whether the packet was accepted (possibly trimmed).
func (q *queue) enqueue(now units.Time, p *Packet) bool {
	if p.IsControl() {
		return q.enqueuePrio(p)
	}
	if q.cfg.Capacity > 0 && q.data.bytes+p.Size > q.cfg.Capacity {
		// Overflow: trim or drop.
		if q.cfg.Trim {
			p.Trim()
			q.Stats.Trimmed++
			q.traceEvent(now, "trim", p)
			return q.enqueuePrio(p)
		}
		q.Stats.Dropped++
		q.traceEvent(now, "drop", p)
		return false
	}
	q.maybeMark(now, p)
	q.data.push(p)
	q.Stats.Enqueued++
	q.Stats.BytesSeen += p.Size
	if q.data.bytes > q.Stats.MaxBytes {
		q.Stats.MaxBytes = q.data.bytes
	}
	return true
}

func (q *queue) enqueuePrio(p *Packet) bool {
	if q.cfg.PrioCapacity > 0 && q.prio.bytes+p.Size > q.cfg.PrioCapacity {
		q.Stats.Dropped++
		return false
	}
	q.prio.push(p)
	q.Stats.Enqueued++
	q.Stats.BytesSeen += p.Size
	return true
}

// traceEvent records one per-packet queue event on the flow's track.
func (q *queue) traceEvent(now units.Time, what string, p *Packet) {
	if q.trace != nil {
		q.trace.Instant(now, "queue", what, int64(p.Flow), obs.Arg{Key: "port", Val: q.label})
	}
}

// maybeMark applies RED-style ECN marking based on the instantaneous data
// queue occupancy the packet observes on arrival.
func (q *queue) maybeMark(now units.Time, p *Packet) {
	if q.cfg.MarkHigh <= 0 {
		return
	}
	occ := q.data.bytes + p.Size
	switch {
	case occ <= q.cfg.MarkLow:
		return
	case occ >= q.cfg.MarkHigh:
		p.ECN = true
	default:
		span := float64(q.cfg.MarkHigh - q.cfg.MarkLow)
		prob := float64(occ-q.cfg.MarkLow) / span
		if q.src != nil && q.src.Float64() < prob {
			p.ECN = true
		} else if q.src == nil && prob >= 0.5 {
			p.ECN = true
		}
	}
	if p.ECN {
		q.Stats.Marked++
		q.traceEvent(now, "mark", p)
	}
}

// pop dequeues the next packet, strictly preferring the control band
// (trimmed headers and ACK/NACKs must not wait behind data).
func (q *queue) pop() *Packet {
	if p := q.prio.pop(); p != nil {
		return p
	}
	return q.data.pop()
}

// bytesQueued returns the current data-band occupancy.
func (q *queue) bytesQueued() units.ByteSize { return q.data.bytes }

// empty reports whether both bands are empty.
func (q *queue) empty() bool { return q.data.len() == 0 && q.prio.len() == 0 }
