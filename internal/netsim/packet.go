// lint:virtual-time
// (pragma: opts this package into the wallclock analyzer — no wall-clock
// reads in non-test sources; see internal/lint and DESIGN.md §12)

// Package netsim implements the packet-level network simulator: packets,
// byte-accurate output queues with RED-style ECN marking and NDP-style
// packet trimming, store-and-forward ports joined by propagation-delay
// links, switches with ECMP packet spraying, and hosts that demultiplex
// packets to transport endpoints.
//
// The design mirrors htsim, the simulator the paper's §4 evaluation uses:
// every link is modelled as an egress queue plus a (serialization +
// propagation) delay, and every forwarding decision is an event on the
// shared discrete-event engine.
package netsim

import (
	"fmt"

	"incastproxy/internal/units"
)

// Kind discriminates simulated packet types.
type Kind uint8

// Packet kinds.
const (
	// Data carries flow payload.
	Data Kind = iota
	// Ack acknowledges a single data packet (per-packet ACK protocol,
	// reorder-tolerant under packet spraying).
	Ack
	// Nack signals that a specific data packet was trimmed/lost and
	// should be retransmitted immediately. Nacks are what the
	// streamlined proxy emits on behalf of the remote receiver.
	Nack
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case Nack:
		return "NACK"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// FlowID identifies one transport flow end to end (including through a
// proxy, which preserves the flow ID when relaying).
type FlowID uint64

// NodeID identifies a node (host, switch, or router) in the fabric.
type NodeID int32

// ControlSize is the on-wire size of ACK/NACK packets and of trimmed data
// headers (NDP uses 64 B headers).
const ControlSize units.ByteSize = 64

// Packet is a simulated packet. Packets are passed by pointer and owned by
// exactly one queue or in-flight event at a time.
type Packet struct {
	ID   uint64 // unique per simulation run
	Flow FlowID
	Kind Kind

	// Seq is the data packet index within the flow; for Ack/Nack it is
	// the sequence being acknowledged or nacked.
	Seq int64

	// Size is the current wire size, reduced to ControlSize if trimmed.
	Size units.ByteSize
	// FullSize is the original wire size before any trimming.
	FullSize units.ByteSize

	// Trimmed marks a data packet whose payload was cut by a switch.
	Trimmed bool
	// ECN is the congestion-experienced codepoint, set by marking queues.
	ECN bool
	// EchoECN, on an Ack, echoes the acknowledged data packet's ECN bit.
	EchoECN bool
	// Retx marks retransmissions (RTT samples from them are discarded).
	Retx bool

	Src NodeID // originating host
	Dst NodeID // host this packet is currently routed to
	// FinalDst is the eventual receiver for packets routed via a
	// streamlined proxy (Dst is then the proxy). Zero when direct.
	FinalDst NodeID

	// SentAt is the transport-layer send timestamp, for RTT estimation.
	SentAt units.Time

	// Hops counts switch traversals as a routing-loop guard.
	Hops int
}

func (p *Packet) String() string {
	return fmt.Sprintf("%v flow=%d seq=%d size=%v src=%d dst=%d ecn=%v trim=%v",
		p.Kind, p.Flow, p.Seq, p.Size, p.Src, p.Dst, p.ECN, p.Trimmed)
}

// Trim cuts the payload, leaving only the header.
func (p *Packet) Trim() {
	p.Trimmed = true
	p.Size = ControlSize
}

// IsControl reports whether the packet must use the priority (control)
// queue: ACKs, NACKs, and trimmed headers.
func (p *Packet) IsControl() bool {
	return p.Kind != Data || p.Trimmed
}
