package netsim

import (
	"testing"

	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

func TestPortSetDownDropsPackets(t *testing.T) {
	e := sim.New()
	a := &sinkNode{id: 1}
	b := &sinkNode{id: 2}
	pa, _ := Connect(a, b, 100*units.Gbps, units.Microsecond, QueueConfig{}, QueueConfig{}, nil)

	pa.SetDown(true)
	if !pa.Down() {
		t.Fatal("Down() should report failure")
	}
	for i := 0; i < 5; i++ {
		pa.Send(e, dataPkt(uint64(i), 1500))
	}
	e.Run()
	if len(b.arrived) != 0 {
		t.Fatalf("failed link delivered %d packets", len(b.arrived))
	}
	if pa.Stats().Dropped != 5 {
		t.Fatalf("drops = %d", pa.Stats().Dropped)
	}

	// Restore: traffic flows again.
	pa.SetDown(false)
	pa.Send(e, dataPkt(9, 1500))
	e.Run()
	if len(b.arrived) != 1 {
		t.Fatal("restored link did not deliver")
	}
}

func TestPortDownIsPerDirection(t *testing.T) {
	e := sim.New()
	a := &sinkNode{id: 1}
	b := &sinkNode{id: 2}
	pa, pb := Connect(a, b, 100*units.Gbps, 0, QueueConfig{}, QueueConfig{}, nil)
	pa.SetDown(true)
	pb.Send(e, dataPkt(1, 1500)) // reverse direction unaffected
	e.Run()
	if len(a.arrived) != 1 {
		t.Fatal("reverse direction should stay up")
	}
}

func TestPacketsInFlightSurviveCut(t *testing.T) {
	e := sim.New()
	a := &sinkNode{id: 1}
	b := &sinkNode{id: 2}
	pa, _ := Connect(a, b, 100*units.Gbps, units.Millisecond, QueueConfig{}, QueueConfig{}, nil)
	pa.Send(e, dataPkt(1, 1500))
	// Cut the link while the packet is propagating.
	e.Schedule(units.Time(500*units.Microsecond), func(*sim.Engine) { pa.SetDown(true) })
	e.Run()
	if len(b.arrived) != 1 {
		t.Fatal("in-flight packet should still arrive after a cut")
	}
}
