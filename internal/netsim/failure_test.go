package netsim

import (
	"testing"

	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

func TestPortSetDownDropsPackets(t *testing.T) {
	e := sim.New()
	a := &sinkNode{id: 1}
	b := &sinkNode{id: 2}
	pa, _ := Connect(a, b, 100*units.Gbps, units.Microsecond, QueueConfig{}, QueueConfig{}, nil)

	pa.SetDown(true)
	if !pa.Down() {
		t.Fatal("Down() should report failure")
	}
	for i := 0; i < 5; i++ {
		pa.Send(e, dataPkt(uint64(i), 1500))
	}
	e.Run()
	if len(b.arrived) != 0 {
		t.Fatalf("failed link delivered %d packets", len(b.arrived))
	}
	if pa.Stats().Dropped != 5 {
		t.Fatalf("drops = %d", pa.Stats().Dropped)
	}

	// Restore: traffic flows again.
	pa.SetDown(false)
	pa.Send(e, dataPkt(9, 1500))
	e.Run()
	if len(b.arrived) != 1 {
		t.Fatal("restored link did not deliver")
	}
}

func TestPortDownIsPerDirection(t *testing.T) {
	e := sim.New()
	a := &sinkNode{id: 1}
	b := &sinkNode{id: 2}
	pa, pb := Connect(a, b, 100*units.Gbps, 0, QueueConfig{}, QueueConfig{}, nil)
	pa.SetDown(true)
	pb.Send(e, dataPkt(1, 1500)) // reverse direction unaffected
	e.Run()
	if len(a.arrived) != 1 {
		t.Fatal("reverse direction should stay up")
	}
}

func TestHostSetDownDropsBothDirections(t *testing.T) {
	e := sim.New()
	h := NewHost(1, "h")
	peer := &sinkNode{id: 2}
	_, pb := Connect(h, peer, 100*units.Gbps, units.Microsecond, QueueConfig{}, QueueConfig{}, nil)

	got := 0
	h.SetCatchAll(EndpointFunc(func(*sim.Engine, *Packet) { got++ }))

	h.SetDown(true)
	if !h.Down() {
		t.Fatal("Down() should report crash")
	}
	// Inbound packets vanish.
	pb.Send(e, dataPkt(1, 1500))
	e.Run()
	if got != 0 {
		t.Fatal("crashed host received a packet")
	}
	// Outbound sends are swallowed.
	h.Send(e, dataPkt(2, 1500))
	e.Run()
	if len(peer.arrived) != 0 {
		t.Fatal("crashed host transmitted a packet")
	}
	if h.DroppedDown != 2 {
		t.Fatalf("DroppedDown = %d, want 2", h.DroppedDown)
	}

	// Restart: traffic flows again and bindings survive.
	h.SetDown(false)
	pb.Send(e, dataPkt(3, 1500))
	h.Send(e, dataPkt(4, 1500))
	e.Run()
	if got != 1 || len(peer.arrived) != 1 {
		t.Fatalf("restarted host: got=%d sent=%d", got, len(peer.arrived))
	}
}

func TestPortCorruptionDestroysMatchedPackets(t *testing.T) {
	e := sim.New()
	a := &sinkNode{id: 1}
	b := &sinkNode{id: 2}
	pa, _ := Connect(a, b, 100*units.Gbps, units.Microsecond, QueueConfig{}, QueueConfig{}, nil)

	// Corrupt every even-seq packet.
	pa.SetCorrupt(func(p *Packet) bool { return p.Seq%2 == 0 })
	for i := 0; i < 6; i++ {
		pkt := dataPkt(uint64(i), 1500)
		pkt.Seq = int64(i)
		pa.Send(e, pkt)
	}
	e.Run()
	if len(b.arrived) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(b.arrived))
	}
	if pa.Stats().Corrupted != 3 {
		t.Fatalf("corrupted = %d, want 3", pa.Stats().Corrupted)
	}

	// Clearing the predicate restores clean delivery.
	pa.SetCorrupt(nil)
	pa.Send(e, dataPkt(100, 1500))
	e.Run()
	if len(b.arrived) != 4 {
		t.Fatal("cleared corruption still destroying packets")
	}
}

func TestPacketsInFlightSurviveCut(t *testing.T) {
	e := sim.New()
	a := &sinkNode{id: 1}
	b := &sinkNode{id: 2}
	pa, _ := Connect(a, b, 100*units.Gbps, units.Millisecond, QueueConfig{}, QueueConfig{}, nil)
	pa.Send(e, dataPkt(1, 1500))
	// Cut the link while the packet is propagating.
	e.Schedule(units.Time(500*units.Microsecond), func(*sim.Engine) { pa.SetDown(true) })
	e.Run()
	if len(b.arrived) != 1 {
		t.Fatal("in-flight packet should still arrive after a cut")
	}
}
