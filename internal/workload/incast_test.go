package workload

import (
	"testing"

	"incastproxy/internal/stats"
	"incastproxy/internal/units"
)

// quickSpec is a reduced-size incast (degree 4, 8 MB) that still exercises
// the full fabric but runs in milliseconds of wall time.
func quickSpec(s Scheme) Spec {
	return Spec{
		Scheme:     s,
		Degree:     4,
		TotalBytes: 8 * units.MB,
		Runs:       1,
		Seed:       42,
	}
}

func TestSplitBytes(t *testing.T) {
	shares := splitBytes(10, 3)
	if shares[0] != 4 || shares[1] != 3 || shares[2] != 3 {
		t.Fatalf("shares = %v", shares)
	}
	var sum units.ByteSize
	for _, s := range splitBytes(100*units.MB, 7) {
		sum += s
	}
	if sum != 100*units.MB {
		t.Fatalf("shares don't sum: %v", sum)
	}
}

func TestValidate(t *testing.T) {
	good := quickSpec(Baseline)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Spec{
		{Scheme: Baseline, Degree: 0, TotalBytes: units.MB},
		{Scheme: Baseline, Degree: 64, TotalBytes: units.MB}, // 63 max (proxy host)
		{Scheme: Baseline, Degree: 4, TotalBytes: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v should be invalid", bad)
		}
	}
}

func TestSchemeStrings(t *testing.T) {
	if Baseline.String() != "baseline" || ProxyNaive.String() != "proxy-naive" ||
		ProxyStreamlined.String() != "proxy-streamlined" {
		t.Fatal("scheme strings wrong")
	}
	if Scheme(42).String() == "" {
		t.Fatal("unknown scheme should print")
	}
	if len(Schemes()) != 3 {
		t.Fatal("Schemes() must list all three")
	}
}

func TestBaselineIncastCompletes(t *testing.T) {
	res, err := Run(quickSpec(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	rr := res.Runs[0]
	if !rr.Completed {
		t.Fatal("baseline incast incomplete")
	}
	// 8 MB over an effectively 100 Gb/s bottleneck with ~4 ms RTT:
	// lower bound is transfer (0.64 ms) + one-way (~2 ms).
	if rr.ICT < 2*units.Millisecond {
		t.Fatalf("ICT %v implausibly fast", rr.ICT)
	}
	if rr.ICT > units.Second {
		t.Fatalf("ICT %v implausibly slow", rr.ICT)
	}
}

func TestNaiveProxyIncastCompletes(t *testing.T) {
	res, err := Run(quickSpec(ProxyNaive))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Runs[0].Completed {
		t.Fatal("naive incast incomplete")
	}
}

func TestStreamlinedProxyIncastCompletes(t *testing.T) {
	res, err := Run(quickSpec(ProxyStreamlined))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Runs[0].Completed {
		t.Fatal("streamlined incast incomplete")
	}
}

// TestProxySchemesBeatBaselineOnLargeIncast reproduces the paper's headline
// claim on a reduced-size instance: for an incast large enough to lose
// packets in the first RTT, both proxy schemes finish substantially faster
// than the baseline (Figure 2).
func TestProxySchemesBeatBaselineOnLargeIncast(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	spec := Spec{Degree: 8, TotalBytes: 40 * units.MB, Runs: 1, Seed: 7}

	icts := map[Scheme]units.Duration{}
	for _, s := range Schemes() {
		sp := spec
		sp.Scheme = s
		res, err := Run(sp)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		icts[s] = res.ICT.Avg()
		t.Logf("%v: ICT=%v timeouts=%d retx=%d nacks=%d",
			s, res.ICT.Avg(), res.Runs[0].Timeouts, res.Runs[0].Retransmits, res.Runs[0].Nacks)
	}
	if icts[ProxyNaive] >= icts[Baseline] {
		t.Errorf("naive proxy (%v) not faster than baseline (%v)", icts[ProxyNaive], icts[Baseline])
	}
	if icts[ProxyStreamlined] >= icts[Baseline] {
		t.Errorf("streamlined proxy (%v) not faster than baseline (%v)", icts[ProxyStreamlined], icts[Baseline])
	}
	// The paper reports >50% reductions at 100 MB; demand at least 30%
	// on this smaller instance.
	if red := stats.Reduction(icts[Baseline], icts[ProxyStreamlined]); red < 0.30 {
		t.Errorf("streamlined reduction only %.1f%%", red*100)
	}
}

// TestBottleneckShiftsToProxyToR checks Figure 1's mechanism: under the
// proxy schemes congestion accumulates at the proxy down-ToR in the sending
// DC, not at the receiver down-ToR.
func TestBottleneckShiftsToProxyToR(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	spec := Spec{Degree: 8, TotalBytes: 40 * units.MB, Runs: 1, Seed: 7}

	base := spec
	base.Scheme = Baseline
	bres, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Runs[0].ReceiverToRMaxQueue < bres.Runs[0].ProxyToRMaxQueue {
		t.Errorf("baseline: receiver ToR (%v) should be the hot queue, proxy ToR %v",
			bres.Runs[0].ReceiverToRMaxQueue, bres.Runs[0].ProxyToRMaxQueue)
	}
	if bres.Runs[0].ReceiverToRDrops == 0 {
		t.Error("baseline at this size should overflow the receiver down-ToR")
	}

	for _, s := range []Scheme{ProxyNaive, ProxyStreamlined} {
		sp := spec
		sp.Scheme = s
		res, err := Run(sp)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		rr := res.Runs[0]
		if rr.ProxyToRMaxQueue <= rr.ReceiverToRMaxQueue {
			t.Errorf("%v: bottleneck did not shift (proxy ToR %v vs receiver ToR %v)",
				s, rr.ProxyToRMaxQueue, rr.ReceiverToRMaxQueue)
		}
	}
}

func TestStreamlinedUsesNacks(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	sp := Spec{Scheme: ProxyStreamlined, Degree: 8, TotalBytes: 40 * units.MB, Runs: 1, Seed: 7}
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	rr := res.Runs[0]
	if rr.ProxyToRTrims == 0 {
		t.Error("streamlined at this size should trim at the proxy down-ToR")
	}
	if rr.Nacks == 0 {
		t.Error("streamlined senders should receive proxy NACKs")
	}
}

// TestInferringProxyMatchesStreamlined evaluates future work #1: the
// trimming-free inferring proxy should complete on par with streamlined
// (both provide microsecond loss feedback) and far ahead of the baseline,
// without false NACKs under packet spraying at the default reorder delay.
func TestInferringProxyMatchesStreamlined(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	icts := map[Scheme]units.Duration{}
	var falseNacks uint64
	for _, sch := range []Scheme{Baseline, ProxyStreamlined, ProxyInferring} {
		res, err := Run(Spec{Scheme: sch, Degree: 8, TotalBytes: 40 * units.MB, Runs: 1, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", sch, err)
		}
		icts[sch] = res.ICT.Avg()
		if sch == ProxyInferring {
			falseNacks = res.Runs[0].ProxyFalseNacks
			if res.Runs[0].ProxyToRDrops == 0 {
				t.Error("inferring scheme should rely on drops, not trims")
			}
			if res.Runs[0].Nacks == 0 {
				t.Error("inferring proxy sent no NACKs")
			}
		}
	}
	if icts[ProxyInferring] >= icts[Baseline]/2 {
		t.Errorf("inferring (%v) should massively beat baseline (%v)",
			icts[ProxyInferring], icts[Baseline])
	}
	// Same order of magnitude as streamlined (within 3x).
	if icts[ProxyInferring] > 3*icts[ProxyStreamlined] {
		t.Errorf("inferring (%v) far behind streamlined (%v)",
			icts[ProxyInferring], icts[ProxyStreamlined])
	}
	if falseNacks > 100 {
		t.Errorf("false NACKs = %d; reorder disambiguation failing", falseNacks)
	}
}

func TestInferringSchemeString(t *testing.T) {
	if ProxyInferring.String() != "proxy-inferring" {
		t.Fatal("scheme string wrong")
	}
	// The paper's comparison set stays at three schemes.
	if len(Schemes()) != 3 {
		t.Fatal("Schemes() must remain the paper's three")
	}
}

func TestMultipleRunsVarySeed(t *testing.T) {
	sp := quickSpec(Baseline)
	sp.Runs = 3
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 || res.ICT.N() != 3 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	if res.ICT.Min() > res.ICT.Avg() || res.ICT.Avg() > res.ICT.Max() {
		t.Fatal("run stats ordering broken")
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	_, err := Run(Spec{Scheme: Baseline, Degree: 0, TotalBytes: units.MB})
	if err == nil {
		t.Fatal("invalid spec must error")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a, err := Run(quickSpec(ProxyStreamlined))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickSpec(ProxyStreamlined))
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs[0].ICT != b.Runs[0].ICT || a.Runs[0].Events != b.Runs[0].Events {
		t.Fatalf("same seed, different outcomes: %v/%v events %d/%d",
			a.Runs[0].ICT, b.Runs[0].ICT, a.Runs[0].Events, b.Runs[0].Events)
	}
}
