// Package workload generates and runs the paper's workloads: the core
// many-to-one incast (§4), plus the §2 motivating patterns (MoE all-to-all
// phases, erasure-coded storage reconstruction, geo-replicated quorum
// writes) used by the examples.
//
// An incast run places every sender in datacenter 0 and the receiver in
// datacenter 1, optionally routes the flows through a proxy in datacenter 0
// (naive or streamlined, §4.1), and reports the incast completion time:
// the time until the receiver holds every byte.
package workload

import (
	"fmt"

	"incastproxy/internal/control"
	"incastproxy/internal/detect"
	"incastproxy/internal/netsim"
	"incastproxy/internal/obs"
	"incastproxy/internal/proxy"
	"incastproxy/internal/rng"
	"incastproxy/internal/runner"
	"incastproxy/internal/sim"
	"incastproxy/internal/stats"
	"incastproxy/internal/topo"
	"incastproxy/internal/transport"
	"incastproxy/internal/units"
)

// Scheme selects how incast traffic is routed (§4.1 "Schemes").
type Scheme int

// The three compared schemes.
const (
	// Baseline: senders transmit directly to the remote receiver.
	Baseline Scheme = iota
	// ProxyNaive: two connections per flow relayed at a proxy in the
	// sending datacenter.
	ProxyNaive
	// ProxyStreamlined: one connection routed via the proxy; switches in
	// the sending DC trim, and the proxy NACKs trimmed headers.
	ProxyStreamlined
	// ProxyInferring is the future-work #1 design: no switch trimming;
	// the proxy infers losses from sequence gaps under reordering with
	// bounded memory, and NACKs inferred losses. Not part of the
	// paper's three compared schemes (Schemes()), but evaluable against
	// them.
	ProxyInferring
	// SchemeAdaptive starts every flow on the direct path under a small
	// paced window and lets an online controller (internal/control)
	// re-steer the epoch mid-flight: announced-overflow or queue onset
	// upgrades flows onto the streamlined proxy (un-sent suffixes
	// re-homed, a buffer-safe subset kept direct), and a degraded proxy
	// (probe loss, queueing excess) downgrades them back. See adaptive.go.
	SchemeAdaptive
)

func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case ProxyNaive:
		return "proxy-naive"
	case ProxyStreamlined:
		return "proxy-streamlined"
	case ProxyInferring:
		return "proxy-inferring"
	case SchemeAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Schemes lists all three for sweeps.
func Schemes() []Scheme { return []Scheme{Baseline, ProxyNaive, ProxyStreamlined} }

// Spec describes one incast experiment setup.
type Spec struct {
	Scheme Scheme
	// Degree is the number of senders; TotalBytes is split equally
	// among them (§4.2).
	Degree     int
	TotalBytes units.ByteSize

	// Runs repeats the experiment with different seeds; the paper uses
	// 5 and reports avg/min/max.
	Runs int
	Seed int64

	// Parallel fans the Runs across worker goroutines: 0 or 1 runs
	// serially (the zero-value default — OnBuild hooks need not be
	// goroutine-safe), N > 1 uses min(N, Runs) workers, and negative
	// values use one worker per CPU. Each trial builds its own engine,
	// registry, and RNG, and results merge in run order, so the output
	// is byte-identical to a serial run. With Parallel > 1 an OnBuild
	// hook runs concurrently and must be goroutine-safe.
	Parallel int

	// Shards >= 1 runs each trial on a sharded parallel event engine
	// (sim.ShardGroup): the fabric is partitioned per topo.PlanShards
	// (each DC its own shard, backbones split further) and synchronized
	// by a conservative-lookahead barrier over the long-haul link delay.
	// Results are byte-identical for a given seed at every shard count
	// and every ShardWorkers value; like Parallel, neither knob enters
	// the config hash. Shards = 0 (the default) keeps the classic
	// single-engine path. The sharded path supports every scheme except
	// SchemeAdaptive, and rejects OnBuild hooks and Obs.Trace (both
	// assume a single engine).
	Shards int
	// ShardWorkers bounds the goroutines running shard rounds; 0 means
	// one per shard. Purely an execution knob: results never depend on
	// it.
	ShardWorkers int

	// Topo overrides the fabric (zero value: the §4.1 default). The
	// runner forces TrimDC[0] on for the streamlined scheme.
	Topo topo.Config

	// MSS is the data packet wire size (default 1500 B).
	MSS units.ByteSize

	// ProxyProcDelay models streamlined per-packet proxy processing
	// (default: constant 420 ns, the §5 measured eBPF median).
	ProxyProcDelay rng.Distribution

	// MaxSimTime bounds each run (default 60 s of simulated time).
	MaxSimTime units.Duration

	// Ablation knobs (see DESIGN.md's experiment index).

	// NoEarlyFeedback makes the streamlined proxy relay trimmed headers
	// to the remote receiver instead of NACKing locally (§3 Insight #2
	// ablation: the bottleneck shift alone is not enough).
	NoEarlyFeedback bool
	// TrimReceiverDC enables trimming in the receiving datacenter for
	// any scheme, so the baseline gets NACKs — over the long loop.
	TrimReceiverDC bool
	// IWScale scales every sender's initial window relative to the
	// default 1 BDP (0 means 1.0).
	IWScale float64
	// Gemini enables the Gemini-like congestion control variant on
	// every sender (related-work comparison: milder window reduction
	// for longer-RTT flows).
	Gemini bool

	// OnBuild, if set, runs after the fabric is built and before flows
	// start in every run — the hook for attaching trace recorders or
	// custom telemetry.
	OnBuild func(*topo.Network, *sim.Engine)

	// Obs configures per-run observability (nil: metrics on, tracing
	// off). See ObsConfig.
	Obs *ObsConfig

	// InferTracker bounds the ProxyInferring scheme's loss tracker
	// (zero value: 4096-packet windows, 100 us reorder delay, 1024
	// flows). InferFlushEvery drives its timer-based hole expiry.
	InferTracker    detect.LossTrackerConfig
	InferFlushEvery units.Duration

	// Control tunes the SchemeAdaptive controller thresholds (zero
	// SamplePeriod: control.DefaultConfig, with OverflowBytes defaulted
	// to the receiver ToR queue capacity). Ignored by other schemes.
	Control control.Config

	// Stress knobs shared by every scheme, so adaptive-vs-static
	// comparisons stay apples to apples.

	// IncastDelay starts the incast flows that much into the run (the
	// cross traffic and the path probers get a head start).
	IncastDelay units.Duration
	// CrossTraffic, when Flows > 0, runs competing intra-DC flows into
	// the proxy host — sustained pressure on the proxy-path bottleneck.
	CrossTraffic CrossTrafficSpec
	// ProxyCrashAt, when > 0, crashes the proxy host at that time;
	// ProxyRestartAfter revives it that long after (0: stays dead).
	ProxyCrashAt      units.Duration
	ProxyRestartAfter units.Duration
}

// CrossTrafficSpec describes background flows aimed at the proxy host from
// otherwise-idle hosts in the sending datacenter. They congest the proxy's
// down-ToR queue — the proxy path's bottleneck — without touching the
// direct path, which is exactly the asymmetry an adaptive policy must see.
type CrossTrafficSpec struct {
	// Flows is how many background flows to run (0 disables).
	Flows int
	// Bytes is each flow's size.
	Bytes units.ByteSize
	// StartAt is the first flow's start time; Stagger separates
	// consecutive starts.
	StartAt units.Duration
	Stagger units.Duration
}

func (s Spec) withDefaults() Spec {
	if s.Topo.Spines == 0 {
		s.Topo = topo.DefaultConfig()
	}
	if s.Runs <= 0 {
		s.Runs = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.MSS <= 0 {
		s.MSS = transport.DefaultMSS
	}
	if s.ProxyProcDelay == nil {
		s.ProxyProcDelay = rng.Constant{D: 420 * units.Nanosecond}
	}
	if s.MaxSimTime <= 0 {
		s.MaxSimTime = 60 * units.Second
	}
	return s
}

// Validate reports specification errors.
func (s Spec) Validate() error {
	s = s.withDefaults()
	hostsPerDC := s.Topo.Leaves * s.Topo.ServersPerLeaf
	switch {
	case s.Degree < 1:
		return fmt.Errorf("workload: degree must be >= 1, got %d", s.Degree)
	case s.Degree > hostsPerDC-1:
		return fmt.Errorf("workload: degree %d exceeds %d available senders (one host is the proxy)",
			s.Degree, hostsPerDC-1)
	case s.TotalBytes <= 0:
		return fmt.Errorf("workload: TotalBytes must be positive")
	case s.CrossTraffic.Flows > 0 && s.CrossTraffic.Bytes <= 0:
		return fmt.Errorf("workload: cross-traffic flows need Bytes > 0")
	case s.Degree+s.CrossTraffic.Flows > hostsPerDC-1:
		return fmt.Errorf("workload: degree %d + %d cross-traffic flows exceed %d available hosts",
			s.Degree, s.CrossTraffic.Flows, hostsPerDC-1)
	case s.Shards < 0:
		return fmt.Errorf("workload: Shards must be >= 0, got %d", s.Shards)
	}
	if s.Shards >= 1 {
		switch {
		case s.Scheme == SchemeAdaptive:
			return fmt.Errorf("workload: SchemeAdaptive is not supported on the sharded engine (its controller assumes one engine)")
		case s.OnBuild != nil:
			return fmt.Errorf("workload: OnBuild hooks are not supported on the sharded engine")
		case s.Obs != nil && s.Obs.Trace:
			return fmt.Errorf("workload: tracing is not supported on the sharded engine")
		}
		if _, err := topo.PlanShards(s.Topo, s.Shards); err != nil {
			return err
		}
	}
	return nil
}

// RunResult captures one simulated incast.
type RunResult struct {
	ICT       units.Duration
	Completed bool

	// Sender-side aggregates across all flows.
	Timeouts    uint64
	Retransmits uint64
	Nacks       uint64
	MarkedAcks  uint64
	PktsSent    uint64

	// Bottleneck telemetry: high-watermark occupancy of the down-ToR
	// queues at the receiver and at the proxy (Figure 1's two candidate
	// congestion points).
	ReceiverToRMaxQueue units.ByteSize
	ProxyToRMaxQueue    units.ByteSize
	ReceiverToRDrops    uint64
	ProxyToRTrims       uint64
	ProxyToRDrops       uint64
	// ProxyFalseNacks counts inferring-proxy NACKs contradicted by late
	// arrivals (reordering mistaken for loss; ProxyInferring only).
	ProxyFalseNacks uint64

	// FlowFCT summarizes the completion times of the incast's finished
	// flows. It is computed through a bounded sample (stats.NewBounded,
	// reservoir seeded from the run seed) so 10k-sender epochs summarize
	// in constant memory; at degrees up to the reservoir capacity the
	// percentiles are exact order statistics.
	FlowFCT stats.DurationSummary

	// Adaptive-scheme decision record (SchemeAdaptive only; zero
	// otherwise). Steers lists the controller's executed re-steers,
	// Onsets its detector onset count, FinalRoute where the epoch ended
	// up, RehomedFlows/RehomedBytes what the steers moved, and
	// KeptDirect how many flows a partial rebalance left on the direct
	// path.
	Steers       []control.Steer
	Onsets       uint64
	FinalRoute   string
	RehomedFlows int
	RehomedBytes units.ByteSize
	KeptDirect   int

	Events uint64

	// Manifest carries the run's identity (seed, config hash) and its
	// final metric snapshot; nil when Spec.Obs.Disable.
	Manifest *obs.Manifest
	// Trace holds the run's flow/queue event trace when Spec.Obs.Trace;
	// nil otherwise. Export with WriteChromeTrace or WriteCSV.
	Trace *obs.Tracer
}

// Result aggregates an experiment's runs.
type Result struct {
	Spec Spec
	ICT  stats.RunStats
	Runs []RunResult
}

// Run executes the experiment: Spec.Runs independent simulations with
// seeds derived per run via rng.DeriveSeed, fanned across Spec.Parallel
// workers. It returns an error if the spec is invalid or any run fails to
// complete within MaxSimTime; with several failing runs the error reported
// is the lowest-numbered one, exactly as a serial loop would surface it.
func Run(spec Spec) (*Result, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	par := spec.Parallel
	if par == 0 {
		par = 1
	}
	runs, err := runner.Map(par, spec.Runs, func(run int) (RunResult, error) {
		rr, err := runOnce(spec, rng.DeriveSeed(spec.Seed, int64(run)))
		if err != nil {
			return RunResult{}, fmt.Errorf("run %d: %w", run, err)
		}
		return rr, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Spec: spec, Runs: runs}
	for _, rr := range runs {
		res.ICT.Add(rr.ICT)
	}
	return res, nil
}

// runOnce builds a fresh fabric and simulates one incast.
func runOnce(spec Spec, seed int64) (RunResult, error) {
	if spec.Scheme == SchemeAdaptive {
		return runAdaptive(spec, seed)
	}
	if spec.Shards >= 1 {
		return runOnceSharded(spec, seed)
	}
	e := sim.New()
	cfg := spec.Topo
	cfg.Seed = seed
	if spec.Scheme == ProxyStreamlined {
		cfg.TrimDC[0] = true
	}
	if spec.TrimReceiverDC {
		cfg.TrimDC[1] = true
	}
	net := topo.Build(e, cfg)
	if spec.OnBuild != nil {
		spec.OnBuild(net, e)
	}

	hostsDC0 := net.Hosts[0]
	recv := net.Hosts[1][0]
	proxyHost := hostsDC0[len(hostsDC0)-1]

	src := rng.New(seed)

	var txSenders []*transport.Sender
	var rxs []*transport.Receiver
	ro := newRunObs(spec.Obs)
	ro.wire(e, net, &txSenders, &rxs)
	ro.watchPorts(e, units.Time(spec.MaxSimTime), map[string]*netsim.Port{
		"recv-tor":  net.DownToRPort(recv),
		"proxy-tor": net.DownToRPort(proxyHost),
	})

	completedFlows := 0
	var lastDone units.Time
	fcts := stats.NewBounded(fctReservoirCap, seed)
	onFlowDone := func(at units.Time) {
		completedFlows++
		if at > lastDone {
			lastDone = at
		}
		// Receiver-side FCT: flows launch at IncastDelay, so completion
		// minus launch is the flow's wall time. Measured here because
		// the run stops the instant the last receiver finishes — the
		// senders never see their final ACKs.
		fcts.AddDuration(at.Sub(units.Time(spec.IncastDelay)))
		if completedFlows == spec.Degree {
			// All receivers finished: nothing left worth
			// simulating (stray timers would only re-fire).
			e.Stop()
		}
	}

	inferGroup, err := buildFlows(e, net, spec, src, ro, recv, proxyHost,
		onFlowDone, &txSenders, &rxs)
	if err != nil {
		return RunResult{}, err
	}

	if err := startCrossTraffic(e, net, spec, proxyHost, ro); err != nil {
		return RunResult{}, err
	}
	injectProxyFaults(e, spec, proxyHost, seed, ro)

	e.RunUntil(units.Time(spec.MaxSimTime))

	rr := RunResult{
		ICT:       units.Duration(lastDone),
		Completed: completedFlows == spec.Degree,
		Events:    e.Processed(),
	}
	collectRunStats(&rr, net, recv, proxyHost, txSenders, inferGroup, fcts)
	rr.Manifest = ro.manifest(seed, spec.fingerprintString())
	rr.Trace = ro.tracer

	if !rr.Completed {
		return rr, fmt.Errorf("incast incomplete after %v: %d/%d flows done",
			spec.MaxSimTime, completedFlows, spec.Degree)
	}
	return rr, nil
}

// buildFlows constructs the incast flows of every non-adaptive scheme on
// engine e (which must own the sending datacenter: senders and the proxy
// host live there) and arranges their starts. It appends the created
// senders and receivers to the slices the caller registered with the
// observability layer, and returns the ProxyInferring group when that
// scheme is selected.
func buildFlows(e *sim.Engine, net *topo.Network, spec Spec, src *rng.Source,
	ro *runObs, recv, proxyHost *netsim.Host, onFlowDone func(units.Time),
	txSenders *[]*transport.Sender, rxs *[]*transport.Receiver) (*proxy.InferringGroup, error) {
	iwScale := spec.IWScale
	if iwScale <= 0 {
		iwScale = 1
	}
	scaleIW := func(bdp units.ByteSize) units.ByteSize {
		return units.ByteSize(float64(bdp) * iwScale)
	}
	// The first RTT observed by a sender includes the queueing its own
	// cohort inflicts: up to Degree initial windows draining through one
	// bottleneck link. The initial RTO must exceed that, or timers fire
	// spuriously before the first RTT sample arrives.
	initRTO := func(rtt units.Duration, iw units.ByteSize) units.Duration {
		return 3*rtt + net.Cfg.LinkRate.TransmitTime(units.ByteSize(spec.Degree)*iw)
	}

	senders := net.Hosts[0][:spec.Degree]
	shares := splitBytes(spec.TotalBytes, spec.Degree)

	// start launches a sender at IncastDelay (immediately when zero).
	start := func(s *transport.Sender) {
		if spec.IncastDelay > 0 {
			e.Schedule(units.Time(spec.IncastDelay), s.Start)
		} else {
			s.Start(e)
		}
	}

	var inferGroup *proxy.InferringGroup
	if spec.Scheme == ProxyInferring {
		tc := spec.InferTracker
		if tc.WindowPkts == 0 {
			tc.WindowPkts = 4096
		}
		if tc.ReorderDelay == 0 {
			tc.ReorderDelay = 100 * units.Microsecond
		}
		inferGroup = proxy.NewInferringGroup(proxyHost, tc, spec.InferFlushEvery,
			spec.ProxyProcDelay, src.Split(999))
		inferGroup.Start(e, units.Time(spec.MaxSimTime))
	}

	for i, snd := range senders {
		flow := netsim.FlowID(i + 1)
		share := shares[i]
		switch spec.Scheme {
		case Baseline:
			rtt := net.PathRTT(snd, recv, spec.MSS, netsim.ControlSize)
			iw := scaleIW(net.BottleneckRate(snd, recv).BDP(rtt))
			c := transport.Config{
				MSS:         spec.MSS,
				InitWindow:  iw,
				ExpectedRTT: rtt,
				InitRTO:     initRTO(rtt, iw),
				GeminiMode:  spec.Gemini,
			}
			r := transport.NewReceiver(recv, flow, snd.ID(), share, onFlowDone)
			recv.Bind(flow, r)
			s := transport.NewSender(snd, flow, recv.ID(), 0, share, c, nil)
			s.Attach(ro.tel, fmt.Sprintf("flow %d", flow))
			snd.Bind(flow, s)
			*txSenders = append(*txSenders, s)
			*rxs = append(*rxs, r)
			start(s)

		case ProxyStreamlined:
			rtt := net.PathRTT(snd, proxyHost, spec.MSS, netsim.ControlSize) +
				net.PathRTT(proxyHost, recv, spec.MSS, netsim.ControlSize)
			iw := scaleIW(net.BottleneckRate(snd, recv).BDP(rtt))
			c := transport.Config{
				MSS:         spec.MSS,
				InitWindow:  iw,
				ExpectedRTT: rtt,
				InitRTO:     initRTO(rtt, iw),
				GeminiMode:  spec.Gemini,
			}
			p := proxy.NewStreamlined(proxyHost, flow, snd.ID(), recv.ID(),
				spec.ProxyProcDelay, src.Split(int64(flow)))
			p.NoEarlyNack = spec.NoEarlyFeedback
			proxyHost.Bind(flow, p)
			r := transport.NewReceiver(recv, flow, proxyHost.ID(), share, onFlowDone)
			recv.Bind(flow, r)
			s := transport.NewSender(snd, flow, proxyHost.ID(), recv.ID(), share, c, nil)
			s.Attach(ro.tel, fmt.Sprintf("flow %d", flow))
			snd.Bind(flow, s)
			*txSenders = append(*txSenders, s)
			*rxs = append(*rxs, r)
			start(s)

		case ProxyInferring:
			rtt := net.PathRTT(snd, proxyHost, spec.MSS, netsim.ControlSize) +
				net.PathRTT(proxyHost, recv, spec.MSS, netsim.ControlSize)
			iw := scaleIW(net.BottleneckRate(snd, recv).BDP(rtt))
			c := transport.Config{
				MSS:         spec.MSS,
				InitWindow:  iw,
				ExpectedRTT: rtt,
				InitRTO:     initRTO(rtt, iw),
				GeminiMode:  spec.Gemini,
			}
			inferGroup.AddFlow(flow, snd.ID(), recv.ID())
			r := transport.NewReceiver(recv, flow, proxyHost.ID(), share, onFlowDone)
			recv.Bind(flow, r)
			s := transport.NewSender(snd, flow, proxyHost.ID(), recv.ID(), share, c, nil)
			s.Attach(ro.tel, fmt.Sprintf("flow %d", flow))
			snd.Bind(flow, s)
			*txSenders = append(*txSenders, s)
			*rxs = append(*rxs, r)
			start(s)

		case ProxyNaive:
			downFlow := flow + netsim.FlowID(1)<<20
			rttUp := net.PathRTT(snd, proxyHost, spec.MSS, netsim.ControlSize)
			rttDown := net.PathRTT(proxyHost, recv, spec.MSS, netsim.ControlSize)
			iwUp := scaleIW(net.BottleneckRate(snd, proxyHost).BDP(rttUp))
			iwDown := scaleIW(net.BottleneckRate(proxyHost, recv).BDP(rttDown))
			upCfg := transport.Config{
				MSS:         spec.MSS,
				InitWindow:  iwUp,
				ExpectedRTT: rttUp,
				InitRTO:     initRTO(rttUp, iwUp),
				GeminiMode:  spec.Gemini,
			}
			relay := proxy.NewNaive(proxyHost, flow, downFlow, snd.ID(), recv.ID(),
				proxy.NaiveConfig{
					Total: share,
					DownCfg: transport.Config{
						MSS:         spec.MSS,
						InitWindow:  iwDown,
						ExpectedRTT: rttDown,
						InitRTO:     initRTO(rttDown, iwDown),
						GeminiMode:  spec.Gemini,
					},
				})
			r := transport.NewReceiver(recv, downFlow, proxyHost.ID(), share, onFlowDone)
			recv.Bind(downFlow, r)
			s := transport.NewSender(snd, flow, proxyHost.ID(), 0, share, upCfg, nil)
			s.Attach(ro.tel, fmt.Sprintf("flow %d", flow))
			snd.Bind(flow, s)
			*txSenders = append(*txSenders, s)
			*rxs = append(*rxs, r)
			relay.Start(e)
			start(s)

		default:
			return nil, fmt.Errorf("unknown scheme %v", spec.Scheme)
		}
	}
	return inferGroup, nil
}

// fctReservoirCap bounds the per-run FCT sample: above this many flows the
// percentile summary becomes a deterministic uniform-reservoir estimate.
const fctReservoirCap = 4096

// collectRunStats fills rr's sender aggregates, bottleneck telemetry, the
// FlowFCT summary (from the run's bounded per-flow sample), and
// inferring-proxy error counters from the finished run's objects. Shared by
// the single-engine and sharded paths so both report identically.
func collectRunStats(rr *RunResult, net *topo.Network, recv, proxyHost *netsim.Host,
	txSenders []*transport.Sender, inferGroup *proxy.InferringGroup, fcts *stats.Sample) {
	for _, s := range txSenders {
		rr.Timeouts += s.Stats.Timeouts
		rr.Retransmits += s.Stats.Retransmits
		rr.Nacks += s.Stats.Nacks
		rr.MarkedAcks += s.Stats.MarkedAcks
		rr.PktsSent += s.Stats.PktsSent
	}
	rr.FlowFCT = stats.SummarizeDurations(fcts)
	rst := net.DownToRPort(recv).Stats()
	pst := net.DownToRPort(proxyHost).Stats()
	rr.ReceiverToRMaxQueue = rst.MaxBytes
	rr.ReceiverToRDrops = rst.Dropped
	rr.ProxyToRMaxQueue = pst.MaxBytes
	rr.ProxyToRTrims = pst.Trimmed
	rr.ProxyToRDrops = pst.Dropped
	if inferGroup != nil {
		rr.ProxyFalseNacks = inferGroup.Stats.FalseNacks
	}
}

// splitBytes divides total equally among n flows, spreading the remainder
// over the first flows (§4.2: "total traffic is split equally").
func splitBytes(total units.ByteSize, n int) []units.ByteSize {
	shares := make([]units.ByteSize, n)
	base := total / units.ByteSize(n)
	rem := total % units.ByteSize(n)
	for i := range shares {
		shares[i] = base
		if units.ByteSize(i) < rem {
			shares[i]++
		}
	}
	return shares
}
