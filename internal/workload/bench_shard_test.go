package workload

import (
	"testing"

	"incastproxy/internal/units"
)

// Shard-scaling benchmark for the conservative-lookahead parallel engine
// (make bench-json writes it to BENCH_sim_shard.json). The simulated work
// is identical at every configuration — byte-identity across shard and
// worker counts is a tested invariant — so events/sec isolates what the
// engine itself costs: the single-engine baseline, the sharded runtime's
// barrier-round overhead at one worker, and the scaling headroom extra
// workers buy. On a single-core host the multi-worker rows cannot beat
// wall clock (there is no second CPU to run the other shard); they then
// measure the synchronization overhead alone, which is the honest number
// to track there.
func BenchmarkShardedIncast(b *testing.B) {
	for _, tc := range []struct {
		name            string
		shards, workers int
	}{
		{"single-engine", 0, 0},
		{"shards=1", 1, 1},
		{"shards=2/workers=1", 2, 1},
		{"shards=2/workers=2", 2, 2},
		{"shards=4/workers=4", 4, 4},
	} {
		b.Run(tc.name, func(b *testing.B) {
			spec := shardSpec(ProxyStreamlined)
			spec.Topo.ServersPerLeaf = 16 // 32 hosts per DC
			spec.Degree = 16
			spec.TotalBytes = 16 * units.MB
			spec.Shards = tc.shards
			spec.ShardWorkers = tc.workers
			spec.Obs = &ObsConfig{Disable: true}
			var events uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				events += res.Runs[0].Events
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(events)/secs, "events/sec")
			}
		})
	}
}
