package workload

import (
	"testing"

	"incastproxy/internal/netsim"
	"incastproxy/internal/units"
)

func TestScenarioValidate(t *testing.T) {
	ok := Scenario{Flows: []FlowSpec{{ID: 1, Src: HostRef{0, 0}, Dst: HostRef{1, 0}, Bytes: units.MB}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Scenario{
		{},
		{Flows: []FlowSpec{{ID: 0, Src: HostRef{0, 0}, Dst: HostRef{1, 0}, Bytes: 1}}},
		{Flows: []FlowSpec{{ID: 1 << 20, Src: HostRef{0, 0}, Dst: HostRef{1, 0}, Bytes: 1}}},
		{Flows: []FlowSpec{
			{ID: 1, Src: HostRef{0, 0}, Dst: HostRef{1, 0}, Bytes: 1},
			{ID: 1, Src: HostRef{0, 1}, Dst: HostRef{1, 0}, Bytes: 1},
		}},
		{Flows: []FlowSpec{{ID: 1, Src: HostRef{2, 0}, Dst: HostRef{1, 0}, Bytes: 1}}},
		{Flows: []FlowSpec{{ID: 1, Src: HostRef{0, 999}, Dst: HostRef{1, 0}, Bytes: 1}}},
		{Flows: []FlowSpec{{ID: 1, Src: HostRef{0, 0}, Dst: HostRef{0, 0}, Bytes: 1}}},
		{Flows: []FlowSpec{{ID: 1, Src: HostRef{0, 0}, Dst: HostRef{1, 0}, Bytes: 0}}},
		{Flows: []FlowSpec{{ID: 1, Src: HostRef{0, 0}, Dst: HostRef{1, 0}, Bytes: 1, Start: -1}}},
		{Flows: []FlowSpec{{ID: 1, Src: HostRef{0, 0}, Dst: HostRef{1, 0}, Bytes: 1,
			Via: &ProxyRef{Scheme: Baseline, At: HostRef{0, 1}}}}},
		{Flows: []FlowSpec{{ID: 1, Src: HostRef{0, 0}, Dst: HostRef{1, 0}, Bytes: 1,
			Via: &ProxyRef{Scheme: ProxyNaive, At: HostRef{0, 9999}}}}},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestScenarioMixedFlows(t *testing.T) {
	sc := Scenario{
		Seed: 3,
		Flows: []FlowSpec{
			// Direct cross-DC flow.
			{ID: 1, Src: HostRef{0, 0}, Dst: HostRef{1, 0}, Bytes: 2 * units.MB},
			// Streamlined-proxied flow starting later.
			{ID: 2, Src: HostRef{0, 1}, Dst: HostRef{1, 1}, Bytes: 2 * units.MB,
				Start: units.Duration(500 * units.Microsecond),
				Via:   &ProxyRef{Scheme: ProxyStreamlined, At: HostRef{0, 63}}},
			// Naive-proxied flow.
			{ID: 3, Src: HostRef{0, 2}, Dst: HostRef{1, 2}, Bytes: 2 * units.MB,
				Via: &ProxyRef{Scheme: ProxyNaive, At: HostRef{0, 62}}},
			// Intra-DC flow.
			{ID: 4, Src: HostRef{1, 3}, Dst: HostRef{1, 4}, Bytes: units.MB},
		},
	}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || len(res.Done) != 4 {
		t.Fatalf("completed=%v done=%d", res.Completed, len(res.Done))
	}
	// The delayed flow cannot finish before it starts.
	if res.Done[2] < units.Duration(500*units.Microsecond) {
		t.Fatalf("flow 2 done at %v, before its start", res.Done[2])
	}
	// Intra-DC 1MB flow should be far faster than cross-DC 2MB flows.
	if res.Done[4] >= res.Done[1] {
		t.Fatalf("intra-DC flow (%v) should beat cross-DC (%v)", res.Done[4], res.Done[1])
	}
	if res.Makespan == 0 || res.Events == 0 {
		t.Fatal("missing makespan/events")
	}
}

func TestScenarioStartOffsetRespected(t *testing.T) {
	start := units.Duration(3 * units.Millisecond)
	sc := Scenario{
		Flows: []FlowSpec{{ID: 1, Src: HostRef{0, 0}, Dst: HostRef{1, 0},
			Bytes: 100 * units.KB, Start: start}},
	}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done[1] <= start {
		t.Fatalf("flow done %v, must be after start %v", res.Done[1], start)
	}
}

func TestMoEAllToAll(t *testing.T) {
	scheme := ProxyStreamlined
	cfg := MoEConfig{
		LocalExperts:  3,
		RemoteExperts: 2,
		BytesPerPair:  100 * units.KB,
		Phases:        2,
		Period:        units.Duration(10 * units.Millisecond),
		ProxyCrossDC:  &scheme,
		ProxyHost:     [2]int{63, 63},
	}
	flows, next := MoEAllToAll(cfg, 1)
	// 5 experts, all-to-all = 20 flows per phase, 2 phases.
	if len(flows) != 40 {
		t.Fatalf("flows = %d, want 40", len(flows))
	}
	if next != 41 {
		t.Fatalf("next ID = %d", next)
	}
	crossProxied, intra := 0, 0
	for _, f := range flows {
		if f.Src.DC != f.Dst.DC {
			if f.Via == nil || f.Via.Scheme != ProxyStreamlined {
				t.Fatalf("cross-DC flow not proxied: %+v", f)
			}
			if f.Via.At.DC != f.Src.DC {
				t.Fatalf("proxy must be in the sending DC: %+v", f)
			}
			crossProxied++
		} else {
			if f.Via != nil {
				t.Fatalf("intra-DC flow proxied: %+v", f)
			}
			intra++
		}
	}
	// Per phase: cross = 3*2*2 = 12, intra = 3*2 + 2*1 = 8.
	if crossProxied != 24 || intra != 16 {
		t.Fatalf("cross=%d intra=%d", crossProxied, intra)
	}
	// Phase 2 flows start one period later.
	if flows[20].Start != cfg.Period || flows[0].Start != 0 {
		t.Fatalf("phase starts wrong: %v / %v", flows[0].Start, flows[20].Start)
	}
}

func TestStorageReconstructionSkipsProxyHost(t *testing.T) {
	cfg := StorageReconstructionConfig{
		Fragments:     5,
		FragmentBytes: units.MB,
		Orchestrator:  HostRef{DC: 1, Host: 0},
		Via:           &ProxyRef{Scheme: ProxyNaive, At: HostRef{DC: 0, Host: 2}},
	}
	flows, next := StorageReconstruction(cfg, 10)
	if len(flows) != 5 || next != 15 {
		t.Fatalf("flows=%d next=%d", len(flows), next)
	}
	for _, f := range flows {
		if f.Src.Host == 2 {
			t.Fatal("proxy host must not hold a fragment")
		}
		if f.Dst != cfg.Orchestrator {
			t.Fatal("all fragments go to the orchestrator")
		}
	}
}

func TestQuorumSync(t *testing.T) {
	flows, _ := QuorumSync(QuorumSyncConfig{
		Replicas:   3,
		WriteBytes: 512 * units.KB,
		Primary:    HostRef{DC: 1, Host: 7},
	}, 1)
	if len(flows) != 3 {
		t.Fatalf("flows = %d", len(flows))
	}
	for i, f := range flows {
		if f.Src != (HostRef{DC: 0, Host: i}) {
			t.Fatalf("replica %d src %v", i, f.Src)
		}
	}
}

func TestGeneratedScenarioRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	flows, next := StorageReconstruction(StorageReconstructionConfig{
		Fragments:     4,
		FragmentBytes: 500 * units.KB,
		Orchestrator:  HostRef{DC: 1, Host: 0},
		Via:           &ProxyRef{Scheme: ProxyStreamlined, At: HostRef{DC: 0, Host: 63}},
	}, 1)
	qflows, _ := QuorumSync(QuorumSyncConfig{
		Replicas:   3,
		WriteBytes: 200 * units.KB,
		Primary:    HostRef{DC: 1, Host: 5},
	}, next)
	sc := Scenario{Flows: append(flows, qflows...), Seed: 11}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("generated scenario incomplete")
	}
	if len(res.Done) != 7 {
		t.Fatalf("done = %d flows", len(res.Done))
	}
}

func TestBackgroundTraffic(t *testing.T) {
	reserved := map[HostRef]bool{{DC: 0, Host: 0}: true, {DC: 1, Host: 0}: true}
	flows, next := BackgroundTraffic(20, units.MB, 64, reserved, 5, 100)
	if len(flows) != 20 || next != 120 {
		t.Fatalf("flows=%d next=%d", len(flows), next)
	}
	for _, f := range flows {
		if reserved[f.Src] || reserved[f.Dst] {
			t.Fatalf("background flow uses reserved host: %+v", f)
		}
		if f.Src == f.Dst {
			t.Fatal("self-flow generated")
		}
	}
}

// TestProxyBenefitSurvivesBackgroundTraffic runs an incast with cross
// traffic sharing the fabric: the streamlined proxy must still beat the
// direct route decisively.
func TestProxyBenefitSurvivesBackgroundTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	reserved := map[HostRef]bool{{DC: 1, Host: 0}: true, {DC: 0, Host: 63}: true}
	for i := 0; i < 8; i++ {
		reserved[HostRef{DC: 0, Host: i}] = true
	}
	run := func(proxied bool) units.Duration {
		var incast []FlowSpec
		for s := 0; s < 8; s++ {
			f := FlowSpec{
				ID:    netsim.FlowID(s + 1),
				Src:   HostRef{DC: 0, Host: s},
				Dst:   HostRef{DC: 1, Host: 0},
				Bytes: 5 * units.MB,
			}
			if proxied {
				f.Via = &ProxyRef{Scheme: ProxyStreamlined, At: HostRef{DC: 0, Host: 63}}
			}
			incast = append(incast, f)
		}
		bg, _ := BackgroundTraffic(24, 2*units.MB, 64, reserved, 9, 1000)
		res, err := RunScenario(Scenario{Flows: append(incast, bg...), Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		var last units.Duration
		for id, d := range res.Done {
			if id <= 8 && d > last {
				last = d
			}
		}
		return last
	}
	direct := run(false)
	proxied := run(true)
	if proxied >= direct/2 {
		t.Fatalf("under background load: proxied %v vs direct %v — benefit lost", proxied, direct)
	}
}

func TestScenarioFlowIDCollisionWithRelayLegRejected(t *testing.T) {
	sc := Scenario{Flows: []FlowSpec{
		{ID: netsim.FlowID(1 << 21), Src: HostRef{0, 0}, Dst: HostRef{1, 0}, Bytes: 1},
	}}
	if err := sc.Validate(); err == nil {
		t.Fatal("IDs >= 1<<20 must be rejected (reserved for relay legs)")
	}
}
