package workload

// The adaptive scheme: flows start on the direct path under a small paced
// window while an online controller (internal/control) watches the two
// candidate bottlenecks and both paths' probe-measured quality. The moment
// the announced epoch provably overflows the receiver ToR — or the queue
// itself shows onset — the controller steers the epoch onto the streamlined
// proxy mid-flight. Re-steering is suffix-based when safe: each direct leg
// is frozen (its in-flight bytes finish on the direct path, with loss
// recovery) and only the un-sent suffix is re-homed, with a buffer-safe
// subset of flows kept direct so both paths carry payload in parallel. A
// degraded proxy (probe loss, queueing excess, its own queue onset) steers
// flows back onto the direct path, chaos.go-style. Every decision advances
// on virtual time from seed-derived randomness, so adaptive runs are as
// deterministic as static ones.

import (
	"fmt"

	"incastproxy/internal/control"
	"incastproxy/internal/faults"
	"incastproxy/internal/netsim"
	"incastproxy/internal/proxy"
	"incastproxy/internal/rng"
	"incastproxy/internal/sim"
	"incastproxy/internal/stats"
	"incastproxy/internal/topo"
	"incastproxy/internal/transport"
	"incastproxy/internal/units"
)

// crossFlowBase offsets cross-traffic flow IDs above every other ID family
// (data flows low, naive down-flows at 1<<20, re-steer legs at odd multiples
// of 1<<21, probes at control.ProbeFlowBase = 1<<22).
const crossFlowBase netsim.FlowID = 1 << 23

// adaptiveFlowID returns the flow ID of leg ord of flow i: the base ID for
// the first leg, then odd multiples of 1<<21 — a family disjoint from the
// probe flows (2<<21) and the cross-traffic flows (4<<21 and up).
func adaptiveFlowID(i, ord int) netsim.FlowID {
	f := netsim.FlowID(i + 1)
	if ord > 0 {
		f += netsim.FlowID(2*ord-1) << 21
	}
	return f
}

// startCrossTraffic launches spec.CrossTraffic background flows from idle
// DC0 hosts into the proxy host. Their senders are deliberately kept out of
// the run's aggregate sender stats: they are environment, not workload.
func startCrossTraffic(e *sim.Engine, net *topo.Network, spec Spec,
	proxyHost *netsim.Host, ro *runObs) error {
	ct := spec.CrossTraffic
	if ct.Flows <= 0 {
		return nil
	}
	if ct.Bytes <= 0 {
		return fmt.Errorf("workload: cross-traffic flows need Bytes > 0")
	}
	hostsDC0 := net.Hosts[0]
	avail := hostsDC0[spec.Degree : len(hostsDC0)-1]
	if ct.Flows > len(avail) {
		return fmt.Errorf("workload: %d cross-traffic flows need idle hosts, only %d available",
			ct.Flows, len(avail))
	}
	for j := 0; j < ct.Flows; j++ {
		snd := avail[j]
		flow := crossFlowBase + netsim.FlowID(j+1)
		rtt := net.PathRTT(snd, proxyHost, spec.MSS, netsim.ControlSize)
		iw := net.BottleneckRate(snd, proxyHost).BDP(rtt)
		c := transport.Config{
			MSS:         spec.MSS,
			InitWindow:  iw,
			ExpectedRTT: rtt,
			InitRTO:     3*rtt + spec.Topo.LinkRate.TransmitTime(units.ByteSize(ct.Flows)*iw),
		}
		r := transport.NewReceiver(proxyHost, flow, snd.ID(), ct.Bytes, nil)
		proxyHost.Bind(flow, r)
		s := transport.NewSender(snd, flow, proxyHost.ID(), 0, ct.Bytes, c, nil)
		s.Attach(ro.tel, fmt.Sprintf("cross %d", flow))
		snd.Bind(flow, s)
		if at := ct.StartAt + units.Duration(j)*ct.Stagger; at > 0 {
			e.Schedule(units.Time(at), s.Start)
		} else {
			s.Start(e)
		}
	}
	return nil
}

// injectProxyFaults arms the spec's proxy-crash fault, if any.
func injectProxyFaults(e *sim.Engine, spec Spec, proxyHost *netsim.Host,
	seed int64, ro *runObs) *faults.Injector {
	if spec.ProxyCrashAt <= 0 {
		return nil
	}
	inj := faults.New(e, seed)
	inj.SetTracer(ro.tracer)
	inj.Instrument(ro.reg)
	inj.CrashHost(proxyHost, units.Time(spec.ProxyCrashAt), spec.ProxyRestartAfter)
	return inj
}

// runAdaptive simulates one incast under the adaptive control plane.
func runAdaptive(spec Spec, seed int64) (RunResult, error) {
	e := sim.New()
	cfg := spec.Topo
	cfg.Seed = seed
	// The proxy path must trim from the first steered byte. Trimming in
	// the sending DC is the streamlined scheme's operating mode and does
	// not hurt the direct phase: its congestion point is the remote ToR.
	cfg.TrimDC[0] = true
	if spec.TrimReceiverDC {
		cfg.TrimDC[1] = true
	}
	net := topo.Build(e, cfg)
	if spec.OnBuild != nil {
		spec.OnBuild(net, e)
	}

	cc := spec.Control
	defaulted := cc.SamplePeriod == 0
	if defaulted {
		cc = control.DefaultConfig()
	}
	if cc.OverflowBytes == 0 {
		cc.OverflowBytes = cfg.TorQueue.Capacity
	}
	if defaulted {
		// Tune the depth backstop to this fabric: the queue must be well on
		// its way past the buffer budget before the depth arm declares onset
		// (announcements catch the first-window overflow long before any
		// queue shows it, so this arm only backstops unannounced traffic).
		// An epoch that fits the buffer transiently fills a good chunk of it
		// while the burst lands; onset below that would steer epochs the
		// direct path handles fine.
		cc.OnsetDepth = cc.OverflowBytes * 7 / 10
		if cc.DecayDepth >= cc.OnsetDepth {
			cc.DecayDepth = cc.OnsetDepth / 8
		}
	}
	if err := cc.Validate(); err != nil {
		return RunResult{}, err
	}

	hostsDC0 := net.Hosts[0]
	recv := net.Hosts[1][0]
	proxyHost := hostsDC0[len(hostsDC0)-1]
	senders := hostsDC0[:spec.Degree]
	shares := splitBytes(spec.TotalBytes, spec.Degree)
	src := rng.New(seed)
	until := units.Time(spec.MaxSimTime)

	var allSenders []*transport.Sender
	var allRxs []*transport.Receiver
	ro := newRunObs(spec.Obs)
	ro.wire(e, net, &allSenders, &allRxs)
	ro.watchPorts(e, until, map[string]*netsim.Port{
		"recv-tor":  net.DownToRPort(recv),
		"proxy-tor": net.DownToRPort(proxyHost),
	})

	ctrl := control.NewController(cc, ro.reg)
	// The controller records its own decision timeline: detector
	// onsets/decays and executed steers land on the trace's "control"
	// track, interleaved with the flow events.
	ctrl.SetTracer(ro.tracer)
	recvSig := control.WatchPort("recv-tor", net.DownToRPort(recv), cc.HalfLife)
	proxySig := control.WatchPort("proxy-tor", net.DownToRPort(proxyHost), cc.HalfLife)
	ctrl.WatchReceiverQueue(recvSig)
	ctrl.WatchProxyQueue(proxySig)

	// Path probers: tiny data-band echo packets. The direct probe rides
	// the WAN to the receiver; the proxy probe senses the proxy ToR and
	// proxy liveness at intra-DC RTT. Timeouts scale with each path's base
	// RTT but must ride above the worst physically possible queueing — a
	// probe stuck behind a full bottleneck buffer is slow, not lost, and
	// counting it lost would declare the proxy dead the moment our own
	// steered epoch fills its ToR queue.
	drain := cfg.LinkRate.TransmitTime(cc.OverflowBytes)
	probeTimeout := func(rtt units.Duration) units.Duration {
		t := 4 * rtt
		if floor := rtt + 2*drain; t < floor {
			t = floor
		}
		if t > cc.ProbeTimeout {
			t = cc.ProbeTimeout
		}
		return t
	}
	directPathRTT := net.PathRTT(senders[0], recv, spec.MSS, netsim.ControlSize)
	proxyPathRTT := net.PathRTT(senders[0], proxyHost, spec.MSS, netsim.ControlSize)
	control.BindEcho(recv, control.ProbeFlowBase)
	control.NewProber(senders[0], recv.ID(), control.ProbeFlowBase,
		ctrl.DirectEstimator(), cc.ProbeEvery, probeTimeout(directPathRTT),
		src.Split(1001)).Start(e, until)
	control.BindEcho(proxyHost, control.ProbeFlowBase+1)
	control.NewProber(senders[0], proxyHost.ID(), control.ProbeFlowBase+1,
		ctrl.ProxyEstimator(), cc.ProbeEvery, probeTimeout(proxyPathRTT),
		src.Split(1002)).Start(e, until)

	iwScale := spec.IWScale
	if iwScale <= 0 {
		iwScale = 1
	}
	scaleIW := func(bdp units.ByteSize) units.ByteSize {
		return units.ByteSize(float64(bdp) * iwScale)
	}
	initRTO := func(rtt units.Duration, iw units.ByteSize) units.Duration {
		return 3*rtt + cfg.LinkRate.TransmitTime(units.ByteSize(spec.Degree)*iw)
	}
	mkCfg := func(rtt units.Duration, iw units.ByteSize) transport.Config {
		return transport.Config{
			MSS:         spec.MSS,
			InitWindow:  iw,
			ExpectedRTT: rtt,
			InitRTO:     initRTO(rtt, iw),
			GeminiMode:  spec.Gemini,
		}
	}
	directIW := make([]units.ByteSize, spec.Degree)
	for i, snd := range senders {
		rtt := net.PathRTT(snd, recv, spec.MSS, netsim.ControlSize)
		directIW[i] = scaleIW(net.BottleneckRate(snd, recv).BDP(rtt))
	}

	// Per-flow epoch state: each flow is a chain of legs, and the flow
	// completes when every leg has delivered the bytes it owns. A frozen
	// direct leg owns exactly what it had sent at freeze time; a re-homed
	// leg owns the remainder.
	type leg struct {
		sender   *transport.Sender
		receiver *transport.Receiver
		need     units.ByteSize
		met      bool
	}
	type flowState struct {
		share    units.ByteSize
		legs     []*leg
		viaProxy bool
	}
	flows := make([]*flowState, spec.Degree)
	for i := range flows {
		flows[i] = &flowState{share: shares[i]}
	}
	flowDone := make([]bool, spec.Degree)
	completed := 0
	var lastDone units.Time
	var rehomedFlows, keptDirect int
	var rehomedBytes units.ByteSize

	// Flow completion times, receiver-side like the static paths: a flow is
	// done when its last leg's receiver finishes, regardless of which path
	// carried the suffix.
	fcts := stats.NewBounded(fctReservoirCap, seed)
	markDone := func(i int, at units.Time) {
		if flowDone[i] {
			return
		}
		flowDone[i] = true
		completed++
		if at > lastDone {
			lastDone = at
		}
		fcts.AddDuration(at.Sub(units.Time(spec.IncastDelay)))
		ctrl.FlowFinished(units.Duration(at)-spec.IncastDelay, flows[i].viaProxy)
		if completed == spec.Degree {
			e.Stop()
		}
	}
	checkFlow := func(i int, at units.Time) {
		for _, l := range flows[i].legs {
			if !l.met {
				return
			}
		}
		markDone(i, at)
	}

	// addLeg creates and starts leg number ord of flow i on the given
	// route. iwCap, when positive, caps the initial window (the paced
	// direct phase).
	addLeg := func(e *sim.Engine, i, ord int, bytes units.ByteSize, viaProxy bool, iwCap units.ByteSize) *leg {
		fs := flows[i]
		snd := senders[i]
		flow := adaptiveFlowID(i, ord)
		l := &leg{need: bytes}
		onDone := func(at units.Time) {
			l.met = true
			checkFlow(i, at)
		}
		var rtt units.Duration
		var s2 *transport.Sender
		var r *transport.Receiver
		if viaProxy {
			rtt = net.PathRTT(snd, proxyHost, spec.MSS, netsim.ControlSize) +
				net.PathRTT(proxyHost, recv, spec.MSS, netsim.ControlSize)
			p := proxy.NewStreamlined(proxyHost, flow, snd.ID(), recv.ID(),
				spec.ProxyProcDelay, src.Split(int64(flow)))
			p.NoEarlyNack = spec.NoEarlyFeedback
			proxyHost.Bind(flow, p)
			r = transport.NewReceiver(recv, flow, proxyHost.ID(), bytes, onDone)
			s2 = transport.NewSender(snd, flow, proxyHost.ID(), recv.ID(), bytes, mkCfg(rtt, capIW(scaleIW(net.BottleneckRate(snd, recv).BDP(rtt)), iwCap)), nil)
		} else {
			rtt = net.PathRTT(snd, recv, spec.MSS, netsim.ControlSize)
			r = transport.NewReceiver(recv, flow, snd.ID(), bytes, onDone)
			s2 = transport.NewSender(snd, flow, recv.ID(), 0, bytes, mkCfg(rtt, capIW(directIW[i], iwCap)), nil)
		}
		recv.Bind(flow, r)
		l.sender, l.receiver = s2, r
		if ord == 0 {
			s2.Attach(ro.tel, fmt.Sprintf("flow %d", flow))
		} else {
			s2.Attach(ro.tel, fmt.Sprintf("flow %d (resteer)", flow))
		}
		snd.Bind(flow, s2)
		allSenders = append(allSenders, s2)
		allRxs = append(allRxs, r)
		fs.legs = append(fs.legs, l)
		s2.Start(e)
		return l
	}

	// steerToProxy executes one direct->proxy upgrade across all live
	// direct flows. Returns whether anything actually moved (the
	// controller's veto protocol).
	steerToProxy := func(e *sim.Engine) bool {
		now := e.Now()
		// Suffix mode is safe when the receiver ToR has dropped nothing
		// and the bytes already exposed on the direct path comfortably
		// fit its buffer: the exposed prefix then completes on the
		// direct path while only un-sent suffixes move.
		var exposed units.ByteSize
		for i, fs := range flows {
			if flowDone[i] || fs.viaProxy || len(fs.legs) == 0 {
				continue
			}
			l := fs.legs[len(fs.legs)-1]
			exposed += l.sender.SentBytes() - l.receiver.Bytes()
		}
		safeBudget := units.ByteSize(cc.SafeDepthFrac * float64(cc.OverflowBytes))
		suffix := recvSig.Drops() == 0 && exposed+recvSig.RawDepth() < safeBudget

		moved := 0
		var kept units.ByteSize
		for i, fs := range flows {
			if flowDone[i] || fs.viaProxy || len(fs.legs) == 0 {
				continue
			}
			l := fs.legs[len(fs.legs)-1]
			// Partial rebalance: keep a prefix of flows direct while
			// their whole shares fit the buffer budget. The kept
			// subset streams over the otherwise-abandoned direct path
			// in parallel with the proxied rest.
			if suffix && kept+fs.share <= safeBudget {
				kept += fs.share
				keptDirect++
				l.sender.Boost(e, directIW[i])
				continue
			}
			var remaining units.ByteSize
			if suffix {
				sent := l.sender.SentBytes()
				remaining = l.need - sent
				if remaining <= 0 {
					continue // fully exposed; nothing left to move
				}
				l.sender.FreezeNew()
				l.need = sent
				if l.receiver.Bytes() >= l.need {
					l.met = true
				} else {
					li, ll := i, l
					l.receiver.OnData = func(e2 *sim.Engine, _ *netsim.Packet) {
						if !ll.met && ll.receiver.Bytes() >= ll.need {
							ll.met = true
							checkFlow(li, e2.Now())
						}
					}
				}
			} else {
				l.sender.Abort()
				got := l.receiver.Bytes()
				remaining = l.need - got
				l.need = got
				l.met = true
				if remaining <= 0 {
					checkFlow(i, now)
					continue
				}
			}
			fs.viaProxy = true
			addLeg(e, i, len(fs.legs), remaining, true, 0)
			rehomedFlows++
			rehomedBytes += remaining
			moved++
		}
		return moved > 0
	}

	// steerToDirect downgrades every proxied flow back onto the direct
	// path (chaos.go's conservative re-homing: the proxy path just proved
	// lossy, so nothing in flight is trusted).
	steerToDirect := func(e *sim.Engine) bool {
		now := e.Now()
		moved := 0
		for i, fs := range flows {
			if flowDone[i] || !fs.viaProxy {
				continue
			}
			l := fs.legs[len(fs.legs)-1]
			l.sender.Abort()
			got := l.receiver.Bytes()
			remaining := l.need - got
			l.need = got
			l.met = true
			fs.viaProxy = false
			if remaining <= 0 {
				checkFlow(i, now)
				continue
			}
			addLeg(e, i, len(fs.legs), remaining, false, 0)
			rehomedFlows++
			rehomedBytes += remaining
			moved++
		}
		return moved > 0
	}

	ctrl.OnSteer(func(e *sim.Engine, a control.Action, reason string) bool {
		// The controller's tracer records acted steers; this callback
		// only moves the flows.
		switch a {
		case control.SteerProxy:
			return steerToProxy(e)
		case control.SteerDirect:
			return steerToDirect(e)
		}
		return false
	})
	ctrl.Start(e, until)

	// The epoch itself: every flow announces its share to the controller
	// and starts direct under the paced window; pacing is released two
	// ticks later for any flow the controller left on the direct path.
	startEpoch := func(e *sim.Engine) {
		for i := range flows {
			ctrl.FlowStarted(flows[i].share)
			addLeg(e, i, 0, flows[i].share, false, cc.PaceWindow)
		}
		e.Schedule(e.Now().Add(2*cc.SamplePeriod), func(e *sim.Engine) {
			for i, fs := range flows {
				if flowDone[i] || fs.viaProxy || len(fs.legs) == 0 {
					continue
				}
				fs.legs[len(fs.legs)-1].sender.Boost(e, directIW[i])
			}
		})
	}
	if spec.IncastDelay > 0 {
		e.Schedule(units.Time(spec.IncastDelay), startEpoch)
	} else {
		startEpoch(e)
	}

	if err := startCrossTraffic(e, net, spec, proxyHost, ro); err != nil {
		return RunResult{}, err
	}
	injectProxyFaults(e, spec, proxyHost, seed, ro)

	e.RunUntil(until)

	rr := RunResult{
		ICT:       units.Duration(lastDone),
		Completed: completed == spec.Degree,
		Events:    e.Processed(),
	}
	for _, s := range allSenders {
		rr.Timeouts += s.Stats.Timeouts
		rr.Retransmits += s.Stats.Retransmits
		rr.Nacks += s.Stats.Nacks
		rr.MarkedAcks += s.Stats.MarkedAcks
		rr.PktsSent += s.Stats.PktsSent
	}
	rst := net.DownToRPort(recv).Stats()
	pst := net.DownToRPort(proxyHost).Stats()
	rr.ReceiverToRMaxQueue = rst.MaxBytes
	rr.ReceiverToRDrops = rst.Dropped
	rr.ProxyToRMaxQueue = pst.MaxBytes
	rr.ProxyToRTrims = pst.Trimmed
	rr.ProxyToRDrops = pst.Dropped
	rr.Steers = ctrl.Steers()
	rr.Onsets = ctrl.Detector().Onsets()
	rr.FinalRoute = ctrl.Route().String()
	rr.RehomedFlows = rehomedFlows
	rr.RehomedBytes = rehomedBytes
	rr.KeptDirect = keptDirect
	rr.FlowFCT = stats.SummarizeDurations(fcts)
	rr.Manifest = ro.manifest(seed, spec.fingerprintString())
	rr.Trace = ro.tracer

	if !rr.Completed {
		return rr, fmt.Errorf("adaptive incast incomplete after %v: %d/%d flows done",
			spec.MaxSimTime, completed, spec.Degree)
	}
	return rr, nil
}

// capIW caps an initial window at cap when cap is positive.
func capIW(iw, cap units.ByteSize) units.ByteSize {
	if cap > 0 && iw > cap {
		return cap
	}
	return iw
}
