package workload

import (
	"incastproxy/internal/netsim"
	"incastproxy/internal/rng"
	"incastproxy/internal/units"
)

// The generators below synthesize the §2 motivating workloads as flow sets
// for RunScenario. Each returns flows with IDs starting at firstID and
// reports the next free ID.

// MoEConfig describes a Mixture-of-Experts all-to-all exchange spanning two
// datacenters: experts 0..LocalExperts-1 live in DC0 and the rest in DC1.
// In each dispatch (and combine) phase every expert sends BytesPerPair to
// every other expert, so each expert is simultaneously the receiver of a
// (LocalExperts+RemoteExperts-1)-degree incast (§2: "each expert
// simultaneously receives inputs from many senders").
type MoEConfig struct {
	LocalExperts, RemoteExperts int
	BytesPerPair                units.ByteSize
	// Phases is the number of dispatch+combine rounds; Period separates
	// round starts (ML training synchronization is periodic, §6).
	Phases int
	Period units.Duration
	// ProxyCrossDC relays every cross-datacenter flow through the given
	// proxy scheme at the sending side's proxy host (one per DC).
	ProxyCrossDC *Scheme
	ProxyHost    [2]int // proxy host index per DC (used when ProxyCrossDC != nil)
}

// MoEAllToAll expands the config into flows.
func MoEAllToAll(cfg MoEConfig, firstID netsim.FlowID) ([]FlowSpec, netsim.FlowID) {
	expert := func(i int) HostRef {
		if i < cfg.LocalExperts {
			return HostRef{DC: 0, Host: i}
		}
		return HostRef{DC: 1, Host: i - cfg.LocalExperts}
	}
	total := cfg.LocalExperts + cfg.RemoteExperts
	var flows []FlowSpec
	id := firstID
	for phase := 0; phase < cfg.Phases; phase++ {
		start := units.Duration(phase) * cfg.Period
		for s := 0; s < total; s++ {
			for d := 0; d < total; d++ {
				if s == d {
					continue
				}
				f := FlowSpec{
					ID:    id,
					Src:   expert(s),
					Dst:   expert(d),
					Bytes: cfg.BytesPerPair,
					Start: start,
				}
				if cfg.ProxyCrossDC != nil && f.Src.DC != f.Dst.DC {
					f.Via = &ProxyRef{
						Scheme: *cfg.ProxyCrossDC,
						At:     HostRef{DC: f.Src.DC, Host: cfg.ProxyHost[f.Src.DC]},
					}
				}
				flows = append(flows, f)
				id++
			}
		}
	}
	return flows, id
}

// StorageReconstructionConfig models erasure-coded fragment reconstruction
// (§2): an orchestrator in DC1 reads Fragments surviving fragments of
// FragmentBytes each from servers in DC0 to rebuild a lost one — a single
// cross-datacenter incast of degree Fragments.
type StorageReconstructionConfig struct {
	Fragments     int
	FragmentBytes units.ByteSize
	Orchestrator  HostRef // typically in DC1
	Via           *ProxyRef
}

// StorageReconstruction expands the config into flows (senders are DC0
// hosts 0..Fragments-1, skipping the proxy host if it is among them).
func StorageReconstruction(cfg StorageReconstructionConfig, firstID netsim.FlowID) ([]FlowSpec, netsim.FlowID) {
	var flows []FlowSpec
	id := firstID
	host := 0
	for i := 0; i < cfg.Fragments; i++ {
		if cfg.Via != nil && cfg.Via.At.DC == 0 && host == cfg.Via.At.Host {
			host++ // the proxy host holds no fragment
		}
		flows = append(flows, FlowSpec{
			ID:    id,
			Src:   HostRef{DC: 0, Host: host},
			Dst:   cfg.Orchestrator,
			Bytes: cfg.FragmentBytes,
			Via:   cfg.Via,
		})
		id++
		host++
	}
	return flows, id
}

// QuorumSyncConfig models a strongly consistent geo-replicated store (§2):
// Replicas in DC0 push WriteBytes of log each to the primary in DC1 to
// acknowledge a quorum write — another cross-datacenter incast.
type QuorumSyncConfig struct {
	Replicas   int
	WriteBytes units.ByteSize
	Primary    HostRef
	Via        *ProxyRef
}

// BackgroundTraffic generates n random host-to-host flows (uniformly mixed
// intra- and inter-DC) that share the fabric with an experiment — the
// cross-traffic ablation asking whether the proxy benefit survives a busy
// network. Sources and destinations avoid the reserved hosts (typically
// the incast's senders/receiver/proxy).
func BackgroundTraffic(n int, bytes units.ByteSize, hostsPerDC int,
	reserved map[HostRef]bool, seed int64, firstID netsim.FlowID) ([]FlowSpec, netsim.FlowID) {
	src := rng.New(seed)
	pick := func() HostRef {
		for {
			h := HostRef{DC: src.Intn(2), Host: src.Intn(hostsPerDC)}
			if !reserved[h] {
				return h
			}
		}
	}
	var flows []FlowSpec
	id := firstID
	for i := 0; i < n; i++ {
		a := pick()
		b := pick()
		for b == a {
			b = pick()
		}
		flows = append(flows, FlowSpec{
			ID:    id,
			Src:   a,
			Dst:   b,
			Bytes: bytes,
			Start: units.Duration(src.Intn(1000)) * units.Microsecond,
		})
		id++
	}
	return flows, id
}

// QuorumSync expands the config into flows.
func QuorumSync(cfg QuorumSyncConfig, firstID netsim.FlowID) ([]FlowSpec, netsim.FlowID) {
	var flows []FlowSpec
	id := firstID
	host := 0
	for i := 0; i < cfg.Replicas; i++ {
		if cfg.Via != nil && cfg.Via.At.DC == 0 && host == cfg.Via.At.Host {
			host++
		}
		flows = append(flows, FlowSpec{
			ID:    id,
			Src:   HostRef{DC: 0, Host: host},
			Dst:   cfg.Primary,
			Bytes: cfg.WriteBytes,
			Via:   cfg.Via,
		})
		id++
		host++
	}
	return flows, id
}
