package workload

import (
	"fmt"

	"incastproxy/internal/netsim"
	"incastproxy/internal/proxy"
	"incastproxy/internal/rng"
	"incastproxy/internal/runner"
	"incastproxy/internal/sim"
	"incastproxy/internal/topo"
	"incastproxy/internal/transport"
	"incastproxy/internal/units"
)

// HostRef names a host by datacenter and index.
type HostRef struct {
	DC, Host int
}

func (h HostRef) String() string { return fmt.Sprintf("dc%d/h%d", h.DC, h.Host) }

// ProxyRef routes a flow through a proxy host with the given scheme.
type ProxyRef struct {
	Scheme Scheme
	At     HostRef
}

// FlowSpec is one point-to-point transfer inside a Scenario.
type FlowSpec struct {
	// ID must be unique; IDs above 1<<20 are reserved for internal
	// relay legs.
	ID    netsim.FlowID
	Src   HostRef
	Dst   HostRef
	Bytes units.ByteSize
	// Start is the flow's start offset from scenario time zero.
	Start units.Duration
	// Via, when non-nil, relays the flow through a proxy.
	Via *ProxyRef
}

// Scenario is an arbitrary multi-flow workload on the two-DC fabric: the
// general form behind the MoE, storage, and quorum examples, and behind
// orchestrated multi-incast experiments.
type Scenario struct {
	Topo  topo.Config // zero value: §4.1 default
	Flows []FlowSpec
	Seed  int64

	MSS            units.ByteSize
	ProxyProcDelay rng.Distribution
	MaxSimTime     units.Duration

	// OnBuild, if set, runs after the fabric is built and before flows
	// are wired (trace/telemetry hook).
	OnBuild func(*topo.Network, *sim.Engine)
}

// ScenarioResult reports per-flow completion times.
type ScenarioResult struct {
	Done      map[netsim.FlowID]units.Duration
	Completed bool
	// Makespan is the completion time of the last flow.
	Makespan units.Duration
	Events   uint64
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Topo.Spines == 0 {
		sc.Topo = topo.DefaultConfig()
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.MSS <= 0 {
		sc.MSS = transport.DefaultMSS
	}
	if sc.ProxyProcDelay == nil {
		sc.ProxyProcDelay = rng.Constant{D: 420 * units.Nanosecond}
	}
	if sc.MaxSimTime <= 0 {
		sc.MaxSimTime = 60 * units.Second
	}
	return sc
}

// Validate reports specification errors.
func (sc Scenario) Validate() error {
	sc = sc.withDefaults()
	hostsPerDC := sc.Topo.Leaves * sc.Topo.ServersPerLeaf
	okRef := func(h HostRef) bool {
		return (h.DC == 0 || h.DC == 1) && h.Host >= 0 && h.Host < hostsPerDC
	}
	seen := make(map[netsim.FlowID]bool, len(sc.Flows))
	if len(sc.Flows) == 0 {
		return fmt.Errorf("workload: scenario has no flows")
	}
	for i, f := range sc.Flows {
		switch {
		case f.ID == 0 || f.ID >= 1<<20:
			return fmt.Errorf("workload: flow %d: ID %d out of range [1, 1<<20)", i, f.ID)
		case seen[f.ID]:
			return fmt.Errorf("workload: duplicate flow ID %d", f.ID)
		case !okRef(f.Src) || !okRef(f.Dst):
			return fmt.Errorf("workload: flow %d: bad host ref %v->%v", i, f.Src, f.Dst)
		case f.Src == f.Dst:
			return fmt.Errorf("workload: flow %d: src == dst", i)
		case f.Bytes <= 0:
			return fmt.Errorf("workload: flow %d: no bytes", i)
		case f.Start < 0:
			return fmt.Errorf("workload: flow %d: negative start", i)
		case f.Via != nil && !okRef(f.Via.At):
			return fmt.Errorf("workload: flow %d: bad proxy ref %v", i, f.Via.At)
		case f.Via != nil && f.Via.Scheme == Baseline:
			return fmt.Errorf("workload: flow %d: Via with Baseline scheme is contradictory", i)
		}
		seen[f.ID] = true
	}
	return nil
}

// RunScenario simulates the scenario once.
func RunScenario(sc Scenario) (*ScenarioResult, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	e := sim.New()
	cfg := sc.Topo
	cfg.Seed = sc.Seed
	// Streamlined relaying needs trimming in each proxy's datacenter.
	for _, f := range sc.Flows {
		if f.Via != nil && f.Via.Scheme == ProxyStreamlined {
			cfg.TrimDC[f.Via.At.DC] = true
		}
	}
	net := topo.Build(e, cfg)
	if sc.OnBuild != nil {
		sc.OnBuild(net, e)
	}
	src := rng.New(sc.Seed)

	// Fan-in counts size each flow's initial RTO: the first-window burst
	// of every flow converging on the same destination (or proxy) queues
	// behind one bottleneck link.
	fanIn := make(map[HostRef]int)
	for _, f := range sc.Flows {
		fanIn[f.Dst]++
		if f.Via != nil {
			fanIn[f.Via.At]++
		}
	}

	res := &ScenarioResult{Done: make(map[netsim.FlowID]units.Duration, len(sc.Flows))}
	remaining := len(sc.Flows)
	for _, f := range sc.Flows {
		f := f
		done := func(at units.Time) {
			res.Done[f.ID] = units.Duration(at)
			if units.Duration(at) > res.Makespan {
				res.Makespan = units.Duration(at)
			}
			remaining--
			if remaining == 0 {
				e.Stop()
			}
		}
		deg := fanIn[f.Dst]
		if f.Via != nil && fanIn[f.Via.At] > deg {
			deg = fanIn[f.Via.At]
		}
		start := wireFlow(e, net, src, f, sc.MSS, sc.ProxyProcDelay, deg, done)
		e.Schedule(units.Time(f.Start), start)
	}

	e.RunUntil(units.Time(sc.MaxSimTime))
	res.Completed = remaining == 0
	res.Events = e.Processed()
	if !res.Completed {
		return res, fmt.Errorf("scenario incomplete after %v: %d flows unfinished",
			sc.MaxSimTime, remaining)
	}
	return res, nil
}

// RunScenarios simulates independent scenarios, fanned across parallel
// workers (0 or 1: serial; negative: one worker per CPU). Each scenario
// builds its own engine and RNG; results come back in the order of scs,
// byte-identical to running them serially. The error surfaced on failure is
// the lowest-indexed scenario's.
func RunScenarios(scs []Scenario, parallel int) ([]*ScenarioResult, error) {
	if parallel == 0 {
		parallel = 1
	}
	return runner.Map(parallel, len(scs), func(i int) (*ScenarioResult, error) {
		res, err := RunScenario(scs[i])
		if err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i, err)
		}
		return res, nil
	})
}

// wireFlow installs endpoints for one flow and returns its start event.
// fanIn is the number of flows converging on this flow's hottest hop,
// used to size the initial RTO above self-inflicted first-window queueing.
func wireFlow(e *sim.Engine, net *topo.Network, src *rng.Source, f FlowSpec,
	mss units.ByteSize, procDelay rng.Distribution, fanIn int, done func(units.Time)) sim.Event {
	sndHost := net.Hosts[f.Src.DC][f.Src.Host]
	rcvHost := net.Hosts[f.Dst.DC][f.Dst.Host]
	if fanIn < 1 {
		fanIn = 1
	}
	initRTO := func(rtt units.Duration, iw units.ByteSize) units.Duration {
		return 3*rtt + net.Cfg.LinkRate.TransmitTime(units.ByteSize(fanIn)*iw)
	}

	if f.Via == nil {
		rtt := net.PathRTT(sndHost, rcvHost, mss, netsim.ControlSize)
		iw := net.BottleneckRate(sndHost, rcvHost).BDP(rtt)
		c := transport.Config{MSS: mss, InitWindow: iw, ExpectedRTT: rtt, InitRTO: initRTO(rtt, iw)}
		r := transport.NewReceiver(rcvHost, f.ID, sndHost.ID(), f.Bytes, done)
		rcvHost.Bind(f.ID, r)
		s := transport.NewSender(sndHost, f.ID, rcvHost.ID(), 0, f.Bytes, c, nil)
		sndHost.Bind(f.ID, s)
		return func(e *sim.Engine) { s.Start(e) }
	}

	prxHost := net.Hosts[f.Via.At.DC][f.Via.At.Host]
	switch f.Via.Scheme {
	case ProxyStreamlined:
		rtt := net.PathRTT(sndHost, prxHost, mss, netsim.ControlSize) +
			net.PathRTT(prxHost, rcvHost, mss, netsim.ControlSize)
		iw := net.BottleneckRate(sndHost, rcvHost).BDP(rtt)
		c := transport.Config{MSS: mss, InitWindow: iw, ExpectedRTT: rtt, InitRTO: initRTO(rtt, iw)}
		p := proxy.NewStreamlined(prxHost, f.ID, sndHost.ID(), rcvHost.ID(), procDelay, src.Split(int64(f.ID)))
		prxHost.Bind(f.ID, p)
		r := transport.NewReceiver(rcvHost, f.ID, prxHost.ID(), f.Bytes, done)
		rcvHost.Bind(f.ID, r)
		s := transport.NewSender(sndHost, f.ID, prxHost.ID(), rcvHost.ID(), f.Bytes, c, nil)
		sndHost.Bind(f.ID, s)
		return func(e *sim.Engine) { s.Start(e) }

	default: // ProxyNaive
		downFlow := f.ID + netsim.FlowID(1)<<20
		rttUp := net.PathRTT(sndHost, prxHost, mss, netsim.ControlSize)
		rttDown := net.PathRTT(prxHost, rcvHost, mss, netsim.ControlSize)
		iwUp := net.BottleneckRate(sndHost, prxHost).BDP(rttUp)
		iwDown := net.BottleneckRate(prxHost, rcvHost).BDP(rttDown)
		upCfg := transport.Config{MSS: mss, InitWindow: iwUp, ExpectedRTT: rttUp, InitRTO: initRTO(rttUp, iwUp)}
		relay := proxy.NewNaive(prxHost, f.ID, downFlow, sndHost.ID(), rcvHost.ID(), proxy.NaiveConfig{
			Total: f.Bytes,
			DownCfg: transport.Config{
				MSS:         mss,
				InitWindow:  iwDown,
				ExpectedRTT: rttDown,
				InitRTO:     initRTO(rttDown, iwDown),
			},
		})
		r := transport.NewReceiver(rcvHost, downFlow, prxHost.ID(), f.Bytes, done)
		rcvHost.Bind(downFlow, r)
		s := transport.NewSender(sndHost, f.ID, prxHost.ID(), 0, f.Bytes, upCfg, nil)
		sndHost.Bind(f.ID, s)
		return func(e *sim.Engine) {
			relay.Start(e)
			s.Start(e)
		}
	}
}
