package workload

import (
	"reflect"
	"testing"

	"incastproxy/internal/faults"
	"incastproxy/internal/units"
)

// quickChaos crashes the primary proxy mid-incast of a degree-4, 8 MB
// streamlined run.
func quickChaos(mode FailoverMode) ChaosSpec {
	return ChaosSpec{
		Incast:         quickSpec(ProxyStreamlined),
		CrashAt:        500 * units.Microsecond,
		DetectionDelay: 300 * units.Microsecond,
		Mode:           mode,
	}
}

func crashCount(tl []faults.Event) int {
	n := 0
	for _, ev := range tl {
		if ev.Kind == faults.HostCrash && ev.Phase == faults.Injected {
			n++
		}
	}
	return n
}

func TestChaosValidate(t *testing.T) {
	bad := quickChaos(FailoverStandby)
	bad.CrashAt = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("CrashAt=0 must be rejected")
	}
	bad = quickChaos(FailoverStandby)
	bad.Incast.Degree = 63 // 64 hosts per DC: no room for primary + standby
	if err := bad.Validate(); err == nil {
		t.Fatal("degree leaving no standby host must be rejected")
	}
	bad.Mode = FailoverDirect // direct needs no standby host
	if err := bad.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChaosFailoverStandbyCompletes(t *testing.T) {
	res, err := RunChaos(quickChaos(FailoverStandby))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incast did not complete despite standby failover")
	}
	if res.FailedOver == 0 || res.RehomedBytes == 0 {
		t.Fatalf("crash mid-incast must strand flows: failedOver=%d rehomed=%v",
			res.FailedOver, res.RehomedBytes)
	}
	if crashCount(res.Timeline) != 1 {
		t.Fatalf("timeline = %v", res.Timeline)
	}
	// Completion cannot precede the controller's reaction.
	if res.ICT < 800*units.Microsecond {
		t.Fatalf("ICT %v earlier than crash+detection", res.ICT)
	}
}

func TestChaosFailoverDirectCompletes(t *testing.T) {
	res, err := RunChaos(quickChaos(FailoverDirect))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.FailedOver == 0 {
		t.Fatalf("completed=%v failedOver=%d", res.Completed, res.FailedOver)
	}
}

// FCT under proxy failure must stay bounded relative to the no-proxy
// baseline: failover pays the detection delay plus (at worst) a baseline-like
// retransfer of the remaining bytes, not an open-ended stall.
func TestChaosFCTBoundedVsBaseline(t *testing.T) {
	base, err := Run(quickSpec(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	baseICT := base.Runs[0].ICT

	for _, mode := range []FailoverMode{FailoverStandby, FailoverDirect} {
		res, err := RunChaos(quickChaos(mode))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		spec := quickChaos(mode)
		bound := spec.CrashAt + spec.DetectionDelay + 3*baseICT
		if res.ICT > bound {
			t.Fatalf("%v: chaos ICT %v exceeds bound %v (baseline %v)",
				mode, res.ICT, bound, baseICT)
		}
	}
}

func TestChaosNoFailoverRecoversOnRestart(t *testing.T) {
	spec := quickChaos(FailoverNone)
	spec.RestartAfter = 2 * units.Millisecond
	res, err := RunChaos(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("flows must recover by RTO once the proxy restarts")
	}
	if res.FailedOver != 0 {
		t.Fatalf("mode none re-homed %d flows", res.FailedOver)
	}
	if res.ICT < spec.CrashAt+spec.RestartAfter {
		t.Fatalf("ICT %v precedes the restart", res.ICT)
	}
	if res.Timeouts == 0 {
		t.Fatal("the outage must be bridged by RTOs")
	}
}

func TestChaosNoFailoverNoRestartStalls(t *testing.T) {
	spec := quickChaos(FailoverNone)
	spec.Incast.MaxSimTime = 2 * units.Second // don't wait 60 simulated seconds
	res, err := RunChaos(spec)
	if err == nil || res.Completed {
		t.Fatalf("dead proxy with no failover completed: %+v", res.RunResult)
	}
}

func TestChaosDeterministicPerSeed(t *testing.T) {
	run := func() *ChaosResult {
		spec := quickChaos(FailoverStandby)
		spec.BlackholeAt = 300 * units.Microsecond
		spec.BlackholeDur = 200 * units.Microsecond
		res, err := RunChaos(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ICT != b.ICT || a.FailedOver != b.FailedOver || a.RehomedBytes != b.RehomedBytes ||
		a.PktsSent != b.PktsSent || a.Events != b.Events {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.RunResult, b.RunResult)
	}
	if !reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Fatalf("timelines diverged:\n%v\n%v", a.Timeline, b.Timeline)
	}
}
