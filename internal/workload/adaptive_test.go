package workload

import (
	"testing"

	"incastproxy/internal/control"
	"incastproxy/internal/units"
)

// runOne is a convenience wrapper: one run, returning its RunResult.
func runOne(t *testing.T, spec Spec) RunResult {
	t.Helper()
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res.Runs[0]
}

// An 8 MB incast fits the 17 MB receiver ToR buffer: the controller must
// leave the epoch alone, and the paced start must cost almost nothing
// against the plain baseline.
func TestAdaptiveQuietEpochStaysDirect(t *testing.T) {
	ad := runOne(t, quickSpec(SchemeAdaptive))
	if !ad.Completed {
		t.Fatal("adaptive incast incomplete")
	}
	if len(ad.Steers) != 0 {
		t.Fatalf("quiet epoch should not steer, got %+v", ad.Steers)
	}
	if ad.FinalRoute != "direct" {
		t.Fatalf("final route = %s, want direct", ad.FinalRoute)
	}
	if spec := quickSpec(SchemeAdaptive); ad.FlowFCT.N != spec.Degree || ad.FlowFCT.Max <= 0 || ad.FlowFCT.Max > ad.ICT {
		t.Fatalf("adaptive FlowFCT not populated: %+v (degree %d, ICT %v)", ad.FlowFCT, spec.Degree, ad.ICT)
	}
	base := runOne(t, quickSpec(Baseline))
	slack := 300 * units.Microsecond // pacing release + controller tick grain
	if ad.ICT > base.ICT+slack {
		t.Fatalf("adaptive quiet ICT %v much worse than baseline %v", ad.ICT, base.ICT)
	}
}

// A 40 MB incast announced at the controller overflows the 17 MB buffer
// budget before any queue shows congestion: the controller must steer the
// epoch onto the proxy mid-flight, re-homing un-sent suffixes and keeping a
// buffer-safe subset direct.
func TestAdaptiveSteersMidEpochOnOverflow(t *testing.T) {
	spec := quickSpec(SchemeAdaptive)
	spec.Degree = 8
	spec.TotalBytes = 40 * units.MB
	ad := runOne(t, spec)
	if !ad.Completed {
		t.Fatal("adaptive incast incomplete")
	}
	if len(ad.Steers) == 0 || ad.Steers[0].Action != control.SteerProxy {
		t.Fatalf("expected a steer-proxy decision, got %+v", ad.Steers)
	}
	if ad.Steers[0].Reason != "announced-overflow" {
		t.Fatalf("steer reason = %q, want announced-overflow (notification-driven onset)",
			ad.Steers[0].Reason)
	}
	if ad.RehomedFlows == 0 || ad.RehomedBytes == 0 {
		t.Fatalf("steer moved nothing: %d flows, %v bytes", ad.RehomedFlows, ad.RehomedBytes)
	}
	if ad.KeptDirect == 0 {
		t.Fatalf("partial rebalance kept no flow direct")
	}
	// The mid-epoch switch must be visible in the controller metrics.
	snap := ad.Manifest.Metrics
	if v, ok := snap.Get("control_steer_proxy_total"); !ok || v < 1 {
		t.Fatalf("control_steer_proxy_total missing or zero: %d", v)
	}
	if v, ok := snap.Get("control_onsets_total"); !ok || v < 1 {
		t.Fatalf("control_onsets_total missing or zero: %d", v)
	}

	// It must land in static-streamlined territory, far from the
	// baseline's timeout-dominated collapse.
	st := runOne(t, Spec{Scheme: ProxyStreamlined, Degree: 8, TotalBytes: 40 * units.MB, Seed: spec.Seed})
	base := runOne(t, Spec{Scheme: Baseline, Degree: 8, TotalBytes: 40 * units.MB, Seed: spec.Seed})
	if ad.ICT >= base.ICT {
		t.Fatalf("adaptive %v not better than baseline %v", ad.ICT, base.ICT)
	}
	if float64(ad.ICT) > 1.05*float64(st.ICT) {
		t.Fatalf("adaptive %v more than 5%% worse than static streamlined %v", ad.ICT, st.ICT)
	}
}

// Cross traffic hammering the proxy ToR makes the proxy path the slow one.
// The incast itself fits the receiver buffer, so the right call is to stay
// direct — which the static streamlined scheme cannot do.
func TestAdaptiveAvoidsCongestedProxy(t *testing.T) {
	mk := func(s Scheme) Spec {
		return Spec{
			Scheme:     s,
			Degree:     4,
			TotalBytes: 8 * units.MB,
			Seed:       42,
			CrossTraffic: CrossTrafficSpec{
				Flows: 2,
				Bytes: 40 * units.MB,
			},
			IncastDelay: 2 * units.Millisecond,
		}
	}
	ad := runOne(t, mk(SchemeAdaptive))
	if !ad.Completed {
		t.Fatal("adaptive incast incomplete")
	}
	if ad.FinalRoute != "direct" {
		t.Fatalf("final route = %s, want direct (proxy is congested)", ad.FinalRoute)
	}
	st := runOne(t, mk(ProxyStreamlined))
	if ad.ICT >= st.ICT {
		t.Fatalf("adaptive %v should beat static streamlined %v under proxy cross traffic",
			ad.ICT, st.ICT)
	}
}

// The proxy dies mid-transfer with no restart. The static streamlined scheme
// is stuck behind sender RTOs against a dead host; the adaptive controller
// sees the probe losses within a few probe intervals and steers the epoch
// back onto the direct path, completing the incast.
func TestAdaptiveFailsOverDeadProxy(t *testing.T) {
	spec := quickSpec(SchemeAdaptive)
	spec.Degree = 8
	spec.TotalBytes = 40 * units.MB
	spec.ProxyCrashAt = units.Millisecond
	spec.MaxSimTime = 2 * units.Second
	ad := runOne(t, spec)
	if !ad.Completed {
		t.Fatal("adaptive incast incomplete despite failover")
	}
	var sawBack bool
	for _, s := range ad.Steers {
		if s.Action == control.SteerDirect {
			sawBack = true
		}
	}
	if !sawBack {
		t.Fatalf("expected a steer-direct failover, got %+v", ad.Steers)
	}
	if ad.FinalRoute != "direct" {
		t.Fatalf("final route = %s, want direct after proxy death", ad.FinalRoute)
	}

	// Static streamlined with the same fault can only finish by RTOing
	// into a restarted proxy; without a restart it must not finish.
	st := Spec{Scheme: ProxyStreamlined, Degree: 8, TotalBytes: 40 * units.MB,
		Seed: spec.Seed, ProxyCrashAt: units.Millisecond, MaxSimTime: 2 * units.Second}
	if _, err := Run(st); err == nil {
		t.Fatal("static streamlined should not complete against a dead proxy")
	}
}

// The acceptance sweep: across the §4.1 incast sweep the adaptive policy
// must track the best of {baseline, static streamlined} within 5% at every
// point, and beat static outright on at least one point by switching
// mid-epoch.
func TestAdaptiveSweepTracksBestStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds of wall time")
	}
	type point struct {
		degree int
		total  units.ByteSize
	}
	points := []point{
		{4, 8 * units.MB},   // fits the buffer: direct is fine
		{8, 24 * units.MB},  // moderate overflow
		{8, 40 * units.MB},  // §4.2-style heavy overflow
		{16, 40 * units.MB}, // wide fan-in
	}
	const runs = 3
	p99 := func(s Scheme, p point) (units.Duration, RunResult) {
		res, err := Run(Spec{Scheme: s, Degree: p.degree, TotalBytes: p.total,
			Runs: runs, Seed: 7})
		if err != nil {
			t.Fatalf("%v %+v: %v", s, p, err)
		}
		var worst units.Duration
		for _, rr := range res.Runs {
			if rr.ICT > worst {
				worst = rr.ICT
			}
		}
		return worst, res.Runs[0]
	}
	beatStatic := false
	for _, p := range points {
		ad, first := p99(SchemeAdaptive, p)
		st, _ := p99(ProxyStreamlined, p)
		base, _ := p99(Baseline, p)
		best := st
		if base < best {
			best = base
		}
		if float64(ad) > 1.05*float64(best) {
			t.Errorf("point %+v: adaptive p99 %v exceeds best static %v by more than 5%%",
				p, ad, best)
		}
		if ad < st && len(first.Steers) > 0 {
			beatStatic = true
		}
		t.Logf("point %+v: adaptive %v static %v baseline %v steers %d",
			p, ad, st, base, len(first.Steers))
	}
	if !beatStatic {
		t.Error("adaptive never beat static streamlined via a mid-epoch switch")
	}
}
