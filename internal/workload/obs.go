package workload

// Per-run observability wiring shared by the incast and chaos runners: each
// run gets its own registry (multi-run specs would otherwise double-count)
// and, when requested, its own tracer. The resulting manifest — seed, config
// fingerprint, full metric snapshot — rides back on the RunResult so figures
// and result files are self-describing.

import (
	"fmt"
	"sort"

	"incastproxy/internal/netsim"
	"incastproxy/internal/obs"
	"incastproxy/internal/sim"
	"incastproxy/internal/topo"
	"incastproxy/internal/transport"
	"incastproxy/internal/units"
)

// ObsConfig controls a run's observability. The zero value (and a nil
// pointer) means: metrics registry on, tracing off.
type ObsConfig struct {
	// Disable turns the metrics registry off entirely. Used by benchmarks
	// measuring the uninstrumented baseline; everything downstream
	// (Manifest, Trace) is nil.
	Disable bool
	// Trace records flow lifecycle and queue events to a Tracer returned
	// on RunResult.Trace, exportable as CSV or Chrome trace JSON.
	Trace bool
	// QueueSampleEvery sets the virtual-time period of down-ToR queue
	// occupancy samples on the trace's counter tracks (default 50 us;
	// only active when Trace is set).
	QueueSampleEvery units.Duration
}

func (oc *ObsConfig) withDefaults() ObsConfig {
	var c ObsConfig
	if oc != nil {
		c = *oc
	}
	if c.QueueSampleEvery <= 0 {
		c.QueueSampleEvery = 50 * units.Microsecond
	}
	return c
}

// runObs bundles one run's live observability objects.
type runObs struct {
	cfg    ObsConfig
	reg    *obs.Registry // nil when disabled
	tracer *obs.Tracer   // nil unless tracing
	tel    *transport.Telemetry
}

// newRunObs builds the per-run registry and tracer per the config.
func newRunObs(oc *ObsConfig) *runObs {
	ro := &runObs{cfg: oc.withDefaults()}
	if ro.cfg.Disable {
		return ro // all-nil: every recording call no-ops
	}
	ro.reg = obs.NewRegistry()
	if ro.cfg.Trace {
		ro.tracer = obs.NewTracer()
	}
	return ro
}

// wire instruments the engine, the fabric, and the (growing) sender and
// receiver slices. Call once after topo.Build, before flows start.
func (ro *runObs) wire(e *sim.Engine, net *topo.Network,
	senders *[]*transport.Sender, receivers *[]*transport.Receiver) {
	e.Instrument(ro.reg)
	net.Instrument(ro.reg)
	net.SetTracer(ro.tracer)
	ro.tel = transport.NewTelemetry(ro.reg, ro.tracer)
	transport.InstrumentSenders(ro.reg, senders)
	transport.InstrumentReceivers(ro.reg, receivers)
}

// wireSharded is wire for the sharded runtime: the shard group (rather than
// one engine) exports the sim_* series. Every value the group exports is a
// pure function of the simulation content — not of the partition — so
// manifests stay byte-identical across shard and worker counts.
func (ro *runObs) wireSharded(g *sim.ShardGroup, net *topo.Network,
	senders *[]*transport.Sender, receivers *[]*transport.Receiver) {
	g.Instrument(ro.reg)
	net.Instrument(ro.reg)
	net.SetTracer(ro.tracer)
	ro.tel = transport.NewTelemetry(ro.reg, ro.tracer)
	transport.InstrumentSenders(ro.reg, senders)
	transport.InstrumentReceivers(ro.reg, receivers)
}

// watchPorts exports the named ports' per-port queue counters and, when
// tracing, starts a periodic occupancy sampler on each (counter tracks named
// "queue <name>"). until bounds the sampler in virtual time.
func (ro *runObs) watchPorts(e *sim.Engine, until units.Time, ports map[string]*netsim.Port) {
	// Sort the names: map iteration order is random, and the samplers'
	// initial Count events must land in the trace deterministically.
	names := make([]string, 0, len(ports))
	for name := range ports {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ports[name].Instrument(ro.reg)
	}
	if ro.tracer == nil {
		return
	}
	for _, name := range names {
		name, p := name, ports[name]
		var sample func(*sim.Engine)
		sample = func(e *sim.Engine) {
			ro.tracer.Count(e.Now(), "queue", "queue "+name, 0,
				float64(p.QueuedBytes()))
			if next := e.Now().Add(ro.cfg.QueueSampleEvery); next <= until {
				e.Schedule(next, sample)
			}
		}
		sample(e)
	}
}

// manifest assembles the run's manifest from the final registry state.
// Returns nil when the registry is disabled.
func (ro *runObs) manifest(seed int64, config string) *obs.Manifest {
	if ro.reg == nil {
		return nil
	}
	return obs.NewManifest(seed, config, ro.reg.Snapshot())
}

// fingerprintString renders the spec for config hashing. Func-valued and
// observability fields are excluded (funcs print as nondeterministic
// pointers, and turning tracing on must not change the config identity), as
// is the seed: it rides separately on Manifest.Seed, so runs of one
// configuration share a hash across seeds. Parallel, Shards, and
// ShardWorkers are excluded too: how many workers or event shards executed
// the trials is an execution detail, and serial, parallel, and sharded runs
// of one spec must produce byte-identical manifests.
func (s Spec) fingerprintString() string {
	s.OnBuild = nil
	s.ProxyProcDelay = nil
	s.Obs = nil
	s.Seed = 0
	s.Parallel = 0
	s.Shards = 0
	s.ShardWorkers = 0
	return fmt.Sprintf("%+v", s)
}

// fingerprintString renders the chaos spec for config hashing.
func (spec ChaosSpec) fingerprintString() string {
	spec.Incast.OnBuild = nil
	spec.Incast.ProxyProcDelay = nil
	spec.Incast.Obs = nil
	spec.Incast.Seed = 0
	spec.Incast.Parallel = 0
	spec.Incast.Shards = 0
	spec.Incast.ShardWorkers = 0
	return fmt.Sprintf("%+v", spec)
}
