package workload

// Chaos scenarios: the paper's evaluation assumes a healthy proxy, but the
// proxy is a single point on the data path. RunChaos crashes the proxy host
// mid-incast (plus optional inter-DC blackholes) and exercises the recovery
// story end to end: a failover controller detects the crash after a
// configurable delay, aborts the stranded senders, and re-homes each flow's
// remaining bytes onto a standby proxy in the same datacenter or straight
// onto the direct path. Every fault and every failover action is an engine
// event derived from the spec's seed, so a chaos run is exactly as
// reproducible as a clean one.

import (
	"fmt"

	"incastproxy/internal/faults"
	"incastproxy/internal/netsim"
	"incastproxy/internal/obs"
	"incastproxy/internal/proxy"
	"incastproxy/internal/rng"
	"incastproxy/internal/runner"
	"incastproxy/internal/sim"
	"incastproxy/internal/topo"
	"incastproxy/internal/transport"
	"incastproxy/internal/units"
)

// FailoverMode selects what the controller does with flows stranded on a
// crashed proxy.
type FailoverMode int

// The failover policies.
const (
	// FailoverNone leaves flows to RTO against the dead proxy; they
	// complete only if the proxy restarts.
	FailoverNone FailoverMode = iota
	// FailoverStandby re-homes flows through a standby proxy host in the
	// sending datacenter.
	FailoverStandby
	// FailoverDirect degrades flows to the direct path — the paper's
	// baseline: the shortest path, no longer the fastest choice but the
	// one that still exists.
	FailoverDirect
)

func (m FailoverMode) String() string {
	switch m {
	case FailoverNone:
		return "none"
	case FailoverStandby:
		return "standby"
	case FailoverDirect:
		return "direct"
	default:
		return fmt.Sprintf("FailoverMode(%d)", int(m))
	}
}

// ChaosSpec describes one proxied incast with injected proxy failure. The
// embedded incast always runs the streamlined scheme (the paper's headline
// design and the one whose proxy holds no byte state, so re-homing needs no
// state transfer).
type ChaosSpec struct {
	// Incast is the base experiment; Scheme is forced to ProxyStreamlined
	// and Runs to 1 (repeat by varying Seed).
	Incast Spec

	// CrashAt is when the primary proxy host dies.
	CrashAt units.Duration
	// RestartAfter revives it that long after the crash (0: stays dead).
	RestartAfter units.Duration
	// DetectionDelay is how long after the crash the failover controller
	// reacts (default 1 ms — a few health-probe intervals).
	DetectionDelay units.Duration
	// Mode picks the failover policy.
	Mode FailoverMode

	// BlackholeAt/BlackholeDur, when Dur > 0, additionally take every
	// inter-DC link down for the window — compound failure.
	BlackholeAt  units.Duration
	BlackholeDur units.Duration
}

// ChaosResult reports one chaos run.
type ChaosResult struct {
	RunResult
	// Timeline is the injector's executed fault edges.
	Timeline []faults.Event
	// FailedOver counts flows the controller re-homed; RehomedBytes is
	// the total remaining bytes it moved.
	FailedOver   int
	RehomedBytes units.ByteSize
}

func (spec ChaosSpec) withDefaults() ChaosSpec {
	spec.Incast.Scheme = ProxyStreamlined
	spec.Incast.Runs = 1
	spec.Incast = spec.Incast.withDefaults()
	if spec.DetectionDelay <= 0 {
		spec.DetectionDelay = units.Millisecond
	}
	return spec
}

// Validate reports specification errors.
func (spec ChaosSpec) Validate() error {
	spec = spec.withDefaults()
	if err := spec.Incast.Validate(); err != nil {
		return err
	}
	hostsPerDC := spec.Incast.Topo.Leaves * spec.Incast.Topo.ServersPerLeaf
	if spec.Mode == FailoverStandby && spec.Incast.Degree > hostsPerDC-2 {
		return fmt.Errorf("workload: degree %d leaves no host for a standby proxy (%d per DC)",
			spec.Incast.Degree, hostsPerDC)
	}
	if spec.CrashAt <= 0 {
		return fmt.Errorf("workload: CrashAt must be positive")
	}
	return nil
}

// RunChaosSeries repeats the chaos experiment runs times with per-run seeds
// derived from spec.Incast.Seed, fanned across parallel workers (0 or 1:
// serial; negative: one worker per CPU). Every trial gets its own engine,
// injector, and RNG; results come back in run order, byte-identical to a
// serial loop, with the lowest-numbered failing run's error surfaced first.
func RunChaosSeries(spec ChaosSpec, runs, parallel int) ([]*ChaosResult, error) {
	if runs <= 0 {
		runs = 1
	}
	if parallel == 0 {
		parallel = 1
	}
	base := spec.withDefaults()
	return runner.Map(parallel, runs, func(run int) (*ChaosResult, error) {
		sp := base
		sp.Incast.Seed = rng.DeriveSeed(base.Incast.Seed, int64(run))
		res, err := RunChaos(sp)
		if err != nil {
			return nil, fmt.Errorf("chaos run %d: %w", run, err)
		}
		return res, nil
	})
}

// RunChaos simulates one incast under proxy failure.
func RunChaos(spec ChaosSpec) (*ChaosResult, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := spec.Incast

	e := sim.New()
	cfg := s.Topo
	cfg.Seed = s.Seed
	cfg.TrimDC[0] = true
	net := topo.Build(e, cfg)
	if s.OnBuild != nil {
		s.OnBuild(net, e)
	}

	hostsDC0 := net.Hosts[0]
	recv := net.Hosts[1][0]
	primary := hostsDC0[len(hostsDC0)-1]
	standby := hostsDC0[len(hostsDC0)-2]
	senders := hostsDC0[:s.Degree]
	shares := splitBytes(s.TotalBytes, s.Degree)
	src := rng.New(s.Seed)

	// allSenders/allRxs grow as failover re-homes flows; the instrumented
	// collectors see the additions because the slice pointers are captured.
	var allSenders []*transport.Sender
	var allRxs []*transport.Receiver
	ro := newRunObs(s.Obs)
	ro.wire(e, net, &allSenders, &allRxs)
	ro.watchPorts(e, units.Time(s.MaxSimTime), map[string]*netsim.Port{
		"recv-tor":    net.DownToRPort(recv),
		"primary-tor": net.DownToRPort(primary),
		"standby-tor": net.DownToRPort(standby),
	})

	iwScale := s.IWScale
	if iwScale <= 0 {
		iwScale = 1
	}
	initRTO := func(rtt units.Duration, iw units.ByteSize) units.Duration {
		return 3*rtt + cfg.LinkRate.TransmitTime(units.ByteSize(s.Degree)*iw)
	}
	mkCfg := func(rtt units.Duration) transport.Config {
		iw := units.ByteSize(float64(net.BottleneckRate(senders[0], recv).BDP(rtt)) * iwScale)
		return transport.Config{
			MSS:         s.MSS,
			InitWindow:  iw,
			ExpectedRTT: rtt,
			InitRTO:     initRTO(rtt, iw),
			GeminiMode:  s.Gemini,
		}
	}

	flowDone := make([]bool, s.Degree)
	completedFlows := 0
	var lastDone units.Time
	markDone := func(i int, at units.Time) {
		if flowDone[i] {
			return
		}
		flowDone[i] = true
		completedFlows++
		if at > lastDone {
			lastDone = at
		}
		if completedFlows == s.Degree {
			e.Stop()
		}
	}

	// Original flows, streamlined through the primary proxy.
	txSenders := make([]*transport.Sender, s.Degree)
	receivers := make([]*transport.Receiver, s.Degree)
	for i, snd := range senders {
		i, flow := i, netsim.FlowID(i+1)
		rtt := net.PathRTT(snd, primary, s.MSS, netsim.ControlSize) +
			net.PathRTT(primary, recv, s.MSS, netsim.ControlSize)
		p := proxy.NewStreamlined(primary, flow, snd.ID(), recv.ID(),
			s.ProxyProcDelay, src.Split(int64(flow)))
		p.NoEarlyNack = s.NoEarlyFeedback
		primary.Bind(flow, p)
		r := transport.NewReceiver(recv, flow, primary.ID(), shares[i],
			func(at units.Time) { markDone(i, at) })
		recv.Bind(flow, r)
		snd2 := transport.NewSender(snd, flow, primary.ID(), recv.ID(), shares[i], mkCfg(rtt), nil)
		snd2.Attach(ro.tel, fmt.Sprintf("flow %d", flow))
		snd.Bind(flow, snd2)
		txSenders[i] = snd2
		receivers[i] = r
		allSenders = append(allSenders, snd2)
		allRxs = append(allRxs, r)
		snd2.Start(e)
	}

	// The faults.
	inj := faults.New(e, s.Seed)
	inj.SetTracer(ro.tracer)
	inj.Instrument(ro.reg)
	inj.CrashHost(primary, units.Time(spec.CrashAt), spec.RestartAfter)
	if spec.BlackholeDur > 0 {
		inj.BlackholePorts("inter-dc", net.InterDCPorts(),
			units.Time(spec.BlackholeAt), spec.BlackholeDur)
	}

	// The failover controller. Re-homed flows get offset IDs so the old
	// bindings (and any packets still in flight on them) stay inert.
	res := &ChaosResult{}
	newSenders := make([]*transport.Sender, 0, s.Degree)
	if spec.Mode != FailoverNone {
		e.Schedule(units.Time(spec.CrashAt+spec.DetectionDelay), func(e *sim.Engine) {
			for i := range txSenders {
				if flowDone[i] {
					continue
				}
				i := i
				txSenders[i].Abort()
				remaining := shares[i] - receivers[i].Bytes()
				if remaining <= 0 {
					// Every byte is delivered; the completion
					// callback just hasn't fired (it would have).
					continue
				}
				newFlow := netsim.FlowID(i+1) + netsim.FlowID(1)<<21
				snd := senders[i]
				var s2 *transport.Sender
				switch spec.Mode {
				case FailoverStandby:
					rtt := net.PathRTT(snd, standby, s.MSS, netsim.ControlSize) +
						net.PathRTT(standby, recv, s.MSS, netsim.ControlSize)
					p := proxy.NewStreamlined(standby, newFlow, snd.ID(), recv.ID(),
						s.ProxyProcDelay, src.Split(int64(newFlow)))
					p.NoEarlyNack = s.NoEarlyFeedback
					standby.Bind(newFlow, p)
					r := transport.NewReceiver(recv, newFlow, standby.ID(), remaining,
						func(at units.Time) { markDone(i, at) })
					recv.Bind(newFlow, r)
					allRxs = append(allRxs, r)
					s2 = transport.NewSender(snd, newFlow, standby.ID(), recv.ID(),
						remaining, mkCfg(rtt), nil)
				case FailoverDirect:
					rtt := net.PathRTT(snd, recv, s.MSS, netsim.ControlSize)
					r := transport.NewReceiver(recv, newFlow, snd.ID(), remaining,
						func(at units.Time) { markDone(i, at) })
					recv.Bind(newFlow, r)
					allRxs = append(allRxs, r)
					s2 = transport.NewSender(snd, newFlow, recv.ID(), 0,
						remaining, mkCfg(rtt), nil)
				}
				s2.Attach(ro.tel, fmt.Sprintf("flow %d (failover)", newFlow))
				snd.Bind(newFlow, s2)
				newSenders = append(newSenders, s2)
				allSenders = append(allSenders, s2)
				res.FailedOver++
				res.RehomedBytes += remaining
				ro.tracer.Instant(e.Now(), "failover", spec.Mode.String(), int64(newFlow),
					obs.Arg{Key: "remaining", Val: fmt.Sprintf("%d", remaining)})
				s2.Start(e)
			}
		})
	}

	e.RunUntil(units.Time(s.MaxSimTime))

	res.RunResult = RunResult{
		ICT:       units.Duration(lastDone),
		Completed: completedFlows == s.Degree,
		Events:    e.Processed(),
	}
	for _, snd := range append(append([]*transport.Sender(nil), txSenders...), newSenders...) {
		res.Timeouts += snd.Stats.Timeouts
		res.Retransmits += snd.Stats.Retransmits
		res.Nacks += snd.Stats.Nacks
		res.MarkedAcks += snd.Stats.MarkedAcks
		res.PktsSent += snd.Stats.PktsSent
	}
	rst := net.DownToRPort(recv).Stats()
	pst := net.DownToRPort(primary).Stats()
	res.ReceiverToRMaxQueue = rst.MaxBytes
	res.ReceiverToRDrops = rst.Dropped
	res.ProxyToRMaxQueue = pst.MaxBytes
	res.ProxyToRTrims = pst.Trimmed
	res.ProxyToRDrops = pst.Dropped
	res.Timeline = inj.Timeline()
	res.Manifest = ro.manifest(s.Seed, spec.fingerprintString())
	res.Trace = ro.tracer

	if !res.Completed {
		return res, fmt.Errorf("chaos incast incomplete after %v: %d/%d flows done (mode %v)",
			s.MaxSimTime, completedFlows, s.Degree, spec.Mode)
	}
	return res, nil
}
