package workload

import (
	"bytes"
	"testing"

	"incastproxy/internal/topo"
	"incastproxy/internal/units"
)

// shardSpec is a small fabric that still has real cross-DC contention: 2
// spines, 2 leaves, 4 servers per leaf per DC, 2 backbones.
func shardSpec(s Scheme) Spec {
	return Spec{
		Scheme:     s,
		Degree:     4,
		TotalBytes: 4 * units.MB,
		Runs:       1,
		Seed:       42,
		Topo: topo.Config{
			Spines:            2,
			Leaves:            2,
			ServersPerLeaf:    4,
			Backbones:         2,
			BackbonesPerSpine: 1,
			LinkRate:          25 * units.Gbps,
			IntraDelay:        units.Microsecond,
			InterDelay:        200 * units.Microsecond,
			TorQueue:          topo.DefaultConfig().TorQueue,
			BackboneQueue:     topo.DefaultConfig().BackboneQueue,
			Spray:             true,
		},
	}
}

// shardedArtifacts runs spec and extracts everything byte-identity covers:
// the numeric results, the manifest JSON, and the metric text.
func shardedArtifacts(t *testing.T, spec Spec) (RunResult, []byte, []byte) {
	t.Helper()
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	rr := res.Runs[0]
	if rr.Manifest == nil {
		t.Fatal("run produced no manifest")
	}
	var man, snap bytes.Buffer
	if err := rr.Manifest.WriteJSON(&man); err != nil {
		t.Fatal(err)
	}
	if err := rr.Manifest.Metrics.WriteText(&snap); err != nil {
		t.Fatal(err)
	}
	return rr, man.Bytes(), snap.Bytes()
}

func sameRunResult(a, b RunResult) bool {
	return a.ICT == b.ICT &&
		a.Completed == b.Completed &&
		a.Timeouts == b.Timeouts &&
		a.Retransmits == b.Retransmits &&
		a.Nacks == b.Nacks &&
		a.MarkedAcks == b.MarkedAcks &&
		a.PktsSent == b.PktsSent &&
		a.ReceiverToRMaxQueue == b.ReceiverToRMaxQueue &&
		a.ProxyToRMaxQueue == b.ProxyToRMaxQueue &&
		a.ReceiverToRDrops == b.ReceiverToRDrops &&
		a.ProxyToRTrims == b.ProxyToRTrims &&
		a.ProxyToRDrops == b.ProxyToRDrops &&
		a.ProxyFalseNacks == b.ProxyFalseNacks &&
		a.FlowFCT == b.FlowFCT &&
		a.Events == b.Events
}

// The tentpole acceptance test: for a given seed, a sharded run is
// byte-identical at every shard count and every worker count — numeric
// results, manifests, and metric snapshots all match the 1-shard reference.
func TestShardedIncastByteIdenticalAcrossShardCounts(t *testing.T) {
	for _, scheme := range []Scheme{Baseline, ProxyStreamlined, ProxyInferring} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			t.Parallel()
			ref := shardSpec(scheme)
			ref.Shards = 1
			refRR, refMan, refSnap := shardedArtifacts(t, ref)
			if refRR.Events == 0 || len(refSnap) == 0 {
				t.Fatal("reference run produced no work")
			}
			if refRR.FlowFCT.N != ref.Degree || refRR.FlowFCT.P99 == 0 {
				t.Fatalf("FlowFCT summary not populated: %+v", refRR.FlowFCT)
			}

			for _, tc := range []struct{ shards, workers int }{
				{2, 1}, {2, 2}, {4, 1}, {4, 4},
			} {
				spec := shardSpec(scheme)
				spec.Shards = tc.shards
				spec.ShardWorkers = tc.workers
				rr, man, snap := shardedArtifacts(t, spec)
				if !sameRunResult(refRR, rr) {
					t.Errorf("shards=%d workers=%d: results diverge\n ref: %+v\n got: %+v",
						tc.shards, tc.workers, refRR, rr)
				}
				if !bytes.Equal(refMan, man) {
					t.Errorf("shards=%d workers=%d: manifests differ", tc.shards, tc.workers)
				}
				if !bytes.Equal(refSnap, snap) {
					t.Errorf("shards=%d workers=%d: metric snapshots differ:\n--- ref ---\n%s\n--- got ---\n%s",
						tc.shards, tc.workers, refSnap, snap)
				}
			}
		})
	}
}

// The naive proxy runs its own relay transport at the proxy host; it must
// shard just like the rest.
func TestShardedIncastNaiveProxy(t *testing.T) {
	ref := shardSpec(ProxyNaive)
	ref.Shards = 1
	refRR, _, refSnap := shardedArtifacts(t, ref)

	spec := shardSpec(ProxyNaive)
	spec.Shards = 2
	spec.ShardWorkers = 2
	rr, _, snap := shardedArtifacts(t, spec)
	if !sameRunResult(refRR, rr) {
		t.Errorf("results diverge\n ref: %+v\n got: %+v", refRR, rr)
	}
	if !bytes.Equal(refSnap, snap) {
		t.Error("metric snapshots differ")
	}
}

// Cross traffic and proxy faults both live entirely in DC0; the sharded
// path must carry them without divergence.
func TestShardedIncastWithCrossTrafficAndFaults(t *testing.T) {
	base := shardSpec(ProxyStreamlined)
	base.CrossTraffic = CrossTrafficSpec{Flows: 2, Bytes: 256 * units.KB}
	base.ProxyCrashAt = 300 * units.Microsecond
	base.ProxyRestartAfter = 200 * units.Microsecond
	base.MaxSimTime = 2 * units.Second

	ref := base
	ref.Shards = 1
	refRes, refErr := Run(ref)

	spec := base
	spec.Shards = 2
	spec.ShardWorkers = 2
	res, err := Run(spec)

	// A crashed proxy may legitimately leave the incast incomplete;
	// what matters is that both paths agree exactly.
	if (refErr == nil) != (err == nil) {
		t.Fatalf("completion disagrees: ref err=%v, sharded err=%v", refErr, err)
	}
	if refErr != nil {
		return
	}
	if !sameRunResult(refRes.Runs[0], res.Runs[0]) {
		t.Errorf("results diverge\n ref: %+v\n got: %+v", refRes.Runs[0], res.Runs[0])
	}
}

// Seeds must still matter: different seeds produce different runs (guards
// against the sharded path accidentally fixing the RNG).
func TestShardedIncastSeedsDiffer(t *testing.T) {
	a := shardSpec(ProxyStreamlined)
	a.Shards = 2
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.Seed = 43
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if sameRunResult(ra.Runs[0], rb.Runs[0]) {
		t.Error("different seeds produced identical runs")
	}
}

// The sharded path's config hash must match the single-engine path's: the
// shard count is an execution detail, not part of the experiment identity.
func TestShardedConfigHashMatchesLegacy(t *testing.T) {
	legacy := shardSpec(Baseline)
	lres, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	sharded := shardSpec(Baseline)
	sharded.Shards = 2
	sharded.ShardWorkers = 2
	sres, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if lh, sh := lres.Runs[0].Manifest.ConfigHash, sres.Runs[0].Manifest.ConfigHash; lh != sh {
		t.Errorf("config hashes differ: legacy %q vs sharded %q", lh, sh)
	}
}

func TestShardedSpecValidation(t *testing.T) {
	bad := shardSpec(SchemeAdaptive)
	bad.Shards = 2
	if err := bad.Validate(); err == nil {
		t.Error("SchemeAdaptive with shards accepted")
	}
	bad = shardSpec(Baseline)
	bad.Shards = 2
	bad.Obs = &ObsConfig{Trace: true}
	if err := bad.Validate(); err == nil {
		t.Error("tracing with shards accepted")
	}
	bad = shardSpec(Baseline)
	bad.Shards = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative shards accepted")
	}
	bad = shardSpec(Baseline)
	bad.Shards = 100 // far beyond 2 + Backbones
	if err := bad.Validate(); err == nil {
		t.Error("oversubscribed shard count accepted")
	}
	ok := shardSpec(ProxyStreamlined)
	ok.Shards = 4
	if err := ok.Validate(); err != nil {
		t.Errorf("valid sharded spec rejected: %v", err)
	}
}
