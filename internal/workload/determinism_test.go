package workload

import (
	"bytes"
	"testing"
)

// The observability acceptance bar: two runs of the same seeded spec must
// produce byte-identical metric snapshots, manifests, and trace exports.
// Any nondeterminism sneaking into the recording paths (map iteration,
// pointer formatting, wall-clock reads) fails here.

func incastArtifacts(t *testing.T, spec Spec) (snapshot, manifest, chrome, csv []byte) {
	t.Helper()
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	rr := res.Runs[0]
	if rr.Manifest == nil {
		t.Fatal("run produced no manifest")
	}
	var snap, man, chr, c bytes.Buffer
	if err := rr.Manifest.Metrics.WriteText(&snap); err != nil {
		t.Fatal(err)
	}
	if err := rr.Manifest.WriteJSON(&man); err != nil {
		t.Fatal(err)
	}
	if rr.Trace == nil {
		t.Fatal("tracing was requested but RunResult.Trace is nil")
	}
	if err := rr.Trace.WriteChromeTrace(&chr); err != nil {
		t.Fatal(err)
	}
	if err := rr.Trace.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	return snap.Bytes(), man.Bytes(), chr.Bytes(), c.Bytes()
}

func TestIncastObservabilityDeterministic(t *testing.T) {
	for _, scheme := range Schemes() {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			t.Parallel()
			spec := quickSpec(scheme)
			spec.Obs = &ObsConfig{Trace: true}
			snap1, man1, chr1, csv1 := incastArtifacts(t, spec)
			snap2, man2, chr2, csv2 := incastArtifacts(t, spec)
			if !bytes.Equal(snap1, snap2) {
				t.Errorf("metric snapshots differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", snap1, snap2)
			}
			if !bytes.Equal(man1, man2) {
				t.Error("manifests differ")
			}
			if !bytes.Equal(chr1, chr2) {
				t.Error("chrome trace exports differ")
			}
			if !bytes.Equal(csv1, csv2) {
				t.Error("trace CSV exports differ")
			}
			if len(snap1) == 0 || len(chr1) == 0 {
				t.Error("artifacts unexpectedly empty")
			}
		})
	}
}

func TestChaosObservabilityDeterministic(t *testing.T) {
	run := func() (snapshot, chrome []byte) {
		spec := quickChaos(FailoverStandby)
		spec.Incast.Obs = &ObsConfig{Trace: true}
		res, err := RunChaos(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Manifest == nil || res.Trace == nil {
			t.Fatal("chaos run missing manifest or trace")
		}
		var snap, chr bytes.Buffer
		if err := res.Manifest.Metrics.WriteText(&snap); err != nil {
			t.Fatal(err)
		}
		if err := res.Trace.WriteChromeTrace(&chr); err != nil {
			t.Fatal(err)
		}
		return snap.Bytes(), chr.Bytes()
	}
	snap1, chr1 := run()
	snap2, chr2 := run()
	if !bytes.Equal(snap1, snap2) {
		t.Errorf("chaos metric snapshots differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", snap1, snap2)
	}
	if !bytes.Equal(chr1, chr2) {
		t.Error("chaos trace exports differ")
	}
	// The failover path must actually appear in the artifacts.
	if !bytes.Contains(snap1, []byte("faults_injected_total")) {
		t.Errorf("snapshot missing fault metrics:\n%s", snap1)
	}
	if !bytes.Contains(chr1, []byte(`"cat":"failover"`)) {
		t.Errorf("trace missing failover events")
	}
}

// Same spec, different seed: the config hash must match (identity excludes
// the seed) while the artifacts may differ.
func TestManifestConfigHashStableAcrossSeeds(t *testing.T) {
	run := func(seed int64) *Result {
		spec := quickSpec(Baseline)
		spec.Seed = seed
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(2)
	ma, mb := a.Runs[0].Manifest, b.Runs[0].Manifest
	if ma.ConfigHash != mb.ConfigHash {
		t.Fatalf("config hash changed with seed: %016x vs %016x", ma.ConfigHash, mb.ConfigHash)
	}
	if ma.Seed == mb.Seed {
		t.Fatal("seeds should differ")
	}
}
