package workload

import (
	"bytes"
	"testing"

	"incastproxy/internal/units"
)

// The observability acceptance bar: two runs of the same seeded spec must
// produce byte-identical metric snapshots, manifests, and trace exports.
// Any nondeterminism sneaking into the recording paths (map iteration,
// pointer formatting, wall-clock reads) fails here.

func incastArtifacts(t *testing.T, spec Spec) (snapshot, manifest, chrome, csv []byte) {
	t.Helper()
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	rr := res.Runs[0]
	if rr.Manifest == nil {
		t.Fatal("run produced no manifest")
	}
	var snap, man, chr, c bytes.Buffer
	if err := rr.Manifest.Metrics.WriteText(&snap); err != nil {
		t.Fatal(err)
	}
	if err := rr.Manifest.WriteJSON(&man); err != nil {
		t.Fatal(err)
	}
	if rr.Trace == nil {
		t.Fatal("tracing was requested but RunResult.Trace is nil")
	}
	if err := rr.Trace.WriteChromeTrace(&chr); err != nil {
		t.Fatal(err)
	}
	if err := rr.Trace.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	return snap.Bytes(), man.Bytes(), chr.Bytes(), c.Bytes()
}

func TestIncastObservabilityDeterministic(t *testing.T) {
	for _, scheme := range append(Schemes(), SchemeAdaptive) {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			t.Parallel()
			spec := quickSpec(scheme)
			spec.Obs = &ObsConfig{Trace: true}
			snap1, man1, chr1, csv1 := incastArtifacts(t, spec)
			snap2, man2, chr2, csv2 := incastArtifacts(t, spec)
			if !bytes.Equal(snap1, snap2) {
				t.Errorf("metric snapshots differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", snap1, snap2)
			}
			if !bytes.Equal(man1, man2) {
				t.Error("manifests differ")
			}
			if !bytes.Equal(chr1, chr2) {
				t.Error("chrome trace exports differ")
			}
			if !bytes.Equal(csv1, csv2) {
				t.Error("trace CSV exports differ")
			}
			if len(snap1) == 0 || len(chr1) == 0 {
				t.Error("artifacts unexpectedly empty")
			}
		})
	}
}

func TestChaosObservabilityDeterministic(t *testing.T) {
	run := func() (snapshot, chrome []byte) {
		spec := quickChaos(FailoverStandby)
		spec.Incast.Obs = &ObsConfig{Trace: true}
		res, err := RunChaos(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Manifest == nil || res.Trace == nil {
			t.Fatal("chaos run missing manifest or trace")
		}
		var snap, chr bytes.Buffer
		if err := res.Manifest.Metrics.WriteText(&snap); err != nil {
			t.Fatal(err)
		}
		if err := res.Trace.WriteChromeTrace(&chr); err != nil {
			t.Fatal(err)
		}
		return snap.Bytes(), chr.Bytes()
	}
	snap1, chr1 := run()
	snap2, chr2 := run()
	if !bytes.Equal(snap1, snap2) {
		t.Errorf("chaos metric snapshots differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", snap1, snap2)
	}
	if !bytes.Equal(chr1, chr2) {
		t.Error("chaos trace exports differ")
	}
	// The failover path must actually appear in the artifacts.
	if !bytes.Contains(snap1, []byte("faults_injected_total")) {
		t.Errorf("snapshot missing fault metrics:\n%s", snap1)
	}
	if !bytes.Contains(chr1, []byte(`"cat":"failover"`)) {
		t.Errorf("trace missing failover events")
	}
}

// The parallel-runner acceptance bar: fanning a spec's runs across workers
// must change nothing but wall-clock time. Figure tables, manifests, metric
// snapshots, and traces all come out byte-identical to the serial run.
func TestParallelIncastMatchesSerial(t *testing.T) {
	for _, scheme := range []Scheme{Baseline, ProxyStreamlined, SchemeAdaptive} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			t.Parallel()
			spec := quickSpec(scheme)
			if scheme == SchemeAdaptive {
				// Size the epoch past the buffer budget so every run takes
				// the full controller path: announced-overflow onset,
				// mid-epoch steer, suffix re-homing.
				spec.Degree = 8
				spec.TotalBytes = 40 * units.MB
			}
			spec.Runs = 4
			spec.Obs = &ObsConfig{Trace: true}

			serial := spec // Parallel 0: serial
			parallel := spec
			parallel.Parallel = 4

			a, err := Run(serial)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(parallel)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Runs) != len(b.Runs) {
				t.Fatalf("run counts differ: %d vs %d", len(a.Runs), len(b.Runs))
			}
			if a.ICT.String() != b.ICT.String() {
				t.Fatalf("ICT stats differ: %v vs %v", a.ICT.String(), b.ICT.String())
			}
			for i := range a.Runs {
				ra, rb := a.Runs[i], b.Runs[i]
				if ra.ICT != rb.ICT || ra.Events != rb.Events || ra.PktsSent != rb.PktsSent {
					t.Fatalf("run %d differs: ict %v/%v events %d/%d", i, ra.ICT, rb.ICT, ra.Events, rb.Events)
				}
				var ma, mb, sa, sb, ca, cb bytes.Buffer
				if err := ra.Manifest.WriteJSON(&ma); err != nil {
					t.Fatal(err)
				}
				if err := rb.Manifest.WriteJSON(&mb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ma.Bytes(), mb.Bytes()) {
					t.Errorf("run %d manifests differ:\n--- serial ---\n%s\n--- parallel ---\n%s", i, ma.Bytes(), mb.Bytes())
				}
				if err := ra.Manifest.Metrics.WriteText(&sa); err != nil {
					t.Fatal(err)
				}
				if err := rb.Manifest.Metrics.WriteText(&sb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
					t.Errorf("run %d metric snapshots differ", i)
				}
				if err := ra.Trace.WriteChromeTrace(&ca); err != nil {
					t.Fatal(err)
				}
				if err := rb.Trace.WriteChromeTrace(&cb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
					t.Errorf("run %d traces differ", i)
				}
			}
		})
	}
}

// Chaos series: per-run seeds derive from the base seed, so serial and
// parallel execution must agree run for run — fault timelines included.
func TestParallelChaosSeriesMatchesSerial(t *testing.T) {
	spec := quickChaos(FailoverStandby)
	const runs = 3
	a, err := RunChaosSeries(spec, runs, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaosSeries(spec, runs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != runs || len(b) != runs {
		t.Fatalf("lengths: %d, %d, want %d", len(a), len(b), runs)
	}
	seeds := make(map[int64]bool, runs)
	for i := range a {
		if a[i].ICT != b[i].ICT || a[i].FailedOver != b[i].FailedOver ||
			a[i].RehomedBytes != b[i].RehomedBytes || a[i].Events != b[i].Events {
			t.Fatalf("chaos run %d differs: %+v vs %+v", i, a[i].RunResult, b[i].RunResult)
		}
		if len(a[i].Timeline) != len(b[i].Timeline) {
			t.Fatalf("chaos run %d timelines differ", i)
		}
		var ma, mb bytes.Buffer
		if err := a[i].Manifest.WriteJSON(&ma); err != nil {
			t.Fatal(err)
		}
		if err := b[i].Manifest.WriteJSON(&mb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ma.Bytes(), mb.Bytes()) {
			t.Errorf("chaos run %d manifests differ", i)
		}
		seeds[a[i].Manifest.Seed] = true
	}
	if len(seeds) != runs {
		t.Fatalf("chaos series reused seeds: %d distinct of %d runs", len(seeds), runs)
	}
}

// Scenario batches: RunScenarios must return results in input order with
// per-flow completions identical to serial execution.
func TestParallelScenariosMatchSerial(t *testing.T) {
	mk := func(seed int64) Scenario {
		return Scenario{
			Seed: seed,
			Flows: []FlowSpec{
				{ID: 1, Src: HostRef{DC: 0, Host: 0}, Dst: HostRef{DC: 1, Host: 0}, Bytes: 2 * units.MB},
				{ID: 2, Src: HostRef{DC: 0, Host: 1}, Dst: HostRef{DC: 1, Host: 0}, Bytes: 2 * units.MB,
					Via: &ProxyRef{Scheme: ProxyStreamlined, At: HostRef{DC: 0, Host: 63}}},
			},
		}
	}
	scs := []Scenario{mk(1), mk(2), mk(3)}
	a, err := RunScenarios(scs, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenarios(scs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Makespan != b[i].Makespan || a[i].Events != b[i].Events {
			t.Fatalf("scenario %d differs: %+v vs %+v", i, a[i], b[i])
		}
		for id, d := range a[i].Done {
			if b[i].Done[id] != d {
				t.Fatalf("scenario %d flow %d: %v vs %v", i, id, d, b[i].Done[id])
			}
		}
	}
}

// Same spec, different seed: the config hash must match (identity excludes
// the seed) while the artifacts may differ.
func TestManifestConfigHashStableAcrossSeeds(t *testing.T) {
	run := func(seed int64) *Result {
		spec := quickSpec(Baseline)
		spec.Seed = seed
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(2)
	ma, mb := a.Runs[0].Manifest, b.Runs[0].Manifest
	if ma.ConfigHash != mb.ConfigHash {
		t.Fatalf("config hash changed with seed: %016x vs %016x", ma.ConfigHash, mb.ConfigHash)
	}
	if ma.Seed == mb.Seed {
		t.Fatal("seeds should differ")
	}
}
