package workload

// The sharded incast path: one trial on a conservative-lookahead parallel
// engine (sim.ShardGroup) instead of a single event loop. The fabric is
// partitioned per topo.PlanShards — each datacenter is a shard, backbone
// routers split further — and the long-haul propagation delay is the
// lookahead. Everything the incast touches lives cleanly on one side:
// senders, the proxy host, cross traffic, and fault injection are all in
// DC0; the receiver is in DC1. Only packets cross, through the group's
// deterministic handoff queues, so a run's results are byte-identical to a
// single-shard run of the same seed at every shard count and worker count.

import (
	"fmt"

	"incastproxy/internal/netsim"
	"incastproxy/internal/rng"
	"incastproxy/internal/stats"
	"incastproxy/internal/topo"
	"incastproxy/internal/transport"
	"incastproxy/internal/units"
)

// runOnceSharded builds a fresh sharded fabric and simulates one incast.
func runOnceSharded(spec Spec, seed int64) (RunResult, error) {
	cfg := spec.Topo
	cfg.Seed = seed
	if spec.Scheme == ProxyStreamlined {
		cfg.TrimDC[0] = true
	}
	if spec.TrimReceiverDC {
		cfg.TrimDC[1] = true
	}
	plan, err := topo.PlanShards(cfg, spec.Shards)
	if err != nil {
		return RunResult{}, err
	}
	g := plan.NewGroup(spec.ShardWorkers)
	// eDC0 owns the sending datacenter: every sender, the proxy host,
	// cross traffic, and fault injection schedule here. The receiver's
	// events run on DC1's shard, reached only by packets.
	eDC0 := g.Engine(plan.DCShard(0))
	net := topo.Build(eDC0, cfg)
	topo.BindShards(net, g, plan)

	hostsDC0 := net.Hosts[0]
	recv := net.Hosts[1][0]
	proxyHost := hostsDC0[len(hostsDC0)-1]

	src := rng.New(seed)

	var txSenders []*transport.Sender
	var rxs []*transport.Receiver
	ro := newRunObs(spec.Obs)
	ro.wireSharded(g, net, &txSenders, &rxs)
	ro.watchPorts(eDC0, units.Time(spec.MaxSimTime), map[string]*netsim.Port{
		"recv-tor":  net.DownToRPort(recv),
		"proxy-tor": net.DownToRPort(proxyHost),
	})

	// completedFlows and lastDone are receiver-side state: only DC1's
	// shard touches them during the run, and the stop request crosses
	// shards atomically. The barrier publishes them before we read them
	// back on this goroutine.
	completedFlows := 0
	var lastDone units.Time
	fcts := stats.NewBounded(fctReservoirCap, seed)
	onFlowDone := func(at units.Time) {
		completedFlows++
		if at > lastDone {
			lastDone = at
		}
		// Receiver-side FCT, as in runOnce. Receivers finish in
		// deterministic event order, so the bounded reservoir sees the
		// same observation sequence at every shard and worker count.
		fcts.AddDuration(at.Sub(units.Time(spec.IncastDelay)))
		if completedFlows == spec.Degree {
			// Unlike Engine.Stop, a group stop is quantized to the
			// barrier round — which keeps the stop point identical
			// at every shard and worker count.
			g.RequestStop()
		}
	}

	inferGroup, err := buildFlows(eDC0, net, spec, src, ro, recv, proxyHost,
		onFlowDone, &txSenders, &rxs)
	if err != nil {
		return RunResult{}, err
	}

	if err := startCrossTraffic(eDC0, net, spec, proxyHost, ro); err != nil {
		return RunResult{}, err
	}
	injectProxyFaults(eDC0, spec, proxyHost, seed, ro)

	g.RunUntil(units.Time(spec.MaxSimTime))

	rr := RunResult{
		ICT:       units.Duration(lastDone),
		Completed: completedFlows == spec.Degree,
		Events:    g.Processed(),
	}
	collectRunStats(&rr, net, recv, proxyHost, txSenders, inferGroup, fcts)
	rr.Manifest = ro.manifest(seed, spec.fingerprintString())

	if !rr.Completed {
		return rr, fmt.Errorf("incast incomplete after %v: %d/%d flows done",
			spec.MaxSimTime, completedFlows, spec.Degree)
	}
	return rr, nil
}
