// Package declare is a prototype of the paper's §6 programming
// abstraction: applications declare incast-like communication among
// components that *could* be placed in different datacenters, and at
// deployment time the provider converts cross-datacenter incasts into
// proxy-assisted ones "without requiring any changes or permission from
// the application".
//
// A Group is the declaration; Deployment.Plan is the provider-side
// conversion, consulting an orchestrator for per-incast proxy decisions
// and emitting concrete workload.FlowSpecs.
package declare

import (
	"fmt"

	"incastproxy/internal/netsim"
	"incastproxy/internal/orchestrator"
	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

// Group declares one incast-like pattern: many senders feeding one
// receiver, optionally repeating periodically (ML training
// synchronization, §6).
type Group struct {
	// Name labels the group in plans and diagnostics.
	Name string
	// Receiver and Senders are component placements. The abstraction's
	// point is that the developer states the *pattern*; whether it
	// crosses datacenters is a deployment-time fact.
	Receiver workload.HostRef
	Senders  []workload.HostRef
	// BytesPerSender is the declared transfer size hint.
	BytesPerSender units.ByteSize
	// Phases > 1 repeats the pattern every Period (periodic incast).
	Phases int
	Period units.Duration
}

// Validate reports declaration errors.
func (g Group) Validate() error {
	switch {
	case g.Name == "":
		return fmt.Errorf("declare: group needs a name")
	case len(g.Senders) == 0:
		return fmt.Errorf("declare: group %q has no senders", g.Name)
	case g.BytesPerSender <= 0:
		return fmt.Errorf("declare: group %q has no size hint", g.Name)
	case g.Phases > 1 && g.Period <= 0:
		return fmt.Errorf("declare: periodic group %q needs a Period", g.Name)
	}
	for _, s := range g.Senders {
		if s == g.Receiver {
			return fmt.Errorf("declare: group %q: sender equals receiver", g.Name)
		}
	}
	return nil
}

// phases returns the effective phase count.
func (g Group) phases() int {
	if g.Phases < 1 {
		return 1
	}
	return g.Phases
}

// Deployment is the provider-side context: fabric characteristics plus the
// orchestrator holding proxy inventory.
type Deployment struct {
	Orc *orchestrator.Orchestrator

	// Fabric characteristics used for benefit prediction.
	InterRTT, IntraRTT units.Duration
	Rate               units.BitRate
	BufferBytes        units.ByteSize

	// Scheme is the proxy design to deploy (default streamlined).
	Scheme workload.Scheme
}

// PlannedGroup reports what Plan did with one group.
type PlannedGroup struct {
	Group    Group
	Decision orchestrator.Decision
	// CrossDC reports whether the group actually crossed datacenters at
	// deployment time.
	CrossDC bool
	Flows   []workload.FlowSpec
}

// Plan converts declared groups into concrete flows, relaying
// cross-datacenter incasts through orchestrator-chosen proxies when
// beneficial. Flow IDs are assigned from firstID; the next free ID is
// returned.
func (d *Deployment) Plan(groups []Group, firstID netsim.FlowID) ([]PlannedGroup, netsim.FlowID, error) {
	if d.Orc == nil {
		return nil, firstID, fmt.Errorf("declare: deployment needs an orchestrator")
	}
	id := firstID
	var planned []PlannedGroup
	for _, g := range groups {
		if err := g.Validate(); err != nil {
			return nil, firstID, err
		}
		pg := PlannedGroup{Group: g}
		for _, s := range g.Senders {
			if s.DC != g.Receiver.DC {
				pg.CrossDC = true
				break
			}
		}
		if pg.CrossDC {
			req := orchestrator.Request{
				Degree:      len(g.Senders),
				Bytes:       units.ByteSize(len(g.Senders)) * g.BytesPerSender,
				SenderDC:    g.Senders[0].DC,
				InterRTT:    d.InterRTT,
				IntraRTT:    d.IntraRTT,
				Rate:        d.Rate,
				BufferBytes: d.BufferBytes,
				Scheme:      d.Scheme,
			}
			dec, err := d.Orc.Decide(req)
			if err != nil {
				return nil, firstID, fmt.Errorf("declare: group %q: %w", g.Name, err)
			}
			pg.Decision = dec
		}
		for phase := 0; phase < g.phases(); phase++ {
			start := units.Duration(phase) * g.Period
			for _, s := range g.Senders {
				f := workload.FlowSpec{
					ID:    id,
					Src:   s,
					Dst:   g.Receiver,
					Bytes: g.BytesPerSender,
					Start: start,
				}
				if pg.Decision.UseProxy && s.DC != g.Receiver.DC {
					f.Via = &workload.ProxyRef{Scheme: pg.Decision.Scheme, At: pg.Decision.Proxy}
				}
				pg.Flows = append(pg.Flows, f)
				id++
			}
		}
		planned = append(planned, pg)
	}
	return planned, id, nil
}

// Flows flattens a plan into the flow list RunScenario consumes.
func Flows(planned []PlannedGroup) []workload.FlowSpec {
	var out []workload.FlowSpec
	for _, pg := range planned {
		out = append(out, pg.Flows...)
	}
	return out
}
