package declare

import (
	"testing"

	"incastproxy/internal/orchestrator"
	"incastproxy/internal/units"
	"incastproxy/internal/workload"
)

func deployment(t *testing.T) *Deployment {
	t.Helper()
	orc := orchestrator.New(1)
	orc.Register(orchestrator.Proxy{Ref: workload.HostRef{DC: 0, Host: 63}, Capacity: 100 * units.Gbps})
	return &Deployment{
		Orc:         orc,
		InterRTT:    4 * units.Millisecond,
		IntraRTT:    8 * units.Microsecond,
		Rate:        100 * units.Gbps,
		BufferBytes: 17 * units.MB,
	}
}

func crossDCGroup() Group {
	return Group{
		Name:           "shuffle",
		Receiver:       workload.HostRef{DC: 1, Host: 0},
		Senders:        []workload.HostRef{{DC: 0, Host: 0}, {DC: 0, Host: 1}, {DC: 0, Host: 2}, {DC: 0, Host: 3}},
		BytesPerSender: 25 * units.MB,
	}
}

func TestGroupValidate(t *testing.T) {
	if err := crossDCGroup().Validate(); err != nil {
		t.Fatal(err)
	}
	h00 := workload.HostRef{DC: 0, Host: 0}
	bad := []Group{
		{},
		{Name: "x", BytesPerSender: 1},
		{Name: "x", Senders: []workload.HostRef{h00}},
		{Name: "x", Senders: []workload.HostRef{h00}, BytesPerSender: 1, Phases: 3},
		{Name: "x", Receiver: h00, Senders: []workload.HostRef{h00}, BytesPerSender: 1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestPlanProxiesCrossDCIncast(t *testing.T) {
	d := deployment(t)
	planned, next, err := d.Plan([]Group{crossDCGroup()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(planned) != 1 || next != 5 {
		t.Fatalf("planned=%d next=%d", len(planned), next)
	}
	pg := planned[0]
	if !pg.CrossDC || !pg.Decision.UseProxy {
		t.Fatalf("decision = %+v", pg.Decision)
	}
	for _, f := range pg.Flows {
		if f.Via == nil || f.Via.At != (workload.HostRef{DC: 0, Host: 63}) {
			t.Fatalf("flow not proxied: %+v", f)
		}
		if f.Via.Scheme != workload.ProxyStreamlined {
			t.Fatalf("scheme = %v", f.Via.Scheme)
		}
	}
	if len(Flows(planned)) != 4 {
		t.Fatal("Flows flattening wrong")
	}
}

func TestPlanLeavesIntraDCGroupsAlone(t *testing.T) {
	d := deployment(t)
	g := crossDCGroup()
	g.Receiver = workload.HostRef{DC: 0, Host: 9} // same DC as senders
	planned, _, err := d.Plan([]Group{g}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pg := planned[0]
	if pg.CrossDC || pg.Decision.UseProxy {
		t.Fatal("intra-DC group must not be proxied")
	}
	for _, f := range pg.Flows {
		if f.Via != nil {
			t.Fatal("intra-DC flow routed via proxy")
		}
	}
}

func TestPlanSmallIncastGoesDirect(t *testing.T) {
	d := deployment(t)
	g := crossDCGroup()
	g.BytesPerSender = 100 * units.KB // tiny: no first-RTT loss
	planned, _, err := d.Plan([]Group{g}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if planned[0].Decision.UseProxy {
		t.Fatal("small incast should go direct (Fig 2 Right)")
	}
	for _, f := range planned[0].Flows {
		if f.Via != nil {
			t.Fatal("small incast flow proxied")
		}
	}
}

func TestPlanPeriodicGroupExpandsPhases(t *testing.T) {
	d := deployment(t)
	g := crossDCGroup()
	g.Phases = 3
	g.Period = units.Duration(10 * units.Millisecond)
	planned, next, err := d.Plan([]Group{g}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(planned[0].Flows) != 12 || next != 13 {
		t.Fatalf("flows=%d next=%d", len(planned[0].Flows), next)
	}
	if planned[0].Flows[4].Start != g.Period || planned[0].Flows[8].Start != 2*g.Period {
		t.Fatal("phase starts wrong")
	}
}

func TestPlanNeedsOrchestrator(t *testing.T) {
	d := &Deployment{}
	if _, _, err := d.Plan([]Group{crossDCGroup()}, 1); err == nil {
		t.Fatal("plan without orchestrator must fail")
	}
}

func TestPlanValidatesGroups(t *testing.T) {
	d := deployment(t)
	if _, _, err := d.Plan([]Group{{}}, 1); err == nil {
		t.Fatal("invalid group must fail plan")
	}
}

func TestPlannedFlowsRunInSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	d := deployment(t)
	g := crossDCGroup()
	g.BytesPerSender = 2 * units.MB // still proxied? no: 8MB total, under
	// buffer. Use enough to trigger proxying.
	g.BytesPerSender = 10 * units.MB
	planned, _, err := d.Plan([]Group{g}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !planned[0].Decision.UseProxy {
		t.Fatal("expected proxied plan")
	}
	res, err := workload.RunScenario(workload.Scenario{Flows: Flows(planned), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("planned scenario incomplete")
	}
}
