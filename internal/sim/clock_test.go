package sim

import "testing"

// The clock contract: a non-stopped RunUntil exit leaves the clock at the
// deadline, even when the window held no events at all. The shard barrier
// depends on this — horizons with no local work must still move time.
func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	e := New()
	e.Schedule(10, func(*Engine) {})
	e.Schedule(100, func(*Engine) {})

	if got := e.RunUntil(50); got != 50 {
		t.Fatalf("RunUntil(50) = %v, want 50", got)
	}
	if e.Now() != 50 {
		t.Fatalf("Now() = %v after RunUntil(50), want 50", e.Now())
	}

	// An entirely event-free window still advances.
	if got := e.RunUntil(70); got != 70 {
		t.Fatalf("RunUntil(70) = %v, want 70", got)
	}

	// The queued later event is untouched and runs at its own time.
	if got := e.RunUntil(200); got != 200 {
		t.Fatalf("RunUntil(200) = %v, want 200", got)
	}
	if e.Processed() != 2 {
		t.Fatalf("processed = %d, want 2", e.Processed())
	}
}

// Run (the MaxTime sentinel) keeps the historical behavior: it returns the
// last executed event's time, not some deadline.
func TestRunReturnsLastEventTime(t *testing.T) {
	e := New()
	e.Schedule(10, func(*Engine) {})
	e.Schedule(42, func(*Engine) {})
	if got := e.Run(); got != 42 {
		t.Fatalf("Run() = %v, want 42", got)
	}
}

// A Stop issued while no run is in progress is sticky: the next run consumes
// it and returns immediately without executing anything or moving the clock.
func TestStopBeforeRunIsSticky(t *testing.T) {
	e := New()
	ran := false
	e.Schedule(5, func(*Engine) { ran = true })

	e.Stop()
	if got := e.RunUntil(100); got != 0 {
		t.Fatalf("stopped RunUntil = %v, want 0 (frozen clock)", got)
	}
	if ran {
		t.Fatal("event ran despite pending stop")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}

	// The stop is consumed exactly once: the next run proceeds normally
	// and, being non-stopped, advances to the deadline.
	if got := e.RunUntil(100); got != 100 {
		t.Fatalf("second RunUntil = %v, want 100", got)
	}
	if !ran {
		t.Fatal("event did not run after consuming the stop")
	}
}

// A Stop issued by an event freezes the clock at that event and is likewise
// consumed exactly once.
func TestStopInsideEventFreezesClock(t *testing.T) {
	e := New()
	e.Schedule(7, func(e *Engine) { e.Stop() })
	e.Schedule(50, func(*Engine) {})

	if got := e.RunUntil(100); got != 7 {
		t.Fatalf("stopped RunUntil = %v, want 7", got)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (later event stays queued)", e.Pending())
	}
	// Consumed: resuming runs the rest and advances to the deadline.
	if got := e.RunUntil(100); got != 100 {
		t.Fatalf("resumed RunUntil = %v, want 100", got)
	}
	if e.Processed() != 2 {
		t.Fatalf("processed = %d, want 2", e.Processed())
	}
}

// Keyed events at one instant run in key order, ahead of plain (key 0)
// events, regardless of scheduling order; equal keys keep FIFO.
func TestScheduleKeyedOrdering(t *testing.T) {
	e := New()
	var order []string
	rec := func(name string) Event {
		return func(*Engine) { order = append(order, name) }
	}
	// Scheduled deliberately out of rank order.
	e.Schedule(10, rec("plain-a"))
	e.ScheduleKeyed(10, 30, rec("k30"))
	e.ScheduleKeyed(10, 20, rec("k20-first"))
	e.Schedule(10, rec("plain-b"))
	e.ScheduleKeyed(10, 20, rec("k20-second"))

	e.Run()
	want := []string{"k20-first", "k20-second", "k30", "plain-a", "plain-b"}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Key ranks only separate events at the same instant; time still dominates.
func TestScheduleKeyedTimeDominatesKey(t *testing.T) {
	e := New()
	var order []int
	e.ScheduleKeyed(20, 1, func(*Engine) { order = append(order, 20) })
	e.ScheduleKeyed(10, 99, func(*Engine) { order = append(order, 10) })
	e.Run()
	if len(order) != 2 || order[0] != 10 || order[1] != 20 {
		t.Fatalf("order = %v, want [10 20]", order)
	}
}

func TestNextEventAt(t *testing.T) {
	e := New()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("NextEventAt on empty engine reported an event")
	}
	e.Schedule(30, func(*Engine) {})
	e.Schedule(10, func(*Engine) {})
	if at, ok := e.NextEventAt(); !ok || at != 10 {
		t.Fatalf("NextEventAt = %v,%v, want 10,true", at, ok)
	}
	e.RunUntil(15)
	if at, ok := e.NextEventAt(); !ok || at != 30 {
		t.Fatalf("NextEventAt after partial run = %v,%v, want 30,true", at, ok)
	}
}

func TestScheduledCountsKeyedAndPlain(t *testing.T) {
	e := New()
	e.Schedule(1, func(*Engine) {})
	e.ScheduleKeyed(2, 7, func(*Engine) {})
	if e.Scheduled() != 2 {
		t.Fatalf("Scheduled = %d, want 2", e.Scheduled())
	}
}

// Recycled event records must not leak a previous ScheduleKeyed key into a
// later plain Schedule.
func TestRecycledEventResetsKey(t *testing.T) {
	e := New()
	e.ScheduleKeyed(5, 123, func(*Engine) {})
	e.Run() // record returns to the free list with key 123

	var order []string
	e.Schedule(10, func(*Engine) { order = append(order, "recycled-plain") })
	e.ScheduleKeyed(10, 1, func(*Engine) { order = append(order, "keyed") })
	e.Run()
	if len(order) != 2 || order[0] != "keyed" || order[1] != "recycled-plain" {
		t.Fatalf("order = %v, want [keyed recycled-plain]", order)
	}
}
