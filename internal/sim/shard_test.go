package sim

import (
	"fmt"
	"reflect"
	"testing"

	"incastproxy/internal/units"
)

// tokenNet is a synthetic cross-shard workload: N nodes pass tokens around a
// ring, every hop taking exactly the lookahead delay. Each node keeps its
// own execution log; a correct barrier produces identical per-node logs at
// every shard count and worker count, because each hop's arrival carries an
// intrinsic tie-break key (a mix of token and hop), never the scheduling
// order.
type tokenNet struct {
	g     *ShardGroup
	shard []int // node -> shard
	logs  [][]string
	hops  int
}

func tokenKey(token, hop int) uint64 {
	x := uint64(token)<<32 | uint64(hop) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func newTokenNet(nodes int, shardOf func(node int) int, shards, workers, hops int, la units.Duration) *tokenNet {
	n := &tokenNet{
		g:     NewShardGroup(shards, la, workers),
		shard: make([]int, nodes),
		logs:  make([][]string, nodes),
		hops:  hops,
	}
	for i := range n.shard {
		n.shard[i] = shardOf(i)
	}
	return n
}

// inject schedules token's arrival at node at time at, crossing shards when
// needed.
func (n *tokenNet) inject(from, node, token, hop int, at units.Time) {
	fn := func(e *Engine) { n.arrive(e, node, token, hop) }
	key := tokenKey(token, hop)
	if src, dst := n.shard[from], n.shard[node]; src != dst {
		n.g.Post(src, dst, at, key, fn)
	} else {
		n.g.Engine(dst).ScheduleKeyed(at, key, fn)
	}
}

func (n *tokenNet) arrive(e *Engine, node, token, hop int) {
	n.logs[node] = append(n.logs[node], fmt.Sprintf("t=%d tok=%d hop=%d", e.Now(), token, hop))
	if hop >= n.hops {
		return
	}
	next := (node + 1) % len(n.logs)
	n.inject(node, next, token, hop+1, e.Now().Add(n.g.Lookahead()))
}

func (n *tokenNet) start(tokens int) {
	for tok := 0; tok < tokens; tok++ {
		node := tok % len(n.logs)
		n.g.Engine(n.shard[node]).ScheduleKeyed(1, tokenKey(tok, 0),
			func(e *Engine) { n.arrive(e, node, tok, 0) })
	}
}

// Every partition and worker count must produce identical per-node logs and
// identical aggregate event counts. This is the core conservative-lookahead
// correctness property.
func TestShardGroupDeterministicAcrossPartitions(t *testing.T) {
	const nodes, tokens, hops = 4, 8, 12
	const la = units.Duration(10)

	type config struct {
		name    string
		shards  int
		workers int
		shardOf func(int) int
	}
	configs := []config{
		{"1shard", 1, 1, func(int) int { return 0 }},
		{"2shard-1w", 2, 1, func(i int) int { return i % 2 }},
		{"2shard-2w", 2, 2, func(i int) int { return i % 2 }},
		{"4shard-4w", 4, 4, func(i int) int { return i }},
	}

	var refLogs [][]string
	var refProcessed, refScheduled uint64
	for i, c := range configs {
		n := newTokenNet(nodes, c.shardOf, c.shards, c.workers, hops, la)
		n.start(tokens)
		n.g.Run()
		if i == 0 {
			refLogs = n.logs
			refProcessed = n.g.Processed()
			refScheduled = n.g.Scheduled()
			continue
		}
		if !reflect.DeepEqual(n.logs, refLogs) {
			t.Errorf("%s: per-node logs diverge from single-shard run\n got: %v\nwant: %v",
				c.name, n.logs, refLogs)
		}
		if n.g.Processed() != refProcessed {
			t.Errorf("%s: processed = %d, want %d", c.name, n.g.Processed(), refProcessed)
		}
		if n.g.Scheduled() != refScheduled {
			t.Errorf("%s: scheduled = %d, want %d", c.name, n.g.Scheduled(), refScheduled)
		}
	}
}

// Same-instant cross-shard arrivals at one node must order by key, not by
// which source shard posted first.
func TestShardGroupMergesSameInstantArrivalsByKey(t *testing.T) {
	g := NewShardGroup(3, 5, 3)
	var order []uint64
	// Shards 1 and 2 both post to shard 0 for the same instant; keys are
	// chosen opposite to source order.
	arrival := func(key uint64) Event {
		return func(*Engine) { order = append(order, key) }
	}
	g.Engine(1).Schedule(0, func(e *Engine) { g.Post(1, 0, 10, 200, arrival(200)) })
	g.Engine(2).Schedule(0, func(e *Engine) { g.Post(2, 0, 10, 100, arrival(100)) })
	g.Run()
	if len(order) != 2 || order[0] != 100 || order[1] != 200 {
		t.Fatalf("arrival order = %v, want [100 200]", order)
	}
}

func TestShardGroupPostViolatingLookaheadPanics(t *testing.T) {
	g := NewShardGroup(2, 10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Post inside the lookahead window did not panic")
		}
	}()
	g.Post(0, 1, 5, 1, func(*Engine) {}) // shard 0 is at t=0; 5 < 0+10
}

func TestNewShardGroupValidation(t *testing.T) {
	for _, tc := range []struct {
		name      string
		n         int
		lookahead units.Duration
	}{
		{"zero shards", 0, 10},
		{"zero lookahead", 2, 0},
		{"negative lookahead", 2, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewShardGroup did not panic", tc.name)
				}
			}()
			NewShardGroup(tc.n, tc.lookahead, 1)
		}()
	}
}

// RunUntil with a finite deadline advances every shard clock to the
// deadline, mirroring Engine.RunUntil's contract.
func TestShardGroupRunUntilAdvancesAllClocks(t *testing.T) {
	g := NewShardGroup(3, 7, 3)
	g.Engine(0).Schedule(3, func(*Engine) {})
	end := g.RunUntil(1000)
	if end != 1000 {
		t.Fatalf("RunUntil(1000) = %v, want 1000", end)
	}
	for i := 0; i < g.Shards(); i++ {
		if now := g.Engine(i).Now(); now != 1000 {
			t.Fatalf("shard %d clock = %v, want 1000", i, now)
		}
	}
}

// A group stop is quantized to the barrier: the requesting round completes
// on every shard, pending cross events are still injected exactly once, and
// the stop is consumed so a later run resumes.
func TestShardGroupRequestStopQuantizedToRound(t *testing.T) {
	const la = units.Duration(10)
	g := NewShardGroup(2, la, 2)
	var ran []string
	g.Engine(0).Schedule(1, func(e *Engine) {
		ran = append(ran, "first")
		g.Post(0, 1, e.Now().Add(la), 1, func(*Engine) { ran = append(ran, "cross") })
		g.RequestStop()
	})

	g.Run()
	if len(ran) != 1 || ran[0] != "first" {
		t.Fatalf("ran = %v, want [first] (stop honored at the barrier)", ran)
	}
	if !((g.Pending() == 1) && g.Engine(1).Pending() == 1) {
		t.Fatalf("cross event not injected before the stop: pending=%d", g.Pending())
	}
	if g.StopRequested() {
		t.Fatal("stop not consumed")
	}

	g.Run()
	if len(ran) != 2 || ran[1] != "cross" {
		t.Fatalf("ran = %v after resume, want [first cross]", ran)
	}
}

// The round counter must be a pure function of the simulation content:
// equal across worker counts for a fixed partition.
func TestShardGroupRoundsStableAcrossWorkers(t *testing.T) {
	run := func(workers int) uint64 {
		n := newTokenNet(4, func(i int) int { return i % 2 }, 2, workers, 9, 10)
		n.start(4)
		n.g.Run()
		return n.g.Rounds()
	}
	if a, b := run(1), run(2); a != b {
		t.Fatalf("rounds differ across worker counts: %d vs %d", a, b)
	}
}

// Group instrumentation must expose the same totals as summing the engines,
// and the merged per-shard snapshot must agree with the group counters.
func TestShardGroupInstrumentAndMergedSnapshot(t *testing.T) {
	n := newTokenNet(4, func(i int) int { return i % 2 }, 2, 2, 6, 10)
	n.start(4)
	n.g.Run()

	merged := n.g.MergedSnapshot()
	var dispatched int64
	for _, c := range merged.Counters {
		if c.Name == "sim_events_dispatched_total" {
			dispatched = c.Value
		}
	}
	if uint64(dispatched) != n.g.Processed() {
		t.Fatalf("merged dispatched = %d, want %d", dispatched, n.g.Processed())
	}
	if len(n.g.ShardRegistries()) != 2 {
		t.Fatalf("ShardRegistries = %d entries, want 2", len(n.g.ShardRegistries()))
	}
	if n.g.CrossEvents() == 0 {
		t.Fatal("token ring crossed no shard boundary")
	}
}
