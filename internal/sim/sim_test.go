package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"incastproxy/internal/units"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New()
	var got []units.Time
	times := []units.Duration{5, 1, 3, 2, 4}
	for _, d := range times {
		d := d
		e.Schedule(units.Time(d), func(e *Engine) { got = append(got, e.Now()) })
	}
	e.Run()
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if len(got) != len(times) {
		t.Fatalf("ran %d events, want %d", len(got), len(times))
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", order)
		}
	}
}

func TestSchedulingDuringRun(t *testing.T) {
	e := New()
	count := 0
	var step Event
	step = func(e *Engine) {
		count++
		if count < 100 {
			e.After(10, step)
		}
	}
	e.After(0, step)
	end := e.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if end != units.Time(99*10) {
		t.Fatalf("end time = %v, want 990ps", end)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(10, func(*Engine) { ran++ })
	e.Schedule(20, func(*Engine) { ran++ })
	e.Schedule(30, func(*Engine) { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("ran = %d, want 3 after full Run", ran)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(100, func(*Engine) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	e.Schedule(50, func(*Engine) {})
}

func TestStop(t *testing.T) {
	e := New()
	ran := 0
	for i := 0; i < 10; i++ {
		e.Schedule(units.Time(i), func(e *Engine) {
			ran++
			if ran == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
	// A later Run resumes.
	e.Run()
	if ran != 10 {
		t.Fatalf("ran = %d, want 10", ran)
	}
}

func TestStep(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(1, func(*Engine) { ran++ })
	e.Schedule(2, func(*Engine) { ran++ })
	if !e.Step() || ran != 1 {
		t.Fatal("first Step should run one event")
	}
	if !e.Step() || ran != 2 {
		t.Fatal("second Step should run one event")
	}
	if e.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}

func TestTimerRearmAndCancel(t *testing.T) {
	e := New()
	fired := 0
	tm := NewTimer(e, func(*Engine) { fired++ })
	tm.ArmAfter(100)
	tm.ArmAfter(200) // replaces the first schedule
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (re-arm must supersede)", fired)
	}
	if e.Now() != 200 {
		t.Fatalf("now = %v, want 200ps", e.Now())
	}

	tm.ArmAfter(50)
	tm.Cancel()
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d after cancel, want 1", fired)
	}
	if tm.Pending() {
		t.Fatal("cancelled timer must not be pending")
	}
}

func TestTimerPendingAndDueAt(t *testing.T) {
	e := New()
	tm := NewTimer(e, func(*Engine) {})
	tm.Arm(500)
	if !tm.Pending() || tm.DueAt() != 500 {
		t.Fatalf("pending=%v dueAt=%v", tm.Pending(), tm.DueAt())
	}
	e.Run()
	if tm.Pending() {
		t.Fatal("fired timer must not be pending")
	}
}

func TestProcessedCount(t *testing.T) {
	e := New()
	for i := 0; i < 25; i++ {
		e.Schedule(units.Time(i), func(*Engine) {})
	}
	e.Run()
	if e.Processed() != 25 {
		t.Fatalf("processed = %d, want 25", e.Processed())
	}
}

// Property: for any random batch of timestamps, execution order equals the
// sorted order of those timestamps.
func TestPropertyHeapOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e := New()
		count := int(n%64) + 1
		times := make([]int64, count)
		var got []int64
		for i := range times {
			times[i] = r.Int63n(1_000_000)
			at := units.Time(times[i])
			e.Schedule(at, func(e *Engine) { got = append(got, int64(e.Now())) })
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		e.Run()
		if len(got) != count {
			return false
		}
		for i := range got {
			if got[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Cancelling a timer must remove its event from the heap immediately, not
// leave a dead entry until the deadline; long chaos runs re-arm thousands of
// RTO timers and would otherwise grow the heap monotonically.
func TestCancelRemovesFromHeap(t *testing.T) {
	e := New()
	const n = 1000
	timers := make([]*Timer, n)
	for i := range timers {
		timers[i] = NewTimer(e, func(*Engine) { t.Error("cancelled timer fired") })
		timers[i].Arm(units.Time(1000 + i))
	}
	if e.Pending() != n {
		t.Fatalf("pending = %d after arming, want %d", e.Pending(), n)
	}
	for _, tm := range timers {
		tm.Cancel()
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after mass cancel, want 0 (dead entries retained)", e.Pending())
	}
	e.Run()
	// Cancel of an already-cancelled timer is a no-op.
	timers[0].Cancel()
}

// A Cancel issued after the timer fired (or after its event record was
// recycled for an unrelated event) must not remove the unrelated event.
func TestStaleCancelDoesNotRemoveRecycledEvent(t *testing.T) {
	e := New()
	tm := NewTimer(e, func(*Engine) {})
	tm.Arm(10)
	e.Run() // fires; the event record returns to the free list
	ran := false
	e.Schedule(20, func(*Engine) { ran = true }) // likely reuses the record
	tm.Cancel()                                  // stale: must be a no-op
	if e.Pending() != 1 {
		t.Fatalf("stale Cancel removed a recycled event (pending = %d)", e.Pending())
	}
	e.Run()
	if !ran {
		t.Fatal("recycled event never ran")
	}
}

// Arming a timer for a deadline already in the past fires it at the current
// time instead of regressing the clock.
func TestArmInPastFiresNow(t *testing.T) {
	e := New()
	e.Schedule(100, func(*Engine) {})
	e.Run()
	fired := units.Time(0)
	tm := NewTimer(e, func(e *Engine) { fired = e.Now() })
	tm.Arm(50) // before now=100
	e.Run()
	if fired != 100 {
		t.Fatalf("past-armed timer fired at %v, want 100 (now)", fired)
	}
}

// The steady-state event loop must not allocate: records are recycled
// through the free list and the timer's fire closure is built once.
func TestEventLoopSteadyStateAllocs(t *testing.T) {
	e := New()
	tm := NewTimer(e, func(*Engine) {})
	// Warm the free list and heap capacity.
	for i := 0; i < 512; i++ {
		e.After(units.Duration(i), func(*Engine) {})
	}
	e.Run()
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.After(units.Duration(i%7), func(*Engine) {})
			tm.ArmAfter(units.Duration(i % 5))
			if i%2 == 0 {
				tm.Cancel()
			}
		}
		e.Run()
	})
	// Budget one stray allocation for closure captures in this test body;
	// the engine itself should be at zero.
	if avg > 1 {
		t.Fatalf("steady-state event loop allocates %.1f allocs/run, want ~0", avg)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(units.Duration(i%1000), func(*Engine) {})
		if e.Pending() > 1024 {
			e.RunUntil(e.Now().Add(500))
		}
	}
	e.Run()
}

func BenchmarkTimerRearm(b *testing.B) {
	e := New()
	tm := NewTimer(e, func(*Engine) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.ArmAfter(units.Duration(100 + i%10)) // re-arm removes the old entry eagerly
	}
	tm.Cancel()
	e.Run()
}
