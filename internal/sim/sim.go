// lint:virtual-time
// (pragma: opts this package into the wallclock analyzer — no wall-clock
// reads in non-test sources; see internal/lint and DESIGN.md §12)

// Package sim implements the discrete-event simulation engine underneath the
// packet-level network simulator. It is a minimal htsim-style core: a
// priority queue of timestamped events, a logical clock, and reusable timers.
//
// Events scheduled for the same instant run in scheduling order (FIFO),
// which keeps runs deterministic for a given seed. Event records are
// recycled through a per-engine free list and cancelled timers are removed
// from the heap eagerly, so the steady-state event loop allocates nothing.
//
// An Engine is single-threaded by design: one engine per goroutine. The
// parallel experiment runner (internal/runner) exploits this by giving every
// trial its own engine rather than sharing one.
package sim

import (
	"container/heap"
	"fmt"

	"incastproxy/internal/obs"
	"incastproxy/internal/units"
)

// Event is a deferred callback. Handlers receive the engine so they can
// schedule follow-up work.
type Event func(*Engine)

type scheduledEvent struct {
	at  units.Time
	seq uint64
	fn  Event
	// gen increments every time the record returns to the free list, so a
	// Timer holding a stale pointer can tell its event already fired or was
	// recycled and must not be removed again.
	gen   uint64
	index int // heap position; -1 once popped or removed
}

type eventHeap []*scheduledEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// initialHeapCap pre-sizes the event heap and free list: incast runs keep
// hundreds of in-flight packet/timer events, and starting near steady state
// avoids the early append-doubling churn on every run of a sweep.
const initialHeapCap = 256

// Engine is a discrete-event scheduler. The zero value is not usable; create
// one with New.
type Engine struct {
	now       units.Time
	seq       uint64
	events    eventHeap
	free      []*scheduledEvent
	processed uint64
	stopped   bool
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{
		events: make(eventHeap, 0, initialHeapCap),
		free:   make([]*scheduledEvent, 0, initialHeapCap),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Instrument exports the engine's progress to a metrics registry via lazy
// collectors: no per-event recording cost, the values are read only at
// snapshot time.
func (e *Engine) Instrument(reg *obs.Registry) {
	reg.CounterFunc("sim_events_dispatched_total", func() uint64 { return e.processed })
	reg.CounterFunc("sim_events_scheduled_total", func() uint64 { return e.seq })
	reg.GaugeFunc("sim_pending_events", func() int64 { return int64(len(e.events)) })
	reg.GaugeFunc("sim_virtual_time_us", func() int64 { return int64(e.now) / int64(units.Microsecond) })
}

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// acquire takes an event record from the free list (or allocates one) and
// stamps it with the next sequence number.
func (e *Engine) acquire(at units.Time, fn Event) *scheduledEvent {
	e.seq++
	var ev *scheduledEvent
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = new(scheduledEvent)
	}
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	return ev
}

// release recycles an event record that left the heap. Clearing fn drops the
// closure reference; bumping gen invalidates any Timer still pointing here.
func (e *Engine) release(ev *scheduledEvent) {
	ev.fn = nil
	ev.gen++
	ev.index = -1
	e.free = append(e.free, ev)
}

// remove deletes a still-queued event from the heap and recycles its record.
func (e *Engine) remove(ev *scheduledEvent) {
	heap.Remove(&e.events, ev.index)
	e.release(ev)
}

// Schedule runs fn at the absolute time at. Scheduling in the past panics:
// it always indicates a simulator bug.
func (e *Engine) Schedule(at units.Time, fn Event) {
	e.scheduleEvent(at, fn)
}

func (e *Engine) scheduleEvent(at units.Time, fn Event) *scheduledEvent {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := e.acquire(at, fn)
	heap.Push(&e.events, ev)
	return ev
}

// After runs fn after delay d.
func (e *Engine) After(d units.Duration, fn Event) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now.Add(d), fn)
}

// Stop halts Run/RunUntil after the current event returns. Remaining events
// stay queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the final simulated time.
func (e *Engine) Run() units.Time { return e.RunUntil(units.MaxTime) }

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; the clock does not advance past the
// last executed event (or the deadline if no event ran at it).
func (e *Engine) RunUntil(deadline units.Time) units.Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.events)
		at, fn := next.at, next.fn
		// Recycle before dispatch: fn may schedule and wants the record
		// back, and gen is already bumped so stale timer cancels no-op.
		e.release(next)
		e.now = at
		e.processed++
		fn(e)
	}
	return e.now
}

// Step executes exactly one event if any is pending, reporting whether one
// ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	next := heap.Pop(&e.events).(*scheduledEvent)
	at, fn := next.at, next.fn
	e.release(next)
	e.now = at
	e.processed++
	fn(e)
	return true
}

// Timer is a cancellable, re-armable one-shot timer, used for transport
// retransmission timeouts. The zero value is an unarmed timer.
type Timer struct {
	engine *Engine
	fn     Event
	// fire is the heap-scheduled callback, allocated once in NewTimer so
	// re-arming (the transport RTO hot path) never allocates a closure.
	fire    Event
	ev      *scheduledEvent
	gen     uint64
	dueAt   units.Time
	pending bool
}

// NewTimer returns a timer that runs fn when it fires.
func NewTimer(e *Engine, fn Event) *Timer {
	t := &Timer{engine: e, fn: fn}
	t.fire = func(e *Engine) {
		t.pending = false
		t.ev = nil
		t.fn(e)
	}
	return t
}

// Arm (re)schedules the timer to fire at the absolute time at, replacing any
// earlier schedule. A deadline already in the past fires at the current time
// (after events already queued for this instant).
func (t *Timer) Arm(at units.Time) {
	t.Cancel()
	if at < t.engine.now {
		at = t.engine.now
	}
	t.ev = t.engine.scheduleEvent(at, t.fire)
	t.gen = t.ev.gen
	t.dueAt = at
	t.pending = true
}

// ArmAfter (re)schedules the timer to fire after d.
func (t *Timer) ArmAfter(d units.Duration) {
	if d < 0 {
		d = 0
	}
	t.Arm(t.engine.Now().Add(d))
}

// Cancel disarms the timer if pending, removing its event from the heap so
// long runs with many re-armed timers do not accumulate dead entries.
func (t *Timer) Cancel() {
	if t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0 {
		t.engine.remove(t.ev)
	}
	t.ev = nil
	t.pending = false
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.pending }

// DueAt returns the time the timer is armed for; meaningful only when
// Pending.
func (t *Timer) DueAt() units.Time { return t.dueAt }
