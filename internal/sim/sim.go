// lint:virtual-time
// (pragma: opts this package into the wallclock analyzer — no wall-clock
// reads in non-test sources; see internal/lint and DESIGN.md §12)

// Package sim implements the discrete-event simulation engine underneath the
// packet-level network simulator. It is a minimal htsim-style core: a
// priority queue of timestamped events, a logical clock, and reusable timers.
//
// Events scheduled for the same instant run in scheduling order (FIFO),
// which keeps runs deterministic for a given seed. Event records are
// recycled through a per-engine free list and cancelled timers are removed
// from the heap eagerly, so the steady-state event loop allocates nothing.
//
// An Engine is single-threaded by design: one engine per goroutine. The
// parallel experiment runner (internal/runner) exploits this by giving every
// trial its own engine rather than sharing one.
package sim

import (
	"container/heap"
	"fmt"

	"incastproxy/internal/obs"
	"incastproxy/internal/units"
)

// Event is a deferred callback. Handlers receive the engine so they can
// schedule follow-up work.
type Event func(*Engine)

type scheduledEvent struct {
	at units.Time
	// key is a caller-supplied tie-break rank for events at the same
	// instant (ScheduleKeyed). Keyed events order by key and run before
	// any plain Schedule/After event (key 0) at the same instant; plain
	// events keep strict FIFO order among themselves. Keyed ordering lets
	// link deliveries carry an intrinsic, engine-independent rank — the
	// property the sharded runtime needs for byte-identical runs at any
	// shard count — and arrivals-before-timers keeps a retransmission
	// timer that lands exactly on its ACK's arrival instant from firing
	// spuriously.
	key uint64
	seq uint64
	fn  Event
	// gen increments every time the record returns to the free list, so a
	// Timer holding a stale pointer can tell its event already fired or was
	// recycled and must not be removed again.
	gen   uint64
	index int // heap position; -1 once popped or removed
}

type eventHeap []*scheduledEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	ki, kj := h[i].key, h[j].key
	if ki != kj {
		// Keyed events (deliveries) run before plain events (key 0 →
		// rank MaxUint64): an arrival coinciding with a local timer is
		// processed first, mirroring the wire beating the clock.
		if ki == 0 {
			ki = ^uint64(0)
		}
		if kj == 0 {
			kj = ^uint64(0)
		}
		if ki != kj {
			return ki < kj
		}
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// initialHeapCap pre-sizes the event heap and free list: incast runs keep
// hundreds of in-flight packet/timer events, and starting near steady state
// avoids the early append-doubling churn on every run of a sweep.
const initialHeapCap = 256

// Engine is a discrete-event scheduler. The zero value is not usable; create
// one with New.
type Engine struct {
	now       units.Time
	seq       uint64
	events    eventHeap
	free      []*scheduledEvent
	processed uint64
	stopped   bool
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{
		events: make(eventHeap, 0, initialHeapCap),
		free:   make([]*scheduledEvent, 0, initialHeapCap),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Instrument exports the engine's progress to a metrics registry via lazy
// collectors: no per-event recording cost, the values are read only at
// snapshot time.
func (e *Engine) Instrument(reg *obs.Registry) {
	reg.CounterFunc("sim_events_dispatched_total", func() uint64 { return e.processed })
	reg.CounterFunc("sim_events_scheduled_total", func() uint64 { return e.seq })
	reg.GaugeFunc("sim_pending_events", func() int64 { return int64(len(e.events)) })
	reg.GaugeFunc("sim_virtual_time_us", func() int64 { return int64(e.now) / int64(units.Microsecond) })
}

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// acquire takes an event record from the free list (or allocates one) and
// stamps it with the next sequence number.
func (e *Engine) acquire(at units.Time, fn Event) *scheduledEvent {
	e.seq++
	var ev *scheduledEvent
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = new(scheduledEvent)
	}
	ev.at = at
	ev.key = 0
	ev.seq = e.seq
	ev.fn = fn
	return ev
}

// release recycles an event record that left the heap. Clearing fn drops the
// closure reference; bumping gen invalidates any Timer still pointing here.
func (e *Engine) release(ev *scheduledEvent) {
	ev.fn = nil
	ev.gen++
	ev.index = -1
	e.free = append(e.free, ev)
}

// remove deletes a still-queued event from the heap and recycles its record.
func (e *Engine) remove(ev *scheduledEvent) {
	heap.Remove(&e.events, ev.index)
	e.release(ev)
}

// Schedule runs fn at the absolute time at. Scheduling in the past panics:
// it always indicates a simulator bug.
func (e *Engine) Schedule(at units.Time, fn Event) {
	e.scheduleEvent(at, fn)
}

func (e *Engine) scheduleEvent(at units.Time, fn Event) *scheduledEvent {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := e.acquire(at, fn)
	heap.Push(&e.events, ev)
	return ev
}

// ScheduleKeyed runs fn at the absolute time at, with key (which must be
// nonzero) ranking it among same-instant events: lower keys run first, and
// every keyed event runs before the plain Schedule/After events (key 0) at
// that instant. Events with equal keys keep FIFO order. Link deliveries use
// a packet-ID hash as the key so that same-instant arrival order is a
// function of the packets alone, not of the order the delivery events
// happened to be scheduled in — the invariant that keeps sharded runs
// byte-identical at any shard count. Running arrivals before plain events
// (timers) preserves the serial engine's emergent behavior that an ACK
// arriving at the exact instant its retransmission timer expires cancels
// the timer rather than losing the race to it.
func (e *Engine) ScheduleKeyed(at units.Time, key uint64, fn Event) {
	ev := e.scheduleEvent(at, fn)
	ev.key = key
	heap.Fix(&e.events, ev.index)
}

// After runs fn after delay d.
func (e *Engine) After(d units.Duration, fn Event) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now.Add(d), fn)
}

// Stop halts Run/RunUntil after the current event returns. Remaining events
// stay queued. A Stop issued while no run is in progress is sticky: the next
// Run/RunUntil consumes it and returns immediately, without executing any
// event or advancing the clock.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the final simulated time.
func (e *Engine) Run() units.Time { return e.RunUntil(units.MaxTime) }

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. On a non-stopped exit the clock
// advances to the deadline (so back-to-back RunUntil calls see time move
// even through event-free windows — the shard barrier depends on this);
// Run's MaxTime sentinel is exempt, so Run keeps returning the last event's
// time. A pending Stop — whether issued by an event during this run or
// left over from before it — is consumed exactly once and freezes the
// clock where the last executed event left it.
func (e *Engine) RunUntil(deadline units.Time) units.Time {
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.events)
		at, fn := next.at, next.fn
		// Recycle before dispatch: fn may schedule and wants the record
		// back, and gen is already bumped so stale timer cancels no-op.
		e.release(next)
		e.now = at
		e.processed++
		fn(e)
	}
	if e.stopped {
		e.stopped = false
		return e.now
	}
	if deadline != units.MaxTime && deadline > e.now {
		e.now = deadline
	}
	return e.now
}

// NextEventAt returns the timestamp of the earliest queued event, or
// ok=false when the queue is empty. Shard barriers use it to compute the
// global lookahead horizon.
func (e *Engine) NextEventAt() (units.Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// Scheduled returns the number of events ever scheduled on this engine.
func (e *Engine) Scheduled() uint64 { return e.seq }

// Step executes exactly one event if any is pending, reporting whether one
// ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	next := heap.Pop(&e.events).(*scheduledEvent)
	at, fn := next.at, next.fn
	e.release(next)
	e.now = at
	e.processed++
	fn(e)
	return true
}

// Timer is a cancellable, re-armable one-shot timer, used for transport
// retransmission timeouts. The zero value is an unarmed timer.
type Timer struct {
	engine *Engine
	fn     Event
	// fire is the heap-scheduled callback, allocated once in NewTimer so
	// re-arming (the transport RTO hot path) never allocates a closure.
	fire    Event
	ev      *scheduledEvent
	gen     uint64
	dueAt   units.Time
	pending bool
}

// NewTimer returns a timer that runs fn when it fires.
func NewTimer(e *Engine, fn Event) *Timer {
	t := &Timer{engine: e, fn: fn}
	t.fire = func(e *Engine) {
		t.pending = false
		t.ev = nil
		t.fn(e)
	}
	return t
}

// Arm (re)schedules the timer to fire at the absolute time at, replacing any
// earlier schedule. A deadline already in the past fires at the current time
// (after events already queued for this instant).
func (t *Timer) Arm(at units.Time) {
	t.Cancel()
	if at < t.engine.now {
		at = t.engine.now
	}
	t.ev = t.engine.scheduleEvent(at, t.fire)
	t.gen = t.ev.gen
	t.dueAt = at
	t.pending = true
}

// ArmAfter (re)schedules the timer to fire after d.
func (t *Timer) ArmAfter(d units.Duration) {
	if d < 0 {
		d = 0
	}
	t.Arm(t.engine.Now().Add(d))
}

// Cancel disarms the timer if pending, removing its event from the heap so
// long runs with many re-armed timers do not accumulate dead entries.
func (t *Timer) Cancel() {
	if t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0 {
		t.engine.remove(t.ev)
	}
	t.ev = nil
	t.pending = false
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.pending }

// DueAt returns the time the timer is armed for; meaningful only when
// Pending.
func (t *Timer) DueAt() units.Time { return t.dueAt }
