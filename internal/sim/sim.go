// Package sim implements the discrete-event simulation engine underneath the
// packet-level network simulator. It is a minimal htsim-style core: a
// priority queue of timestamped events, a logical clock, and reusable timers.
//
// Events scheduled for the same instant run in scheduling order (FIFO),
// which keeps runs deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"

	"incastproxy/internal/obs"
	"incastproxy/internal/units"
)

// Event is a deferred callback. Handlers receive the engine so they can
// schedule follow-up work.
type Event func(*Engine)

type scheduledEvent struct {
	at     units.Time
	seq    uint64
	fn     Event
	cancel *bool // non-nil when cancellable; true means skip
	index  int
}

type eventHeap []*scheduledEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event scheduler. The zero value is not usable; create
// one with New.
type Engine struct {
	now       units.Time
	seq       uint64
	events    eventHeap
	processed uint64
	stopped   bool
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Instrument exports the engine's progress to a metrics registry via lazy
// collectors: no per-event recording cost, the values are read only at
// snapshot time.
func (e *Engine) Instrument(reg *obs.Registry) {
	reg.CounterFunc("sim_events_dispatched_total", func() uint64 { return e.processed })
	reg.CounterFunc("sim_events_scheduled_total", func() uint64 { return e.seq })
	reg.GaugeFunc("sim_pending_events", func() int64 { return int64(len(e.events)) })
	reg.GaugeFunc("sim_virtual_time_us", func() int64 { return int64(e.now) / int64(units.Microsecond) })
}

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn at the absolute time at. Scheduling in the past panics:
// it always indicates a simulator bug.
func (e *Engine) Schedule(at units.Time, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, &scheduledEvent{at: at, seq: e.seq, fn: fn})
}

// After runs fn after delay d.
func (e *Engine) After(d units.Duration, fn Event) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now.Add(d), fn)
}

// Stop halts Run/RunUntil after the current event returns. Remaining events
// stay queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the final simulated time.
func (e *Engine) Run() units.Time { return e.RunUntil(units.MaxTime) }

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; the clock does not advance past the
// last executed event (or the deadline if no event ran at it).
func (e *Engine) RunUntil(deadline units.Time) units.Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.events)
		if next.cancel != nil && *next.cancel {
			continue
		}
		e.now = next.at
		e.processed++
		next.fn(e)
	}
	return e.now
}

// Step executes exactly one event if any is pending, reporting whether one
// ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	next := heap.Pop(&e.events).(*scheduledEvent)
	if next.cancel != nil && *next.cancel {
		return e.Step()
	}
	e.now = next.at
	e.processed++
	next.fn(e)
	return true
}

// Timer is a cancellable, re-armable one-shot timer, used for transport
// retransmission timeouts. The zero value is an unarmed timer.
type Timer struct {
	engine  *Engine
	fn      Event
	cancel  *bool
	dueAt   units.Time
	pending bool
}

// NewTimer returns a timer that runs fn when it fires.
func NewTimer(e *Engine, fn Event) *Timer {
	return &Timer{engine: e, fn: fn}
}

// Arm (re)schedules the timer to fire at the absolute time at, replacing any
// earlier schedule.
func (t *Timer) Arm(at units.Time) {
	t.Cancel()
	flag := new(bool)
	t.cancel = flag
	t.dueAt = at
	t.pending = true
	t.engine.seq++
	heap.Push(&t.engine.events, &scheduledEvent{
		at:     at,
		seq:    t.engine.seq,
		cancel: flag,
		fn: func(e *Engine) {
			t.pending = false
			t.fn(e)
		},
	})
}

// ArmAfter (re)schedules the timer to fire after d.
func (t *Timer) ArmAfter(d units.Duration) {
	if d < 0 {
		d = 0
	}
	t.Arm(t.engine.Now().Add(d))
}

// Cancel disarms the timer if pending.
func (t *Timer) Cancel() {
	if t.cancel != nil {
		*t.cancel = true
		t.cancel = nil
	}
	t.pending = false
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.pending }

// DueAt returns the time the timer is armed for; meaningful only when
// Pending.
func (t *Timer) DueAt() units.Time { return t.dueAt }
