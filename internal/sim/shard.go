// lint:virtual-time
// (pragma: opts this package into the wallclock analyzer — no wall-clock
// reads in non-test sources; see internal/lint and DESIGN.md §12)

package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"incastproxy/internal/obs"
	"incastproxy/internal/units"
)

// ShardGroup runs several Engines in conservative-lookahead lockstep: the
// classic null-message-free PDES barrier scheme (Chandy/Misra/Bryant with a
// global window). The fabric is partitioned so that every link crossing a
// shard boundary has a propagation delay of at least the group's lookahead
// L. Each barrier round computes the global minimum next-event time t_min
// and lets every shard run independently through the exclusive horizon
// [t_min, t_min+L): any packet handed off during the round arrives at its
// destination shard no earlier than t_min+L, so no shard can receive a
// cross-shard event in its own past.
//
// Cross-shard handoffs go through per-source outboxes (Post) and are merged
// at each barrier in (time, source shard, post sequence) order, then
// injected with the packet-ID tie-break key (ScheduleKeyed). Together those
// two orderings make a run's event execution a pure function of the seed:
// byte-identical results at any shard count and any worker count.
//
// Within a round the shards share nothing — each Engine stays
// single-threaded — so rounds may execute on parallel worker goroutines.
// Between rounds the barrier (WaitGroup join) orders all memory accesses.
type ShardGroup struct {
	engines   []*Engine
	regs      []*obs.Registry
	lookahead units.Duration
	workers   int

	// outbox and postSeq are indexed by source shard; each entry is only
	// ever touched by the goroutine executing that shard's round, so no
	// locking is needed.
	outbox  [][]crossEvent
	postSeq []uint64

	inject []crossEvent // barrier-time merge scratch
	rounds uint64
	stop   atomic.Bool
}

// crossEvent is one pending cross-shard handoff.
type crossEvent struct {
	at  units.Time
	key uint64
	src int
	seq uint64
	dst int
	fn  Event
}

// NewShardGroup returns n fresh engines synchronized with the given
// lookahead (which must be positive: it is the minimum propagation delay of
// every boundary link). workers bounds the goroutines running shard rounds;
// 0 or negative means one per shard. Each shard also gets its own metrics
// registry (see ShardRegistries) for per-shard diagnostics.
func NewShardGroup(n int, lookahead units.Duration, workers int) *ShardGroup {
	if n < 1 {
		panic(fmt.Sprintf("sim: shard group needs at least one shard, got %d", n))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: shard lookahead must be positive, got %v", lookahead))
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	g := &ShardGroup{
		engines:   make([]*Engine, n),
		regs:      make([]*obs.Registry, n),
		lookahead: lookahead,
		workers:   workers,
		outbox:    make([][]crossEvent, n),
		postSeq:   make([]uint64, n),
	}
	for i := range g.engines {
		g.engines[i] = New()
		g.regs[i] = obs.NewRegistry()
		g.engines[i].Instrument(g.regs[i])
	}
	return g
}

// Shards returns the number of shards.
func (g *ShardGroup) Shards() int { return len(g.engines) }

// Engine returns shard i's engine.
func (g *ShardGroup) Engine(i int) *Engine { return g.engines[i] }

// Lookahead returns the group's conservative lookahead window.
func (g *ShardGroup) Lookahead() units.Duration { return g.lookahead }

// Post queues fn to run at absolute time at on shard dst, on behalf of an
// event currently executing on shard src. key is the same-instant tie-break
// rank (the packet ID for link deliveries). at must respect the lookahead
// contract — at least src's current time plus the lookahead — or the
// partition is broken (a boundary link shorter than the lookahead), which
// is a programming error and panics.
func (g *ShardGroup) Post(src, dst int, at units.Time, key uint64, fn Event) {
	e := g.engines[src]
	if at < e.now.Add(g.lookahead) {
		panic(fmt.Sprintf("sim: cross-shard event at %v from shard %d (now %v) violates lookahead %v",
			at, src, e.now, g.lookahead))
	}
	g.postSeq[src]++
	g.outbox[src] = append(g.outbox[src], crossEvent{
		at: at, key: key, src: src, seq: g.postSeq[src], dst: dst, fn: fn,
	})
}

// RequestStop asks the group to halt at the next barrier. Unlike
// Engine.Stop, which takes effect after the current event, a group stop is
// quantized to the round boundary: every shard finishes the current round's
// horizon first. That keeps the stop point — and therefore the set of
// executed events — identical at every shard and worker count. Safe to call
// from any shard's events or from other goroutines.
func (g *ShardGroup) RequestStop() { g.stop.Store(true) }

// StopRequested reports whether a group stop is pending or was honored.
func (g *ShardGroup) StopRequested() bool { return g.stop.Load() }

// Rounds returns the number of completed barrier rounds.
func (g *ShardGroup) Rounds() uint64 { return g.rounds }

// Processed returns the total number of events executed across all shards.
func (g *ShardGroup) Processed() uint64 {
	var total uint64
	for _, e := range g.engines {
		total += e.Processed()
	}
	return total
}

// Scheduled returns the total number of events scheduled across all shards.
func (g *ShardGroup) Scheduled() uint64 {
	var total uint64
	for _, e := range g.engines {
		total += e.Scheduled()
	}
	return total
}

// Pending returns the total number of queued events across all shards.
func (g *ShardGroup) Pending() int {
	total := 0
	for _, e := range g.engines {
		total += e.Pending()
	}
	return total
}

// CrossEvents returns the total number of cross-shard handoffs posted so
// far. Diagnostic only: the value depends on the partition, so it must not
// feed artifacts that are compared across shard counts.
func (g *ShardGroup) CrossEvents() uint64 {
	var total uint64
	for _, n := range g.postSeq {
		total += n
	}
	return total
}

// Now returns the group clock: the maximum shard clock. After a barrier all
// shards agree on it.
func (g *ShardGroup) Now() units.Time {
	var hi units.Time
	for _, e := range g.engines {
		if t := e.Now(); t > hi {
			hi = t
		}
	}
	return hi
}

// Run executes rounds until no shard has work left or RequestStop is
// honored, returning the final group time.
func (g *ShardGroup) Run() units.Time { return g.RunUntil(units.MaxTime) }

// RunUntil executes barrier rounds until every queue is drained, the next
// global event lies beyond the deadline, or a stop is honored. Matching
// Engine.RunUntil, a non-stopped exit advances every shard clock to the
// deadline (MaxTime excepted).
func (g *ShardGroup) RunUntil(deadline units.Time) units.Time {
	for {
		// Inject before honoring a stop so that every posted handoff is
		// scheduled exactly once: scheduled-event counts then match a
		// single-shard run, where deliveries schedule at serialization
		// time rather than at a barrier.
		g.injectPending()
		if g.stop.Load() {
			g.stop.Store(false)
			return g.Now()
		}
		tmin, ok := g.nextEventTime()
		if !ok || tmin > deadline {
			break
		}
		horizon := tmin.Add(g.lookahead) - 1 // exclusive at tmin+L
		if horizon > deadline || horizon < tmin {
			horizon = deadline
		}
		g.runRound(horizon)
		g.rounds++
	}
	if deadline != units.MaxTime {
		for _, e := range g.engines {
			e.RunUntil(deadline) // no events <= deadline remain: advances the clock only
		}
	}
	return g.Now()
}

// nextEventTime returns the earliest queued event time across all shards.
func (g *ShardGroup) nextEventTime() (units.Time, bool) {
	var tmin units.Time
	found := false
	for _, e := range g.engines {
		if at, ok := e.NextEventAt(); ok && (!found || at < tmin) {
			tmin, found = at, true
		}
	}
	return tmin, found
}

// injectPending merges every outbox in deterministic (time, source shard,
// post sequence) order and schedules the events on their destination
// engines.
func (g *ShardGroup) injectPending() {
	buf := g.inject[:0]
	for src := range g.outbox {
		buf = append(buf, g.outbox[src]...)
		g.outbox[src] = g.outbox[src][:0]
	}
	if len(buf) == 0 {
		g.inject = buf
		return
	}
	sort.Slice(buf, func(i, j int) bool {
		a, b := buf[i], buf[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for i := range buf {
		g.engines[buf[i].dst].ScheduleKeyed(buf[i].at, buf[i].key, buf[i].fn)
		buf[i].fn = nil // drop the closure reference while the scratch is retained
	}
	g.inject = buf[:0]
}

// runRound advances every shard to the horizon, fanning shards across the
// group's worker goroutines. A single worker (or a single shard) runs
// inline.
func (g *ShardGroup) runRound(horizon units.Time) {
	n := len(g.engines)
	w := g.workers
	if w > n {
		w = n
	}
	if w <= 1 || n == 1 {
		for _, e := range g.engines {
			e.RunUntil(horizon)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= n {
					return
				}
				g.engines[idx].RunUntil(horizon)
			}
		}()
	}
	wg.Wait()
}

// ShardRegistries returns the per-shard diagnostic registries (one per
// engine, instrumented at construction). Their metric names are the plain
// engine series; fold them into one view with obs.MergeSnapshots. They are
// deliberately not part of the run manifest: per-shard values depend on the
// partition, and manifests must stay byte-identical across shard counts.
func (g *ShardGroup) ShardRegistries() []*obs.Registry { return g.regs }

// MergedSnapshot folds the per-shard registries into one snapshot:
// counters and histograms sum, gauges sum (see obs.MergeSnapshots).
func (g *ShardGroup) MergedSnapshot() obs.Snapshot {
	snaps := make([]obs.Snapshot, len(g.regs))
	for i, r := range g.regs {
		snaps[i] = r.Snapshot()
	}
	return obs.MergeSnapshots(snaps...)
}

// Instrument exports the group's progress to a metrics registry under the
// same series names Engine.Instrument uses (summed across shards; virtual
// time is the group clock), plus the barrier round count. Every exported
// value is a pure function of the simulation content, not of the partition,
// so instrumented artifacts compare byte-identical across shard counts.
func (g *ShardGroup) Instrument(reg *obs.Registry) {
	reg.CounterFunc("sim_events_dispatched_total", g.Processed)
	reg.CounterFunc("sim_events_scheduled_total", g.Scheduled)
	reg.GaugeFunc("sim_pending_events", func() int64 { return int64(g.Pending()) })
	reg.GaugeFunc("sim_virtual_time_us", func() int64 { return int64(g.Now()) / int64(units.Microsecond) })
	reg.CounterFunc("sim_shard_rounds_total", func() uint64 { return g.rounds })
}
