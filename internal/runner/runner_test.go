package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsBySubmission(t *testing.T) {
	for _, par := range []int{1, 2, 4, 0} {
		par := par
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			got, err := Map(par, 100, func(i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 100 {
				t.Fatalf("len = %d, want 100", len(got))
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestMapSerialAndParallelIdentical(t *testing.T) {
	trial := func(i int) (string, error) { return fmt.Sprintf("trial-%03d", i), nil }
	serial, err := Map(1, 37, trial)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(8, 37, trial)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %q vs parallel %q", i, serial[i], parallel[i])
		}
	}
}

func TestMapZeroTrials(t *testing.T) {
	got, err := Map(4, 0, func(int) (int, error) { t.Fatal("trial ran"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(4, 0) = %v, %v; want nil, nil", got, err)
	}
}

// The surfaced error must be the lowest-indexed one — the error a serial
// loop would have returned — no matter which worker hits its trial first.
func TestMapReturnsLowestIndexedError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, par := range []int{1, 4} {
		_, err := Map(par, 16, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errLow
			case 11:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("parallel=%d: err = %v, want %v", par, err, errLow)
		}
	}
}

func TestMapStopsClaimingAfterFailure(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	_, err := Map(2, 1000, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Workers may finish trials already claimed, but must not chew
	// through the whole batch after the failure flag is up.
	if n := ran.Load(); n == 1000 {
		t.Fatalf("all %d trials ran despite early failure", n)
	}
}

func TestMapRepanicsFromTrial(t *testing.T) {
	for _, par := range []int{1, 4} {
		par := par
		func() {
			defer func() {
				p := recover()
				if p != "trial 2 exploded" {
					t.Fatalf("parallel=%d: recovered %v", par, p)
				}
			}()
			Map(par, 8, func(i int) (int, error) {
				if i == 2 {
					panic("trial 2 exploded")
				}
				return i, nil
			})
			t.Fatalf("parallel=%d: Map returned instead of panicking", par)
		}()
	}
}

func TestParallelism(t *testing.T) {
	if got := Parallelism(3); got != 3 {
		t.Fatalf("Parallelism(3) = %d", got)
	}
	if got := Parallelism(0); got < 1 {
		t.Fatalf("Parallelism(0) = %d, want >= 1", got)
	}
	if got := Parallelism(-5); got < 1 {
		t.Fatalf("Parallelism(-5) = %d, want >= 1", got)
	}
}
