// Package runner fans independent simulation trials across worker
// goroutines while keeping outputs byte-identical to a serial run.
//
// The experiment harness repeats many self-contained simulations: the same
// spec under different seeds (workload.Run), different sweep cells
// (figures), different chaos seeds. Each trial builds its own sim.Engine,
// obs.Registry, and rng.Source, so trials share nothing and can execute
// concurrently; the only thing that must be preserved is the order in which
// their results are merged. Map provides exactly that contract: trials run
// on up to GOMAXPROCS workers, results come back indexed by submission
// order, and the error (or panic) surfaced is the one from the
// lowest-indexed failing trial — the same one a serial loop would have hit
// first.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism resolves a worker-count knob: n > 0 means n workers, anything
// else means one worker per available CPU (GOMAXPROCS).
func Parallelism(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs n independent trials and returns their results in submission
// order. parallel <= 0 selects GOMAXPROCS workers; parallel == 1 runs the
// trials serially on the calling goroutine with no synchronization at all,
// so the serial path is exactly the pre-pool code shape.
//
// Trials must be independent: trial(i) may not read or write state shared
// with trial(j). On failure Map returns a nil slice and the error from the
// lowest-indexed failing trial; a panicking trial re-panics on the caller's
// goroutine (again lowest index first). Workers stop claiming new trials
// once any trial has failed, but trials already in flight run to completion.
func Map[T any](parallel, n int, trial func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	parallel = Parallelism(parallel)
	if parallel > n {
		parallel = n
	}
	results := make([]T, n)
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			r, err := trial(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, n)
	panics := make([]any, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				runTrial(trial, i, results, errs, panics, &failed)
			}
		}()
	}
	wg.Wait()

	// Merge in submission order so the surfaced failure is the one a
	// serial loop would have hit first, regardless of which worker ran it.
	for i := 0; i < n; i++ {
		if panics[i] != nil {
			panic(panics[i])
		}
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return results, nil
}

// runTrial executes one trial, capturing its panic (if any) so the pool can
// re-raise it deterministically from the caller's goroutine.
func runTrial[T any](trial func(i int) (T, error), i int,
	results []T, errs []error, panics []any, failed *atomic.Bool) {
	defer func() {
		if p := recover(); p != nil {
			panics[i] = p
			failed.Store(true)
		}
	}()
	r, err := trial(i)
	if err != nil {
		errs[i] = err
		failed.Store(true)
		return
	}
	results[i] = r
}
