// Package topo builds the simulated fabrics the paper evaluates on: two
// leaf-spine datacenters (8 spines x 8 leaves x 8 servers each, §4.1)
// joined by 64 backbone routers, with every link 100 Gb/s. Intra-datacenter
// links have 1 us propagation delay; the long-haul spine<->backbone links
// default to 1 ms and are the variable Figure 3 sweeps.
//
// The package also computes shortest-path ECMP forwarding tables for every
// host, which the switches spray packets across (§4.1 uses packet spraying).
package topo

import (
	"fmt"
	"sync"

	"incastproxy/internal/netsim"
	"incastproxy/internal/obs"
	"incastproxy/internal/rng"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// Config describes the fabric. DefaultConfig returns the paper's §4.1
// parameters; tests use smaller instances.
type Config struct {
	// Per-datacenter leaf-spine dimensions.
	Spines, Leaves, ServersPerLeaf int
	// Backbones is the number of long-haul routers between the DCs;
	// each spine connects to BackbonesPerSpine of them.
	Backbones, BackbonesPerSpine int

	LinkRate units.BitRate
	// IntraDelay is the propagation delay of every in-DC link.
	IntraDelay units.Duration
	// InterDelay is the propagation delay of each spine<->backbone link
	// (the "long-haul link latency" of Figure 3).
	InterDelay units.Duration

	// TorQueue configures leaf and spine egress queues; BackboneQueue
	// configures backbone-router egress queues; HostQueue configures
	// host NIC egress (unbounded by default: host memory).
	TorQueue, BackboneQueue, HostQueue netsim.QueueConfig

	// TrimDC enables packet trimming on the switches of each DC
	// (overriding the queue configs' Trim field). The streamlined proxy
	// scheme trims in the sending datacenter.
	TrimDC [2]bool

	// Spray selects per-packet ECMP spraying (true, §4.1) or per-flow
	// hashing (false).
	Spray bool

	// Seed drives every random choice in the fabric.
	Seed int64
}

// DefaultConfig returns the exact §4.1 simulation setup.
func DefaultConfig() Config {
	return Config{
		Spines:            8,
		Leaves:            8,
		ServersPerLeaf:    8,
		Backbones:         64,
		BackbonesPerSpine: 8,
		LinkRate:          100 * units.Gbps,
		IntraDelay:        units.Microsecond,
		InterDelay:        units.Millisecond,
		TorQueue: netsim.QueueConfig{
			Capacity: 17_015_000, // 17.015 MB
			MarkLow:  33_200,     // 33.2 KB
			MarkHigh: 136_950,    // 136.95 KB
		},
		BackboneQueue: netsim.QueueConfig{
			Capacity: 49_800_000, // 49.8 MB
			MarkLow:  9_960_000,  // 9.96 MB
			MarkHigh: 39_840_000, // 39.84 MB
		},
		HostQueue: netsim.QueueConfig{}, // unbounded, unmarked
		Spray:     true,
		Seed:      1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Spines <= 0 || c.Leaves <= 0 || c.ServersPerLeaf <= 0:
		return fmt.Errorf("topo: dimensions must be positive: %+v", c)
	case c.Backbones > 0 && c.BackbonesPerSpine <= 0:
		return fmt.Errorf("topo: BackbonesPerSpine must be positive when Backbones > 0")
	case c.Backbones > 0 && c.Spines*c.BackbonesPerSpine != c.Backbones:
		return fmt.Errorf("topo: need Spines*BackbonesPerSpine == Backbones (%d*%d != %d)",
			c.Spines, c.BackbonesPerSpine, c.Backbones)
	case c.LinkRate <= 0:
		return fmt.Errorf("topo: LinkRate must be positive")
	}
	return nil
}

// Network is a built fabric attached to a simulation engine.
type Network struct {
	Cfg    Config
	Engine *sim.Engine

	// Hosts[dc][leaf*ServersPerLeaf+i] is a server in datacenter dc.
	Hosts     [2][]*netsim.Host
	Leaves    [2][]*netsim.Switch
	Spines    [2][]*netsim.Switch
	Backbones []*netsim.Switch

	nodes  map[netsim.NodeID]netsim.Node
	nextID netsim.NodeID

	// Path-query caches. The fabric is static after Build, so the
	// adjacency map is computed once and BFS distance maps are memoized
	// per queried root: sizing 10k senders' windows asks for paths to the
	// same one or two destinations 10k times, and without the cache that
	// BFS dominated large builds. Guarded by pathMu because parallel
	// sweeps may share nothing but read concurrently is cheap insurance.
	pathMu    sync.Mutex
	adj       map[netsim.NodeID][]netsim.NodeID
	distCache map[netsim.NodeID]map[netsim.NodeID]int
}

// Build constructs the two-DC fabric. It panics on invalid configuration
// (construction errors are programmer errors, not runtime conditions).
func Build(e *sim.Engine, cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Network{Cfg: cfg, Engine: e, nodes: make(map[netsim.NodeID]netsim.Node)}
	src := rng.New(cfg.Seed)

	for dc := 0; dc < 2; dc++ {
		tor := cfg.TorQueue
		tor.Trim = cfg.TrimDC[dc]
		for l := 0; l < cfg.Leaves; l++ {
			sw := netsim.NewSwitch(n.allocID(), fmt.Sprintf("dc%d/leaf%d", dc, l), src.Split(int64(dc*1000+l)), cfg.Spray)
			n.register(sw)
			n.Leaves[dc] = append(n.Leaves[dc], sw)
		}
		for s := 0; s < cfg.Spines; s++ {
			sw := netsim.NewSwitch(n.allocID(), fmt.Sprintf("dc%d/spine%d", dc, s), src.Split(int64(dc*1000+100+s)), cfg.Spray)
			n.register(sw)
			n.Spines[dc] = append(n.Spines[dc], sw)
		}
		for l := 0; l < cfg.Leaves; l++ {
			for i := 0; i < cfg.ServersPerLeaf; i++ {
				h := netsim.NewHost(n.allocID(), fmt.Sprintf("dc%d/h%d", dc, l*cfg.ServersPerLeaf+i))
				n.register(h)
				n.Hosts[dc] = append(n.Hosts[dc], h)
				// Host <-> leaf: leaf egress uses the ToR queue
				// (with this DC's trim setting); host egress is
				// the NIC queue.
				netsim.Connect(h, n.Leaves[dc][l], cfg.LinkRate, cfg.IntraDelay, cfg.HostQueue, tor, src)
			}
		}
		// Full leaf<->spine bipartite mesh.
		for l := 0; l < cfg.Leaves; l++ {
			for s := 0; s < cfg.Spines; s++ {
				netsim.Connect(n.Leaves[dc][l], n.Spines[dc][s], cfg.LinkRate, cfg.IntraDelay, tor, tor, src)
			}
		}
	}

	// Backbone routers: backbone b connects spine b/BackbonesPerSpine in
	// each DC over the long-haul links.
	for b := 0; b < cfg.Backbones; b++ {
		bb := netsim.NewSwitch(n.allocID(), fmt.Sprintf("bb%d", b), src.Split(int64(5000+b)), cfg.Spray)
		n.register(bb)
		n.Backbones = append(n.Backbones, bb)
		s := b / cfg.BackbonesPerSpine
		for dc := 0; dc < 2; dc++ {
			tor := cfg.TorQueue
			tor.Trim = cfg.TrimDC[dc]
			netsim.Connect(n.Spines[dc][s], bb, cfg.LinkRate, cfg.InterDelay, tor, cfg.BackboneQueue, src)
		}
	}

	n.computeFIBs()
	return n
}

func (n *Network) allocID() netsim.NodeID {
	n.nextID++
	return n.nextID
}

func (n *Network) register(node netsim.Node) { n.nodes[node.ID()] = node }

// Node returns the node with the given ID, or nil.
func (n *Network) Node(id netsim.NodeID) netsim.Node { return n.nodes[id] }

// Host returns server idx under leaf in datacenter dc.
func (n *Network) Host(dc, leaf, idx int) *netsim.Host {
	return n.Hosts[dc][leaf*n.Cfg.ServersPerLeaf+idx]
}

// computeFIBs installs shortest-path ECMP routes toward every host on every
// switch. A host's only neighbor is its leaf, so its distance map is the
// leaf's shifted by one (with the host itself at zero): one BFS per leaf
// covers every server under it, which is what keeps 10k-host builds cheap.
// For each leaf, the qualifying next-hop ports of every switch (those one
// hop closer to the leaf, in Ports() order — the order fixes the ECMP
// spray set) are collected once and replayed per hosted server; the leaf
// itself routes each server out its direct port.
func (n *Network) computeFIBs() {
	adj := n.adjacencyLocked()
	switches := n.Switches()
	for dc := 0; dc < 2; dc++ {
		for leafIdx, leaf := range n.Leaves[dc] {
			dist := bfs(leaf.ID(), adj)
			type swPorts struct {
				sw    *netsim.Switch
				ports []*netsim.Port
			}
			table := make([]swPorts, 0, len(switches))
			for _, sw := range switches {
				if sw == leaf {
					continue
				}
				d, reachable := dist[sw.ID()]
				if !reachable {
					continue
				}
				var toward []*netsim.Port
				for _, p := range sw.Ports() {
					if pd, ok := dist[p.Peer().Owner().ID()]; ok && pd == d-1 {
						toward = append(toward, p)
					}
				}
				table = append(table, swPorts{sw, toward})
			}
			lo, hi := leafIdx*n.Cfg.ServersPerLeaf, (leafIdx+1)*n.Cfg.ServersPerLeaf
			for _, h := range n.Hosts[dc][lo:hi] {
				for _, e := range table {
					for _, p := range e.ports {
						e.sw.AddRoute(h.ID(), p)
					}
				}
				for _, p := range leaf.Ports() {
					if p.Peer().Owner().ID() == h.ID() {
						leaf.AddRoute(h.ID(), p)
						break
					}
				}
			}
		}
	}
}

// adjacencyLocked returns the cached adjacency map, building it on first
// use (the fabric never changes after Build).
func (n *Network) adjacencyLocked() map[netsim.NodeID][]netsim.NodeID {
	n.pathMu.Lock()
	defer n.pathMu.Unlock()
	if n.adj == nil {
		n.adj = n.adjacency()
	}
	return n.adj
}

// distTo returns the memoized BFS distance map rooted at root.
func (n *Network) distTo(root netsim.NodeID) map[netsim.NodeID]int {
	n.pathMu.Lock()
	defer n.pathMu.Unlock()
	if n.adj == nil {
		n.adj = n.adjacency()
	}
	if n.distCache == nil {
		n.distCache = make(map[netsim.NodeID]map[netsim.NodeID]int)
	}
	if d, ok := n.distCache[root]; ok {
		return d
	}
	d := bfs(root, n.adj)
	n.distCache[root] = d
	return d
}

// adjacency maps each node to its neighbors.
func (n *Network) adjacency() map[netsim.NodeID][]netsim.NodeID {
	adj := make(map[netsim.NodeID][]netsim.NodeID, len(n.nodes))
	addPorts := func(id netsim.NodeID, ports []*netsim.Port) {
		for _, p := range ports {
			adj[id] = append(adj[id], p.Peer().Owner().ID())
		}
	}
	for id, node := range n.nodes {
		switch v := node.(type) {
		case *netsim.Switch:
			addPorts(id, v.Ports())
		case *netsim.Host:
			if v.NIC() != nil {
				addPorts(id, []*netsim.Port{v.NIC()})
			}
		}
	}
	return adj
}

// bfs returns hop distances from root.
func bfs(root netsim.NodeID, adj map[netsim.NodeID][]netsim.NodeID) map[netsim.NodeID]int {
	dist := map[netsim.NodeID]int{root: 0}
	frontier := []netsim.NodeID{root}
	for len(frontier) > 0 {
		var next []netsim.NodeID
		for _, u := range frontier {
			for _, v := range adj[u] {
				if _, seen := dist[v]; !seen {
					dist[v] = dist[u] + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// PathRTT estimates the round-trip time between hosts a and b for a data
// packet of size fwd answered by a control packet of size rev: the sum over
// one shortest path of propagation delays plus per-hop serialization, in
// both directions. Transports use it to size initial windows (IW = 1 BDP,
// §4.1) and initial RTOs.
func (n *Network) PathRTT(a, b *netsim.Host, fwd, rev units.ByteSize) units.Duration {
	links := n.pathLinks(a, b)
	var rtt units.Duration
	for _, l := range links {
		rtt += 2*l.delay + l.rate.TransmitTime(fwd) + l.rate.TransmitTime(rev)
	}
	return rtt
}

// BottleneckRate returns the minimum link rate on a shortest path between a
// and b.
func (n *Network) BottleneckRate(a, b *netsim.Host) units.BitRate {
	links := n.pathLinks(a, b)
	if len(links) == 0 {
		return 0
	}
	minRate := links[0].rate
	for _, l := range links[1:] {
		if l.rate < minRate {
			minRate = l.rate
		}
	}
	return minRate
}

type linkInfo struct {
	rate  units.BitRate
	delay units.Duration
}

// pathLinks returns the links along one shortest path from a to b.
func (n *Network) pathLinks(a, b *netsim.Host) []linkInfo {
	if a == b {
		return nil
	}
	dist := n.distTo(b.ID())
	var links []linkInfo
	cur := netsim.Node(a)
	for cur.ID() != b.ID() {
		var ports []*netsim.Port
		switch v := cur.(type) {
		case *netsim.Host:
			ports = []*netsim.Port{v.NIC()}
		case *netsim.Switch:
			ports = v.Ports()
		}
		var step *netsim.Port
		d := dist[cur.ID()]
		for _, p := range ports {
			if pd, ok := dist[p.Peer().Owner().ID()]; ok && pd == d-1 {
				step = p
				break
			}
		}
		if step == nil {
			return nil // unreachable
		}
		links = append(links, linkInfo{rate: step.Rate(), delay: step.Delay()})
		cur = step.Peer().Owner()
	}
	return links
}

// Switches returns every switch (leaves, spines, backbones) for telemetry
// sweeps.
func (n *Network) Switches() []*netsim.Switch {
	var out []*netsim.Switch
	for dc := 0; dc < 2; dc++ {
		out = append(out, n.Leaves[dc]...)
		out = append(out, n.Spines[dc]...)
	}
	return append(out, n.Backbones...)
}

// AllPorts returns every port in the fabric (both directions of every
// link): switch egress ports plus host NICs.
func (n *Network) AllPorts() []*netsim.Port {
	var out []*netsim.Port
	for _, sw := range n.Switches() {
		out = append(out, sw.Ports()...)
	}
	for dc := 0; dc < 2; dc++ {
		for _, h := range n.Hosts[dc] {
			if h.NIC() != nil {
				out = append(out, h.NIC())
			}
		}
	}
	return out
}

// SetTracer attaches (or with nil, detaches) an event tracer to every port
// queue in the fabric: trims, drops, marks, down-drops, and corruptions
// become instants on the affected flow's track.
func (n *Network) SetTracer(t *obs.Tracer) {
	for _, p := range n.AllPorts() {
		p.SetTracer(t)
	}
}

// Instrument exports fabric-wide aggregate queue counters to the registry as
// lazy collectors (netsim_fabric_*). Per-port series would be 18k metrics on
// the paper's full fabric; experiments that need one port's detail call
// Port.Instrument on just that port.
func (n *Network) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	ports := n.AllPorts()
	sum := func(pick func(*netsim.QueueStats) uint64) func() uint64 {
		return func() uint64 {
			var total uint64
			for _, p := range ports {
				st := p.Stats()
				total += pick(&st)
			}
			return total
		}
	}
	reg.CounterFunc("netsim_fabric_enqueued_total", sum(func(s *netsim.QueueStats) uint64 { return s.Enqueued }))
	reg.CounterFunc("netsim_fabric_dropped_total", sum(func(s *netsim.QueueStats) uint64 { return s.Dropped }))
	reg.CounterFunc("netsim_fabric_trimmed_total", sum(func(s *netsim.QueueStats) uint64 { return s.Trimmed }))
	reg.CounterFunc("netsim_fabric_marked_total", sum(func(s *netsim.QueueStats) uint64 { return s.Marked }))
	reg.CounterFunc("netsim_fabric_corrupted_total", sum(func(s *netsim.QueueStats) uint64 { return s.Corrupted }))
	reg.GaugeFunc("netsim_fabric_max_queue_bytes", func() int64 {
		var hi units.ByteSize
		for _, p := range ports {
			if m := p.Stats().MaxBytes; m > hi {
				hi = m
			}
		}
		return int64(hi)
	})
	reg.GaugeFunc("netsim_fabric_queued_bytes", func() int64 {
		var total units.ByteSize
		for _, p := range ports {
			total += p.QueuedBytes()
		}
		return int64(total)
	})
}

// DownToRPort returns the leaf egress port feeding host h — the "down-ToR"
// link where the paper locates the congestion bottleneck (Figure 1).
func (n *Network) DownToRPort(h *netsim.Host) *netsim.Port {
	return h.NIC().Peer()
}

// InterDCPorts returns both directions of every long-haul spine<->backbone
// link: the port set that, taken down together, blackholes all traffic
// between the two datacenters (fault injection's worst case).
func (n *Network) InterDCPorts() []*netsim.Port {
	var out []*netsim.Port
	for _, bb := range n.Backbones {
		for _, p := range bb.Ports() {
			out = append(out, p, p.Peer())
		}
	}
	return out
}
