package topo

import (
	"testing"
	"testing/quick"

	"incastproxy/internal/netsim"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// smallConfig is a 2x2x2 fabric with 4 backbones for fast tests.
func smallConfig() Config {
	c := DefaultConfig()
	c.Spines, c.Leaves, c.ServersPerLeaf = 2, 2, 2
	c.Backbones, c.BackbonesPerSpine = 4, 2
	return c
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.Spines != 8 || c.Leaves != 8 || c.ServersPerLeaf != 8 {
		t.Fatalf("leaf-spine dims: %+v", c)
	}
	if c.Backbones != 64 || c.BackbonesPerSpine != 8 {
		t.Fatalf("backbone dims: %+v", c)
	}
	if c.LinkRate != 100*units.Gbps {
		t.Fatalf("link rate %v", c.LinkRate)
	}
	if c.IntraDelay != units.Microsecond || c.InterDelay != units.Millisecond {
		t.Fatalf("delays %v/%v", c.IntraDelay, c.InterDelay)
	}
	if c.TorQueue.Capacity != 17_015_000 || c.TorQueue.MarkLow != 33_200 || c.TorQueue.MarkHigh != 136_950 {
		t.Fatalf("tor queue %+v", c.TorQueue)
	}
	if c.BackboneQueue.Capacity != 49_800_000 || c.BackboneQueue.MarkLow != 9_960_000 || c.BackboneQueue.MarkHigh != 39_840_000 {
		t.Fatalf("backbone queue %+v", c.BackboneQueue)
	}
	if !c.Spray {
		t.Fatal("paper uses packet spraying")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Spines = 0 },
		func(c *Config) { c.Leaves = -1 },
		func(c *Config) { c.ServersPerLeaf = 0 },
		func(c *Config) { c.BackbonesPerSpine = 0 },
		func(c *Config) { c.Backbones = 63 }, // not Spines*BackbonesPerSpine
		func(c *Config) { c.LinkRate = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBuildCounts(t *testing.T) {
	n := Build(sim.New(), smallConfig())
	for dc := 0; dc < 2; dc++ {
		if len(n.Hosts[dc]) != 4 || len(n.Leaves[dc]) != 2 || len(n.Spines[dc]) != 2 {
			t.Fatalf("dc%d counts: hosts=%d leaves=%d spines=%d",
				dc, len(n.Hosts[dc]), len(n.Leaves[dc]), len(n.Spines[dc]))
		}
	}
	if len(n.Backbones) != 4 {
		t.Fatalf("backbones = %d", len(n.Backbones))
	}
	if len(n.Switches()) != 2*(2+2)+4 {
		t.Fatalf("switches = %d", len(n.Switches()))
	}
}

func TestBuildPaperScale(t *testing.T) {
	n := Build(sim.New(), DefaultConfig())
	if len(n.Hosts[0]) != 64 || len(n.Hosts[1]) != 64 {
		t.Fatalf("hosts: %d/%d", len(n.Hosts[0]), len(n.Hosts[1]))
	}
	if len(n.Backbones) != 64 {
		t.Fatalf("backbones: %d", len(n.Backbones))
	}
	// Every leaf must have ECMP routes to a remote host through all spines.
	remote := n.Hosts[1][0]
	routes := n.Leaves[0][0].Routes(remote.ID())
	if len(routes) != 8 {
		t.Fatalf("leaf ECMP set to remote host = %d ports, want 8 spines", len(routes))
	}
	// Every spine reaches a remote host via its 8 backbones.
	routes = n.Spines[0][0].Routes(remote.ID())
	if len(routes) != 8 {
		t.Fatalf("spine ECMP set = %d, want 8 backbones", len(routes))
	}
}

func TestIntraDCDelivery(t *testing.T) {
	e := sim.New()
	n := Build(e, smallConfig())
	src, dst := n.Hosts[0][0], n.Hosts[0][3] // different leaves
	var got *netsim.Packet
	var at units.Time
	dst.Bind(1, netsim.EndpointFunc(func(e *sim.Engine, p *netsim.Packet) {
		got, at = p, e.Now()
	}))
	pkt := src.NewPacket()
	pkt.Flow = 1
	pkt.Kind = netsim.Data
	pkt.Size = 1500
	pkt.FullSize = 1500
	pkt.Dst = dst.ID()
	src.Send(e, pkt)
	e.Run()
	if got == nil {
		t.Fatal("packet not delivered intra-DC")
	}
	// 4 hops (h->leaf->spine->leaf->h), each 1us + 120ns serialization.
	want := units.Time(0).Add(4 * (units.Microsecond + 120*units.Nanosecond))
	if at != want {
		t.Fatalf("arrival %v, want %v", at, want)
	}
	if got.Hops != 3 {
		t.Fatalf("hops = %d, want 3 switches", got.Hops)
	}
}

func TestInterDCDelivery(t *testing.T) {
	e := sim.New()
	n := Build(e, smallConfig())
	src, dst := n.Hosts[0][0], n.Hosts[1][0]
	var at units.Time
	delivered := false
	dst.Bind(1, netsim.EndpointFunc(func(e *sim.Engine, p *netsim.Packet) {
		delivered, at = true, e.Now()
	}))
	pkt := src.NewPacket()
	pkt.Flow = 1
	pkt.Kind = netsim.Data
	pkt.Size = 1500
	pkt.FullSize = 1500
	pkt.Dst = dst.ID()
	src.Send(e, pkt)
	e.Run()
	if !delivered {
		t.Fatal("packet not delivered inter-DC")
	}
	// Path: h->leaf(1us)->spine(1us)->bb(1ms)->spine(1ms)->leaf(1us)->h(1us):
	// 4x1us + 2x1ms + 6x120ns serialization.
	want := units.Time(0).Add(4*units.Microsecond + 2*units.Millisecond + 6*120*units.Nanosecond)
	if at != want {
		t.Fatalf("arrival %v, want %v", at, want)
	}
}

func TestPathRTTInterDC(t *testing.T) {
	n := Build(sim.New(), smallConfig())
	rtt := n.PathRTT(n.Hosts[0][0], n.Hosts[1][0], 1500, 64)
	// Propagation: 2*(4us + 2ms); serialization: 6 hops * (120ns + 5.12ns).
	min := 2 * (4*units.Microsecond + 2*units.Millisecond)
	if rtt < min || rtt > min+10*units.Microsecond {
		t.Fatalf("inter-DC RTT = %v, want just above %v", rtt, min)
	}
}

func TestPathRTTIntraDC(t *testing.T) {
	n := Build(sim.New(), smallConfig())
	rtt := n.PathRTT(n.Hosts[0][0], n.Hosts[0][3], 1500, 64)
	min := 2 * 4 * units.Microsecond
	if rtt < min || rtt > min+5*units.Microsecond {
		t.Fatalf("intra-DC RTT = %v, want just above %v", rtt, min)
	}
	if n.PathRTT(n.Hosts[0][0], n.Hosts[0][0], 1500, 64) != 0 {
		t.Fatal("self RTT should be 0")
	}
}

func TestBottleneckRate(t *testing.T) {
	n := Build(sim.New(), smallConfig())
	if r := n.BottleneckRate(n.Hosts[0][0], n.Hosts[1][0]); r != 100*units.Gbps {
		t.Fatalf("bottleneck = %v", r)
	}
	if r := n.BottleneckRate(n.Hosts[0][0], n.Hosts[0][0]); r != 0 {
		t.Fatalf("self bottleneck = %v", r)
	}
}

func TestHostAccessor(t *testing.T) {
	n := Build(sim.New(), smallConfig())
	if n.Host(0, 1, 1) != n.Hosts[0][3] {
		t.Fatal("Host(dc,leaf,idx) indexing wrong")
	}
	if n.Node(n.Hosts[0][0].ID()) != netsim.Node(n.Hosts[0][0]) {
		t.Fatal("Node lookup wrong")
	}
}

func TestDownToRPort(t *testing.T) {
	n := Build(sim.New(), smallConfig())
	h := n.Hosts[0][0]
	p := n.DownToRPort(h)
	if p.Peer().Owner() != netsim.Node(h) {
		t.Fatal("down-ToR port must feed the host")
	}
	if _, ok := p.Owner().(*netsim.Switch); !ok {
		t.Fatal("down-ToR port must belong to a leaf switch")
	}
}

func TestTrimDCAppliesOnlyToThatDC(t *testing.T) {
	cfg := smallConfig()
	cfg.TrimDC[0] = true
	cfg.TorQueue.Capacity = 3000 // tiny, to force trims
	e := sim.New()
	n := Build(e, cfg)

	// Flood a DC0 down-ToR from two senders (2x100G into 100G): expect
	// trims, not drops.
	dst := n.Hosts[0][0]
	dst.SetCatchAll(netsim.EndpointFunc(func(*sim.Engine, *netsim.Packet) {}))
	for _, src0 := range []*netsim.Host{n.Hosts[0][1], n.Hosts[0][2]} {
		for i := 0; i < 100; i++ {
			pkt := src0.NewPacket()
			pkt.Kind = netsim.Data
			pkt.Size = 1500
			pkt.FullSize = 1500
			pkt.Dst = dst.ID()
			src0.Send(e, pkt)
		}
	}
	e.Run()
	trims, drops := fabricTrimsDrops(n, 0)
	if trims == 0 {
		t.Fatal("DC0 with TrimDC should trim on overflow")
	}
	if drops != 0 {
		t.Fatalf("DC0 with TrimDC dropped %d data packets", drops)
	}

	// Flood a DC1 down-ToR the same way: expect drops, not trims.
	dst1 := n.Hosts[1][0]
	dst1.SetCatchAll(netsim.EndpointFunc(func(*sim.Engine, *netsim.Packet) {}))
	for _, src1 := range []*netsim.Host{n.Hosts[1][1], n.Hosts[1][2]} {
		for i := 0; i < 100; i++ {
			pkt := src1.NewPacket()
			pkt.Kind = netsim.Data
			pkt.Size = 1500
			pkt.FullSize = 1500
			pkt.Dst = dst1.ID()
			src1.Send(e, pkt)
		}
	}
	e.Run()
	trims, drops = fabricTrimsDrops(n, 1)
	if trims != 0 {
		t.Fatalf("DC1 without TrimDC trimmed %d", trims)
	}
	if drops == 0 {
		t.Fatal("DC1 without TrimDC should drop on overflow")
	}
}

func fabricTrimsDrops(n *Network, dc int) (trims, drops uint64) {
	for _, sw := range append(append([]*netsim.Switch{}, n.Leaves[dc]...), n.Spines[dc]...) {
		for _, p := range sw.Ports() {
			st := p.Stats()
			trims += st.Trimmed
			drops += st.Dropped
		}
	}
	return trims, drops
}

// Property: every host can reach every other host (all switches on shortest
// paths have FIB entries), for a few random fabric shapes.
func TestPropertyFullReachability(t *testing.T) {
	f := func(spines, leaves, servers uint8) bool {
		c := DefaultConfig()
		c.Spines = int(spines%3) + 1
		c.Leaves = int(leaves%3) + 1
		c.ServersPerLeaf = int(servers%2) + 1
		c.BackbonesPerSpine = 2
		c.Backbones = c.Spines * 2
		e := sim.New()
		n := Build(e, c)
		// Check routing from one host in DC0 to all hosts in both DCs.
		src := n.Hosts[0][0]
		delivered := 0
		want := 0
		for dc := 0; dc < 2; dc++ {
			for _, dst := range n.Hosts[dc] {
				if dst == src {
					continue
				}
				want++
				dst.SetCatchAll(netsim.EndpointFunc(func(*sim.Engine, *netsim.Packet) { delivered++ }))
				pkt := src.NewPacket()
				pkt.Kind = netsim.Data
				pkt.Size = 64
				pkt.FullSize = 64
				pkt.Dst = dst.ID()
				src.Send(e, pkt)
			}
		}
		e.Run()
		return delivered == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build must panic on invalid config")
		}
	}()
	c := DefaultConfig()
	c.Spines = 0
	Build(sim.New(), c)
}
