package topo

import (
	"fmt"

	"incastproxy/internal/netsim"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// ShardPlan maps the two-DC fabric onto event shards for the conservative
// parallel engine (sim.ShardGroup). The partition follows the physics: the
// only links with enough propagation delay to serve as shard boundaries are
// the long-haul spine<->backbone links (InterDelay, 1 ms by default), so
// every in-DC node must stay with its datacenter and only the backbone
// routers can be split further:
//
//	n = 1  everything on shard 0 (still runs through the group machinery,
//	       so byte-identity across shard counts is testable)
//	n = 2  DC0 -> shard 0, DC1 -> shard 1, backbone b -> b mod 2
//	n >= 3 DC0 -> shard 0, DC1 -> shard 1, backbone b -> 2 + b mod (n-2)
//
// Every cut link is then an InterDelay link, which makes InterDelay the
// group lookahead.
type ShardPlan struct {
	Shards    int
	Lookahead units.Duration
	dcShard   [2]int
	bbShard   []int
}

// PlanShards validates and computes the shard assignment for cfg. n beyond
// 2+Backbones would leave empty shards (there are only that many separable
// components), and n > 1 needs a positive InterDelay to serve as lookahead.
func PlanShards(cfg Config, n int) (ShardPlan, error) {
	if n < 1 {
		return ShardPlan{}, fmt.Errorf("topo: shard count must be >= 1, got %d", n)
	}
	if max := 2 + cfg.Backbones; n > max {
		return ShardPlan{}, fmt.Errorf("topo: %d shards exceed the %d separable components (2 DCs + %d backbones)",
			n, max, cfg.Backbones)
	}
	if n > 1 && cfg.InterDelay <= 0 {
		return ShardPlan{}, fmt.Errorf("topo: sharding needs positive InterDelay for lookahead, got %v", cfg.InterDelay)
	}
	p := ShardPlan{Shards: n, Lookahead: cfg.InterDelay, bbShard: make([]int, cfg.Backbones)}
	switch {
	case n == 1:
		// Everything stays on shard 0.
	case n == 2:
		p.dcShard = [2]int{0, 1}
		for b := range p.bbShard {
			p.bbShard[b] = b % 2
		}
	default:
		p.dcShard = [2]int{0, 1}
		for b := range p.bbShard {
			p.bbShard[b] = 2 + b%(n-2)
		}
	}
	return p, nil
}

// DCShard returns the shard owning every node of datacenter dc.
func (p ShardPlan) DCShard(dc int) int { return p.dcShard[dc] }

// BackboneShard returns the shard owning backbone router b.
func (p ShardPlan) BackboneShard(b int) int { return p.bbShard[b] }

// NewGroup builds the shard group sized for the plan.
func (p ShardPlan) NewGroup(workers int) *sim.ShardGroup {
	la := p.Lookahead
	if p.Shards == 1 && la <= 0 {
		// A single shard has no cut links; any positive lookahead works.
		la = units.Microsecond
	}
	return sim.NewShardGroup(p.Shards, la, workers)
}

// BindShards installs cross-shard handoffs on every cut link of the built
// fabric: a boundary port's deliveries are posted through the group's
// deterministic merge queues instead of the local event heap. It panics if
// any cut link's propagation delay is shorter than the group lookahead —
// that would let a cross-shard packet arrive inside the current round's
// horizon, which the conservative barrier cannot represent.
func BindShards(net *Network, g *sim.ShardGroup, p ShardPlan) {
	if g.Shards() != p.Shards {
		panic(fmt.Sprintf("topo: group has %d shards but plan has %d", g.Shards(), p.Shards))
	}
	if p.Shards == 1 {
		return
	}
	for b, bb := range net.Backbones {
		bbShard := p.bbShard[b]
		for _, port := range bb.Ports() {
			peerShard := p.shardOfSpinePeer(net, port.Peer().Owner())
			bindCut(g, port, bbShard, peerShard)
			bindCut(g, port.Peer(), peerShard, bbShard)
		}
	}
}

// shardOfSpinePeer resolves the shard of a backbone port's peer, which is
// always a spine switch in one of the DCs.
func (p ShardPlan) shardOfSpinePeer(net *Network, node netsim.Node) int {
	for dc := 0; dc < 2; dc++ {
		for _, s := range net.Spines[dc] {
			if s == node {
				return p.dcShard[dc]
			}
		}
	}
	panic(fmt.Sprintf("topo: backbone peer %s is not a spine", node.Name()))
}

// bindCut installs the handoff for one direction of a cut link (transmitting
// port on shard src, receiving side on shard dst). Same-shard directions
// (e.g. a backbone co-located with one DC under n=2) keep local scheduling.
func bindCut(g *sim.ShardGroup, port *netsim.Port, src, dst int) {
	if src == dst {
		return
	}
	if port.Delay() < g.Lookahead() {
		panic(fmt.Sprintf("topo: cut link %s delay %v is below the %v lookahead",
			port.Label(), port.Delay(), g.Lookahead()))
	}
	peer := port.Peer()
	port.SetHandoff(func(at units.Time, pkt *netsim.Packet) {
		g.Post(src, dst, at, netsim.DeliveryKey(pkt), func(e *sim.Engine) {
			peer.Owner().Receive(e, pkt, peer)
		})
	})
}
