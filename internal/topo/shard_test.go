package topo

import (
	"testing"

	"incastproxy/internal/netsim"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

func shardTestConfig() Config {
	return Config{
		Spines:            2,
		Leaves:            2,
		ServersPerLeaf:    2,
		Backbones:         2,
		BackbonesPerSpine: 1,
		LinkRate:          10 * units.Gbps,
		IntraDelay:        units.Microsecond,
		InterDelay:        100 * units.Microsecond,
		Spray:             true,
		Seed:              1,
	}
}

func TestPlanShardsAssignments(t *testing.T) {
	cfg := shardTestConfig()

	p1, err := PlanShards(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.DCShard(0) != 0 || p1.DCShard(1) != 0 || p1.BackboneShard(0) != 0 || p1.BackboneShard(1) != 0 {
		t.Fatal("n=1 must map everything to shard 0")
	}

	p2, err := PlanShards(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.DCShard(0) != 0 || p2.DCShard(1) != 1 {
		t.Fatal("n=2 must split the DCs")
	}
	if p2.BackboneShard(0) != 0 || p2.BackboneShard(1) != 1 {
		t.Fatalf("n=2 backbone shards = %d,%d, want 0,1", p2.BackboneShard(0), p2.BackboneShard(1))
	}
	if p2.Lookahead != cfg.InterDelay {
		t.Fatalf("lookahead = %v, want InterDelay %v", p2.Lookahead, cfg.InterDelay)
	}

	p4, err := PlanShards(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p4.BackboneShard(0) != 2 || p4.BackboneShard(1) != 3 {
		t.Fatalf("n=4 backbone shards = %d,%d, want 2,3", p4.BackboneShard(0), p4.BackboneShard(1))
	}
}

func TestPlanShardsRejectsBadConfigs(t *testing.T) {
	cfg := shardTestConfig()
	if _, err := PlanShards(cfg, 0); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := PlanShards(cfg, 5); err == nil {
		t.Error("more shards than separable components accepted")
	}
	bad := cfg
	bad.InterDelay = 0
	if _, err := PlanShards(bad, 2); err == nil {
		t.Error("sharding with zero InterDelay accepted")
	}
	if _, err := PlanShards(bad, 1); err != nil {
		t.Errorf("single shard must not need InterDelay: %v", err)
	}
}

// A packet routed DC0 -> DC1 on a bound fabric must cross through the
// group's deterministic handoff queues and still arrive.
func TestBindShardsDeliversAcrossCut(t *testing.T) {
	cfg := shardTestConfig()
	for _, shards := range []int{1, 2, 4} {
		plan, err := PlanShards(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		g := plan.NewGroup(shards)
		net := Build(g.Engine(plan.DCShard(0)), cfg)
		BindShards(net, g, plan)

		src := net.Hosts[0][0]
		dst := net.Hosts[1][3]
		delivered := 0
		dst.SetCatchAll(netsim.EndpointFunc(func(e *sim.Engine, p *netsim.Packet) {
			delivered++
		}))

		g.Engine(plan.DCShard(0)).Schedule(0, func(e *sim.Engine) {
			pkt := src.NewPacket()
			pkt.Dst = dst.ID()
			pkt.Size = 1500
			pkt.FullSize = 1500
			src.Send(e, pkt)
		})
		g.Run()

		if delivered != 1 {
			t.Fatalf("shards=%d: delivered = %d, want 1", shards, delivered)
		}
		if shards > 1 && g.CrossEvents() == 0 {
			t.Fatalf("shards=%d: packet crossed no shard boundary", shards)
		}
	}
}

func TestBindShardsRejectsMismatchedGroup(t *testing.T) {
	cfg := shardTestConfig()
	plan, err := PlanShards(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := sim.NewShardGroup(3, cfg.InterDelay, 1)
	net := Build(g.Engine(0), cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched shard counts did not panic")
		}
	}()
	BindShards(net, g, plan)
}
