package topo

import (
	"testing"

	"incastproxy/internal/netsim"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// Boundary fabrics the sweep grids never exercise, pinned so the analytical
// model (internal/model) and the simulator agree on the degenerate cases.

func singleLeafConfig() Config {
	return Config{
		Spines:            1,
		Leaves:            1,
		ServersPerLeaf:    4,
		Backbones:         1,
		BackbonesPerSpine: 1,
		LinkRate:          100 * units.Gbps,
		IntraDelay:        units.Microsecond,
		InterDelay:        100 * units.Microsecond,
		TorQueue:          netsim.QueueConfig{Capacity: 1_000_000},
		Spray:             true,
		Seed:              1,
	}
}

// A host's path to itself has no links: zero RTT, zero bottleneck rate.
func TestPathToSelfIsEmpty(t *testing.T) {
	net := Build(sim.New(), DefaultConfig())
	h := net.Hosts[0][0]
	if rtt := net.PathRTT(h, h, 1500, 64); rtt != 0 {
		t.Errorf("PathRTT(a,a) = %v, want 0", rtt)
	}
	if rate := net.BottleneckRate(h, h); rate != 0 {
		t.Errorf("BottleneckRate(a,a) = %v, want 0", rate)
	}
}

// A single-leaf DC collapses the intra-DC path to host-leaf-host: two
// links each way. The closed form here is what the analytical model's
// PathRTTs assumes for its up-leg; drifting from it would silently skew
// every fast-sweep proxy prediction on such fabrics.
func TestSingleLeafPathRTTClosedForm(t *testing.T) {
	cfg := singleLeafConfig()
	net := Build(sim.New(), cfg)
	a, b := net.Hosts[0][0], net.Hosts[0][1]

	const fwd, rev units.ByteSize = 1500, 64
	perLink := cfg.LinkRate.TransmitTime(fwd) + cfg.LinkRate.TransmitTime(rev)
	want := 2*(2*cfg.IntraDelay) + 2*perLink
	if got := net.PathRTT(a, b, fwd, rev); got != want {
		t.Errorf("same-ToR PathRTT = %v, want closed-form %v", got, want)
	}
	if rate := net.BottleneckRate(a, b); rate != cfg.LinkRate {
		t.Errorf("uniform fabric bottleneck = %v, want %v", rate, cfg.LinkRate)
	}

	// Cross-DC from the single leaf: host-leaf, leaf-spine, spine-backbone,
	// then the mirrored descent — 4 intra + 2 inter links.
	recv := net.Hosts[1][0]
	wantCross := 2*(4*cfg.IntraDelay+2*cfg.InterDelay) + 6*perLink
	if got := net.PathRTT(a, recv, fwd, rev); got != wantCross {
		t.Errorf("cross-DC PathRTT = %v, want closed-form %v", got, wantCross)
	}
}

// Every host pair in a built single-leaf fabric must be mutually reachable
// (pathLinks returning nil would mean a FIB hole on the degenerate shape).
func TestSingleLeafFullReachability(t *testing.T) {
	net := Build(sim.New(), singleLeafConfig())
	for dc := range net.Hosts {
		for _, h := range net.Hosts[dc] {
			if h == net.Hosts[0][0] {
				continue
			}
			if rtt := net.PathRTT(net.Hosts[0][0], h, 1500, 64); rtt <= 0 {
				t.Errorf("host %v unreachable from Hosts[0][0]", h.ID())
			}
		}
	}
}
