package faults

import (
	"reflect"
	"testing"

	"incastproxy/internal/netsim"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// sink is a minimal receiving node.
type sink struct {
	id      netsim.NodeID
	arrived int
}

func (s *sink) ID() netsim.NodeID { return s.id }
func (s *sink) Name() string      { return "sink" }
func (s *sink) Receive(*sim.Engine, *netsim.Packet, *netsim.Port) {
	s.arrived++
}

func pkt(seq int64) *netsim.Packet {
	return &netsim.Packet{ID: uint64(seq), Seq: seq, Kind: netsim.Data, Size: 1500, FullSize: 1500}
}

func link(t *testing.T) (*sim.Engine, *sink, *sink, *netsim.Port) {
	t.Helper()
	e := sim.New()
	a, b := &sink{id: 1}, &sink{id: 2}
	pa, _ := netsim.Connect(a, b, 100*units.Gbps, units.Microsecond,
		netsim.QueueConfig{}, netsim.QueueConfig{}, nil)
	return e, a, b, pa
}

func TestFlapLinkWindow(t *testing.T) {
	e, _, b, pa := link(t)
	in := New(e, 1)

	const at = units.Time(10 * units.Microsecond)
	const dur = 20 * units.Microsecond
	in.FlapLink(pa, at, dur)

	// Before the flap: delivered. During: dropped. After: delivered.
	send := func(when units.Time, seq int64) {
		e.Schedule(when, func(e *sim.Engine) { pa.Send(e, pkt(seq)) })
	}
	send(0, 1)
	send(at.Add(units.Microsecond), 2)
	send(at.Add(dur+units.Microsecond), 3)
	e.Run()

	if b.arrived != 2 {
		t.Fatalf("arrived = %d, want 2", b.arrived)
	}
	tl := in.Timeline()
	if len(tl) != 2 || tl[0].Phase != Injected || tl[1].Phase != Cleared {
		t.Fatalf("timeline = %v", tl)
	}
	if in.Active() != 0 {
		t.Fatalf("active = %d after clear", in.Active())
	}
	if n := in.Outages[LinkFlap].N(); n != 1 {
		t.Fatalf("outage samples = %d", n)
	}
}

func TestFlapTakesBothDirectionsDown(t *testing.T) {
	e, a, _, pa := link(t)
	in := New(e, 1)
	in.FlapLink(pa, 0, 0) // permanent cut
	e.Schedule(units.Time(units.Microsecond), func(e *sim.Engine) {
		pa.Peer().Send(e, pkt(1))
	})
	e.Run()
	if a.arrived != 0 {
		t.Fatal("reverse direction survived a full link cut")
	}
	if in.Active() != 1 {
		t.Fatal("permanent fault should stay active")
	}
}

func TestCrashHostRestart(t *testing.T) {
	e := sim.New()
	h := netsim.NewHost(1, "proxy")
	peer := &sink{id: 2}
	_, pb := netsim.Connect(h, peer, 100*units.Gbps, units.Microsecond,
		netsim.QueueConfig{}, netsim.QueueConfig{}, nil)
	got := 0
	h.SetCatchAll(netsim.EndpointFunc(func(*sim.Engine, *netsim.Packet) { got++ }))

	in := New(e, 1)
	const at = units.Time(5 * units.Microsecond)
	in.CrashHost(h, at, 10*units.Microsecond)

	send := func(when units.Time, seq int64) {
		e.Schedule(when, func(e *sim.Engine) { pb.Send(e, pkt(seq)) })
	}
	send(0, 1)                            // before crash: delivered
	send(at.Add(units.Microsecond), 2)    // during: vanishes at the host
	send(at.Add(12*units.Microsecond), 3) // after restart: delivered
	e.Run()

	if got != 2 {
		t.Fatalf("delivered = %d, want 2", got)
	}
	if h.Down() {
		t.Fatal("host should have restarted")
	}
	if in.Count(HostCrash) != 1 {
		t.Fatalf("crash count = %d", in.Count(HostCrash))
	}
}

func TestCorruptPortsWindowAndDeterminism(t *testing.T) {
	run := func(seed int64) (delivered int, corrupted uint64) {
		e, _, b, pa := link(t)
		in := New(e, seed)
		in.CorruptPorts("a->b", []*netsim.Port{pa}, 0.5, 0, 100*units.Microsecond)
		for i := 0; i < 200; i++ {
			seq := int64(i)
			e.Schedule(units.Time(i)*units.Time(100*units.Nanosecond),
				func(e *sim.Engine) { pa.Send(e, pkt(seq)) })
		}
		// After the window clears, packets pass untouched.
		e.Schedule(units.Time(200*units.Microsecond), func(e *sim.Engine) { pa.Send(e, pkt(999)) })
		e.Run()
		return b.arrived, pa.Stats().Corrupted
	}

	d1, c1 := run(42)
	d2, c2 := run(42)
	if d1 != d2 || c1 != c2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", d1, c1, d2, c2)
	}
	if c1 == 0 || c1 == 200 {
		t.Fatalf("corrupted = %d, want a strict subset of 200", c1)
	}
	if d1 != 201-int(c1) {
		t.Fatalf("delivered = %d with %d corrupted", d1, c1)
	}
}

func TestBlackholePortsTakesSetDownTogether(t *testing.T) {
	e := sim.New()
	a, b, c := &sink{id: 1}, &sink{id: 2}, &sink{id: 3}
	pab, _ := netsim.Connect(a, b, 100*units.Gbps, 0, netsim.QueueConfig{}, netsim.QueueConfig{}, nil)
	pac, _ := netsim.Connect(a, c, 100*units.Gbps, 0, netsim.QueueConfig{}, netsim.QueueConfig{}, nil)

	in := New(e, 1)
	in.BlackholePorts("region", []*netsim.Port{pab, pac}, 0, 10*units.Microsecond)
	e.Schedule(units.Time(units.Microsecond), func(e *sim.Engine) {
		pab.Send(e, pkt(1))
		pac.Send(e, pkt(2))
	})
	e.Schedule(units.Time(20*units.Microsecond), func(e *sim.Engine) {
		pab.Send(e, pkt(3))
		pac.Send(e, pkt(4))
	})
	e.Run()
	if b.arrived != 1 || c.arrived != 1 {
		t.Fatalf("arrived b=%d c=%d, want 1 each", b.arrived, c.arrived)
	}
}

func TestRandomLinkFlapsDeterministic(t *testing.T) {
	plan := func(seed int64) []Event {
		e, _, _, pa := link(t)
		in := New(e, seed)
		in.RandomLinkFlaps([]*netsim.Port{pa}, 5, 10*units.Millisecond,
			10*units.Microsecond, 100*units.Microsecond)
		e.Run()
		return in.Timeline()
	}
	a, b := plan(7), plan(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different timelines:\n%v\n%v", a, b)
	}
	if len(a) != 10 { // 5 flaps x (inject + clear)
		t.Fatalf("timeline has %d events, want 10", len(a))
	}
	if c := plan(8); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}
