// Package faults implements deterministic fault injection for the packet
// simulator: a seeded scheduler that drives link flaps, proxy-host
// crash/restart cycles, transient blackholes, and packet corruption into a
// running netsim fabric via sim engine events.
//
// The paper's proxy argument holds only while the proxy is healthy; this
// package supplies the failure side of that argument. Every fault is an
// (inject, clear) pair of engine events, so a run with a fixed seed and a
// fixed fault plan is exactly reproducible — the property chaos tests and
// EXPERIMENTS.md rely on. The injector records a timeline of everything it
// actually did, and aggregates injected outage durations per fault class
// into stats.Sample for telemetry.
package faults

import (
	"fmt"

	"incastproxy/internal/netsim"
	"incastproxy/internal/obs"
	"incastproxy/internal/rng"
	"incastproxy/internal/sim"
	"incastproxy/internal/stats"
	"incastproxy/internal/units"
)

// Kind classifies an injected fault.
type Kind int

// The fault classes.
const (
	// LinkFlap takes one link (both directions) down for a window.
	LinkFlap Kind = iota
	// HostCrash takes a host down (it neither sends nor receives),
	// optionally restarting it later.
	HostCrash
	// Blackhole takes a set of ports down together — e.g. every long-haul
	// link, silently eating all inter-DC traffic.
	Blackhole
	// Corruption destroys a random fraction of packets offered to a set
	// of ports for a window.
	Corruption
)

func (k Kind) String() string {
	switch k {
	case LinkFlap:
		return "link-flap"
	case HostCrash:
		return "host-crash"
	case Blackhole:
		return "blackhole"
	case Corruption:
		return "corruption"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Phase distinguishes the two edges of a fault window.
type Phase int

// Fault window edges.
const (
	// Injected marks the moment a fault takes effect.
	Injected Phase = iota
	// Cleared marks the moment it is lifted. Permanent faults never
	// produce a Cleared event.
	Cleared
)

func (p Phase) String() string {
	if p == Injected {
		return "inject"
	}
	return "clear"
}

// Event is one timeline entry: a fault edge that actually executed.
type Event struct {
	Kind   Kind
	Phase  Phase
	At     units.Time
	Target string
}

func (ev Event) String() string {
	return fmt.Sprintf("%v %v %s @%v", ev.Kind, ev.Phase, ev.Target, ev.At)
}

// Injector schedules faults on a simulation engine. Create with New; all
// methods must be called before or during the run from the engine's own
// event context (the simulator is single-threaded).
type Injector struct {
	engine *sim.Engine
	src    *rng.Source

	events []Event
	active int

	// Outages aggregates the duration of every *cleared* fault window per
	// class — the raw material for recovery-time analysis alongside
	// transport SenderStats.
	Outages map[Kind]*stats.Sample

	// Observability (optional): trace receives one Begin/End span per fault
	// window (category "fault", one track per kind); outageHist accumulates
	// cleared outage durations in microseconds.
	trace      *obs.Tracer
	outageHist *obs.Histogram
}

// New returns an injector whose random choices (flap times, corruption
// coin-flips) derive deterministically from seed.
func New(e *sim.Engine, seed int64) *Injector {
	return &Injector{
		engine: e,
		src:    rng.New(seed),
		Outages: map[Kind]*stats.Sample{
			LinkFlap:   {},
			HostCrash:  {},
			Blackhole:  {},
			Corruption: {},
		},
	}
}

// SetTracer attaches (or with nil, detaches) an event tracer: every fault
// window becomes a Begin/End span in category "fault" on a per-kind track,
// with the target in the span's args.
func (in *Injector) SetTracer(t *obs.Tracer) { in.trace = t }

// Instrument exports the injector's activity to the registry: lazy
// injected/cleared/active collectors plus a histogram of cleared outage
// durations (faults_outage_us).
func (in *Injector) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("faults_injected_total", func() uint64 {
		var n uint64
		for _, ev := range in.events {
			if ev.Phase == Injected {
				n++
			}
		}
		return n
	})
	reg.CounterFunc("faults_cleared_total", func() uint64 {
		var n uint64
		for _, ev := range in.events {
			if ev.Phase == Cleared {
				n++
			}
		}
		return n
	})
	reg.GaugeFunc("faults_active", func() int64 { return int64(in.active) })
	in.outageHist = reg.Histogram("faults_outage_us", obs.DefaultDurationBucketsMicros())
}

// Timeline returns the fault edges executed so far, in execution order.
func (in *Injector) Timeline() []Event { return in.events }

// Active returns the number of currently-injected, not-yet-cleared faults.
func (in *Injector) Active() int { return in.active }

// Count returns how many faults of the given kind have been injected.
func (in *Injector) Count(k Kind) int {
	n := 0
	for _, ev := range in.events {
		if ev.Kind == k && ev.Phase == Injected {
			n++
		}
	}
	return n
}

func (in *Injector) record(k Kind, p Phase, target string) {
	now := in.engine.Now()
	in.events = append(in.events, Event{Kind: k, Phase: p, At: now, Target: target})
	if p == Injected {
		in.active++
		in.trace.Begin(now, "fault", k.String(), int64(k),
			obs.Arg{Key: "target", Val: target})
	} else {
		in.active--
		in.trace.End(now, "fault", k.String(), int64(k),
			obs.Arg{Key: "target", Val: target})
	}
}

// schedule registers an (inject, clear) pair. dur <= 0 means permanent.
func (in *Injector) schedule(k Kind, target string, at units.Time,
	dur units.Duration, inject, clear func()) {
	in.engine.Schedule(at, func(e *sim.Engine) {
		inject()
		in.record(k, Injected, target)
		if dur <= 0 {
			return
		}
		e.After(dur, func(*sim.Engine) {
			clear()
			in.record(k, Cleared, target)
			in.Outages[k].AddDuration(dur)
			in.outageHist.Observe(int64(dur) / int64(units.Microsecond))
		})
	})
}

// FlapLink takes both directions of the link through pa down at time at for
// dur (dur <= 0: a permanent cut). pa may be either side; its peer goes down
// too.
func (in *Injector) FlapLink(pa *netsim.Port, at units.Time, dur units.Duration) {
	ports := []*netsim.Port{pa, pa.Peer()}
	in.schedule(LinkFlap, pa.Label(), at, dur,
		func() { setDown(ports, true) },
		func() { setDown(ports, false) })
}

// CrashHost crashes h at time at; restartAfter > 0 schedules a restart that
// much later, otherwise the host stays dead. Flow bindings survive the
// restart (netsim.Host semantics); any endpoint state lost in the modelled
// crash is the experiment's to reset.
func (in *Injector) CrashHost(h *netsim.Host, at units.Time, restartAfter units.Duration) {
	in.schedule(HostCrash, h.Name(), at, restartAfter,
		func() { h.SetDown(true) },
		func() { h.SetDown(false) })
}

// BlackholePorts takes every listed port down together at time at for dur
// (dur <= 0: permanent). Use it for region-scale failures: pass every
// spine<->backbone port for a full inter-DC blackhole.
func (in *Injector) BlackholePorts(label string, ports []*netsim.Port, at units.Time, dur units.Duration) {
	in.schedule(Blackhole, label, at, dur,
		func() { setDown(ports, true) },
		func() { setDown(ports, false) })
}

// CorruptPorts destroys each packet offered to any listed port with
// probability rate during [at, at+dur) (dur <= 0: forever). The coin flips
// come from the injector's seeded source, so runs are reproducible.
func (in *Injector) CorruptPorts(label string, ports []*netsim.Port, rate float64,
	at units.Time, dur units.Duration) {
	if rate < 0 {
		rate = 0
	}
	src := in.src.Split(int64(len(in.events))*31 + int64(at))
	pred := func(*netsim.Packet) bool { return src.Float64() < rate }
	in.schedule(Corruption, label, at, dur,
		func() {
			for _, p := range ports {
				p.SetCorrupt(pred)
			}
		},
		func() {
			for _, p := range ports {
				p.SetCorrupt(nil)
			}
		})
}

// RandomLinkFlaps schedules n flaps at seeded-random times in [0, window),
// each on a seeded-random link from links, lasting a seeded-random duration
// in [minDur, maxDur]. The same seed and arguments always produce the same
// plan.
func (in *Injector) RandomLinkFlaps(links []*netsim.Port, n int, window units.Duration,
	minDur, maxDur units.Duration) {
	if len(links) == 0 || n <= 0 || window <= 0 {
		return
	}
	if maxDur < minDur {
		maxDur = minDur
	}
	for i := 0; i < n; i++ {
		at := units.Time(in.src.Int63() % int64(window))
		link := links[in.src.Intn(len(links))]
		dur := minDur
		if span := int64(maxDur - minDur); span > 0 {
			dur += units.Duration(in.src.Int63() % (span + 1))
		}
		in.FlapLink(link, at, dur)
	}
}

func setDown(ports []*netsim.Port, down bool) {
	for _, p := range ports {
		p.SetDown(down)
	}
}
