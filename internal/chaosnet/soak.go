package chaosnet

// The chaos soak drives the real relay data plane — real TCP sockets, the
// production Server and DialViaRelay code paths — through a fault-injecting
// chaosnet proxy at 2x admission capacity, and checks the overload
// contract:
//
//   - every dial resolves promptly: admitted, explicitly shed (BUSY /
//     GOING_AWAY), or failed with a transport error. Never a silent hang.
//   - admitted connections finish their transfers with a bounded p99, even
//     with delays, stalls, partial writes, and resets in the path.
//   - a graceful drain afterwards leaves nothing behind (the caller pairs
//     RunSoak with a goroutine-leak check).
//
// The harness reads no clocks of its own: Now comes in through SoakConfig
// (and Sleep through Faults), so the package stays under the wall-clock
// lint alongside the virtual-time packages.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"time"

	"incastproxy/internal/obs"
	"incastproxy/internal/relay"
)

// SoakConfig parameterizes one soak run.
type SoakConfig struct {
	// Seed roots the fault schedule (per-connection plans derive from it).
	Seed int64
	// Capacity is the relay's MaxConns; the soak fires 2x this many
	// concurrent dials (Conns overrides).
	Capacity int
	// Conns is the total concurrent client dials (default 2*Capacity).
	Conns int
	// PayloadBytes is each admitted connection's echo payload (default 64 KiB).
	PayloadBytes int
	// Faults is injected between clients and the relay. Faults.Seed is
	// overridden with Seed.
	Faults Faults
	// DialBound is the silent-hang bar: every dial must resolve —
	// admitted or shed — within it (default 5s).
	DialBound time.Duration
	// TransferBound caps an admitted connection's full echo round trip
	// (default 30s); it also bounds the post-soak drain.
	TransferBound time.Duration
	// P99Bound is the acceptance bar for admitted-connection completion
	// times (default TransferBound).
	P99Bound time.Duration
	// IdleTimeout configures the relay's per-splice idle deadline, letting
	// injected stalls exercise the reclaim path (0 = none).
	IdleTimeout time.Duration
	// Now supplies the clock for completion-time measurement and socket
	// deadlines; required (tests and proxybench pass time.Now).
	Now func() time.Time
	// Registry, if set, collects relay_* and chaos_* instruments.
	Registry *obs.Registry
	// Tracer, if set, records the full causal span tree of every dial —
	// client.dial/client.transfer client-side, relay.conn/relay.dial/
	// relay.splice server-side, joined by the context in the dial
	// preamble — plus chaos-fault and shed instants. Create it with
	// obs.NewTracerWithClock (cliutil.WallClock adapts cfg.Now). Check
	// then enforces the trace-completeness invariant.
	Tracer *obs.Tracer
	// Logger, if set, receives the relay's structured per-connection log
	// lines (trace IDs included), so a soak's logs correlate with its trace.
	Logger *slog.Logger
}

// SoakResult is one run's outcome tally.
type SoakResult struct {
	Conns    int // dials fired
	Admitted int // full echo round trips completed
	Shed     int // explicit BUSY/GOING_AWAY verdicts observed client-side
	Faulted  int // transport errors (injected resets and their fallout)
	Hung     int // dials or transfers that hit their bound: contract violations

	P99 time.Duration // admitted-connection completion p99 (0 if none)

	// Server-side accounting, for cross-checking the client view.
	ServerSheds    uint64 // BUSY + GOING_AWAY frames the relay sent
	ServerAccepted uint64
	IdleClosed     uint64
	DrainErr       error // non-nil if the post-soak drain timed out

	// Trace accounting (populated when SoakConfig.Tracer was set): the
	// trace IDs of flows the client saw admitted / explicitly shed, and
	// the tracer itself for Check's completeness invariant and export.
	AdmittedTraces []uint64
	ShedTraces     []uint64
	Tracer         *obs.Tracer
}

// Check asserts the overload contract on a finished run.
func (r *SoakResult) Check(cfg SoakConfig) error {
	if r.Hung > 0 {
		return fmt.Errorf("soak: %d connections hung past their bound (sheds must be explicit, never silent)", r.Hung)
	}
	if r.Admitted == 0 {
		return errors.New("soak: no connection was ever admitted")
	}
	if got := r.Admitted + r.Shed + r.Faulted; got != r.Conns {
		return fmt.Errorf("soak: outcomes %d != dials %d", got, r.Conns)
	}
	// Check may be handed the caller's pre-default config: resolve the
	// bound the same way RunSoak would have.
	bound := cfg.P99Bound
	if bound <= 0 {
		bound = cfg.TransferBound
	}
	if bound <= 0 {
		bound = 30 * time.Second
	}
	if r.P99 > bound {
		return fmt.Errorf("soak: admitted p99 %v exceeds bound %v", r.P99, bound)
	}
	// Every client-observed shed is a frame the server counted; the server
	// may have sent more (a BUSY answer can be eaten by an injected reset,
	// surfacing client-side as a transport fault instead).
	if uint64(r.Shed) > r.ServerSheds {
		return fmt.Errorf("soak: client saw %d sheds, server sent %d", r.Shed, r.ServerSheds)
	}
	if r.DrainErr != nil {
		return fmt.Errorf("soak: post-soak drain: %w", r.DrainErr)
	}
	// Trace completeness: every admitted dial yields a well-formed causal
	// span tree — client dial and transfer plus the relay's conn, target
	// dial, and splice, all closed (the drain finished, so no span may
	// still be open) — and every shed dial yields a terminal shed event.
	if r.Tracer != nil {
		sums := r.Tracer.Summaries()
		for _, id := range r.AdmittedTraces {
			s := sums[id]
			if s == nil {
				return fmt.Errorf("soak: admitted flow %s recorded no trace", obs.IDString(id))
			}
			if s.Open != 0 {
				return fmt.Errorf("soak: trace %s left %d spans open after drain", obs.IDString(id), s.Open)
			}
			for _, name := range []string{"client.dial", "client.transfer", "relay.conn", "relay.dial", "relay.splice"} {
				if s.Spans[name] == 0 {
					return fmt.Errorf("soak: trace %s has no completed %s span", obs.IDString(id), name)
				}
			}
		}
		for _, id := range r.ShedTraces {
			s := sums[id]
			if s == nil || s.Instants["client.shed"] == 0 {
				return fmt.Errorf("soak: shed flow %s lacks a terminal shed event", obs.IDString(id))
			}
			if s.Open != 0 {
				return fmt.Errorf("soak: shed trace %s left %d spans open", obs.IDString(id), s.Open)
			}
		}
	}
	return nil
}

func (cfg *SoakConfig) withDefaults() error {
	if cfg.Now == nil {
		return errors.New("chaosnet: SoakConfig.Now is required")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 2 * cfg.Capacity
	}
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = 64 << 10
	}
	if cfg.DialBound <= 0 {
		cfg.DialBound = 5 * time.Second
	}
	if cfg.TransferBound <= 0 {
		cfg.TransferBound = 30 * time.Second
	}
	if cfg.P99Bound <= 0 {
		cfg.P99Bound = cfg.TransferBound
	}
	cfg.Faults.Seed = cfg.Seed
	return nil
}

// RunSoak stands up the full live path — echo sink, relay server with
// admission control, chaos proxy — on loopback TCP, fires cfg.Conns
// concurrent clients through it, drains the relay, and tallies the
// outcomes. Call (*SoakResult).Check for the pass/fail verdict.
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}

	// Echo sink: the far end of every splice.
	sinkL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer sinkL.Close()
	//lint:ignore orphangoroutine accept loop exits when the deferred sinkL.Close fires; LeakCheck in the soak tests verifies it
	go func() {
		for {
			c, err := sinkL.Accept()
			if err != nil {
				return
			}
			//lint:ignore orphangoroutine echo pump dies with its conn, whose relay side is closed by Drain at teardown
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()

	// Relay under test: admission-capped, idle-guarded, instrumented.
	relayL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := relay.New(relay.Config{
		MaxConns:    cfg.Capacity,
		IdleTimeout: cfg.IdleTimeout,
		Registry:    cfg.Registry,
		Tracer:      cfg.Tracer,
		Logger:      cfg.Logger,
	})
	//lint:ignore orphangoroutine Serve returns when srv.Drain (below) closes the listener; Drain's wg.Wait joins the handlers
	go srv.Serve(relayL)

	// Chaos proxy between the clients and the relay.
	chaosL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	chaos := New(relayL.Addr().String(), nil, cfg.Faults, cfg.Registry)
	chaos.SetTracer(cfg.Tracer)
	//lint:ignore orphangoroutine Serve returns when chaos.Close (after drain) closes the listener and waits for forwarders
	go chaos.Serve(chaosL)

	res := &SoakResult{Conns: cfg.Conns, Tracer: cfg.Tracer}
	var mu sync.Mutex
	fcts := make([]time.Duration, 0, cfg.Conns)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcome, fct, trace := cfg.runOne(i, chaosL.Addr().String(), sinkL.Addr().String())
			mu.Lock()
			defer mu.Unlock()
			switch outcome {
			case outcomeAdmitted:
				res.Admitted++
				fcts = append(fcts, fct)
				if trace != 0 {
					res.AdmittedTraces = append(res.AdmittedTraces, trace)
				}
			case outcomeShed:
				res.Shed++
				if trace != 0 {
					res.ShedTraces = append(res.ShedTraces, trace)
				}
			case outcomeFaulted:
				res.Faulted++
			case outcomeHung:
				res.Hung++
			}
		}(i)
	}
	wg.Wait()

	// Graceful teardown: nothing is in flight, so the drain must be clean
	// and prompt; the chaos proxy follows.
	res.DrainErr = srv.Drain(cfg.TransferBound)
	chaos.Close()

	res.ServerSheds = srv.Metrics.ShedBusy.Load() + srv.Metrics.ShedGoingAway.Load()
	res.ServerAccepted = srv.Metrics.AcceptedConns.Load()
	res.IdleClosed = srv.Metrics.IdleClosed.Load()
	if len(fcts) > 0 {
		sort.Slice(fcts, func(a, b int) bool { return fcts[a] < fcts[b] })
		res.P99 = fcts[(len(fcts)*99)/100]
	}
	return res, nil
}

type outcome int

const (
	outcomeAdmitted outcome = iota
	outcomeShed
	outcomeFaulted
	outcomeHung
)

// Span derivation labels for the soak's client-side spans. Distinct from
// the relay server's labels (1-3), so one flow's client and server span
// IDs never collide.
const (
	// soakTraceLabel namespaces soak trace IDs within the run seed, away
	// from the chaos proxy's per-connection fault-plan seeds.
	soakTraceLabel int64 = 0x74726163 // "trac"
	// clientSpanTransfer keys the client.transfer child span.
	clientSpanTransfer int64 = 10
)

// runOne is one client's journey: dial through the chaos proxy, and on
// admission push the payload and read the echo back under a deadline.
// The returned trace ID is 0 when the run is untraced.
func (cfg *SoakConfig) runOne(i int, chaosAddr, sinkAddr string) (outcome, time.Duration, uint64) {
	start := cfg.Now()
	tr := cfg.Tracer
	var sc obs.SpanContext
	var root *obs.Span
	if tr != nil {
		sc = obs.NewSpanContext(cfg.Seed, soakTraceLabel, int64(i))
		root = tr.StartRoot(tr.Now(), "client", "client.dial", sc,
			obs.Arg{Key: "conn", Val: fmt.Sprint(i)})
	}
	dial := func(ctx context.Context, network, addr string) (net.Conn, error) {
		var d net.Dialer
		c, err := d.DialContext(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		// Bound the preamble handshake: a shed verdict (or failure) must
		// arrive within DialBound or the run counts a hang.
		c.SetDeadline(start.Add(cfg.DialBound))
		return c, nil
	}
	conn, err := relay.DialViaRelaySpan(context.Background(), dial, chaosAddr, sinkAddr, sc)
	if err != nil {
		switch {
		case relay.IsShed(err):
			// The relay sheds before reading the preamble, so the shed
			// never reaches the server-side trace: the client records
			// the terminal shed event on its own dial span.
			root.Annotate(tr.Now(), "client.shed")
			root.End(tr.Now(), obs.Arg{Key: "outcome", Val: "shed"})
			return outcomeShed, 0, sc.Trace
		case isTimeout(err):
			root.End(tr.Now(), obs.Arg{Key: "outcome", Val: "hung"})
			return outcomeHung, 0, sc.Trace
		default:
			root.End(tr.Now(), obs.Arg{Key: "outcome", Val: "faulted"})
			return outcomeFaulted, 0, sc.Trace
		}
	}
	root.End(tr.Now(), obs.Arg{Key: "outcome", Val: "admitted"})
	var tf *obs.Span
	if tr != nil {
		tf = tr.StartSpan(tr.Now(), "client", "client.transfer", sc, clientSpanTransfer)
	}
	defer conn.Close()
	conn.SetDeadline(cfg.Now().Add(cfg.TransferBound))
	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	done := make(chan error, 1)
	go func() {
		_, werr := conn.Write(payload)
		done <- werr
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, got); err != nil {
		if isTimeout(err) {
			tf.End(tr.Now(), obs.Arg{Key: "outcome", Val: "hung"})
			return outcomeHung, 0, sc.Trace
		}
		tf.End(tr.Now(), obs.Arg{Key: "outcome", Val: "faulted"})
		return outcomeFaulted, 0, sc.Trace
	}
	if werr := <-done; werr != nil {
		tf.End(tr.Now(), obs.Arg{Key: "outcome", Val: "faulted"})
		return outcomeFaulted, 0, sc.Trace
	}
	for i := range got {
		if got[i] != payload[i] {
			tf.End(tr.Now(), obs.Arg{Key: "outcome", Val: "corrupt"})
			return outcomeFaulted, 0, sc.Trace
		}
	}
	tf.End(tr.Now(), obs.Arg{Key: "outcome", Val: "ok"})
	return outcomeAdmitted, cfg.Now().Sub(start), sc.Trace
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
