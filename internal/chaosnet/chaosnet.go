// lint:virtual-time
// (pragma: opts this package into the wallclock analyzer — no wall-clock
// reads in non-test sources; see internal/lint and DESIGN.md §12)

// Package chaosnet is a deterministic fault-injecting TCP proxy for chaos
// testing the live relay path. It sits between a client and a server,
// forwarding bytes while injecting the failure modes a WAN inflicts on real
// connections — added latency, partial writes, mid-stream resets, stalls —
// according to per-connection plans derived from a single seed
// (rng.DeriveSeed), so a soak run's fault schedule is reproducible from its
// seed alone.
//
// The package never reads the wall clock directly: delays and stalls go
// through an injected Sleep, keeping the non-test sources clock-free (the
// same discipline internal/obs's wall-clock lint enforces on the
// virtual-time packages, which chaosnet is held to as well).
package chaosnet

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"incastproxy/internal/obs"
	"incastproxy/internal/rng"
)

// Faults parameterizes the injected failure modes. The zero value injects
// nothing (a transparent proxy). Probabilities are per connection direction;
// offsets are drawn uniformly over the configured windows.
type Faults struct {
	// Seed roots every per-connection fault plan. Two proxies with the
	// same Seed and Faults inject the same schedule (per accept order).
	Seed int64

	// DelayProb is the chance each forwarded chunk is delayed by a uniform
	// draw from [DelayMin, DelayMax].
	DelayProb float64
	DelayMin  time.Duration
	DelayMax  time.Duration

	// ResetProb is the chance a direction is reset mid-stream: the
	// connection is torn down (with SO_LINGER 0 on real TCP, so the peer
	// sees an RST, not a graceful EOF) once the direction has forwarded a
	// byte offset drawn uniformly from [0, ResetWindow).
	ResetProb   float64
	ResetWindow int64

	// StallProb is the chance a direction freezes once for StallFor at a
	// byte offset drawn uniformly from [0, StallWindow) — the
	// silent-peer failure idle deadlines exist to reclaim.
	StallProb   float64
	StallFor    time.Duration
	StallWindow int64

	// MaxChunk caps bytes forwarded per write (0 = unlimited), forcing
	// the partial-write interleavings bulk tests never exercise.
	MaxChunk int

	// Sleep services delays and stalls; required when DelayProb or
	// StallProb is set (tests pass time.Sleep).
	Sleep func(time.Duration)
}

// Metrics counts what the proxy injected and moved.
type Metrics struct {
	Conns  *obs.Counter
	Resets *obs.Counter
	Stalls *obs.Counter
	Delays *obs.Counter
	Bytes  *obs.Counter
}

// NewMetrics builds the instrument set, registered under prefix_* when reg
// is non-nil.
func NewMetrics(reg *obs.Registry, prefix string) Metrics {
	if reg == nil {
		return Metrics{
			Conns:  &obs.Counter{},
			Resets: &obs.Counter{},
			Stalls: &obs.Counter{},
			Delays: &obs.Counter{},
			Bytes:  &obs.Counter{},
		}
	}
	return Metrics{
		Conns:  reg.Counter(prefix + "_conns_total"),
		Resets: reg.Counter(prefix + "_resets_total"),
		Stalls: reg.Counter(prefix + "_stalls_total"),
		Delays: reg.Counter(prefix + "_delays_total"),
		Bytes:  reg.Counter(prefix + "_bytes_total"),
	}
}

// Proxy is one fault-injecting forwarder. Create with New, run with Serve.
type Proxy struct {
	target  string
	dial    func(ctx context.Context, network, addr string) (net.Conn, error)
	faults  Faults
	Metrics Metrics

	tracer *obs.Tracer

	mu       sync.Mutex
	closed   bool
	nextID   int64
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
}

// SetTracer attaches a tracer: injected faults (resets, stalls, delays)
// become instant events on the decision timeline, timestamped by the
// tracer's injected clock. Call before Serve.
func (p *Proxy) SetTracer(tr *obs.Tracer) { p.tracer = tr }

// New returns a Proxy that forwards accepted connections to target over
// dial (default net.Dialer), injecting per faults. reg may be nil.
func New(target string, dial func(ctx context.Context, network, addr string) (net.Conn, error), faults Faults, reg *obs.Registry) *Proxy {
	if dial == nil {
		var d net.Dialer
		dial = d.DialContext
	}
	if faults.Sleep == nil {
		faults.Sleep = func(time.Duration) {}
	}
	return &Proxy{
		target:  target,
		dial:    dial,
		faults:  faults,
		Metrics: NewMetrics(reg, "chaos"),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Serve accepts and forwards connections on l until Close.
func (p *Proxy) Serve(l net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return net.ErrClosed
	}
	p.listener = l
	p.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return net.ErrClosed
			}
			return err
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			return net.ErrClosed
		}
		id := p.nextID
		p.nextID++
		p.conns[c] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		p.Metrics.Conns.Add(1)
		go func() {
			defer p.wg.Done() // paired with the Add under p.mu above
			p.forward(c, id)
		}()
	}
}

// Close stops the proxy: the listener and every in-flight connection are
// torn down, and all forwarders have exited when Close returns.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	l := p.listener
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	if l != nil {
		l.Close()
	}
	p.wg.Wait()
	return nil
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// forward runs one proxied connection: dial upstream, then pump each
// direction under its own fault plan (independent seeds, so a reset in one
// direction and a stall in the other can coincide).
func (p *Proxy) forward(client net.Conn, id int64) {
	defer p.untrack(client)
	defer client.Close()
	upstream, err := p.dial(context.Background(), "tcp", p.target)
	if err != nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		upstream.Close()
		return
	}
	p.conns[upstream] = struct{}{}
	p.mu.Unlock()
	defer p.untrack(upstream)
	defer upstream.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.pump(upstream, client, p.newPlan(id, 0))
	}()
	go func() {
		defer wg.Done()
		p.pump(client, upstream, p.newPlan(id, 1))
	}()
	wg.Wait()
}

// plan is one direction's predetermined fault schedule.
type plan struct {
	rng     *rand.Rand
	resetAt int64 // byte offset to reset at; -1 = never
	stallAt int64 // byte offset to stall at; -1 = never
}

func (p *Proxy) newPlan(conn, dir int64) *plan {
	r := rand.New(rand.NewSource(rng.DeriveSeed(p.faults.Seed, conn, dir)))
	pl := &plan{rng: r, resetAt: -1, stallAt: -1}
	if p.faults.ResetProb > 0 && r.Float64() < p.faults.ResetProb {
		pl.resetAt = boundedOffset(r, p.faults.ResetWindow)
	}
	if p.faults.StallProb > 0 && r.Float64() < p.faults.StallProb {
		pl.stallAt = boundedOffset(r, p.faults.StallWindow)
	}
	return pl
}

func boundedOffset(r *rand.Rand, window int64) int64 {
	if window <= 0 {
		window = 64 << 10
	}
	return r.Int63n(window)
}

// errInjectedReset marks a plan-scheduled teardown.
var errInjectedReset = errors.New("chaosnet: injected reset")

// pump forwards src->dst, applying the direction's fault plan per chunk.
func (p *Proxy) pump(dst, src net.Conn, pl *plan) {
	buf := make([]byte, 32<<10)
	var offset int64
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			if err := p.inject(dst, src, buf[:n], &offset, pl); err != nil {
				return
			}
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				if cw, ok := dst.(interface{ CloseWrite() error }); ok {
					cw.CloseWrite()
				} else {
					dst.Close()
				}
			} else {
				dst.Close()
				src.Close()
			}
			return
		}
	}
}

// inject forwards one read's worth of bytes in MaxChunk pieces, applying
// delays, the stall, and the reset as their offsets come due.
func (p *Proxy) inject(dst, src net.Conn, b []byte, offset *int64, pl *plan) error {
	for len(b) > 0 {
		chunk := b
		if p.faults.MaxChunk > 0 && len(chunk) > p.faults.MaxChunk {
			chunk = chunk[:p.faults.MaxChunk]
		}
		if pl.stallAt >= 0 && pl.stallAt < *offset+int64(len(chunk)) {
			pl.stallAt = -1
			p.Metrics.Stalls.Add(1)
			p.tracer.Instant(p.tracer.Now(), "chaos", "chaos.stall", 0)
			p.faults.Sleep(p.faults.StallFor)
		}
		if pl.resetAt >= 0 && pl.resetAt < *offset+int64(len(chunk)) {
			p.Metrics.Resets.Add(1)
			p.tracer.Instant(p.tracer.Now(), "chaos", "chaos.reset", 0)
			reset(dst)
			reset(src)
			return errInjectedReset
		}
		if p.faults.DelayProb > 0 && pl.rng.Float64() < p.faults.DelayProb {
			p.Metrics.Delays.Add(1)
			p.faults.Sleep(delayDraw(pl.rng, p.faults.DelayMin, p.faults.DelayMax))
		}
		n, err := dst.Write(chunk)
		p.Metrics.Bytes.Add(uint64(n))
		*offset += int64(n)
		if err != nil {
			src.Close()
			return err
		}
		b = b[len(chunk):]
	}
	return nil
}

func delayDraw(r *rand.Rand, min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	return min + time.Duration(r.Int63n(int64(max-min)))
}

// reset tears a connection down abruptly: SO_LINGER 0 on real TCP makes the
// peer see an RST instead of a graceful close.
func reset(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}
