package chaosnet

// TestChaosSoak is the acceptance gate for the relay's overload contract
// (`make soak` runs it under -race): the real data plane at 2x admission
// capacity with latency, stalls, partial writes, and resets in the path.
// Invariants: no hangs (every dial gets an explicit verdict within its
// bound), bounded p99 for admitted transfers, client/server shed accounting
// agrees, and the post-soak drain leaves no goroutines behind.

import (
	"testing"
	"time"

	"incastproxy/internal/cliutil"
	"incastproxy/internal/obs"
)

func TestChaosSoak(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	reg := obs.NewRegistry()
	tracer := obs.NewTracerWithClock(cliutil.WallClock(time.Now))
	cfg := SoakConfig{
		Seed:     20250808,
		Capacity: 8,
		Conns:    16, // 2x capacity: half must be admitted, half shed or faulted
		Faults: Faults{
			DelayProb:   0.05,
			DelayMin:    time.Millisecond,
			DelayMax:    5 * time.Millisecond,
			ResetProb:   0.2,
			ResetWindow: 256 << 10,
			StallProb:   0.1,
			StallFor:    50 * time.Millisecond,
			StallWindow: 64 << 10,
			MaxChunk:    4 << 10,
			Sleep:       time.Sleep,
		},
		DialBound:     5 * time.Second,
		TransferBound: 30 * time.Second,
		P99Bound:      20 * time.Second,
		IdleTimeout:   2 * time.Second,
		Now:           time.Now,
		Registry:      reg,
		Tracer:        tracer,
	}
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: admitted=%d shed=%d faulted=%d hung=%d p99=%v serverSheds=%d accepted=%d idleClosed=%d",
		res.Admitted, res.Shed, res.Faulted, res.Hung, res.P99,
		res.ServerSheds, res.ServerAccepted, res.IdleClosed)
	// Check includes the trace-completeness invariant: every admitted
	// dial must have a full client+relay span tree, every shed a
	// terminal shed event.
	if err := res.Check(cfg); err != nil {
		t.Fatal(err)
	}
	if len(res.AdmittedTraces) != res.Admitted || len(res.ShedTraces) != res.Shed {
		t.Fatalf("trace accounting: %d/%d admitted, %d/%d shed",
			len(res.AdmittedTraces), res.Admitted, len(res.ShedTraces), res.Shed)
	}
	// At 2x capacity the admission cap must actually bite: the server shed
	// at least one dial, and it did so explicitly.
	if res.ServerSheds == 0 {
		t.Fatal("soak at 2x capacity never triggered admission shedding")
	}
	if res.ServerAccepted != uint64(cfg.Conns) {
		t.Fatalf("server accepted %d of %d dials", res.ServerAccepted, cfg.Conns)
	}
}

// TestChaosSoakCleanFabric is the control run: no faults, capacity above
// the offered load. Everything must be admitted and nothing shed — proving
// the harness itself (not the chaos) causes the degraded outcomes above.
func TestChaosSoakCleanFabric(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	cfg := SoakConfig{
		Seed:     1,
		Capacity: 32,
		Conns:    8,
		Faults:   Faults{Sleep: time.Sleep},
		Now:      time.Now,
	}
	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(cfg); err != nil {
		t.Fatal(err)
	}
	if res.Admitted != cfg.Conns || res.Shed != 0 || res.Faulted != 0 {
		t.Fatalf("clean fabric: admitted=%d shed=%d faulted=%d, want %d/0/0",
			res.Admitted, res.Shed, res.Faulted, cfg.Conns)
	}
}

func TestSoakRequiresClock(t *testing.T) {
	if _, err := RunSoak(SoakConfig{}); err == nil {
		t.Fatal("RunSoak without Now must refuse to run")
	}
}
