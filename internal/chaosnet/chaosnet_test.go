package chaosnet

import (
	"bytes"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"incastproxy/internal/cliutil"
)

// startEcho returns a loopback echo server's address and a closer.
func startEcho(t *testing.T) (string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return l.Addr().String(), func() { l.Close() }
}

func startProxy(t *testing.T, target string, f Faults) (*Proxy, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := New(target, nil, f, nil)
	go p.Serve(l)
	return p, l.Addr().String()
}

func TestProxyTransparentWithoutFaults(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	echo, stop := startEcho(t)
	defer stop()
	p, addr := startProxy(t, echo, Faults{})
	defer p.Close()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte("through the chaos "), 1000)
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("zero-fault proxy corrupted the stream")
	}
	if p.Metrics.Resets.Load() != 0 || p.Metrics.Stalls.Load() != 0 {
		t.Fatal("zero-fault proxy injected faults")
	}
	p.Close()
}

func TestProxyPartialWritesPreserveBytes(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	echo, stop := startEcho(t)
	defer stop()
	// 7-byte chunks force pathological interleavings; content must still
	// arrive intact and in order.
	p, addr := startProxy(t, echo, Faults{Seed: 3, MaxChunk: 7})
	defer p.Close()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte("abcdefghij"), 5000)
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("partial-write chunking corrupted the stream")
	}
	p.Close()
}

func TestProxyInjectsReset(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	echo, stop := startEcho(t)
	defer stop()
	// Every direction resets within the first KiB: the transfer must die
	// with an error, and the proxy must count what it injected.
	p, addr := startProxy(t, echo, Faults{Seed: 11, ResetProb: 1, ResetWindow: 1024})
	defer p.Close()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(10 * time.Second))
	var total int
	buf := make([]byte, 4096)
	for {
		if _, werr := c.Write(bytes.Repeat([]byte("x"), 1024)); werr != nil {
			break
		}
		n, rerr := c.Read(buf)
		total += n
		if rerr != nil {
			break
		}
		if total > 1<<20 {
			t.Fatal("reset never arrived")
		}
	}
	if p.Metrics.Resets.Load() == 0 {
		t.Fatal("reset was not counted")
	}
	p.Close()
}

func TestProxyStallInjectedOnce(t *testing.T) {
	defer cliutil.LeakCheck(t)()
	echo, stop := startEcho(t)
	defer stop()
	var slept atomic.Int64
	p, addr := startProxy(t, echo, Faults{
		Seed:        5,
		StallProb:   1,
		StallFor:    3 * time.Millisecond,
		StallWindow: 64,
		Sleep:       func(d time.Duration) { slept.Add(int64(d)); time.Sleep(d) },
	})
	defer p.Close()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte("stall me "), 100)
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("stalled stream corrupted")
	}
	// Both directions carry bytes, each stalls at most once.
	if s := p.Metrics.Stalls.Load(); s == 0 || s > 2 {
		t.Fatalf("stalls = %d, want 1 or 2", s)
	}
	if slept.Load() == 0 {
		t.Fatal("stall never slept")
	}
	p.Close()
}

func TestPlansAreDeterministic(t *testing.T) {
	a := New("x", nil, Faults{Seed: 42, ResetProb: 0.5, StallProb: 0.5, ResetWindow: 1 << 20, StallWindow: 1 << 20}, nil)
	b := New("x", nil, Faults{Seed: 42, ResetProb: 0.5, StallProb: 0.5, ResetWindow: 1 << 20, StallWindow: 1 << 20}, nil)
	for conn := int64(0); conn < 64; conn++ {
		for dir := int64(0); dir < 2; dir++ {
			pa, pb := a.newPlan(conn, dir), b.newPlan(conn, dir)
			if pa.resetAt != pb.resetAt || pa.stallAt != pb.stallAt {
				t.Fatalf("conn %d dir %d: plans diverge (%d/%d vs %d/%d)",
					conn, dir, pa.resetAt, pa.stallAt, pb.resetAt, pb.stallAt)
			}
		}
	}
	// Different seeds must give different schedules somewhere.
	c := New("x", nil, Faults{Seed: 43, ResetProb: 0.5, StallProb: 0.5, ResetWindow: 1 << 20, StallWindow: 1 << 20}, nil)
	same := true
	for conn := int64(0); conn < 64 && same; conn++ {
		pa, pc := a.newPlan(conn, 0), c.newPlan(conn, 0)
		if pa.resetAt != pc.resetAt || pa.stallAt != pc.stallAt {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}
