package control

import (
	"testing"

	"incastproxy/internal/netsim"
	"incastproxy/internal/obs"
	"incastproxy/internal/rng"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

func TestEWMAHalfLife(t *testing.T) {
	m := NewEWMA(100 * units.Microsecond)
	m.Observe(0, 0)
	// One half-life after a step to 100, the EWMA must sit at the
	// midpoint.
	m.Observe(units.Time(100*units.Microsecond), 100)
	if v := m.Value(); v < 49.9 || v > 50.1 {
		t.Fatalf("after one half-life: %v, want 50", v)
	}
	// Much later the EWMA converges onto the input.
	m.Observe(units.Time(2*units.Millisecond), 100)
	if v := m.Value(); v < 99.9 {
		t.Fatalf("after 19 half-lives: %v, want ~100", v)
	}
}

func TestEWMASameInstantBlends(t *testing.T) {
	m := NewEWMA(units.Millisecond)
	m.Observe(0, 0)
	m.Observe(0, 100)
	if v := m.Value(); v != 50 {
		t.Fatalf("same-instant blend: %v, want 50", v)
	}
}

func TestRateEstimator(t *testing.T) {
	r := NewRate(100 * units.Microsecond)
	// 10 events per 100us = 100k/sec, sustained.
	var count uint64
	for i := 1; i <= 50; i++ {
		count += 10
		r.Observe(units.Time(i)*units.Time(100*units.Microsecond), count)
	}
	if v := r.Value(); v < 90_000 || v > 110_000 {
		t.Fatalf("sustained rate: %v, want ~100k/sec", v)
	}
	// Counter going quiet decays the rate toward zero.
	for i := 51; i <= 120; i++ {
		r.Observe(units.Time(i)*units.Time(100*units.Microsecond), count)
	}
	if v := r.Value(); v > 1000 {
		t.Fatalf("quiet rate: %v, want ~0", v)
	}
}

// buildLink wires two hosts with one saturable link for signal tests.
func buildLink(qc netsim.QueueConfig) (*sim.Engine, *netsim.Host, *netsim.Host, *netsim.Port) {
	e := sim.New()
	a := netsim.NewHost(1, "a")
	b := netsim.NewHost(2, "b")
	pa, _ := netsim.Connect(a, b, 100*units.Gbps, units.Microsecond, qc, qc, rng.New(7))
	return e, a, b, pa
}

func TestQueueSignalTracksDepthAndMarks(t *testing.T) {
	e, a, b, port := buildLink(netsim.QueueConfig{
		Capacity: 10 * units.MB, MarkLow: 10 * units.KB, MarkHigh: 50 * units.KB,
	})
	sig := WatchPort("a->b", port, 100*units.Microsecond)
	sig.Sample(0) // prime the rate estimators before the burst
	// Blast 2MB into the 100Gbps link at t=0: the queue backs up.
	for i := 0; i < 1400; i++ {
		p := a.NewPacket()
		p.Flow = 5
		p.Kind = netsim.Data
		p.Seq = int64(i)
		p.Size = 1500
		p.FullSize = 1500
		p.Dst = b.ID()
		a.Send(e, p)
	}
	e.Schedule(units.Time(10*units.Microsecond), func(e *sim.Engine) { sig.Sample(e.Now()) })
	e.RunUntil(units.Time(11 * units.Microsecond))
	if sig.RawDepth() == 0 {
		t.Fatal("queue depth signal saw nothing during a 2MB blast")
	}
	if !sig.Congested(100*units.KB, 0) {
		t.Fatalf("blast of 2MB not congested at 100KB threshold (depth %v)", sig.RawDepth())
	}
	if sig.MarkRate.Value() == 0 {
		t.Fatal("ECN marks above MarkHigh produced no mark-rate signal")
	}
}

func TestDetectorHysteresis(t *testing.T) {
	cfg := DetectorConfig{
		OnsetDepth: 1 * units.MB,
		DecayDepth: 100 * units.KB,
		MinDwell:   100 * units.Microsecond,
	}
	d := NewDetector(cfg)
	sig := &QueueSignal{
		Depth:    NewEWMA(50 * units.Microsecond),
		MarkRate: NewRate(50 * units.Microsecond),
		TrimRate: NewRate(50 * units.Microsecond),
		DropRate: NewRate(50 * units.Microsecond),
	}
	at := func(us int64) units.Time { return units.Time(us) * units.Time(units.Microsecond) }

	// Below onset: stays quiet.
	sig.raw = 500 * units.KB
	sig.Depth.Observe(at(10), float64(sig.raw))
	if d.Step(at(10), sig) || d.Phase() != Quiet {
		t.Fatal("onset below threshold")
	}
	// Depth crosses onset — but dwell blocks an immediate transition at
	// the same instant the detector was created... step at a later time.
	sig.raw = 2 * units.MB
	sig.Depth.Observe(at(150), float64(sig.raw))
	if !d.Step(at(150), sig) || d.Phase() != Incast {
		t.Fatal("no onset at 2x threshold")
	}
	if d.Onsets() != 1 {
		t.Fatalf("onsets = %d, want 1", d.Onsets())
	}
	// Still above decay: stays in incast.
	sig.raw = 500 * units.KB
	for us := int64(160); us < 400; us += 20 {
		sig.Depth.Observe(at(us), float64(sig.raw))
		d.Step(at(us), sig)
	}
	if d.Phase() != Incast {
		t.Fatal("decayed above the decay threshold")
	}
	// Drain to zero: decay fires only after the EWMA catches down and
	// the dwell passes.
	sig.raw = 0
	for us := int64(400); us < 2000; us += 20 {
		sig.Depth.Observe(at(us), 0)
		d.Step(at(us), sig)
	}
	if d.Phase() != Quiet || d.Decays() != 1 {
		t.Fatalf("no decay after drain: phase=%v decays=%d", d.Phase(), d.Decays())
	}
}

func TestDetectorForceOnset(t *testing.T) {
	d := NewDetector(DetectorConfig{OnsetDepth: units.MB, MinDwell: units.Millisecond})
	if !d.ForceOnset(units.Time(5 * units.Microsecond)) {
		t.Fatal("force onset on quiet detector failed")
	}
	if d.ForceOnset(units.Time(6 * units.Microsecond)) {
		t.Fatal("force onset while already in incast reported a transition")
	}
	if d.Phase() != Incast || d.Onsets() != 1 {
		t.Fatalf("phase=%v onsets=%d", d.Phase(), d.Onsets())
	}
}

func TestPathEstimator(t *testing.T) {
	pe := NewPathEstimator("direct", 0)
	if !pe.Healthy(0.5) {
		t.Fatal("unprobed path must be presumed healthy")
	}
	pe.ObserveRTT(4 * units.Millisecond)
	pe.ObserveRTT(4 * units.Millisecond)
	for i := 0; i < 40; i++ {
		pe.ObserveRTT(6 * units.Millisecond) // congestion: +2ms queueing
	}
	if got := pe.MinRTT(); got != 4*units.Millisecond {
		t.Fatalf("min RTT %v, want 4ms", got)
	}
	if ex := pe.Excess(); ex < 1500*units.Microsecond || ex > 2100*units.Microsecond {
		t.Fatalf("excess %v, want ~2ms", ex)
	}
	for i := 0; i < 20; i++ {
		pe.ObserveLoss(true)
	}
	if pe.Healthy(0.5) {
		t.Fatal("path with 100% recent probe loss still healthy")
	}
	sent, lost := pe.Probes()
	if sent != 20 || lost != 20 {
		t.Fatalf("probes = %d/%d, want 20/20", lost, sent)
	}
}

func TestPathEstimatorBusyRate(t *testing.T) {
	pe := NewPathEstimator("proxy", 0)
	if pe.BusyRate() != 0 {
		t.Fatal("fresh estimator must read zero busy rate")
	}
	// Admission sheds are a separate axis from probe loss: a relay can shed
	// every dial while answering every probe.
	for i := 0; i < 30; i++ {
		pe.ObserveBusy(true)
		pe.ObserveLoss(false)
	}
	if br := pe.BusyRate(); br < 0.95 {
		t.Fatalf("busy rate %.2f after sustained sheds, want ~1", br)
	}
	if !pe.Healthy(0.5) {
		t.Fatal("shedding must not flip probe health")
	}
	dials, sheds := pe.Admissions()
	if dials != 30 || sheds != 30 {
		t.Fatalf("admissions = %d/%d, want 30/30", sheds, dials)
	}
	// Recovery: successful dials decay the EWMA back toward zero.
	for i := 0; i < 30; i++ {
		pe.ObserveBusy(false)
	}
	if br := pe.BusyRate(); br > 0.05 {
		t.Fatalf("busy rate %.2f after sustained admits, want ~0", br)
	}
}

func TestPathEstimatorNilSafe(t *testing.T) {
	var pe *PathEstimator
	pe.ObserveRTT(units.Millisecond)
	pe.ObserveLoss(true)
	pe.ObserveBusy(true)
	if pe.RTT() != 0 || pe.LossRate() != 0 || pe.BusyRate() != 0 || !pe.Healthy(0.1) {
		t.Fatal("nil estimator must read as zero and healthy")
	}
}

func TestConfigParseDefaultsAndOverrides(t *testing.T) {
	def, err := ParseConfig("")
	if err != nil {
		t.Fatal(err)
	}
	if def != DefaultConfig() {
		t.Fatalf("empty parse differs from defaults: %+v", def)
	}
	c, err := ParseConfig("adaptive:onset-depth=4MB, min-dwell=200us ,max-switches=1,probe-loss=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if c.OnsetDepth != 4*units.MB || c.MinDwell != 200*units.Microsecond ||
		c.MaxSwitches != 1 || c.ProbeLoss != 0.25 {
		t.Fatalf("overrides not applied: %+v", c)
	}
	// Untouched keys keep their defaults.
	if c.SamplePeriod != DefaultConfig().SamplePeriod {
		t.Fatalf("sample period clobbered: %v", c.SamplePeriod)
	}
}

func TestConfigParseRejectsBadInput(t *testing.T) {
	for _, bad := range []string{
		"onset-depth",               // not key=value
		"no-such-knob=1",            // unknown key
		"onset-depth=-4MB",          // negative size
		"min-dwell=7",               // unitless duration
		"probe-loss=2",              // out of range
		"decay-depth=9MB",           // >= onset depth (default 2MB)
		"hysteresis=0.5",            // < 1
		"max-switches=googol",       // not an int
		"sample-period=0s",          // must be positive
		"safe-depth-frac=0",         // out of range
		"onset-mark-rate=-1",        // negative rate
		"onset-depth=2MB,,min-dwel", // trailing garbage key
	} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("ParseConfig(%q) accepted", bad)
		}
	}
}

func TestConfigStringRoundTrips(t *testing.T) {
	c := DefaultConfig()
	c.OnsetDepth = 3 * units.MB
	c.MaxSwitches = 5
	c.ProbeLoss = 0.3
	got, err := ParseConfig(c.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", c.String(), err)
	}
	if got != c {
		t.Fatalf("round trip changed the config:\n in: %+v\nout: %+v", c, got)
	}
}

// TestControllerSteersOnAnnouncedOverflow drives the policy engine directly:
// announced flows exceeding the overflow budget must produce exactly one
// steer-proxy decision (MaxSwitches=1 honored, dwell preventing flapping).
func TestControllerSteersOnAnnouncedOverflow(t *testing.T) {
	e := sim.New()
	cfg := DefaultConfig()
	cfg.OverflowBytes = 10 * units.MB
	cfg.MaxSwitches = 1
	reg := obs.NewRegistry()
	c := NewController(cfg, reg)

	var got []Action
	c.OnSteer(func(e *sim.Engine, a Action, reason string) bool {
		got = append(got, a)
		if reason != "announced-overflow" {
			t.Errorf("reason %q, want announced-overflow", reason)
		}
		return true
	})
	for i := 0; i < 8; i++ {
		c.FlowStarted(2 * units.MB) // 16MB total > 10MB budget
	}
	c.Start(e, units.Time(5*units.Millisecond))
	e.RunUntil(units.Time(5 * units.Millisecond))

	if len(got) != 1 || got[0] != SteerProxy {
		t.Fatalf("steers = %v, want exactly one steer-proxy", got)
	}
	if c.Route() != RouteProxy || c.Switches() != 1 {
		t.Fatalf("route=%v switches=%d", c.Route(), c.Switches())
	}
	snap := reg.Snapshot()
	if v, _ := snap.Get("control_steer_proxy_total"); v != 1 {
		t.Fatalf("control_steer_proxy_total = %d, want 1", v)
	}
	if v, _ := snap.Get("control_onsets_total"); v != 1 {
		t.Fatalf("control_onsets_total = %d, want 1", v)
	}
}

// TestControllerVetoKeepsRetrying: a vetoed steer must not consume a switch.
func TestControllerVetoKeepsRetrying(t *testing.T) {
	e := sim.New()
	cfg := DefaultConfig()
	cfg.OverflowBytes = units.MB
	cfg.MaxSwitches = 1
	c := NewController(cfg, nil)
	vetoes := 0
	c.OnSteer(func(e *sim.Engine, a Action, reason string) bool {
		vetoes++
		return vetoes > 3 // veto the first three attempts
	})
	c.FlowStarted(2 * units.MB)
	c.Start(e, units.Time(units.Millisecond))
	e.RunUntil(units.Time(units.Millisecond))
	if vetoes != 4 {
		t.Fatalf("steer attempts = %d, want 4 (3 vetoes + 1 executed)", vetoes)
	}
	if c.Switches() != 1 || c.Route() != RouteProxy {
		t.Fatalf("switches=%d route=%v", c.Switches(), c.Route())
	}
}

// TestControllerAvoidsDegradedProxy: a proxy with high probe loss must veto
// the upgrade, then recovery must allow it.
func TestControllerAvoidsDegradedProxy(t *testing.T) {
	e := sim.New()
	cfg := DefaultConfig()
	cfg.OverflowBytes = units.MB
	c := NewController(cfg, nil)
	steers := 0
	c.OnSteer(func(e *sim.Engine, a Action, reason string) bool { steers++; return true })
	c.FlowStarted(2 * units.MB)
	for i := 0; i < 20; i++ {
		c.ProxyEstimator().ObserveLoss(true)
	}
	c.Start(e, units.Time(200*units.Microsecond))
	e.RunUntil(units.Time(200 * units.Microsecond))
	if steers != 0 {
		t.Fatalf("steered onto a proxy with 100%% probe loss (%d steers)", steers)
	}
	// Probes recover: the deferred steer goes through.
	for i := 0; i < 60; i++ {
		c.ProxyEstimator().ObserveLoss(false)
	}
	e2 := sim.New()
	c2 := NewController(cfg, nil)
	c2.OnSteer(func(e *sim.Engine, a Action, reason string) bool { steers++; return true })
	c2.FlowStarted(2 * units.MB)
	c2.Start(e2, units.Time(200*units.Microsecond))
	e2.RunUntil(units.Time(200 * units.Microsecond))
	if steers != 1 {
		t.Fatalf("healthy proxy not steered onto (%d steers)", steers)
	}
}

// TestControllerSteersBackOffDeadProxy: once routed via the proxy, probe
// losses must trigger the downgrade to direct.
func TestControllerSteersBackOffDeadProxy(t *testing.T) {
	e := sim.New()
	cfg := DefaultConfig()
	cfg.OverflowBytes = units.MB
	c := NewController(cfg, nil)
	var acts []Action
	c.OnSteer(func(e *sim.Engine, a Action, reason string) bool {
		acts = append(acts, a)
		if a == SteerProxy {
			// The moment we land on the proxy, it dies.
			e.Schedule(e.Now().Add(200*units.Microsecond), func(e *sim.Engine) {
				for i := 0; i < 30; i++ {
					c.ProxyEstimator().ObserveLoss(true)
				}
			})
		}
		return true
	})
	c.FlowStarted(2 * units.MB)
	c.Start(e, units.Time(2*units.Millisecond))
	e.RunUntil(units.Time(2 * units.Millisecond))
	if len(acts) != 2 || acts[0] != SteerProxy || acts[1] != SteerDirect {
		t.Fatalf("actions = %v, want [steer-proxy steer-direct]", acts)
	}
	if c.Route() != RouteDirect {
		t.Fatalf("route = %v, want direct", c.Route())
	}
}

// TestProberMeasuresPath: probes over a real simulated link must measure the
// propagation RTT and count no losses; taking the link down must turn every
// probe into a loss.
func TestProberMeasuresPath(t *testing.T) {
	e, a, b, port := buildLink(netsim.QueueConfig{Capacity: 10 * units.MB})
	est := NewPathEstimator("test", 0)
	BindEcho(b, ProbeFlowBase)
	pr := NewProber(a, b.ID(), ProbeFlowBase, est, 100*units.Microsecond,
		units.Millisecond, rng.New(3))
	pr.Start(e, units.Time(30*units.Millisecond))
	e.RunUntil(units.Time(10 * units.Millisecond))

	if est.RTTSamples() < 50 {
		t.Fatalf("only %d RTT samples over 10ms at 100us cadence", est.RTTSamples())
	}
	// 2x 1us propagation + 2x 64B serialization: ~2us.
	if rtt := est.RTT(); rtt < 2*units.Microsecond || rtt > 4*units.Microsecond {
		t.Fatalf("probe RTT %v, want ~2us", rtt)
	}
	if !est.Healthy(0.5) {
		t.Fatalf("healthy path unhealthy: loss=%v", est.LossRate())
	}

	// Cut the link: the estimator must go unhealthy.
	port.SetDown(true)
	port.Peer().SetDown(true)
	e.RunUntil(units.Time(30 * units.Millisecond))
	if est.Healthy(0.5) {
		t.Fatalf("cut path still healthy: loss=%v", est.LossRate())
	}
}
