package control

import (
	"fmt"
	"strconv"
	"strings"

	"incastproxy/internal/cliutil"
	"incastproxy/internal/units"
)

// Config holds every controller threshold. The zero value is not usable;
// start from DefaultConfig (or ParseConfig, which applies overrides on top
// of the defaults — the -policy flag's format).
type Config struct {
	// SamplePeriod is the controller tick: every period it samples the
	// watched queues, steps the detector, and evaluates the policy.
	SamplePeriod units.Duration
	// HalfLife smooths the queue signals (depth EWMA, mark/trim/drop
	// rates).
	HalfLife units.Duration

	// OnsetDepth / OnsetMarkRate / DecayDepth / MinDwell parameterize the
	// incast detector (see DetectorConfig). OnsetMarkRate <= 0 disables the
	// mark-rate arm: with DCTCP-style marking thresholds far below the buffer
	// budget, any multi-megabyte burst sustains marking while it lands, so a
	// mark-rate onset would fire on epochs that comfortably fit the buffer.
	OnsetDepth    units.ByteSize
	OnsetMarkRate float64
	DecayDepth    units.ByteSize
	MinDwell      units.Duration

	// BusyMarkRate is the sustained ECN mark rate (marks/sec) at the
	// proxy-side bottleneck above which the proxy path counts as busy with
	// competing traffic and is not worth steering onto. Marking is the right
	// busyness signal there: ECN-governed cross traffic keeps the queue
	// shallow, so a depth threshold alone never sees the contention.
	// <= 0 disables the arm.
	BusyMarkRate float64

	// OverflowBytes is the receiver-side buffer budget used for
	// notification-driven onset: when flows registered with the
	// controller announce more aggregate bytes than this, the first
	// window alone must overflow the bottleneck queue, and the controller
	// may steer before the queue ever shows it. 0 disables the arm
	// (callers usually set it to the receiver ToR queue capacity).
	OverflowBytes units.ByteSize

	// MaxSwitches caps re-steers per epoch; together with MinDwell it
	// bounds flapping.
	MaxSwitches int

	// ProbeEvery / ProbeTimeout drive the in-sim path probers; a probe
	// unanswered for ProbeTimeout counts as lost.
	ProbeEvery   units.Duration
	ProbeTimeout units.Duration
	// ProbeLoss is the smoothed probe-loss fraction above which a path is
	// considered down.
	ProbeLoss float64
	// ExcessLimit is the probe queueing-delay excess (RTT over baseline)
	// above which a path is considered congested.
	ExcessLimit units.Duration

	// Hysteresis is the required relative advantage before steering onto
	// a path when both candidates carry live estimates (>= 1; 1 disables).
	Hysteresis float64

	// SafeDepthFrac bounds suffix-mode re-homing: in-flight bytes plus
	// current queue depth must stay under this fraction of OverflowBytes
	// for the un-sent-suffix re-steer to be safe (see workload).
	SafeDepthFrac float64

	// PaceWindow caps each adaptive flow's initial congestion window until
	// the controller's first verdict. A flow exposes at most this many
	// bytes to the network while the steer decision is pending, so a
	// mid-epoch upgrade onto the proxy re-homes nearly the whole share as
	// an un-sent suffix instead of re-transmitting it. Released (Boost to
	// the full 1-BDP window) once the epoch is confirmed direct.
	PaceWindow units.ByteSize
}

// DefaultConfig returns the tuned defaults for the §4.1 fabric.
func DefaultConfig() Config {
	return Config{
		SamplePeriod:  20 * units.Microsecond,
		HalfLife:      100 * units.Microsecond,
		OnsetDepth:    2 * units.MB,
		DecayDepth:    256 * units.KB,
		OnsetMarkRate: 0, // depth + announcements detect receiver-side onset
		BusyMarkRate:  200_000,
		MinDwell:      100 * units.Microsecond,
		OverflowBytes: 0,
		MaxSwitches:   2,
		ProbeEvery:    200 * units.Microsecond,
		ProbeTimeout:  8 * units.Millisecond,
		ProbeLoss:     0.5,
		ExcessLimit:   500 * units.Microsecond,
		Hysteresis:    1.2,
		SafeDepthFrac: 0.5,
		PaceWindow:    64 * units.KB,
	}
}

// Validate reports threshold inconsistencies.
func (c Config) Validate() error {
	switch {
	case c.SamplePeriod <= 0:
		return fmt.Errorf("control: sample-period must be positive, got %v", c.SamplePeriod)
	case c.HalfLife <= 0:
		return fmt.Errorf("control: half-life must be positive, got %v", c.HalfLife)
	case c.OnsetDepth <= 0:
		return fmt.Errorf("control: onset-depth must be positive, got %v", c.OnsetDepth)
	case c.DecayDepth < 0 || c.DecayDepth >= c.OnsetDepth:
		return fmt.Errorf("control: decay-depth %v must be in [0, onset-depth %v)", c.DecayDepth, c.OnsetDepth)
	case c.OnsetMarkRate < 0:
		return fmt.Errorf("control: onset-mark-rate must be >= 0, got %g", c.OnsetMarkRate)
	case c.BusyMarkRate < 0:
		return fmt.Errorf("control: busy-mark-rate must be >= 0, got %g", c.BusyMarkRate)
	case c.MinDwell < 0:
		return fmt.Errorf("control: min-dwell must be >= 0, got %v", c.MinDwell)
	case c.OverflowBytes < 0:
		return fmt.Errorf("control: overflow-bytes must be >= 0, got %v", c.OverflowBytes)
	case c.MaxSwitches < 0:
		return fmt.Errorf("control: max-switches must be >= 0, got %d", c.MaxSwitches)
	case c.ProbeEvery <= 0:
		return fmt.Errorf("control: probe-every must be positive, got %v", c.ProbeEvery)
	case c.ProbeTimeout <= 0:
		return fmt.Errorf("control: probe-timeout must be positive, got %v", c.ProbeTimeout)
	case c.ProbeLoss <= 0 || c.ProbeLoss > 1:
		return fmt.Errorf("control: probe-loss must be in (0, 1], got %g", c.ProbeLoss)
	case c.ExcessLimit <= 0:
		return fmt.Errorf("control: excess-limit must be positive, got %v", c.ExcessLimit)
	case c.Hysteresis < 1:
		return fmt.Errorf("control: hysteresis must be >= 1, got %g", c.Hysteresis)
	case c.SafeDepthFrac <= 0 || c.SafeDepthFrac > 1:
		return fmt.Errorf("control: safe-depth-frac must be in (0, 1], got %g", c.SafeDepthFrac)
	case c.PaceWindow <= 0:
		return fmt.Errorf("control: pace-window must be positive, got %v", c.PaceWindow)
	}
	return nil
}

// detectorConfig projects the controller thresholds onto the detector.
func (c Config) detectorConfig() DetectorConfig {
	return DetectorConfig{
		OnsetDepth:    c.OnsetDepth,
		OnsetMarkRate: c.OnsetMarkRate,
		DecayDepth:    c.DecayDepth,
		MinDwell:      c.MinDwell,
	}
}

// String renders the config in the same key=value,... form ParseConfig
// accepts, in fixed key order, so configs round-trip and fingerprint
// deterministically.
func (c Config) String() string {
	return fmt.Sprintf("sample-period=%v,half-life=%v,onset-depth=%d,decay-depth=%d,"+
		"onset-mark-rate=%g,busy-mark-rate=%g,min-dwell=%v,overflow-bytes=%d,max-switches=%d,"+
		"probe-every=%v,probe-timeout=%v,probe-loss=%g,excess-limit=%v,"+
		"hysteresis=%g,safe-depth-frac=%g,pace-window=%d",
		c.SamplePeriod, c.HalfLife, int64(c.OnsetDepth), int64(c.DecayDepth),
		c.OnsetMarkRate, c.BusyMarkRate, c.MinDwell, int64(c.OverflowBytes), c.MaxSwitches,
		c.ProbeEvery, c.ProbeTimeout, c.ProbeLoss, c.ExcessLimit,
		c.Hysteresis, c.SafeDepthFrac, int64(c.PaceWindow))
}

// ParseConfig parses a comma-separated key=value threshold list (the
// -policy flag's argument) applied over DefaultConfig. An empty string
// returns the defaults. Durations take cliutil forms ("50us", "2ms"), sizes
// take "64KB"/"1MB"/plain bytes, rates and fractions are plain floats.
//
//	adaptive:onset-depth=4MB,min-dwell=200us,max-switches=1
//
// (an optional leading "adaptive:" or "static:" policy name is stripped; it
// is the caller's job to pick the policy, this parses only the thresholds).
func ParseConfig(s string) (Config, error) {
	c := DefaultConfig()
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[i+1:]
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return c, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return c, fmt.Errorf("control: %q is not key=value", kv)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		var err error
		switch k {
		case "sample-period":
			c.SamplePeriod, err = cliutil.ParseDuration(v)
		case "half-life":
			c.HalfLife, err = cliutil.ParseDuration(v)
		case "onset-depth":
			c.OnsetDepth, err = cliutil.ParseSize(v)
		case "decay-depth":
			c.DecayDepth, err = cliutil.ParseSize(v)
		case "onset-mark-rate":
			c.OnsetMarkRate, err = strconv.ParseFloat(v, 64)
		case "busy-mark-rate":
			c.BusyMarkRate, err = strconv.ParseFloat(v, 64)
		case "min-dwell":
			c.MinDwell, err = cliutil.ParseDuration(v)
		case "overflow-bytes":
			c.OverflowBytes, err = cliutil.ParseSize(v)
		case "max-switches":
			c.MaxSwitches, err = strconv.Atoi(v)
		case "probe-every":
			c.ProbeEvery, err = cliutil.ParseDuration(v)
		case "probe-timeout":
			c.ProbeTimeout, err = cliutil.ParseDuration(v)
		case "probe-loss":
			c.ProbeLoss, err = strconv.ParseFloat(v, 64)
		case "excess-limit":
			c.ExcessLimit, err = cliutil.ParseDuration(v)
		case "hysteresis":
			c.Hysteresis, err = strconv.ParseFloat(v, 64)
		case "safe-depth-frac":
			c.SafeDepthFrac, err = strconv.ParseFloat(v, 64)
		case "pace-window":
			c.PaceWindow, err = cliutil.ParseSize(v)
		default:
			return c, fmt.Errorf("control: unknown threshold %q", k)
		}
		if err != nil {
			return c, fmt.Errorf("control: %s: %w", k, err)
		}
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}
