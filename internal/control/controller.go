package control

import (
	"fmt"

	"incastproxy/internal/obs"
	"incastproxy/internal/sim"
	"incastproxy/internal/units"
)

// Action is a steering decision the policy engine hands to its caller.
type Action int

// The steer actions.
const (
	// ActNone: no action (internal).
	ActNone Action = iota
	// SteerProxy: upgrade the epoch from the direct path onto the proxy.
	SteerProxy
	// SteerDirect: downgrade from the proxy back onto the direct path
	// (proxy dead or congested — the shortest path is what's left).
	SteerDirect
)

func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case SteerProxy:
		return "steer-proxy"
	case SteerDirect:
		return "steer-direct"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Route is where the epoch's traffic is currently steered.
type Route int

// The routes.
const (
	RouteDirect Route = iota
	RouteProxy
)

func (r Route) String() string {
	if r == RouteProxy {
		return "proxy"
	}
	return "direct"
}

// Steer records one executed re-steer for decision-metric assertions.
type Steer struct {
	At     units.Time
	Action Action
	Reason string
}

// Controller is the per-epoch policy engine. It ticks on virtual time,
// samples its queue signals, steps the incast detector, and — behind
// hysteresis (MinDwell, MaxSwitches, path-advantage ratio) — asks its
// caller to re-steer via the OnSteer callback. The caller owns the actual
// re-homing; the controller owns when and which way.
type Controller struct {
	cfg Config
	det *Detector

	recvSig  *QueueSignal // receiver-side bottleneck (direct path)
	proxySig *QueueSignal // proxy-side bottleneck (proxy path)

	direct *PathEstimator
	proxy  *PathEstimator

	route     Route
	switches  int
	announced units.ByteSize
	flows     int

	onSteer func(e *sim.Engine, a Action, reason string) bool
	steers  []Steer
	until   units.Time
	started bool

	lastSteerAt units.Time
	lastAction  Action

	tracer *obs.Tracer

	mTicks, mOnsets, mSteers   *obs.Counter
	mSteerProxy, mSteerDirect  *obs.Counter
	mFlaps, mVetoed, mDeferred *obs.Counter
	mDetectLatency             *obs.Histogram
	mSteerLatency              *obs.WindowQuantile
}

// NewController builds a controller with fresh path estimators. reg may be
// nil (metrics become no-ops).
func NewController(cfg Config, reg *obs.Registry) *Controller {
	c := &Controller{
		cfg:    cfg,
		det:    NewDetector(cfg.detectorConfig()),
		direct: NewPathEstimator("direct", 0),
		proxy:  NewPathEstimator("proxy", 0),

		mTicks:       reg.Counter("control_ticks_total"),
		mOnsets:      reg.Counter("control_onsets_total"),
		mSteers:      reg.Counter("control_steers_total"),
		mSteerProxy:  reg.Counter("control_steer_proxy_total"),
		mSteerDirect: reg.Counter("control_steer_direct_total"),
		mFlaps:       reg.Counter("control_flaps_total"),
		mVetoed:      reg.Counter("control_steer_vetoed_total"),
		mDeferred:    reg.Counter("control_steer_deferred_total"),
		mDetectLatency: reg.Histogram("control_detection_latency_us",
			obs.DefaultDurationBucketsMicros()),
		mSteerLatency: reg.Window("control_detect_to_steer_us", 0, obs.DefaultWindowSize),
	}
	if reg != nil {
		reg.GaugeFunc("control_route", func() int64 { return int64(c.route) })
		reg.GaugeFunc("control_switches", func() int64 { return int64(c.switches) })
		reg.CounterFunc("control_decays_total", func() uint64 { return c.det.Decays() })
	}
	return c
}

// SetTracer attaches a tracer: detector onsets/decays and steering
// decisions become instant events on the "control" decision-timeline
// track, interleaved with the data-plane flow spans. Call before Start.
func (c *Controller) SetTracer(tr *obs.Tracer) { c.tracer = tr }

// WatchReceiverQueue taps the receiver-side bottleneck queue (the direct
// path's congestion point). Call before Start.
func (c *Controller) WatchReceiverQueue(sig *QueueSignal) { c.recvSig = sig }

// WatchProxyQueue taps the proxy-side bottleneck queue. Call before Start.
func (c *Controller) WatchProxyQueue(sig *QueueSignal) { c.proxySig = sig }

// DirectEstimator returns the direct path's quality estimator (feed it
// probes and FCTs).
func (c *Controller) DirectEstimator() *PathEstimator { return c.direct }

// ProxyEstimator returns the proxy path's quality estimator.
func (c *Controller) ProxyEstimator() *PathEstimator { return c.proxy }

// OnSteer installs the re-steer callback. The callback returns whether it
// actually moved anything; a false return does not consume a switch and the
// controller may retry on a later tick.
func (c *Controller) OnSteer(fn func(e *sim.Engine, a Action, reason string) bool) {
	c.onSteer = fn
}

// FlowStarted registers one announced flow of the epoch (the Pulser-style
// explicit notification: a sender declaring it is about to push bytes at the
// shared receiver). The controller aggregates announcements online; when the
// total exceeds Config.OverflowBytes the first-window burst cannot fit the
// receiver-side buffer and onset is declared without waiting for the queue
// to prove it — the 2 ms it takes the burst to reach the remote ToR is
// exactly the budget the early steer wins back.
func (c *Controller) FlowStarted(bytes units.ByteSize) {
	c.announced += bytes
	c.flows++
}

// FlowFinished feeds one completed-flow FCT sample into the estimator of
// the path it ran on.
func (c *Controller) FlowFinished(fct units.Duration, viaProxy bool) {
	if viaProxy {
		c.proxy.ObserveFCT(fct)
	} else {
		c.direct.ObserveFCT(fct)
	}
}

// Route returns where the epoch is currently steered.
func (c *Controller) Route() Route { return c.route }

// Switches returns how many re-steers have executed.
func (c *Controller) Switches() int { return c.switches }

// Steers returns the executed decisions, in order.
func (c *Controller) Steers() []Steer { return c.steers }

// Detector exposes the onset/decay state machine (read-only use).
func (c *Controller) Detector() *Detector { return c.det }

// Start begins the tick loop; until bounds it in virtual time.
func (c *Controller) Start(e *sim.Engine, until units.Time) {
	if c.started {
		return
	}
	c.started = true
	c.until = until
	e.Schedule(e.Now().Add(c.cfg.SamplePeriod), c.tick)
}

func (c *Controller) tick(e *sim.Engine) {
	now := e.Now()
	c.mTicks.Inc()
	if c.recvSig != nil {
		c.recvSig.Sample(now)
	}
	if c.proxySig != nil {
		c.proxySig.Sample(now)
	}
	if c.recvSig != nil && c.det.Step(now, c.recvSig) {
		if c.det.Phase() == Incast {
			c.mOnsets.Inc()
			c.tracer.Instant(now, "control", "detector.onset", 0)
		} else {
			c.tracer.Instant(now, "control", "detector.decay", 0)
		}
	}
	c.evaluate(e)
	if next := now.Add(c.cfg.SamplePeriod); next <= c.until {
		e.Schedule(next, c.tick)
	}
}

// evaluate runs one policy step.
func (c *Controller) evaluate(e *sim.Engine) {
	now := e.Now()
	switch c.route {
	case RouteDirect:
		incast := c.det.Phase() == Incast
		reason := "queue-onset"
		if !incast && c.cfg.OverflowBytes > 0 && c.announced > c.cfg.OverflowBytes {
			if c.det.ForceOnset(now) {
				c.mOnsets.Inc()
				c.tracer.Instant(now, "control", "detector.onset", 0,
					obs.Arg{Key: "reason", Val: "announced-overflow"})
			}
			incast = true
			reason = "announced-overflow"
		}
		if !incast {
			return
		}
		if c.switches >= c.cfg.MaxSwitches {
			return
		}
		if !c.proxyUsable() {
			c.mDeferred.Inc()
			return
		}
		c.steer(e, SteerProxy, reason)
	case RouteProxy:
		if c.switches >= c.cfg.MaxSwitches {
			return
		}
		// Once the epoch is on the proxy, the proxy-side bottleneck is
		// *supposed* to be deep: trim+NACK keeps the path productive while
		// the queue drains at line rate, and our own probes queue behind our
		// own payload. Congestion and excess therefore stop meaning
		// "degraded" here — only losing the proxy itself (probe loss past
		// the down threshold) justifies dumping the epoch back onto the
		// path it was steered off of.
		if c.proxy.Healthy(c.cfg.ProbeLoss) {
			return
		}
		c.steer(e, SteerDirect, "proxy-degraded")
	}
}

// proxyUsable decides whether the proxy path is worth steering onto: probe
// loss below the down threshold, queueing-delay excess below the congestion
// limit, the proxy-side bottleneck neither deep nor sustaining contention
// marking, and — when both paths carry live probe estimates — the proxy not
// worse than the direct path by more than the hysteresis factor. It gates
// the upgrade only; see evaluate for the (liveness-only) downgrade rule.
func (c *Controller) proxyUsable() bool {
	if !c.proxy.Healthy(c.cfg.ProbeLoss) {
		return false
	}
	if c.proxy.Excess() > c.cfg.ExcessLimit {
		return false
	}
	if c.proxySig != nil && c.proxySig.Congested(c.cfg.OnsetDepth, c.cfg.BusyMarkRate) {
		return false
	}
	if c.proxy.RTTSamples() > 0 && c.direct.RTTSamples() > 0 {
		pe, de := c.proxy.Excess(), c.direct.Excess()
		if float64(pe) > float64(de)*c.cfg.Hysteresis && pe > c.cfg.ExcessLimit/2 {
			return false
		}
	}
	return true
}

func (c *Controller) steer(e *sim.Engine, a Action, reason string) {
	now := e.Now()
	if c.lastSteerAt != 0 && now.Sub(c.lastSteerAt) < c.cfg.MinDwell {
		return
	}
	acted := true
	if c.onSteer != nil {
		acted = c.onSteer(e, a, reason)
	}
	if !acted {
		c.mVetoed.Inc()
		return
	}
	c.switches++
	c.steers = append(c.steers, Steer{At: now, Action: a, Reason: reason})
	c.mSteers.Inc()
	c.tracer.Instant(now, "control", a.String(), 0, obs.Arg{Key: "reason", Val: reason})
	switch a {
	case SteerProxy:
		c.route = RouteProxy
		c.mSteerProxy.Inc()
		if oa := c.det.OnsetAt(); oa != 0 && now >= oa {
			us := int64(now.Sub(oa) / units.Microsecond)
			c.mDetectLatency.Observe(us)
			// The detection-to-resteer latency figure reads these
			// windowed quantiles from the run manifest.
			c.mSteerLatency.Observe(now, us)
		}
	case SteerDirect:
		c.route = RouteDirect
		c.mSteerDirect.Inc()
	}
	if c.lastAction != ActNone && c.lastAction != a &&
		now.Sub(c.lastSteerAt) < 10*c.cfg.MinDwell {
		c.mFlaps.Inc()
	}
	c.lastSteerAt, c.lastAction = now, a
}
