package control

import (
	"incastproxy/internal/netsim"
	"incastproxy/internal/units"
)

// QueueSignal is the per-queue signal tap: sampled on the controller's tick,
// it tracks the queue's depth EWMA and the smoothed rates of ECN marks,
// trims, and drops. The raw instantaneous depth is kept alongside the EWMA —
// onset detection wants the fast signal, decay detection the smooth one.
type QueueSignal struct {
	Name string

	port *netsim.Port

	Depth    *EWMA // bytes
	MarkRate *Rate // ECN marks/sec
	TrimRate *Rate // trims/sec
	DropRate *Rate // drops/sec

	raw       units.ByteSize
	drops     uint64
	lastStamp units.Time
}

// WatchPort builds a signal tap over one port's egress queue. halfLife sets
// the smoothing of all four component signals.
func WatchPort(name string, p *netsim.Port, halfLife units.Duration) *QueueSignal {
	return &QueueSignal{
		Name:     name,
		port:     p,
		Depth:    NewEWMA(halfLife),
		MarkRate: NewRate(halfLife),
		TrimRate: NewRate(halfLife),
		DropRate: NewRate(halfLife),
	}
}

// Sample reads the port's counters at virtual time now and folds them into
// the signal estimators.
func (q *QueueSignal) Sample(now units.Time) {
	st := q.port.Stats()
	q.raw = q.port.QueuedBytes()
	q.drops = st.Dropped
	q.lastStamp = now
	q.Depth.Observe(now, float64(q.raw))
	q.MarkRate.Observe(now, st.Marked)
	q.TrimRate.Observe(now, st.Trimmed)
	q.DropRate.Observe(now, st.Dropped)
}

// RawDepth returns the queue occupancy at the last sample.
func (q *QueueSignal) RawDepth() units.ByteSize { return q.raw }

// Drops returns the cumulative drop count at the last sample.
func (q *QueueSignal) Drops() uint64 { return q.drops }

// Congested reports whether the queue looks congested against the given
// thresholds: instantaneous depth at or above onsetDepth, or a smoothed mark
// rate at or above onsetMarkRate (marks lead drops, so the mark-rate arm
// fires earlier on paths with RED-style marking).
func (q *QueueSignal) Congested(onsetDepth units.ByteSize, onsetMarkRate float64) bool {
	if onsetDepth > 0 && q.raw >= onsetDepth {
		return true
	}
	return onsetMarkRate > 0 && q.MarkRate.Value() >= onsetMarkRate
}
