package control

import (
	"testing"

	"incastproxy/internal/units"
)

// The controller ticks every ~20us of virtual time; its per-tick cost is a
// hot-path budget exactly like the obs instruments'.

func BenchmarkEWMAObserve(b *testing.B) {
	m := NewEWMA(100 * units.Microsecond)
	for i := 0; i < b.N; i++ {
		m.Observe(units.Time(i)*units.Time(units.Microsecond), float64(i&1023))
	}
}

func BenchmarkRateObserve(b *testing.B) {
	r := NewRate(100 * units.Microsecond)
	for i := 0; i < b.N; i++ {
		r.Observe(units.Time(i)*units.Time(units.Microsecond), uint64(i)*3)
	}
}

func BenchmarkPathEstimatorObserveRTT(b *testing.B) {
	pe := NewPathEstimator("bench", 0)
	for i := 0; i < b.N; i++ {
		pe.ObserveRTT(units.Duration(1+i&255) * units.Microsecond)
	}
}

func BenchmarkDetectorStep(b *testing.B) {
	d := NewDetector(DetectorConfig{
		OnsetDepth: units.MB, DecayDepth: 100 * units.KB,
		MinDwell: 100 * units.Microsecond,
	})
	sig := &QueueSignal{
		Depth:    NewEWMA(100 * units.Microsecond),
		MarkRate: NewRate(100 * units.Microsecond),
		TrimRate: NewRate(100 * units.Microsecond),
		DropRate: NewRate(100 * units.Microsecond),
	}
	for i := 0; i < b.N; i++ {
		now := units.Time(i) * units.Time(20*units.Microsecond)
		sig.raw = units.ByteSize((i & 127) * 20 * int(units.KB))
		sig.Depth.Observe(now, float64(sig.raw))
		d.Step(now, sig)
	}
}

func BenchmarkParseConfig(b *testing.B) {
	const s = "onset-depth=4MB,min-dwell=200us,max-switches=1,probe-loss=0.25,half-life=50us"
	for i := 0; i < b.N; i++ {
		if _, err := ParseConfig(s); err != nil {
			b.Fatal(err)
		}
	}
}
